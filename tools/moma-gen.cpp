//===- tools/moma-gen.cpp - command-line kernel generator ----------------------===//
//
// The reproduction's equivalent of the paper artifact's entry point
// (benchmark.sh -d <bits> ...): generate a cryptographic kernel at a
// chosen bit-width and print IR, C, or CUDA.
//
// Usage:
//   moma-gen -k <addmod|submod|mulmod|butterfly|axpy|vadd|vsub|vmul>
//            -d <container-bits>         (default 128)
//            [-m <modulus-bits>]         (default container-4; e.g. 377)
//            [-w <machine-word-bits>]    (16, 32 or 64; default 64)
//            [--karatsuba]               (Eq. 9 multiply rule)
//            [--emit ir|c|cuda|stats]    (default c)
//
// Examples:
//   moma-gen -k mulmod -d 256 --emit cuda
//   moma-gen -k butterfly -d 512 -m 377 --emit stats   # BLS12-381 class
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "codegen/CudaEmitter.h"
#include "ir/Printer.h"
#include "kernels/BlasKernels.h"
#include "kernels/NttKernels.h"
#include "rewrite/Schedule.h"
#include "rewrite/Simplify.h"
#include "rewrite/Stats.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace moma;

namespace {

[[noreturn]] void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s -k <kernel> [-d bits] [-m modbits] [-w wordbits]\n"
      "          [--karatsuba] [--emit ir|c|cuda|stats]\n"
      "kernels: addmod submod mulmod butterfly axpy vadd vsub vmul\n",
      Argv0);
  std::exit(2);
}

} // namespace

int main(int argc, char **argv) {
  std::string KernelName = "mulmod", Emit = "c";
  unsigned Bits = 128, ModBits = 0, WordBits = 64;
  bool Karatsuba = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc)
        usage(argv[0]);
      return argv[++I];
    };
    if (Arg == "-k")
      KernelName = Next();
    else if (Arg == "-d")
      Bits = std::strtoul(Next(), nullptr, 10);
    else if (Arg == "-m")
      ModBits = std::strtoul(Next(), nullptr, 10);
    else if (Arg == "-w")
      WordBits = std::strtoul(Next(), nullptr, 10);
    else if (Arg == "--karatsuba")
      Karatsuba = true;
    else if (Arg == "--emit")
      Emit = Next();
    else
      usage(argv[0]);
  }

  kernels::ScalarKernelSpec Spec{Bits, ModBits};
  ir::Kernel K;
  bool IsButterfly = false;
  if (KernelName == "addmod" || KernelName == "vadd")
    K = kernels::buildAddModKernel(Spec);
  else if (KernelName == "submod" || KernelName == "vsub")
    K = kernels::buildSubModKernel(Spec);
  else if (KernelName == "mulmod" || KernelName == "vmul")
    K = kernels::buildMulModKernel(Spec);
  else if (KernelName == "axpy")
    K = kernels::buildAxpyKernel(Spec);
  else if (KernelName == "butterfly") {
    K = kernels::buildButterflyKernel(Spec);
    IsButterfly = true;
  } else
    usage(argv[0]);
  K.Name = KernelName + "_" + std::to_string(Bits);

  mw::MulAlgorithm Alg =
      Karatsuba ? mw::MulAlgorithm::Karatsuba : mw::MulAlgorithm::Schoolbook;

  if (Emit == "ir") {
    std::printf("%s", ir::printKernel(K).c_str());
    return 0;
  }

  rewrite::LowerOptions Opts;
  Opts.TargetWordBits = WordBits;
  Opts.MulAlg = Alg;
  rewrite::LoweredKernel L = rewrite::lowerToWords(K, Opts);
  rewrite::simplifyLowered(L);

  if (Emit == "stats") {
    rewrite::OpStats S = rewrite::countOps(L.K);
    rewrite::PressureStats P = rewrite::measurePressure(L.K, WordBits);
    std::printf("kernel %s: %u-bit container, %u-bit modulus, "
                "omega0 = %u, %s multiply\n",
                K.Name.c_str(), Bits, Spec.modBits(), WordBits,
                Karatsuba ? "Karatsuba" : "schoolbook");
    std::printf("lowered in %u rounds\n%s", L.Rounds, S.report().c_str());
    std::printf("peak live words: %u\n", P.MaxLiveWords);
    for (const auto &Port : L.Inputs)
      std::printf("in  %-4s %2u stored words (of %zu container words)\n",
                  Port.Name.c_str(), Port.storedWords(), Port.Words.size());
    for (const auto &Port : L.Outputs)
      std::printf("out %-4s %2u stored words\n", Port.Name.c_str(),
                  Port.storedWords());
    return 0;
  }
  if (Emit == "c") {
    std::printf("%s", codegen::emitC(L).Source.c_str());
    return 0;
  }
  if (Emit == "cuda") {
    if (IsButterfly)
      std::printf("%s", kernels::emitNttCuda(Spec, Alg).c_str());
    else {
      codegen::CudaEmitOptions COpts;
      std::printf("%s", codegen::emitCudaElementwise(L, COpts).c_str());
    }
    return 0;
  }
  usage(argv[0]);
}
