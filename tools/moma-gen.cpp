//===- tools/moma-gen.cpp - command-line kernel generator ----------------------===//
//
// The reproduction's equivalent of the paper artifact's entry point
// (benchmark.sh -d <bits> ...): generate a cryptographic kernel at a
// chosen bit-width and print IR, C, or CUDA — or run the runtime
// autotuner for the configuration and report the pinned variant.
//
// Usage:
//   moma-gen -k <addmod|submod|mulmod|butterfly|axpy|vadd|vsub|vmul
//               |rnsdec|rnsrec|rnsresc>
//            -d <container-bits>         (default 128)
//            [-m <modulus-bits>]         (default container-4; e.g. 377;
//                                         limb bits for rnsdec/rnsrec)
//            [-w <machine-word-bits>]    (16, 32 or 64; default 64)
//            [--karatsuba]               (Eq. 9 multiply rule)
//            [--reduction barrett|montgomery]  (default barrett)
//            [--no-prune]                (skip the §4 zero-word pruning)
//            [--schedule]                (pressure-aware list scheduling)
//            [--backend serial|simgpu|vector] (execution backend;
//                                         default serial)
//            [--block-dim <n>]           (simgpu threads/block, <= 1024)
//            [--vector-width <k>]        (vector lanes, <= 64; default 8)
//            [--fuse-depth <k>]          (NTT stage fusion, 1..3; butterfly)
//            [--ring cyclic|negacyclic]  (NTT ring; butterfly tune/keys)
//            [--rns-limbs <L>]           (RNS base size for rnsdec/rnsrec)
//            [--device h100|rtx4090|v100|host] (simgpu device profile)
//            [--passes <spec>]           (simplify pipeline: default,
//                                         extended, or a comma list of
//                                         catalog passes)
//            [--emit ir|c|cuda|stats|pass-stats|tune]  (default c)
//            [--tune-cache <path>]       (persist/reuse autotune JSON)
//
// `--emit c` with `--backend simgpu` prints the grid-shaped source (the
// §5.1 CUDA thread mapping as host-JIT C; butterfly kernels include the
// fused radix-2^k stage-group entry) and with `--backend vector` the
// SIMD lane-loop source (SoA chunk helpers plus the batch-axis stage and
// fused entries); `--emit tune` sweeps the backend, block-dim, and
// lane-width axes alongside reduction/pruning/scheduling — butterfly
// kernels tune the transform-shaped problem (a batched 256-point NTT
// through the fused pipeline), so the fusion depth is swept and reported
// alongside the backend.
//
// `rnsdec` / `rnsrec` are the RNS layer's generated CRT edge kernels
// (runtime/RnsContext.h): -m gives the word-sized limb width (default
// 60) and --rns-limbs the base size; the tool builds the real base to
// derive the wide width, then prints the kernel like any other.
// `rnsresc` is the modulus-switching step kernel (drop-a-limb rescale,
// runtime/RnsTensor.h): uniform single-word ports at the limb width, so
// only -m applies.
//
// Examples:
//   moma-gen -k mulmod -d 256 --emit cuda
//   moma-gen -k mulmod -d 256 --reduction montgomery --emit c
//   moma-gen -k butterfly -d 512 -m 377 --emit stats   # BLS12-381 class
//   moma-gen -k butterfly -d 128 --backend simgpu --emit c
//   moma-gen -k mulmod -m 252 --backend vector --vector-width 16 --emit c
//   moma-gen -k butterfly -m 60 --ring negacyclic --emit tune
//   moma-gen -k mulmod -m 380 --emit tune --tune-cache tune.json
//   moma-gen -k vmul -m 252 --device rtx4090 --emit tune
//   moma-gen -k rnsdec -m 60 --rns-limbs 8 --emit stats
//   moma-gen -k rnsdec -m 60 --passes extended --emit pass-stats
//   moma-gen -k rnsresc -m 60 --emit c
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "codegen/CudaEmitter.h"
#include "codegen/GridEmitter.h"
#include "codegen/VectorEmitter.h"
#include "field/PrimeGen.h"
#include "ir/Printer.h"
#include "kernels/BlasKernels.h"
#include "kernels/NttKernels.h"
#include "rewrite/PassManager.h"
#include "rewrite/PlanOptions.h"
#include "rewrite/Schedule.h"
#include "rewrite/Stats.h"
#include "runtime/Autotuner.h"
#include "runtime/RnsContext.h"
#include "support/FaultInjection.h"
#include "support/Format.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace moma;

namespace {

[[noreturn]] void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s -k <kernel> [-d bits] [-m modbits] [-w wordbits]\n"
      "          [--karatsuba] [--reduction barrett|montgomery]\n"
      "          [--no-prune] [--schedule]\n"
      "          [--backend serial|simgpu|vector] [--block-dim <n>]\n"
      "          [--vector-width <k>]\n"
      "          [--fuse-depth <k>] [--ring cyclic|negacyclic]\n"
      "          [--rns-limbs <L>] [--device h100|rtx4090|v100|host]\n"
      "          [--passes default|extended|<pass,...>]\n"
      "          [--emit ir|c|cuda|stats|pass-stats|tune]\n"
      "          [--tune-cache <path>] [--inject <site:policy>]\n"
      "kernels: addmod submod mulmod butterfly axpy vadd vsub vmul\n"
      "         rnsdec rnsrec rnsresc\n",
      Argv0);
  std::exit(2);
}

const sim::DeviceProfile *deviceFor(const std::string &Name) {
  if (Name == "h100")
    return &sim::deviceH100();
  if (Name == "rtx4090")
    return &sim::deviceRTX4090();
  if (Name == "v100")
    return &sim::deviceV100();
  if (Name == "host")
    return &sim::deviceHostDefault();
  return nullptr;
}

/// Maps a kernel name onto the runtime dispatch op for --emit tune.
bool kernelOpFor(const std::string &Name, runtime::KernelOp &Op) {
  if (Name == "addmod" || Name == "vadd")
    Op = runtime::KernelOp::AddMod;
  else if (Name == "submod" || Name == "vsub")
    Op = runtime::KernelOp::SubMod;
  else if (Name == "mulmod" || Name == "vmul")
    Op = runtime::KernelOp::MulMod;
  else if (Name == "butterfly")
    Op = runtime::KernelOp::Butterfly;
  else if (Name == "axpy")
    Op = runtime::KernelOp::Axpy;
  else
    return false;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string KernelName = "mulmod", Emit = "c", TuneCache;
  std::string DeviceName = "host";
  unsigned Bits = 128, ModBits = 0, WordBits = 64, RnsLimbs = 0;
  rewrite::PlanOptions Plan;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc)
        usage(argv[0]);
      return argv[++I];
    };
    if (Arg == "-k")
      KernelName = Next();
    else if (Arg == "-d")
      Bits = std::strtoul(Next(), nullptr, 10);
    else if (Arg == "-m")
      ModBits = std::strtoul(Next(), nullptr, 10);
    else if (Arg == "-w")
      WordBits = std::strtoul(Next(), nullptr, 10);
    else if (Arg == "--karatsuba")
      Plan.MulAlg = mw::MulAlgorithm::Karatsuba;
    else if (Arg == "--reduction") {
      std::string R = Next();
      if (R == "barrett")
        Plan.Red = mw::Reduction::Barrett;
      else if (R == "montgomery")
        Plan.Red = mw::Reduction::Montgomery;
      else
        usage(argv[0]);
    } else if (Arg == "--no-prune")
      Plan.Prune = false;
    else if (Arg == "--schedule")
      Plan.Schedule = true;
    else if (Arg == "--backend") {
      std::string B = Next();
      if (B == "serial")
        Plan.Backend = rewrite::ExecBackend::Serial;
      else if (B == "simgpu")
        Plan.Backend = rewrite::ExecBackend::SimGpu;
      else if (B == "vector")
        Plan.Backend = rewrite::ExecBackend::Vector;
      else
        usage(argv[0]);
    } else if (Arg == "--block-dim")
      Plan.BlockDim = std::strtoul(Next(), nullptr, 10);
    else if (Arg == "--vector-width")
      Plan.VectorWidth = std::strtoul(Next(), nullptr, 10);
    else if (Arg == "--fuse-depth")
      Plan.FuseDepth = std::strtoul(Next(), nullptr, 10);
    else if (Arg == "--ring") {
      std::string Rg = Next();
      if (Rg == "cyclic")
        Plan.Ring = rewrite::NttRing::Cyclic;
      else if (Rg == "negacyclic")
        Plan.Ring = rewrite::NttRing::Negacyclic;
      else
        usage(argv[0]);
    } else if (Arg == "--passes")
      Plan.Passes = Next();
    else if (Arg == "--rns-limbs")
      RnsLimbs = std::strtoul(Next(), nullptr, 10);
    else if (Arg == "--device") {
      DeviceName = Next();
      if (!deviceFor(DeviceName))
        usage(argv[0]);
    } else if (Arg == "--emit")
      Emit = Next();
    else if (Arg == "--tune-cache")
      TuneCache = Next();
    else if (Arg == "--inject") {
      // `site:policy` on the command line, `site=policy` in the
      // MOMA_FAULTS grammar — only the first ':' separates the site.
      std::string Spec = Next();
      size_t Colon = Spec.find(':');
      if (Colon == std::string::npos)
        usage(argv[0]);
      Spec[Colon] = '=';
      std::string Err;
      if (!support::FaultInjection::instance().configureFromSpec(Spec,
                                                                 &Err)) {
        std::fprintf(stderr, "moma-gen: bad --inject spec: %s\n",
                     Err.c_str());
        return 2;
      }
    } else
      usage(argv[0]);
  }
  Plan.TargetWordBits = WordBits;

  kernels::ScalarKernelSpec Spec{Bits, ModBits, Plan.Red};

  if (Emit == "tune") {
    // Autotune the runtime problem this spec canonicalizes to, with a
    // representative NTT-friendly modulus of the requested width.
    runtime::KernelOp Op;
    if (KernelName == "rnsdec" || KernelName == "rnsrec" ||
        KernelName == "rnsresc") {
      std::fprintf(stderr,
                   "%s is not autotunable: the RNS CRT kernels fold the "
                   "whole variant grid (generalized Barrett is baked in) "
                   "and run on the base plan's backend; use --emit "
                   "ir|c|stats instead\n",
                   KernelName.c_str());
      return 2;
    }
    if (!kernelOpFor(KernelName, Op))
      usage(argv[0]);
    // Negacyclic transforms need one extra factor of two (2n | q - 1).
    mw::Bignum Q = field::nttPrime(
        Spec.modBits(),
        Plan.Ring == rewrite::NttRing::Negacyclic ? 10 : 8);
    runtime::KernelRegistry Reg;
    Reg.setDeviceProfile(*deviceFor(DeviceName));
    runtime::AutotunerOptions TO;
    TO.CachePath = TuneCache;
    runtime::Autotuner Tuner(Reg, TO);
    // Butterfly problems tune the transform shape they serve — a batched
    // 256-point NTT through the fused stage pipeline — so the FuseDepth
    // axis is measured on real stage-group walks.
    const size_t TuneNttPoints = 256, TuneNttBatch = 64;
    bool IsNtt = Op == runtime::KernelOp::Butterfly;
    const runtime::TuneDecision *D =
        IsNtt ? Tuner.chooseNtt(Q, Plan, TuneNttPoints, TuneNttBatch)
              : Tuner.choose(Op, Q, Plan);
    if (!D) {
      std::fprintf(stderr, "autotune failed: %s\n", Tuner.error().c_str());
      return 1;
    }
    std::printf("problem:  %s%s (device %s)\n",
                runtime::PlanKey::forModulus(Op, Q, Plan).problemStr()
                    .c_str(),
                IsNtt ? formatv(" as n=%zu NTT x %zu batch", TuneNttPoints,
                                TuneNttBatch)
                            .c_str()
                      : "",
                Reg.deviceProfile().Name.c_str());
    std::printf("decision: %s\n", D->Opts.str().c_str());
    std::printf("backend:  %s%s\n",
                rewrite::execBackendName(D->Opts.Backend),
                D->Opts.Backend == rewrite::ExecBackend::SimGpu
                    ? formatv(" (block dim %u)", D->Opts.BlockDim).c_str()
                : D->Opts.Backend == rewrite::ExecBackend::Vector
                    ? formatv(" (lane width %u)", D->Opts.VectorWidth)
                          .c_str()
                    : "");
    if (IsNtt) {
      unsigned LogN = 0;
      while ((size_t(1) << LogN) < TuneNttPoints)
        ++LogN;
      std::printf("fusion:   depth %u (%u stage dispatches per %zu-point "
                  "transform)\n",
                  D->Opts.FuseDepth,
                  (LogN + D->Opts.FuseDepth - 1) / D->Opts.FuseDepth,
                  TuneNttPoints);
      std::printf("ring:     %s%s\n", rewrite::nttRingName(D->Opts.Ring),
                  D->Opts.Ring == rewrite::NttRing::Negacyclic
                      ? " (psi twist folded into the edge stage groups)"
                      : "");
    }
    std::printf("measured: %.1f ns/element over %u candidates%s\n",
                D->NsPerElem, Tuner.stats().Candidates,
                D->FromCache ? " (reloaded from tune cache)" : "");
    if (!TuneCache.empty())
      std::printf("persisted to %s\n", TuneCache.c_str());
    return 0;
  }

  ir::Kernel K;
  bool IsButterfly = false;
  if (KernelName == "addmod" || KernelName == "vadd")
    K = kernels::buildAddModKernel(Spec);
  else if (KernelName == "submod" || KernelName == "vsub")
    K = kernels::buildSubModKernel(Spec);
  else if (KernelName == "mulmod" || KernelName == "vmul")
    K = kernels::buildMulModKernel(Spec);
  else if (KernelName == "axpy")
    K = kernels::buildAxpyKernel(Spec);
  else if (KernelName == "butterfly") {
    K = kernels::buildButterflyKernel(Spec);
    IsButterfly = true;
  } else if (KernelName == "rnsdec" || KernelName == "rnsrec") {
    // The RNS CRT edge kernels: build the real base (deterministic
    // primes) so the wide width is the one the runtime would use.
    runtime::RnsContext Ctx;
    std::string Err;
    runtime::RnsContext::Options RO;
    RO.LimbBits = ModBits ? ModBits : 60;
    if (!runtime::RnsContext::create(RnsLimbs ? RnsLimbs : 4, Ctx, &Err,
                                     RO)) {
      std::fprintf(stderr, "%s\n", Err.c_str());
      return 1;
    }
    if (KernelName == "rnsdec") {
      ModBits = RO.LimbBits;
      Bits = runtime::PlanKey::canonicalContainerBits(
          Ctx.wideWords() * 64 - 4, WordBits);
      Spec = kernels::ScalarKernelSpec{Bits, ModBits,
                                       mw::Reduction::Barrett};
      K = kernels::buildRnsDecomposeKernel(Spec, Ctx.wideWords());
    } else {
      ModBits = Ctx.modulus().bitWidth();
      Bits = runtime::PlanKey::canonicalContainerBits(ModBits, WordBits);
      Spec = kernels::ScalarKernelSpec{Bits, ModBits,
                                       mw::Reduction::Barrett};
      K = kernels::buildRnsRecombineStepKernel(Spec);
    }
  } else if (KernelName == "rnsresc") {
    // The rescale step is uniform single-word arithmetic at the limb
    // width — no base needed, just the limb modulus class.
    ModBits = ModBits ? ModBits : 60;
    Bits = runtime::PlanKey::canonicalContainerBits(ModBits, WordBits);
    Spec = kernels::ScalarKernelSpec{Bits, ModBits, mw::Reduction::Barrett};
    K = kernels::buildRnsRescaleStepKernel(Spec);
  } else
    usage(argv[0]);
  K.Name = KernelName + "_" + std::to_string(Bits);

  if (Emit == "ir") {
    std::printf("%s", ir::printKernel(K).c_str());
    return 0;
  }

  if (Emit == "pass-stats") {
    // The satellite view of the ISSUE 6 pass manager: what each pass in
    // the (possibly non-default) pipeline did to this lowered kernel.
    rewrite::PassPipeline P;
    std::string Err;
    if (!rewrite::parsePipeline(Plan.Passes, P, &Err)) {
      std::fprintf(stderr, "%s\n", Err.c_str());
      return 2;
    }
    rewrite::LoweredKernel LP = rewrite::lowerToWords(K, Plan.lowerOptions());
    rewrite::OpStats Before = rewrite::countOps(LP.K);
    rewrite::PipelineStats PS = P.runLowered(LP);
    rewrite::OpStats After = rewrite::countOps(LP.K);
    std::printf("kernel %s: pipeline %s\n", K.Name.c_str(),
                Plan.Passes.empty() ? "default" : Plan.Passes.c_str());
    std::printf("%s", PS.report().c_str());
    std::printf("ops: %u -> %u stmts, %u -> %u mul, %u -> %u addsub\n",
                Before.Total, After.Total, Before.multiplies(),
                After.multiplies(), Before.addSubs(), After.addSubs());
    return 0;
  }

  rewrite::LoweredKernel L = rewrite::lowerWithPlan(K, Plan);

  if (Emit == "stats") {
    rewrite::OpStats S = rewrite::countOps(L.K);
    rewrite::PressureStats P = rewrite::measurePressure(L.K, WordBits);
    std::printf("kernel %s: %u-bit container, %u-bit modulus, "
                "omega0 = %u, %s multiply, %s reduction%s%s\n",
                K.Name.c_str(), Bits, Spec.modBits(), WordBits,
                Plan.MulAlg == mw::MulAlgorithm::Karatsuba ? "Karatsuba"
                                                           : "schoolbook",
                mw::reductionName(Plan.Red),
                Plan.Prune ? "" : ", pruning off",
                Plan.Schedule ? ", scheduled" : "");
    std::printf("lowered in %u rounds\n%s", L.Rounds, S.report().c_str());
    std::printf("peak live words: %u\n", P.MaxLiveWords);
    for (const auto &Port : L.Inputs)
      std::printf("in  %-4s %2u stored words (of %zu container words)\n",
                  Port.Name.c_str(), Port.storedWords(), Port.Words.size());
    for (const auto &Port : L.Outputs)
      std::printf("out %-4s %2u stored words\n", Port.Name.c_str(),
                  Port.storedWords());
    return 0;
  }
  if (Emit == "c") {
    if (Plan.Backend == rewrite::ExecBackend::SimGpu)
      // The grid-shaped source the sim-GPU backend compiles: the 5.1
      // thread mapping as host-JIT C (element-wise entry, plus the NTT
      // stage entry for butterfly kernels).
      std::printf("%s", codegen::emitGridC(L).Source.c_str());
    else if (Plan.Backend == rewrite::ExecBackend::Vector)
      // The SIMD lane-loop source the vector backend compiles at
      // -O3 [-march=native]: SoA fixed-trip chunk helpers over the
      // batch axis, plus the stage/fused entries for butterflies.
      std::printf("%s", codegen::emitVectorC(L).Source.c_str());
    else
      std::printf("%s", codegen::emitC(L).Source.c_str());
    return 0;
  }
  if (Emit == "cuda") {
    if (IsButterfly)
      std::printf("%s", kernels::emitNttCuda(Spec, Plan.MulAlg).c_str());
    else {
      codegen::CudaEmitOptions COpts;
      std::printf("%s", codegen::emitCudaElementwise(L, COpts).c_str());
    }
    return 0;
  }
  usage(argv[0]);
}
