#!/usr/bin/env python3
"""Perf-trajectory gate for the CI bench artifacts.

Compares a bench JSON report (bench/Harness.h --json format) against the
committed baseline under bench/baseline/ and fails CI on a regression:

  * metrics ending in `_count` or `_ok` are *exact* facts (dispatch
    counts, compiled-plan counts, bit-exactness flags): any difference
    fails;
  * metrics ending in `_ns` are timings from `--smoke` runs: the current
    value must stay within --max-ratio of the baseline (generous by
    default — smoke sizes are tiny and CI machines differ from the
    machine that recorded the baseline, so only order-of-magnitude
    regressions such as an accidental per-call recompile are caught);
  * every baseline metric must still exist (a silently dropped metric is
    how a trajectory dies);
  * any other metric (e.g. tuner picks, which are machine-dependent) is
    presence-only.

New metrics in the current report are reported but never fail — they are
adopted by refreshing the baseline.

Refreshing the baseline (after an intentional change to counts or
metrics — document the reason in the commit message):

    ./build/bench/bench_runtime_batch --smoke --json bench/baseline/BENCH_runtime.json
    ./build/bench/bench_rns           --smoke --json bench/baseline/BENCH_rns.json

Usage: bench_compare.py BASELINE CURRENT [--max-ratio R]
"""

import argparse
import json
import sys


def classify(name: str) -> str:
    if name.endswith("_count") or name.endswith("_ok"):
        return "exact"
    if name.endswith("_ns"):
        return "ratio"
    return "presence"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--max-ratio",
        type=float,
        default=25.0,
        help="allowed slowdown factor for *_ns metrics (default 25: smoke "
        "timings only catch order-of-magnitude regressions)",
    )
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    failures = []
    notes = []
    if base.get("bench") != cur.get("bench"):
        failures.append(
            f"bench name mismatch: baseline '{base.get('bench')}' vs "
            f"current '{cur.get('bench')}'"
        )

    bm = base.get("metrics", {})
    cm = cur.get("metrics", {})

    for name, bval in bm.items():
        if name not in cm:
            failures.append(f"metric '{name}' missing from current report")
            continue
        cval = cm[name]
        kind = classify(name)
        if kind == "exact":
            if cval != bval:
                failures.append(
                    f"exact metric '{name}' changed: baseline {bval} -> "
                    f"current {cval}"
                )
        elif kind == "ratio":
            if bval > 0 and cval > bval * args.max_ratio:
                failures.append(
                    f"timing '{name}' regressed {cval / bval:.1f}x beyond "
                    f"the {args.max_ratio:.0f}x tolerance "
                    f"(baseline {bval:.0f} ns -> current {cval:.0f} ns)"
                )
            elif bval > 0 and cval * args.max_ratio < bval:
                notes.append(
                    f"timing '{name}' improved {bval / cval:.1f}x — "
                    "consider refreshing the baseline"
                )

    for name in cm:
        if name not in bm:
            notes.append(f"new metric '{name}' (not in baseline; refresh to adopt)")

    print(f"bench_compare: {args.baseline} vs {args.current}")
    print(
        f"  {len(bm)} baseline metrics checked "
        f"({sum(1 for n in bm if classify(n) == 'exact')} exact, "
        f"{sum(1 for n in bm if classify(n) == 'ratio')} ratio-gated, "
        f"max ratio {args.max_ratio:.0f}x)"
    )
    for n in notes:
        print(f"  note: {n}")
    if failures:
        print("PERF-TRAJECTORY GATE FAILED:", file=sys.stderr)
        for f_ in failures:
            print(f"  FAIL: {f_}", file=sys.stderr)
        return 1
    print("  OK: no regression against the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
