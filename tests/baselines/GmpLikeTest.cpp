//===- tests/baselines/GmpLikeTest.cpp - GMP-like baseline ---------------------===//

#include "baselines/GmpLike.h"

#include "field/PrimeGen.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::baselines;
using mw::Bignum;

namespace {

struct Vectors {
  Bignum Q;
  std::vector<Bignum> A, B;
  Vectors(unsigned MBits, size_t N, std::uint64_t Seed) {
    Q = field::nttPrime(MBits, 8, 7);
    Rng R(Seed);
    for (size_t I = 0; I < N; ++I) {
      A.push_back(Bignum::random(R, Q));
      B.push_back(Bignum::random(R, Q));
    }
  }
};

} // namespace

TEST(GmpLikeVec, ElementwiseOpsMatchOracle) {
  Vectors V(252, 101, 1000);
  GmpLikeVec Ops(V.Q);
  sim::Device Dev;
  std::vector<Bignum> C;
  Ops.vadd(Dev, V.A, V.B, C);
  for (size_t I = 0; I < V.A.size(); ++I)
    EXPECT_EQ(C[I], V.A[I].addMod(V.B[I], V.Q));
  Ops.vsub(Dev, V.A, V.B, C);
  for (size_t I = 0; I < V.A.size(); ++I)
    EXPECT_EQ(C[I], V.A[I].subMod(V.B[I], V.Q));
  Ops.vmul(Dev, V.A, V.B, C);
  for (size_t I = 0; I < V.A.size(); ++I)
    EXPECT_EQ(C[I], V.A[I].mulMod(V.B[I], V.Q));
}

TEST(GmpLikeVec, AxpyMatchesOracle) {
  Vectors V(124, 64, 1001);
  GmpLikeVec Ops(V.Q);
  sim::Device Dev;
  Bignum S = Bignum(12345) % V.Q;
  std::vector<Bignum> Y = V.B;
  Ops.axpy(Dev, S, V.A, Y);
  for (size_t I = 0; I < V.A.size(); ++I)
    EXPECT_EQ(Y[I], S.mulMod(V.A[I], V.Q).addMod(V.B[I], V.Q));
}

TEST(GmpLikeVec, RejectsDegenerateModulus) {
  EXPECT_DEATH((void)GmpLikeVec(Bignum(1)), "modulus");
}
