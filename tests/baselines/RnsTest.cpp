//===- tests/baselines/RnsTest.cpp - RNS baseline ------------------------------===//

#include "baselines/Rns.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::baselines;
using mw::Bignum;

TEST(Rns, IsPrimeU32KnownValues) {
  EXPECT_TRUE(isPrimeU32(2));
  EXPECT_TRUE(isPrimeU32(3));
  EXPECT_TRUE(isPrimeU32(61));
  EXPECT_TRUE(isPrimeU32(2147483647u)); // 2^31 - 1
  EXPECT_TRUE(isPrimeU32(4294967291u)); // largest prime < 2^32
  EXPECT_FALSE(isPrimeU32(0));
  EXPECT_FALSE(isPrimeU32(1));
  EXPECT_FALSE(isPrimeU32(4294967295u)); // 3*5*17*257*65537
  EXPECT_FALSE(isPrimeU32(2147483647u - 1));
  EXPECT_FALSE(isPrimeU32(25326001u)); // strong pseudoprime to bases 2,3,5
}

TEST(Rns, ContextCoversRequestedRange) {
  for (unsigned Bits : {64u, 128u, 256u, 520u}) {
    RnsContext Ctx = RnsContext::withRangeBits(Bits);
    EXPECT_GT(Ctx.range().bitWidth(), Bits);
    for (std::uint32_t M : Ctx.moduli())
      EXPECT_TRUE(isPrimeU32(M));
    // Pairwise distinct (hence coprime, being primes).
    for (size_t I = 0; I + 1 < Ctx.moduli().size(); ++I)
      EXPECT_GT(Ctx.moduli()[I], Ctx.moduli()[I + 1]);
  }
}

TEST(Rns, EncodeDecodeRoundTrip) {
  RnsContext Ctx = RnsContext::forModulusBits(124);
  Rng R(990);
  for (int I = 0; I < 100; ++I) {
    Bignum X = Bignum::random(R, Ctx.range());
    EXPECT_EQ(Ctx.decode(Ctx.encode(X)), X);
  }
}

TEST(Rns, AddSubMulMatchOracleWithinRange) {
  RnsContext Ctx = RnsContext::forModulusBits(124);
  Rng R(991);
  for (int I = 0; I < 100; ++I) {
    Bignum A = Bignum::randomBits(R, 120), B = Bignum::randomBits(R, 120);
    auto RA = Ctx.encode(A), RB = Ctx.encode(B);
    EXPECT_EQ(Ctx.decode(Ctx.add(RA, RB)), A + B);
    EXPECT_EQ(Ctx.decode(Ctx.mul(RA, RB)), A * B);
    if (A >= B) {
      EXPECT_EQ(Ctx.decode(Ctx.sub(RA, RB)), A - B);
    }
  }
}

TEST(Rns, SubWrapsModM) {
  RnsContext Ctx = RnsContext::forModulusBits(64);
  Bignum A(5), B(9);
  // 5 - 9 mod M = M - 4.
  EXPECT_EQ(Ctx.decode(Ctx.sub(Ctx.encode(A), Ctx.encode(B))),
            Ctx.range() - Bignum(4));
}

TEST(Rns, MulModQMatchesOracle) {
  Rng R(992);
  Bignum Q = Bignum::powerOfTwo(124) - Bignum(59);
  RnsContext Ctx = RnsContext::forModulusBits(124);
  for (int I = 0; I < 50; ++I) {
    Bignum A = Bignum::random(R, Q), B = Bignum::random(R, Q);
    auto C = Ctx.mulModQ(Ctx.encode(A), Ctx.encode(B), Q);
    EXPECT_EQ(Ctx.decode(C), (A * B) % Q);
  }
}

TEST(Rns, FlatVectorOps) {
  RnsContext Ctx = RnsContext::forModulusBits(124);
  sim::Device Dev;
  Rng R(993);
  Bignum Q = Bignum::powerOfTwo(124) - Bignum(59);
  const size_t N = 33;
  size_t K = Ctx.numChannels();
  std::vector<std::uint64_t> A, B, C;
  std::vector<Bignum> ABig(N), BBig(N);
  for (size_t I = 0; I < N; ++I) {
    ABig[I] = Bignum::random(R, Q);
    BBig[I] = Bignum::random(R, Q);
    auto RA = Ctx.encode(ABig[I]), RB = Ctx.encode(BBig[I]);
    A.insert(A.end(), RA.begin(), RA.end());
    B.insert(B.end(), RB.begin(), RB.end());
  }
  Ctx.vaddFlat(Dev, A, B, C);
  for (size_t I = 0; I < N; ++I) {
    std::vector<std::uint64_t> Ci(C.begin() + I * K, C.begin() + (I + 1) * K);
    EXPECT_EQ(Ctx.decode(Ci), ABig[I] + BBig[I]);
  }
  Ctx.vmulModQFlat(Dev, A, B, C, Q);
  for (size_t I = 0; I < N; ++I) {
    std::vector<std::uint64_t> Ci(C.begin() + I * K, C.begin() + (I + 1) * K);
    EXPECT_EQ(Ctx.decode(Ci), ABig[I].mulMod(BBig[I], Q));
  }
}
