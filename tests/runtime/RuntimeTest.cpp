//===- tests/runtime/RuntimeTest.cpp - plan cache / tuner / dispatcher ---------===//
//
// Unit coverage for the batched-dispatch runtime: PlanKey canonicalization,
// KernelRegistry caching behavior, Dispatcher batch semantics against the
// Bignum oracle and the ntt:: engine, and Autotuner decision persistence.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "field/PrimeField.h"
#include "field/PrimeGen.h"
#include "ntt/Ntt.h"
#include "ntt/ReferenceDft.h"
#include "runtime/Autotuner.h"
#include "runtime/Dispatcher.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

using namespace moma;
using namespace moma::runtime;
using namespace moma::testutil;
using mw::Bignum;

namespace {

/// Shared registry: plans compiled by one test are cache hits for the next.
KernelRegistry &registry() {
  static KernelRegistry Reg;
  return Reg;
}

Bignum testModulus(unsigned Bits) { return field::nttPrime(Bits, 16); }

std::vector<Bignum> randomElems(Rng &R, const Bignum &Q, size_t N) {
  std::vector<Bignum> Out;
  for (size_t I = 0; I < N; ++I)
    Out.push_back(Bignum::random(R, Q));
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// PlanKey
//===----------------------------------------------------------------------===//

TEST(PlanKey, CanonicalContainerIsSmallestPow2WordFit) {
  EXPECT_EQ(PlanKey::canonicalContainerBits(60, 64), 64u);
  EXPECT_EQ(PlanKey::canonicalContainerBits(61, 64), 128u);
  EXPECT_EQ(PlanKey::canonicalContainerBits(124, 64), 128u);
  EXPECT_EQ(PlanKey::canonicalContainerBits(125, 64), 256u);
  EXPECT_EQ(PlanKey::canonicalContainerBits(380, 64), 512u);
  EXPECT_EQ(PlanKey::canonicalContainerBits(753, 64), 1024u);
}

TEST(PlanKey, ForModulusDerivesWidthsFromTheModulus) {
  Bignum Q = testModulus(124);
  PlanKey K = PlanKey::forModulus(KernelOp::MulMod, Q);
  EXPECT_EQ(K.ModBits, 124u);
  EXPECT_EQ(K.ContainerBits, 128u);
  EXPECT_EQ(K.problemStr(), "mulmod/c128/m124/w64");
  EXPECT_EQ(K.str(), "mulmod/c128/m124/w64/barrett/schoolbook/prune/"
                     "noschedule");
}

TEST(PlanKey, NonMultiplyingOpsFoldTheVariantKnobs) {
  Bignum Q = testModulus(124);
  rewrite::PlanOptions Mont;
  Mont.Red = mw::Reduction::Montgomery;
  Mont.MulAlg = mw::MulAlgorithm::Karatsuba;
  PlanKey A = PlanKey::forModulus(KernelOp::AddMod, Q, Mont);
  PlanKey B = PlanKey::forModulus(KernelOp::AddMod, Q);
  EXPECT_EQ(A.str(), B.str()) << "addmod has no multiply: one cache entry";
  PlanKey M = PlanKey::forModulus(KernelOp::MulMod, Q, Mont);
  EXPECT_NE(M.str(), PlanKey::forModulus(KernelOp::MulMod, Q).str());
}

//===----------------------------------------------------------------------===//
// KernelRegistry
//===----------------------------------------------------------------------===//

TEST(KernelRegistry, SecondRequestIsACacheHit) {
  PlanKey Key = PlanKey::forModulus(KernelOp::MulMod, testModulus(124));
  auto P1 = registry().get(Key);
  ASSERT_NE(P1, nullptr) << registry().error();
  KernelRegistry::Stats Before = registry().stats();
  auto P2 = registry().get(Key);
  ASSERT_NE(P2, nullptr);
  EXPECT_EQ(P1.get(), P2.get());
  EXPECT_EQ(registry().stats().Hits, Before.Hits + 1);
  EXPECT_EQ(registry().stats().Builds, Before.Builds);
}

TEST(KernelRegistry, PortLayoutMatchesTheKernelShape) {
  PlanKey Key = PlanKey::forModulus(KernelOp::Butterfly, testModulus(124));
  auto P = registry().get(Key);
  ASSERT_NE(P, nullptr) << registry().error();
  EXPECT_EQ(P->NumOutputs, 2u);     // xo, yo
  EXPECT_EQ(P->NumDataInputs, 3u);  // x, y, w
  EXPECT_EQ(P->ElemWords, 2u);      // 124-bit modulus
  ASSERT_EQ(P->AuxWords.size(), 2u); // q, mu
  EXPECT_EQ(P->AuxWords[0], 2u);
  rewrite::PlanOptions Mont;
  Mont.Red = mw::Reduction::Montgomery;
  auto PM = registry().get(PlanKey::forModulus(KernelOp::Butterfly,
                                               testModulus(124), Mont));
  ASSERT_NE(PM, nullptr) << registry().error();
  // The Montgomery butterfly takes its twiddle pre-converted to the
  // Montgomery domain, so a single REDC suffices: no r2 port.
  ASSERT_EQ(PM->AuxWords.size(), 2u); // q, qinv
  EXPECT_EQ(PM->AuxWords[1], 2u);     // qinv spans the container
  auto PMM = registry().get(PlanKey::forModulus(KernelOp::MulMod,
                                                testModulus(124), Mont));
  ASSERT_NE(PMM, nullptr) << registry().error();
  ASSERT_EQ(PMM->AuxWords.size(), 3u) // q, qinv, r2: mulmod stays
      << "plain-domain (double REDC)"; // domain-free on both ends
}

TEST(KernelRegistry, RejectsNon64BitWords) {
  PlanKey Key = PlanKey::forModulus(KernelOp::MulMod, testModulus(124));
  Key.Opts.TargetWordBits = 32;
  EXPECT_EQ(registry().get(Key), nullptr);
  EXPECT_NE(registry().error().find("64-bit"), std::string::npos);
}

TEST(KernelRegistry, RunBatchValidatesShapes) {
  auto P =
      registry().get(PlanKey::forModulus(KernelOp::MulMod, testModulus(124)));
  ASSERT_NE(P, nullptr) << registry().error();
  BatchArgs Bad; // no pointers at all
  std::string Err;
  EXPECT_FALSE(runBatch(*P, Bad, 1, &Err));
  EXPECT_NE(Err.find("output arrays"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Dispatcher: batched BLAS vs the Bignum oracle
//===----------------------------------------------------------------------===//

TEST(Dispatcher, BatchedBlasMatchesOracle) {
  Dispatcher D(registry());
  Bignum Q = testModulus(124);
  SeededRng R(0x12D1);
  const size_t N = 97; // deliberately not a round number
  unsigned K = Dispatcher::elemWords(Q);
  std::vector<Bignum> A = randomElems(R, Q, N), B = randomElems(R, Q, N);
  auto AW = packBatch(A, K), BW = packBatch(B, K);
  std::vector<std::uint64_t> CW(N * K);

  ASSERT_TRUE(D.vadd(Q, AW.data(), BW.data(), CW.data(), N)) << D.error();
  auto C = unpackBatch(CW, K);
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(C[I], A[I].addMod(B[I], Q)) << "vadd element " << I;

  ASSERT_TRUE(D.vsub(Q, AW.data(), BW.data(), CW.data(), N)) << D.error();
  C = unpackBatch(CW, K);
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(C[I], A[I].subMod(B[I], Q)) << "vsub element " << I;

  ASSERT_TRUE(D.vmul(Q, AW.data(), BW.data(), CW.data(), N)) << D.error();
  C = unpackBatch(CW, K);
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(C[I], A[I].mulMod(B[I], Q)) << "vmul element " << I;
}

TEST(Dispatcher, AxpyBroadcastsTheScalarAndRunsInPlace) {
  Dispatcher D(registry());
  Bignum Q = testModulus(124);
  SeededRng R(0x12D2);
  const size_t N = 41;
  unsigned K = Dispatcher::elemWords(Q);
  Bignum A = Bignum::random(R, Q);
  std::vector<Bignum> X = randomElems(R, Q, N), Y = randomElems(R, Q, N);
  auto AW = packWordsMsbFirst(A, K);
  auto XW = packBatch(X, K);
  auto YW = packBatch(Y, K);
  ASSERT_TRUE(D.axpy(Q, AW.data(), XW.data(), YW.data(), N)) << D.error();
  auto YOut = unpackBatch(YW, K);
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(YOut[I], A.mulMod(X[I], Q).addMod(Y[I], Q)) << "element " << I;
}

TEST(Dispatcher, MontgomeryBasePlanAgreesWithBarrett) {
  rewrite::PlanOptions Mont;
  Mont.Red = mw::Reduction::Montgomery;
  Dispatcher DBar(registry());
  Dispatcher DMont(registry(), nullptr, Mont);
  Bignum Q = testModulus(252);
  SeededRng R(0x12D3);
  const size_t N = 29;
  unsigned K = Dispatcher::elemWords(Q);
  auto A = randomElems(R, Q, N), B = randomElems(R, Q, N);
  auto AW = packBatch(A, K), BW = packBatch(B, K);
  std::vector<std::uint64_t> C1(N * K), C2(N * K);
  ASSERT_TRUE(DBar.vmul(Q, AW.data(), BW.data(), C1.data(), N))
      << DBar.error();
  ASSERT_TRUE(DMont.vmul(Q, AW.data(), BW.data(), C2.data(), N))
      << DMont.error();
  EXPECT_EQ(DMont.lastPlanOptions().Red, mw::Reduction::Montgomery);
  EXPECT_EQ(C1, C2) << "both reductions compute the plain-domain product";
}

TEST(Dispatcher, RejectsEvenModulusWithErrorInsteadOfAborting) {
  Dispatcher D(registry());
  Bignum Even = Bignum::powerOfTwo(100) + Bignum(2);
  std::vector<std::uint64_t> Buf(2 * 2, 0);
  EXPECT_FALSE(D.vmul(Even, Buf.data(), Buf.data(), Buf.data(), 2));
  EXPECT_NE(D.error().find("odd"), std::string::npos) << D.error();
}

TEST(Dispatcher, NonMultiplyingOpsBindOnceUnderAnyBasePlan) {
  // vadd folds the reduction knob away (PlanKey canonicalization); the
  // per-modulus binding cache must still hit when the dispatcher's base
  // plan carries non-default knobs.
  rewrite::PlanOptions Mont;
  Mont.Red = mw::Reduction::Montgomery;
  Dispatcher D(registry(), nullptr, Mont);
  Bignum Q = testModulus(124);
  SeededRng R(0x12D8);
  const size_t N = 8;
  unsigned K = Dispatcher::elemWords(Q);
  auto A = randomElems(R, Q, N), B = randomElems(R, Q, N);
  auto AW = packBatch(A, K), BW = packBatch(B, K);
  std::vector<std::uint64_t> CW(N * K);
  ASSERT_TRUE(D.vadd(Q, AW.data(), BW.data(), CW.data(), N)) << D.error();
  KernelRegistry::Stats After = registry().stats();
  ASSERT_TRUE(D.vadd(Q, AW.data(), BW.data(), CW.data(), N)) << D.error();
  EXPECT_EQ(registry().stats().Hits, After.Hits)
      << "second call must come from the dispatcher's bound-plan cache";
  EXPECT_EQ(registry().stats().Builds, After.Builds);
  auto C = unpackBatch(CW, K);
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(C[I], A[I].addMod(B[I], Q));
}

//===----------------------------------------------------------------------===//
// Dispatcher: batched NTT engine
//===----------------------------------------------------------------------===//

TEST(Dispatcher, BatchedNttMatchesTheEngine) {
  Dispatcher D(registry());
  auto F = field::PrimeField<2>::evaluationField(16);
  const Bignum &Q = F.modulusBig();
  const size_t N = 64, Batch = 3;
  unsigned K = Dispatcher::elemWords(Q);
  SeededRng R(0x12D4);

  std::vector<Bignum> Polys = randomElems(R, Q, N * Batch);
  auto Data = packBatch(Polys, K);
  ASSERT_TRUE(D.nttForward(Q, Data.data(), N, Batch)) << D.error();
  auto Got = unpackBatch(Data, K);

  for (size_t B = 0; B < Batch; ++B) {
    std::vector<field::PrimeField<2>::Element> X;
    for (size_t I = 0; I < N; ++I)
      X.push_back(F.fromBignum(Polys[B * N + I]));
    ntt::NttPlan<2> Plan(F, N);
    Plan.forward(X.data());
    for (size_t I = 0; I < N; ++I)
      ASSERT_EQ(Got[B * N + I], X[I].toBignum())
          << "batch " << B << " index " << I;
  }
}

TEST(Dispatcher, InverseUndoesForward) {
  Dispatcher D(registry());
  Bignum Q = testModulus(124);
  const size_t N = 128, Batch = 2;
  unsigned K = Dispatcher::elemWords(Q);
  SeededRng R(0x12D5);
  std::vector<Bignum> Polys = randomElems(R, Q, N * Batch);
  auto Data = packBatch(Polys, K);
  auto Orig = Data;
  ASSERT_TRUE(D.nttForward(Q, Data.data(), N, Batch)) << D.error();
  EXPECT_NE(Data, Orig);
  ASSERT_TRUE(D.nttInverse(Q, Data.data(), N, Batch)) << D.error();
  EXPECT_EQ(Data, Orig);
}

TEST(Dispatcher, BatchedPolyMulMatchesReference) {
  Dispatcher D(registry());
  Bignum Q = testModulus(124);
  const size_t N = 32, Terms = 16, Batch = 4;
  unsigned K = Dispatcher::elemWords(Q);
  SeededRng R(0x12D6);

  std::vector<Bignum> A, B;
  std::vector<std::uint64_t> AW, BW;
  for (size_t P = 0; P < Batch; ++P) {
    auto PA = randomElems(R, Q, Terms), PB = randomElems(R, Q, Terms);
    PA.resize(N, Bignum(0));
    PB.resize(N, Bignum(0));
    auto WA = packBatch(PA, K), WB = packBatch(PB, K);
    AW.insert(AW.end(), WA.begin(), WA.end());
    BW.insert(BW.end(), WB.begin(), WB.end());
    A.insert(A.end(), PA.begin(), PA.end());
    B.insert(B.end(), PB.begin(), PB.end());
  }
  std::vector<std::uint64_t> CW(Batch * N * K);
  ASSERT_TRUE(D.polyMul(Q, AW.data(), BW.data(), CW.data(), N, Batch))
      << D.error();
  auto C = unpackBatch(CW, K);
  for (size_t P = 0; P < Batch; ++P) {
    std::vector<Bignum> PA(A.begin() + P * N, A.begin() + P * N + Terms);
    std::vector<Bignum> PB(B.begin() + P * N, B.begin() + P * N + Terms);
    auto Ref = ntt::referencePolyMul(PA, PB, Q); // deg < n: no wraparound
    for (size_t I = 0; I < Ref.size(); ++I)
      ASSERT_EQ(C[P * N + I], Ref[I]) << "poly " << P << " coeff " << I;
  }
}

TEST(Dispatcher, RejectsBadNttShapes) {
  Dispatcher D(registry());
  Bignum Q = testModulus(124);
  std::vector<std::uint64_t> Data(6 * 2);
  EXPECT_FALSE(D.nttForward(Q, Data.data(), 6, 1));
  EXPECT_NE(D.error().find("power of two"), std::string::npos);
  // 2-adicity exhausted: nttPrime(124, 16) supports at most 2^16.
  EXPECT_FALSE(D.nttForward(Q, Data.data(), size_t(1) << 20, 0));
  EXPECT_NE(D.error().find("2-adicity"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Autotuner
//===----------------------------------------------------------------------===//

namespace {

AutotunerOptions quickTune() {
  AutotunerOptions O;
  O.CalibrationElems = 32;
  O.Repeats = 1;
  return O;
}

} // namespace

TEST(Autotuner, TunesOnceThenReuses) {
  Autotuner T(registry(), quickTune());
  Bignum Q = testModulus(124);
  const TuneDecision *D1 = T.choose(KernelOp::MulMod, Q);
  ASSERT_NE(D1, nullptr) << T.error();
  EXPECT_EQ(T.stats().Tuned, 1u);
  EXPECT_GT(T.stats().Candidates, 1u) << "swept multiple variants";
  EXPECT_GT(D1->NsPerElem, 0.0);
  const TuneDecision *D2 = T.choose(KernelOp::MulMod, Q);
  EXPECT_EQ(D1, D2);
  EXPECT_EQ(T.stats().Tuned, 1u);
  EXPECT_EQ(T.stats().Reused, 1u);
}

TEST(Autotuner, DecisionsSurviveSaveAndLoad) {
  namespace fs = std::filesystem;
  std::string Path =
      (fs::temp_directory_path() / "moma-tune-test.json").string();
  std::remove(Path.c_str());

  Bignum Q = testModulus(252);
  Autotuner T1(registry(), quickTune());
  const TuneDecision *D1 = T1.choose(KernelOp::Butterfly, Q);
  ASSERT_NE(D1, nullptr) << T1.error();
  rewrite::PlanOptions Won = D1->Opts;
  ASSERT_TRUE(T1.save(Path));

  Autotuner T2(registry(), quickTune());
  ASSERT_TRUE(T2.load(Path)) << T2.error();
  const TuneDecision *D2 = T2.choose(KernelOp::Butterfly, Q);
  ASSERT_NE(D2, nullptr) << T2.error();
  EXPECT_TRUE(D2->FromCache) << "persisted decision must not be re-timed";
  EXPECT_EQ(T2.stats().Tuned, 0u);
  EXPECT_TRUE(D2->Opts == Won) << "loaded " << D2->Opts.str() << ", tuned "
                               << Won.str();
  std::remove(Path.c_str());
}

TEST(Autotuner, CachePathOptionLoadsAtConstruction) {
  namespace fs = std::filesystem;
  std::string Path =
      (fs::temp_directory_path() / "moma-tune-ctor.json").string();
  std::remove(Path.c_str());
  Bignum Q = testModulus(60);

  AutotunerOptions O = quickTune();
  O.CachePath = Path;
  {
    Autotuner T(registry(), O);
    ASSERT_NE(T.choose(KernelOp::MulMod, Q), nullptr) << T.error();
    EXPECT_EQ(T.stats().Tuned, 1u);
  }
  Autotuner T2(registry(), O); // loads the file written by the tune above
  const TuneDecision *D = T2.choose(KernelOp::MulMod, Q);
  ASSERT_NE(D, nullptr) << T2.error();
  EXPECT_TRUE(D->FromCache);
  EXPECT_EQ(T2.stats().Tuned, 0u);
  std::remove(Path.c_str());
}

TEST(Autotuner, SeparateDecisionsForConflictingBasePlans) {
  // With the reduction dimension pinned, a Montgomery-base and a
  // Barrett-base caller must not share a decision entry.
  AutotunerOptions O = quickTune();
  O.TuneReduction = false;
  Autotuner T(registry(), O);
  Bignum Q = testModulus(124);
  rewrite::PlanOptions Mont;
  Mont.Red = mw::Reduction::Montgomery;
  const TuneDecision *DM = T.choose(KernelOp::MulMod, Q, Mont);
  ASSERT_NE(DM, nullptr) << T.error();
  EXPECT_EQ(DM->Opts.Red, mw::Reduction::Montgomery);
  const TuneDecision *DB = T.choose(KernelOp::MulMod, Q);
  ASSERT_NE(DB, nullptr) << T.error();
  EXPECT_EQ(DB->Opts.Red, mw::Reduction::Barrett)
      << "Barrett-base caller must not inherit the Montgomery decision";
  EXPECT_EQ(T.numDecisions(), 2u);
}

TEST(Autotuner, LoadRejectsGarbage) {
  namespace fs = std::filesystem;
  std::string Path =
      (fs::temp_directory_path() / "moma-tune-garbage.json").string();
  {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    ASSERT_NE(F, nullptr);
    std::fputs("this is not json {", F);
    std::fclose(F);
  }
  Autotuner T(registry(), quickTune());
  EXPECT_FALSE(T.load(Path));
  EXPECT_NE(T.error().find("JSON"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(Autotuner, DispatcherUsesTheTunedVariant) {
  Autotuner T(registry(), quickTune());
  Dispatcher D(registry(), &T);
  Bignum Q = testModulus(124);
  SeededRng R(0x12D7);
  const size_t N = 16;
  unsigned K = Dispatcher::elemWords(Q);
  auto A = randomElems(R, Q, N), B = randomElems(R, Q, N);
  auto AW = packBatch(A, K), BW = packBatch(B, K);
  std::vector<std::uint64_t> CW(N * K);
  ASSERT_TRUE(D.vmul(Q, AW.data(), BW.data(), CW.data(), N)) << D.error();
  const TuneDecision *Dec = T.choose(KernelOp::MulMod, Q);
  ASSERT_NE(Dec, nullptr);
  EXPECT_TRUE(D.lastPlanOptions() == Dec->Opts);
  auto C = unpackBatch(CW, K);
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(C[I], A[I].mulMod(B[I], Q));
}
