//===- tests/runtime/FaultInjectionTest.cpp - chaos suite for the runtime ---===//
//
// Deterministic fault injection (support/FaultInjection.h) driven through
// every runtime site, and the degradation ladder that absorbs the damage:
// bounded retry with exponential backoff in the KernelRegistry, negative
// caching of terminally-failed keys, the interpreter fallback backend
// (bit-identical to JIT on every op class), and background promotion back
// to compiled code once the fault heals.
//
// Every test arms sites through the process-wide registry, so the suite
// always clears it on entry and exit (FaultGuard). Registries use
// memory-only JIT caches: a disk-cached .so would bypass an injected
// compile failure entirely.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "field/PrimeGen.h"
#include "runtime/Autotuner.h"
#include "runtime/Dispatcher.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <thread>
#include <unistd.h>

using namespace moma;
using namespace moma::runtime;
using namespace moma::testutil;
using moma::support::FaultInjection;
using moma::support::FaultPolicy;
using mw::Bignum;

namespace {

/// Arms nothing and clears everything, on both ends of every test: the
/// fault registry is process-wide state.
struct FaultGuard {
  FaultGuard() { FaultInjection::instance().clear(); }
  ~FaultGuard() { FaultInjection::instance().clear(); }
};

Bignum q60() { return field::nttPrime(60, 16); }
Bignum q124() { return field::nttPrime(124, 16); }

/// A throwaway cache directory with UseDiskCache off: every cold load is
/// a real compile, so injected compile faults actually fire.
class FreshCacheDir {
public:
  explicit FreshCacheDir(const std::string &Name)
      : Path(::testing::TempDir() + "/fault_" + Name + "_" +
             std::to_string(::getpid())) {
    std::filesystem::remove_all(Path);
  }
  ~FreshCacheDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  jit::HostJitOptions options() const {
    jit::HostJitOptions Opts;
    Opts.CacheDir = Path;
    Opts.UseDiskCache = false;
    return Opts;
  }
  const std::string Path;
};

/// Retry policy with microscopic backoff so retry-heavy tests stay fast.
KernelRegistry::RetryPolicy fastRetry(unsigned MaxAttempts = 3) {
  KernelRegistry::RetryPolicy P;
  P.MaxAttempts = MaxAttempts;
  P.InitialBackoffUs = 50;
  P.BackoffMultiplier = 2;
  P.MaxBackoffUs = 400;
  return P;
}

std::vector<std::uint64_t> randomWords(Rng &R, const Bignum &Q, size_t N) {
  std::vector<Bignum> E;
  for (size_t I = 0; I < N; ++I)
    E.push_back(Bignum::random(R, Q));
  return packBatch(E, Dispatcher::elemWords(Q));
}

void runThreads(int N, const std::function<void(int)> &Fn) {
  std::atomic<int> Ready{0};
  std::vector<std::thread> T;
  for (int I = 0; I < N; ++I)
    T.emplace_back([&, I] {
      Ready.fetch_add(1);
      while (Ready.load() < N)
        std::this_thread::yield();
      Fn(I);
    });
  for (auto &Th : T)
    Th.join();
}

} // namespace

//===----------------------------------------------------------------------===//
// The framework itself: policies, counters, determinism
//===----------------------------------------------------------------------===//

TEST(FaultInjection, FailNTimesThenHeals) {
  FaultGuard G;
  FaultInjection &FI = FaultInjection::instance();
  FI.configure("test.site", FaultPolicy::failTimes(2));
  EXPECT_TRUE(support::faultShouldFail("test.site"));
  EXPECT_TRUE(support::faultShouldFail("test.site"));
  EXPECT_FALSE(support::faultShouldFail("test.site"));
  EXPECT_FALSE(support::faultShouldFail("test.site"));
  FaultInjection::SiteCounters C = FI.counters("test.site");
  EXPECT_EQ(C.Hits, 4u);
  EXPECT_EQ(C.Triggers, 2u);
  // An unarmed site is never counted and never fails.
  EXPECT_FALSE(support::faultShouldFail("test.other"));
  EXPECT_EQ(FI.counters("test.other").Hits, 0u);
}

TEST(FaultInjection, SpecGrammarRoundTrips) {
  FaultGuard G;
  FaultInjection &FI = FaultInjection::instance();
  std::string Err;
  ASSERT_TRUE(FI.configureFromSpec(
      "a.one=fail:1;b.two=prob:1.0:seed:7;c.three=delay:100+fail:1", &Err))
      << Err;
  EXPECT_TRUE(support::faultShouldFail("a.one"));
  EXPECT_FALSE(support::faultShouldFail("a.one"));
  EXPECT_TRUE(support::faultShouldFail("b.two")); // P = 1: every draw fails
  EXPECT_TRUE(support::faultShouldFail("c.three"));
  EXPECT_FALSE(support::faultShouldFail("c.three"));

  EXPECT_FALSE(FI.configureFromSpec("nonsense", &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(FI.configureFromSpec("x=frob:3", &Err));
}

TEST(FaultInjection, ProbabilisticDrawsAreSeedDeterministic) {
  FaultGuard G;
  FaultInjection &FI = FaultInjection::instance();
  auto Sequence = [&] {
    FI.clear();
    FI.configure("prob.site", FaultPolicy::failProb(0.5, 0x5eed));
    std::vector<bool> S;
    for (int I = 0; I < 64; ++I)
      S.push_back(support::faultShouldFail("prob.site"));
    return S;
  };
  std::vector<bool> First = Sequence(), Second = Sequence();
  EXPECT_EQ(First, Second) << "same seed must replay the same failures";
  size_t Fails = 0;
  for (bool B : First)
    Fails += B;
  EXPECT_GT(Fails, 16u); // loose: P=0.5 over 64 draws
  EXPECT_LT(Fails, 48u);
}

TEST(FaultInjection, DelayPolicySleeps) {
  FaultGuard G;
  FaultInjection::instance().configure("slow.site",
                                       FaultPolicy::delayUs(20000));
  const auto T0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(support::faultShouldFail("slow.site")); // delay-only
  const auto Elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - T0);
  EXPECT_GE(Elapsed.count(), 15000) << "injected delay did not sleep";
}

TEST(FaultInjection, ClearDisarmsEverything) {
  FaultGuard G;
  FaultInjection &FI = FaultInjection::instance();
  FI.configure("gone.site", FaultPolicy::failAlways());
  EXPECT_TRUE(FI.anyConfigured());
  EXPECT_TRUE(support::faultShouldFail("gone.site"));
  FI.clear();
  EXPECT_FALSE(support::faultShouldFail("gone.site"));
  EXPECT_EQ(FI.counters("gone.site").Hits, 0u)
      << "clear() must zero the counters too";
}

//===----------------------------------------------------------------------===//
// The interpreter backend: bit-identical to JIT on every op class
//===----------------------------------------------------------------------===//

TEST(InterpBackend, BlasMatchesJitBothReductionsBothWidths) {
  FaultGuard G;
  SeededRng R(0x1b7e);
  FreshCacheDir Dir("interpblas");
  KernelRegistry Reg(Dir.options());
  const size_t N = 24;
  for (mw::Reduction Red : {mw::Reduction::Barrett,
                            mw::Reduction::Montgomery}) {
    for (const Bignum &Q : {q60(), q124()}) {
      const unsigned K = Dispatcher::elemWords(Q);
      rewrite::PlanOptions Jit;
      Jit.Red = Red;
      rewrite::PlanOptions Interp = Jit;
      Interp.Backend = rewrite::ExecBackend::Interp;
      Dispatcher DJ(Reg, nullptr, Jit), DI(Reg, nullptr, Interp);

      std::vector<std::uint64_t> A = randomWords(R, Q, N),
                                 B = randomWords(R, Q, N), Want(N * K),
                                 Got(N * K);
      ASSERT_TRUE(DJ.vadd(Q, A.data(), B.data(), Want.data(), N))
          << DJ.error();
      ASSERT_TRUE(DI.vadd(Q, A.data(), B.data(), Got.data(), N))
          << DI.error();
      EXPECT_EQ(Got, Want) << "vadd diverges";
      ASSERT_TRUE(DJ.vsub(Q, A.data(), B.data(), Want.data(), N));
      ASSERT_TRUE(DI.vsub(Q, A.data(), B.data(), Got.data(), N))
          << DI.error();
      EXPECT_EQ(Got, Want) << "vsub diverges";
      ASSERT_TRUE(DJ.vmul(Q, A.data(), B.data(), Want.data(), N));
      ASSERT_TRUE(DI.vmul(Q, A.data(), B.data(), Got.data(), N))
          << DI.error();
      EXPECT_EQ(Got, Want) << "vmul diverges";

      std::vector<std::uint64_t> S =
          packWordsMsbFirst(Bignum::random(R, Q), K);
      std::vector<std::uint64_t> YJ = B, YI = B;
      ASSERT_TRUE(DJ.axpy(Q, S.data(), A.data(), YJ.data(), N));
      ASSERT_TRUE(DI.axpy(Q, S.data(), A.data(), YI.data(), N))
          << DI.error();
      EXPECT_EQ(YI, YJ) << "axpy diverges";
      EXPECT_EQ(DI.lastPlanOptions().Backend, rewrite::ExecBackend::Interp);
    }
  }
}

TEST(InterpBackend, NttAndPolyMulMatchJitBothRings) {
  FaultGuard G;
  SeededRng R(0x1b7f);
  FreshCacheDir Dir("interpntt");
  KernelRegistry Reg(Dir.options());
  const Bignum Q = q60();
  const unsigned K = Dispatcher::elemWords(Q);
  const size_t N = 16, Batch = 3;
  rewrite::PlanOptions Jit; // FuseDepth 1; fused depths ride FuseDepth > 1
  rewrite::PlanOptions Interp = Jit;
  Interp.Backend = rewrite::ExecBackend::Interp;
  Interp.FuseDepth = 2; // exercise the fused stage-group host mirror
  Dispatcher DJ(Reg, nullptr, Jit), DI(Reg, nullptr, Interp);

  for (rewrite::NttRing Ring : {rewrite::NttRing::Cyclic,
                                rewrite::NttRing::Negacyclic}) {
    std::vector<std::uint64_t> Data = randomWords(R, Q, N * Batch);
    std::vector<std::uint64_t> Want = Data, Got = Data;
    ASSERT_TRUE(DJ.nttForward(Q, Want.data(), N, Batch, Ring))
        << DJ.error();
    ASSERT_TRUE(DI.nttForward(Q, Got.data(), N, Batch, Ring)) << DI.error();
    EXPECT_EQ(Got, Want) << "forward transform diverges";
    ASSERT_TRUE(DJ.nttInverse(Q, Want.data(), N, Batch, Ring));
    ASSERT_TRUE(DI.nttInverse(Q, Got.data(), N, Batch, Ring)) << DI.error();
    EXPECT_EQ(Got, Want) << "inverse transform diverges";
    EXPECT_EQ(Got, Data) << "round trip lost the input";

    std::vector<std::uint64_t> A = randomWords(R, Q, N * Batch),
                               B = randomWords(R, Q, N * Batch),
                               CW(N * Batch * K), CI(N * Batch * K);
    ASSERT_TRUE(DJ.polyMul(Q, A.data(), B.data(), CW.data(), N, Batch,
                           Ring));
    ASSERT_TRUE(
        DI.polyMul(Q, A.data(), B.data(), CI.data(), N, Batch, Ring))
        << DI.error();
    EXPECT_EQ(CI, CW) << "polyMul diverges on ring "
                      << rewrite::nttRingName(Ring);
  }
}

TEST(InterpBackend, RnsMatchesJit) {
  FaultGuard G;
  SeededRng R(0x1b80);
  FreshCacheDir Dir("interprns");
  KernelRegistry Reg(Dir.options());
  std::string Err;
  RnsContext Ctx;
  ASSERT_TRUE(RnsContext::create(3, Ctx, &Err)) << Err;
  const size_t N = 8;
  const size_t Row = N * Ctx.wideWords();
  rewrite::PlanOptions Interp;
  Interp.Backend = rewrite::ExecBackend::Interp;
  Dispatcher DJ(Reg), DI(Reg, nullptr, Interp);

  std::vector<Bignum> EA, EB;
  for (size_t I = 0; I < N; ++I) {
    EA.push_back(Bignum::random(R, Ctx.modulus()));
    EB.push_back(Bignum::random(R, Ctx.modulus()));
  }
  std::vector<std::uint64_t> A = packBatch(EA, Ctx.wideWords()),
                             B = packBatch(EB, Ctx.wideWords()), Want(Row),
                             Got(Row);
  ASSERT_TRUE(DJ.rnsVMul(Ctx, A.data(), B.data(), Want.data(), N))
      << DJ.error();
  ASSERT_TRUE(DI.rnsVMul(Ctx, A.data(), B.data(), Got.data(), N))
      << DI.error();
  EXPECT_EQ(Got, Want) << "rnsVMul diverges";
  ASSERT_TRUE(DJ.rnsVAdd(Ctx, A.data(), B.data(), Want.data(), N));
  ASSERT_TRUE(DI.rnsVAdd(Ctx, A.data(), B.data(), Got.data(), N))
      << DI.error();
  EXPECT_EQ(Got, Want) << "rnsVAdd diverges";
  ASSERT_TRUE(DJ.rnsPolyMul(Ctx, A.data(), B.data(), Want.data(), N, 1));
  ASSERT_TRUE(DI.rnsPolyMul(Ctx, A.data(), B.data(), Got.data(), N, 1))
      << DI.error();
  EXPECT_EQ(Got, Want) << "rnsPolyMul diverges";
}

//===----------------------------------------------------------------------===//
// Site-by-site: transient faults retry, persistent faults exhaust
//===----------------------------------------------------------------------===//

TEST(FaultSites, JitCompileTransientRecoversWithExactRetryArithmetic) {
  FaultGuard G;
  FreshCacheDir Dir("jitcompile_t");
  KernelRegistry Reg(Dir.options());
  Reg.setRetryPolicy(fastRetry(3));
  FaultInjection::instance().configure("jit.compile",
                                       FaultPolicy::failTimes(2));
  auto P = Reg.get(PlanKey::forModulus(KernelOp::MulMod, q60()));
  ASSERT_NE(P, nullptr) << Reg.error();
  KernelRegistry::Stats S = Reg.stats();
  EXPECT_EQ(S.Attempts, 3u); // two faulted builds + the success
  EXPECT_EQ(S.Retries, 2u);
  EXPECT_EQ(S.Builds, 1u);
  EXPECT_EQ(S.FailedBuilds, 0u);
  EXPECT_EQ(FaultInjection::instance().counters("jit.compile").Triggers, 2u);
  EXPECT_FALSE(Reg.degraded());
}

TEST(FaultSites, JitCompilePersistentExhaustsRetriesAndDegrades) {
  FaultGuard G;
  FreshCacheDir Dir("jitcompile_p");
  KernelRegistry Reg(Dir.options());
  Reg.setRetryPolicy(fastRetry(3));
  FaultInjection::instance().configure("jit.compile",
                                       FaultPolicy::failAlways());
  auto P = Reg.get(PlanKey::forModulus(KernelOp::MulMod, q60()));
  EXPECT_EQ(P, nullptr);
  EXPECT_NE(Reg.error().find("jit.compile"), std::string::npos)
      << Reg.error();
  KernelRegistry::Stats S = Reg.stats();
  EXPECT_EQ(S.Attempts, 3u);
  EXPECT_EQ(S.Retries, 2u);
  EXPECT_EQ(S.FailedBuilds, 1u);
  EXPECT_TRUE(Reg.degraded());
  EXPECT_EQ(Reg.degradedKeys().size(), 1u);
}

TEST(FaultSites, JitDlopenFaultIsTransient) {
  FaultGuard G;
  FreshCacheDir Dir("dlopen_t");
  KernelRegistry Reg(Dir.options());
  Reg.setRetryPolicy(fastRetry(3));
  FaultInjection::instance().configure("jit.dlopen",
                                       FaultPolicy::failTimes(1));
  auto P = Reg.get(PlanKey::forModulus(KernelOp::AddMod, q60()));
  ASSERT_NE(P, nullptr) << Reg.error();
  EXPECT_EQ(Reg.stats().Retries, 1u);
  EXPECT_EQ(FaultInjection::instance().counters("jit.dlopen").Triggers, 1u);
}

TEST(FaultSites, RegistryBuildTransientAndPersistent) {
  FaultGuard G;
  FreshCacheDir Dir("regbuild");
  KernelRegistry Reg(Dir.options());
  Reg.setRetryPolicy(fastRetry(2));
  Reg.setNegativeTtlUs(0); // determinism: no fast-fail window
  FaultInjection &FI = FaultInjection::instance();

  FI.configure("registry.build", FaultPolicy::failTimes(1));
  auto P = Reg.get(PlanKey::forModulus(KernelOp::MulMod, q60()));
  ASSERT_NE(P, nullptr) << Reg.error();
  EXPECT_EQ(Reg.stats().Retries, 1u);

  FI.configure("registry.build", FaultPolicy::failAlways());
  auto P2 = Reg.get(PlanKey::forModulus(KernelOp::AddMod, q60()));
  EXPECT_EQ(P2, nullptr);
  EXPECT_NE(Reg.error().find("registry.build"), std::string::npos)
      << Reg.error();
  EXPECT_EQ(Reg.stats().FailedBuilds, 1u);

  // Heal: the same key builds on re-request and the degraded flag drops.
  FI.clear("registry.build");
  auto P3 = Reg.get(PlanKey::forModulus(KernelOp::AddMod, q60()));
  ASSERT_NE(P3, nullptr) << Reg.error();
  EXPECT_FALSE(Reg.degraded());
}

TEST(FaultSites, AutotunerTimingFaultDegradesToBasePlan) {
  FaultGuard G;
  FreshCacheDir Dir("tunefault");
  KernelRegistry Reg(Dir.options());
  AutotunerOptions TO;
  TO.CalibrationElems = 16;
  TO.MaxCalibrationElems = 16;
  TO.Repeats = 1;
  TO.TuneBackend = false;
  TO.TunePrune = false;
  TO.TuneSchedule = false;
  Autotuner Tuner(Reg, TO);
  FaultInjection::instance().configure("autotuner.time",
                                       FaultPolicy::failAlways());
  SeededRng R(0x7a3e);
  const Bignum Q = q60();
  const size_t N = 8;
  const unsigned K = Dispatcher::elemWords(Q);
  Dispatcher D(Reg, &Tuner);
  std::vector<std::uint64_t> A = randomWords(R, Q, N),
                             B = randomWords(R, Q, N), C(N * K);
  // Every candidate timing is poisoned, so the sweep fails — and the
  // ladder serves the base plan instead of failing the request.
  ASSERT_TRUE(D.vmul(Q, A.data(), B.data(), C.data(), N)) << D.error();
  EXPECT_GE(D.degradeCounters().TunerFallbacks, 1u);
  EXPECT_GT(FaultInjection::instance().counters("autotuner.time").Triggers,
            0u);

  // Reference through a clean dispatcher: the degraded path still
  // computes the right numbers.
  Dispatcher Ref(Reg);
  std::vector<std::uint64_t> Want(N * K);
  ASSERT_TRUE(Ref.vmul(Q, A.data(), B.data(), Want.data(), N));
  EXPECT_EQ(C, Want);
}

TEST(FaultSites, SimLaunchFaultFailsGracefullyThenHeals) {
  FaultGuard G;
  FreshCacheDir Dir("simlaunch");
  KernelRegistry Reg(Dir.options());
  SeededRng R(0x51f0);
  const Bignum Q = q60();
  const size_t N = 32;
  const unsigned K = Dispatcher::elemWords(Q);
  rewrite::PlanOptions Opts;
  Opts.Backend = rewrite::ExecBackend::SimGpu;
  Dispatcher D(Reg, nullptr, Opts);
  std::vector<std::uint64_t> A = randomWords(R, Q, N),
                             B = randomWords(R, Q, N), C(N * K);
  // Warm the plan first: the injected refusal must surface at launch, not
  // during the build.
  ASSERT_TRUE(D.vmul(Q, A.data(), B.data(), C.data(), N)) << D.error();

  FaultInjection::instance().configure("sim.launch",
                                       FaultPolicy::failTimes(1));
  EXPECT_FALSE(D.vmul(Q, A.data(), B.data(), C.data(), N));
  EXPECT_NE(D.error().find("sim.launch"), std::string::npos) << D.error();

  // One-shot fault: the next launch heals and matches the serial answer.
  ASSERT_TRUE(D.vmul(Q, A.data(), B.data(), C.data(), N)) << D.error();
  Dispatcher Serial(Reg);
  std::vector<std::uint64_t> Want(N * K);
  ASSERT_TRUE(Serial.vmul(Q, A.data(), B.data(), Want.data(), N));
  EXPECT_EQ(C, Want);
}

//===----------------------------------------------------------------------===//
// The ladder end to end: negative cache, fallback, stampede, promotion
//===----------------------------------------------------------------------===//

TEST(DegradationLadder, NegativeCacheFastFailsInsideTtl) {
  FaultGuard G;
  FreshCacheDir Dir("negcache");
  KernelRegistry Reg(Dir.options());
  Reg.setRetryPolicy(fastRetry(2));
  Reg.setNegativeTtlUs(30u * 1000 * 1000); // far beyond the test's runtime
  FaultInjection::instance().configure("jit.compile",
                                       FaultPolicy::failAlways());
  const PlanKey Key = PlanKey::forModulus(KernelOp::MulMod, q60());
  EXPECT_EQ(Reg.get(Key), nullptr);
  KernelRegistry::Stats S1 = Reg.stats();
  EXPECT_EQ(S1.Attempts, 2u);
  EXPECT_EQ(S1.NegativeHits, 0u);

  // Inside the TTL the key fast-fails: no new build attempts, the cached
  // diagnostics replayed.
  EXPECT_EQ(Reg.get(Key), nullptr);
  EXPECT_FALSE(Reg.error().empty());
  KernelRegistry::Stats S2 = Reg.stats();
  EXPECT_EQ(S2.Attempts, 2u) << "negative cache failed to stop a re-build";
  EXPECT_EQ(S2.NegativeHits, 1u);
  EXPECT_EQ(FaultInjection::instance().counters("jit.compile").Triggers, 2u)
      << "the compiler was poked again despite the negative entry";
}

TEST(DegradationLadder, StampedeObservesOneRetrySequence) {
  FaultGuard G;
  FreshCacheDir Dir("stampede");
  KernelRegistry Reg(Dir.options());
  Reg.setRetryPolicy(fastRetry(3));
  FaultInjection::instance().configure("jit.compile",
                                       FaultPolicy::failTimes(2));
  const PlanKey Key = PlanKey::forModulus(KernelOp::MulMod, q60());
  const int Threads = 8;
  std::vector<std::shared_ptr<const CompiledPlan>> Got(Threads);
  runThreads(Threads, [&](int I) { Got[I] = Reg.get(Key); });
  for (int I = 0; I < Threads; ++I) {
    ASSERT_NE(Got[I], nullptr) << Reg.error();
    EXPECT_EQ(Got[I].get(), Got[0].get());
  }
  // Eight stampeding threads share ONE flight, so the retry arithmetic is
  // exactly a single leader's: 3 attempts, 2 retries, 1 built plan, 2
  // fault triggers — not 8x any of it.
  KernelRegistry::Stats S = Reg.stats();
  EXPECT_EQ(S.Builds, 1u);
  EXPECT_EQ(S.Attempts, 3u);
  EXPECT_EQ(S.Retries, 2u);
  EXPECT_EQ(FaultInjection::instance().counters("jit.compile").Triggers, 2u);
}

TEST(DegradationLadder, PersistentFaultFallsBackToInterpBitIdentical) {
  FaultGuard G;
  SeededRng R(0xfa11);
  const Bignum Q = q60();
  const unsigned K = Dispatcher::elemWords(Q);
  const size_t VecN = 16, PolyN = 8;

  // Baseline through a healthy registry.
  FreshCacheDir DirA("ladder_ok");
  KernelRegistry RegA(DirA.options());
  Dispatcher Ref(RegA);
  std::vector<std::uint64_t> A = randomWords(R, Q, VecN),
                             B = randomWords(R, Q, VecN), WantV(VecN * K);
  std::vector<std::uint64_t> PA = randomWords(R, Q, PolyN),
                             PB = randomWords(R, Q, PolyN),
                             WantC(PolyN * K), WantN(PolyN * K);
  ASSERT_TRUE(Ref.vmul(Q, A.data(), B.data(), WantV.data(), VecN));
  ASSERT_TRUE(Ref.polyMul(Q, PA.data(), PB.data(), WantC.data(), PolyN, 1,
                          rewrite::NttRing::Cyclic));
  ASSERT_TRUE(Ref.polyMul(Q, PA.data(), PB.data(), WantN.data(), PolyN, 1,
                          rewrite::NttRing::Negacyclic));

  // Same requests against a registry whose compiler never works again.
  FreshCacheDir DirB("ladder_bad");
  KernelRegistry RegB(DirB.options());
  RegB.setRetryPolicy(fastRetry(2));
  FaultInjection::instance().configure("jit.compile",
                                       FaultPolicy::failAlways());
  Dispatcher D(RegB);
  std::vector<std::uint64_t> GotV(VecN * K), GotC(PolyN * K),
      GotN(PolyN * K);
  ASSERT_TRUE(D.vmul(Q, A.data(), B.data(), GotV.data(), VecN))
      << D.error();
  EXPECT_EQ(D.lastPlanOptions().Backend, rewrite::ExecBackend::Interp)
      << "request was not served by the fallback backend";
  ASSERT_TRUE(D.polyMul(Q, PA.data(), PB.data(), GotC.data(), PolyN, 1,
                        rewrite::NttRing::Cyclic))
      << D.error();
  ASSERT_TRUE(D.polyMul(Q, PA.data(), PB.data(), GotN.data(), PolyN, 1,
                        rewrite::NttRing::Negacyclic))
      << D.error();
  EXPECT_EQ(GotV, WantV) << "vmul diverges under degradation";
  EXPECT_EQ(GotC, WantC) << "cyclic polyMul diverges under degradation";
  EXPECT_EQ(GotN, WantN) << "negacyclic polyMul diverges under degradation";

  Dispatcher::DegradeCounters DC = D.degradeCounters();
  EXPECT_GE(DC.FallbackBinds, 2u); // mulmod + butterfly at least
  EXPECT_GE(DC.FallbackDispatches, DC.FallbackBinds);
  EXPECT_EQ(DC.Promotions, 0u);
  EXPECT_TRUE(RegB.degraded());
  EXPECT_GT(RegB.stats().FailedBuilds, 0u);
}

TEST(DegradationLadder, HealedFaultPromotesBackToJit) {
  FaultGuard G;
  SeededRng R(0x9e41);
  FreshCacheDir Dir("promote");
  KernelRegistry Reg(Dir.options());
  Reg.setRetryPolicy(fastRetry(2));
  Reg.setNegativeTtlUs(0); // promotion probes immediately, deterministic
  // Exactly one get()'s worth of failures: after the first request
  // degrades, the site has healed on its own.
  FaultInjection::instance().configure("jit.compile",
                                       FaultPolicy::failTimes(2));

  const Bignum Q = q60();
  const unsigned K = Dispatcher::elemWords(Q);
  const size_t N = 16;
  Dispatcher D(Reg);
  std::vector<std::uint64_t> A = randomWords(R, Q, N),
                             B = randomWords(R, Q, N), C(N * K);
  ASSERT_TRUE(D.vmul(Q, A.data(), B.data(), C.data(), N)) << D.error();
  EXPECT_EQ(D.lastPlanOptions().Backend, rewrite::ExecBackend::Interp);
  EXPECT_EQ(D.degradeCounters().FallbackBinds, 1u);

  // Dispatch until the background probe rebuilds the plan and the binding
  // snaps back to compiled code.
  bool Promoted = false;
  for (int I = 0; I < 200 && !Promoted; ++I) {
    ASSERT_TRUE(D.vmul(Q, A.data(), B.data(), C.data(), N)) << D.error();
    Promoted = D.degradeCounters().Promotions > 0;
    if (!Promoted)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(Promoted) << "binding never promoted after the fault healed";
  EXPECT_NE(D.lastPlanOptions().Backend, rewrite::ExecBackend::Interp);
  EXPECT_FALSE(Reg.degraded());
  EXPECT_GT(Reg.stats().Probes, 0u);

  // And the promoted binding still computes the same numbers.
  std::vector<std::uint64_t> Want(N * K);
  Dispatcher Ref(Reg);
  ASSERT_TRUE(Ref.vmul(Q, A.data(), B.data(), Want.data(), N));
  ASSERT_TRUE(D.vmul(Q, A.data(), B.data(), C.data(), N));
  EXPECT_EQ(C, Want);
}
