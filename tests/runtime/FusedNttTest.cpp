//===- tests/runtime/FusedNttTest.cpp - fused NTT stage pipeline --------------===//
//
// Coverage for the fused-stage NTT pipeline (runtime/NttPipeline.h):
//
//  * bit-identity of fused execution across FuseDepth {1,2,3} x backend
//    {serial, sim-GPU} x reduction {Barrett, Montgomery} x width {1,2,4}
//    x transform sizes including non-multiple stage counts (n = 32 with
//    depth 3 leaves a 2-stage tail group);
//  * absolute correctness against the O(n^2) reference DFT and the
//    schoolbook polynomial product;
//  * the dispatch-count guarantee: a batched transform issues exactly
//    ceil(log2(n)/FuseDepth) backend dispatches — no host bit-reversal
//    pass, no separate inverse-scaling dispatch;
//  * Montgomery-domain twiddle tables (entries are the plain tables
//    shifted into the Montgomery domain; transforms through Montgomery
//    plans are bit-identical to the Barrett path);
//  * the autotuner's FuseDepth axis (swept per transform size, persisted
//    through the JSON tune cache);
//  * the dispatcher's bounded binding/table caches (LRU eviction with
//    observable counters).
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "field/PrimeField.h"
#include "field/PrimeGen.h"
#include "field/RootOfUnity.h"
#include "ntt/Negacyclic.h"
#include "ntt/ReferenceDft.h"
#include "runtime/Dispatcher.h"
#include "runtime/NttPipeline.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

using namespace moma;
using namespace moma::runtime;
using namespace moma::testutil;
using mw::Bignum;
using rewrite::ExecBackend;

namespace {

KernelRegistry &registry() {
  static KernelRegistry Reg;
  return Reg;
}

rewrite::PlanOptions pinned(ExecBackend B, unsigned Depth,
                            mw::Reduction Red = mw::Reduction::Barrett,
                            unsigned BlockDim = 0) {
  rewrite::PlanOptions O;
  O.Backend = B;
  O.BlockDim = BlockDim;
  O.FuseDepth = Depth;
  O.Red = Red;
  return O;
}

std::vector<Bignum> randomElems(Rng &R, const Bignum &Q, size_t N) {
  std::vector<Bignum> Out;
  for (size_t I = 0; I < N; ++I)
    Out.push_back(Bignum::random(R, Q));
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Stage-group planning
//===----------------------------------------------------------------------===//

TEST(FusedNtt, StageGroupSchedule) {
  // ceil(log2(n)/k) groups, full depth first, the remainder last.
  auto G = planStageGroups(/*LogN=*/8, /*FuseDepth=*/3);
  ASSERT_EQ(G.size(), 3u);
  EXPECT_EQ(G[0].Len0, 1u);
  EXPECT_EQ(G[0].Depth, 3u);
  EXPECT_EQ(G[1].Len0, 8u);
  EXPECT_EQ(G[1].Depth, 3u);
  EXPECT_EQ(G[2].Len0, 64u);
  EXPECT_EQ(G[2].Depth, 2u); // 8 = 3 + 3 + 2: non-multiple tail

  auto G1 = planStageGroups(5, 1);
  EXPECT_EQ(G1.size(), 5u) << "depth 1 is the classic one-stage-per-"
                              "dispatch walk";
  auto GBig = planStageGroups(2, 3);
  ASSERT_EQ(GBig.size(), 1u);
  EXPECT_EQ(GBig[0].Depth, 2u) << "depth clamps to log2(n)";
}

//===----------------------------------------------------------------------===//
// Bit-identity across the whole variant grid
//===----------------------------------------------------------------------===//

TEST(FusedNtt, BitIdentityAcrossDepthBackendReductionWidth) {
  SeededRng R(0xF05ED1);
  const unsigned Widths[] = {1, 2, 4};
  const size_t Sizes[] = {8, 32, 1024}; // 32 with depth 3 -> 2-stage tail
  for (unsigned W : Widths) {
    Bignum Q = field::nttPrime(64 * W - 4, 11);
    unsigned K = Dispatcher::elemWords(Q);
    for (size_t N : Sizes) {
      const size_t Batch = 2;
      auto Polys = randomElems(R, Q, N * Batch);
      auto Packed = packBatch(Polys, K);

      // Reference: the historical shape — serial backend, Barrett,
      // depth 1.
      Dispatcher DRef(registry(), nullptr,
                      pinned(ExecBackend::Serial, 1));
      auto Fwd = Packed;
      ASSERT_TRUE(DRef.nttForward(Q, Fwd.data(), N, Batch)) << DRef.error();
      auto Round = Fwd;
      ASSERT_TRUE(DRef.nttInverse(Q, Round.data(), N, Batch))
          << DRef.error();
      EXPECT_EQ(Round, Packed) << "reference roundtrip, w=" << W
                               << " n=" << N;

      for (ExecBackend B : {ExecBackend::Serial, ExecBackend::SimGpu})
        for (mw::Reduction Red :
             {mw::Reduction::Barrett, mw::Reduction::Montgomery})
          for (unsigned Depth : {1u, 2u, 3u}) {
            Dispatcher D(registry(), nullptr,
                         pinned(B, Depth, Red, /*BlockDim=*/64));
            auto Data = Packed;
            ASSERT_TRUE(D.nttForward(Q, Data.data(), N, Batch))
                << D.error();
            ASSERT_EQ(Data, Fwd)
                << "forward diverges: w=" << W << " n=" << N
                << " backend=" << rewrite::execBackendName(B)
                << " red=" << mw::reductionName(Red)
                << " depth=" << Depth;
            ASSERT_TRUE(D.nttInverse(Q, Data.data(), N, Batch))
                << D.error();
            ASSERT_EQ(Data, Packed)
                << "roundtrip diverges: w=" << W << " n=" << N
                << " backend=" << rewrite::execBackendName(B)
                << " red=" << mw::reductionName(Red)
                << " depth=" << Depth;
          }
    }
  }
}

TEST(FusedNtt, MatchesReferenceDft) {
  // Absolute correctness of a fused Montgomery sim-GPU transform against
  // the O(n^2) DFT (not just cross-variant agreement).
  Bignum Q = field::nttPrime(124, 11);
  unsigned K = Dispatcher::elemWords(Q);
  const size_t N = 16;
  SeededRng R(0xF05ED2);
  auto X = randomElems(R, Q, N);
  Bignum Omega = field::rootOfUnity(Q, N);
  auto Want = ntt::referenceDft(X, Omega, Q);

  Dispatcher D(registry(), nullptr,
               pinned(ExecBackend::SimGpu, 3, mw::Reduction::Montgomery,
                      128));
  auto Data = packBatch(X, K);
  ASSERT_TRUE(D.nttForward(Q, Data.data(), N, 1)) << D.error();
  EXPECT_EQ(unpackBatch(Data, K), Want);
}

TEST(FusedNtt, PolyMulMatchesSchoolbook) {
  Bignum Q = field::nttPrime(60, 8);
  const size_t N = 32;
  SeededRng R(0xF05ED3);
  std::vector<Bignum> A = randomElems(R, Q, N), B = randomElems(R, Q, N);
  auto Full = ntt::referencePolyMul(A, B, Q);

  Dispatcher D(registry(), nullptr,
               pinned(ExecBackend::SimGpu, 2, mw::Reduction::Montgomery,
                      64));
  std::vector<Bignum> C;
  ASSERT_TRUE(D.polyMul(Q, A, B, C, N)) << D.error();
  for (size_t I = 0; I < N; ++I) {
    Bignum Want = Full[I];
    if (I + N < Full.size())
      Want = Want.addMod(Full[I + N], Q);
    ASSERT_EQ(C[I], Want) << "cyclic coefficient " << I;
  }
}

//===----------------------------------------------------------------------===//
// Dispatch-count probe
//===----------------------------------------------------------------------===//

TEST(FusedNtt, BatchedTransformIssuesCeilLogNOverKDispatches) {
  // The acceptance shape: n = 256 (log2 = 8), batch = 1000, depth 3 ->
  // exactly ceil(8/3) = 3 backend dispatches per transform. No separate
  // bit-reversal pass and no separate inverse-scaling dispatch exist to
  // be counted — Batches stays untouched by both directions.
  Bignum Q = field::nttPrime(60, 10);
  unsigned K = Dispatcher::elemWords(Q);
  const size_t N = 256, Batch = 1000;
  SeededRng R(0xF05ED4);
  auto Polys = randomElems(R, Q, N * 2); // random head, zero tail is fine
  std::vector<std::uint64_t> Data(N * Batch * K, 0);
  auto Head = packBatch(Polys, K);
  std::copy(Head.begin(), Head.end(), Data.begin());

  Dispatcher D(registry(), nullptr,
               pinned(ExecBackend::SimGpu, 3, mw::Reduction::Barrett,
                      256));
  ASSERT_TRUE(D.nttForward(Q, Data.data(), N, Batch)) << D.error();
  Dispatcher::DispatchStats S = D.dispatchStats();
  EXPECT_EQ(S.Transforms, 1u);
  EXPECT_EQ(S.StageGroups, 3u) << "ceil(log2(256)/3)";
  EXPECT_EQ(S.Batches, 0u) << "no host-side pass became a batch dispatch";

  ASSERT_TRUE(D.nttInverse(Q, Data.data(), N, Batch)) << D.error();
  S = D.dispatchStats();
  EXPECT_EQ(S.Transforms, 2u);
  EXPECT_EQ(S.StageGroups, 6u);
  EXPECT_EQ(S.Batches, 0u)
      << "inverse n^-1 scaling must fold into the last stage group, not "
         "dispatch a separate vmul";

  // Depth 1 on the same problem: the classic log2(n) dispatches.
  Dispatcher D1(registry(), nullptr, pinned(ExecBackend::Serial, 1));
  std::vector<std::uint64_t> Small(N * 2 * K, 0);
  ASSERT_TRUE(D1.nttForward(Q, Small.data(), N, 2)) << D1.error();
  EXPECT_EQ(D1.dispatchStats().StageGroups, 8u);
}

//===----------------------------------------------------------------------===//
// Montgomery-domain twiddle tables
//===----------------------------------------------------------------------===//

TEST(FusedNtt, MontgomeryTwiddleTablesAreDomainShiftedPlainTables) {
  Bignum Q = field::nttPrime(124, 8);
  const size_t N = 64;
  unsigned Lambda = PlanKey::canonicalContainerBits(Q.bitWidth(), 64);
  NttTables Plain, Mont;
  std::string Err;
  ASSERT_TRUE(buildNttTables(Q, N, mw::Reduction::Barrett, Plain, &Err))
      << Err;
  ASSERT_TRUE(buildNttTables(Q, N, mw::Reduction::Montgomery, Mont, &Err))
      << Err;
  ASSERT_EQ(Plain.Tw.size(), Mont.Tw.size());
  unsigned K = Plain.ElemWords;
  Bignum RMod = Bignum::powerOfTwo(Lambda) % Q;
  Bignum RInv = RMod.invMod(Q);
  for (size_t I = 0; I < N - 1; ++I) {
    Bignum P = unpackWordsMsbFirst(Plain.Tw.data() + I * K, K);
    Bignum M = unpackWordsMsbFirst(Mont.Tw.data() + I * K, K);
    ASSERT_EQ(M, P.mulMod(RMod, Q)) << "forward entry " << I;
    ASSERT_EQ(M.mulMod(RInv, Q), P) << "round-trip of entry " << I;
    Bignum PI = unpackWordsMsbFirst(Plain.InvTw.data() + I * K, K);
    Bignum MI = unpackWordsMsbFirst(Mont.InvTw.data() + I * K, K);
    ASSERT_EQ(MI, PI.mulMod(RMod, Q)) << "inverse entry " << I;
  }
  EXPECT_EQ(unpackWordsMsbFirst(Mont.NInv.data(), K),
            unpackWordsMsbFirst(Plain.NInv.data(), K).mulMod(RMod, Q))
      << "n^-1 must live in the twiddle domain too";
  EXPECT_EQ(Plain.BitRev, Mont.BitRev);
}

TEST(FusedNtt, TablesRejectBadShapes) {
  NttTables T;
  std::string Err;
  Bignum Q = field::nttPrime(60, 8);
  EXPECT_FALSE(buildNttTables(Q, 48, mw::Reduction::Barrett, T, &Err));
  EXPECT_NE(Err.find("power of two"), std::string::npos) << Err;
  EXPECT_FALSE(
      buildNttTables(Q, size_t(1) << 20, mw::Reduction::Barrett, T, &Err));
  EXPECT_NE(Err.find("2-adicity"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Autotuner FuseDepth axis
//===----------------------------------------------------------------------===//

namespace {

AutotunerOptions quickNttTune() {
  AutotunerOptions O;
  O.CalibrationElems = 32;
  O.MaxCalibrationElems = 128;
  O.Repeats = 1;
  O.BlockDims = {64};
  // Keep the sweep to backend x depth: 2 backends x 3 depths = 6 timed
  // candidates per problem.
  O.TuneReduction = false;
  O.TunePrune = false;
  O.TuneSchedule = false;
  return O;
}

} // namespace

TEST(FusedNtt, TunerSweepsFuseDepthPerTransformSize) {
  Autotuner T(registry(), quickNttTune());
  Bignum Q = field::nttPrime(60, 10);
  const TuneDecision *D64 = T.chooseNtt(Q, {}, 64, 2);
  ASSERT_NE(D64, nullptr) << T.error();
  EXPECT_GE(D64->Opts.FuseDepth, 1u);
  EXPECT_LE(D64->Opts.FuseDepth, 3u);
  EXPECT_EQ(T.stats().Tuned, 1u);
  // Same butterfly problem, different transform size: its own decision.
  const TuneDecision *D256 = T.chooseNtt(Q, {}, 256, 2);
  ASSERT_NE(D256, nullptr) << T.error();
  EXPECT_EQ(T.stats().Tuned, 2u) << "transform size is a key dimension";
  // Same shape again: reused, not re-timed.
  const TuneDecision *Again = T.chooseNtt(Q, {}, 64, 2);
  EXPECT_EQ(Again, D64);
  EXPECT_EQ(T.stats().Tuned, 2u);
  // Shape errors surface instead of mis-keying.
  EXPECT_EQ(T.chooseNtt(Q, {}, 48, 1), nullptr);
}

TEST(FusedNtt, FuseDepthRoundTripsThroughTheTuneCache) {
  namespace fs = std::filesystem;
  std::string Path =
      (fs::temp_directory_path() / "moma-tune-fuse.json").string();
  std::remove(Path.c_str());
  Bignum Q = field::nttPrime(60, 10);

  Autotuner T1(registry(), quickNttTune());
  const TuneDecision *D1 = T1.chooseNtt(Q, {}, 128, 4);
  ASSERT_NE(D1, nullptr) << T1.error();
  rewrite::PlanOptions Won = D1->Opts;
  ASSERT_TRUE(T1.save(Path));

  Autotuner T2(registry(), quickNttTune());
  ASSERT_TRUE(T2.load(Path)) << T2.error();
  const TuneDecision *D2 = T2.chooseNtt(Q, {}, 128, 4);
  ASSERT_NE(D2, nullptr) << T2.error();
  EXPECT_TRUE(D2->FromCache) << "persisted decision must not be re-timed";
  EXPECT_EQ(T2.stats().Tuned, 0u);
  EXPECT_EQ(D2->Opts.FuseDepth, Won.FuseDepth)
      << "fuse_depth lost in the JSON round-trip";
  EXPECT_TRUE(D2->Opts == Won) << "loaded " << D2->Opts.str()
                               << ", tuned " << Won.str();
  std::remove(Path.c_str());
}

TEST(FusedNtt, AutotunedDispatcherMatchesPinnedBitForBit) {
  // End to end: a tuner-driven dispatcher (whatever depth/backend wins)
  // must agree with the pinned reference on the same data.
  Bignum Q = field::nttPrime(124, 10);
  unsigned K = Dispatcher::elemWords(Q);
  const size_t N = 64, Batch = 3;
  SeededRng R(0xF05ED5);
  auto Polys = randomElems(R, Q, N * Batch);
  auto Want = packBatch(Polys, K);
  Dispatcher DRef(registry(), nullptr, pinned(ExecBackend::Serial, 1));
  ASSERT_TRUE(DRef.nttForward(Q, Want.data(), N, Batch)) << DRef.error();

  Autotuner T(registry(), quickNttTune());
  Dispatcher D(registry(), &T);
  auto Data = packBatch(Polys, K);
  ASSERT_TRUE(D.nttForward(Q, Data.data(), N, Batch)) << D.error();
  EXPECT_EQ(Data, Want);
  EXPECT_EQ(D.lastPlanOptions().FuseDepth,
            T.chooseNtt(Q, {}, N, Batch)->Opts.FuseDepth)
      << "dispatcher must run the depth the tuner picked";
}

//===----------------------------------------------------------------------===//
// Bounded binding/table caches
//===----------------------------------------------------------------------===//

TEST(FusedNtt, CachesEvictLeastRecentlyUsed) {
  Dispatcher D(registry(), nullptr, pinned(ExecBackend::Serial, 2));
  D.setCacheCaps(/*MaxBoundPlans=*/2, /*MaxNttTables=*/2);
  Bignum Q = field::nttPrime(60, 10);
  unsigned K = Dispatcher::elemWords(Q);
  SeededRng R(0xF05ED6);
  auto Polys = randomElems(R, Q, 64);
  auto Packed = packBatch(Polys, K);

  // Three transform sizes through a two-entry table cache.
  for (size_t N : {8, 16, 32, 8}) {
    auto Data = Packed;
    ASSERT_TRUE(D.nttForward(Q, Data.data(), N, 64 / N)) << D.error();
  }
  Dispatcher::CacheCounters C = D.cacheCounters();
  EXPECT_LE(C.TableEntries, 2u);
  EXPECT_GE(C.TableEvictions, 2u)
      << "n=32 evicts n=8, re-running n=8 evicts the LRU survivor";

  // Three distinct moduli bind three vadd plans through a two-entry
  // binding cache (same compiled plan, different broadcast tails).
  std::vector<std::uint64_t> A(8 * K, 1), B(8 * K, 2), Out(8 * K);
  for (unsigned Bits : {60, 59, 58}) {
    Bignum QB = field::nttPrime(Bits, 8);
    unsigned KB = Dispatcher::elemWords(QB);
    std::vector<std::uint64_t> AB(8 * KB, 1), BB(8 * KB, 2),
        OB(8 * KB);
    ASSERT_TRUE(D.vadd(QB, AB.data(), BB.data(), OB.data(), 8))
        << D.error();
  }
  C = D.cacheCounters();
  EXPECT_LE(C.BoundEntries, 2u);
  EXPECT_GE(C.BoundEvictions, 1u);

  // Eviction is capacity management, not correctness: the evicted
  // binding rebinds transparently.
  auto Data = Packed;
  ASSERT_TRUE(D.nttForward(Q, Data.data(), 16, 4)) << D.error();
  ASSERT_TRUE(D.nttInverse(Q, Data.data(), 16, 4)) << D.error();
  EXPECT_EQ(Data, Packed);
}

//===----------------------------------------------------------------------===//
// Negacyclic ring (x^n + 1): ψ edge folds through the fused pipeline
//===----------------------------------------------------------------------===//

TEST(FusedNtt, NegacyclicBitIdentityAcrossDepthBackendReduction) {
  // The runtime's negacyclic transform must be bit-identical to the
  // library ψ-twist reference (ntt/Negacyclic.h) — both derive ψ and ω
  // from the same per-modulus generator, so even the transform-domain
  // values match, not just ring products — across every fusion depth,
  // backend and reduction, including the single-group in-place shape
  // (log2(n) <= depth) and multi-group ping-pong shapes.
  SeededRng R(0xF05ED7);
  const unsigned Widths[] = {1, 2};
  const size_t Sizes[] = {8, 32};
  for (unsigned W : Widths) {
    Bignum Q = field::nttPrime(64 * W - 4, 11);
    unsigned K = Dispatcher::elemWords(Q);
    for (size_t N : Sizes) {
      auto Poly = randomElems(R, Q, N);
      auto Packed = packBatch(Poly, K);
      // Library reference forward (width-dispatched by hand: the plan is
      // a compile-time-width template).
      auto LibForward = [&](std::vector<Bignum> In) {
        std::vector<Bignum> Out;
        if (W == 1) {
          field::PrimeField<1> F(Q);
          ntt::NegacyclicPlan<1> Plan(F, N);
          std::vector<field::PrimeField<1>::Element> E;
          for (const Bignum &V : In)
            E.push_back(F.fromBignum(V));
          Plan.forward(E.data());
          for (const auto &V : E)
            Out.push_back(V.toBignum());
        } else {
          field::PrimeField<2> F(Q);
          ntt::NegacyclicPlan<2> Plan(F, N);
          std::vector<field::PrimeField<2>::Element> E;
          for (const Bignum &V : In)
            E.push_back(F.fromBignum(V));
          Plan.forward(E.data());
          for (const auto &V : E)
            Out.push_back(V.toBignum());
        }
        return Out;
      };
      std::vector<Bignum> Ref = LibForward(Poly);

      for (ExecBackend B : {ExecBackend::Serial, ExecBackend::SimGpu})
        for (unsigned Depth = 1; Depth <= 3; ++Depth)
          for (mw::Reduction Red :
               {mw::Reduction::Barrett, mw::Reduction::Montgomery}) {
            Dispatcher D(registry(), nullptr, pinned(B, Depth, Red));
            auto Data = Packed;
            ASSERT_TRUE(D.nttForward(Q, Data.data(), N, 1,
                                     rewrite::NttRing::Negacyclic))
                << D.error();
            EXPECT_EQ(unpackBatch(Data, K), Ref)
                << "w=" << W << " n=" << N << " depth=" << Depth
                << " backend=" << rewrite::execBackendName(B)
                << " red=" << mw::reductionName(Red);
            ASSERT_TRUE(D.nttInverse(Q, Data.data(), N, 1,
                                     rewrite::NttRing::Negacyclic))
                << D.error();
            EXPECT_EQ(unpackBatch(Data, K), Poly)
                << "negacyclic roundtrip, w=" << W << " n=" << N
                << " depth=" << Depth;
          }
    }
  }
}

TEST(FusedNtt, NegacyclicPolyMulMatchesLibraryAndWrapsWithSignFlip) {
  SeededRng R(0xF05ED9);
  Bignum Q = field::nttPrime(60, 8);
  const size_t N = 16;
  field::PrimeField<1> F(Q);
  ntt::NegacyclicPlan<1> Plan(F, N);
  std::vector<Bignum> A = randomElems(R, Q, N), B = randomElems(R, Q, N);

  std::vector<field::PrimeField<1>::Element> EA, EB;
  for (size_t I = 0; I < N; ++I) {
    EA.push_back(F.fromBignum(A[I]));
    EB.push_back(F.fromBignum(B[I]));
  }
  auto EC = ntt::polyMulNegacyclic(Plan, EA, EB);

  Dispatcher D(registry());
  std::vector<Bignum> C;
  ASSERT_TRUE(D.polyMul(Q, A, B, C, N, rewrite::NttRing::Negacyclic))
      << D.error();
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(C[I], EC[I].toBignum()) << "coefficient " << I;

  // The defining identity: x^(n-1) * x = x^n = -1.
  std::vector<Bignum> XPow(N, Bignum(0)), XOne(N, Bignum(0));
  XPow[N - 1] = Bignum(1);
  XOne[1] = Bignum(1);
  ASSERT_TRUE(
      D.polyMul(Q, XPow, XOne, C, N, rewrite::NttRing::Negacyclic))
      << D.error();
  EXPECT_EQ(C[0], Q - Bignum(1)) << "x^n must wrap to -1";
  for (size_t I = 1; I < N; ++I)
    EXPECT_EQ(C[I], Bignum(0));
}

TEST(FusedNtt, NegacyclicAddsZeroDispatchesAtEqualShape) {
  // The edge-fold guarantee: at equal (n, depth, batch), a negacyclic
  // polyMul issues exactly the dispatch sequence of the cyclic one — the
  // ψ twist and the untwist·n^-1 ride stage groups that already exist.
  SeededRng R(0xF05EDA);
  Bignum Q = field::nttPrime(60, 10);
  unsigned K = Dispatcher::elemWords(Q);
  const size_t N = 256, Batch = 4;
  auto Polys = randomElems(R, Q, N * Batch);
  auto A = packBatch(Polys, K), B = A;
  std::vector<std::uint64_t> C(A.size());

  for (ExecBackend BK : {ExecBackend::Serial, ExecBackend::SimGpu})
    for (unsigned Depth : {1u, 3u}) {
      Dispatcher D(registry(), nullptr, pinned(BK, Depth));
      ASSERT_TRUE(D.polyMul(Q, A.data(), B.data(), C.data(), N, Batch,
                            rewrite::NttRing::Cyclic))
          << D.error();
      auto Cyc = D.dispatchStats();
      ASSERT_TRUE(D.polyMul(Q, A.data(), B.data(), C.data(), N, Batch,
                            rewrite::NttRing::Negacyclic))
          << D.error();
      auto Neg = D.dispatchStats();
      EXPECT_EQ(Neg.StageGroups - Cyc.StageGroups, Cyc.StageGroups)
          << "negacyclic stage groups, depth " << Depth;
      EXPECT_EQ(Neg.Batches - Cyc.Batches, Cyc.Batches)
          << "negacyclic batch dispatches, depth " << Depth;
      EXPECT_EQ(Neg.Transforms - Cyc.Transforms, Cyc.Transforms);
    }
}

TEST(FusedNtt, NegacyclicTunerDecisionsAreRingKeyedAndPersist) {
  namespace fs = std::filesystem;
  std::string Path =
      (fs::temp_directory_path() / "moma-tune-ring.json").string();
  std::remove(Path.c_str());
  Bignum Q = field::nttPrime(60, 10);
  rewrite::PlanOptions NegBase;
  NegBase.Ring = rewrite::NttRing::Negacyclic;

  Autotuner T(registry(), quickNttTune());
  const TuneDecision *Cyc = T.chooseNtt(Q, {}, 64, 2);
  ASSERT_NE(Cyc, nullptr) << T.error();
  const TuneDecision *Neg = T.chooseNtt(Q, NegBase, 64, 2);
  ASSERT_NE(Neg, nullptr) << T.error();
  EXPECT_EQ(T.stats().Tuned, 2u)
      << "the ring must key its own decision, not reuse the cyclic one";
  EXPECT_EQ(Neg->Opts.Ring, rewrite::NttRing::Negacyclic)
      << "candidates must carry the base ring through canonicalization";
  ASSERT_TRUE(T.save(Path));

  Autotuner T2(registry(), quickNttTune());
  ASSERT_TRUE(T2.load(Path)) << T2.error();
  const TuneDecision *Again = T2.chooseNtt(Q, NegBase, 64, 2);
  ASSERT_NE(Again, nullptr) << T2.error();
  EXPECT_TRUE(Again->FromCache);
  EXPECT_EQ(T2.stats().Tuned, 0u);
  EXPECT_EQ(Again->Opts.Ring, rewrite::NttRing::Negacyclic)
      << "ring lost in the JSON round-trip";
  std::remove(Path.c_str());
}
