//===- tests/runtime/VectorBackendTest.cpp - SIMD vector backend --------------===//
//
// Coverage for the SIMD lane-loop backend: plan-cache keying with the
// /vec/v<k> suffix, lane-count validation, module sharing across widths,
// vector vs serial bit-identical execution through the dispatcher
// (element-wise, broadcast-stride, NTT stages and fused groups, whole
// polynomial products) including scalar-tail batch sizes, and tune-cache
// round-trips carrying the vector_width field.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "field/PrimeGen.h"
#include "runtime/Autotuner.h"
#include "runtime/Backend.h"
#include "runtime/Dispatcher.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

using namespace moma;
using namespace moma::runtime;
using namespace moma::testutil;
using mw::Bignum;
using rewrite::ExecBackend;

namespace {

KernelRegistry &registry() {
  static KernelRegistry Reg;
  return Reg;
}

Bignum testModulus(unsigned Bits) { return field::nttPrime(Bits, 16); }

rewrite::PlanOptions vectorBase(unsigned Width = 0) {
  rewrite::PlanOptions O;
  O.Backend = ExecBackend::Vector;
  O.VectorWidth = Width;
  return O;
}

std::vector<Bignum> randomElems(Rng &R, const Bignum &Q, size_t N) {
  std::vector<Bignum> Out;
  for (size_t I = 0; I < N; ++I)
    Out.push_back(Bignum::random(R, Q));
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Plan-cache keying
//===----------------------------------------------------------------------===//

TEST(VectorPlanKey, VectorKeysCarryBackendAndLaneWidth) {
  Bignum Q = testModulus(124);
  PlanKey K = PlanKey::forModulus(KernelOp::MulMod, Q, vectorBase());
  EXPECT_EQ(K.Opts.VectorWidth, 8u) << "unset lane width defaults to 8";
  EXPECT_EQ(K.str(), "mulmod/c128/m124/w64/barrett/schoolbook/prune/"
                     "noschedule/vec/v8");
  PlanKey K2 = PlanKey::forModulus(KernelOp::MulMod, Q, vectorBase(16));
  EXPECT_NE(K.str(), K2.str()) << "lane width is part of the key";
}

TEST(VectorPlanKey, VectorFoldsTheBlockDimAndSerialFoldsTheWidth) {
  Bignum Q = testModulus(124);
  rewrite::PlanOptions O = vectorBase(4);
  O.BlockDim = 512; // meaningless without the sim-GPU backend
  PlanKey A = PlanKey::forModulus(KernelOp::MulMod, Q, O);
  PlanKey B = PlanKey::forModulus(KernelOp::MulMod, Q, vectorBase(4));
  EXPECT_EQ(A.str(), B.str()) << "block dim folds away on vector plans";
  EXPECT_EQ(A.Opts.BlockDim, 0u);

  rewrite::PlanOptions S;
  S.VectorWidth = 16; // meaningless without the vector backend
  PlanKey C = PlanKey::forModulus(KernelOp::MulMod, Q, S);
  PlanKey D = PlanKey::forModulus(KernelOp::MulMod, Q);
  EXPECT_EQ(C.str(), D.str()) << "lane width folds away on serial plans";
}

TEST(VectorPlanKey, SerialAndVectorAreDistinctCacheEntries) {
  Bignum Q = testModulus(124);
  auto PS = registry().get(PlanKey::forModulus(KernelOp::MulMod, Q));
  ASSERT_NE(PS, nullptr) << registry().error();
  auto PV =
      registry().get(PlanKey::forModulus(KernelOp::MulMod, Q, vectorBase()));
  ASSERT_NE(PV, nullptr) << registry().error();
  EXPECT_NE(PS.get(), PV.get());
  EXPECT_NE(PS->Fn, nullptr);
  EXPECT_EQ(PS->VecFn, nullptr);
  EXPECT_EQ(PV->Fn, nullptr);
  EXPECT_EQ(PV->GridFn, nullptr);
  EXPECT_NE(PV->VecFn, nullptr);
}

TEST(VectorPlanKey, WidthsShareOneCompiledModule) {
  // The lane count is a launch parameter of the vector ABI: two widths
  // are distinct plans but identical source, so HostJit's in-memory
  // dedup serves the second without another compiler invocation.
  Bignum Q = testModulus(60);
  auto P1 =
      registry().get(PlanKey::forModulus(KernelOp::MulMod, Q, vectorBase(4)));
  ASSERT_NE(P1, nullptr) << registry().error();
  jit::HostJit::Stats Before = registry().jit().stats();
  auto P2 =
      registry().get(PlanKey::forModulus(KernelOp::MulMod, Q, vectorBase(16)));
  ASSERT_NE(P2, nullptr) << registry().error();
  EXPECT_NE(P1.get(), P2.get()) << "distinct plan-cache entries";
  EXPECT_EQ(P1->Module.get(), P2->Module.get()) << "one shared module";
  EXPECT_EQ(registry().jit().stats().Compiles, Before.Compiles);
}

//===----------------------------------------------------------------------===//
// Lane-count validation and backend mismatch
//===----------------------------------------------------------------------===//

TEST(VectorGeometry, RejectsLaneCountsAbove64) {
  Bignum Q = testModulus(124);
  auto P =
      registry().get(PlanKey::forModulus(KernelOp::MulMod, Q, vectorBase(128)));
  EXPECT_EQ(P, nullptr) << "lane counts are bounded like block dims";
  EXPECT_NE(registry().error().find("lane count"), std::string::npos)
      << registry().error();
}

TEST(VectorGeometry, SerialPathRefusesVectorPlans) {
  Bignum Q = testModulus(124);
  auto PV =
      registry().get(PlanKey::forModulus(KernelOp::MulMod, Q, vectorBase()));
  ASSERT_NE(PV, nullptr) << registry().error();
  BatchArgs Args;
  std::string Err;
  EXPECT_FALSE(runBatch(*PV, Args, 0, &Err))
      << "the serial path must not silently run a vector plan";
  EXPECT_NE(Err.find("vector"), std::string::npos) << Err;
  SerialBackend SB;
  EXPECT_FALSE(SB.runBatch(*PV, Args, 0, 1, &Err));
  EXPECT_NE(Err.find("vector"), std::string::npos) << Err;
}

TEST(VectorGeometry, VectorBackendRefusesSerialPlans) {
  Bignum Q = testModulus(124);
  auto PS = registry().get(PlanKey::forModulus(KernelOp::MulMod, Q));
  ASSERT_NE(PS, nullptr) << registry().error();
  BatchArgs Args;
  std::string Err;
  VectorBackend VB;
  EXPECT_FALSE(VB.runBatch(*PS, Args, 0, 1, &Err))
      << "the vector backend must not silently run a serial plan";
  EXPECT_NE(Err.find("lane-loop"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Serial vs vector bit-identical execution
//===----------------------------------------------------------------------===//

TEST(VectorExecution, ElementwiseMatchesSerialBitForBit) {
  Dispatcher DS(registry());
  Bignum Q = testModulus(252);
  SeededRng R(0xEC1);
  unsigned K = Dispatcher::elemWords(Q);
  // Tail coverage: batch sizes that are not multiples of any lane width,
  // smaller than the widest chunk, and exactly chunk-aligned.
  const size_t Sizes[] = {1, 7, 16, 37, 301};
  const unsigned Widths[] = {1, 2, 4, 8, 16};
  for (size_t N : Sizes) {
    auto A = randomElems(R, Q, N), B = randomElems(R, Q, N);
    auto AW = packBatch(A, K), BW = packBatch(B, K);
    std::vector<std::uint64_t> CS(N * K);
    ASSERT_TRUE(DS.vmul(Q, AW.data(), BW.data(), CS.data(), N)) << DS.error();
    for (unsigned W : Widths) {
      Dispatcher DV(registry(), nullptr, vectorBase(W));
      std::vector<std::uint64_t> CV(N * K);
      ASSERT_TRUE(DV.vmul(Q, AW.data(), BW.data(), CV.data(), N))
          << DV.error();
      EXPECT_EQ(DV.lastPlanOptions().Backend, ExecBackend::Vector);
      ASSERT_EQ(CS, CV) << "vmul diverges, n = " << N << ", width = " << W;
      ASSERT_TRUE(DS.vadd(Q, AW.data(), BW.data(), CS.data(), N))
          << DS.error();
      ASSERT_TRUE(DV.vadd(Q, AW.data(), BW.data(), CV.data(), N))
          << DV.error();
      ASSERT_EQ(CS, CV) << "vadd diverges, n = " << N << ", width = " << W;
      // Restore CS to the vmul result for the next width's comparison.
      ASSERT_TRUE(DS.vmul(Q, AW.data(), BW.data(), CS.data(), N))
          << DS.error();
    }
  }
}

TEST(VectorExecution, AxpyBroadcastStrideAndInPlaceUpdate) {
  // axpy writes y in place with a stride-0 broadcast scalar — the
  // aliasing-heavy shape the lane gather/scatter must get right.
  Dispatcher DV(registry(), nullptr, vectorBase(8));
  Bignum Q = testModulus(124);
  SeededRng R(0xEC2);
  const size_t N = 97; // 12 chunks of 8 plus a 1-lane tail
  unsigned K = Dispatcher::elemWords(Q);
  Bignum A = Bignum::random(R, Q);
  auto X = randomElems(R, Q, N), Y = randomElems(R, Q, N);
  auto AW = packWordsMsbFirst(A, K);
  auto XW = packBatch(X, K), YW = packBatch(Y, K);
  ASSERT_TRUE(DV.axpy(Q, AW.data(), XW.data(), YW.data(), N)) << DV.error();
  auto Out = unpackBatch(YW, K);
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(Out[I], A.mulMod(X[I], Q).addMod(Y[I], Q)) << "element " << I;
}

TEST(VectorExecution, BatchRowsFlattenWithBroadcastOperands) {
  // Rows > 1 flattens into one lane loop of N * Rows elements; a
  // stride-0 operand must broadcast to every row exactly as the grid's
  // e = blockIdx.y * n + i indexing does.
  Bignum Q = testModulus(124);
  auto P =
      registry().get(PlanKey::forModulus(KernelOp::MulMod, Q, vectorBase(4)));
  ASSERT_NE(P, nullptr) << registry().error();
  PlanAux Aux = makePlanAux(*P, Q);
  SeededRng R(0xEC3);
  const size_t N = 45, Rows = 3;
  unsigned K = P->ElemWords;
  auto A = randomElems(R, Q, N * Rows);
  Bignum S = Bignum::random(R, Q);
  auto AW = packBatch(A, K);
  auto SW = packWordsMsbFirst(S, K);
  std::vector<std::uint64_t> CW(N * Rows * K);
  BatchArgs Args;
  Args.Outs = {CW.data()};
  Args.Ins = {AW.data(), SW.data()};
  Args.InStrides = {K, 0};
  Args.Aux = Aux.ptrs();
  std::string Err;
  ASSERT_TRUE(registry().backendFor(P->Key).runBatch(*P, Args, N, Rows, &Err))
      << Err;
  auto C = unpackBatch(CW, K);
  for (size_t I = 0; I < N * Rows; ++I)
    ASSERT_EQ(C[I], A[I].mulMod(S, Q)) << "element " << I;
}

TEST(VectorExecution, NttMatchesSerialBitForBit) {
  Dispatcher DS(registry());
  Dispatcher DV(registry(), nullptr, vectorBase(8));
  Bignum Q = testModulus(124);
  const size_t N = 64, Batch = 5; // batch is not a multiple of the width
  unsigned K = Dispatcher::elemWords(Q);
  SeededRng R(0xEC4);
  auto Polys = randomElems(R, Q, N * Batch);
  auto DataS = packBatch(Polys, K);
  auto DataV = DataS;

  ASSERT_TRUE(DS.nttForward(Q, DataS.data(), N, Batch)) << DS.error();
  ASSERT_TRUE(DV.nttForward(Q, DataV.data(), N, Batch)) << DV.error();
  EXPECT_EQ(DataS, DataV) << "forward NTT diverges across backends";

  ASSERT_TRUE(DS.nttInverse(Q, DataS.data(), N, Batch)) << DS.error();
  ASSERT_TRUE(DV.nttInverse(Q, DataV.data(), N, Batch)) << DV.error();
  EXPECT_EQ(DataS, DataV) << "inverse NTT diverges across backends";
  EXPECT_EQ(unpackBatch(DataV, K), Polys) << "roundtrip identity";
}

TEST(VectorExecution, WidthSweepOnTransformsMatchesSerial) {
  // Sweep transform sizes against lane widths that do NOT divide the
  // batch (partial lane blocks, one-lane loops, widths without a fixed-
  // trip chunk specialization) and demand bit-identity with the serial
  // stage walk at every size.
  Dispatcher DS(registry());
  Bignum Q = testModulus(124);
  unsigned K = Dispatcher::elemWords(Q);
  SeededRng R(0xEC5);
  const size_t Sizes[] = {4, 16, 64, 256};
  const unsigned Widths[] = {1, 3, 5, 8, 16};
  for (size_t N : Sizes) {
    const size_t Batch = 7;
    auto Polys = randomElems(R, Q, N * Batch);
    auto Want = packBatch(Polys, K);
    ASSERT_TRUE(DS.nttForward(Q, Want.data(), N, Batch)) << DS.error();
    for (unsigned W : Widths) {
      Dispatcher DV(registry(), nullptr, vectorBase(W));
      auto Data = packBatch(Polys, K);
      ASSERT_TRUE(DV.nttForward(Q, Data.data(), N, Batch)) << DV.error();
      ASSERT_EQ(Data, Want) << "n = " << N << ", lane width = " << W;
    }
  }
}

TEST(VectorExecution, PolyMulMatchesSerialOnBothRings) {
  Dispatcher DS(registry());
  Dispatcher DV(registry(), nullptr, vectorBase());
  Bignum Q = testModulus(252);
  const size_t N = 32, Batch = 3;
  unsigned K = Dispatcher::elemWords(Q);
  SeededRng R(0xEC6);
  auto A = randomElems(R, Q, N * Batch), B = randomElems(R, Q, N * Batch);
  auto AW = packBatch(A, K), BW = packBatch(B, K);
  std::vector<std::uint64_t> CS(N * Batch * K), CV(N * Batch * K);
  for (rewrite::NttRing Ring :
       {rewrite::NttRing::Cyclic, rewrite::NttRing::Negacyclic}) {
    ASSERT_TRUE(DS.polyMul(Q, AW.data(), BW.data(), CS.data(), N, Batch, Ring))
        << DS.error();
    ASSERT_TRUE(DV.polyMul(Q, AW.data(), BW.data(), CV.data(), N, Batch, Ring))
        << DV.error();
    EXPECT_EQ(CS, CV) << "polyMul diverges across backends, ring "
                      << rewrite::nttRingName(Ring);
  }
}

TEST(VectorExecution, MontgomeryVariantMatchesSerial) {
  rewrite::PlanOptions MontV = vectorBase(4);
  MontV.Red = mw::Reduction::Montgomery;
  rewrite::PlanOptions MontS;
  MontS.Red = mw::Reduction::Montgomery;
  Dispatcher DS(registry(), nullptr, MontS);
  Dispatcher DV(registry(), nullptr, MontV);
  Bignum Q = testModulus(124);
  SeededRng R(0xEC7);
  const size_t N = 53;
  unsigned K = Dispatcher::elemWords(Q);
  auto A = randomElems(R, Q, N), B = randomElems(R, Q, N);
  auto AW = packBatch(A, K), BW = packBatch(B, K);
  std::vector<std::uint64_t> CS(N * K), CV(N * K);
  ASSERT_TRUE(DS.vmul(Q, AW.data(), BW.data(), CS.data(), N)) << DS.error();
  ASSERT_TRUE(DV.vmul(Q, AW.data(), BW.data(), CV.data(), N)) << DV.error();
  EXPECT_EQ(CS, CV) << "Montgomery vmul diverges across backends";
}

//===----------------------------------------------------------------------===//
// Tune-cache round-trip with the vector_width field
//===----------------------------------------------------------------------===//

namespace {

AutotunerOptions quickVectorTune() {
  AutotunerOptions O;
  O.CalibrationElems = 32;
  O.MaxCalibrationElems = 64;
  O.Repeats = 1;
  O.BlockDims = {128};
  O.VectorWidths = {8}; // one lane width keeps the sweep fast
  return O;
}

} // namespace

TEST(VectorTune, PinnedVectorWidthRoundTripsThroughJson) {
  namespace fs = std::filesystem;
  std::string Path =
      (fs::temp_directory_path() / "moma-tune-vector.json").string();
  std::remove(Path.c_str());

  Bignum Q = testModulus(124);
  AutotunerOptions O = quickVectorTune();
  O.TuneBackend = false; // pin the base plan's backend and lane width
  Autotuner T1(registry(), O);
  const TuneDecision *D1 = T1.choose(KernelOp::MulMod, Q, vectorBase(16));
  ASSERT_NE(D1, nullptr) << T1.error();
  EXPECT_EQ(D1->Opts.Backend, ExecBackend::Vector);
  EXPECT_EQ(D1->Opts.VectorWidth, 16u);
  ASSERT_TRUE(T1.save(Path));

  Autotuner T2(registry(), O);
  ASSERT_TRUE(T2.load(Path)) << T2.error();
  const TuneDecision *D2 = T2.choose(KernelOp::MulMod, Q, vectorBase(16));
  ASSERT_NE(D2, nullptr) << T2.error();
  EXPECT_TRUE(D2->FromCache) << "persisted decision must not be re-timed";
  EXPECT_EQ(D2->Opts.Backend, ExecBackend::Vector)
      << "backend field lost in the JSON round-trip";
  EXPECT_EQ(D2->Opts.VectorWidth, 16u)
      << "vector_width field lost in the JSON round-trip";
  EXPECT_TRUE(D2->Opts == D1->Opts) << "loaded " << D2->Opts.str()
                                    << ", tuned " << D1->Opts.str();
  std::remove(Path.c_str());
}

TEST(VectorTune, SweepIncludesVectorCandidates) {
  // With the backend sweep on, the candidate grid must include the
  // vector backend: either it wins outright or the sweep timed it (the
  // candidate count exceeds a serial+simgpu-only grid).
  AutotunerOptions O = quickVectorTune();
  Autotuner T(registry(), O);
  Bignum Q = testModulus(60);
  const TuneDecision *D = T.choose(KernelOp::MulMod, Q, {}, 4096);
  ASSERT_NE(D, nullptr) << T.error();
  // reduction x prune x schedule grid = 8 knob combinations; backends
  // per combination: serial + 1 block dim + 1 lane width = 3.
  EXPECT_GE(T.stats().Candidates, 24u)
      << "vector candidates missing from the sweep";
}
