//===- tests/runtime/DifferentialFuzzTest.cpp - 5-way differential fuzz --------===//
//
// The hardening companion of the batched runtime: the runtime multiplies
// the number of generated-code paths (backend x reduction x schedule x
// pruning x width), so this suite drives randomized modmul and butterfly
// kernels through all five executions we have —
//
//   1. the IR interpreter on the lowered kernel (rewrite-system truth),
//   2. the serial JIT-compiled C through the runtime plan cache,
//   3. the sim-GPU grid-shaped JIT (the 5.1 thread mapping, what the
//      sim-GPU ExecutionBackend dispatches; widths {1, 2, 4, 8}, with a
//      random block dimension per variant),
//   4. the SIMD vector lane-loop JIT (random lane width {1, 2, 4, 8}
//      per variant, run over a random batch size so the fixed-trip
//      chunks AND the scalar tail both execute), and
//   5. the Bignum oracle (mathematical truth)
//
// — across widths {1, 2, 4, 8, 12} words and both reduction strategies,
// with random moduli (odd, exact bit-width, not necessarily prime) and
// random reduced inputs. Per configuration, a few kernel variants are
// generated (random modulus width in the word-count window, random
// scheduling, occasional pruning-off) and at least MOMA_FUZZ_ITERS trials
// (default 500) run across them.
//
// On a mismatch the test prints the reproducing seed (via TestUtil's
// SeededRng trace), the exact trial values, and the path of the emitted
// source the JIT compiled — everything needed to replay offline.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "field/PrimeGen.h"
#include "ntt/ReferenceDft.h"
#include "runtime/Backend.h"
#include "runtime/Dispatcher.h"
#include "runtime/KernelRegistry.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::runtime;
using namespace moma::testutil;
using mw::Bignum;

namespace {

// Trials per configuration come from the shared MOMA_FUZZ_ITERS knob
// (testutil::fuzzIters; the nightly CI job raises it).

/// One registry per test binary: identical kernel variants across
/// configurations share compiled modules and the on-disk cache.
KernelRegistry &registry() {
  static KernelRegistry Reg;
  return Reg;
}

/// The Bignum-oracle evaluation of one kernel op. The Montgomery
/// butterfly reads its twiddle port in the Montgomery domain (one REDC
/// lands the plain product), so the drawn In[2] stands for w * 2^lambda
/// and the mathematical twiddle is In[2] * 2^-lambda mod q.
std::vector<Bignum> oracle(KernelOp Op, const std::vector<Bignum> &In,
                           const Bignum &Q, const CompiledPlan &Plan) {
  switch (Op) {
  case KernelOp::MulMod:
    return {In[0].mulMod(In[1], Q)};
  case KernelOp::Butterfly: {
    Bignum W = In[2];
    if (Plan.Key.Opts.Red == mw::Reduction::Montgomery) {
      Bignum RInv =
          (mw::Bignum::powerOfTwo(Plan.Key.ContainerBits) % Q).invMod(Q);
      W = W.mulMod(RInv, Q);
    }
    Bignum T = W.mulMod(In[1], Q); // t = w * y
    return {In[0].addMod(T, Q), In[0].subMod(T, Q)};
  }
  default:
    ADD_FAILURE() << "unsupported fuzz op";
    return {};
  }
}

/// Runs \p Trials random (modulus, inputs) instances against one compiled
/// kernel variant, five ways (fewer when \p GridPlan / \p VecPlan are
/// null: large widths skip those legs to bound suite time).
void fuzzVariant(KernelOp Op, const CompiledPlan &Plan,
                 const CompiledPlan *GridPlan, const CompiledPlan *VecPlan,
                 int Trials, SeededRng &R) {
  const Bignum One(1);
  unsigned M = Plan.Key.ModBits;
  unsigned K = Plan.ElemWords;
  unsigned NumIns = Plan.NumDataInputs;

  for (int T = 0; T < Trials; ++T) {
    // Random odd modulus of exactly M bits; inputs reduced below it.
    Bignum Q = Bignum::randomBits(R, M);
    if (!Q.isOdd())
      Q = Q + One; // even with the top bit set means Q <= 2^M - 2, so
                   // +1 stays at exactly M bits (while -1 could drop to
                   // M-1 bits when Q == 2^(M-1))
    std::vector<Bignum> In;
    for (unsigned I = 0; I < NumIns; ++I)
      In.push_back(Bignum::random(R, Q));

    // Oracle.
    std::vector<Bignum> Want = oracle(Op, In, Q, Plan);

    // Lowered-kernel interpreter. The kernel's trailing inputs are the
    // modulus and the reduction constants, in port order.
    PlanAux Aux = makePlanAux(Plan, Q);
    std::vector<Bignum> InterpIn = In;
    size_t QAt = Plan.Lowered.Inputs.size() - Plan.AuxWords.size();
    for (size_t I = 0; I < Plan.AuxWords.size(); ++I)
      InterpIn.push_back(
          unpackWordsMsbFirst(Aux.Buffers[I].data(), Plan.AuxWords[I]));
    (void)QAt;
    std::vector<Bignum> Interp = interpretLowered(Plan.Lowered, InterpIn);

    // JIT-compiled C through the runtime batch path (batch of one).
    std::vector<std::vector<std::uint64_t>> InW, OutW(Plan.NumOutputs);
    for (unsigned I = 0; I < NumIns; ++I)
      InW.push_back(packWordsMsbFirst(In[I], K));
    for (auto &O : OutW)
      O.assign(K, 0);
    BatchArgs Args;
    for (auto &O : OutW)
      Args.Outs.push_back(O.data());
    for (auto &I : InW)
      Args.Ins.push_back(I.data());
    Args.Aux = Aux.ptrs();
    std::string Err;
    ASSERT_TRUE(runBatch(Plan, Args, 1, &Err)) << Err;

    // Sim-GPU grid-shaped JIT through its ExecutionBackend (batch of one
    // exercises the block guard: one block, one live thread).
    std::vector<std::vector<std::uint64_t>> GridOutW(Plan.NumOutputs);
    if (GridPlan) {
      PlanAux GAux = makePlanAux(*GridPlan, Q);
      for (auto &O : GridOutW)
        O.assign(K, 0);
      BatchArgs GArgs;
      for (auto &O : GridOutW)
        GArgs.Outs.push_back(O.data());
      for (auto &I : InW)
        GArgs.Ins.push_back(I.data());
      GArgs.Aux = GAux.ptrs();
      ASSERT_TRUE(registry()
                      .backendFor(GridPlan->Key)
                      .runBatch(*GridPlan, GArgs, 1, 1, &Err))
          << Err;
    }

    // SIMD vector lane-loop JIT: the trial element replicated across a
    // random batch size, so the fixed-trip chunk bodies and the scalar
    // tail both run (and must all reproduce the oracle value).
    std::vector<std::vector<std::uint64_t>> VecOutW(Plan.NumOutputs);
    size_t VecN = 0;
    if (VecPlan) {
      VecN = 1 + R.below(37); // tails: rarely a multiple of the width
      PlanAux VAux = makePlanAux(*VecPlan, Q);
      std::vector<std::vector<std::uint64_t>> VecInW;
      for (unsigned I = 0; I < NumIns; ++I) {
        std::vector<std::uint64_t> Rep(VecN * K);
        for (size_t E = 0; E < VecN; ++E)
          std::copy(InW[I].begin(), InW[I].end(), Rep.begin() + E * K);
        VecInW.push_back(std::move(Rep));
      }
      for (auto &O : VecOutW)
        O.assign(VecN * K, 0);
      BatchArgs VArgs;
      for (auto &O : VecOutW)
        VArgs.Outs.push_back(O.data());
      for (auto &I : VecInW)
        VArgs.Ins.push_back(I.data());
      VArgs.Aux = VAux.ptrs();
      ASSERT_TRUE(registry()
                      .backendFor(VecPlan->Key)
                      .runBatch(*VecPlan, VArgs, VecN, 1, &Err))
          << Err;
    }

    for (size_t O = 0; O < Want.size(); ++O) {
      Bignum Jit = unpackWordsMsbFirst(OutW[O].data(), K);
      std::string Ctx = "trial " + std::to_string(T) + " of plan " +
                        Plan.Key.str() + "\n  q = " + Q.toHex();
      for (unsigned I = 0; I < NumIns; ++I)
        Ctx += "\n  in[" + std::to_string(I) + "] = " + In[I].toHex();
      Ctx += "\n  emitted source: " + Plan.Module->sourcePath();
      ASSERT_EQ(Interp[O], Want[O])
          << "INTERPRETER diverges from oracle on output " << O << "\n"
          << Ctx;
      ASSERT_EQ(Jit, Want[O])
          << "JIT-COMPILED C diverges from oracle on output " << O << "\n"
          << Ctx;
      if (GridPlan) {
        Bignum Grid = unpackWordsMsbFirst(GridOutW[O].data(), K);
        ASSERT_EQ(Grid, Want[O])
            << "SIM-GPU GRID JIT diverges from oracle on output " << O
            << " (plan " << GridPlan->Key.str()
            << ", source: " << GridPlan->Module->sourcePath() << ")\n"
            << Ctx;
      }
      if (VecPlan) {
        for (size_t E = 0; E < VecN; ++E) {
          Bignum Vec =
              unpackWordsMsbFirst(VecOutW[O].data() + E * K, K);
          ASSERT_EQ(Vec, Want[O])
              << "VECTOR LANE JIT diverges from oracle on output " << O
              << " at batch element " << E << " of " << VecN << " (plan "
              << VecPlan->Key.str()
              << ", source: " << VecPlan->Module->sourcePath() << ")\n"
              << Ctx;
        }
      }
    }
  }
}

/// One fuzz configuration: a word count and a reduction strategy. A few
/// kernel variants (random modulus width inside the word-count window,
/// random scheduling, pruning mostly on) split the trial budget.
void fuzzConfig(KernelOp Op, unsigned Words, mw::Reduction Red,
                std::uint64_t SeedDefault) {
  SeededRng R(SeedDefault);
  unsigned ContainerWords = 1;
  while (ContainerWords < Words)
    ContainerWords *= 2;
  unsigned Container = 64 * ContainerWords;
  // Modulus widths whose stored word count is exactly Words.
  unsigned LoM = std::max(4u, (Words - 1) * 64 + 1);
  unsigned HiM = std::min(Words * 64, Container - 4);

  int Iters = fuzzIters();
  // Large widths interpret slowly; two variants keep the suite quick
  // while still varying the generated kernel.
  int Variants = Words >= 8 ? 2 : 3;
  int PerVariant = (Iters + Variants - 1) / Variants;

  for (int V = 0; V < Variants; ++V) {
    unsigned M = LoM + static_cast<unsigned>(R.below(HiM - LoM + 1));
    rewrite::PlanOptions Opts;
    Opts.Red = Red;
    Opts.Schedule = R.below(2) == 1;
    // Unpruned kernels at large widths are enormous; exercise the
    // pruning-off path only where it stays cheap.
    Opts.Prune = Words >= 4 || R.below(4) != 0;

    PlanKey Key;
    Key.Op = Op;
    Key.ContainerBits = Container;
    Key.ModBits = M;
    Key.Opts = Opts;
    std::shared_ptr<const CompiledPlan> Plan = registry().get(Key);
    ASSERT_NE(Plan, nullptr) << registry().error();
    ASSERT_EQ(Plan->ElemWords, Words);

    // The sim-GPU leg of the oracle: same knobs compiled grid-shaped,
    // with a random launch geometry per variant. Widths above 8 words
    // stay 3-way (the interpreter dominates there anyway).
    std::shared_ptr<const CompiledPlan> GridPlan;
    std::shared_ptr<const CompiledPlan> VecPlan;
    if (Words <= 8) {
      const unsigned Dims[] = {64, 128, 256, 512, 1024};
      PlanKey GKey = Key;
      GKey.Opts.Backend = rewrite::ExecBackend::SimGpu;
      GKey.Opts.BlockDim = Dims[R.below(5)];
      GridPlan = registry().get(GKey);
      ASSERT_NE(GridPlan, nullptr) << registry().error();
      // The vector leg: same knobs compiled as the SIMD lane loop, with
      // a random lane width per variant (widths share one module).
      const unsigned Lanes[] = {1, 2, 4, 8};
      PlanKey VKey = Key;
      VKey.Opts.Backend = rewrite::ExecBackend::Vector;
      VKey.Opts.VectorWidth = Lanes[R.below(4)];
      VecPlan = registry().get(VKey);
      ASSERT_NE(VecPlan, nullptr) << registry().error();
    }
    fuzzVariant(Op, *Plan, GridPlan.get(), VecPlan.get(), PerVariant, R);
  }
}

/// The FuseDepth axis of the fused NTT pipeline: random transform shapes
/// (size, batch, width) executed through random (backend, reduction,
/// block-dim, fuse-depth) variants must stay bit-identical to the
/// serial/Barrett/depth-1 walk of the same data — the fused groups, the
/// first-stage bit-reversal gather, the in-register sub-stages and the
/// folded inverse scaling all collapse to the same butterfly sequence.
void fuzzNttFuseDepth(std::uint64_t SeedDefault) {
  SeededRng R(SeedDefault);
  KernelRegistry Reg; // own registry: pinned-variant dispatchers below
  const unsigned Dims[] = {1, 3, 64, 257, 1024};
  int Trials = std::max(1, fuzzIters() / 20); // transforms are heavyweight
  for (int T = 0; T < Trials; ++T) {
    unsigned Words = 1u << R.below(3); // 1, 2, 4
    unsigned LogN = 1 + unsigned(R.below(8));
    size_t N = size_t(1) << LogN;
    size_t Batch = 1 + R.below(3);
    mw::Bignum Q = field::nttPrime(64 * Words - 4 - unsigned(R.below(9)),
                                   LogN + 1 + unsigned(R.below(3)));
    unsigned K = (Q.bitWidth() + 63) / 64;

    std::vector<mw::Bignum> Polys;
    for (size_t I = 0; I < N * Batch; ++I)
      Polys.push_back(mw::Bignum::random(R, Q));
    auto Packed = packBatch(Polys, K);

    rewrite::PlanOptions Ref; // serial, Barrett, depth 1
    Dispatcher DRef(Reg, nullptr, Ref);
    auto Want = Packed;
    bool Inverse = R.below(2) == 1;
    // The drawn 2-adicity is always >= LogN + 1, so the negacyclic ring
    // is admissible on every trial and joins the fuzzed axes.
    rewrite::NttRing Ring = R.below(2) ? rewrite::NttRing::Negacyclic
                                       : rewrite::NttRing::Cyclic;
    auto Run = [&](Dispatcher &Dd, std::uint64_t *P) {
      return Inverse ? Dd.nttInverse(Q, P, N, Batch, Ring)
                     : Dd.nttForward(Q, P, N, Batch, Ring);
    };
    ASSERT_TRUE(Run(DRef, Want.data())) << DRef.error();

    rewrite::PlanOptions V;
    std::uint64_t BackendDraw = R.below(3);
    V.Backend = BackendDraw == 0   ? rewrite::ExecBackend::Serial
                : BackendDraw == 1 ? rewrite::ExecBackend::SimGpu
                                   : rewrite::ExecBackend::Vector;
    V.BlockDim = Dims[R.below(5)];
    const unsigned Lanes[] = {1, 2, 4, 8, 16};
    V.VectorWidth = Lanes[R.below(5)];
    V.FuseDepth = 1 + unsigned(R.below(3));
    V.Red = R.below(2) ? mw::Reduction::Montgomery
                       : mw::Reduction::Barrett;
    V.Schedule = R.below(2) == 1;
    Dispatcher D(Reg, nullptr, V);
    auto Data = Packed;
    ASSERT_TRUE(Run(D, Data.data())) << D.error();
    ASSERT_EQ(Data, Want)
        << "trial " << T << ": " << (Inverse ? "inverse" : "forward")
        << " " << rewrite::nttRingName(Ring)
        << " NTT diverges, n = " << N << ", batch = " << Batch
        << ", q = " << Q.toHex() << ", variant "
        << runtime::PlanKey::forModulus(KernelOp::Butterfly, Q, V)
               .str();
  }
}

TEST(DifferentialFuzz, NttFuseDepthAxis) { fuzzNttFuseDepth(0xF0261); }

} // namespace

#define MOMA_FUZZ_TEST(OP, WORDS, RED, SEED)                                   \
  TEST(DifferentialFuzz, OP##_w##WORDS##_##RED) {                              \
    fuzzConfig(KernelOp::OP, WORDS, mw::Reduction::RED, SEED);                 \
  }

MOMA_FUZZ_TEST(MulMod, 1, Barrett, 0xF0221)
MOMA_FUZZ_TEST(MulMod, 2, Barrett, 0xF0222)
MOMA_FUZZ_TEST(MulMod, 4, Barrett, 0xF0224)
MOMA_FUZZ_TEST(MulMod, 8, Barrett, 0xF0228)
MOMA_FUZZ_TEST(MulMod, 12, Barrett, 0xF022C)
MOMA_FUZZ_TEST(MulMod, 1, Montgomery, 0xF0231)
MOMA_FUZZ_TEST(MulMod, 2, Montgomery, 0xF0232)
MOMA_FUZZ_TEST(MulMod, 4, Montgomery, 0xF0234)
MOMA_FUZZ_TEST(MulMod, 8, Montgomery, 0xF0238)
MOMA_FUZZ_TEST(MulMod, 12, Montgomery, 0xF023C)
MOMA_FUZZ_TEST(Butterfly, 1, Barrett, 0xF0241)
MOMA_FUZZ_TEST(Butterfly, 2, Barrett, 0xF0242)
MOMA_FUZZ_TEST(Butterfly, 4, Barrett, 0xF0244)
MOMA_FUZZ_TEST(Butterfly, 8, Barrett, 0xF0248)
MOMA_FUZZ_TEST(Butterfly, 12, Barrett, 0xF024C)
MOMA_FUZZ_TEST(Butterfly, 1, Montgomery, 0xF0251)
MOMA_FUZZ_TEST(Butterfly, 2, Montgomery, 0xF0252)
MOMA_FUZZ_TEST(Butterfly, 4, Montgomery, 0xF0254)
MOMA_FUZZ_TEST(Butterfly, 8, Montgomery, 0xF0258)
MOMA_FUZZ_TEST(Butterfly, 12, Montgomery, 0xF025C)

//===----------------------------------------------------------------------===//
// RNS differential fuzz: random multi-word batches through the RNS layer
// vs the Bignum oracle (vmul) and the Bignum schoolbook convolution
// (polyMul), across backend x ring x limb count x limb width. Each trial
// draws a whole problem shape, so the budget is divided down — the
// nightly MOMA_FUZZ_ITERS raise still scales it linearly.
//===----------------------------------------------------------------------===//

TEST(DifferentialFuzz, RnsVMulAndPolyMul) {
  SeededRng R(0xF0271);
  int Trials = std::max(2, fuzzIters() / 25);
  // Small palette of limb shapes: every (bits, count) pair reuses its
  // compiled plans across trials, so the suite stays JIT-bound, not
  // compile-bound.
  const unsigned LimbBitsChoices[] = {44, 52, 60};
  const unsigned LimbCountChoices[] = {2, 3, 4};
  for (int T = 0; T < Trials; ++T) {
    RnsContext Ctx;
    std::string Err;
    RnsContext::Options O;
    O.LimbBits = LimbBitsChoices[R.below(3)];
    O.TwoAdicity = 8;
    ASSERT_TRUE(
        RnsContext::create(LimbCountChoices[R.below(3)], Ctx, &Err, O))
        << Err;
    const Bignum &M = Ctx.modulus();
    unsigned WW = Ctx.wideWords();

    rewrite::PlanOptions Base;
    std::uint64_t BackendDraw = R.below(3);
    Base.Backend = BackendDraw == 0   ? rewrite::ExecBackend::Serial
                   : BackendDraw == 1 ? rewrite::ExecBackend::SimGpu
                                      : rewrite::ExecBackend::Vector;
    Base.BlockDim = Base.Backend == rewrite::ExecBackend::SimGpu
                        ? (64u << (R.below(3)))
                        : 0;
    Base.VectorWidth = Base.Backend == rewrite::ExecBackend::Vector
                           ? (1u << R.below(4))
                           : 0;
    Base.Red = (R.below(2)) ? mw::Reduction::Montgomery
                              : mw::Reduction::Barrett;
    Base.FuseDepth = 1 + R.below(3);
    Dispatcher D(registry(), nullptr, Base);

    // Element-wise: random batch, vmul vs Bignum.
    {
      size_t N = 1 + R.below(40);
      std::vector<Bignum> A, B;
      for (size_t I = 0; I < N; ++I) {
        A.push_back(Bignum::random(R, M));
        B.push_back(Bignum::random(R, M));
      }
      auto AW = packBatch(A, WW), BW = packBatch(B, WW);
      std::vector<std::uint64_t> CW(N * WW);
      ASSERT_TRUE(D.rnsVMul(Ctx, AW.data(), BW.data(), CW.data(), N))
          << D.error() << " (trial " << T << ")";
      auto C = unpackBatch(CW, WW);
      for (size_t I = 0; I < N; ++I)
        ASSERT_EQ(C[I], A[I].mulMod(B[I], M))
            << "rnsVMul trial " << T << " elem " << I << " base "
            << Base.str();
    }

    // Polynomial: small transform, random ring, vs schoolbook mod M.
    {
      size_t NP = size_t(4) << (R.below(4)); // 4..32
      size_t Batch = 1 + R.below(2);
      rewrite::NttRing Ring = (R.below(2))
                                  ? rewrite::NttRing::Negacyclic
                                  : rewrite::NttRing::Cyclic;
      std::vector<Bignum> A, B;
      for (size_t I = 0; I < NP * Batch; ++I) {
        A.push_back(Bignum::random(R, M));
        B.push_back(Bignum::random(R, M));
      }
      auto AW = packBatch(A, WW), BW = packBatch(B, WW);
      std::vector<std::uint64_t> CW(NP * Batch * WW);
      ASSERT_TRUE(D.rnsPolyMul(Ctx, AW.data(), BW.data(), CW.data(), NP,
                               Batch, Ring))
          << D.error() << " (trial " << T << ")";
      auto C = unpackBatch(CW, WW);
      for (size_t Bt = 0; Bt < Batch; ++Bt) {
        std::vector<Bignum> RA(A.begin() + Bt * NP,
                               A.begin() + (Bt + 1) * NP),
            RB(B.begin() + Bt * NP, B.begin() + (Bt + 1) * NP);
        auto Want = ntt::referencePolyMulRing(
            RA, RB, M, Ring == rewrite::NttRing::Negacyclic);
        for (size_t I = 0; I < NP; ++I)
          ASSERT_EQ(C[Bt * NP + I], Want[I])
              << "rnsPolyMul trial " << T << " ring "
              << rewrite::nttRingName(Ring) << " batch " << Bt
              << " coeff " << I << " base " << Base.str();
      }
    }
  }
}
