//===- tests/runtime/BackendTest.cpp - execution-backend layer ----------------===//
//
// Coverage for the backend-polymorphic runtime: plan-cache keying with
// backend + launch-geometry fields, geometry validation, module sharing
// across geometries, serial vs sim-GPU bit-identical execution through
// the dispatcher, and tune-cache round-trips carrying backend fields.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "field/PrimeGen.h"
#include "runtime/Autotuner.h"
#include "runtime/Backend.h"
#include "runtime/Dispatcher.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

using namespace moma;
using namespace moma::runtime;
using namespace moma::testutil;
using mw::Bignum;
using rewrite::ExecBackend;

namespace {

KernelRegistry &registry() {
  static KernelRegistry Reg;
  return Reg;
}

Bignum testModulus(unsigned Bits) { return field::nttPrime(Bits, 16); }

rewrite::PlanOptions simGpuBase(unsigned BlockDim = 0) {
  rewrite::PlanOptions O;
  O.Backend = ExecBackend::SimGpu;
  O.BlockDim = BlockDim;
  return O;
}

std::vector<Bignum> randomElems(Rng &R, const Bignum &Q, size_t N) {
  std::vector<Bignum> Out;
  for (size_t I = 0; I < N; ++I)
    Out.push_back(Bignum::random(R, Q));
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Plan-cache keying
//===----------------------------------------------------------------------===//

TEST(BackendPlanKey, SerialKeysKeepTheLegacyForm) {
  Bignum Q = testModulus(124);
  PlanKey K = PlanKey::forModulus(KernelOp::MulMod, Q);
  EXPECT_EQ(K.str(),
            "mulmod/c128/m124/w64/barrett/schoolbook/prune/noschedule")
      << "pre-backend cache keys must stay readable as serial plans";
  EXPECT_EQ(K.Opts.Backend, ExecBackend::Serial);
  EXPECT_EQ(K.Opts.BlockDim, 0u) << "geometry folds away on serial";
}

TEST(BackendPlanKey, SerialFoldsTheBlockDim) {
  Bignum Q = testModulus(124);
  rewrite::PlanOptions O;
  O.BlockDim = 512; // meaningless without the sim-GPU backend
  PlanKey A = PlanKey::forModulus(KernelOp::MulMod, Q, O);
  PlanKey B = PlanKey::forModulus(KernelOp::MulMod, Q);
  EXPECT_EQ(A.str(), B.str()) << "one cache entry per serial variant";
}

TEST(BackendPlanKey, SimGpuKeysCarryBackendAndGeometry) {
  Bignum Q = testModulus(124);
  PlanKey K = PlanKey::forModulus(KernelOp::MulMod, Q, simGpuBase());
  EXPECT_EQ(K.Opts.BlockDim, 256u) << "unset geometry defaults to 256";
  EXPECT_EQ(K.str(), "mulmod/c128/m124/w64/barrett/schoolbook/prune/"
                     "noschedule/simgpu/b256");
  PlanKey K2 = PlanKey::forModulus(KernelOp::MulMod, Q, simGpuBase(1024));
  EXPECT_NE(K.str(), K2.str()) << "geometry is part of the key";
}

TEST(BackendPlanKey, SerialAndSimGpuAreDistinctCacheEntries) {
  Bignum Q = testModulus(124);
  auto PS = registry().get(PlanKey::forModulus(KernelOp::MulMod, Q));
  ASSERT_NE(PS, nullptr) << registry().error();
  auto PG =
      registry().get(PlanKey::forModulus(KernelOp::MulMod, Q, simGpuBase()));
  ASSERT_NE(PG, nullptr) << registry().error();
  EXPECT_NE(PS.get(), PG.get());
  EXPECT_NE(PS->Fn, nullptr);
  EXPECT_EQ(PS->GridFn, nullptr);
  EXPECT_EQ(PG->Fn, nullptr);
  EXPECT_NE(PG->GridFn, nullptr);
}

TEST(BackendPlanKey, GeometriesShareOneCompiledModule) {
  // Block dim is a launch parameter of the grid ABI: two geometries are
  // distinct plans but identical source, so HostJit's in-memory dedup
  // serves the second without another compiler invocation.
  Bignum Q = testModulus(60);
  auto P1 =
      registry().get(PlanKey::forModulus(KernelOp::MulMod, Q, simGpuBase(64)));
  ASSERT_NE(P1, nullptr) << registry().error();
  jit::HostJit::Stats Before = registry().jit().stats();
  auto P2 = registry().get(
      PlanKey::forModulus(KernelOp::MulMod, Q, simGpuBase(512)));
  ASSERT_NE(P2, nullptr) << registry().error();
  EXPECT_NE(P1.get(), P2.get()) << "distinct plan-cache entries";
  EXPECT_EQ(P1->Module.get(), P2->Module.get()) << "one shared module";
  EXPECT_EQ(registry().jit().stats().Compiles, Before.Compiles);
}

//===----------------------------------------------------------------------===//
// Geometry validation
//===----------------------------------------------------------------------===//

TEST(BackendGeometry, RejectsMoreThan1024ThreadsPerBlock) {
  Bignum Q = testModulus(124);
  auto P = registry().get(
      PlanKey::forModulus(KernelOp::MulMod, Q, simGpuBase(2048)));
  EXPECT_EQ(P, nullptr) << "paper 5.1: at most 1024 threads per block";
  EXPECT_NE(registry().error().find("block dimension"), std::string::npos)
      << registry().error();
}

TEST(BackendGeometry, SerialBackendRefusesSimGpuPlans) {
  Bignum Q = testModulus(124);
  auto PG =
      registry().get(PlanKey::forModulus(KernelOp::MulMod, Q, simGpuBase()));
  ASSERT_NE(PG, nullptr) << registry().error();
  BatchArgs Args;
  std::string Err;
  EXPECT_FALSE(runBatch(*PG, Args, 0, &Err))
      << "the serial path must not silently run a grid plan";
  EXPECT_NE(Err.find("simgpu"), std::string::npos) << Err;
  SerialBackend SB;
  EXPECT_FALSE(SB.runBatch(*PG, Args, 0, 1, &Err));
}

//===----------------------------------------------------------------------===//
// Serial vs sim-GPU bit-identical execution
//===----------------------------------------------------------------------===//

TEST(BackendExecution, ElementwiseMatchesSerialBitForBit) {
  Dispatcher DS(registry());
  Dispatcher DG(registry(), nullptr, simGpuBase(128));
  Bignum Q = testModulus(252);
  SeededRng R(0xBACC1);
  const size_t N = 301; // deliberately not a multiple of the block dim
  unsigned K = Dispatcher::elemWords(Q);
  auto A = randomElems(R, Q, N), B = randomElems(R, Q, N);
  auto AW = packBatch(A, K), BW = packBatch(B, K);
  std::vector<std::uint64_t> CS(N * K), CG(N * K);

  ASSERT_TRUE(DS.vmul(Q, AW.data(), BW.data(), CS.data(), N)) << DS.error();
  ASSERT_TRUE(DG.vmul(Q, AW.data(), BW.data(), CG.data(), N)) << DG.error();
  EXPECT_EQ(DG.lastPlanOptions().Backend, ExecBackend::SimGpu);
  EXPECT_EQ(CS, CG) << "vmul diverges across backends";

  ASSERT_TRUE(DS.vadd(Q, AW.data(), BW.data(), CS.data(), N)) << DS.error();
  ASSERT_TRUE(DG.vadd(Q, AW.data(), BW.data(), CG.data(), N)) << DG.error();
  EXPECT_EQ(CS, CG) << "vadd diverges across backends";
}

TEST(BackendExecution, AxpyBroadcastStrideWorksOnTheGrid) {
  Dispatcher DG(registry(), nullptr, simGpuBase(64));
  Bignum Q = testModulus(124);
  SeededRng R(0xBACC2);
  const size_t N = 97;
  unsigned K = Dispatcher::elemWords(Q);
  Bignum A = Bignum::random(R, Q);
  auto X = randomElems(R, Q, N), Y = randomElems(R, Q, N);
  auto AW = packWordsMsbFirst(A, K);
  auto XW = packBatch(X, K), YW = packBatch(Y, K);
  ASSERT_TRUE(DG.axpy(Q, AW.data(), XW.data(), YW.data(), N)) << DG.error();
  auto Out = unpackBatch(YW, K);
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(Out[I], A.mulMod(X[I], Q).addMod(Y[I], Q)) << "element " << I;
}

TEST(BackendExecution, GridBatchRowsIndexTheYDimension) {
  // Rows > 1 exercises the grid's e = blockIdx.y * n + i indexing with a
  // broadcast (stride 0) operand shared by every row.
  Bignum Q = testModulus(124);
  auto P =
      registry().get(PlanKey::forModulus(KernelOp::MulMod, Q, simGpuBase(32)));
  ASSERT_NE(P, nullptr) << registry().error();
  PlanAux Aux = makePlanAux(*P, Q);
  SeededRng R(0xBACC3);
  const size_t N = 45, Rows = 3;
  unsigned K = P->ElemWords;
  auto A = randomElems(R, Q, N * Rows);
  Bignum S = Bignum::random(R, Q);
  auto AW = packBatch(A, K);
  auto SW = packWordsMsbFirst(S, K);
  std::vector<std::uint64_t> CW(N * Rows * K);
  BatchArgs Args;
  Args.Outs = {CW.data()};
  Args.Ins = {AW.data(), SW.data()};
  Args.InStrides = {K, 0};
  Args.Aux = Aux.ptrs();
  std::string Err;
  ASSERT_TRUE(registry()
                  .backendFor(P->Key)
                  .runBatch(*P, Args, N, Rows, &Err))
      << Err;
  auto C = unpackBatch(CW, K);
  for (size_t I = 0; I < N * Rows; ++I)
    ASSERT_EQ(C[I], A[I].mulMod(S, Q)) << "element " << I;
}

TEST(BackendExecution, NttMatchesSerialBitForBit) {
  Dispatcher DS(registry());
  Dispatcher DG(registry(), nullptr, simGpuBase(128));
  Bignum Q = testModulus(124);
  const size_t N = 64, Batch = 5;
  unsigned K = Dispatcher::elemWords(Q);
  SeededRng R(0xBACC4);
  auto Polys = randomElems(R, Q, N * Batch);
  auto DataS = packBatch(Polys, K);
  auto DataG = DataS;

  ASSERT_TRUE(DS.nttForward(Q, DataS.data(), N, Batch)) << DS.error();
  ASSERT_TRUE(DG.nttForward(Q, DataG.data(), N, Batch)) << DG.error();
  EXPECT_EQ(DataS, DataG) << "forward NTT diverges across backends";

  ASSERT_TRUE(DS.nttInverse(Q, DataS.data(), N, Batch)) << DS.error();
  ASSERT_TRUE(DG.nttInverse(Q, DataG.data(), N, Batch)) << DG.error();
  EXPECT_EQ(DataS, DataG) << "inverse NTT diverges across backends";
  EXPECT_EQ(unpackBatch(DataG, K), Polys) << "roundtrip identity";
}

TEST(BackendExecution, StageGeometrySweepMatchesSerial) {
  // The stage entry's g/j division-and-carry indexing is the trickiest
  // new code path: sweep transform sizes against block dims that do NOT
  // divide the butterfly count (partial blocks, non-power-of-two dims,
  // one-thread blocks) and demand bit-identity with the serial stage
  // loop at every stage length.
  Dispatcher DS(registry());
  Bignum Q = testModulus(124);
  unsigned K = Dispatcher::elemWords(Q);
  SeededRng R(0xBACC6);
  const size_t Sizes[] = {4, 16, 64, 256};
  const unsigned Dims[] = {1, 3, 64, 257, 1024};
  for (size_t N : Sizes) {
    const size_t Batch = 3;
    auto Polys = randomElems(R, Q, N * Batch);
    auto Want = packBatch(Polys, K);
    ASSERT_TRUE(DS.nttForward(Q, Want.data(), N, Batch)) << DS.error();
    for (unsigned BD : Dims) {
      Dispatcher DG(registry(), nullptr, simGpuBase(BD));
      auto Data = packBatch(Polys, K);
      ASSERT_TRUE(DG.nttForward(Q, Data.data(), N, Batch)) << DG.error();
      ASSERT_EQ(Data, Want) << "n = " << N << ", block dim = " << BD;
    }
  }
}

TEST(BackendExecution, PolyMulMatchesSerialBitForBit) {
  Dispatcher DS(registry());
  Dispatcher DG(registry(), nullptr, simGpuBase());
  Bignum Q = testModulus(252);
  const size_t N = 32, Batch = 3;
  unsigned K = Dispatcher::elemWords(Q);
  SeededRng R(0xBACC5);
  auto A = randomElems(R, Q, N * Batch), B = randomElems(R, Q, N * Batch);
  auto AW = packBatch(A, K), BW = packBatch(B, K);
  std::vector<std::uint64_t> CS(N * Batch * K), CG(N * Batch * K);
  ASSERT_TRUE(DS.polyMul(Q, AW.data(), BW.data(), CS.data(), N, Batch))
      << DS.error();
  ASSERT_TRUE(DG.polyMul(Q, AW.data(), BW.data(), CG.data(), N, Batch))
      << DG.error();
  EXPECT_EQ(CS, CG) << "polyMul diverges across backends";
}

//===----------------------------------------------------------------------===//
// Tune-cache round-trip with backend fields
//===----------------------------------------------------------------------===//

namespace {

AutotunerOptions quickBackendTune() {
  AutotunerOptions O;
  O.CalibrationElems = 32;
  O.MaxCalibrationElems = 64;
  O.Repeats = 1;
  O.BlockDims = {128}; // one geometry keeps the sweep fast
  return O;
}

} // namespace

TEST(BackendTune, DecisionsRoundTripWithBackendFields) {
  namespace fs = std::filesystem;
  std::string Path =
      (fs::temp_directory_path() / "moma-tune-backend.json").string();
  std::remove(Path.c_str());

  Bignum Q = testModulus(252);
  Autotuner T1(registry(), quickBackendTune());
  const TuneDecision *D1 = T1.choose(KernelOp::MulMod, Q, {}, 1000);
  ASSERT_NE(D1, nullptr) << T1.error();
  rewrite::PlanOptions Won = D1->Opts;
  ASSERT_TRUE(T1.save(Path));

  Autotuner T2(registry(), quickBackendTune());
  ASSERT_TRUE(T2.load(Path)) << T2.error();
  const TuneDecision *D2 = T2.choose(KernelOp::MulMod, Q, {}, 1000);
  ASSERT_NE(D2, nullptr) << T2.error();
  EXPECT_TRUE(D2->FromCache) << "persisted decision must not be re-timed";
  EXPECT_EQ(T2.stats().Tuned, 0u);
  EXPECT_EQ(D2->Opts.Backend, Won.Backend)
      << "backend field lost in the JSON round-trip";
  EXPECT_EQ(D2->Opts.BlockDim, Won.BlockDim)
      << "geometry field lost in the JSON round-trip";
  EXPECT_TRUE(D2->Opts == Won) << "loaded " << D2->Opts.str() << ", tuned "
                               << Won.str();
  std::remove(Path.c_str());
}

TEST(BackendTune, DecisionsArePerBatchSizeClass) {
  Autotuner T(registry(), quickBackendTune());
  Bignum Q = testModulus(124);
  const TuneDecision *Small = T.choose(KernelOp::MulMod, Q, {}, 8);
  ASSERT_NE(Small, nullptr) << T.error();
  const TuneDecision *Large = T.choose(KernelOp::MulMod, Q, {}, 5000);
  ASSERT_NE(Large, nullptr) << T.error();
  EXPECT_EQ(T.stats().Tuned, 2u)
      << "different size classes tune independently";
  EXPECT_EQ(Autotuner::sizeBucket(8), 64u);
  EXPECT_EQ(Autotuner::sizeBucket(5000), 8192u);
  EXPECT_EQ(Autotuner::sizeBucket(1u << 20), 16384u) << "bucket cap";
  const TuneDecision *Again = T.choose(KernelOp::MulMod, Q, {}, 6000);
  EXPECT_EQ(Again, Large) << "same bucket reuses the decision";
}

TEST(BackendTune, PinnedBackendIsRespectedWhenSweepDisabled) {
  AutotunerOptions O = quickBackendTune();
  O.TuneBackend = false;
  Autotuner T(registry(), O);
  Bignum Q = testModulus(124);
  const TuneDecision *DG = T.choose(KernelOp::MulMod, Q, simGpuBase(128));
  ASSERT_NE(DG, nullptr) << T.error();
  EXPECT_EQ(DG->Opts.Backend, ExecBackend::SimGpu);
  EXPECT_EQ(DG->Opts.BlockDim, 128u);
  const TuneDecision *DSer = T.choose(KernelOp::MulMod, Q);
  ASSERT_NE(DSer, nullptr) << T.error();
  EXPECT_EQ(DSer->Opts.Backend, ExecBackend::Serial)
      << "serial-base caller must not inherit the sim-GPU decision";
}
