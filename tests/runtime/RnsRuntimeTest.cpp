//===- tests/runtime/RnsRuntimeTest.cpp - RNS multi-modulus runtime ------------===//
//
// Coverage for the runtime RNS layer (runtime/RnsContext.h + the
// Dispatcher's rns* entry points):
//
//  * base construction invariants (distinct same-width NTT-friendly
//    limbs, M = Π q_l, packed CRT weights) and shape rejection;
//  * the generated CRT edge kernels: batched decompose matches the host
//    encode reference, decompose -> recombine is the identity on reduced
//    wide batches, on both backends;
//  * bit-exactness of rnsVAdd/rnsVMul against the Bignum oracle and the
//    GRNS baseline (`baselines/Rns.h` mulModQ path);
//  * bit-exactness of rnsPolyMul against the Bignum schoolbook
//    convolution (n = 64, every limb count) and against the independent
//    library-NTT-per-limb + host-CRT oracle (n up to 1024), cyclic and
//    negacyclic, limb counts {2, 4, 8};
//  * the plan-sharing guarantee: because PlanKey excludes the modulus
//    value, the number of compiled plans is independent of the limb
//    count, and dispatchStats() shows the exact per-limb dispatch
//    arithmetic;
//  * negacyclic rnsPolyMul issues exactly the cyclic dispatch count
//    (the ψ folds ride existing edge dispatches);
//  * PlanKey canonicalization of the new axes (/W wide words, /neg ring
//    suffix, folded knobs on the CRT kernels).
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "baselines/Rns.h"
#include "field/PrimeField.h"
#include "field/RootOfUnity.h"
#include "ntt/Negacyclic.h"
#include "ntt/Ntt.h"
#include "ntt/ReferenceDft.h"
#include "runtime/Dispatcher.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace moma;
using namespace moma::runtime;
using namespace moma::testutil;
using mw::Bignum;
using rewrite::ExecBackend;
using rewrite::NttRing;

namespace {

/// One registry per test binary: identical kernel variants across tests
/// share compiled modules and the on-disk JIT cache.
KernelRegistry &registry() {
  static KernelRegistry Reg;
  return Reg;
}

rewrite::PlanOptions pinned(ExecBackend B, unsigned FuseDepth = 1) {
  rewrite::PlanOptions O;
  O.Backend = B;
  O.FuseDepth = FuseDepth;
  return O;
}

RnsContext makeBase(unsigned Limbs, unsigned LimbBits = 60,
                    unsigned TwoAdicity = 16) {
  RnsContext Ctx;
  std::string Err;
  RnsContext::Options O;
  O.LimbBits = LimbBits;
  O.TwoAdicity = TwoAdicity;
  EXPECT_TRUE(RnsContext::create(Limbs, Ctx, &Err, O)) << Err;
  return Ctx;
}

std::vector<Bignum> randomWide(Rng &R, const RnsContext &Ctx, size_t N) {
  std::vector<Bignum> Out;
  for (size_t I = 0; I < N; ++I)
    Out.push_back(Bignum::random(R, Ctx.modulus()));
  return Out;
}

/// Schoolbook C = A * B over Z_M[x]/(x^n -+ 1), one batch row (the
/// shared ntt::referencePolyMulRing oracle).
std::vector<Bignum> schoolbook(const std::vector<Bignum> &A,
                               const std::vector<Bignum> &B,
                               const Bignum &M, NttRing Ring) {
  return ntt::referencePolyMulRing(A, B, M,
                                   Ring == NttRing::Negacyclic);
}

/// The independent per-limb oracle: host encode, library NTT polynomial
/// product per limb (ntt::NttPlan / ntt::NegacyclicPlan — not the
/// runtime under test), host CRT decode.
std::vector<Bignum> limbLibraryOracle(const RnsContext &Ctx,
                                      const std::vector<Bignum> &A,
                                      const std::vector<Bignum> &B,
                                      size_t NPoints, NttRing Ring) {
  size_t Batch = A.size() / NPoints;
  std::vector<std::vector<std::uint64_t>> LimbC(Ctx.numLimbs());
  for (size_t L = 0; L < Ctx.numLimbs(); ++L) {
    field::PrimeField<1> F(Ctx.limb(L));
    using Elem = field::PrimeField<1>::Element;
    ntt::NttPlan<1> Cyc(F, NPoints);
    ntt::NegacyclicPlan<1> Neg(F, NPoints);
    for (size_t Bt = 0; Bt < Batch; ++Bt) {
      std::vector<Elem> EA, EB;
      for (size_t I = 0; I < NPoints; ++I) {
        EA.push_back(F.fromBignum(A[Bt * NPoints + I] % Ctx.limb(L)));
        EB.push_back(F.fromBignum(B[Bt * NPoints + I] % Ctx.limb(L)));
      }
      std::vector<Elem> EC;
      if (Ring == NttRing::Negacyclic) {
        EC = ntt::polyMulNegacyclic(Neg, EA, EB);
      } else {
        Cyc.forward(EA.data());
        Cyc.forward(EB.data());
        EC.resize(NPoints);
        for (size_t I = 0; I < NPoints; ++I)
          EC[I] = F.mul(EA[I], EB[I]);
        Cyc.inverse(EC.data());
      }
      for (const Elem &E : EC)
        LimbC[L].push_back(E.toBignum().low64());
    }
  }
  std::vector<Bignum> Out;
  size_t N = A.size();
  for (size_t I = 0; I < N; ++I) {
    std::vector<std::uint64_t> Res;
    for (size_t L = 0; L < Ctx.numLimbs(); ++L)
      Res.push_back(LimbC[L][I]);
    Out.push_back(Ctx.decode(Res.data(), 1));
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Base construction
//===----------------------------------------------------------------------===//

TEST(RnsRuntime, ContextShapeAndRejection) {
  for (unsigned L : {2u, 4u, 8u}) {
    RnsContext Ctx = makeBase(L);
    EXPECT_EQ(Ctx.numLimbs(), L);
    Bignum Prod(1);
    for (size_t I = 0; I < Ctx.numLimbs(); ++I) {
      EXPECT_EQ(Ctx.limb(I).bitWidth(), 60u) << "limb " << I;
      EXPECT_GE(field::twoAdicity(Ctx.limb(I)), 16u);
      for (size_t J = I + 1; J < Ctx.numLimbs(); ++J)
        EXPECT_NE(Ctx.limb(I), Ctx.limb(J)) << "duplicate limb";
      Prod = Prod * Ctx.limb(I);
    }
    EXPECT_EQ(Ctx.modulus(), Prod);
    EXPECT_EQ(Ctx.wideWords(), (Ctx.modulus().bitWidth() + 63) / 64);
    // CRT weights: W_i ≡ 1 (mod q_i) and ≡ 0 (mod q_j), j != i.
    for (size_t I = 0; I < Ctx.numLimbs(); ++I) {
      Bignum W = unpackWordsMsbFirst(Ctx.weightWords(I).data(),
                                     Ctx.wideWords());
      for (size_t J = 0; J < Ctx.numLimbs(); ++J)
        EXPECT_EQ(W % Ctx.limb(J), Bignum(I == J ? 1 : 0));
    }
  }
  RnsContext Bad;
  std::string Err;
  EXPECT_FALSE(RnsContext::create(1, Bad, &Err));
  EXPECT_FALSE(Err.empty());
  RnsContext::Options WideLimb;
  WideLimb.LimbBits = 70;
  EXPECT_FALSE(RnsContext::create(2, Bad, &Err, WideLimb));
}

//===----------------------------------------------------------------------===//
// CRT edge kernels
//===----------------------------------------------------------------------===//

TEST(RnsRuntime, DecomposeMatchesEncodeAndRoundtripsBothBackends) {
  SeededRng R(0x2A51);
  RnsContext Ctx = makeBase(4);
  unsigned WW = Ctx.wideWords();
  const size_t N = 33; // odd length exercises the grid tail block
  auto A = randomWide(R, Ctx, N);
  auto AW = packBatch(A, WW);
  for (ExecBackend B : {ExecBackend::Serial, ExecBackend::SimGpu}) {
    Dispatcher D(registry(), nullptr, pinned(B));
    std::vector<std::uint64_t> Res(Ctx.numLimbs() * N, ~0ull),
        Back(N * WW);
    ASSERT_TRUE(D.rnsDecompose(Ctx, AW.data(), Res.data(), N))
        << D.error();
    for (size_t I = 0; I < N; ++I) {
      auto Ref = Ctx.encode(A[I]);
      for (size_t L = 0; L < Ctx.numLimbs(); ++L)
        ASSERT_EQ(Res[L * N + I], Ref[L])
            << "backend " << rewrite::execBackendName(B) << " elem " << I
            << " limb " << L;
    }
    ASSERT_TRUE(D.rnsRecombine(Ctx, Res.data(), Back.data(), N))
        << D.error();
    EXPECT_EQ(unpackBatch(Back, WW), A)
        << "roundtrip, backend " << rewrite::execBackendName(B);
  }
}

//===----------------------------------------------------------------------===//
// Element-wise ops vs the Bignum oracle and the GRNS baseline
//===----------------------------------------------------------------------===//

TEST(RnsRuntime, VAddVMulBitExactVsBignumAndGrnsBaseline) {
  SeededRng R(0x2A52);
  for (unsigned Limbs : {2u, 4u}) {
    RnsContext Ctx = makeBase(Limbs);
    const Bignum &M = Ctx.modulus();
    unsigned WW = Ctx.wideWords();
    const size_t N = 24;
    auto A = randomWide(R, Ctx, N), B = randomWide(R, Ctx, N);
    auto AW = packBatch(A, WW), BW = packBatch(B, WW);
    std::vector<std::uint64_t> CW(N * WW);

    Dispatcher D(registry());
    ASSERT_TRUE(D.rnsVAdd(Ctx, AW.data(), BW.data(), CW.data(), N))
        << D.error();
    auto C = unpackBatch(CW, WW);
    for (size_t I = 0; I < N; ++I)
      EXPECT_EQ(C[I], A[I].addMod(B[I], M)) << "vadd elem " << I;

    ASSERT_TRUE(D.rnsVMul(Ctx, AW.data(), BW.data(), CW.data(), N))
        << D.error();
    C = unpackBatch(CW, WW);
    // The GRNS baseline computes the same products through its own
    // 31-bit channel base and CRT (an entirely independent RNS
    // implementation).
    baselines::RnsContext Grns =
        baselines::RnsContext::forModulusBits(M.bitWidth());
    for (size_t I = 0; I < N; ++I) {
      Bignum Want = A[I].mulMod(B[I], M);
      EXPECT_EQ(C[I], Want) << "vmul vs Bignum, elem " << I;
      auto GC = Grns.mulModQ(Grns.encode(A[I]), Grns.encode(B[I]), M);
      EXPECT_EQ(Grns.decode(GC), Want) << "GRNS baseline disagrees?!";
    }
  }
}

//===----------------------------------------------------------------------===//
// rnsPolyMul vs schoolbook and the library-NTT-per-limb oracle
//===----------------------------------------------------------------------===//

TEST(RnsRuntime, PolyMulBitExactSchoolbookN64AllLimbCounts) {
  SeededRng R(0x2A53);
  for (unsigned Limbs : {2u, 4u, 8u}) {
    RnsContext Ctx = makeBase(Limbs);
    unsigned WW = Ctx.wideWords();
    const size_t NP = 64;
    auto A = randomWide(R, Ctx, NP), B = randomWide(R, Ctx, NP);
    auto AW = packBatch(A, WW), BW = packBatch(B, WW);
    std::vector<std::uint64_t> CW(NP * WW);
    Dispatcher D(registry());
    for (NttRing Ring : {NttRing::Cyclic, NttRing::Negacyclic}) {
      ASSERT_TRUE(D.rnsPolyMul(Ctx, AW.data(), BW.data(), CW.data(), NP,
                               /*Batch=*/1, Ring))
          << D.error();
      auto Want = schoolbook(A, B, Ctx.modulus(), Ring);
      EXPECT_EQ(unpackBatch(CW, WW), Want)
          << "L=" << Limbs << " ring " << rewrite::nttRingName(Ring);
    }
  }
}

TEST(RnsRuntime, PolyMulBitExactLibraryOracleLargeSizes) {
  SeededRng R(0x2A54);
  // n = 256 and 1024 with batch > 1: the O(n^2) oracle is replaced by
  // the independent library-NTT-per-limb + host-CRT path.
  struct Shape {
    unsigned Limbs;
    size_t NPoints;
    size_t Batch;
  };
  for (Shape S : {Shape{2, 256, 2}, Shape{4, 1024, 1}, Shape{8, 256, 1}}) {
    RnsContext Ctx = makeBase(S.Limbs);
    unsigned WW = Ctx.wideWords();
    size_t N = S.NPoints * S.Batch;
    auto A = randomWide(R, Ctx, N), B = randomWide(R, Ctx, N);
    auto AW = packBatch(A, WW), BW = packBatch(B, WW);
    std::vector<std::uint64_t> CW(N * WW);
    Dispatcher D(registry());
    for (NttRing Ring : {NttRing::Cyclic, NttRing::Negacyclic}) {
      ASSERT_TRUE(D.rnsPolyMul(Ctx, AW.data(), BW.data(), CW.data(),
                               S.NPoints, S.Batch, Ring))
          << D.error();
      EXPECT_EQ(unpackBatch(CW, WW),
                limbLibraryOracle(Ctx, A, B, S.NPoints, Ring))
          << "L=" << S.Limbs << " n=" << S.NPoints << " ring "
          << rewrite::nttRingName(Ring);
    }
  }
}

//===----------------------------------------------------------------------===//
// Plan sharing and dispatch arithmetic
//===----------------------------------------------------------------------===//

TEST(RnsRuntime, LimbCountNeverAddsCompiledPlans) {
  // The headline canonicalization claim: PlanKey excludes the modulus
  // value, so a base of 8 limbs compiles exactly as many plans as a base
  // of 2 — every limb of one width runs through a single module per
  // kernel. Fresh registries isolate the count (the disk cache may still
  // serve objects; Builds counts plan constructions).
  SeededRng R(0x2A55);
  const size_t NP = 64, Batch = 2;
  unsigned BuildsPerLimbCount[2] = {0, 0};
  unsigned Idx = 0;
  for (unsigned Limbs : {2u, 8u}) {
    RnsContext Ctx = makeBase(Limbs);
    unsigned WW = Ctx.wideWords();
    size_t N = NP * Batch;
    auto A = randomWide(R, Ctx, N), B = randomWide(R, Ctx, N);
    auto AW = packBatch(A, WW), BW = packBatch(B, WW);
    std::vector<std::uint64_t> CW(N * WW);
    KernelRegistry Fresh;
    Dispatcher D(Fresh, nullptr, pinned(ExecBackend::Serial, 2));
    ASSERT_TRUE(D.rnsPolyMul(Ctx, AW.data(), BW.data(), CW.data(), NP,
                             Batch, NttRing::Cyclic))
        << D.error();
    // The limb-facing plans: rnsdec, butterfly, mulmod (point-wise),
    // rnsrec. 2 vs 8 limbs must not change the number built. (The
    // rnsdec/rnsrec containers differ between the two bases — 128 vs
    // 512-bit wide sides — so only the *count* is comparable, which is
    // exactly the claim.)
    BuildsPerLimbCount[Idx++] = Fresh.stats().Builds;
    EXPECT_GT(Fresh.stats().Hits, 0u) << "limbs beyond the first must hit";
  }
  EXPECT_EQ(BuildsPerLimbCount[0], BuildsPerLimbCount[1])
      << "compiled-plan count must be independent of the limb count";
}

TEST(RnsRuntime, DispatchStatsExactPerLimbArithmetic) {
  SeededRng R(0x2A56);
  RnsContext Ctx = makeBase(4);
  unsigned WW = Ctx.wideWords();
  const size_t NP = 64, Batch = 3; // log2(64) = 6 -> 3 groups at depth 2
  size_t N = NP * Batch;
  auto A = randomWide(R, Ctx, N), B = randomWide(R, Ctx, N);
  auto AW = packBatch(A, WW), BW = packBatch(B, WW);
  std::vector<std::uint64_t> CW(N * WW);
  Dispatcher D(registry(), nullptr, pinned(ExecBackend::Serial, 2));

  auto Before = D.dispatchStats();
  ASSERT_TRUE(D.rnsPolyMul(Ctx, AW.data(), BW.data(), CW.data(), NP, Batch,
                           NttRing::Cyclic))
      << D.error();
  auto After = D.dispatchStats();
  const std::uint64_t L = Ctx.numLimbs();
  // Per limb: 3 transforms of ceil(6/2) = 3 stage groups each; batches:
  // 2L decompose + L point-wise vmul + L recombine steps.
  EXPECT_EQ(After.Transforms - Before.Transforms, 3 * L);
  EXPECT_EQ(After.StageGroups - Before.StageGroups, 3 * L * 3);
  EXPECT_EQ(After.Batches - Before.Batches, 2 * L + L + L);

  // Negacyclic adds exactly zero dispatches at equal (n, depth): the ψ
  // twist and untwist ride the existing edge stage groups.
  Before = After;
  ASSERT_TRUE(D.rnsPolyMul(Ctx, AW.data(), BW.data(), CW.data(), NP, Batch,
                           NttRing::Negacyclic))
      << D.error();
  After = D.dispatchStats();
  EXPECT_EQ(After.StageGroups - Before.StageGroups, 3 * L * 3);
  EXPECT_EQ(After.Batches - Before.Batches, 2 * L + L + L);
}

//===----------------------------------------------------------------------===//
// PlanKey canonicalization of the new axes
//===----------------------------------------------------------------------===//

TEST(RnsRuntime, PlanKeyCanonicalization) {
  RnsContext Ctx = makeBase(8);
  // Decompose: wide container from the wide word count, limb modulus,
  // knobs folded (rnsdec bakes generalized Barrett + schoolbook).
  rewrite::PlanOptions Fancy;
  Fancy.Red = mw::Reduction::Montgomery;
  Fancy.MulAlg = mw::MulAlgorithm::Karatsuba;
  Fancy.FuseDepth = 3;
  Fancy.Ring = NttRing::Negacyclic;
  PlanKey Dec = PlanKey::forRns(KernelOp::RnsDecompose, Ctx.limb(0),
                                Ctx.wideWords(), Fancy);
  EXPECT_EQ(Dec.WideWords, Ctx.wideWords());
  EXPECT_EQ(Dec.ContainerBits, 512u);
  EXPECT_EQ(Dec.ModBits, 60u);
  EXPECT_EQ(Dec.Opts.Red, mw::Reduction::Barrett);
  EXPECT_EQ(Dec.Opts.MulAlg, mw::MulAlgorithm::Schoolbook);
  EXPECT_EQ(Dec.Opts.FuseDepth, 1u);
  EXPECT_EQ(Dec.Opts.Ring, NttRing::Cyclic);
  EXPECT_EQ(Dec.str(),
            "rnsdec/c512/m60/W8/w64/barrett/schoolbook/prune/noschedule");

  // Recombine: the standard canonical container of the full modulus; no
  // wide-words axis (the residue port is word-sized by construction).
  PlanKey Rec = PlanKey::forRns(KernelOp::RnsRecombineStep, Ctx.modulus(),
                                /*WideWords=*/0, Fancy);
  EXPECT_EQ(Rec.WideWords, 0u);
  EXPECT_EQ(Rec.ModBits, Ctx.modulus().bitWidth());
  EXPECT_EQ(Rec.Opts.Red, mw::Reduction::Barrett);

  // The ring axis: butterfly keeps it (with the /neg suffix), every
  // other op folds it so a negacyclic base plan never splits the
  // element-wise cache entries.
  Bignum Q = Ctx.limb(0);
  PlanKey Bf = PlanKey::forModulus(KernelOp::Butterfly, Q, Fancy);
  EXPECT_EQ(Bf.Opts.Ring, NttRing::Negacyclic);
  EXPECT_NE(Bf.str().find("/neg"), std::string::npos);
  PlanKey Mul = PlanKey::forModulus(KernelOp::MulMod, Q, Fancy);
  EXPECT_EQ(Mul.Opts.Ring, NttRing::Cyclic);
  EXPECT_EQ(Mul.str().find("/neg"), std::string::npos);
  // Cyclic butterfly keys keep the historical string form (60-bit limbs
  // canonicalize to the single-word 64-bit container).
  rewrite::PlanOptions Plain;
  EXPECT_EQ(PlanKey::forModulus(KernelOp::Butterfly, Q, Plain).str(),
            "butterfly/c64/m60/w64/barrett/schoolbook/prune/noschedule");
}

//===----------------------------------------------------------------------===//
// Shape rejection through the dispatcher
//===----------------------------------------------------------------------===//

TEST(RnsRuntime, RejectsInsufficientTwoAdicity) {
  SeededRng R(0x2A57);
  RnsContext Ctx = makeBase(2, 60, /*TwoAdicity=*/4);
  unsigned WW = Ctx.wideWords();
  const size_t NP = 32; // log2 = 5 > 4 - 1: negacyclic must fail
  auto A = randomWide(R, Ctx, NP), B = randomWide(R, Ctx, NP);
  auto AW = packBatch(A, WW), BW = packBatch(B, WW);
  std::vector<std::uint64_t> CW(NP * WW);
  Dispatcher D(registry());
  EXPECT_TRUE(D.rnsPolyMul(Ctx, AW.data(), BW.data(), CW.data(), 16, 1,
                           NttRing::Cyclic))
      << D.error();
  EXPECT_FALSE(D.rnsPolyMul(Ctx, AW.data(), BW.data(), CW.data(), NP, 1,
                            NttRing::Negacyclic));
  EXPECT_NE(D.error().find("2-adicity"), std::string::npos) << D.error();
}
