//===- tests/service/ServerFaultTest.cpp - serving-layer chaos suite --------===//
//
// The degradation ladder as the serving layer sees it: typed error codes
// on every rejection path, request deadlines that expire queued work
// promptly without ever tearing an in-flight batch, the whole Dispatcher
// surface served bit-identically through the interpreter fallback when
// the JIT compiler is persistently broken, health() snapshots that prove
// it, and a destructor that drains cleanly while builds are faulted.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "field/PrimeGen.h"
#include "runtime/Dispatcher.h"
#include "service/Server.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <thread>
#include <unistd.h>

using namespace moma;
using namespace moma::runtime;
using namespace moma::testutil;
using moma::service::ErrorCode;
using moma::service::Reply;
using moma::service::ServerOptions;
using moma::support::FaultInjection;
using moma::support::FaultPolicy;
using mw::Bignum;

namespace {

struct FaultGuard {
  FaultGuard() { FaultInjection::instance().clear(); }
  ~FaultGuard() { FaultInjection::instance().clear(); }
};

Bignum q60() { return field::nttPrime(60, 16); }
Bignum q124() { return field::nttPrime(124, 16); }

class FreshCacheDir {
public:
  explicit FreshCacheDir(const std::string &Name)
      : Path(::testing::TempDir() + "/srvfault_" + Name + "_" +
             std::to_string(::getpid())) {
    std::filesystem::remove_all(Path);
  }
  ~FreshCacheDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  jit::HostJitOptions options() const {
    jit::HostJitOptions Opts;
    Opts.CacheDir = Path;
    Opts.UseDiskCache = false;
    return Opts;
  }
  const std::string Path;
};

KernelRegistry::RetryPolicy fastRetry(unsigned MaxAttempts = 2) {
  KernelRegistry::RetryPolicy P;
  P.MaxAttempts = MaxAttempts;
  P.InitialBackoffUs = 50;
  P.BackoffMultiplier = 2;
  P.MaxBackoffUs = 400;
  return P;
}

std::vector<std::uint64_t> randomWords(Rng &R, const Bignum &Q, size_t N) {
  std::vector<Bignum> E;
  for (size_t I = 0; I < N; ++I)
    E.push_back(Bignum::random(R, Q));
  return packBatch(E, Dispatcher::elemWords(Q));
}

void runThreads(int N, const std::function<void(int)> &Fn) {
  std::atomic<int> Ready{0};
  std::vector<std::thread> T;
  for (int I = 0; I < N; ++I)
    T.emplace_back([&, I] {
      Ready.fetch_add(1);
      while (Ready.load() < N)
        std::this_thread::yield();
      Fn(I);
    });
  for (auto &Th : T)
    Th.join();
}

} // namespace

//===----------------------------------------------------------------------===//
// Typed errors
//===----------------------------------------------------------------------===//

TEST(ServerFault, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(service::errorCodeName(ErrorCode::Ok), "ok");
  EXPECT_STREQ(service::errorCodeName(ErrorCode::QueueFull), "queue-full");
  EXPECT_STREQ(service::errorCodeName(ErrorCode::ShuttingDown),
               "shutting-down");
  EXPECT_STREQ(service::errorCodeName(ErrorCode::DeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(service::errorCodeName(ErrorCode::DispatchFailed),
               "dispatch-failed");
  EXPECT_STREQ(service::errorCodeName(ErrorCode::InvalidRequest),
               "invalid-request");
}

TEST(ServerFault, DispatchFaultYieldsTypedReplyThenHeals) {
  FaultGuard G;
  SeededRng R(0xd15b);
  FreshCacheDir Dir("dispatch");
  KernelRegistry Reg(Dir.options());
  const Bignum Q = q60();
  const size_t N = 8;
  const unsigned K = Dispatcher::elemWords(Q);
  std::vector<std::uint64_t> A = randomWords(R, Q, N),
                             B = randomWords(R, Q, N), C(N * K);

  ServerOptions O;
  O.Workers = 1;
  O.CoalesceWindowUs = 0;
  service::Server Srv(Reg, O);

  FaultInjection::instance().configure("server.dispatch",
                                       FaultPolicy::failTimes(1));
  Reply Bad = Srv.vmul(Q, A.data(), B.data(), C.data(), N).get();
  EXPECT_FALSE(Bad.Ok);
  EXPECT_EQ(Bad.Code, ErrorCode::DispatchFailed);
  EXPECT_NE(Bad.Error.find("server.dispatch"), std::string::npos)
      << Bad.Error;

  // One-shot fault: the next submission dispatches and matches serial.
  Reply Good = Srv.vmul(Q, A.data(), B.data(), C.data(), N).get();
  ASSERT_TRUE(Good.Ok) << Good.Error;
  EXPECT_EQ(Good.Code, ErrorCode::Ok);
  Dispatcher Ref(Reg);
  std::vector<std::uint64_t> Want(N * K);
  ASSERT_TRUE(Ref.vmul(Q, A.data(), B.data(), Want.data(), N));
  EXPECT_EQ(C, Want);
}

TEST(ServerFault, QueueFullRejectionCarriesTypedCode) {
  FaultGuard G;
  SeededRng R(0x9f11);
  FreshCacheDir Dir("qfull");
  KernelRegistry Reg(Dir.options());
  const Bignum Q = q60();
  const size_t N = 8;
  const unsigned K = Dispatcher::elemWords(Q);
  // Warm the plan so queued work drains fast once the window breaks.
  {
    Dispatcher Warm(Reg);
    std::vector<std::uint64_t> A = randomWords(R, Q, N),
                               B = randomWords(R, Q, N), C(N * K);
    ASSERT_TRUE(Warm.vadd(Q, A.data(), B.data(), C.data(), N))
        << Warm.error();
  }

  std::vector<std::uint64_t> PA = randomWords(R, Q, N),
                             PB = randomWords(R, Q, N), PC(N * K);
  const int Flood = 6;
  std::vector<std::vector<std::uint64_t>> VC(
      Flood, std::vector<std::uint64_t>(N * K));
  std::vector<std::future<Reply>> F;
  {
    ServerOptions O;
    O.Workers = 1;
    O.MaxBatch = 2;
    O.CoalesceWindowUs = 2000000; // the worker parks in this window
    O.QueueCap = 3;
    service::Server Srv(Reg, O);
    F.push_back(Srv.polyMul(Q, PA.data(), PB.data(), PC.data(), N));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    for (int I = 0; I < Flood; ++I)
      F.push_back(Srv.vadd(Q, PA.data(), PB.data(), VC[I].data(), N));
  }
  size_t Full = 0;
  for (auto &Fut : F) {
    Reply Rep = Fut.get();
    if (!Rep.Ok) {
      EXPECT_EQ(Rep.Code, ErrorCode::QueueFull) << Rep.Error;
      ++Full;
    } else {
      EXPECT_EQ(Rep.Code, ErrorCode::Ok);
    }
  }
  EXPECT_GE(Full, 2u) << "QueueCap=3 never filled";
}

//===----------------------------------------------------------------------===//
// Deadlines
//===----------------------------------------------------------------------===//

TEST(ServerFault, DeadlineExpiresQueuedRequestUnderStalledCompile) {
  FaultGuard G;
  SeededRng R(0xdead);
  FreshCacheDir Dir("deadline");
  KernelRegistry Reg(Dir.options());
  const Bignum Q = q60();
  const size_t N = 8;
  const unsigned K = Dispatcher::elemWords(Q);
  std::vector<std::uint64_t> A = randomWords(R, Q, N),
                             B = randomWords(R, Q, N), C1(N * K), C2(N * K);

  // Every compile stalls 300ms (delay-only: it still succeeds). The lone
  // worker wedges on the first request's cold build; the second request
  // (different key, 30ms deadline) expires while queued behind it and
  // must be rejected promptly once the worker returns — never executed.
  FaultInjection::instance().configure("jit.compile",
                                       FaultPolicy::delayUs(300000));
  ServerOptions O;
  O.Workers = 1;
  O.CoalesceWindowUs = 0;
  service::Server Srv(Reg, O);
  std::future<Reply> F1 = Srv.vadd(Q, A.data(), B.data(), C1.data(), N);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::future<Reply> F2 = Srv.vmul(Q, A.data(), B.data(), C2.data(), N,
                                   /*DeadlineUs=*/30000);
  Srv.drain();

  Reply R1 = F1.get();
  ASSERT_TRUE(R1.Ok) << R1.Error; // the stalled batch itself still lands
  Reply R2 = F2.get();
  EXPECT_FALSE(R2.Ok);
  EXPECT_EQ(R2.Code, ErrorCode::DeadlineExceeded) << R2.Error;
  EXPECT_NE(R2.Error.find("deadline"), std::string::npos) << R2.Error;
  EXPECT_EQ(Srv.stats().DeadlineExpired, 1u);
  EXPECT_EQ(Srv.health().DeadlineExpired, 1u);
}

TEST(ServerFault, DefaultDeadlineAppliesAndBatchesAreNeverTorn) {
  FaultGuard G;
  SeededRng R(0xbeef);
  FreshCacheDir Dir("defdeadline");
  KernelRegistry Reg(Dir.options());
  const Bignum Q = q60();
  const size_t N = 8;
  const unsigned K = Dispatcher::elemWords(Q);

  // Warm the vadd plan so the in-flight batch only pays the injected
  // dispatch stall, not a compile.
  {
    Dispatcher Warm(Reg);
    std::vector<std::uint64_t> A = randomWords(R, Q, N),
                               B = randomWords(R, Q, N), C(N * K);
    ASSERT_TRUE(Warm.vadd(Q, A.data(), B.data(), C.data(), N))
        << Warm.error();
    ASSERT_TRUE(Warm.vmul(Q, A.data(), B.data(), C.data(), N))
        << Warm.error();
  }

  std::vector<std::uint64_t> A = randomWords(R, Q, N),
                             B = randomWords(R, Q, N), C1(N * K), C2(N * K);
  // Server-wide default deadline of 40ms; the dispatch site stalls 150ms.
  // The first request is taken into a batch before its deadline passes,
  // stalls in flight well past it, and must still be served (batches are
  // never torn). The second queues behind the stall and expires.
  FaultInjection::instance().configure("server.dispatch",
                                       FaultPolicy::delayUs(150000));
  ServerOptions O;
  O.Workers = 1;
  O.CoalesceWindowUs = 0;
  O.DefaultDeadlineUs = 40000;
  service::Server Srv(Reg, O);
  std::future<Reply> F1 = Srv.vadd(Q, A.data(), B.data(), C1.data(), N);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::future<Reply> F2 = Srv.vmul(Q, A.data(), B.data(), C2.data(), N);
  Srv.drain();

  Reply R1 = F1.get();
  ASSERT_TRUE(R1.Ok) << R1.Error;
  Reply R2 = F2.get();
  EXPECT_FALSE(R2.Ok);
  EXPECT_EQ(R2.Code, ErrorCode::DeadlineExceeded) << R2.Error;
  EXPECT_EQ(Srv.stats().DeadlineExpired, 1u);
}

//===----------------------------------------------------------------------===//
// The whole Dispatcher surface on the interpreter fallback
//===----------------------------------------------------------------------===//

TEST(ServerFault, MixedClientsBitIdenticalOnInterpFallback) {
  FaultGuard G;
  SeededRng R(0x4c11);
  const Bignum Q60 = q60(), Q124 = q124();
  const size_t VecN = 16, PolyN = 8;
  const int Clients = 4, PerClient = 12;

  // Baseline through a healthy registry (JIT plans).
  FreshCacheDir DirA("mixed_ok");
  KernelRegistry RegA(DirA.options());
  Dispatcher Ref(RegA);
  struct Item {
    int Kind; // 0 vadd q60, 1 vmul q60, 2 vmul q124, 3 pm cyc, 4 pm neg
    std::vector<std::uint64_t> A, B, C, Want;
  };
  std::vector<std::vector<Item>> Work(Clients);
  for (int T = 0; T < Clients; ++T)
    for (int I = 0; I < PerClient; ++I) {
      Item It;
      It.Kind = (T + I) % 5;
      const Bignum &Q = It.Kind == 2 ? Q124 : Q60;
      const size_t N = It.Kind >= 3 ? PolyN : VecN;
      It.A = randomWords(R, Q, N);
      It.B = randomWords(R, Q, N);
      It.C.resize(It.A.size());
      It.Want.resize(It.A.size());
      bool Ok = false;
      switch (It.Kind) {
      case 0:
        Ok = Ref.vadd(Q, It.A.data(), It.B.data(), It.Want.data(), N);
        break;
      case 1:
      case 2:
        Ok = Ref.vmul(Q, It.A.data(), It.B.data(), It.Want.data(), N);
        break;
      case 3:
        Ok = Ref.polyMul(Q, It.A.data(), It.B.data(), It.Want.data(), N, 1,
                         rewrite::NttRing::Cyclic);
        break;
      default:
        Ok = Ref.polyMul(Q, It.A.data(), It.B.data(), It.Want.data(), N, 1,
                         rewrite::NttRing::Negacyclic);
        break;
      }
      ASSERT_TRUE(Ok) << Ref.error();
      Work[T].push_back(std::move(It));
    }

  // The same mixed workload against a server whose JIT never compiles:
  // every plan degrades to the interpreter rung, every reply is Ok, and
  // every output is bit-identical to the compiled baseline.
  FreshCacheDir DirB("mixed_bad");
  KernelRegistry RegB(DirB.options());
  RegB.setRetryPolicy(fastRetry(2));
  FaultInjection::instance().configure("jit.compile",
                                       FaultPolicy::failAlways());
  ServerOptions O;
  O.Workers = 2;
  O.MaxBatch = 16;
  O.CoalesceWindowUs = 300;
  service::Server Srv(RegB, O);
  std::atomic<int> Failures{0};
  runThreads(Clients, [&](int T) {
    std::vector<std::future<Reply>> F;
    for (Item &It : Work[T]) {
      const Bignum &Q = It.Kind == 2 ? Q124 : Q60;
      switch (It.Kind) {
      case 0:
        F.push_back(Srv.vadd(Q, It.A.data(), It.B.data(), It.C.data(),
                             VecN));
        break;
      case 1:
      case 2:
        F.push_back(Srv.vmul(Q, It.A.data(), It.B.data(), It.C.data(),
                             VecN));
        break;
      case 3:
        F.push_back(Srv.polyMul(Q, It.A.data(), It.B.data(), It.C.data(),
                                PolyN, rewrite::NttRing::Cyclic));
        break;
      default:
        F.push_back(Srv.polyMul(Q, It.A.data(), It.B.data(), It.C.data(),
                                PolyN, rewrite::NttRing::Negacyclic));
        break;
      }
    }
    for (auto &Fut : F)
      if (!Fut.get().Ok)
        Failures.fetch_add(1);
  });

  EXPECT_EQ(Failures.load(), 0)
      << "degraded serving dropped requests instead of falling back";
  for (int T = 0; T < Clients; ++T)
    for (int I = 0; I < PerClient; ++I)
      EXPECT_EQ(Work[T][I].C, Work[T][I].Want)
          << "client " << T << " item " << I << " kind " << Work[T][I].Kind
          << " diverges from the compiled baseline";

  // The health snapshot proves the traffic really took the ladder.
  service::Server::Health H = Srv.health();
  EXPECT_TRUE(H.Degraded);
  EXPECT_GT(H.FallbackBinds, 0u);
  EXPECT_GE(H.FallbackDispatches, H.FallbackBinds);
  EXPECT_GT(H.FailedBuilds, 0u);
  EXPECT_GT(H.Retries, 0u);
  EXPECT_EQ(H.Promotions, 0u) << "nothing should promote while faulted";
  EXPECT_EQ(H.DeadlineExpired, 0u);
  EXPECT_EQ(H.QueueDepth, 0u);
}

TEST(ServerFault, HealthyServerReportsCleanHealth) {
  FaultGuard G;
  SeededRng R(0x6ea1);
  FreshCacheDir Dir("health");
  KernelRegistry Reg(Dir.options());
  const Bignum Q = q60();
  const size_t N = 8;
  const unsigned K = Dispatcher::elemWords(Q);
  std::vector<std::uint64_t> A = randomWords(R, Q, N),
                             B = randomWords(R, Q, N), C(N * K);
  ServerOptions O;
  O.Workers = 1;
  O.CoalesceWindowUs = 0;
  service::Server Srv(Reg, O);
  Reply Rep = Srv.vadd(Q, A.data(), B.data(), C.data(), N).get();
  ASSERT_TRUE(Rep.Ok) << Rep.Error;
  service::Server::Health H = Srv.health();
  EXPECT_FALSE(H.Degraded);
  EXPECT_EQ(H.FallbackBinds, 0u);
  EXPECT_EQ(H.FallbackDispatches, 0u);
  EXPECT_EQ(H.FailedBuilds, 0u);
  EXPECT_EQ(H.Rejected, 0u);
  EXPECT_EQ(H.DeadlineExpired, 0u);
  EXPECT_EQ(H.QueueDepth, 0u);
}

//===----------------------------------------------------------------------===//
// Shutdown under fault
//===----------------------------------------------------------------------===//

TEST(ServerFault, DestructorDrainsWithFaultedBuildsInFlight) {
  FaultGuard G;
  SeededRng R(0x5d0f);
  FreshCacheDir Dir("drain");
  KernelRegistry Reg(Dir.options());
  Reg.setRetryPolicy(fastRetry(2));
  const Bignum Q = q60();
  const size_t N = 8;
  const unsigned K = Dispatcher::elemWords(Q);
  const int Reqs = 10;
  std::vector<std::uint64_t> A = randomWords(R, Q, N),
                             B = randomWords(R, Q, N);
  std::vector<std::vector<std::uint64_t>> C(
      Reqs, std::vector<std::uint64_t>(N * K));

  // Builds stall (injected delay) and half of them fail outright; the
  // destructor must still flush every queued request and join without
  // hanging — every future resolves, served or typed-failed.
  std::string Err;
  ASSERT_TRUE(FaultInjection::instance().configureFromSpec(
      "jit.compile=delay:20000+prob:0.5:seed:77", &Err))
      << Err;
  std::vector<std::future<Reply>> F;
  {
    ServerOptions O;
    O.Workers = 2;
    O.CoalesceWindowUs = 100;
    service::Server Srv(Reg, O);
    for (int I = 0; I < Reqs; ++I)
      F.push_back(I % 2 == 0
                      ? Srv.vadd(Q, A.data(), B.data(), C[I].data(), N)
                      : Srv.vmul(Q, A.data(), B.data(), C[I].data(), N));
  } // destructor: flush + join, with builds faulting underneath

  for (int I = 0; I < Reqs; ++I) {
    ASSERT_EQ(F[I].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "destructor returned before request " << I << " resolved";
    Reply Rep = F[I].get();
    if (!Rep.Ok) {
      // Any failure must be typed: a dispatch failure (the build faulted
      // past its retries) — never a torn or abandoned promise.
      EXPECT_EQ(Rep.Code, ErrorCode::DispatchFailed) << Rep.Error;
      EXPECT_FALSE(Rep.Error.empty());
    }
  }
}
