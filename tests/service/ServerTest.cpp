//===- tests/service/ServerTest.cpp - serving layer + MT regressions ---------===//
//
// Coverage for the concurrent serving layer (service/Server.h) and the
// thread-safety/resource-leak bugfix sweep underneath it: request
// coalescing is bit-identical to serial dispatch, cold caches
// single-flight (one compile / one plan build / one tuning sweep no
// matter how many threads race), LRU caps evict without invalidating
// held entries, failed JIT compiles leave no temp files behind, and
// missing dlsym symbols surface their dlerror text.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "field/PrimeGen.h"
#include "runtime/Dispatcher.h"
#include "service/Server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>
#include <unistd.h>

using namespace moma;
using namespace moma::runtime;
using namespace moma::testutil;
using moma::service::Reply;
using moma::service::ServerOptions;
using mw::Bignum;

namespace {

/// Shared registry: plans compiled by one test are cache hits for the
/// next. The single-flight / eviction tests that count builds use private
/// registries over fresh cache directories instead.
KernelRegistry &registry() {
  static KernelRegistry Reg;
  return Reg;
}

Bignum q60() { return field::nttPrime(60, 16); }
Bignum q124() { return field::nttPrime(124, 16); }

/// N random elements below Q, packed into the flat batch layout.
std::vector<std::uint64_t> randomWords(Rng &R, const Bignum &Q, size_t N) {
  std::vector<Bignum> E;
  for (size_t I = 0; I < N; ++I)
    E.push_back(Bignum::random(R, Q));
  return packBatch(E, Dispatcher::elemWords(Q));
}

/// A throwaway cache directory so compile/build counters are
/// deterministic regardless of what earlier runs left on disk.
class FreshCacheDir {
public:
  explicit FreshCacheDir(const std::string &Name)
      : Path(::testing::TempDir() + "/service_" + Name + "_" +
             std::to_string(::getpid())) {
    std::filesystem::remove_all(Path);
  }
  ~FreshCacheDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  /// Memory-only options: UseDiskCache off makes every cold load a real
  /// compile, so Compiles/Builds counters measure single-flighting.
  jit::HostJitOptions options(bool UseDiskCache = false) const {
    jit::HostJitOptions Opts;
    Opts.CacheDir = Path;
    Opts.UseDiskCache = UseDiskCache;
    return Opts;
  }
  const std::string Path;
};

/// Runs \p Fn on \p N threads, released together after the last one
/// arrives — the race-window maximizer for the single-flight tests.
void runThreads(int N, const std::function<void(int)> &Fn) {
  std::atomic<int> Ready{0};
  std::vector<std::thread> T;
  for (int I = 0; I < N; ++I)
    T.emplace_back([&, I] {
      Ready.fetch_add(1);
      while (Ready.load() < N)
        std::this_thread::yield();
      Fn(I);
    });
  for (auto &Th : T)
    Th.join();
}

const char *AddSource = "extern \"C\" long moma_jit_add(long A, long B) {"
                        " return A + B; }\n";
const char *MulSource = "extern \"C\" long moma_jit_mul(long A, long B) {"
                        " return A * B; }\n";

} // namespace

//===----------------------------------------------------------------------===//
// Server: coalescing correctness
//===----------------------------------------------------------------------===//

TEST(Server, BurstCoalescesAndMatchesSerial) {
  SeededRng R(0x5e31);
  const Bignum Q = q60();
  const size_t N = 8, Reqs = 32;
  const unsigned K = Dispatcher::elemWords(Q);

  // Serial reference through the same registry (also warms the plans, so
  // the server's coalesce windows never straddle a JIT compile).
  Dispatcher Serial(registry());
  std::vector<std::vector<std::uint64_t>> A, B, C(Reqs), Want(Reqs);
  for (size_t I = 0; I < Reqs; ++I) {
    A.push_back(randomWords(R, Q, N));
    B.push_back(randomWords(R, Q, N));
    C[I].resize(N * K);
    Want[I].resize(N * K);
    ASSERT_TRUE(
        Serial.polyMul(Q, A[I].data(), B[I].data(), Want[I].data(), N, 1))
        << Serial.error();
  }

  ServerOptions O;
  O.Workers = 1;
  O.MaxBatch = 64;
  O.CoalesceWindowUs = 200000; // generous: the whole burst fits one window
  service::Server Srv(registry(), O);
  std::vector<std::future<Reply>> F;
  for (size_t I = 0; I < Reqs; ++I)
    F.push_back(Srv.polyMul(Q, A[I].data(), B[I].data(), C[I].data(), N));
  Srv.drain();

  for (size_t I = 0; I < Reqs; ++I) {
    ASSERT_EQ(F[I].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "drain() returned before request " << I << " was replied";
    Reply Rep = F[I].get();
    ASSERT_TRUE(Rep.Ok) << Rep.Error;
    EXPECT_EQ(C[I], Want[I]) << "request " << I
                             << " diverges from serial dispatch";
  }
  service::Server::Stats St = Srv.stats();
  EXPECT_EQ(St.Requests, Reqs);
  EXPECT_EQ(St.Rejected, 0u);
  EXPECT_LT(St.Dispatches, Reqs) << "coalescer never batched anything";
  EXPECT_GE(St.MaxBatchSize, 2u);
  EXPECT_GE(St.Coalesced, 2u);
}

TEST(Server, MixedConcurrentClientsMatchSerial) {
  SeededRng R(0xc0a1);
  const Bignum Q60 = q60(), Q124 = q124();
  const size_t VecN = 16, PolyN = 8;
  const int Clients = 4, PerClient = 40;

  // One workload item: inputs, server output slot, serial expectation.
  struct Item {
    int Kind; // 0 vadd q60, 1 vmul q60, 2 vmul q124, 3 pm cyc, 4 pm neg
    std::vector<std::uint64_t> A, B, C, Want;
  };
  Dispatcher Serial(registry());
  std::vector<std::vector<Item>> Work(Clients);
  for (int T = 0; T < Clients; ++T)
    for (int I = 0; I < PerClient; ++I) {
      Item It;
      It.Kind = (T + I) % 5;
      const Bignum &Q = It.Kind == 2 ? Q124 : Q60;
      const size_t N = It.Kind >= 3 ? PolyN : VecN;
      It.A = randomWords(R, Q, N);
      It.B = randomWords(R, Q, N);
      It.C.resize(It.A.size());
      It.Want.resize(It.A.size());
      bool Ok = false;
      switch (It.Kind) {
      case 0:
        Ok = Serial.vadd(Q, It.A.data(), It.B.data(), It.Want.data(), N);
        break;
      case 1:
      case 2:
        Ok = Serial.vmul(Q, It.A.data(), It.B.data(), It.Want.data(), N);
        break;
      case 3:
        Ok = Serial.polyMul(Q, It.A.data(), It.B.data(), It.Want.data(), N,
                            1, rewrite::NttRing::Cyclic);
        break;
      default:
        Ok = Serial.polyMul(Q, It.A.data(), It.B.data(), It.Want.data(), N,
                            1, rewrite::NttRing::Negacyclic);
        break;
      }
      ASSERT_TRUE(Ok) << Serial.error();
      Work[T].push_back(std::move(It));
    }

  ServerOptions O;
  O.Workers = 3;
  O.MaxBatch = 32;
  O.CoalesceWindowUs = 300;
  service::Server Srv(registry(), O);
  std::atomic<int> Failures{0};
  runThreads(Clients, [&](int T) {
    std::vector<std::future<Reply>> F;
    for (Item &It : Work[T])
      switch (It.Kind) {
      case 0:
        F.push_back(
            Srv.vadd(Q60, It.A.data(), It.B.data(), It.C.data(), VecN));
        break;
      case 1:
        F.push_back(
            Srv.vmul(Q60, It.A.data(), It.B.data(), It.C.data(), VecN));
        break;
      case 2:
        F.push_back(
            Srv.vmul(Q124, It.A.data(), It.B.data(), It.C.data(), VecN));
        break;
      case 3:
        F.push_back(Srv.polyMul(Q60, It.A.data(), It.B.data(), It.C.data(),
                                PolyN, rewrite::NttRing::Cyclic));
        break;
      default:
        F.push_back(Srv.polyMul(Q60, It.A.data(), It.B.data(), It.C.data(),
                                PolyN, rewrite::NttRing::Negacyclic));
        break;
      }
    for (auto &Fut : F)
      if (!Fut.get().Ok)
        Failures.fetch_add(1);
  });

  EXPECT_EQ(Failures.load(), 0);
  for (int T = 0; T < Clients; ++T)
    for (int I = 0; I < PerClient; ++I)
      EXPECT_EQ(Work[T][I].C, Work[T][I].Want)
          << "client " << T << " item " << I << " kind " << Work[T][I].Kind;
  service::Server::Stats St = Srv.stats();
  EXPECT_EQ(St.Requests, static_cast<std::uint64_t>(Clients * PerClient));
  EXPECT_EQ(St.Rejected, 0u);
}

TEST(Server, NttRoundTripCoalesced) {
  SeededRng R(0x17f0);
  const Bignum Q = q60();
  const size_t N = 16, Reqs = 8;
  const unsigned K = Dispatcher::elemWords(Q);

  Dispatcher Serial(registry());
  std::vector<std::vector<std::uint64_t>> Data(Reqs), Orig(Reqs),
      Want(Reqs);
  for (size_t I = 0; I < Reqs; ++I) {
    Data[I] = randomWords(R, Q, N);
    Orig[I] = Data[I];
    Want[I] = Data[I];
    ASSERT_TRUE(Serial.nttForward(Q, Want[I].data(), N, 1))
        << Serial.error();
  }

  ServerOptions O;
  O.Workers = 1;
  O.MaxBatch = 16;
  O.CoalesceWindowUs = 100000;
  service::Server Srv(registry(), O);

  std::vector<std::future<Reply>> F;
  for (size_t I = 0; I < Reqs; ++I)
    F.push_back(Srv.nttForward(Q, Data[I].data(), N));
  for (auto &Fut : F) {
    Reply Rep = Fut.get();
    ASSERT_TRUE(Rep.Ok) << Rep.Error;
  }
  for (size_t I = 0; I < Reqs; ++I)
    EXPECT_EQ(Data[I], Want[I]) << "forward transform " << I;

  F.clear();
  for (size_t I = 0; I < Reqs; ++I)
    F.push_back(Srv.nttInverse(Q, Data[I].data(), N));
  for (auto &Fut : F) {
    Reply Rep = Fut.get();
    ASSERT_TRUE(Rep.Ok) << Rep.Error;
  }
  for (size_t I = 0; I < Reqs; ++I)
    EXPECT_EQ(Data[I], Orig[I]) << "round trip " << I;
  (void)K;
}

TEST(Server, RnsPolyMulCoalescedMatchesSerial) {
  SeededRng R(0xa5a5);
  std::string Err;
  RnsContext Ctx;
  ASSERT_TRUE(RnsContext::create(3, Ctx, &Err)) << Err;
  const size_t N = 8, Reqs = 6;
  const size_t Row = N * Ctx.wideWords();

  Dispatcher Serial(registry());
  std::vector<std::vector<std::uint64_t>> A, B, C(Reqs), Want(Reqs);
  for (size_t I = 0; I < Reqs; ++I) {
    std::vector<Bignum> EA, EB;
    for (size_t P = 0; P < N; ++P) {
      EA.push_back(Bignum::random(R, Ctx.modulus()));
      EB.push_back(Bignum::random(R, Ctx.modulus()));
    }
    A.push_back(packBatch(EA, Ctx.wideWords()));
    B.push_back(packBatch(EB, Ctx.wideWords()));
    C[I].resize(Row);
    Want[I].resize(Row);
    ASSERT_TRUE(Serial.rnsPolyMul(Ctx, A[I].data(), B[I].data(),
                                  Want[I].data(), N, 1))
        << Serial.error();
  }

  ServerOptions O;
  O.Workers = 1;
  O.MaxBatch = 8;
  O.CoalesceWindowUs = 100000;
  service::Server Srv(registry(), O);
  std::vector<std::future<Reply>> F;
  for (size_t I = 0; I < Reqs; ++I)
    F.push_back(Srv.rnsPolyMul(Ctx, A[I].data(), B[I].data(), C[I].data(),
                               N));
  for (auto &Fut : F) {
    Reply Rep = Fut.get();
    ASSERT_TRUE(Rep.Ok) << Rep.Error;
  }
  for (size_t I = 0; I < Reqs; ++I)
    EXPECT_EQ(C[I], Want[I]) << "wide product " << I;
  EXPECT_LT(Srv.stats().Dispatches, Reqs);
}

TEST(Server, QueueCapRejectsAndDestructorFlushes) {
  SeededRng R(0x7e57);
  const Bignum Q = q60();
  const size_t PolyN = 8, VecN = 16;
  const unsigned K = Dispatcher::elemWords(Q);

  Dispatcher Serial(registry());
  std::vector<std::uint64_t> PA = randomWords(R, Q, PolyN),
                             PB = randomWords(R, Q, PolyN),
                             PC(PolyN * K), PWant(PolyN * K);
  ASSERT_TRUE(Serial.polyMul(Q, PA.data(), PB.data(), PWant.data(), PolyN, 1))
      << Serial.error();
  std::vector<std::uint64_t> VA = randomWords(R, Q, VecN),
                             VB = randomWords(R, Q, VecN), VWant(VecN * K);
  ASSERT_TRUE(Serial.vadd(Q, VA.data(), VB.data(), VWant.data(), VecN))
      << Serial.error();

  const int Flood = 6;
  std::vector<std::vector<std::uint64_t>> VC(Flood,
                                             std::vector<std::uint64_t>(
                                                 VecN * K));
  std::vector<std::future<Reply>> F;
  std::uint64_t Rejected = 0;
  {
    ServerOptions O;
    O.Workers = 1;
    O.MaxBatch = 2;
    O.CoalesceWindowUs = 2000000; // the worker parks in this window
    O.QueueCap = 4;
    service::Server Srv(registry(), O);
    F.push_back(Srv.polyMul(Q, PA.data(), PB.data(), PC.data(), PolyN));
    // Give the worker time to adopt the polyMul and park in its coalesce
    // window; the flood below then queues behind it.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    for (int I = 0; I < Flood; ++I)
      F.push_back(Srv.vadd(Q, VA.data(), VB.data(), VC[I].data(), VecN));
    Rejected = Srv.stats().Rejected;
    EXPECT_GE(Rejected, 2u) << "QueueCap=4 never filled";
    EXPECT_LE(Rejected, 3u);
  } // destructor: breaks the window, flushes the queue, joins

  // Every future resolved at destruction: the polyMul and the admitted
  // vadds successfully, the over-cap submissions with a rejection reply.
  ASSERT_EQ(F[0].wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  Reply Head = F[0].get();
  ASSERT_TRUE(Head.Ok) << Head.Error;
  EXPECT_EQ(PC, PWant);
  std::uint64_t Served = 0, Refused = 0;
  for (int I = 0; I < Flood; ++I) {
    ASSERT_EQ(F[I + 1].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    Reply Rep = F[I + 1].get();
    if (Rep.Ok) {
      ++Served;
      EXPECT_EQ(VC[I], VWant) << "flood item " << I;
    } else {
      ++Refused;
      EXPECT_NE(Rep.Error.find("rejected"), std::string::npos) << Rep.Error;
    }
  }
  EXPECT_EQ(Refused, Rejected);
  EXPECT_EQ(Served + Refused, static_cast<std::uint64_t>(Flood));
}

//===----------------------------------------------------------------------===//
// KernelRegistry under concurrency
//===----------------------------------------------------------------------===//

TEST(KernelRegistryMT, ColdKeySingleFlightsOntoOneBuild) {
  FreshCacheDir Dir("regsf");
  KernelRegistry Reg(Dir.options());
  const PlanKey Key = PlanKey::forModulus(KernelOp::MulMod, q60());
  const int Threads = 8;
  std::vector<std::shared_ptr<const CompiledPlan>> Got(Threads);
  runThreads(Threads, [&](int I) { Got[I] = Reg.get(Key); });
  for (int I = 0; I < Threads; ++I) {
    ASSERT_NE(Got[I], nullptr) << Reg.error();
    EXPECT_EQ(Got[I].get(), Got[0].get()) << "thread " << I;
  }
  EXPECT_EQ(Reg.stats().Builds, 1u)
      << "racing threads each ran the build pipeline";
  EXPECT_EQ(Reg.jit().stats().Compiles, 1u)
      << "racing threads each invoked the host compiler";
}

TEST(KernelRegistryMT, ManyKeysManyThreads) {
  FreshCacheDir Dir("regmany");
  KernelRegistry Reg(Dir.options());
  const std::vector<PlanKey> Keys = {
      PlanKey::forModulus(KernelOp::MulMod, q60()),
      PlanKey::forModulus(KernelOp::AddMod, q60()),
      PlanKey::forModulus(KernelOp::MulMod, q124()),
      PlanKey::forModulus(KernelOp::Butterfly, q60()),
  };
  std::atomic<int> Failures{0};
  runThreads(4, [&](int T) {
    for (int Round = 0; Round < 3; ++Round)
      for (size_t I = 0; I < Keys.size(); ++I)
        if (!Reg.get(Keys[(T + I) % Keys.size()]))
          Failures.fetch_add(1);
  });
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(Reg.stats().Builds, Keys.size())
      << "distinct keys built more than once each";
}

TEST(KernelRegistry, LruEvictionKeepsHeldPlansCallable) {
  FreshCacheDir Dir("regevict");
  KernelRegistry Reg(Dir.options());
  Reg.setCacheCap(1);
  const Bignum Q = q60();
  auto PA = Reg.get(PlanKey::forModulus(KernelOp::MulMod, Q));
  ASSERT_NE(PA, nullptr) << Reg.error();
  auto PB = Reg.get(PlanKey::forModulus(KernelOp::AddMod, Q));
  ASSERT_NE(PB, nullptr) << Reg.error();
  EXPECT_EQ(Reg.size(), 1u);
  EXPECT_EQ(Reg.stats().Evictions, 1u);

  // The evicted plan is forgotten by the cache, not invalidated: the held
  // shared_ptr still dispatches.
  const unsigned K = PA->ElemWords;
  const Bignum A(3), B(5);
  std::vector<std::uint64_t> AW = packWordsMsbFirst(A, K),
                             BW = packWordsMsbFirst(B, K), CW(K);
  PlanAux Aux = makePlanAux(*PA, Q);
  BatchArgs Args;
  Args.Outs = {CW.data()};
  Args.Ins = {AW.data(), BW.data()};
  Args.Aux = Aux.ptrs();
  std::string Err;
  ASSERT_TRUE(runBatch(*PA, Args, 1, &Err)) << Err;
  EXPECT_EQ(unpackWordsMsbFirst(CW.data(), K), Bignum(15));

  // Re-requesting the evicted key rebuilds (memory-only cache).
  auto PA2 = Reg.get(PlanKey::forModulus(KernelOp::MulMod, Q));
  ASSERT_NE(PA2, nullptr) << Reg.error();
  EXPECT_EQ(Reg.stats().Builds, 3u);
}

//===----------------------------------------------------------------------===//
// HostJit under concurrency, eviction, and failure
//===----------------------------------------------------------------------===//

TEST(HostJitMT, ConcurrentLoadCompilesOnce) {
  FreshCacheDir Dir("jitsf");
  jit::HostJit Jit(Dir.options());
  const int Threads = 8;
  std::vector<std::shared_ptr<jit::JitModule>> Got(Threads);
  runThreads(Threads, [&](int I) { Got[I] = Jit.load(AddSource); });
  for (int I = 0; I < Threads; ++I) {
    ASSERT_NE(Got[I], nullptr) << Jit.error();
    EXPECT_EQ(Got[I].get(), Got[0].get()) << "thread " << I;
  }
  EXPECT_EQ(Jit.stats().Compiles, 1u);
  EXPECT_EQ(Jit.stats().MemoryHits, static_cast<std::uint64_t>(Threads - 1));
}

TEST(HostJit, LruEvictionKeepsHeldModulesCallable) {
  FreshCacheDir Dir("jitevict");
  jit::HostJit Jit(Dir.options());
  Jit.setCacheCap(1);
  auto M1 = Jit.load(AddSource);
  ASSERT_NE(M1, nullptr) << Jit.error();
  auto M2 = Jit.load(MulSource);
  ASSERT_NE(M2, nullptr) << Jit.error();
  EXPECT_EQ(Jit.cacheSize(), 1u);
  EXPECT_EQ(Jit.stats().Evictions, 1u);

  // Evicted-but-held module still resolves and runs.
  auto Add = M1->symbolAs<long (*)(long, long)>("moma_jit_add");
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add(19, 23), 42);

  // Memory-only cache: the evicted source compiles again on re-request.
  auto M3 = Jit.load(AddSource);
  ASSERT_NE(M3, nullptr) << Jit.error();
  EXPECT_EQ(Jit.stats().Compiles, 3u);
}

TEST(HostJit, FailedCompileLeavesNoTempFiles) {
  FreshCacheDir Dir("jitleak");
  jit::HostJit Jit(Dir.options());
  EXPECT_EQ(Jit.load("this is not C++ at all\n"), nullptr);
  EXPECT_FALSE(Jit.error().empty());
  // The failure path must clean its .tmp staging files — the historical
  // leak filled cache directories with orphaned temps.
  size_t TempFiles = 0, AnyFiles = 0;
  if (std::filesystem::exists(Dir.Path))
    for (const auto &E : std::filesystem::directory_iterator(Dir.Path)) {
      ++AnyFiles;
      if (E.path().filename().string().find(".tmp") != std::string::npos)
        ++TempFiles;
    }
  EXPECT_EQ(TempFiles, 0u);
  EXPECT_EQ(AnyFiles, 0u) << "failed compile left artifacts behind";
}

TEST(HostJit, MissingSymbolSurfacesDlerror) {
  FreshCacheDir Dir("jitsym");
  jit::HostJit Jit(Dir.options());
  auto M = Jit.load(AddSource);
  ASSERT_NE(M, nullptr) << Jit.error();
  std::string DlErr;
  EXPECT_EQ(M->symbol("moma_jit_no_such_symbol", &DlErr), nullptr);
  EXPECT_FALSE(DlErr.empty()) << "dlerror text lost";
  std::string DlOk = "stale";
  EXPECT_NE(M->symbol("moma_jit_add", &DlOk), nullptr);
  EXPECT_TRUE(DlOk.empty()) << DlOk;
}

//===----------------------------------------------------------------------===//
// Autotuner under concurrency
//===----------------------------------------------------------------------===//

TEST(AutotunerMT, ColdProblemSingleFlightsOntoOneSweep) {
  FreshCacheDir Dir("tunesf");
  KernelRegistry Reg(Dir.options());
  AutotunerOptions TO;
  TO.CalibrationElems = 16;
  TO.MaxCalibrationElems = 16;
  TO.Repeats = 1;
  TO.TuneBackend = false; // keep the sweep to two fast serial candidates
  TO.TunePrune = false;
  TO.TuneSchedule = false;
  Autotuner Tuner(Reg, TO);
  const Bignum Q = q60();
  const int Threads = 8;
  std::vector<const TuneDecision *> Got(Threads, nullptr);
  runThreads(Threads, [&](int I) {
    Got[I] = Tuner.choose(KernelOp::MulMod, Q, rewrite::PlanOptions(), 64);
  });
  for (int I = 0; I < Threads; ++I) {
    ASSERT_NE(Got[I], nullptr) << Tuner.error();
    EXPECT_EQ(Got[I], Got[0]) << "decision pointer diverged on thread " << I;
  }
  Autotuner::Stats St = Tuner.stats();
  EXPECT_EQ(St.Tuned, 1u) << "racing threads each ran the timing sweep";
  EXPECT_EQ(St.Reused, static_cast<unsigned>(Threads - 1));
}

//===----------------------------------------------------------------------===//
// sim::Device launch serialization
//===----------------------------------------------------------------------===//

TEST(SimDeviceMT, ConcurrentParallelForsSerializeCorrectly) {
  sim::Device Dev;
  const int Threads = 4;
  const std::uint64_t N = 1024;
  std::vector<std::uint64_t> Out(Threads * N, 0);
  runThreads(Threads, [&](int T) {
    for (int Round = 0; Round < 8; ++Round)
      Dev.parallelFor(N, [&, T](std::uint64_t I) { Out[T * N + I] += I; });
  });
  for (int T = 0; T < Threads; ++T)
    for (std::uint64_t I = 0; I < N; ++I)
      ASSERT_EQ(Out[T * N + I], 8 * I) << "slot " << T << "/" << I;
}

TEST(SimDeviceMT, ConcurrentLaunchesCoverEveryCoordinate) {
  sim::Device Dev;
  const int Threads = 4;
  std::atomic<std::uint64_t> Count{0};
  sim::LaunchConfig Cfg;
  Cfg.GridX = 4;
  Cfg.GridY = 2;
  Cfg.BlockDim = 32;
  runThreads(Threads, [&](int) {
    Dev.launch(Cfg, [&](const sim::LaunchCoord &, sim::SharedMem &) {
      Count.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(Count.load(),
            static_cast<std::uint64_t>(Threads) * 4 * 2 * 32);
}
