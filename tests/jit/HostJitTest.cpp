//===- tests/jit/HostJitTest.cpp - host-JIT runtime unit tests ---------------===//
//
// The compile-and-load subsystem the codegen suites and examples build on:
// source goes in, a callable module comes out, errors are captured, and
// identical source never reaches the compiler twice (in-memory module
// reuse within an instance, content-hash .so reuse across instances).
//
//===----------------------------------------------------------------------===//

#include "jit/HostJit.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

using namespace moma;

namespace {

/// A throwaway cache directory so the cache-behavior counters are
/// deterministic regardless of what earlier runs left in the shared cache.
class FreshCacheDir {
public:
  explicit FreshCacheDir(const std::string &Name)
      : Path(::testing::TempDir() + "/hostjit_" + Name + "_" +
             std::to_string(::getpid())) {
    std::filesystem::remove_all(Path);
  }
  ~FreshCacheDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  jit::HostJitOptions options() const {
    jit::HostJitOptions Opts;
    Opts.CacheDir = Path;
    return Opts;
  }
  const std::string Path;
};

const char *AddSource = "extern \"C\" long moma_jit_add(long A, long B) {"
                        " return A + B; }\n";

} // namespace

TEST(HostJit, CompilesLoadsAndResolves) {
  FreshCacheDir Dir("basic");
  jit::HostJit Jit(Dir.options());
  std::shared_ptr<jit::JitModule> M = Jit.load(AddSource);
  ASSERT_NE(M, nullptr) << Jit.error();
  EXPECT_TRUE(Jit.error().empty());
  EXPECT_FALSE(M->fromDiskCache());
  EXPECT_EQ(Jit.stats().Compiles, 1u);

  auto Add = M->symbolAs<long (*)(long, long)>("moma_jit_add");
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add(19, 23), 42);

  // The artifacts live in the cache directory for post-mortem inspection.
  EXPECT_TRUE(std::filesystem::exists(M->soPath()));
  EXPECT_TRUE(std::filesystem::exists(M->sourcePath()));
}

TEST(HostJit, SameSourceSameInstanceIsAMemoryHit) {
  FreshCacheDir Dir("memhit");
  jit::HostJit Jit(Dir.options());
  std::shared_ptr<jit::JitModule> M1 = Jit.load(AddSource);
  std::shared_ptr<jit::JitModule> M2 = Jit.load(AddSource);
  ASSERT_NE(M1, nullptr) << Jit.error();
  EXPECT_EQ(M1.get(), M2.get());
  EXPECT_EQ(Jit.stats().Compiles, 1u);
  EXPECT_EQ(Jit.stats().MemoryHits, 1u);
  EXPECT_EQ(Jit.stats().DiskHits, 0u);
}

TEST(HostJit, SameSourceFreshInstanceIsADiskHit) {
  FreshCacheDir Dir("diskhit");
  {
    jit::HostJit First(Dir.options());
    ASSERT_NE(First.load(AddSource), nullptr) << First.error();
    EXPECT_EQ(First.stats().Compiles, 1u);
  }
  jit::HostJit Second(Dir.options());
  std::shared_ptr<jit::JitModule> M = Second.load(AddSource);
  ASSERT_NE(M, nullptr) << Second.error();
  EXPECT_TRUE(M->fromDiskCache());
  EXPECT_EQ(Second.stats().Compiles, 0u);
  EXPECT_EQ(Second.stats().DiskHits, 1u);
  auto Add = M->symbolAs<long (*)(long, long)>("moma_jit_add");
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add(-2, 2), 0);
}

TEST(HostJit, DifferentFlagsMissTheCache) {
  FreshCacheDir Dir("flags");
  jit::HostJitOptions O1 = Dir.options();
  O1.Flags = "-O1";
  jit::HostJitOptions O2 = Dir.options();
  O2.Flags = "-O2";
  jit::HostJit J1(O1), J2(O2);
  ASSERT_NE(J1.load(AddSource), nullptr) << J1.error();
  ASSERT_NE(J2.load(AddSource), nullptr) << J2.error();
  EXPECT_EQ(J2.stats().Compiles, 1u) << "flags are part of the cache key";
  EXPECT_EQ(J2.stats().DiskHits, 0u);
}

TEST(HostJit, PerLoadExtraFlagsAreDistinctModules) {
  // Per-call extra flags (the vector backend's -O3 -march=native) key
  // both caches: the same source at different optimization levels must
  // be two compiled modules, never one silently shared artifact.
  FreshCacheDir Dir("extraflags");
  jit::HostJit Jit(Dir.options());
  std::shared_ptr<jit::JitModule> MDefault = Jit.load(AddSource);
  ASSERT_NE(MDefault, nullptr) << Jit.error();
  std::shared_ptr<jit::JitModule> MFast = Jit.load(AddSource, "-O3");
  ASSERT_NE(MFast, nullptr) << Jit.error();
  EXPECT_NE(MDefault.get(), MFast.get())
      << "extra flags are part of the in-memory cache key";
  EXPECT_EQ(Jit.stats().Compiles, 2u);
  EXPECT_NE(MDefault->soPath(), MFast->soPath())
      << "extra flags are part of the disk-cache content hash";
  // Same source + same extra flags is still a memory hit.
  std::shared_ptr<jit::JitModule> MAgain = Jit.load(AddSource, "-O3");
  EXPECT_EQ(MFast.get(), MAgain.get());
  EXPECT_EQ(Jit.stats().Compiles, 2u);
  EXPECT_EQ(Jit.stats().MemoryHits, 1u);
  // And a fresh instance serves the flagged artifact from disk.
  jit::HostJit Second(Dir.options());
  std::shared_ptr<jit::JitModule> MDisk = Second.load(AddSource, "-O3");
  ASSERT_NE(MDisk, nullptr) << Second.error();
  EXPECT_TRUE(MDisk->fromDiskCache());
  EXPECT_EQ(Second.stats().Compiles, 0u);
}

TEST(HostJit, DiskCacheCanBeDisabled) {
  FreshCacheDir Dir("nocache");
  jit::HostJitOptions Opts = Dir.options();
  Opts.UseDiskCache = false;
  {
    jit::HostJit First(Opts);
    ASSERT_NE(First.load(AddSource), nullptr) << First.error();
  }
  jit::HostJit Second(Opts);
  std::shared_ptr<jit::JitModule> M = Second.load(AddSource);
  ASSERT_NE(M, nullptr) << Second.error();
  EXPECT_FALSE(M->fromDiskCache());
  EXPECT_EQ(Second.stats().Compiles, 1u);
}

TEST(HostJit, CapturesCompilerDiagnostics) {
  FreshCacheDir Dir("error");
  jit::HostJit Jit(Dir.options());
  std::shared_ptr<jit::JitModule> M =
      Jit.load("this is not a translation unit\n");
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(Jit.error().find("host compiler failed"), std::string::npos)
      << Jit.error();
  EXPECT_NE(Jit.error().find("error"), std::string::npos)
      << "compiler stderr should be captured: " << Jit.error();
  // A failed load leaves no .so behind to poison later lookups.
  jit::HostJit Retry(Dir.options());
  EXPECT_EQ(Retry.load("this is not a translation unit\n"), nullptr);
  EXPECT_EQ(Retry.stats().DiskHits, 0u);
}

TEST(HostJit, MissingSymbolIsNull) {
  FreshCacheDir Dir("nosym");
  jit::HostJit Jit(Dir.options());
  std::shared_ptr<jit::JitModule> M = Jit.load(AddSource);
  ASSERT_NE(M, nullptr) << Jit.error();
  EXPECT_EQ(M->symbol("definitely_not_here"), nullptr);
}

TEST(HostJit, DiskEntryWithMismatchedSourceIsNotReused) {
  // The disk cache is keyed by a 64-bit content hash; a hit only counts
  // when the stored source is byte-identical, so a colliding or mangled
  // entry recompiles instead of silently running the wrong kernel.
  FreshCacheDir Dir("mismatch");
  std::string SrcPath;
  {
    jit::HostJit First(Dir.options());
    std::shared_ptr<jit::JitModule> M1 = First.load(AddSource);
    ASSERT_NE(M1, nullptr) << First.error();
    SrcPath = M1->sourcePath();
  }
  { std::ofstream(SrcPath, std::ios::trunc) << "// some other kernel\n"; }
  jit::HostJit Second(Dir.options());
  std::shared_ptr<jit::JitModule> M2 = Second.load(AddSource);
  ASSERT_NE(M2, nullptr) << Second.error();
  EXPECT_FALSE(M2->fromDiskCache());
  EXPECT_EQ(Second.stats().Compiles, 1u);
  EXPECT_EQ(Second.stats().DiskHits, 0u);
  auto Add = M2->symbolAs<long (*)(long, long)>("moma_jit_add");
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add(40, 2), 42);
}

TEST(HostJit, StaleCacheEntryIsRebuilt) {
  FreshCacheDir Dir("stale");
  std::string SoPath;
  {
    // Scoped so the module is unloaded before its backing file is mangled.
    jit::HostJit First(Dir.options());
    std::shared_ptr<jit::JitModule> M1 = First.load(AddSource);
    ASSERT_NE(M1, nullptr) << First.error();
    SoPath = M1->soPath();
  }
  // Truncate the cached .so to something dlopen must reject.
  { std::ofstream(SoPath, std::ios::trunc) << "garbage"; }
  jit::HostJit Second(Dir.options());
  std::shared_ptr<jit::JitModule> M2 = Second.load(AddSource);
  ASSERT_NE(M2, nullptr) << Second.error();
  EXPECT_FALSE(M2->fromDiskCache());
  EXPECT_EQ(Second.stats().Compiles, 1u);
  auto Add = M2->symbolAs<long (*)(long, long)>("moma_jit_add");
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add(20, 22), 42);
}
