//===- tests/rewrite/SimplifyTest.cpp - folding and pruning --------------------===//
//
// The §4 non-power-of-two optimization and its supporting folds: constant
// propagation, algebraic identities, KnownBits strength reduction, copy
// propagation, and dead code elimination.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "ir/Builder.h"
#include "field/PrimeGen.h"
#include "kernels/ScalarKernels.h"
#include "rewrite/Simplify.h"
#include "rewrite/Stats.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::ir;
using namespace moma::rewrite;
using namespace moma::testutil;
using kernels::ScalarKernelSpec;
using mw::Bignum;

TEST(Simplify, FoldsConstantArithmetic) {
  Kernel K;
  K.Name = "f";
  Builder B(K);
  ValueId C1 = B.constant(64, Bignum(40));
  ValueId C2 = B.constant(64, Bignum(2));
  CarryResult S = B.add(C1, C2);
  HiLoResult P = B.mul(C1, C2);
  K.addOutput(S.Value, "s");
  K.addOutput(P.Lo, "p");
  simplifyToFixpoint(K);
  // Everything folds to constants; only Const statements remain.
  for (const Stmt &St : K.Body)
    EXPECT_EQ(St.Kind, OpKind::Const);
  auto Out = interpret(K, {});
  EXPECT_EQ(Out[0], Bignum(42));
  EXPECT_EQ(Out[1], Bignum(80));
}

TEST(Simplify, AddWithZeroBecomesIdentity) {
  Kernel K;
  K.Name = "z";
  ValueId A = K.newValue(64, "a");
  K.addInput(A, "a");
  Builder B(K);
  ValueId Z = B.constantZero(64);
  CarryResult S = B.add(A, Z);
  K.addOutput(S.Value, "s");
  simplifyToFixpoint(K);
  EXPECT_EQ(countOps(K).count(OpKind::Add), 0u);
  auto Out = interpret(K, {Bignum(123)});
  EXPECT_EQ(Out[0], Bignum(123));
}

TEST(Simplify, MulByZeroAndOne) {
  Kernel K;
  K.Name = "m";
  ValueId A = K.newValue(64, "a");
  K.addInput(A, "a");
  Builder B(K);
  HiLoResult P0 = B.mul(A, B.constantZero(64));
  HiLoResult P1 = B.mul(A, B.constant(64, Bignum(1)));
  K.addOutput(P0.Lo, "z");
  K.addOutput(P1.Lo, "o");
  simplifyToFixpoint(K);
  EXPECT_EQ(countOps(K).multiplies(), 0u);
  auto Out = interpret(K, {Bignum(77)});
  EXPECT_TRUE(Out[0].isZero());
  EXPECT_EQ(Out[1], Bignum(77));
}

TEST(Simplify, KnownBitsKillsImpossibleCarry) {
  Kernel K;
  K.Name = "kb";
  // Both inputs < 2^30: the 64-bit add can never carry.
  ValueId A = K.newValue(64, "a", 30);
  K.addInput(A, "a");
  ValueId Bv = K.newValue(64, "b", 30);
  K.addInput(Bv, "b");
  Builder B(K);
  CarryResult S = B.add(A, Bv);
  // Make the carry observable: out = select(carry, a, b).
  K.addOutput(B.select(S.Carry, A, Bv), "o");
  K.addOutput(S.Value, "s");
  simplifyToFixpoint(K);
  EXPECT_EQ(countOps(K).count(OpKind::Select), 0u)
      << "carry is provably zero, select must fold to its false arm";
  auto Out = interpret(K, {Bignum(5), Bignum(9)});
  EXPECT_EQ(Out[0], Bignum(9));
}

TEST(Simplify, KnownBitsTurnsMulIntoMulLow) {
  Kernel K;
  K.Name = "ml";
  ValueId A = K.newValue(64, "a", 30);
  K.addInput(A, "a");
  ValueId Bv = K.newValue(64, "b", 30);
  K.addInput(Bv, "b");
  Builder B(K);
  HiLoResult P = B.mul(A, Bv);
  K.addOutput(P.Lo, "lo");
  K.addOutput(B.select(B.eq(P.Hi, B.constantZero(64)), A, Bv), "probe");
  simplifyToFixpoint(K);
  EXPECT_EQ(countOps(K).count(OpKind::Mul), 0u);
  EXPECT_EQ(countOps(K).count(OpKind::MulLow), 1u);
  // hi == 0 folds true, probe = a.
  auto Out = interpret(K, {Bignum(1000), Bignum(2000)});
  EXPECT_EQ(Out[0], Bignum(2000000));
  EXPECT_EQ(Out[1], Bignum(1000));
}

TEST(Simplify, ShrPastKnownBitsIsZero) {
  Kernel K;
  K.Name = "sh";
  ValueId A = K.newValue(64, "a", 10);
  K.addInput(A, "a");
  Builder B(K);
  K.addOutput(B.shr(A, 20), "o"); // a < 2^10, so a >> 20 == 0
  simplifyToFixpoint(K);
  EXPECT_EQ(countOps(K).count(OpKind::Shr), 0u);
  EXPECT_TRUE(interpret(K, {Bignum(1023)})[0].isZero());
}

TEST(Simplify, DeadCodeIsRemoved) {
  Kernel K;
  K.Name = "dce";
  ValueId A = K.newValue(64, "a");
  K.addInput(A, "a");
  Builder B(K);
  // Dead: a full multiply whose results are unused.
  B.mul(A, A);
  CarryResult S = B.add(A, A);
  K.addOutput(S.Value, "s");
  SimplifyStats Stats = simplifyToFixpoint(K);
  EXPECT_EQ(countOps(K).multiplies(), 0u);
  EXPECT_GT(Stats.DeadRemoved, 0u);
}

TEST(Simplify, CopyChainsCollapse) {
  Kernel K;
  K.Name = "cp";
  ValueId A = K.newValue(64, "a");
  K.addInput(A, "a");
  Builder B(K);
  ValueId C = B.copy(B.copy(B.copy(A)));
  K.addOutput(C, "o");
  simplifyToFixpoint(K);
  EXPECT_EQ(countOps(K).count(OpKind::Copy), 0u);
  EXPECT_EQ(K.outputs()[0].Id, K.inputs()[0].Id)
      << "output rebinds to the input value";
}

TEST(Simplify, SelectIdentities) {
  Kernel K;
  K.Name = "sel";
  ValueId C = K.newValue(1, "c");
  K.addInput(C, "c");
  ValueId A = K.newValue(64, "a");
  K.addInput(A, "a");
  Builder B(K);
  K.addOutput(B.select(C, A, A), "same");
  K.addOutput(B.select(B.constant(1, Bignum(1)), A, B.constantZero(64)),
              "true");
  simplifyToFixpoint(K);
  EXPECT_EQ(countOps(K).count(OpKind::Select), 0u);
  auto Out = interpret(K, {Bignum(0), Bignum(9)});
  EXPECT_EQ(Out[0], Bignum(9));
  EXPECT_EQ(Out[1], Bignum(9));
}

TEST(Simplify, ComparisonIdentities) {
  Kernel K;
  K.Name = "cmp";
  ValueId A = K.newValue(64, "a");
  K.addInput(A, "a");
  Builder B(K);
  ValueId Lt = B.lt(A, A);
  ValueId Eq = B.eq(A, A);
  ValueId LtZ = B.lt(A, B.constantZero(64));
  K.addOutput(B.select(Lt, A, B.constantZero(64)), "o1");
  K.addOutput(B.select(Eq, A, B.constantZero(64)), "o2");
  K.addOutput(B.select(LtZ, A, B.constantZero(64)), "o3");
  simplifyToFixpoint(K);
  EXPECT_EQ(countOps(K).count(OpKind::Lt), 0u);
  EXPECT_EQ(countOps(K).count(OpKind::Eq), 0u);
  auto Out = interpret(K, {Bignum(5)});
  EXPECT_TRUE(Out[0].isZero()); // a < a false -> 0 arm
  EXPECT_EQ(Out[1], Bignum(5)); // a == a true -> a
  EXPECT_TRUE(Out[2].isZero()); // a < 0 false
}

TEST(Simplify, PreservesSemanticsOnLoweredKernels) {
  // Fuzz guard: simplification must never change lowered-kernel results.
  for (unsigned Container : {128u, 256u}) {
    ScalarKernelSpec Spec{Container, 0};
    Kernel K = kernels::buildButterflyKernel(Spec);
    LoweredKernel L = lowerToWords(K, {});
    LoweredKernel LS = L;
    simplifyLowered(LS);
    Bignum Q = field::nttPrime(Spec.modBits(), 8, 77);
    Bignum Mu = Bignum::powerOfTwo(2 * Spec.modBits() + 3) / Q;
    Rng R(4000 + Container);
    for (int I = 0; I < 40; ++I) {
      std::vector<Bignum> In = {Bignum::random(R, Q), Bignum::random(R, Q),
                                Bignum::random(R, Q), Q, Mu};
      EXPECT_EQ(interpretLowered(L, In), interpretLowered(LS, In));
    }
  }
}

TEST(Simplify, NonPowerOfTwoPruningShrinksKernels) {
  // The paper's Eq. 35/36 claim quantified: a 380-bit modulus lowered in a
  // 512-bit container must need fewer word operations than a 508-bit one.
  ScalarKernelSpec Full{512, 0};    // 508-bit modulus
  ScalarKernelSpec Narrow{512, 380}; // 380-bit modulus, 2 words pruned
  LoweredKernel LFull = lowerToWords(kernels::buildMulModKernel(Full), {});
  LoweredKernel LNarrow =
      lowerToWords(kernels::buildMulModKernel(Narrow), {});
  simplifyLowered(LFull);
  simplifyLowered(LNarrow);
  OpStats F = countOps(LFull.K), N = countOps(LNarrow.K);
  EXPECT_LT(N.Total, F.Total);
  EXPECT_LT(N.multiplies(), F.multiplies())
      << "pruning must remove whole word multiplies, not just moves";
}

TEST(Simplify, PruningSavingsGrowWithPadding) {
  // 753-bit modulus in a 1024 container saves more than 1020-bit.
  ScalarKernelSpec Full{1024, 0};
  ScalarKernelSpec Narrow{1024, 753};
  LoweredKernel LFull = lowerToWords(kernels::buildMulModKernel(Full), {});
  LoweredKernel LNarrow =
      lowerToWords(kernels::buildMulModKernel(Narrow), {});
  simplifyLowered(LFull);
  simplifyLowered(LNarrow);
  double Ratio = double(countOps(LNarrow.K).Total) /
                 double(countOps(LFull.K).Total);
  EXPECT_LT(Ratio, 0.8) << "753/1024 should prune well over 20% of the ops";
}

TEST(Simplify, FixpointTerminates) {
  ScalarKernelSpec Spec{256, 0};
  Kernel K = kernels::buildMulModKernel(Spec);
  LoweredKernel L = lowerToWords(K, {});
  simplifyLowered(L);
  // A second run must be a no-op.
  Kernel Before = L.K;
  SimplifyStats S = simplify(L.K);
  EXPECT_EQ(S.FoldedConst + S.Identities + S.StrengthReduced, 0u);
  EXPECT_EQ(L.K.size(), Before.size());
}
