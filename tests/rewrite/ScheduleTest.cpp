//===- tests/rewrite/ScheduleTest.cpp - pressure analysis and scheduling -------===//

#include "../TestUtil.h"

#include "ir/Builder.h"
#include "field/PrimeGen.h"
#include "kernels/ScalarKernels.h"
#include "rewrite/Schedule.h"
#include "rewrite/Simplify.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::ir;
using namespace moma::rewrite;
using namespace moma::testutil;
using mw::Bignum;

TEST(Schedule, PressureOfTinyKernel) {
  // in a, b -> (hi, lo) = a*b; out lo. Peak: a, b, hi, lo live at the mul.
  Kernel K;
  ValueId A = K.newValue(64, "a");
  K.addInput(A, "a");
  ValueId B = K.newValue(64, "b");
  K.addInput(B, "b");
  Builder Bld(K);
  HiLoResult P = Bld.mul(A, B);
  K.addOutput(P.Lo, "lo");
  PressureStats S = measurePressure(K);
  EXPECT_EQ(S.MaxLiveWords, 4u);
  EXPECT_EQ(S.MaxLive, 4u);
}

TEST(Schedule, WideValuesCountMultipleWords) {
  Kernel K;
  ValueId A = K.newValue(256, "a");
  K.addInput(A, "a");
  Builder Bld(K);
  K.addOutput(Bld.copy(A), "o");
  // a (4 words) + copy (4 words) live at the copy.
  EXPECT_EQ(measurePressure(K).MaxLiveWords, 8u);
  // At 32-bit machine words the same kernel needs twice the registers.
  EXPECT_EQ(measurePressure(K, 32).MaxLiveWords, 16u);
}

TEST(Schedule, UnusedInputsAreNotLive) {
  Kernel K;
  ValueId A = K.newValue(64, "a");
  K.addInput(A, "a");
  ValueId B = K.newValue(64, "b"); // never used
  K.addInput(B, "b");
  Builder Bld(K);
  K.addOutput(Bld.copy(A), "o");
  EXPECT_EQ(measurePressure(K).MaxLiveWords, 2u);
}

TEST(Schedule, SchedulerPreservesSemantics) {
  for (unsigned Container : {128u, 256u}) {
    kernels::ScalarKernelSpec Spec{Container, 0};
    Kernel K = kernels::buildButterflyKernel(Spec);
    LoweredKernel L = lowerToWords(K, {});
    simplifyLowered(L);
    Kernel Scheduled = L.K;
    scheduleForPressure(Scheduled);
    ASSERT_TRUE(verify(Scheduled).empty())
        << "scheduling must keep def-before-use";

    // Same inputs, same outputs.
    Bignum Q = field::nttPrime(Spec.modBits(), 8, 21);
    Bignum Mu = Bignum::powerOfTwo(2 * Spec.modBits() + 3) / Q;
    Rng R(1300 + Container);
    for (int I = 0; I < 25; ++I) {
      std::vector<Bignum> WordIn;
      std::vector<Bignum> In = {Bignum::random(R, Q), Bignum::random(R, Q),
                                Bignum::random(R, Q), Q, Mu};
      for (size_t P = 0; P < L.Inputs.size(); ++P) {
        auto Words = decomposePort(L.Inputs[P], In[P]);
        WordIn.insert(WordIn.end(), Words.begin(), Words.end());
      }
      EXPECT_EQ(interpret(L.K, WordIn), interpret(Scheduled, WordIn));
    }
  }
}

TEST(Schedule, NeverWorsensLoweredKernels) {
  // The lowering emits operation chains depth-first, so its order is
  // already close to optimal; the scheduler must at worst keep it.
  for (unsigned Container : {128u, 256u, 512u}) {
    kernels::ScalarKernelSpec Spec{Container, 0};
    LoweredKernel L = lowerToWords(kernels::buildMulModKernel(Spec), {});
    simplifyLowered(L);
    PressureStats Before = measurePressure(L.K);
    PressureStats After = scheduleForPressure(L.K);
    EXPECT_LE(After.MaxLiveWords, Before.MaxLiveWords) << Container;
  }
}

TEST(Schedule, ImprovesBreadthFirstKernels) {
  // A deliberately breadth-first kernel: eight shifted copies of one
  // input all materialized before any of them is consumed. Depth-first
  // scheduling interleaves producers and the xor chain.
  Kernel K;
  ValueId A = K.newValue(64, "a");
  K.addInput(A, "a");
  Builder Bld(K);
  std::vector<ValueId> Vs;
  for (unsigned I = 1; I <= 8; ++I)
    Vs.push_back(Bld.shl(A, I));
  ValueId Acc = Vs[0];
  for (unsigned I = 1; I < 8; ++I)
    Acc = Bld.bitXor(Acc, Vs[I]);
  K.addOutput(Acc, "o");

  PressureStats Before = measurePressure(K);
  EXPECT_EQ(Before.MaxLiveWords, 9u); // 8 shifts + the first xor def (a dies at the last shl)
  PressureStats After = scheduleForPressure(K);
  EXPECT_LT(After.MaxLiveWords, Before.MaxLiveWords);
  ASSERT_TRUE(verify(K).empty());
  // Semantics preserved.
  Bignum X = Bignum::fromHex("0x123456789abcdef");
  Bignum Expect;
  {
    Bignum Acc2 = (X << 1).truncate(64);
    for (unsigned I = 2; I <= 8; ++I) {
      Bignum V = (X << I).truncate(64);
      Acc2 = Bignum(Acc2.low64() ^ V.low64());
    }
    Expect = Acc2;
  }
  EXPECT_EQ(interpret(K, {X})[0], Expect);
}

TEST(Schedule, PressureGrowsLinearlyWithWidth) {
  // The butterfly's live set is proportional to the element width: about
  // 2.1x per container doubling measured. At 768 bits the kernel alone
  // holds ~143 live words — over half the 255-register CUDA budget
  // before the compiler's own temporaries, the mechanism behind the
  // paper's large-width compile troubles (5.3).
  unsigned Prev = 0;
  for (unsigned Container : {128u, 256u, 512u, 1024u}) {
    kernels::ScalarKernelSpec Spec{Container, 0};
    LoweredKernel L = lowerToWords(kernels::buildButterflyKernel(Spec), {});
    simplifyLowered(L);
    unsigned Peak = measurePressure(L.K).MaxLiveWords;
    if (Prev) {
      EXPECT_GE(Peak, 2 * Prev - 4) << Container;
    }
    Prev = Peak;
  }
  EXPECT_GE(Prev, 128u) << "1024-bit butterfly live set";
  // Halving the machine word doubles the pressure (paper 7 small-word
  // hardware pays twice over).
  kernels::ScalarKernelSpec Spec{256, 0};
  LowerOptions Opts;
  Opts.TargetWordBits = 32;
  LoweredKernel L32 = lowerToWords(kernels::buildButterflyKernel(Spec), Opts);
  simplifyLowered(L32);
  LoweredKernel L64 = lowerToWords(kernels::buildButterflyKernel(Spec), {});
  simplifyLowered(L64);
  EXPECT_GT(measurePressure(L32.K, 32).MaxLiveWords,
            measurePressure(L64.K, 64).MaxLiveWords);
}

TEST(Schedule, IdempotentOnScheduledKernel) {
  kernels::ScalarKernelSpec Spec{256, 0};
  LoweredKernel L = lowerToWords(kernels::buildMulModKernel(Spec), {});
  simplifyLowered(L);
  PressureStats Once = scheduleForPressure(L.K);
  PressureStats Twice = scheduleForPressure(L.K);
  EXPECT_EQ(Twice.MaxLiveWords, Once.MaxLiveWords);
}
