//===- tests/rewrite/RewriteRulesTest.cpp - Table 1 rule-by-rule --------------===//
//
// Semantic checks for the paper's Table 1 core rewrite rules. Each test
// builds the minimal kernel whose lowering exercises exactly one rule and
// verifies interpreter equivalence plus the structural facts the rule
// promises (result widths halve; the rule's op mix appears).
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "ir/Builder.h"
#include "kernels/ScalarKernels.h"
#include "rewrite/Stats.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::ir;
using namespace moma::rewrite;
using namespace moma::testutil;
using mw::Bignum;

namespace {

/// Lowers \p K exactly one level (target = half of the maximal width).
LoweredKernel lowerOnce(const Kernel &K,
                        mw::MulAlgorithm Alg = mw::MulAlgorithm::Schoolbook) {
  LowerOptions Opts;
  Opts.TargetWordBits = K.maxBits() / 2;
  Opts.MulAlg = Alg;
  return lowerToWords(K, Opts);
}

/// Two-input kernel over width W whose body is built by \p Build.
template <typename Fn> Kernel twoInput(unsigned W, Fn Build) {
  Kernel K;
  K.Name = "rule";
  ValueId A = K.newValue(W, "a");
  K.addInput(A, "a");
  ValueId B = K.newValue(W, "b");
  K.addInput(B, "b");
  Builder Bld(K);
  Build(K, Bld, A, B);
  return K;
}

void checkRule(const Kernel &K, std::uint64_t Seed, int Iters = 100,
               mw::MulAlgorithm Alg = mw::MulAlgorithm::Schoolbook) {
  LoweredKernel L = lowerOnce(K, Alg);
  EXPECT_EQ(L.K.maxBits(), K.maxBits() / 2)
      << "all widths must halve after one rewrite round";
  Rng R(Seed);
  expectLoweringEquivalence(K, L, R, Iters,
                            [&](Rng &Rr) { return randomInputs(K, Rr); });
}

} // namespace

// Rule (19): type breakdown a^2w -> [a_0^w, a_1^w], observable through the
// port decomposition of a pass-through kernel.
TEST(RewriteRules, Rule19SplitsInputsIntoHalves) {
  Kernel K = twoInput(128, [](Kernel &Kk, Builder &B, ValueId A, ValueId) {
    Kk.addOutput(B.copy(A), "c");
  });
  LoweredKernel L = lowerOnce(K);
  ASSERT_EQ(L.Inputs[0].Words.size(), 2u);
  EXPECT_EQ(L.K.value(L.Inputs[0].Words[0]).Bits, 64u);
  EXPECT_EQ(L.K.value(L.Inputs[0].Words[1]).Bits, 64u);
  checkRule(K, 700);
}

// Rules (20)/(21): floor-div and mod by 2^w extract the halves.
TEST(RewriteRules, Rules20And21SplitExtractsHalves) {
  Kernel K = twoInput(128, [](Kernel &Kk, Builder &B, ValueId A, ValueId) {
    HiLoResult Sp = B.split(A);
    Kk.addOutput(Sp.Hi, "hi");
    Kk.addOutput(Sp.Lo, "lo");
  });
  checkRule(K, 701);
}

// Rules (22)/(23): double-word addition via two half additions chained
// through the carry.
TEST(RewriteRules, Rule22AddChainsThroughCarry) {
  Kernel K = twoInput(128, [](Kernel &Kk, Builder &B, ValueId A, ValueId Bb) {
    CarryResult S = B.add(A, Bb);
    Kk.addOutput(S.Carry, "carry");
    Kk.addOutput(S.Value, "sum");
  });
  LoweredKernel L = lowerOnce(K);
  EXPECT_EQ(countOps(L.K).count(OpKind::Add), 2u)
      << "rule (22) uses exactly two half adds";
  checkRule(K, 702, 300);
}

// Rule (24): modulo after addition becomes compare/subtract/select.
TEST(RewriteRules, Rule24AddModComparesAndSelects) {
  kernels::ScalarKernelSpec Spec{128, 0};
  Kernel K = kernels::buildAddModKernel(Spec);
  LoweredKernel L = lowerOnce(K);
  OpStats S = countOps(L.K);
  EXPECT_GE(S.count(OpKind::Select), 2u);
  EXPECT_GE(S.count(OpKind::Lt), 2u);
  EXPECT_GE(S.count(OpKind::Sub), 2u);
}

// Rule (25): double-word subtraction with explicit borrow.
TEST(RewriteRules, Rule25SubPropagatesBorrow) {
  Kernel K = twoInput(128, [](Kernel &Kk, Builder &B, ValueId A, ValueId Bb) {
    CarryResult D = B.sub(A, Bb);
    Kk.addOutput(D.Carry, "borrow");
    Kk.addOutput(D.Value, "diff");
  });
  LoweredKernel L = lowerOnce(K);
  EXPECT_EQ(countOps(L.K).count(OpKind::Sub), 2u);
  checkRule(K, 703, 300);
}

// Rule (26): double-word less-than via hi/lo compares.
TEST(RewriteRules, Rule26LtDecomposes) {
  Kernel K = twoInput(128, [](Kernel &Kk, Builder &B, ValueId A, ValueId Bb) {
    Kk.addOutput(B.lt(A, Bb), "f");
  });
  LoweredKernel L = lowerOnce(K);
  OpStats S = countOps(L.K);
  EXPECT_EQ(S.count(OpKind::Lt), 2u);
  EXPECT_EQ(S.count(OpKind::Eq), 1u);
  EXPECT_EQ(S.count(OpKind::And), 1u);
  EXPECT_EQ(S.count(OpKind::Or), 1u);
  checkRule(K, 704, 500);
}

// Rule (26) edge: equal halves decide by the low words.
TEST(RewriteRules, Rule26LtEqualHighHalves) {
  Kernel K = twoInput(128, [](Kernel &Kk, Builder &B, ValueId A, ValueId Bb) {
    Kk.addOutput(B.lt(A, Bb), "f");
  });
  LoweredKernel L = lowerOnce(K);
  // a = [h, 5], b = [h, 9] -> a < b.
  Bignum H = Bignum::fromHex("0xdead000000000000dead");
  Bignum A = (H << 64) + Bignum(5), B = (H << 64) + Bignum(9);
  EXPECT_TRUE(interpretLowered(L, {A, B})[0].isOne());
  EXPECT_TRUE(interpretLowered(L, {B, A})[0].isZero());
  EXPECT_TRUE(interpretLowered(L, {A, A})[0].isZero());
}

// Rule (27): double-word equality via per-half equality.
TEST(RewriteRules, Rule27EqDecomposes) {
  Kernel K = twoInput(128, [](Kernel &Kk, Builder &B, ValueId A, ValueId Bb) {
    Kk.addOutput(B.eq(A, Bb), "f");
  });
  LoweredKernel L = lowerOnce(K);
  OpStats S = countOps(L.K);
  EXPECT_EQ(S.count(OpKind::Eq), 2u);
  EXPECT_EQ(S.count(OpKind::And), 1u);
  checkRule(K, 705, 500);
}

// Rule (28): schoolbook double-word multiplication: 4 half multiplies.
TEST(RewriteRules, Rule28MulSchoolbookOpMix) {
  Kernel K = twoInput(128, [](Kernel &Kk, Builder &B, ValueId A, ValueId Bb) {
    HiLoResult P = B.mul(A, Bb);
    Kk.addOutput(P.Hi, "hi");
    Kk.addOutput(P.Lo, "lo");
  });
  LoweredKernel L = lowerOnce(K);
  OpStats S = countOps(L.K);
  EXPECT_EQ(S.count(OpKind::Mul), 4u) << "paper 5.4: 4 single-word muls";
  EXPECT_GE(S.count(OpKind::Add), 5u); // cross sum + rule (29) accumulation
  checkRule(K, 706, 300);
}

// Eq. (9): the Karatsuba alternative: 3 half multiplies.
TEST(RewriteRules, Rule28KaratsubaUsesThreeMuls) {
  Kernel K = twoInput(128, [](Kernel &Kk, Builder &B, ValueId A, ValueId Bb) {
    HiLoResult P = B.mul(A, Bb);
    Kk.addOutput(P.Hi, "hi");
    Kk.addOutput(P.Lo, "lo");
  });
  LoweredKernel L = lowerOnce(K, mw::MulAlgorithm::Karatsuba);
  OpStats S = countOps(L.K);
  EXPECT_EQ(S.count(OpKind::Mul), 3u) << "paper 5.4: 3 single-word muls";
  EXPECT_GE(S.addSubs(), 10u) << "paper 5.4: ~12 adds/subs";
  checkRule(K, 707, 300, mw::MulAlgorithm::Karatsuba);
}

// Karatsuba carry corner: both half-sums overflow.
TEST(RewriteRules, KaratsubaHalfSumCarries) {
  Kernel K = twoInput(128, [](Kernel &Kk, Builder &B, ValueId A, ValueId Bb) {
    HiLoResult P = B.mul(A, Bb);
    Kk.addOutput(P.Hi, "hi");
    Kk.addOutput(P.Lo, "lo");
  });
  LoweredKernel L = lowerOnce(K, mw::MulAlgorithm::Karatsuba);
  Bignum Max = Bignum::powerOfTwo(128) - Bignum(1);
  auto Out = interpretLowered(L, {Max, Max});
  Bignum P = Max * Max;
  EXPECT_EQ(Out[0], P >> 128);
  EXPECT_EQ(Out[1], P.truncate(128));
}

// Rule (29): quad-word addition — covered through the full multiply result
// accumulation; verified here on a 256-bit add exercising 4-word chains
// after two rounds.
TEST(RewriteRules, Rule29FourWordCarryChain) {
  Kernel K = twoInput(256, [](Kernel &Kk, Builder &B, ValueId A, ValueId Bb) {
    CarryResult S = B.add(A, Bb);
    Kk.addOutput(S.Carry, "carry");
    Kk.addOutput(S.Value, "sum");
  });
  LowerOptions Opts;
  Opts.TargetWordBits = 64;
  LoweredKernel L = lowerToWords(K, Opts);
  EXPECT_EQ(countOps(L.K).count(OpKind::Add), 4u)
      << "rule (29): one add per word, chained carries";
  Rng R(708);
  expectLoweringEquivalence(K, L, R, 300,
                            [&](Rng &Rr) { return randomInputs(K, Rr); });
  // All-ones + 1 ripples the carry through all four words.
  Bignum Max = Bignum::powerOfTwo(256) - Bignum(1);
  auto Out = interpretLowered(L, {Max, Bignum(1)});
  EXPECT_TRUE(Out[0].isOne());
  EXPECT_TRUE(Out[1].isZero());
}

// Listing 4: the Barrett mulmod rewrite (built from the rules above plus
// the quad shift).
TEST(RewriteRules, ListingFourMulModStructure) {
  kernels::ScalarKernelSpec Spec{128, 0};
  Kernel K = kernels::buildMulModKernel(Spec);
  LoweredKernel L = lowerOnce(K);
  OpStats S = countOps(L.K);
  // Three multiplications: t = a*b, r1*mu, e*q (the last as mullow pair:
  // 1 mul + 2 mullows).
  EXPECT_EQ(S.count(OpKind::Mul), 4u + 4u + 1u);
  EXPECT_EQ(S.count(OpKind::MulLow), 2u);
  EXPECT_GE(S.count(OpKind::Shr), 2u) << "the two Barrett shifts";
}

// Shift lowering: all three regimes of the quad shift (k < w, k == w,
// k > w) against the oracle.
TEST(RewriteRules, ShiftRegimes) {
  for (unsigned Amount : {1u, 17u, 63u, 64u, 65u, 100u, 127u}) {
    Kernel K =
        twoInput(128, [&](Kernel &Kk, Builder &B, ValueId A, ValueId) {
          Kk.addOutput(B.shr(A, Amount), "r");
          Kk.addOutput(B.shl(A, Amount), "l");
        });
    checkRule(K, 709 + Amount, 60);
  }
}

// Select lowering selects both halves coherently.
TEST(RewriteRules, SelectLowersPerHalf) {
  Kernel K;
  K.Name = "sel";
  ValueId C = K.newValue(1, "c");
  K.addInput(C, "c");
  ValueId A = K.newValue(128, "a");
  K.addInput(A, "a");
  ValueId B = K.newValue(128, "b");
  K.addInput(B, "b");
  Builder Bld(K);
  K.addOutput(Bld.select(C, A, B), "o");
  checkRule(K, 720, 200);
}

// Bitwise ops lower half-wise.
TEST(RewriteRules, BitwiseLowerPerHalf) {
  Kernel K = twoInput(128, [](Kernel &Kk, Builder &B, ValueId A, ValueId Bb) {
    Kk.addOutput(B.bitAnd(A, Bb), "a");
    Kk.addOutput(B.bitOr(A, Bb), "o");
    Kk.addOutput(B.bitXor(A, Bb), "x");
  });
  checkRule(K, 721, 200);
}

// Constants split into half literals.
TEST(RewriteRules, ConstantsSplit) {
  Kernel K = twoInput(128, [](Kernel &Kk, Builder &B, ValueId A, ValueId) {
    ValueId C =
        B.constant(128, Bignum::fromHex("0x0123456789abcdef0011223344556677"));
    CarryResult S = B.add(A, C);
    Kk.addOutput(S.Value, "s");
  });
  checkRule(K, 722, 200);
}

// Zext into a double word: hi half becomes a constant zero.
TEST(RewriteRules, ZextLowers) {
  Kernel K;
  K.Name = "zx";
  ValueId C = K.newValue(1, "c");
  K.addInput(C, "c");
  Builder Bld(K);
  K.addOutput(Bld.zext(128, C), "o");
  checkRule(K, 723, 20);
}

// Concat of two half-width values becomes pure wiring.
TEST(RewriteRules, ConcatLowersToWiring) {
  Kernel K;
  K.Name = "cat";
  ValueId A = K.newValue(64, "a");
  K.addInput(A, "a");
  ValueId B = K.newValue(64, "b");
  K.addInput(B, "b");
  Builder Bld(K);
  K.addOutput(Bld.concat(A, B), "o");
  checkRule(K, 724, 200);
}
