//===- tests/rewrite/FuzzLowerTest.cpp - randomized rewrite fuzzing ------------===//
//
// Property fuzzing of the rewrite system: random straight-line kernels
// over wide values, lowered and simplified, must agree with the original
// semantics on random inputs. This covers op interactions the structured
// kernels never produce (flags feeding selects feeding multiplies, shifts
// of sums, nested splits, ...).
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "ir/Builder.h"
#include "rewrite/Simplify.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::ir;
using namespace moma::rewrite;
using namespace moma::testutil;
using mw::Bignum;

namespace {

/// Builds a random kernel: NumInputs wide inputs, Steps random statements
/// drawing operands from the live wide values and flags, and two outputs.
Kernel randomKernel(unsigned Width, unsigned NumInputs, unsigned Steps,
                    Rng &R) {
  Kernel K;
  K.Name = "fuzz";
  Builder B(K);
  std::vector<ValueId> Wide;  // values of exactly Width bits
  std::vector<ValueId> Flags; // 1-bit values

  for (unsigned I = 0; I < NumInputs; ++I) {
    ValueId V = K.newValue(Width, "in" + std::to_string(I));
    K.addInput(V, "in" + std::to_string(I));
    Wide.push_back(V);
  }

  auto PickWide = [&] { return Wide[R.below(Wide.size())]; };

  for (unsigned S = 0; S < Steps; ++S) {
    switch (R.below(12)) {
    case 0: {
      CarryResult A = B.add(PickWide(), PickWide(),
                            Flags.empty() ? NoValue
                                          : Flags[R.below(Flags.size())]);
      Wide.push_back(A.Value);
      Flags.push_back(A.Carry);
      break;
    }
    case 1: {
      CarryResult D = B.sub(PickWide(), PickWide());
      Wide.push_back(D.Value);
      Flags.push_back(D.Carry);
      break;
    }
    case 2: {
      HiLoResult M = B.mul(PickWide(), PickWide());
      Wide.push_back(M.Hi);
      Wide.push_back(M.Lo);
      break;
    }
    case 3:
      Wide.push_back(B.mulLow(PickWide(), PickWide()));
      break;
    case 4:
      Flags.push_back(B.lt(PickWide(), PickWide()));
      break;
    case 5:
      Flags.push_back(B.eq(PickWide(), PickWide()));
      break;
    case 6:
      if (!Flags.empty()) {
        Wide.push_back(B.select(Flags[R.below(Flags.size())], PickWide(),
                                PickWide()));
      }
      break;
    case 7:
      Wide.push_back(B.shr(PickWide(), 1 + R.below(Width - 1)));
      break;
    case 8:
      Wide.push_back(B.shl(PickWide(), 1 + R.below(Width - 1)));
      break;
    case 9: {
      switch (R.below(3)) {
      case 0:
        Wide.push_back(B.bitAnd(PickWide(), PickWide()));
        break;
      case 1:
        Wide.push_back(B.bitOr(PickWide(), PickWide()));
        break;
      default:
        Wide.push_back(B.bitXor(PickWide(), PickWide()));
        break;
      }
      break;
    }
    case 10: {
      HiLoResult Sp = B.split(PickWide());
      Wide.push_back(B.concat(Sp.Hi, Sp.Lo)); // reassemble to keep widths
      break;
    }
    default:
      Wide.push_back(
          B.constant(Width, Bignum::random(R, Bignum::powerOfTwo(Width))));
      break;
    }
    if (!Flags.empty() && R.below(4) == 0)
      Flags.push_back(B.logicalNot(Flags[R.below(Flags.size())]));
  }

  K.addOutput(Wide.back(), "out0");
  K.addOutput(Wide[Wide.size() / 2], "out1");
  if (!Flags.empty())
    K.addOutput(Flags.back(), "outf");
  return K;
}

struct FuzzCase {
  unsigned Width;
  unsigned Target;
  unsigned Steps;
  std::uint64_t Seed;
};

class FuzzLower : public testing::TestWithParam<FuzzCase> {};

} // namespace

TEST_P(FuzzLower, LoweredAndSimplifiedAgree) {
  const FuzzCase &C = GetParam();
  // Per-case default seed, overridable through MOMA_TEST_SEED; failures
  // report the seed via the SeededRng trace.
  SeededRng Gen(C.Seed);
  for (int Round = 0; Round < 8; ++Round) {
    Kernel K = randomKernel(C.Width, 3, C.Steps, Gen);
    ASSERT_TRUE(verify(K).empty()) << printKernel(K);

    LowerOptions Opts;
    Opts.TargetWordBits = C.Target;
    Opts.MulAlg = (Round & 1) ? mw::MulAlgorithm::Karatsuba
                              : mw::MulAlgorithm::Schoolbook;
    LoweredKernel L = lowerToWords(K, Opts);
    simplifyLowered(L);
    ASSERT_TRUE(verify(L.K).empty());
    EXPECT_LE(L.K.maxBits(), C.Target);

    Rng R(Gen.seed() * 31 + Round);
    expectLoweringEquivalence(K, L, R, 20,
                              [&](Rng &Rr) { return randomInputs(K, Rr); });
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FuzzLower,
    testing::Values(FuzzCase{128, 64, 12, 0xF001},
                    FuzzCase{128, 64, 30, 0xF002},
                    FuzzCase{256, 64, 12, 0xF003},
                    FuzzCase{256, 64, 25, 0xF004},
                    FuzzCase{512, 64, 10, 0xF005},
                    FuzzCase{128, 32, 15, 0xF006},
                    FuzzCase{256, 16, 10, 0xF007}),
    [](const testing::TestParamInfo<FuzzCase> &Info) {
      return "w" + std::to_string(Info.param.Width) + "_t" +
             std::to_string(Info.param.Target) + "_s" +
             std::to_string(Info.param.Steps);
    });
