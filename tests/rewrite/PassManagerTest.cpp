//===- tests/rewrite/PassManagerTest.cpp - pass pipeline unit tests -------===//
//
// The composable pass manager that replaced the Simplify monolith: catalog
// and spec parsing, per-pass semantic preservation on randomized kernels,
// the non-convergence diagnostic, and golden op-count ablations showing
// what the extended passes (CSE, interval range analysis, dead-port
// elimination) buy on the representative kernel classes.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "codegen/CEmitter.h"
#include "field/PrimeGen.h"
#include "ir/Builder.h"
#include "kernels/ScalarKernels.h"
#include "rewrite/PassManager.h"
#include "rewrite/Passes.h"
#include "rewrite/PlanOptions.h"
#include "rewrite/Simplify.h"
#include "rewrite/Stats.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace moma;
using namespace moma::ir;
using namespace moma::rewrite;
using namespace moma::testutil;
using mw::Bignum;

namespace {

/// A compact version of the FuzzLowerTest random-kernel generator: enough
/// op diversity to exercise every pass's rewrite rules.
Kernel randomKernel(unsigned Width, unsigned Steps, Rng &R) {
  Kernel K;
  K.Name = "passfuzz";
  Builder B(K);
  std::vector<ValueId> Wide;
  std::vector<ValueId> Flags;
  for (unsigned I = 0; I < 3; ++I) {
    ValueId V = K.newValue(Width, "in" + std::to_string(I));
    K.addInput(V, "in" + std::to_string(I));
    Wide.push_back(V);
  }
  auto Pick = [&] { return Wide[R.below(Wide.size())]; };
  for (unsigned S = 0; S < Steps; ++S) {
    switch (R.below(10)) {
    case 0: {
      CarryResult A = B.add(Pick(), Pick(),
                            Flags.empty() ? NoValue
                                          : Flags[R.below(Flags.size())]);
      Wide.push_back(A.Value);
      Flags.push_back(A.Carry);
      break;
    }
    case 1: {
      CarryResult D = B.sub(Pick(), Pick());
      Wide.push_back(D.Value);
      Flags.push_back(D.Carry);
      break;
    }
    case 2: {
      HiLoResult M = B.mul(Pick(), Pick());
      Wide.push_back(M.Hi);
      Wide.push_back(M.Lo);
      break;
    }
    case 3:
      Wide.push_back(B.mulLow(Pick(), Pick()));
      break;
    case 4:
      Flags.push_back(B.lt(Pick(), Pick()));
      break;
    case 5:
      if (!Flags.empty())
        Wide.push_back(B.select(Flags[R.below(Flags.size())], Pick(), Pick()));
      break;
    case 6:
      Wide.push_back(B.shr(Pick(), 1 + R.below(Width - 1)));
      break;
    case 7:
      Wide.push_back(B.bitXor(Pick(), Pick()));
      break;
    case 8: {
      HiLoResult Sp = B.split(Pick());
      Wide.push_back(B.concat(Sp.Hi, Sp.Lo));
      break;
    }
    default:
      Wide.push_back(
          B.constant(Width, Bignum::random(R, Bignum::powerOfTwo(Width))));
      break;
    }
  }
  K.addOutput(Wide.back(), "out0");
  K.addOutput(Wide[Wide.size() / 2], "out1");
  if (!Flags.empty())
    K.addOutput(Flags.back(), "outf");
  return K;
}

/// A pass that claims work every run without touching the kernel: the
/// pipeline can never reach its fixed point, so MaxIters must fire.
struct NeverSettlesPass : Pass {
  const char *name() const override { return "neversettles"; }
  PassResult run(ir::Kernel &K, AnalysisCache &AC) override {
    (void)K;
    (void)AC;
    PassResult R;
    R.Changes = 1;
    return R;
  }
};

} // namespace

TEST(PassManager, CatalogAndSpecParsing) {
  std::vector<std::string> Names = passCatalog();
  ASSERT_EQ(Names.size(), 8u);
  for (const std::string &N : Names) {
    std::unique_ptr<Pass> P = createPass(N);
    ASSERT_NE(P, nullptr) << N;
    EXPECT_EQ(N, P->name());
  }
  EXPECT_EQ(createPass("nosuchpass"), nullptr);

  PassPipeline Def, DefEmpty, Ext, Two, Bad;
  std::string Err;
  EXPECT_TRUE(parsePipeline("default", Def, &Err));
  EXPECT_EQ(Def.size(), 5u);
  EXPECT_TRUE(parsePipeline("", DefEmpty, &Err));
  EXPECT_EQ(DefEmpty.size(), 5u);
  EXPECT_TRUE(parsePipeline("extended", Ext, &Err));
  EXPECT_EQ(Ext.size(), 8u);
  EXPECT_TRUE(parsePipeline("cse,dce", Two, &Err));
  EXPECT_EQ(Two.size(), 2u);
  EXPECT_FALSE(parsePipeline("constfold,bogus", Bad, &Err));
  EXPECT_NE(Err.find("bogus"), std::string::npos);
}

// Every catalog pass, run alone over a lowered random kernel, must
// preserve the original wide semantics — including the port-word
// substitution plumbing when the pass rebuilds the kernel.
TEST(PassManager, EachPassAlonePreservesSemantics) {
  SeededRng Gen(0xA55E5);
  for (const std::string &Name : passCatalog()) {
    for (int Round = 0; Round < 4; ++Round) {
      unsigned Width = Round % 2 ? 256 : 128;
      Kernel K = randomKernel(Width, 16 + 4 * Round, Gen);
      ASSERT_TRUE(verify(K).empty()) << printKernel(K);

      LowerOptions Opts;
      Opts.TargetWordBits = 64;
      LoweredKernel L = lowerToWords(K, Opts);
      PassPipeline P;
      P.add(createPass(Name));
      PipelineStats S = P.runLowered(L);
      EXPECT_TRUE(S.Converged) << Name;
      ASSERT_TRUE(verify(L.K).empty()) << Name << "\n" << printKernel(L.K);

      Rng R(Gen.seed() * 127 + Round);
      ::testing::ScopedTrace Trace(__FILE__, __LINE__,
                                   ::testing::Message() << "pass " << Name);
      expectLoweringEquivalence(K, L, R, 10,
                                [&](Rng &Rr) { return randomInputs(K, Rr); });
    }
  }
}

// The "default" spec and the simplifyLowered wrapper must produce the
// same kernel, statement for statement.
TEST(PassManager, DefaultSpecMatchesSimplifyLowered) {
  kernels::ScalarKernelSpec Spec;
  Spec.ContainerBits = 256;
  Spec.ModBits = 250;
  Kernel K = kernels::buildMulModKernel(Spec);

  LoweredKernel A = lowerToWords(K);
  LoweredKernel B = lowerToWords(K);
  simplifyLowered(A);
  PassPipeline P;
  std::string Err;
  ASSERT_TRUE(parsePipeline("default", P, &Err)) << Err;
  P.runLowered(B);
  EXPECT_EQ(printKernel(A.K), printKernel(B.K));
  ASSERT_EQ(A.Inputs.size(), B.Inputs.size());
  for (size_t I = 0; I < A.Inputs.size(); ++I)
    EXPECT_EQ(A.Inputs[I].Words, B.Inputs[I].Words);
}

// Satellite regression: a pipeline that keeps reporting work must stop at
// MaxIters and say so on stderr, naming the kernel.
TEST(PassManager, NonConvergenceDiagnostic) {
  Kernel K;
  K.Name = "spinner";
  Builder B(K);
  ValueId V = K.newValue(64, "a");
  K.addInput(V, "a");
  K.addOutput(B.shr(V, 1), "out");

  PassPipeline P;
  P.add(std::make_unique<NeverSettlesPass>());
  ::testing::internal::CaptureStderr();
  PipelineStats S = P.run(K, /*MaxIters=*/4);
  std::string Diag = ::testing::internal::GetCapturedStderr();
  EXPECT_FALSE(S.Converged);
  EXPECT_EQ(S.Iterations, 4u);
  EXPECT_NE(Diag.find("did not converge"), std::string::npos) << Diag;
  EXPECT_NE(Diag.find("spinner"), std::string::npos) << Diag;
  EXPECT_NE(Diag.find("neversettles"), std::string::npos) << Diag;
}

// CSE must fold a commuted duplicate of an earlier statement and let DCE
// drop the survivor-less copy, without changing semantics.
TEST(PassManager, CseCollapsesCommutedDuplicates) {
  Kernel K;
  K.Name = "csedup";
  Builder B(K);
  ValueId A = K.newValue(64, "a");
  ValueId C = K.newValue(64, "b");
  K.addInput(A, "a");
  K.addInput(C, "b");
  ValueId X = B.mulLow(A, C);
  ValueId Y = B.mulLow(C, A); // commuted duplicate
  CarryResult Sum = B.add(X, Y);
  K.addOutput(Sum.Value, "out");

  Kernel Ref = K;
  PassPipeline P;
  std::string Err;
  ASSERT_TRUE(parsePipeline("cse,dce", P, &Err)) << Err;
  PipelineStats S = P.run(K);
  ASSERT_NE(S.pass("cse"), nullptr);
  EXPECT_GE(S.pass("cse")->Changes, 1u);
  EXPECT_LT(K.Body.size(), Ref.Body.size());

  SeededRng R(0xC5ED);
  for (int I = 0; I < 20; ++I) {
    std::vector<Bignum> In = randomInputs(Ref, R);
    EXPECT_EQ(interpret(Ref, In), interpret(K, In));
  }
}

// Golden op-count ablation: on the RNS decompose kernel the extended
// pipeline's range analysis (fed by the lowering's WordBounds table) and
// CSE must strictly reduce multiplies and add/subs versus the default
// pipeline — and stay semantically identical for genuine Barrett (q, mu)
// parameter pairs.
TEST(PassManager, ExtendedPipelineShrinksRnsDecompose) {
  kernels::ScalarKernelSpec Spec;
  Spec.ContainerBits = 256;
  Spec.ModBits = 60;
  Kernel K = kernels::buildRnsDecomposeKernel(Spec, /*WideWords=*/4);

  LoweredKernel Def = lowerToWords(K);
  LoweredKernel Ext = lowerToWords(K);
  ASSERT_FALSE(Ext.WordBounds.empty());
  PassPipeline PD = defaultPipeline();
  PassPipeline PE = extendedPipeline();
  PipelineStats SD = PD.runLowered(Def);
  PipelineStats SE = PE.runLowered(Ext);
  EXPECT_TRUE(SD.Converged);
  EXPECT_TRUE(SE.Converged);

  OpStats D = countOps(Def.K), E = countOps(Ext.K);
  EXPECT_LT(E.multiplies(), D.multiplies());
  EXPECT_LT(E.addSubs(), D.addSubs());
  EXPECT_LT(E.Total, D.Total);
  ASSERT_NE(SE.pass("range"), nullptr);
  EXPECT_GE(SE.pass("range")->Changes, 1u);
  ASSERT_NE(SE.pass("cse"), nullptr);
  EXPECT_GE(SE.pass("cse")->Changes, 1u);

  // The r0 < 3q style annotations are semantic preconditions: they hold
  // when gmu = floor(2^W / q) for an L-bit modulus, so the differential
  // check fixes a genuine pair and randomizes only the wide input.
  Bignum Q = field::nttPrime(60, 20);
  Bignum GMu = Bignum::powerOfTwo(256) / Q;
  SeededRng R(0xD1FF);
  auto MakeIn = [&](Rng &Rr) {
    std::vector<Bignum> In;
    for (const Param &P : K.inputs()) {
      if (P.Name == "q")
        In.push_back(Q);
      else if (P.Name == "gmu")
        In.push_back(GMu);
      else
        In.push_back(
            Bignum::random(Rr, Bignum::powerOfTwo(K.value(P.Id).KnownBits)));
    }
    return In;
  };
  expectLoweringEquivalence(K, Def, R, 25, MakeIn);
  expectLoweringEquivalence(K, Ext, R, 25, MakeIn);
}

// Same ablation on the fused-NTT element kernel: the butterfly's addmod
// carry chains give the interval analysis strictly fewer statements.
TEST(PassManager, ExtendedPipelineShrinksButterfly) {
  kernels::ScalarKernelSpec Spec;
  Spec.ContainerBits = 128;
  Spec.ModBits = 124;
  Kernel K = kernels::buildButterflyKernel(Spec);

  LoweredKernel Def = lowerToWords(K);
  LoweredKernel Ext = lowerToWords(K);
  PassPipeline PD = defaultPipeline();
  PassPipeline PE = extendedPipeline();
  PD.runLowered(Def);
  PE.runLowered(Ext);

  OpStats D = countOps(Def.K), E = countOps(Ext.K);
  EXPECT_LT(E.Total, D.Total);
  EXPECT_LE(E.multiplies(), D.multiplies());
  EXPECT_LE(E.addSubs(), D.addSubs());

  // Butterfly inputs must be reduced (x, y, w < q) and mu must be the
  // genuine Barrett constant for q.
  Bignum Q = Bignum::powerOfTwo(124) - Bignum(59);
  Bignum Mu = Bignum::powerOfTwo(2 * 124 + 3) / Q;
  SeededRng R(0xBF17);
  auto MakeIn = [&](Rng &Rr) {
    std::vector<Bignum> In;
    for (const Param &P : K.inputs()) {
      if (P.Name == "q")
        In.push_back(Q);
      else if (P.Name == "mu")
        In.push_back(Mu);
      else
        In.push_back(Bignum::random(Rr, Q));
    }
    return In;
  };
  expectLoweringEquivalence(K, Ext, R, 25, MakeIn);
}

// Dead-port elimination marks input words nothing reads; the emitters skip
// their loads and parameters while the port ABI keeps the slot.
TEST(PassManager, DeadPortWordsKeepAbiSlotsButSkipLoads) {
  Kernel K;
  K.Name = "deadhi";
  Builder B(K);
  ValueId A = K.newValue(128, "a");
  K.addInput(A, "a");
  HiLoResult Sp = B.split(A);
  (void)Sp.Hi; // only the low half reaches an output
  K.addOutput(Sp.Lo, "lo");

  LoweredKernel L = lowerToWords(K);
  PassPipeline P = extendedPipeline();
  PipelineStats S = P.runLowered(L);
  const PassStats *DP = S.pass("deadports");
  ASSERT_NE(DP, nullptr);
  EXPECT_GE(DP->Removed, 1u);

  ASSERT_EQ(L.Inputs.size(), 1u);
  const LoweredPort &Port = L.Inputs[0];
  ASSERT_EQ(Port.Words.size(), 2u);
  EXPECT_EQ(Port.storedWords(), 2u); // ABI unchanged
  EXPECT_TRUE(Port.isDeadWord(0));
  EXPECT_FALSE(Port.isDeadWord(1));

  codegen::EmittedKernel EK = codegen::emitC(L, codegen::CEmitOptions());
  EXPECT_NE(EK.Source.find("a[2]"), std::string::npos) << EK.Source;
  EXPECT_NE(EK.Source.find("= a[1]"), std::string::npos) << EK.Source;
  EXPECT_EQ(EK.Source.find("= a[0]"), std::string::npos) << EK.Source;

  std::string Fn =
      codegen::emitScalarFunction(L, 64, "k", "static", "uint64_t");
  std::string Args = codegen::portLoadArgs(Port, "a");
  // One live scalar parameter for the port, matching the one load arg.
  EXPECT_EQ(Args, "a[1]");

  SeededRng R(0xDEAD);
  expectLoweringEquivalence(K, L, R, 10,
                            [&](Rng &Rr) { return randomInputs(K, Rr); });
}

// The PlanOptions pass-spec knob: "default" and "" name one plan, other
// specs extend the cache-key string, and lowerWithPlan honors the spec.
TEST(PassManager, PlanOptionsPassSpec) {
  PlanOptions A, B;
  B.Passes = "default";
  EXPECT_TRUE(A == B);
  EXPECT_EQ(A.str(), B.str());
  B.Passes = "extended";
  EXPECT_FALSE(A == B);
  EXPECT_NE(B.str().find("/p=extended"), std::string::npos);

  kernels::ScalarKernelSpec Spec;
  Spec.ContainerBits = 256;
  Spec.ModBits = 60;
  Kernel K = kernels::buildRnsDecomposeKernel(Spec, /*WideWords=*/4);
  LoweredKernel Def = lowerWithPlan(K, A);
  LoweredKernel Ext = lowerWithPlan(K, B);
  EXPECT_LT(countOps(Ext.K).Total, countOps(Def.K).Total);
}
