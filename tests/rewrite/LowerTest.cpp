//===- tests/rewrite/LowerTest.cpp - recursive lowering -----------------------===//
//
// End-to-end tests of lowerToWords: the full recursion of §3.2 ("multi-word
// modular arithmetic via recursion") across container widths, moduli,
// multiplication rules, target word widths, and kernels.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "field/PrimeGen.h"
#include "kernels/BlasKernels.h"
#include "kernels/ScalarKernels.h"
#include "rewrite/Simplify.h"
#include "rewrite/Stats.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::ir;
using namespace moma::rewrite;
using namespace moma::testutil;
using kernels::ScalarKernelSpec;
using mw::Bignum;

namespace {

/// Input generator for modular kernels: reduced a/b (and x/y), the real
/// modulus, and its Barrett mu.
struct FieldInputs {
  Bignum Q, Mu;
  unsigned NumData;
  explicit FieldInputs(unsigned MBits, unsigned NumData = 2,
                       std::uint64_t Seed = 2025)
      : NumData(NumData) {
    Q = field::nttPrime(MBits, 8, Seed);
    Mu = Bignum::powerOfTwo(2 * MBits + 3) / Q;
  }
  std::vector<Bignum> operator()(Rng &R) const {
    std::vector<Bignum> In;
    for (unsigned I = 0; I < NumData; ++I)
      In.push_back(Bignum::random(R, Q));
    In.push_back(Q);
    In.push_back(Mu);
    return In;
  }
  /// For kernels without a mu port (addmod/submod).
  std::vector<Bignum> noMu(Rng &R) const {
    std::vector<Bignum> In;
    for (unsigned I = 0; I < NumData; ++I)
      In.push_back(Bignum::random(R, Q));
    In.push_back(Q);
    return In;
  }
};

struct LowerCase {
  unsigned ContainerBits;
  unsigned ModBits; // 0 -> container - 4
  unsigned TargetBits;
  mw::MulAlgorithm Alg;
  bool Simplify;
};

std::string caseName(const testing::TestParamInfo<LowerCase> &Info) {
  const LowerCase &C = Info.param;
  std::string S = "c" + std::to_string(C.ContainerBits) + "_m" +
                  std::to_string(C.ModBits ? C.ModBits
                                           : C.ContainerBits - 4) +
                  "_w" + std::to_string(C.TargetBits) +
                  (C.Alg == mw::MulAlgorithm::Karatsuba ? "_kara" : "_school") +
                  (C.Simplify ? "_simplified" : "_raw");
  return S;
}

class LowerSweep : public testing::TestWithParam<LowerCase> {};

} // namespace

TEST_P(LowerSweep, MulModEquivalence) {
  const LowerCase &C = GetParam();
  ScalarKernelSpec Spec{C.ContainerBits, C.ModBits};
  Kernel K = kernels::buildMulModKernel(Spec);
  LowerOptions Opts;
  Opts.TargetWordBits = C.TargetBits;
  Opts.MulAlg = C.Alg;
  LoweredKernel L = lowerToWords(K, Opts);
  EXPECT_LE(L.K.maxBits(), C.TargetBits);
  if (C.Simplify)
    simplifyLowered(L);
  FieldInputs Gen(Spec.modBits(), 2, 33);
  Rng R(1000 + C.ContainerBits + C.TargetBits);
  int Iters = C.ContainerBits >= 512 ? 25 : 80;
  expectLoweringEquivalence(K, L, R, Iters, std::cref(Gen));
}

TEST_P(LowerSweep, ButterflyEquivalence) {
  const LowerCase &C = GetParam();
  ScalarKernelSpec Spec{C.ContainerBits, C.ModBits};
  Kernel K = kernels::buildButterflyKernel(Spec);
  LowerOptions Opts;
  Opts.TargetWordBits = C.TargetBits;
  Opts.MulAlg = C.Alg;
  LoweredKernel L = lowerToWords(K, Opts);
  if (C.Simplify)
    simplifyLowered(L);
  FieldInputs Gen(Spec.modBits(), 3, 34);
  Rng R(2000 + C.ContainerBits + C.TargetBits);
  int Iters = C.ContainerBits >= 512 ? 20 : 60;
  expectLoweringEquivalence(K, L, R, Iters, std::cref(Gen));
}

INSTANTIATE_TEST_SUITE_P(
    Widths, LowerSweep,
    testing::Values(
        // Power-of-two containers, one to four recursion rounds.
        LowerCase{128, 0, 64, mw::MulAlgorithm::Schoolbook, false},
        LowerCase{128, 0, 64, mw::MulAlgorithm::Schoolbook, true},
        LowerCase{128, 0, 64, mw::MulAlgorithm::Karatsuba, true},
        LowerCase{256, 0, 64, mw::MulAlgorithm::Schoolbook, true},
        LowerCase{256, 0, 64, mw::MulAlgorithm::Karatsuba, true},
        LowerCase{512, 0, 64, mw::MulAlgorithm::Schoolbook, true},
        LowerCase{512, 0, 64, mw::MulAlgorithm::Karatsuba, false},
        LowerCase{1024, 0, 64, mw::MulAlgorithm::Schoolbook, true},
        // Non-power-of-two ZKP-style widths in power-of-two containers
        // (381-bit BLS-like in 512, 753-bit MNT-like in 1024).
        LowerCase{512, 381, 64, mw::MulAlgorithm::Schoolbook, true},
        LowerCase{512, 377, 64, mw::MulAlgorithm::Karatsuba, true},
        LowerCase{1024, 753, 64, mw::MulAlgorithm::Schoolbook, true},
        // FHE-style 116-bit modulus in a 128 container (paper 5.2).
        LowerCase{128, 116, 64, mw::MulAlgorithm::Schoolbook, true},
        // Small machine words: the paper's §7 direction (16-bit words on
        // AI hardware) — deep recursion: 256 -> 16 is four rounds.
        LowerCase{128, 0, 32, mw::MulAlgorithm::Schoolbook, true},
        LowerCase{256, 0, 16, mw::MulAlgorithm::Schoolbook, true},
        LowerCase{256, 0, 16, mw::MulAlgorithm::Karatsuba, true}),
    caseName);

TEST(Lower, RoundsMatchLog2Ratio) {
  for (unsigned Container : {128u, 256u, 512u, 1024u}) {
    ScalarKernelSpec Spec{Container, 0};
    Kernel K = kernels::buildAddModKernel(Spec);
    LoweredKernel L = lowerToWords(K, {});
    unsigned ExpectRounds = 0;
    for (unsigned W = Container; W > 64; W /= 2)
      ++ExpectRounds;
    EXPECT_EQ(L.Rounds, ExpectRounds) << Container;
  }
}

TEST(Lower, PortWordCountsFollowKnownBits) {
  // 380-bit modulus in a 512 container: 8 container words, 6 stored.
  ScalarKernelSpec Spec{512, 380};
  Kernel K = kernels::buildMulModKernel(Spec);
  LoweredKernel L = lowerToWords(K, {});
  ASSERT_EQ(L.Inputs.size(), 4u);
  for (const LoweredPort &P : L.Inputs) {
    EXPECT_EQ(P.Words.size(), 8u);
    unsigned NonConst = 0;
    for (bool Z : P.IsConstZero)
      NonConst += !Z;
    EXPECT_EQ(NonConst, P.storedWords()) << P.Name;
  }
  EXPECT_EQ(L.Inputs[0].storedWords(), 6u);  // a: 380 bits
  EXPECT_EQ(L.Inputs[3].storedWords(), 6u);  // mu: 384 bits
  EXPECT_EQ(L.Outputs[0].storedWords(), 6u); // c < q
}

TEST(Lower, PrunedWordsAreTheTopOnes) {
  ScalarKernelSpec Spec{512, 380};
  Kernel K = kernels::buildAddModKernel(Spec);
  LoweredKernel L = lowerToWords(K, {});
  const LoweredPort &A = L.Inputs[0];
  // Words are msb-first: exactly the first two are statically zero.
  EXPECT_TRUE(A.IsConstZero[0]);
  EXPECT_TRUE(A.IsConstZero[1]);
  for (size_t I = 2; I < 8; ++I)
    EXPECT_FALSE(A.IsConstZero[I]);
}

TEST(Lower, AllBlasOpsLowerAndAgree) {
  for (auto Op : {kernels::BlasOp::VAdd, kernels::BlasOp::VSub,
                  kernels::BlasOp::VMul, kernels::BlasOp::Axpy}) {
    ScalarKernelSpec Spec{256, 0};
    Kernel K = kernels::buildBlasElementKernel(Op, Spec);
    LoweredKernel L = kernels::generateBlasKernel(Op, Spec);
    bool HasMu = Op == kernels::BlasOp::VMul || Op == kernels::BlasOp::Axpy;
    unsigned NumData = Op == kernels::BlasOp::Axpy ? 3u : 2u;
    FieldInputs Gen(Spec.modBits(), NumData, 35);
    Rng R(3000 + static_cast<unsigned>(Op));
    expectLoweringEquivalence(
        K, L, R, 40, [&](Rng &Rr) { return HasMu ? Gen(Rr) : Gen.noMu(Rr); });
  }
}

TEST(Lower, StatementCountGrowsWithRecursionDepth) {
  // The paper: "complexity increases significantly as we recursively
  // break down the data type".
  size_t Prev = 0;
  for (unsigned Container : {128u, 256u, 512u}) {
    ScalarKernelSpec Spec{Container, 0};
    Kernel K = kernels::buildMulModKernel(Spec);
    LoweredKernel L = lowerToWords(K, {});
    EXPECT_GT(L.K.size(), 3 * Prev) << "superlinear growth expected";
    Prev = L.K.size();
  }
}

TEST(Lower, RejectsBadTargetWidth) {
  ScalarKernelSpec Spec{128, 0};
  Kernel K = kernels::buildAddModKernel(Spec);
  LowerOptions Opts;
  Opts.TargetWordBits = 48; // not a power of two
  EXPECT_DEATH((void)lowerToWords(K, Opts), "power of two");
}

TEST(Lower, AlreadyNativeKernelIsUntouched) {
  ScalarKernelSpec Spec{64, 52};
  Kernel K = kernels::buildMulModKernel(Spec);
  LoweredKernel L = lowerToWords(K, {});
  EXPECT_EQ(L.Rounds, 0u);
  EXPECT_EQ(L.K.size(), K.size());
  ASSERT_EQ(L.Inputs[0].Words.size(), 1u);
}
