//===- tests/ir/InterpTest.cpp - opcode semantics ----------------------------===//
//
// Pins the interpreter's per-opcode semantics to Bignum arithmetic; the
// interpreter is the oracle every rewrite test relies on, so it gets its
// own direct coverage first.
//
//===----------------------------------------------------------------------===//

#include "ir/Interp.h"

#include "ir/Builder.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::ir;
using mw::Bignum;

namespace {

/// One-op kernel harness: W-bit inputs a, b; runs Fn to build the body.
struct OneOp {
  Kernel K;
  ValueId A, B;
  OneOp(unsigned W, unsigned KnownA = 0, unsigned KnownB = 0) {
    K.Name = "t";
    A = K.newValue(W, "a", KnownA);
    K.addInput(A, "a");
    B = K.newValue(W, "b", KnownB);
    K.addInput(B, "b");
  }
  std::vector<Bignum> run(const Bignum &X, const Bignum &Y) {
    return interpret(K, {X, Y});
  }
};

} // namespace

TEST(Interp, AddProducesCarryAndSum) {
  OneOp T(64);
  Builder B(T.K);
  CarryResult R = B.add(T.A, T.B);
  T.K.addOutput(R.Carry, "c");
  T.K.addOutput(R.Value, "s");
  auto Out = T.run(Bignum::fromHex("0xffffffffffffffff"), Bignum(1));
  EXPECT_TRUE(Out[0].isOne());
  EXPECT_TRUE(Out[1].isZero());
  Out = T.run(Bignum(2), Bignum(3));
  EXPECT_TRUE(Out[0].isZero());
  EXPECT_EQ(Out[1], Bignum(5));
}

TEST(Interp, AddWithCarryIn) {
  Kernel K;
  ValueId A = K.newValue(64, "a");
  K.addInput(A, "a");
  ValueId B = K.newValue(64, "b");
  K.addInput(B, "b");
  ValueId Cin = K.newValue(1, "ci");
  K.addInput(Cin, "ci");
  Builder Bld(K);
  CarryResult R = Bld.add(A, B, Cin);
  K.addOutput(R.Value, "s");
  K.addOutput(R.Carry, "c");
  auto Out = interpret(K, {Bignum(10), Bignum(20), Bignum(1)});
  EXPECT_EQ(Out[0], Bignum(31));
  EXPECT_TRUE(Out[1].isZero());
}

TEST(Interp, SubBorrowWraps) {
  OneOp T(64);
  Builder B(T.K);
  CarryResult R = B.sub(T.A, T.B);
  T.K.addOutput(R.Carry, "b");
  T.K.addOutput(R.Value, "d");
  auto Out = T.run(Bignum(3), Bignum(5));
  EXPECT_TRUE(Out[0].isOne());
  EXPECT_EQ(Out[1], Bignum::powerOfTwo(64) - Bignum(2));
}

TEST(Interp, MulSplitsHiLo) {
  OneOp T(64);
  Builder B(T.K);
  HiLoResult R = B.mul(T.A, T.B);
  T.K.addOutput(R.Hi, "h");
  T.K.addOutput(R.Lo, "l");
  Bignum X = Bignum::fromHex("0x123456789abcdef0");
  Bignum Y = Bignum::fromHex("0xfedcba9876543210");
  auto Out = T.run(X, Y);
  EXPECT_EQ((Out[0] << 64) + Out[1], X * Y);
}

TEST(Interp, ModularOpsMatchOracle) {
  Rng R(601);
  for (unsigned W : {64u, 128u, 256u}) {
    Kernel K;
    unsigned M = W - 4;
    ValueId A = K.newValue(W, "a", M);
    K.addInput(A, "a");
    ValueId B = K.newValue(W, "b", M);
    K.addInput(B, "b");
    ValueId Q = K.newValue(W, "q", M);
    K.addInput(Q, "q");
    ValueId Mu = K.newValue(W, "mu", M + 4);
    K.addInput(Mu, "mu");
    Builder Bld(K);
    K.addOutput(Bld.addMod(A, B, Q), "s");
    K.addOutput(Bld.subMod(A, B, Q), "d");
    K.addOutput(Bld.mulMod(A, B, Q, Mu, M), "p");

    Bignum QV = Bignum::powerOfTwo(M) - Bignum(59); // odd, full m bits
    Bignum MuV = Bignum::powerOfTwo(2 * M + 3) / QV;
    for (int I = 0; I < 50; ++I) {
      Bignum X = Bignum::random(R, QV), Y = Bignum::random(R, QV);
      auto Out = interpret(K, {X, Y, QV, MuV});
      EXPECT_EQ(Out[0], (X + Y) % QV);
      EXPECT_EQ(Out[1], X.subMod(Y, QV));
      EXPECT_EQ(Out[2], (X * Y) % QV);
    }
  }
}

TEST(Interp, ComparisonsAndLogic) {
  OneOp T(64);
  Builder B(T.K);
  ValueId Lt = B.lt(T.A, T.B);
  ValueId Eq = B.eq(T.A, T.B);
  ValueId NotLt = B.logicalNot(Lt);
  ValueId AndR = B.bitAnd(Lt, Eq);
  ValueId OrR = B.bitOr(Lt, Eq);
  T.K.addOutput(Lt, "lt");
  T.K.addOutput(Eq, "eq");
  T.K.addOutput(NotLt, "nl");
  T.K.addOutput(AndR, "an");
  T.K.addOutput(OrR, "or");
  auto Out = T.run(Bignum(3), Bignum(7));
  EXPECT_TRUE(Out[0].isOne());  // 3 < 7
  EXPECT_TRUE(Out[1].isZero()); // 3 != 7
  EXPECT_TRUE(Out[2].isZero()); // !(3<7)
  EXPECT_TRUE(Out[3].isZero());
  EXPECT_TRUE(Out[4].isOne());
}

TEST(Interp, ShiftsAndBitwise) {
  OneOp T(128);
  Builder B(T.K);
  T.K.addOutput(B.shl(T.A, 5), "l");
  T.K.addOutput(B.shr(T.A, 5), "r");
  T.K.addOutput(B.bitXor(T.A, T.B), "x");
  Rng R(602);
  for (int I = 0; I < 50; ++I) {
    Bignum X = Bignum::randomBits(R, 1 + R.below(128));
    Bignum Y = Bignum::randomBits(R, 1 + R.below(128));
    auto Out = interpret(T.K, {X, Y});
    EXPECT_EQ(Out[0], (X << 5).truncate(128));
    EXPECT_EQ(Out[1], X >> 5);
    // Xor via limbs.
    Bignum Expect;
    for (int L = 1; L >= 0; --L)
      Expect = (Expect << 64) + Bignum(X.limb(L) ^ Y.limb(L));
    EXPECT_EQ(Out[2], Expect);
  }
}

TEST(Interp, SelectPicksByFlag) {
  Kernel K;
  ValueId C = K.newValue(1, "c");
  K.addInput(C, "c");
  ValueId A = K.newValue(64, "a");
  K.addInput(A, "a");
  ValueId B = K.newValue(64, "b");
  K.addInput(B, "b");
  Builder Bld(K);
  K.addOutput(Bld.select(C, A, B), "o");
  EXPECT_EQ(interpret(K, {Bignum(1), Bignum(7), Bignum(9)})[0], Bignum(7));
  EXPECT_EQ(interpret(K, {Bignum(0), Bignum(7), Bignum(9)})[0], Bignum(9));
}

TEST(Interp, SplitConcatRoundTrip) {
  OneOp T(256);
  Builder B(T.K);
  HiLoResult Sp = B.split(T.A);
  ValueId Back = B.concat(Sp.Hi, Sp.Lo);
  T.K.addOutput(Sp.Hi, "h");
  T.K.addOutput(Sp.Lo, "l");
  T.K.addOutput(Back, "b");
  Rng R(603);
  for (int I = 0; I < 50; ++I) {
    Bignum X = Bignum::randomBits(R, 1 + R.below(256));
    auto Out = interpret(T.K, {X, Bignum(0)});
    EXPECT_EQ(Out[0], X >> 128);
    EXPECT_EQ(Out[1], X.truncate(128));
    EXPECT_EQ(Out[2], X);
  }
}

TEST(Interp, RejectsOversizedInput) {
  OneOp T(64);
  Builder B(T.K);
  CarryResult R = B.add(T.A, T.B);
  T.K.addOutput(R.Value, "s");
  EXPECT_DEATH((void)interpret(T.K, {Bignum::powerOfTwo(70), Bignum(0)}),
               "exceeds");
}

TEST(Interp, RejectsKnownBitsViolation) {
  // Input declared with KnownBits 60 must reject a 64-bit value: Simplify
  // prunes based on that contract.
  OneOp T(64, /*KnownA=*/60, /*KnownB=*/64);
  Builder B(T.K);
  CarryResult R = B.add(T.A, T.B);
  T.K.addOutput(R.Value, "s");
  EXPECT_DEATH((void)interpret(T.K, {Bignum::powerOfTwo(63), Bignum(0)}),
               "KnownBits");
}

TEST(Interp, RejectsWrongInputCount) {
  OneOp T(64);
  Builder B(T.K);
  CarryResult R = B.add(T.A, T.B);
  T.K.addOutput(R.Value, "s");
  EXPECT_DEATH((void)interpret(T.K, {Bignum(1)}), "expected 2 inputs");
}
