//===- tests/ir/VerifierTest.cpp - failure injection --------------------------===//
//
// Malformed-IR detection: each test plants one specific defect and checks
// the verifier names it.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::ir;
using mw::Bignum;

namespace {

/// A well-formed baseline kernel: c = (a + b) mod q at 128 bits.
Kernel goodKernel() {
  Kernel K;
  K.Name = "good";
  ValueId A = K.newValue(128, "a", 124);
  K.addInput(A, "a");
  ValueId B = K.newValue(128, "b", 124);
  K.addInput(B, "b");
  ValueId Q = K.newValue(128, "q", 124);
  K.addInput(Q, "q");
  Builder Bld(K);
  K.addOutput(Bld.addMod(A, B, Q), "c");
  return K;
}

bool mentions(const std::vector<std::string> &Errs, const char *Needle) {
  for (const auto &E : Errs)
    if (E.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(Verifier, AcceptsWellFormedKernel) {
  EXPECT_TRUE(verify(goodKernel()).empty());
  EXPECT_TRUE(isWellFormed(goodKernel()));
}

TEST(Verifier, CatchesUseBeforeDefinition) {
  Kernel K = goodKernel();
  // Reference a value defined only later (the output of the addmod).
  Stmt S;
  S.Kind = OpKind::Copy;
  ValueId Fresh = K.newValue(128);
  S.Results = {Fresh};
  S.Operands = {K.outputs()[0].Id};
  K.Body.insert(K.Body.begin(), S);
  EXPECT_TRUE(mentions(verify(K), "before definition"));
}

TEST(Verifier, CatchesDoubleDefinition) {
  Kernel K = goodKernel();
  Stmt S;
  S.Kind = OpKind::Copy;
  S.Results = {K.outputs()[0].Id}; // already defined by the addmod
  S.Operands = {K.inputs()[0].Id};
  K.Body.push_back(S);
  EXPECT_TRUE(mentions(verify(K), "defined twice"));
}

TEST(Verifier, CatchesWidthMismatch) {
  Kernel K;
  ValueId A = K.newValue(128, "a");
  K.addInput(A, "a");
  ValueId B = K.newValue(64, "b");
  K.addInput(B, "b");
  Stmt S;
  S.Kind = OpKind::AddMod;
  S.Results = {K.newValue(128)};
  S.Operands = {A, B, A};
  K.Body.push_back(S);
  K.addOutput(S.Results[0], "c");
  EXPECT_TRUE(mentions(verify(K), "width mismatch"));
}

TEST(Verifier, CatchesNonFlagCarry) {
  Kernel K;
  ValueId A = K.newValue(64, "a");
  K.addInput(A, "a");
  Stmt S;
  S.Kind = OpKind::Add;
  S.Results = {K.newValue(64) /* carry must be 1-bit */, K.newValue(64)};
  S.Operands = {A, A};
  K.Body.push_back(S);
  K.addOutput(S.Results[1], "s");
  EXPECT_TRUE(mentions(verify(K), "carry/borrow result must be 1-bit"));
}

TEST(Verifier, CatchesBarrettHeadroomViolation) {
  Kernel K;
  ValueId A = K.newValue(128, "a");
  K.addInput(A, "a");
  ValueId Q = K.newValue(128, "q");
  K.addInput(Q, "q");
  ValueId Mu = K.newValue(128, "mu");
  K.addInput(Mu, "mu");
  Stmt S;
  S.Kind = OpKind::MulMod;
  S.Results = {K.newValue(128)};
  S.Operands = {A, A, Q, Mu};
  S.ModBits = 126; // needs <= 124
  K.Body.push_back(S);
  K.addOutput(S.Results[0], "c");
  EXPECT_TRUE(mentions(verify(K), "ModBits <= w-4"));
}

TEST(Verifier, CatchesShiftOutOfRange) {
  Kernel K;
  ValueId A = K.newValue(64, "a");
  K.addInput(A, "a");
  Stmt S;
  S.Kind = OpKind::Shr;
  S.Results = {K.newValue(64)};
  S.Operands = {A};
  S.Amount = 64;
  K.Body.push_back(S);
  K.addOutput(S.Results[0], "c");
  EXPECT_TRUE(mentions(verify(K), "shift amount out of range"));
}

TEST(Verifier, CatchesOversizedLiteral) {
  Kernel K;
  Stmt S;
  S.Kind = OpKind::Const;
  S.Results = {K.newValue(64)};
  S.Literal = Bignum::powerOfTwo(65);
  K.Body.push_back(S);
  K.addOutput(S.Results[0], "c");
  EXPECT_TRUE(mentions(verify(K), "literal does not fit"));
}

TEST(Verifier, CatchesMissingOutputs) {
  Kernel K;
  ValueId A = K.newValue(64, "a");
  K.addInput(A, "a");
  EXPECT_TRUE(mentions(verify(K), "no outputs"));
}

TEST(Verifier, CatchesUndefinedOutput) {
  Kernel K;
  ValueId A = K.newValue(64, "a");
  K.addInput(A, "a");
  K.addOutput(K.newValue(64), "c"); // never defined
  EXPECT_TRUE(mentions(verify(K), "never defined"));
}

TEST(Verifier, CatchesBadSelectCondition) {
  Kernel K;
  ValueId A = K.newValue(64, "a");
  K.addInput(A, "a");
  Stmt S;
  S.Kind = OpKind::Select;
  S.Results = {K.newValue(64)};
  S.Operands = {A /* 64-bit cond, must be 1 */, A, A};
  K.Body.push_back(S);
  K.addOutput(S.Results[0], "c");
  EXPECT_TRUE(mentions(verify(K), "condition must be 1-bit"));
}

TEST(Verifier, CatchesSplitWidthMismatch) {
  Kernel K;
  ValueId A = K.newValue(128, "a");
  K.addInput(A, "a");
  Stmt S;
  S.Kind = OpKind::Split;
  S.Results = {K.newValue(64), K.newValue(32)}; // halves must both be 64
  S.Operands = {A};
  K.Body.push_back(S);
  K.addOutput(S.Results[0], "h");
  EXPECT_TRUE(mentions(verify(K), "half the operand width"));
}

TEST(Verifier, CatchesWrongOperandCount) {
  Kernel K;
  ValueId A = K.newValue(64, "a");
  K.addInput(A, "a");
  Stmt S;
  S.Kind = OpKind::Add;
  S.Results = {K.newValue(1), K.newValue(64)};
  S.Operands = {A}; // needs 2 or 3
  K.Body.push_back(S);
  K.addOutput(S.Results[1], "s");
  EXPECT_TRUE(mentions(verify(K), "wrong operand count"));
}
