//===- tests/ir/IrTest.cpp - IR construction and printing --------------------===//

#include "ir/Builder.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

#include <set>

using namespace moma;
using namespace moma::ir;
using mw::Bignum;

namespace {

Kernel makeTinyKernel() {
  Kernel K;
  K.Name = "tiny";
  ValueId A = K.newValue(128, "a");
  K.addInput(A, "a");
  ValueId B = K.newValue(128, "b");
  K.addInput(B, "b");
  Builder Bld(K);
  CarryResult Sum = Bld.add(A, B);
  K.addOutput(Sum.Value, "s");
  K.addOutput(Sum.Carry, "c");
  return K;
}

} // namespace

TEST(Ir, ValuesCarryWidthAndKnownBits) {
  Kernel K;
  ValueId V = K.newValue(256, "x", 200);
  EXPECT_EQ(K.value(V).Bits, 256u);
  EXPECT_EQ(K.value(V).KnownBits, 200u);
  ValueId W = K.newValue(64);
  EXPECT_EQ(K.value(W).KnownBits, 64u) << "KnownBits defaults to Bits";
}

TEST(Ir, MaxBitsScansAllValues) {
  Kernel K = makeTinyKernel();
  EXPECT_EQ(K.maxBits(), 128u);
}

TEST(Ir, BuilderProducesExpectedShapes) {
  Kernel K;
  Builder B(K);
  ValueId X = K.newValue(64, "x");
  K.addInput(X, "x");
  ValueId Y = K.newValue(64, "y");
  K.addInput(Y, "y");

  CarryResult Add = B.add(X, Y);
  EXPECT_EQ(K.value(Add.Carry).Bits, 1u);
  EXPECT_EQ(K.value(Add.Value).Bits, 64u);

  HiLoResult Mul = B.mul(X, Y);
  EXPECT_EQ(K.value(Mul.Hi).Bits, 64u);
  EXPECT_EQ(K.value(Mul.Lo).Bits, 64u);

  ValueId F = B.lt(X, Y);
  EXPECT_EQ(K.value(F).Bits, 1u);

  HiLoResult Sp = B.split(X);
  EXPECT_EQ(K.value(Sp.Hi).Bits, 32u);
  EXPECT_EQ(K.value(Sp.Lo).Bits, 32u);

  ValueId Cat = B.concat(Sp.Hi, Sp.Lo);
  EXPECT_EQ(K.value(Cat).Bits, 64u);
}

TEST(Ir, SplitDistributesKnownBits) {
  Kernel K;
  Builder B(K);
  // 380 known bits in a 512 container: hi half knows 124, lo knows 256.
  ValueId X = K.newValue(512, "x", 380);
  K.addInput(X, "x");
  HiLoResult Sp = B.split(X);
  EXPECT_EQ(K.value(Sp.Hi).KnownBits, 124u);
  EXPECT_EQ(K.value(Sp.Lo).KnownBits, 256u);
}

TEST(Ir, PrinterMentionsEverything) {
  Kernel K = makeTinyKernel();
  std::string Text = printKernel(K);
  EXPECT_NE(Text.find("kernel tiny"), std::string::npos);
  EXPECT_NE(Text.find("a: u128"), std::string::npos);
  EXPECT_NE(Text.find("add"), std::string::npos);
  EXPECT_NE(Text.find("return"), std::string::npos);
}

TEST(Ir, PrinterShowsShiftAmountAndModBits) {
  Kernel K;
  Builder B(K);
  ValueId X = K.newValue(128, "x");
  K.addInput(X, "x");
  ValueId Q = K.newValue(128, "q", 124);
  K.addInput(Q, "q");
  ValueId Mu = K.newValue(128, "mu");
  K.addInput(Mu, "mu");
  ValueId Sh = B.shr(X, 17);
  ValueId Mm = B.mulMod(X, X, Q, Mu, 124);
  K.addOutput(Sh, "s");
  K.addOutput(Mm, "m");
  std::string Text = printKernel(K);
  EXPECT_NE(Text.find(", 17"), std::string::npos);
  EXPECT_NE(Text.find("(m=124)"), std::string::npos);
}

TEST(Ir, OpKindNamesAreUnique) {
  std::set<std::string> Names;
  for (int I = 0; I <= static_cast<int>(OpKind::Concat); ++I)
    Names.insert(opKindName(static_cast<OpKind>(I)));
  EXPECT_EQ(Names.size(), static_cast<size_t>(OpKind::Concat) + 1);
}

TEST(Ir, ConstantTracksLiteral) {
  Kernel K;
  Builder B(K);
  ValueId C = B.constant(128, Bignum::fromHex("0xdeadbeef"));
  K.addOutput(C, "c");
  ASSERT_EQ(K.Body.size(), 1u);
  EXPECT_EQ(K.Body[0].Kind, OpKind::Const);
  EXPECT_EQ(K.Body[0].Literal.toHex(), "0xdeadbeef");
  EXPECT_EQ(K.value(C).KnownBits, 32u);
}
