//===- tests/ntt/FourStepTest.cpp - four-step decomposition --------------------===//

#include "ntt/FourStep.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::ntt;
using field::PrimeField;
using mw::Bignum;

namespace {

template <unsigned W>
void fourStepMatchesRadix2(size_t N1, size_t N2, std::uint64_t Seed) {
  auto F = PrimeField<W>::evaluationField(24);
  FourStepPlan<W> Four(F, N1, N2);
  NttPlan<W> Direct(F, N1 * N2);
  Rng R(Seed);
  std::vector<typename PrimeField<W>::Element> X(N1 * N2), Out(N1 * N2);
  for (auto &E : X)
    E = F.fromBignum(Bignum::random(R, F.modulusBig()));
  auto Ref = X;
  Direct.forward(Ref.data());
  Four.forward(X.data(), Out.data());
  for (size_t I = 0; I < N1 * N2; ++I)
    ASSERT_EQ(Out[I], Ref[I]) << "index " << I << " (n1=" << N1
                              << ", n2=" << N2 << ")";
}

} // namespace

TEST(FourStep, SquareFactorization128) {
  fourStepMatchesRadix2<2>(16, 16, 1200);
  fourStepMatchesRadix2<2>(32, 32, 1201);
}

TEST(FourStep, RectangularFactorizations128) {
  fourStepMatchesRadix2<2>(4, 64, 1202);
  fourStepMatchesRadix2<2>(64, 4, 1203);
  fourStepMatchesRadix2<2>(2, 128, 1204);
}

TEST(FourStep, Width256) { fourStepMatchesRadix2<4>(16, 32, 1205); }
TEST(FourStep, Width384NonPow2Words) {
  fourStepMatchesRadix2<6>(8, 16, 1206);
}

TEST(FourStep, BatchMatchesSingle) {
  auto F = PrimeField<2>::evaluationField(24);
  FourStepPlan<2> Plan(F, 8, 16);
  sim::Device Dev;
  Rng R(1207);
  const size_t Batch = 5, N = 128;
  std::vector<PrimeField<2>::Element> X(N * Batch), Out(N * Batch),
      Singles(N * Batch);
  for (auto &E : X)
    E = F.fromBignum(Bignum::random(R, F.modulusBig()));
  Plan.forwardBatch(Dev, X.data(), Out.data(), Batch);
  for (size_t B = 0; B < Batch; ++B)
    Plan.forward(X.data() + B * N, Singles.data() + B * N);
  EXPECT_EQ(Out, Singles);
}

TEST(FourStep, TinyFactors) {
  // Degenerate tile shapes still agree with the direct transform.
  fourStepMatchesRadix2<2>(2, 2, 1208);
}
