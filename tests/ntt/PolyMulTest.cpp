//===- tests/ntt/PolyMulTest.cpp - NTT-based polynomial multiplication --------===//
//
// The convolution theorem in practice (paper §2.3): NTT-based polynomial
// products must match the schoolbook Eq. 11 oracle.
//
//===----------------------------------------------------------------------===//

#include "ntt/Ntt.h"
#include "ntt/ReferenceDft.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::ntt;
using field::PrimeField;
using mw::Bignum;

namespace {

template <unsigned W>
void polyMulMatchesSchoolbook(size_t DegA, size_t DegB, size_t PlanN,
                              std::uint64_t Seed) {
  auto F = PrimeField<W>::evaluationField(24);
  NttPlan<W> Plan(F, PlanN);
  Rng R(Seed);
  std::vector<Bignum> ABig(DegA + 1), BBig(DegB + 1);
  std::vector<typename PrimeField<W>::Element> A, B;
  for (auto &C : ABig) {
    C = Bignum::random(R, F.modulusBig());
    A.push_back(F.fromBignum(C));
  }
  for (auto &C : BBig) {
    C = Bignum::random(R, F.modulusBig());
    B.push_back(F.fromBignum(C));
  }
  auto C = polyMulNtt<W>(Plan, A, B);
  auto Ref = referencePolyMul(ABig, BBig, F.modulusBig());
  ASSERT_LE(Ref.size(), C.size());
  for (size_t I = 0; I < C.size(); ++I) {
    Bignum Expect = I < Ref.size() ? Ref[I] : Bignum(0);
    ASSERT_EQ(C[I].toBignum(), Expect) << "coefficient " << I;
  }
}

} // namespace

TEST(PolyMul, Matches128) { polyMulMatchesSchoolbook<2>(30, 32, 128, 970); }
TEST(PolyMul, Matches256) { polyMulMatchesSchoolbook<4>(15, 15, 64, 971); }
TEST(PolyMul, Matches384) { polyMulMatchesSchoolbook<6>(10, 20, 64, 972); }
TEST(PolyMul, UnbalancedDegrees) {
  polyMulMatchesSchoolbook<2>(1, 60, 128, 973);
}
TEST(PolyMul, FullPlanCapacity) {
  // deg(A) + deg(B) = PlanN - 1: the last coefficient lands exactly at the
  // end without cyclic wraparound.
  polyMulMatchesSchoolbook<2>(31, 32, 64, 974);
}

TEST(PolyMul, MulByConstantPolynomial) {
  auto F = PrimeField<2>::evaluationField(24);
  NttPlan<2> Plan(F, 64);
  Rng R(975);
  std::vector<PrimeField<2>::Element> A;
  for (int I = 0; I < 20; ++I)
    A.push_back(F.fromBignum(Bignum::random(R, F.modulusBig())));
  std::vector<PrimeField<2>::Element> K = {F.fromBignum(Bignum(3))};
  auto C = polyMulNtt<2>(Plan, A, K);
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(C[I], F.mul(A[I], K[0]));
}

TEST(PolyMul, CyclicWraparoundIsModXnMinus1) {
  // With deg(A)+deg(B) >= n the NTT computes the product mod (x^n - 1);
  // verify the wraparound explicitly (the negacyclic x^n + 1 variant,
  // DESIGN.md "Extensions", lives in ntt/Negacyclic.h).
  auto F = PrimeField<2>::evaluationField(24);
  size_t N = 16;
  NttPlan<2> Plan(F, N);
  Rng R(976);
  std::vector<Bignum> ABig(N), BBig(N);
  std::vector<PrimeField<2>::Element> A, B;
  for (size_t I = 0; I < N; ++I) {
    ABig[I] = Bignum::random(R, F.modulusBig());
    BBig[I] = Bignum::random(R, F.modulusBig());
    A.push_back(F.fromBignum(ABig[I]));
    B.push_back(F.fromBignum(BBig[I]));
  }
  auto C = polyMulNtt<2>(Plan, A, B);
  auto Full = referencePolyMul(ABig, BBig, F.modulusBig());
  for (size_t I = 0; I < N; ++I) {
    Bignum Expect = Full[I];
    if (I + N < Full.size())
      Expect = Expect.addMod(Full[I + N], F.modulusBig());
    EXPECT_EQ(C[I].toBignum(), Expect);
  }
}

TEST(PolyMul, RejectsOversizedInputs) {
  auto F = PrimeField<2>::evaluationField(24);
  NttPlan<2> Plan(F, 16);
  std::vector<PrimeField<2>::Element> A(17, F.one());
  EXPECT_DEATH((void)polyMulNtt<2>(Plan, A, A), "longer than the plan");
}
