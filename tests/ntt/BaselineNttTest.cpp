//===- tests/ntt/BaselineNttTest.cpp - GMP-like baseline NTT ------------------===//

#include "baselines/GmpLike.h"

#include "field/PrimeGen.h"
#include "field/PrimeField.h"
#include "ntt/Ntt.h"
#include "ntt/ReferenceDft.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::baselines;
using mw::Bignum;

TEST(GmpLikeNtt, RoundTrip) {
  Bignum Q = field::nttPrime(124, 24);
  GmpLikeNtt Plan(Q, 256);
  Rng R(980);
  std::vector<Bignum> X(256), Orig;
  for (auto &V : X)
    V = Bignum::random(R, Q);
  Orig = X;
  Plan.forward(X);
  EXPECT_NE(X, Orig);
  Plan.inverse(X);
  EXPECT_EQ(X, Orig);
}

TEST(GmpLikeNtt, MatchesReferenceDft) {
  Bignum Q = field::nttPrime(124, 24);
  GmpLikeNtt Plan(Q, 32);
  Rng R(981);
  std::vector<Bignum> X(32);
  for (auto &V : X)
    V = Bignum::random(R, Q);
  auto Ref = ntt::referenceDft(X, field::rootOfUnity(Q, 32), Q);
  Plan.forward(X);
  EXPECT_EQ(X, Ref);
}

TEST(GmpLikeNtt, AgreesWithMoMAEngine) {
  // The baseline and the fixed-width engine implement the same transform
  // (twiddle conventions included); Figure comparisons are apples-to-apples.
  Bignum Q = field::evalModulus(256, 24);
  GmpLikeNtt Baseline(Q, 128);
  field::PrimeField<4> F(Q);
  ntt::NttPlan<4> Fast(F, 128);
  Rng R(982);
  std::vector<Bignum> XBig(128);
  std::vector<field::PrimeField<4>::Element> X(128);
  for (size_t I = 0; I < 128; ++I) {
    XBig[I] = Bignum::random(R, Q);
    X[I] = F.fromBignum(XBig[I]);
  }
  Baseline.forward(XBig);
  Fast.forward(X.data());
  for (size_t I = 0; I < 128; ++I)
    EXPECT_EQ(X[I].toBignum(), XBig[I]);
}

TEST(GmpLikeNtt, RejectsBadSize) {
  Bignum Q = field::nttPrime(124, 24);
  EXPECT_DEATH((void)GmpLikeNtt(Q, 100), "power of two");
}
