//===- tests/ntt/NttPropertyTest.cpp - transform algebra properties ------------===//
//
// Property tests extending the NTT suites to the sizes and modulus class
// the runtime's batched engine serves: negacyclic psi-twist roundtrips and
// four-step vs direct agreement at n in {32, 256, 1024} over a full
// 128-bit modulus (three-word elements — the first width class past the
// paper's 128-bit container).
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "field/PrimeGen.h"
#include "ntt/FourStep.h"
#include "ntt/Negacyclic.h"
#include "ntt/ReferenceDft.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::ntt;
using namespace moma::testutil;
using field::PrimeField;
using mw::Bignum;

namespace {

/// A 128-bit NTT-friendly prime: 2-adicity 12 covers n = 1024 negacyclic
/// (which needs 2n | q - 1).
template <unsigned W> PrimeField<W> field128() {
  return PrimeField<W>(field::nttPrime(128, 12));
}

template <unsigned W>
void negacyclicRoundTrip(size_t N, std::uint64_t Seed) {
  auto F = field128<W>();
  ASSERT_EQ(F.modulusBig().bitWidth(), 128u);
  NegacyclicPlan<W> Plan(F, N);
  SeededRng R(Seed);
  std::vector<typename PrimeField<W>::Element> X(N);
  for (auto &E : X)
    E = F.fromBignum(Bignum::random(R, F.modulusBig()));
  auto Orig = X;
  Plan.forward(X.data());
  EXPECT_NE(X, Orig) << "forward psi-twist transform must move the data";
  Plan.inverse(X.data());
  ASSERT_EQ(X, Orig) << "psi-twist roundtrip at n = " << N;
}

template <unsigned W>
void fourStepMatchesDirect(size_t N1, size_t N2, std::uint64_t Seed) {
  auto F = field128<W>();
  FourStepPlan<W> Four(F, N1, N2);
  NttPlan<W> Direct(F, N1 * N2);
  SeededRng R(Seed);
  std::vector<typename PrimeField<W>::Element> X(N1 * N2), Out(N1 * N2);
  for (auto &E : X)
    E = F.fromBignum(Bignum::random(R, F.modulusBig()));
  auto Ref = X;
  Direct.forward(Ref.data());
  Four.forward(X.data(), Out.data());
  for (size_t I = 0; I < N1 * N2; ++I)
    ASSERT_EQ(Out[I], Ref[I])
        << "index " << I << " (n1=" << N1 << ", n2=" << N2 << ")";
}

} // namespace

// Negacyclic psi-twist roundtrip, 128-bit modulus, the runtime sizes.
TEST(NttProperty, NegacyclicRoundTrip32At128Bit) {
  negacyclicRoundTrip<3>(32, 0x1401);
}
TEST(NttProperty, NegacyclicRoundTrip256At128Bit) {
  negacyclicRoundTrip<3>(256, 0x1402);
}
TEST(NttProperty, NegacyclicRoundTrip1024At128Bit) {
  negacyclicRoundTrip<3>(1024, 0x1403);
}

// Negacyclic products still match the wrapped schoolbook result at the
// new modulus class (sampled small to keep the O(n^2) reference cheap).
TEST(NttProperty, NegacyclicMatchesSchoolbookAt128Bit) {
  auto F = field128<3>();
  const size_t N = 32;
  NegacyclicPlan<3> Plan(F, N);
  SeededRng R(0x1404);
  std::vector<Bignum> ABig(N), BBig(N);
  std::vector<PrimeField<3>::Element> A, B;
  for (size_t I = 0; I < N; ++I) {
    ABig[I] = Bignum::random(R, F.modulusBig());
    BBig[I] = Bignum::random(R, F.modulusBig());
    A.push_back(F.fromBignum(ABig[I]));
    B.push_back(F.fromBignum(BBig[I]));
  }
  auto C = polyMulNegacyclic<3>(Plan, A, B);
  auto Full = referencePolyMul(ABig, BBig, F.modulusBig());
  for (size_t I = 0; I < N; ++I) {
    Bignum Expect = Full[I];
    if (I + N < Full.size())
      Expect = Expect.subMod(Full[I + N], F.modulusBig());
    ASSERT_EQ(C[I].toBignum(), Expect) << "coefficient " << I;
  }
}

// Four-step agreement with the direct radix-2 transform at the same
// sizes: square and rectangular factorizations of each n.
TEST(NttProperty, FourStep32At128Bit) {
  fourStepMatchesDirect<3>(4, 8, 0x1411);
  fourStepMatchesDirect<3>(8, 4, 0x1412);
}
TEST(NttProperty, FourStep256At128Bit) {
  fourStepMatchesDirect<3>(16, 16, 0x1413);
  fourStepMatchesDirect<3>(4, 64, 0x1414);
}
TEST(NttProperty, FourStep1024At128Bit) {
  fourStepMatchesDirect<3>(32, 32, 0x1415);
  fourStepMatchesDirect<3>(8, 128, 0x1416);
}
