//===- tests/ntt/NegacyclicTest.cpp - x^n + 1 transforms -----------------------===//

#include "ntt/Negacyclic.h"

#include "ntt/ReferenceDft.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::ntt;
using field::PrimeField;
using mw::Bignum;

namespace {

template <unsigned W>
void negacyclicMatchesSchoolbook(size_t N, std::uint64_t Seed) {
  auto F = PrimeField<W>::evaluationField(24);
  NegacyclicPlan<W> Plan(F, N);
  Rng R(Seed);
  std::vector<Bignum> ABig(N), BBig(N);
  std::vector<typename PrimeField<W>::Element> A, B;
  for (size_t I = 0; I < N; ++I) {
    ABig[I] = Bignum::random(R, F.modulusBig());
    BBig[I] = Bignum::random(R, F.modulusBig());
    A.push_back(F.fromBignum(ABig[I]));
    B.push_back(F.fromBignum(BBig[I]));
  }
  auto C = polyMulNegacyclic<W>(Plan, A, B);
  // In Z_q[x]/(x^n + 1), coefficient i of the full product wraps as
  // c[i] = full[i] - full[i+n].
  auto Full = referencePolyMul(ABig, BBig, F.modulusBig());
  for (size_t I = 0; I < N; ++I) {
    Bignum Expect = Full[I];
    if (I + N < Full.size())
      Expect = Expect.subMod(Full[I + N], F.modulusBig());
    ASSERT_EQ(C[I].toBignum(), Expect) << "coefficient " << I;
  }
}

} // namespace

TEST(Negacyclic, RoundTrip) {
  auto F = PrimeField<2>::evaluationField(24);
  NegacyclicPlan<2> Plan(F, 128);
  Rng R(1100);
  std::vector<PrimeField<2>::Element> X(128);
  for (auto &E : X)
    E = F.fromBignum(Bignum::random(R, F.modulusBig()));
  auto Orig = X;
  Plan.forward(X.data());
  EXPECT_NE(X, Orig);
  Plan.inverse(X.data());
  EXPECT_EQ(X, Orig);
}

TEST(Negacyclic, MatchesSchoolbook128) {
  negacyclicMatchesSchoolbook<2>(16, 1101);
  negacyclicMatchesSchoolbook<2>(64, 1102);
}
TEST(Negacyclic, MatchesSchoolbook256) {
  negacyclicMatchesSchoolbook<4>(32, 1103);
}
TEST(Negacyclic, MatchesSchoolbook384) {
  negacyclicMatchesSchoolbook<6>(16, 1104);
}

TEST(Negacyclic, XTimesXnMinus1IsMinusOne) {
  // x * x^(n-1) = x^n = -1 in the ring.
  auto F = PrimeField<2>::evaluationField(24);
  size_t N = 32;
  NegacyclicPlan<2> Plan(F, N);
  std::vector<PrimeField<2>::Element> X(N, F.zero()), Y(N, F.zero());
  X[1] = F.one();
  Y[N - 1] = F.one();
  auto C = polyMulNegacyclic<2>(Plan, X, Y);
  EXPECT_EQ(C[0].toBignum(), F.modulusBig() - Bignum(1)) << "-1 expected";
  for (size_t I = 1; I < N; ++I)
    EXPECT_TRUE(C[I].isZero());
}

TEST(Negacyclic, DiffersFromCyclic) {
  // The same inputs through cyclic and negacyclic products must disagree
  // whenever wraparound occurs.
  auto F = PrimeField<2>::evaluationField(24);
  size_t N = 16;
  NegacyclicPlan<2> NPlan(F, N);
  NttPlan<2> CPlan(F, N);
  Rng R(1105);
  std::vector<PrimeField<2>::Element> A(N), B(N);
  for (size_t I = 0; I < N; ++I) {
    A[I] = F.fromBignum(Bignum::random(R, F.modulusBig()));
    B[I] = F.fromBignum(Bignum::random(R, F.modulusBig()));
  }
  auto CNega = polyMulNegacyclic<2>(NPlan, A, B);
  auto CCycl = polyMulNtt<2>(CPlan, A, B);
  EXPECT_NE(CNega, CCycl);
}

TEST(Negacyclic, RequiresTwiceTheTwoAdicity) {
  // A field with 2-adicity exactly log2(n) supports the cyclic n-point
  // transform but not the negacyclic one.
  auto F = PrimeField<2>(field::nttPrime(124, 5));
  NttPlan<2> Ok(F, 32);
  (void)Ok;
  EXPECT_DEATH((void)NegacyclicPlan<2>(F, 32), "2-adicity");
}
