//===- tests/ntt/NttTest.cpp - NTT engine -------------------------------------===//
//
// The transform properties behind paper §5.3: inversion, agreement with
// the direct Eq. 12 evaluation, linearity, batch and stage-parallel
// execution equivalence — parameterized over widths and sizes.
//
//===----------------------------------------------------------------------===//

#include "ntt/Ntt.h"

#include "ntt/ReferenceDft.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::ntt;
using field::PrimeField;
using mw::Bignum;

namespace {

template <unsigned W>
std::vector<typename PrimeField<W>::Element>
randomVector(const PrimeField<W> &F, size_t N, Rng &R) {
  std::vector<typename PrimeField<W>::Element> X(N);
  for (auto &E : X)
    E = F.fromBignum(Bignum::random(R, F.modulusBig()));
  return X;
}

template <unsigned W> void roundTrip(size_t N, std::uint64_t Seed) {
  auto F = PrimeField<W>::evaluationField(24);
  NttPlan<W> Plan(F, N);
  Rng R(Seed);
  auto X = randomVector<W>(F, N, R);
  auto Orig = X;
  Plan.forward(X.data());
  EXPECT_NE(X, Orig) << "forward must not be the identity";
  Plan.inverse(X.data());
  EXPECT_EQ(X, Orig) << "INTT(NTT(x)) != x";
}

template <unsigned W> void matchesReference(size_t N, std::uint64_t Seed) {
  auto F = PrimeField<W>::evaluationField(24);
  NttPlan<W> Plan(F, N);
  Rng R(Seed);
  auto X = randomVector<W>(F, N, R);
  std::vector<Bignum> XBig;
  for (const auto &E : X)
    XBig.push_back(E.toBignum());
  Bignum Omega = F.nthRoot(N).toBignum();
  std::vector<Bignum> Ref = referenceDft(XBig, Omega, F.modulusBig());
  Plan.forward(X.data());
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(X[I].toBignum(), Ref[I]) << "index " << I;
}

} // namespace

TEST(Ntt, RoundTrip128) {
  for (size_t N : {2u, 4u, 16u, 256u, 1024u})
    roundTrip<2>(N, 900 + N);
}
TEST(Ntt, RoundTrip256) {
  for (size_t N : {4u, 64u, 512u})
    roundTrip<4>(N, 910 + N);
}
TEST(Ntt, RoundTrip384) { roundTrip<6>(128, 920); }
TEST(Ntt, RoundTrip768) { roundTrip<12>(64, 930); }

TEST(Ntt, MatchesReferenceDft128) {
  for (size_t N : {2u, 8u, 32u, 128u})
    matchesReference<2>(N, 940 + N);
}
TEST(Ntt, MatchesReferenceDft256) { matchesReference<4>(64, 950); }

TEST(Ntt, ForwardOfDeltaIsAllOnes) {
  // NTT(delta_0) = (1, 1, ..., 1): each evaluation sees x(0)*w^0.
  auto F = PrimeField<2>::evaluationField(24);
  NttPlan<2> Plan(F, 64);
  std::vector<PrimeField<2>::Element> X(64, F.zero());
  X[0] = F.one();
  Plan.forward(X.data());
  for (const auto &E : X)
    EXPECT_EQ(E, F.one());
}

TEST(Ntt, Linearity) {
  auto F = PrimeField<2>::evaluationField(24);
  NttPlan<2> Plan(F, 128);
  Rng R(960);
  auto X = randomVector<2>(F, 128, R);
  auto Y = randomVector<2>(F, 128, R);
  auto C = F.fromBignum(Bignum::random(R, F.modulusBig()));
  // Z = c*X + Y computed before the transform...
  std::vector<PrimeField<2>::Element> Z(128);
  for (size_t I = 0; I < 128; ++I)
    Z[I] = F.add(F.mul(C, X[I]), Y[I]);
  Plan.forward(Z.data());
  // ... must equal c*NTT(X) + NTT(Y).
  Plan.forward(X.data());
  Plan.forward(Y.data());
  for (size_t I = 0; I < 128; ++I)
    EXPECT_EQ(Z[I], F.add(F.mul(C, X[I]), Y[I]));
}

TEST(Ntt, BatchMatchesSingle) {
  auto F = PrimeField<2>::evaluationField(24);
  NttPlan<2> Plan(F, 256);
  sim::Device Dev;
  Rng R(961);
  const size_t Batch = 9;
  auto Flat = randomVector<2>(F, 256 * Batch, R);
  auto Singles = Flat;
  Plan.forwardBatch(Dev, Flat.data(), Batch);
  for (size_t B = 0; B < Batch; ++B)
    Plan.forward(Singles.data() + B * 256);
  EXPECT_EQ(Flat, Singles);
  Plan.inverseBatch(Dev, Flat.data(), Batch);
  for (size_t B = 0; B < Batch; ++B)
    Plan.inverse(Singles.data() + B * 256);
  EXPECT_EQ(Flat, Singles);
}

TEST(Ntt, StageParallelMatchesSerial) {
  // The CUDA-mapping execution (one virtual thread per butterfly, one
  // launch per stage) must produce the same transform.
  auto F = PrimeField<2>::evaluationField(24);
  NttPlan<2> Plan(F, 512);
  sim::Device Dev;
  Rng R(962);
  auto X = randomVector<2>(F, 512, R);
  auto Y = X;
  Plan.forward(X.data());
  Plan.forwardStageParallel(Dev, Y.data());
  EXPECT_EQ(X, Y);
}

TEST(Ntt, KaratsubaFieldGivesSameTransform) {
  Bignum Q = field::evalModulus(256, 24);
  PrimeField<4> FS(Q, mw::MulAlgorithm::Schoolbook);
  PrimeField<4> FK(Q, mw::MulAlgorithm::Karatsuba);
  NttPlan<4> PS(FS, 128), PK(FK, 128);
  Rng R(963);
  auto X = randomVector<4>(FS, 128, R);
  auto Y = X;
  PS.forward(X.data());
  PK.forward(Y.data());
  EXPECT_EQ(X, Y);
}

TEST(Ntt, ButterflyCountFormula) {
  auto F = PrimeField<2>::evaluationField(24);
  NttPlan<2> P1(F, 256);
  EXPECT_EQ(P1.butterflies(), 256u / 2 * 8);
  NttPlan<2> P2(F, 4096);
  EXPECT_EQ(P2.butterflies(), 4096u / 2 * 12);
}

TEST(Ntt, RejectsNonPowerOfTwoSize) {
  auto F = PrimeField<2>::evaluationField(24);
  EXPECT_DEATH((void)NttPlan<2>(F, 100), "power of two");
}

TEST(Ntt, RejectsSizeBeyondTwoAdicity) {
  // Field with 2-adicity 8 cannot host a 2^9-point NTT.
  auto F = PrimeField<2>(field::nttPrime(124, 8));
  EXPECT_DEATH((void)NttPlan<2>(F, 1 << 9), "2-adicity");
}
