//===- tests/kernels/KernelsTest.cpp - kernel builders -----------------------===//

#include "kernels/BlasKernels.h"
#include "kernels/BlasRuntime.h"
#include "kernels/NttKernels.h"
#include "kernels/ScalarKernels.h"

#include "ir/Interp.h"
#include "ir/Verifier.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::ir;
using namespace moma::kernels;
using mw::Bignum;

TEST(ScalarKernels, AllBuildersVerify) {
  for (unsigned Bits : {64u, 128u, 256u, 512u, 1024u}) {
    ScalarKernelSpec Spec{Bits, 0};
    EXPECT_TRUE(verify(buildAddModKernel(Spec)).empty()) << Bits;
    EXPECT_TRUE(verify(buildSubModKernel(Spec)).empty()) << Bits;
    EXPECT_TRUE(verify(buildMulModKernel(Spec)).empty()) << Bits;
    EXPECT_TRUE(verify(buildMulFullKernel(Spec)).empty()) << Bits;
    EXPECT_TRUE(verify(buildButterflyKernel(Spec)).empty()) << Bits;
    EXPECT_TRUE(verify(buildAxpyKernel(Spec)).empty()) << Bits;
  }
}

TEST(ScalarKernels, ButterflySemantics) {
  // x' = x + w*y, y' = x - w*y (mod q).
  ScalarKernelSpec Spec{128, 0};
  Kernel K = buildButterflyKernel(Spec);
  Bignum Q = Bignum::powerOfTwo(124) - Bignum(59);
  Bignum Mu = Bignum::powerOfTwo(2 * 124 + 3) / Q;
  Rng R(801);
  for (int I = 0; I < 30; ++I) {
    Bignum X = Bignum::random(R, Q), Y = Bignum::random(R, Q),
           W = Bignum::random(R, Q);
    auto Out = interpret(K, {X, Y, W, Q, Mu});
    Bignum T = W.mulMod(Y, Q);
    EXPECT_EQ(Out[0], X.addMod(T, Q));
    EXPECT_EQ(Out[1], X.subMod(T, Q));
  }
}

TEST(ScalarKernels, AxpySemantics) {
  ScalarKernelSpec Spec{128, 0};
  Kernel K = buildAxpyKernel(Spec);
  Bignum Q = Bignum::powerOfTwo(124) - Bignum(59);
  Bignum Mu = Bignum::powerOfTwo(2 * 124 + 3) / Q;
  Rng R(802);
  for (int I = 0; I < 30; ++I) {
    Bignum A = Bignum::random(R, Q), X = Bignum::random(R, Q),
           Y = Bignum::random(R, Q);
    auto Out = interpret(K, {A, X, Y, Q, Mu});
    EXPECT_EQ(Out[0], A.mulMod(X, Q).addMod(Y, Q));
  }
}

TEST(ScalarKernels, RejectsTightModulus) {
  EXPECT_DEATH((void)buildMulModKernel(ScalarKernelSpec{128, 126}),
               "container - 4");
}

TEST(BlasKernels, NamesEncodeOpAndWidth) {
  Kernel K = buildBlasElementKernel(BlasOp::VMul, ScalarKernelSpec{256, 0});
  EXPECT_EQ(K.Name, "vmul_256");
  EXPECT_EQ(std::string(blasOpName(BlasOp::Axpy)), "axpy");
}

TEST(BlasKernels, GeneratePipelineProducesNativeKernels) {
  for (auto Op :
       {BlasOp::VAdd, BlasOp::VSub, BlasOp::VMul, BlasOp::Axpy}) {
    rewrite::LoweredKernel L =
        generateBlasKernel(Op, ScalarKernelSpec{256, 0});
    EXPECT_LE(L.K.maxBits(), 64u);
    EXPECT_TRUE(verify(L.K).empty());
  }
}

TEST(BlasRuntime, MatchesBignumOracle) {
  using field::PrimeField;
  auto F = PrimeField<4>::evaluationField(8);
  BlasRuntime<4> Blas(F);
  sim::Device Dev;
  Rng R(803);
  const Bignum &Q = F.modulusBig();
  size_t N = 257; // odd size exercises the chunked parallel loop tails

  std::vector<PrimeField<4>::Element> A(N), B(N), C;
  std::vector<Bignum> ABig(N), BBig(N);
  for (size_t I = 0; I < N; ++I) {
    ABig[I] = Bignum::random(R, Q);
    BBig[I] = Bignum::random(R, Q);
    A[I] = F.fromBignum(ABig[I]);
    B[I] = F.fromBignum(BBig[I]);
  }

  Blas.vadd(Dev, A, B, C);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(C[I].toBignum(), ABig[I].addMod(BBig[I], Q));

  Blas.vsub(Dev, A, B, C);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(C[I].toBignum(), ABig[I].subMod(BBig[I], Q));

  Blas.vmul(Dev, A, B, C);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(C[I].toBignum(), ABig[I].mulMod(BBig[I], Q));

  Bignum SBig = Bignum::random(R, Q);
  auto S = F.fromBignum(SBig);
  std::vector<PrimeField<4>::Element> Y = B;
  Blas.axpy(Dev, S, A, Y);
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Y[I].toBignum(), SBig.mulMod(ABig[I], Q).addMod(BBig[I], Q));
}

TEST(NttKernels, GenerateButterflyAcrossWidths) {
  for (unsigned Bits : {128u, 256u, 384u * 0 + 512u}) {
    rewrite::LoweredKernel L =
        generateButterflyKernel(ScalarKernelSpec{Bits, 0});
    EXPECT_LE(L.K.maxBits(), 64u);
    EXPECT_TRUE(verify(L.K).empty()) << Bits;
    ASSERT_EQ(L.Outputs.size(), 2u);
    EXPECT_EQ(L.Outputs[0].Name, "xo");
  }
}
