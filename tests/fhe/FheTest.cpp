//===- tests/fhe/FheTest.cpp - FHE layer & residue-form handles ----------------===//
//
// Coverage for the redesigned RNS surface (runtime/RnsTensor.h + the
// Dispatcher's tensor overloads) and the ciphertext layer built on it
// (fhe/Fhe.h), every arithmetic claim checked bit-exact against the
// arbitrary-precision oracle in fhe/Reference.h:
//
//  * RnsContext::subChain views: identity-stable caching (including
//    across context copies), correct prefix modulus/weights (decompose
//    -> recombine identity through a view), legal one-limb bottom rung;
//  * the tensor API: fromWide/toWide roundtrip, domain-tag state
//    machine, typed InvalidArgument on incongruent operands and
//    too-short rescale chains, stable dispatchErrorCodeName strings;
//  * ciphertext add / tensor-product multiply / rescale / relinearize
//    bit-exact vs the Bignum reference across both rings and
//    L in {2, 4, 8}, plus end-to-end decryption correctness on circuits
//    the toy parameters cover;
//  * the generated rnsresc kernel against the per-coefficient
//    (X - X mod q_last) / q_last identity;
//  * the lazy-NTT contract, pinned with exact dispatchStats()
//    arithmetic: a chain of k tensor products costs (k+2)L transforms
//    against the flat API's 3kL — saved = (2k-2)L — and a ciphertext
//    multiply whose operands came out of an earlier multiply dispatches
//    zero forward transforms for them;
//  * a differential-fuzz leg chaining 3-6 random ciphertext ops
//    (add / multiply+relinearize / rescale) with the device and the
//    oracle marched in lockstep;
//  * Server::submitCtMul serving products through the coalescer and the
//    typed InvalidRequest admission reply.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "fhe/Fhe.h"
#include "ntt/ReferenceDft.h"
#include "service/Server.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::fhe;
using namespace moma::runtime;
using namespace moma::testutil;
using mw::Bignum;
using rewrite::ExecBackend;
using rewrite::NttRing;

namespace {

/// One registry per test binary: identical kernel variants across tests
/// share compiled modules and the on-disk JIT cache.
KernelRegistry &registry() {
  static KernelRegistry Reg;
  return Reg;
}

rewrite::PlanOptions pinned(ExecBackend B, unsigned FuseDepth = 2) {
  rewrite::PlanOptions O;
  O.Backend = B;
  O.FuseDepth = FuseDepth;
  return O;
}

FheContext makeFhe(unsigned Limbs, NttRing Ring, size_t NPoints = 64) {
  FheOptions O;
  O.NPoints = NPoints;
  O.NumLimbs = Limbs;
  O.Ring = Ring;
  FheContext FC;
  std::string Err;
  EXPECT_TRUE(FheContext::create(O, FC, &Err)) << Err;
  return FC;
}

std::vector<std::uint64_t> randomMsg(Rng &R, const FheContext &FC) {
  std::vector<std::uint64_t> M(FC.nPoints());
  for (auto &V : M)
    V = R.below(FC.plainModulus().low64());
  return M;
}

/// Bit-exact comparison of a device ciphertext against the oracle.
void expectCtEq(runtime::Dispatcher &D, Ciphertext &Ct,
                const RefCiphertext &Ref, const char *What) {
  RefCiphertext Got;
  ASSERT_TRUE(ciphertextToRef(D, Ct, Got)) << What << ": " << D.error();
  ASSERT_EQ(Got.size(), Ref.size()) << What;
  for (size_t P = 0; P < Ref.size(); ++P)
    for (size_t I = 0; I < Ref[P].size(); ++I)
      ASSERT_EQ(Got[P][I], Ref[P][I])
          << What << ": poly " << P << " coeff " << I;
}

/// The plaintext ring product mod t — what a multiply should decrypt to.
std::vector<std::uint64_t> plainMul(const std::vector<std::uint64_t> &A,
                                    const std::vector<std::uint64_t> &B,
                                    const Bignum &T, bool Neg) {
  RefPoly PA(A.begin(), A.end()), PB(B.begin(), B.end());
  auto P = ntt::referencePolyMulRing(PA, PB, T, Neg);
  std::vector<std::uint64_t> Out(P.size());
  for (size_t I = 0; I < P.size(); ++I)
    Out[I] = P[I].low64();
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// subChain views
//===----------------------------------------------------------------------===//

TEST(FheRns, SubChainViewsAreIdentityStableAndCorrect) {
  RnsContext Ctx;
  std::string Err;
  ASSERT_TRUE(RnsContext::create(4, Ctx, &Err)) << Err;

  // The full-length view is the context itself; shorter views are
  // cached per requested length.
  EXPECT_EQ(&Ctx.subChain(4), &Ctx);
  const RnsContext &V2 = Ctx.subChain(2);
  EXPECT_EQ(&Ctx.subChain(2), &V2);
  EXPECT_EQ(V2.numLimbs(), 2u);
  // A one-limb view is a legal bottom rung of the rescale ladder.
  EXPECT_EQ(Ctx.subChain(1).numLimbs(), 1u);

  // Copies share the walked cache: the copy hands back the same view.
  RnsContext Copy = Ctx;
  EXPECT_EQ(&Copy.subChain(2), &V2);

  // Prefix property: same limbs, modulus the prefix product.
  EXPECT_EQ(V2.limb(0), Ctx.limb(0));
  EXPECT_EQ(V2.limb(1), Ctx.limb(1));
  EXPECT_EQ(V2.modulus(), Ctx.limb(0) * Ctx.limb(1));
  EXPECT_EQ(Ctx.subChain(1).modulus(), Ctx.limb(0));
}

TEST(FheRns, SubChainCrtEdgesRoundTrip) {
  SeededRng R(0xf1e1);
  RnsContext Ctx;
  std::string Err;
  ASSERT_TRUE(RnsContext::create(4, Ctx, &Err)) << Err;
  const RnsContext &Sub = Ctx.subChain(3);
  Dispatcher D(registry(), nullptr, pinned(ExecBackend::Serial));

  const size_t N = 64;
  std::vector<Bignum> A;
  for (size_t I = 0; I < N; ++I)
    A.push_back(Bignum::random(R, Sub.modulus()));
  auto AW = packBatch(A, Sub.wideWords());
  RnsTensor T(Sub, N, 1);
  ASSERT_TRUE(D.fromWide(AW.data(), T)) << D.error();
  std::vector<std::uint64_t> Back(AW.size());
  ASSERT_TRUE(D.toWide(T, Back.data())) << D.error();
  // The view's recomputed CRT weights reconstruct exactly.
  EXPECT_EQ(AW, Back);
}

//===----------------------------------------------------------------------===//
// Tensor API basics & typed errors
//===----------------------------------------------------------------------===//

TEST(FheRns, TensorDomainTagMachine) {
  SeededRng R(0xd0a1);
  RnsContext Ctx;
  std::string Err;
  ASSERT_TRUE(RnsContext::create(2, Ctx, &Err)) << Err;
  Dispatcher D(registry(), nullptr, pinned(ExecBackend::Serial));

  const size_t N = 64;
  std::vector<Bignum> A;
  for (size_t I = 0; I < N; ++I)
    A.push_back(Bignum::random(R, Ctx.modulus()));
  auto AW = packBatch(A, Ctx.wideWords());
  RnsTensor T(Ctx, N, 1, NttRing::Cyclic);
  ASSERT_TRUE(D.fromWide(AW.data(), T));
  EXPECT_EQ(T.domain(), RnsDomain::Coeff);
  ASSERT_TRUE(D.rnsNttForward(T));
  EXPECT_EQ(T.domain(), RnsDomain::Ntt);
  // Idempotent: already transformed, no-op.
  auto Before = D.dispatchStats();
  ASSERT_TRUE(D.rnsNttForward(T));
  EXPECT_EQ(D.dispatchStats().Transforms, Before.Transforms);
  ASSERT_TRUE(D.rnsNttInverse(T));
  EXPECT_EQ(T.domain(), RnsDomain::Coeff);
  // The roundtrip is value-preserving.
  std::vector<std::uint64_t> Back(AW.size());
  ASSERT_TRUE(D.toWide(T, Back.data()));
  EXPECT_EQ(AW, Back);

  EXPECT_STREQ(rnsDomainName(RnsDomain::Coeff), "coeff");
  EXPECT_STREQ(rnsDomainName(RnsDomain::Ntt), "ntt");
}

TEST(FheRns, TypedErrorCodes) {
  RnsContext Ctx;
  std::string Err;
  ASSERT_TRUE(RnsContext::create(2, Ctx, &Err)) << Err;
  Dispatcher D(registry(), nullptr, pinned(ExecBackend::Serial));

  // The rescale kernel's wire name is ABI: the JIT cache and moma-gen's
  // -k flag both key on it.
  EXPECT_STREQ(kernelOpName(KernelOp::RnsRescaleStep), "rnsresc");

  EXPECT_STREQ(dispatchErrorCodeName(DispatchErrorCode::Ok), "ok");
  EXPECT_STREQ(dispatchErrorCodeName(DispatchErrorCode::InvalidArgument),
               "invalid-argument");
  EXPECT_STREQ(dispatchErrorCodeName(DispatchErrorCode::PlanUnavailable),
               "plan-unavailable");
  EXPECT_STREQ(dispatchErrorCodeName(DispatchErrorCode::BackendFailed),
               "backend-failed");

  // Incongruent operands: different shapes under one context.
  RnsTensor A(Ctx, 64, 1), B(Ctx, 32, 1), C(Ctx, 64, 1);
  EXPECT_FALSE(D.rnsVAdd(A, B, C));
  EXPECT_EQ(D.lastErrorCode(), DispatchErrorCode::InvalidArgument);
  EXPECT_FALSE(D.error().empty());

  // A one-limb chain cannot rescale.
  RnsTensor Short(Ctx.subChain(1), 64, 1);
  EXPECT_FALSE(D.rnsRescale(Short));
  EXPECT_EQ(D.lastErrorCode(), DispatchErrorCode::InvalidArgument);

  // Success clears the code.
  RnsTensor B2(Ctx, 64, 1);
  EXPECT_TRUE(D.rnsVAdd(A, B2, C)) << D.error();
  EXPECT_EQ(D.lastErrorCode(), DispatchErrorCode::Ok);
}

TEST(FheRns, RescaleMatchesExactQuotient) {
  SeededRng R(0x5ca1e);
  for (unsigned Limbs : {2u, 4u, 8u}) {
    RnsContext Ctx;
    std::string Err;
    ASSERT_TRUE(RnsContext::create(Limbs, Ctx, &Err)) << Err;
    Dispatcher D(registry(), nullptr, pinned(ExecBackend::Serial));

    const size_t N = 64;
    std::vector<Bignum> A;
    for (size_t I = 0; I < N; ++I)
      A.push_back(Bignum::random(R, Ctx.modulus()));
    auto AW = packBatch(A, Ctx.wideWords());
    RnsTensor T(Ctx, N, 1);
    ASSERT_TRUE(D.fromWide(AW.data(), T));
    ASSERT_TRUE(D.rnsRescale(T)) << D.error();

    // The tensor rebinds to the one-shorter view.
    const RnsContext &Sub = Ctx.subChain(Limbs - 1);
    EXPECT_EQ(&T.context(), &Sub);

    std::vector<std::uint64_t> Got(size_t(Sub.wideWords()) * N);
    ASSERT_TRUE(D.toWide(T, Got.data()));
    auto GotW = unpackBatch(Got, Sub.wideWords());
    const Bignum &QL = Ctx.limb(Limbs - 1);
    for (size_t I = 0; I < N; ++I)
      EXPECT_EQ(GotW[I], (A[I] - A[I] % QL) / QL)
          << "limbs " << Limbs << " coeff " << I;
  }
}

//===----------------------------------------------------------------------===//
// Ciphertext ops, bit-exact vs the Bignum oracle
//===----------------------------------------------------------------------===//

TEST(Fhe, AddBitExactAndDecrypts) {
  SeededRng R(0xadd);
  for (NttRing Ring : {NttRing::Cyclic, NttRing::Negacyclic})
    for (unsigned Limbs : {2u, 4u, 8u}) {
      FheContext FC = makeFhe(Limbs, Ring);
      Dispatcher D(registry(), nullptr, pinned(ExecBackend::Serial));
      SecretKey SK = keyGen(FC, R);

      auto M1 = randomMsg(R, FC), M2 = randomMsg(R, FC);
      Ciphertext C1, C2;
      ASSERT_TRUE(encrypt(FC, D, SK, M1, R, C1)) << D.error();
      ASSERT_TRUE(encrypt(FC, D, SK, M2, R, C2)) << D.error();
      RefCiphertext R1, R2;
      ASSERT_TRUE(ciphertextToRef(D, C1, R1));
      ASSERT_TRUE(ciphertextToRef(D, C2, R2));

      Ciphertext Sum;
      ASSERT_TRUE(ciphertextAdd(D, C1, C2, Sum)) << D.error();
      RefCiphertext RefSum = refAdd(R1, R2, FC.rns().modulus());
      expectCtEq(D, Sum, RefSum, "add");

      std::vector<std::uint64_t> Dec;
      ASSERT_TRUE(decrypt(FC, D, SK, Sum, Dec));
      std::uint64_t T = FC.plainModulus().low64();
      for (size_t I = 0; I < Dec.size(); ++I)
        ASSERT_EQ(Dec[I], (M1[I] + M2[I]) % T) << "coeff " << I;
    }
}

TEST(Fhe, MulBitExactAndDecrypts) {
  SeededRng R(0x3a1);
  for (NttRing Ring : {NttRing::Cyclic, NttRing::Negacyclic})
    for (unsigned Limbs : {2u, 4u, 8u}) {
      FheContext FC = makeFhe(Limbs, Ring);
      Dispatcher D(registry(), nullptr, pinned(ExecBackend::Serial));
      SecretKey SK = keyGen(FC, R);
      bool Neg = Ring == NttRing::Negacyclic;

      auto M1 = randomMsg(R, FC), M2 = randomMsg(R, FC);
      Ciphertext C1, C2;
      ASSERT_TRUE(encrypt(FC, D, SK, M1, R, C1));
      ASSERT_TRUE(encrypt(FC, D, SK, M2, R, C2));
      RefCiphertext R1, R2;
      ASSERT_TRUE(ciphertextToRef(D, C1, R1));
      ASSERT_TRUE(ciphertextToRef(D, C2, R2));

      Ciphertext Prod;
      ASSERT_TRUE(ciphertextMul(D, C1, C2, Prod)) << D.error();
      ASSERT_EQ(Prod.size(), 3u);
      RefCiphertext RefProd = refMul(R1, R2, FC.rns().modulus(), Neg);
      expectCtEq(D, Prod, RefProd, "mul");

      // Degree-2 decryption: the toy modulus easily holds the noise.
      std::vector<std::uint64_t> Dec;
      ASSERT_TRUE(decrypt(FC, D, SK, Prod, Dec));
      auto Want = plainMul(M1, M2, FC.plainModulus(), Neg);
      for (size_t I = 0; I < Dec.size(); ++I)
        ASSERT_EQ(Dec[I], Want[I]) << "coeff " << I;
    }
}

TEST(Fhe, RescaleBitExact) {
  SeededRng R(0x4e5c);
  for (NttRing Ring : {NttRing::Cyclic, NttRing::Negacyclic})
    for (unsigned Limbs : {2u, 4u, 8u}) {
      FheContext FC = makeFhe(Limbs, Ring);
      Dispatcher D(registry(), nullptr, pinned(ExecBackend::Serial));
      SecretKey SK = keyGen(FC, R);

      Ciphertext C;
      ASSERT_TRUE(encrypt(FC, D, SK, randomMsg(R, FC), R, C));
      RefCiphertext Ref;
      ASSERT_TRUE(ciphertextToRef(D, C, Ref));

      ASSERT_TRUE(rescale(D, C)) << D.error();
      RefCiphertext RefR = refRescale(Ref, FC.rns());
      EXPECT_EQ(&C.context(), &FC.rns().subChain(Limbs - 1));
      expectCtEq(D, C, RefR, "rescale");
    }
}

TEST(Fhe, RelinearizeBitExactAndDecrypts) {
  SeededRng R(0x4e11);
  for (NttRing Ring : {NttRing::Cyclic, NttRing::Negacyclic})
    for (unsigned Limbs : {2u, 4u}) {
      FheContext FC = makeFhe(Limbs, Ring);
      Dispatcher D(registry(), nullptr, pinned(ExecBackend::Serial));
      SecretKey SK = keyGen(FC, R);
      RelinKey RK;
      ASSERT_TRUE(relinKeyGen(FC, D, SK, R, RK)) << D.error();
      bool Neg = Ring == NttRing::Negacyclic;

      auto M1 = randomMsg(R, FC), M2 = randomMsg(R, FC);
      Ciphertext C1, C2;
      ASSERT_TRUE(encrypt(FC, D, SK, M1, R, C1));
      ASSERT_TRUE(encrypt(FC, D, SK, M2, R, C2));
      RefCiphertext R1, R2;
      ASSERT_TRUE(ciphertextToRef(D, C1, R1));
      ASSERT_TRUE(ciphertextToRef(D, C2, R2));

      Ciphertext Prod;
      ASSERT_TRUE(ciphertextMul(D, C1, C2, Prod));
      ASSERT_TRUE(relinearize(D, Prod, RK)) << D.error();
      ASSERT_EQ(Prod.size(), 2u);

      RefCiphertext RefProd =
          refRelinearize(refMul(R1, R2, FC.rns().modulus(), Neg), RK.Ref,
                         FC.rns(), Neg);
      expectCtEq(D, Prod, RefProd, "relinearize");

      // Back at degree 1, decryption still lands on the product.
      std::vector<std::uint64_t> Dec;
      ASSERT_TRUE(decrypt(FC, D, SK, Prod, Dec));
      auto Want = plainMul(M1, M2, FC.plainModulus(), Neg);
      for (size_t I = 0; I < Dec.size(); ++I)
        ASSERT_EQ(Dec[I], Want[I]) << "coeff " << I;
    }
}

//===----------------------------------------------------------------------===//
// The lazy-NTT contract, pinned with exact dispatch arithmetic
//===----------------------------------------------------------------------===//

TEST(Fhe, LazyNttDispatchSavings) {
  SeededRng R(0x1a21);
  RnsContext Ctx;
  std::string Err;
  ASSERT_TRUE(RnsContext::create(4, Ctx, &Err)) << Err;
  const std::uint64_t L = Ctx.numLimbs();
  const size_t NP = 64; // log2(64) = 6 -> 3 stage groups at depth 2
  const unsigned WW = Ctx.wideWords();

  std::vector<std::vector<Bignum>> Ops;
  std::vector<std::vector<std::uint64_t>> OpsW;
  for (int I = 0; I < 4; ++I) {
    std::vector<Bignum> V;
    for (size_t J = 0; J < NP; ++J)
      V.push_back(Bignum::random(R, Ctx.modulus()));
    OpsW.push_back(packBatch(V, WW));
    Ops.push_back(std::move(V));
  }

  // Flat chain: three one-shot rnsPolyMul calls, each paying the full
  // decompose -> 3L transforms -> recombine toll.
  Dispatcher DF(registry(), nullptr, pinned(ExecBackend::Serial, 2));
  std::vector<std::uint64_t> F1(NP * WW), F2(NP * WW), F3(NP * WW);
  auto Before = DF.dispatchStats();
  ASSERT_TRUE(DF.rnsPolyMul(Ctx, OpsW[0].data(), OpsW[1].data(), F1.data(),
                            NP, 1, NttRing::Cyclic));
  ASSERT_TRUE(DF.rnsPolyMul(Ctx, F1.data(), OpsW[2].data(), F2.data(), NP,
                            1, NttRing::Cyclic));
  ASSERT_TRUE(DF.rnsPolyMul(Ctx, F2.data(), OpsW[3].data(), F3.data(), NP,
                            1, NttRing::Cyclic));
  auto After = DF.dispatchStats();
  const std::uint64_t K = 3; // chained products
  EXPECT_EQ(After.Transforms - Before.Transforms, 3 * K * L);
  EXPECT_EQ(After.StageGroups - Before.StageGroups, 3 * K * L * 3);
  // Per flat product: 2L decompose + L vmul + L recombine.
  EXPECT_EQ(After.Batches - Before.Batches, K * 4 * L);

  // Lazy chain: the same three products through residue-form handles.
  // Each operand transforms exactly once, intermediates stay in NTT
  // form, toWide pays the single inverse: (k + 2)L transforms total
  // where flat paid 3kL — saved = (2k - 2)L.
  Dispatcher DL(registry(), nullptr, pinned(ExecBackend::Serial, 2));
  RnsTensor T0(Ctx, NP, 1), T1(Ctx, NP, 1), T2(Ctx, NP, 1),
      T3(Ctx, NP, 1), Acc(Ctx, NP, 1);
  Before = DL.dispatchStats();
  ASSERT_TRUE(DL.fromWide(OpsW[0].data(), T0));
  ASSERT_TRUE(DL.fromWide(OpsW[1].data(), T1));
  ASSERT_TRUE(DL.fromWide(OpsW[2].data(), T2));
  ASSERT_TRUE(DL.fromWide(OpsW[3].data(), T3));
  ASSERT_TRUE(DL.rnsPolyMul(T0, T1, Acc));
  EXPECT_EQ(Acc.domain(), RnsDomain::Ntt);
  ASSERT_TRUE(DL.rnsPolyMul(Acc, T2, Acc));
  ASSERT_TRUE(DL.rnsPolyMul(Acc, T3, Acc));
  std::vector<std::uint64_t> L3(NP * WW);
  ASSERT_TRUE(DL.toWide(Acc, L3.data()));
  After = DL.dispatchStats();
  EXPECT_EQ(After.Transforms - Before.Transforms, (K + 2) * L);
  EXPECT_EQ(After.StageGroups - Before.StageGroups, (K + 2) * L * 3);
  // Edges once, not per product: 4L decompose + 3L vmul + L recombine.
  EXPECT_EQ(After.Batches - Before.Batches, 4 * L + K * L + L);

  // Same math, exactly (2k - 2)L transforms cheaper.
  EXPECT_EQ(L3, F3);
  EXPECT_EQ((3 * K * L) - ((K + 2) * L), (2 * K - 2) * L);
}

TEST(Fhe, ChainedCiphertextMulSkipsOperandTransforms) {
  SeededRng R(0xc41);
  FheContext FC = makeFhe(4, NttRing::Negacyclic);
  Dispatcher D(registry(), nullptr, pinned(ExecBackend::Serial));
  SecretKey SK = keyGen(FC, R);
  const std::uint64_t L = FC.rns().numLimbs();

  Ciphertext X, Y, Z;
  ASSERT_TRUE(encrypt(FC, D, SK, randomMsg(R, FC), R, X));
  ASSERT_TRUE(encrypt(FC, D, SK, randomMsg(R, FC), R, Y));
  ASSERT_TRUE(encrypt(FC, D, SK, randomMsg(R, FC), R, Z));

  // First product: all four operand polys fresh -> exactly 4L forward
  // transforms, zero inverse.
  Ciphertext P1;
  auto Before = D.dispatchStats();
  ASSERT_TRUE(ciphertextMul(D, X, Y, P1));
  EXPECT_EQ(D.dispatchStats().Transforms - Before.Transforms, 4 * L);

  // Second product reuses X, whose polys are now NTT-resident: only Z's
  // two polys transform — exactly 2L, the lazy retention at work.
  Ciphertext P2;
  Before = D.dispatchStats();
  ASSERT_TRUE(ciphertextMul(D, X, Z, P2));
  EXPECT_EQ(D.dispatchStats().Transforms - Before.Transforms, 2 * L);
}

//===----------------------------------------------------------------------===//
// Differential fuzz: random op chains, device vs oracle in lockstep
//===----------------------------------------------------------------------===//

TEST(Fhe, DifferentialFuzzOpChains) {
  SeededRng R(0xfece5);
  const int Iters = fuzzIters(20);
  for (int It = 0; It < Iters; ++It) {
    NttRing Ring = R.below(2) ? NttRing::Negacyclic : NttRing::Cyclic;
    unsigned Limbs = 2 + unsigned(R.below(3)); // 2..4
    FheContext FC = makeFhe(Limbs, Ring, 32);
    Dispatcher D(registry(), nullptr, pinned(ExecBackend::Serial));
    SecretKey SK = keyGen(FC, R);
    RelinKey RK;
    ASSERT_TRUE(relinKeyGen(FC, D, SK, R, RK));
    bool Neg = Ring == NttRing::Negacyclic;

    Ciphertext Acc;
    ASSERT_TRUE(encrypt(FC, D, SK, randomMsg(R, FC), R, Acc));
    RefCiphertext Ref;
    ASSERT_TRUE(ciphertextToRef(D, Acc, Ref));

    bool Rescaled = false;
    const size_t Steps = 3 + R.below(4); // 3..6 ops
    for (size_t S = 0; S < Steps; ++S) {
      // After a rescale the relin key (full chain) and fresh encryptions
      // (full chain) no longer apply: only further rescales remain.
      std::uint64_t Op = Rescaled ? 2 : R.below(3);
      if (Op == 2 && Acc.context().numLimbs() < 2)
        break;
      switch (Op) {
      case 0: { // add a fresh encryption
        Ciphertext Fresh;
        ASSERT_TRUE(encrypt(FC, D, SK, randomMsg(R, FC), R, Fresh));
        RefCiphertext FreshRef;
        ASSERT_TRUE(ciphertextToRef(D, Fresh, FreshRef));
        ASSERT_TRUE(ciphertextAdd(D, Acc, Fresh, Acc)) << D.error();
        Ref = refAdd(Ref, FreshRef, FC.rns().modulus());
        break;
      }
      case 1: { // multiply by a fresh encryption, then relinearize
        Ciphertext Fresh;
        ASSERT_TRUE(encrypt(FC, D, SK, randomMsg(R, FC), R, Fresh));
        RefCiphertext FreshRef;
        ASSERT_TRUE(ciphertextToRef(D, Fresh, FreshRef));
        ASSERT_TRUE(ciphertextMul(D, Acc, Fresh, Acc)) << D.error();
        ASSERT_TRUE(relinearize(D, Acc, RK)) << D.error();
        Ref = refRelinearize(refMul(Ref, FreshRef, FC.rns().modulus(), Neg),
                             RK.Ref, FC.rns(), Neg);
        break;
      }
      default: { // drop a limb
        const RnsContext &Cur = Acc.context();
        ASSERT_TRUE(rescale(D, Acc)) << D.error();
        Ref = refRescale(Ref, Cur);
        Rescaled = true;
        break;
      }
      }
      expectCtEq(D, Acc, Ref, "fuzz step");
    }
  }
}

//===----------------------------------------------------------------------===//
// Serving layer
//===----------------------------------------------------------------------===//

TEST(Fhe, ServerCtMulServesAndRejectsTyped) {
  SeededRng R(0x5e4e);
  FheContext FC = makeFhe(2, NttRing::Negacyclic);
  SecretKey SK = keyGen(FC, R);

  service::ServerOptions SO;
  SO.Workers = 2;
  service::Server Srv(registry(), SO);

  // Encrypt through a local dispatcher (host-side prep), serve the
  // products through the server's workers.
  Dispatcher D(registry(), nullptr, pinned(ExecBackend::Serial));
  auto M1 = randomMsg(R, FC), M2 = randomMsg(R, FC);
  Ciphertext A, B;
  ASSERT_TRUE(encrypt(FC, D, SK, M1, R, A));
  ASSERT_TRUE(encrypt(FC, D, SK, M2, R, B));
  RefCiphertext RA, RB;
  ASSERT_TRUE(ciphertextToRef(D, A, RA));
  ASSERT_TRUE(ciphertextToRef(D, B, RB));

  Ciphertext Out;
  auto F = Srv.submitCtMul(A, B, Out);
  service::Reply Rep = F.get();
  ASSERT_TRUE(Rep.Ok) << Rep.Error;
  RefCiphertext Want =
      refMul(RA, RB, FC.rns().modulus(), /*Negacyclic=*/true);
  expectCtEq(D, Out, Want, "server ctmul");

  // Malformed submissions come back typed, straight from the door.
  Ciphertext Bad; // empty
  service::Reply Rej = Srv.submitCtMul(Bad, B, Out).get();
  EXPECT_FALSE(Rej.Ok);
  EXPECT_EQ(Rej.Code, service::ErrorCode::InvalidRequest);

  // A degree-2 operand is refused the same way.
  Ciphertext P;
  ASSERT_TRUE(ciphertextMul(D, A, B, P));
  service::Reply Rej2 = Srv.submitCtMul(P, B, Out).get();
  EXPECT_FALSE(Rej2.Ok);
  EXPECT_EQ(Rej2.Code, service::ErrorCode::InvalidRequest);
}
