//===- tests/field/PrimeFieldTest.cpp - field abstraction --------------------===//

#include "field/PrimeField.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::field;
using mw::Bignum;

namespace {

template <unsigned W> void fieldAxioms(std::uint64_t Seed) {
  Rng R(Seed);
  auto F = PrimeField<W>::evaluationField(12);
  const Bignum &Q = F.modulusBig();
  for (int I = 0; I < 100; ++I) {
    auto A = F.fromBignum(Bignum::random(R, Q));
    auto B = F.fromBignum(Bignum::random(R, Q));
    auto C = F.fromBignum(Bignum::random(R, Q));
    // Associativity and commutativity through the oracle.
    EXPECT_EQ(F.add(A, B).toBignum(),
              A.toBignum().addMod(B.toBignum(), Q));
    EXPECT_EQ(F.mul(A, B).toBignum(),
              A.toBignum().mulMod(B.toBignum(), Q));
    // Distributivity: a*(b+c) == a*b + a*c.
    EXPECT_EQ(F.mul(A, F.add(B, C)), F.add(F.mul(A, B), F.mul(A, C)));
    // a - a == 0, a + (-a) == 0.
    EXPECT_TRUE(F.sub(A, A).isZero());
    EXPECT_TRUE(F.add(A, F.neg(A)).isZero());
  }
}

} // namespace

TEST(PrimeField, Axioms128) { fieldAxioms<2>(501); }
TEST(PrimeField, Axioms256) { fieldAxioms<4>(502); }
TEST(PrimeField, Axioms384) { fieldAxioms<6>(503); }

TEST(PrimeField, InverseProperty) {
  Rng R(510);
  auto F = PrimeField<2>::evaluationField(12);
  for (int I = 0; I < 50; ++I) {
    auto A = F.fromBignum(Bignum::random(R, F.modulusBig() - Bignum(1)) +
                          Bignum(1));
    EXPECT_TRUE(F.mul(A, F.inv(A)).toBignum().isOne());
  }
}

TEST(PrimeField, PowMatchesOracle) {
  Rng R(511);
  auto F = PrimeField<2>::evaluationField(12);
  for (int I = 0; I < 50; ++I) {
    Bignum A = Bignum::random(R, F.modulusBig());
    Bignum E = Bignum::randomBits(R, 1 + R.below(64));
    EXPECT_EQ(F.pow(F.fromBignum(A), E).toBignum(),
              A.powMod(E, F.modulusBig()));
  }
}

TEST(PrimeField, NthRootHasExactOrder) {
  auto F = PrimeField<2>::evaluationField(20);
  auto W = F.nthRoot(1 << 16);
  EXPECT_TRUE(F.pow(W, Bignum(1 << 16)).toBignum().isOne());
  EXPECT_FALSE(F.pow(W, Bignum(1 << 15)).toBignum().isOne());
}

TEST(PrimeField, FromBignumReduces) {
  auto F = PrimeField<2>::evaluationField(12);
  Bignum Huge = F.modulusBig() * Bignum(3) + Bignum(7);
  EXPECT_EQ(F.fromBignum(Huge).toBignum(), Bignum(7));
}

TEST(PrimeField, KaratsubaFieldAgrees) {
  Rng R(512);
  Bignum Q = evalModulus(256, 12);
  PrimeField<4> FS(Q, mw::MulAlgorithm::Schoolbook);
  PrimeField<4> FK(Q, mw::MulAlgorithm::Karatsuba);
  for (int I = 0; I < 100; ++I) {
    auto A = FS.fromBignum(Bignum::random(R, Q));
    auto B = FS.fromBignum(Bignum::random(R, Q));
    EXPECT_EQ(FS.mul(A, B), FK.mul(A, B));
  }
}
