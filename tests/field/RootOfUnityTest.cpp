//===- tests/field/RootOfUnityTest.cpp - roots of unity ----------------------===//

#include "field/RootOfUnity.h"

#include "field/PrimeGen.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::field;
using mw::Bignum;

TEST(RootOfUnity, TwoAdicityOfKnownValues) {
  EXPECT_EQ(twoAdicity(Bignum(3)), 1u);   // 3-1 = 2
  EXPECT_EQ(twoAdicity(Bignum(17)), 4u);  // 16 = 2^4
  EXPECT_EQ(twoAdicity(Bignum(97)), 5u);  // 96 = 2^5 * 3
  EXPECT_EQ(twoAdicity(Bignum(65537)), 16u);
}

TEST(RootOfUnity, ExactOrderSmallPrime) {
  // 17 has 2-adicity 4; a primitive 16th root w satisfies w^16 = 1 and
  // w^8 = -1.
  Bignum Q(17);
  Bignum W = rootOfUnityPow2(Q, 4);
  EXPECT_TRUE(W.powMod(Bignum(16), Q).isOne());
  EXPECT_EQ(W.powMod(Bignum(8), Q), Q - Bignum(1));
}

TEST(RootOfUnity, ExactOrderLargePrimes) {
  for (unsigned Bits : {124u, 252u}) {
    Bignum Q = nttPrime(Bits, 22);
    for (unsigned S : {1u, 4u, 10u, 22u}) {
      Bignum W = rootOfUnityPow2(Q, S);
      EXPECT_TRUE(W.powMod(Bignum::powerOfTwo(S), Q).isOne());
      if (S > 0) {
        EXPECT_FALSE(W.powMod(Bignum::powerOfTwo(S - 1), Q).isOne())
            << "order must be exactly 2^" << S;
      }
    }
  }
}

TEST(RootOfUnity, SizeWrapperMatches) {
  Bignum Q = nttPrime(124, 22);
  Bignum W1 = rootOfUnity(Q, 1024);
  EXPECT_TRUE(W1.powMod(Bignum(1024), Q).isOne());
  EXPECT_FALSE(W1.powMod(Bignum(512), Q).isOne());
}

TEST(RootOfUnity, OrderZeroIsOne) {
  Bignum Q = nttPrime(124, 22);
  EXPECT_TRUE(rootOfUnityPow2(Q, 0).isOne());
}

TEST(RootOfUnity, RejectsInsufficientTwoAdicity) {
  Bignum Q(17); // 2-adicity 4
  EXPECT_DEATH((void)rootOfUnityPow2(Q, 10), "2-adicity");
}

TEST(RootOfUnity, RejectsNonPowerOfTwoSize) {
  Bignum Q = nttPrime(124, 22);
  EXPECT_DEATH((void)rootOfUnity(Q, 100), "power of two");
}
