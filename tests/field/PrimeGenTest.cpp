//===- tests/field/PrimeGenTest.cpp - prime generation -----------------------===//

#include "field/PrimeGen.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::field;
using mw::Bignum;

TEST(PrimeGen, KnownPrimesPass) {
  Rng R(401);
  for (std::uint64_t P :
       {2ull, 3ull, 5ull, 97ull, 65537ull, 2147483647ull /* 2^31-1 */,
        (1ull << 61) - 1 /* Mersenne */}) {
    EXPECT_TRUE(isProbablePrime(Bignum(P), R)) << P;
  }
}

TEST(PrimeGen, KnownCompositesFail) {
  Rng R(402);
  for (std::uint64_t C : {1ull, 4ull, 100ull, 561ull /* Carmichael */,
                          41041ull /* Carmichael */, 6601ull /* Carmichael */,
                          (1ull << 32) + 1 /* F5 = 641*6700417 */}) {
    EXPECT_FALSE(isProbablePrime(Bignum(C), R)) << C;
  }
}

TEST(PrimeGen, LargeKnownPrime) {
  Rng R(403);
  // 2^127 - 1 is a Mersenne prime; 2^128 + 1 is composite.
  EXPECT_TRUE(
      isProbablePrime(Bignum::powerOfTwo(127) - Bignum(1), R));
  EXPECT_FALSE(
      isProbablePrime(Bignum::powerOfTwo(128) + Bignum(1), R));
}

TEST(PrimeGen, NttPrimeHasRequestedShape) {
  Rng R(404);
  for (unsigned Bits : {60u, 124u, 252u, 380u}) {
    Bignum Q = nttPrime(Bits, 20);
    EXPECT_EQ(Q.bitWidth(), Bits);
    // q = 1 (mod 2^20).
    EXPECT_TRUE((Q - Bignum(1)).truncate(20).isZero());
    EXPECT_TRUE(isProbablePrime(Q, R));
  }
}

TEST(PrimeGen, NttPrimeIsCachedAndDeterministic) {
  Bignum A = nttPrime(124, 20);
  Bignum B = nttPrime(124, 20);
  EXPECT_EQ(A, B);
}

TEST(PrimeGen, DifferentSeedsDifferentPrimes) {
  EXPECT_NE(nttPrime(124, 20, 1), nttPrime(124, 20, 2));
}

TEST(PrimeGen, EvalModulusLeavesBarrettHeadroom) {
  for (unsigned Container : {128u, 256u, 512u, 1024u}) {
    Bignum Q = evalModulus(Container);
    EXPECT_EQ(Q.bitWidth(), Container - 4)
        << "the paper's k-4 bit convention (5.2)";
  }
}

TEST(PrimeGen, RejectsImpossibleRequest) {
  EXPECT_DEATH((void)nttPrime(10, 20), "2-adicity");
}
