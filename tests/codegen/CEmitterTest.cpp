//===- tests/codegen/CEmitterTest.cpp - C emission + host-JIT integration -----===//
//
// Closes the code-generation loop: the emitted C is compiled and loaded
// through the shared host-JIT runtime (src/jit/HostJit.h) at test time and
// run against the IR interpreter on random field inputs — the strongest
// statement this repository makes about generated-code correctness.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "codegen/CEmitter.h"
#include "field/PrimeGen.h"
#include "jit/HostJit.h"
#include "kernels/BlasKernels.h"
#include "kernels/NttKernels.h"
#include "kernels/ScalarKernels.h"
#include "rewrite/Simplify.h"

#include <gtest/gtest.h>

#include <string>

using namespace moma;
using namespace moma::codegen;
using namespace moma::ir;
using namespace moma::rewrite;
using namespace moma::testutil;
using kernels::ScalarKernelSpec;
using mw::Bignum;

namespace {

/// One shared JIT across the whole binary: identical kernels emitted by
/// different tests reuse the loaded module, and reruns hit the .so cache.
jit::HostJit &hostJit() {
  static jit::HostJit Jit;
  return Jit;
}

/// Runs the emitted kernel on word arrays decomposed from \p Inputs and
/// compares every output against the interpreter.
void checkEmittedAgainstInterp(const LoweredKernel &L, jit::JitModule &M,
                               const EmittedKernel &EK,
                               const std::vector<Bignum> &Inputs) {
  using U64 = std::uint64_t;
  // The emitted signature is void(f)(out0*, ..., in0*, ...) over u64
  // arrays; marshal through a generic pointer array via libffi-style
  // manual dispatch for the small arities we generate.
  std::vector<std::vector<U64>> OutBufs;
  std::vector<std::vector<U64>> InBufs;
  for (const auto &P : L.Outputs)
    OutBufs.emplace_back(P.storedWords(), 0);
  for (size_t I = 0; I < L.Inputs.size(); ++I) {
    const auto &P = L.Inputs[I];
    std::vector<Bignum> Words = decomposePort(P, Inputs[I]);
    std::vector<U64> Buf;
    for (const Bignum &W : Words)
      Buf.push_back(W.low64());
    InBufs.push_back(std::move(Buf));
  }

  std::vector<void *> Args;
  for (auto &B : OutBufs)
    Args.push_back(B.data());
  for (auto &B : InBufs)
    Args.push_back(B.data());

  void *Sym = M.symbol(EK.Symbol);
  ASSERT_NE(Sym, nullptr) << "symbol '" << EK.Symbol << "' not found in "
                          << M.soPath();

  switch (Args.size()) {
  case 3:
    reinterpret_cast<void (*)(void *, void *, void *)>(Sym)(Args[0], Args[1],
                                                            Args[2]);
    break;
  case 4:
    reinterpret_cast<void (*)(void *, void *, void *, void *)>(Sym)(
        Args[0], Args[1], Args[2], Args[3]);
    break;
  case 5:
    reinterpret_cast<void (*)(void *, void *, void *, void *, void *)>(Sym)(
        Args[0], Args[1], Args[2], Args[3], Args[4]);
    break;
  case 6:
    reinterpret_cast<void (*)(void *, void *, void *, void *, void *,
                              void *)>(Sym)(Args[0], Args[1], Args[2],
                                            Args[3], Args[4], Args[5]);
    break;
  case 7:
    reinterpret_cast<void (*)(void *, void *, void *, void *, void *, void *,
                              void *)>(Sym)(Args[0], Args[1], Args[2],
                                            Args[3], Args[4], Args[5],
                                            Args[6]);
    break;
  default:
    FAIL() << "unsupported arity " << Args.size();
  }

  std::vector<Bignum> Expect = interpretLowered(L, Inputs);
  for (size_t O = 0; O < L.Outputs.size(); ++O) {
    Bignum Got;
    for (U64 W : OutBufs[O])
      Got = (Got << 64) + Bignum(W);
    EXPECT_EQ(Got, Expect[O]) << "output '" << L.Outputs[O].Name << "'";
  }
}

/// Full pipeline check for one kernel: lower, simplify, emit, JIT,
/// compare on \p Iters random field inputs.
void pipelineCheck(Kernel K, unsigned MBits, unsigned NumData, bool HasMu,
                   int Iters = 25) {
  LoweredKernel L = lowerToWords(K, {});
  simplifyLowered(L);
  EmittedKernel EK = emitC(L);
  std::shared_ptr<jit::JitModule> M = hostJit().load(EK.Source);
  ASSERT_NE(M, nullptr) << hostJit().error() << "\n" << EK.Source;

  Bignum Q = field::nttPrime(MBits, 8, 55);
  Bignum Mu = Bignum::powerOfTwo(2 * MBits + 3) / Q;
  Rng R(0xC0DE + MBits);
  for (int I = 0; I < Iters; ++I) {
    std::vector<Bignum> In;
    for (unsigned D = 0; D < NumData; ++D)
      In.push_back(Bignum::random(R, Q));
    In.push_back(Q);
    if (HasMu)
      In.push_back(Mu);
    checkEmittedAgainstInterp(L, *M, EK, In);
  }
}

} // namespace

TEST(CEmitter, StructureMatchesListings) {
  ScalarKernelSpec Spec{128, 0};
  LoweredKernel L = lowerToWords(kernels::buildAddModKernel(Spec), {});
  simplifyLowered(L);
  EmittedKernel EK = emitC(L);
  // Shape of the paper's listings: u64 locals, extern C symbol, pointer
  // ports, no loops, no divisions.
  EXPECT_NE(EK.Source.find("#include <stdint.h>"), std::string::npos);
  EXPECT_NE(EK.Source.find("extern \"C\""), std::string::npos);
  EXPECT_NE(EK.Source.find("void moma_addmod("), std::string::npos);
  EXPECT_NE(EK.Source.find("uint64_t"), std::string::npos);
  EXPECT_EQ(EK.Source.find(" / "), std::string::npos) << "no division ops";
  EXPECT_EQ(EK.Source.find("for"), std::string::npos) << "straight-line";
  ASSERT_EQ(EK.Ports.size(), 4u); // c, a, b, q
  EXPECT_TRUE(EK.Ports[0].IsOutput);
  EXPECT_EQ(EK.Ports[0].StoredWords, 2u);
}

TEST(CEmitter, MulModUsesInt128LikeListingOne) {
  ScalarKernelSpec Spec{128, 0};
  LoweredKernel L = lowerToWords(kernels::buildMulModKernel(Spec), {});
  simplifyLowered(L);
  EmittedKernel EK = emitC(L);
  EXPECT_NE(EK.Source.find("unsigned __int128"), std::string::npos)
      << "the compiler-supported double word (3.1)";
}

TEST(CEmitter, RejectsUnloweredKernel) {
  ScalarKernelSpec Spec{256, 0};
  Kernel K = kernels::buildAddModKernel(Spec);
  LoweredKernel Fake;
  Fake.K = K;
  EXPECT_DEATH((void)emitC(Fake), "not lowered");
}

// Host-JIT integration: every generated kernel class at two widths.
TEST(CEmitterIntegration, AddMod128) {
  pipelineCheck(kernels::buildAddModKernel({128, 0}), 124, 2, false);
}
TEST(CEmitterIntegration, SubMod128) {
  pipelineCheck(kernels::buildSubModKernel({128, 0}), 124, 2, false);
}
TEST(CEmitterIntegration, MulMod128) {
  pipelineCheck(kernels::buildMulModKernel({128, 0}), 124, 2, true);
}
TEST(CEmitterIntegration, MulMod256) {
  pipelineCheck(kernels::buildMulModKernel({256, 0}), 252, 2, true);
}
TEST(CEmitterIntegration, Butterfly256) {
  pipelineCheck(kernels::buildButterflyKernel({256, 0}), 252, 3, true, 15);
}
TEST(CEmitterIntegration, Axpy128) {
  pipelineCheck(kernels::buildAxpyKernel({128, 0}), 124, 3, true);
}
// The non-power-of-two pruning survives the full pipeline: 380-bit modulus
// in a 512 container emits 6-word ports.
TEST(CEmitterIntegration, MulMod380In512) {
  Kernel K = kernels::buildMulModKernel({512, 380});
  LoweredKernel L = lowerToWords(K, {});
  simplifyLowered(L);
  EmittedKernel EK = emitC(L);
  EXPECT_NE(EK.Source.find("const uint64_t a[6]"), std::string::npos)
      << EK.Source.substr(0, 400);
  pipelineCheck(std::move(K), 380, 2, true, 15);
}

TEST(CEmitterIntegration, KaratsubaMulMod256) {
  Kernel K = kernels::buildMulModKernel({256, 0});
  LowerOptions Opts;
  Opts.MulAlg = mw::MulAlgorithm::Karatsuba;
  LoweredKernel L = lowerToWords(K, Opts);
  simplifyLowered(L);
  EmittedKernel EK = emitC(L);
  std::shared_ptr<jit::JitModule> M = hostJit().load(EK.Source);
  ASSERT_NE(M, nullptr) << hostJit().error();
  Bignum Q = field::nttPrime(252, 8, 55);
  Bignum Mu = Bignum::powerOfTwo(2 * 252 + 3) / Q;
  Rng R(0xCAFE);
  for (int I = 0; I < 20; ++I) {
    std::vector<Bignum> In = {Bignum::random(R, Q), Bignum::random(R, Q), Q,
                              Mu};
    checkEmittedAgainstInterp(L, *M, EK, In);
  }
}

// The shared-cache statement the JIT makes possible: emitting the same
// kernel twice compiles once. A second load in the same HostJit is a
// memory hit; a fresh HostJit sharing the cache directory reuses the .so
// from disk without reaching the compiler.
TEST(CEmitterIntegration, IdenticalKernelReusesJitModule) {
  LoweredKernel L = lowerToWords(kernels::buildMulModKernel({128, 0}), {});
  simplifyLowered(L);
  EmittedKernel EK = emitC(L);

  std::shared_ptr<jit::JitModule> M1 = hostJit().load(EK.Source);
  ASSERT_NE(M1, nullptr) << hostJit().error();
  jit::HostJit::Stats Before = hostJit().stats();
  std::shared_ptr<jit::JitModule> M2 = hostJit().load(EK.Source);
  ASSERT_NE(M2, nullptr) << hostJit().error();
  EXPECT_EQ(M1.get(), M2.get()) << "same source must map to one module";
  EXPECT_EQ(hostJit().stats().MemoryHits, Before.MemoryHits + 1);
  EXPECT_EQ(hostJit().stats().Compiles, Before.Compiles);

  jit::HostJit Fresh;
  std::shared_ptr<jit::JitModule> M3 = Fresh.load(EK.Source);
  ASSERT_NE(M3, nullptr) << Fresh.error();
  EXPECT_TRUE(M3->fromDiskCache());
  EXPECT_EQ(Fresh.stats().DiskHits, 1u);
  EXPECT_EQ(Fresh.stats().Compiles, 0u);
}
