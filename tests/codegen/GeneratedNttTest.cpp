//===- tests/codegen/GeneratedNttTest.cpp - end-to-end generated pipeline ------===//
//
// The strongest integration statement in the suite: emit the butterfly
// through the full pipeline (build -> lower -> simplify -> emit C), load
// it through the host-JIT runtime (src/jit/HostJit.h), and drive a
// complete 64-point NTT through nothing but the generated function — then
// compare against the engine and the reference DFT.
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "field/PrimeField.h"
#include "jit/HostJit.h"
#include "kernels/NttKernels.h"
#include "ntt/Ntt.h"
#include "ntt/ReferenceDft.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::codegen;
using field::PrimeField;
using mw::Bignum;

namespace {

/// moma_ntt_butterfly_256: (xo[4], yo[4], x..., y..., w..., q..., mu...)
using ButterflyFn = void (*)(std::uint64_t *, std::uint64_t *,
                             const std::uint64_t *, const std::uint64_t *,
                             const std::uint64_t *, const std::uint64_t *,
                             const std::uint64_t *);

/// Word marshalling: Bignum <-> msb-first stored words.
std::vector<std::uint64_t> toWordsMsbFirst(const Bignum &V, unsigned Count) {
  std::vector<std::uint64_t> Out(Count);
  for (unsigned I = 0; I < Count; ++I)
    Out[I] = (V >> ((Count - 1 - I) * 64)).low64();
  return Out;
}

Bignum fromWordsMsbFirst(const std::uint64_t *W, unsigned Count) {
  Bignum Acc;
  for (unsigned I = 0; I < Count; ++I)
    Acc = (Acc << 64) + Bignum(W[I]);
  return Acc;
}

} // namespace

TEST(GeneratedNtt, FullTransformThroughEmittedButterfly) {
  // Generate and compile the 256-bit butterfly.
  kernels::ScalarKernelSpec Spec{256, 0};
  rewrite::LoweredKernel L = kernels::generateButterflyKernel(Spec);
  EmittedKernel EK = emitC(L);
  ASSERT_EQ(EK.Ports.size(), 7u); // xo yo | x y w q mu

  jit::HostJitOptions JitOpts;
  JitOpts.Flags = "-O2";
  jit::HostJit Jit(JitOpts);
  std::shared_ptr<jit::JitModule> M = Jit.load(EK.Source);
  ASSERT_NE(M, nullptr) << Jit.error();
  auto Butterfly = M->symbolAs<ButterflyFn>(EK.Symbol);
  ASSERT_NE(Butterfly, nullptr) << "symbol '" << EK.Symbol
                                << "' not found in " << M->soPath();

  // Field and plan supply modulus, mu, and twiddles.
  auto F = PrimeField<4>::evaluationField(12);
  const size_t N = 64;
  ntt::NttPlan<4> Plan(F, N);
  auto QW = toWordsMsbFirst(F.modulusBig(), 4);
  auto MuW = toWordsMsbFirst(F.barrett().mu().toBignum(), 4);

  // Random input; engine result as the oracle.
  Rng R(0x6E77);
  std::vector<PrimeField<4>::Element> Engine(N);
  std::vector<Bignum> X(N);
  for (size_t I = 0; I < N; ++I) {
    X[I] = Bignum::random(R, F.modulusBig());
    Engine[I] = F.fromBignum(X[I]);
  }
  Plan.forward(Engine.data());

  // Drive the same transform through the generated butterfly only:
  // bit-reverse, then the standard stage loops calling the JIT-loaded
  // function for every butterfly.
  unsigned LogN = 6;
  for (size_t I = 0; I < N; ++I) {
    size_t Rev = 0;
    for (unsigned B = 0; B < LogN; ++B)
      Rev |= ((I >> B) & 1) << (LogN - 1 - B);
    if (I < Rev)
      std::swap(X[I], X[Rev]);
  }
  Bignum OmegaBig = F.nthRoot(N).toBignum();
  for (size_t Len = 1; Len < N; Len <<= 1) {
    Bignum WLen = OmegaBig.powMod(Bignum(N / (2 * Len)), F.modulusBig());
    for (size_t I0 = 0; I0 < N; I0 += 2 * Len) {
      Bignum Tw(1);
      for (size_t J = 0; J < Len; ++J) {
        auto XW = toWordsMsbFirst(X[I0 + J], 4);
        auto YW = toWordsMsbFirst(X[I0 + J + Len], 4);
        auto TwW = toWordsMsbFirst(Tw, 4);
        std::uint64_t XO[4], YO[4];
        Butterfly(XO, YO, XW.data(), YW.data(), TwW.data(), QW.data(),
                  MuW.data());
        X[I0 + J] = fromWordsMsbFirst(XO, 4);
        X[I0 + J + Len] = fromWordsMsbFirst(YO, 4);
        Tw = Tw.mulMod(WLen, F.modulusBig());
      }
    }
  }

  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(X[I], Engine[I].toBignum()) << "index " << I;
}

TEST(GeneratedNtt, EmittedButterflyMatchesReferenceDftSmall) {
  // Same pipeline at 128 bits against the O(n^2) Eq. 12 oracle directly.
  kernels::ScalarKernelSpec Spec{128, 0};
  rewrite::LoweredKernel L = kernels::generateButterflyKernel(Spec);
  EmittedKernel EK = emitC(L);

  jit::HostJit Jit;
  std::shared_ptr<jit::JitModule> M = Jit.load(EK.Source);
  ASSERT_NE(M, nullptr) << Jit.error();
  auto Butterfly = M->symbolAs<ButterflyFn>(EK.Symbol);
  ASSERT_NE(Butterfly, nullptr);

  auto F = PrimeField<2>::evaluationField(12);
  const size_t N = 8;
  Rng R(0x6E78);
  std::vector<Bignum> X(N), Orig;
  for (auto &V : X)
    V = Bignum::random(R, F.modulusBig());
  Orig = X;

  Bignum Omega = F.nthRoot(N).toBignum();
  auto Ref = ntt::referenceDft(Orig, Omega, F.modulusBig());

  auto QW = toWordsMsbFirst(F.modulusBig(), 2);
  auto MuW = toWordsMsbFirst(F.barrett().mu().toBignum(), 2);
  // Bit-reverse for n=8: swap 1<->4, 3<->6.
  std::swap(X[1], X[4]);
  std::swap(X[3], X[6]);
  for (size_t Len = 1; Len < N; Len <<= 1) {
    Bignum WLen = Omega.powMod(Bignum(N / (2 * Len)), F.modulusBig());
    for (size_t I0 = 0; I0 < N; I0 += 2 * Len) {
      Bignum Tw(1);
      for (size_t J = 0; J < Len; ++J) {
        auto XW = toWordsMsbFirst(X[I0 + J], 2);
        auto YW = toWordsMsbFirst(X[I0 + J + Len], 2);
        auto TwW = toWordsMsbFirst(Tw, 2);
        std::uint64_t XO[2], YO[2];
        Butterfly(XO, YO, XW.data(), YW.data(), TwW.data(), QW.data(),
                  MuW.data());
        X[I0 + J] = fromWordsMsbFirst(XO, 2);
        X[I0 + J + Len] = fromWordsMsbFirst(YO, 2);
        Tw = Tw.mulMod(WLen, F.modulusBig());
      }
    }
  }
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(X[I], Ref[I]) << "index " << I;
}
