//===- tests/codegen/CudaEmitterTest.cpp - CUDA emission structure ------------===//
//
// No GPU is available in this environment (DESIGN.md §4), so these tests
// pin the structure of the emitted CUDA: launch geometry, the paper's
// thread mappings, port marshalling, and the shared scalar body whose
// semantics the dlopen tests already proved.
//
//===----------------------------------------------------------------------===//

#include "codegen/CudaEmitter.h"

#include "kernels/BlasKernels.h"
#include "kernels/NttKernels.h"
#include "rewrite/Simplify.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::codegen;
using kernels::ScalarKernelSpec;

TEST(CudaEmitter, ElementwiseHasGlobalKernelAndGrid) {
  std::string Cu =
      kernels::emitBlasCuda(kernels::BlasOp::VMul, ScalarKernelSpec{256, 0});
  EXPECT_NE(Cu.find("__global__ void moma_vmul_256("), std::string::npos);
  EXPECT_NE(Cu.find("__device__ static __forceinline__"), std::string::npos);
  EXPECT_NE(Cu.find("blockIdx.x"), std::string::npos);
  EXPECT_NE(Cu.find("threadIdx.x"), std::string::npos);
  EXPECT_NE(Cu.find("blockIdx.y"), std::string::npos)
      << "batch dimension (paper 5.1)";
  EXPECT_NE(Cu.find("if (i >= n) return;"), std::string::npos);
}

TEST(CudaEmitter, ElementwiseBroadcastsModulus) {
  std::string Cu =
      kernels::emitBlasCuda(kernels::BlasOp::VMul, ScalarKernelSpec{256, 0});
  // q and mu are loaded without the element offset e.
  EXPECT_NE(Cu.find("q[0]"), std::string::npos);
  EXPECT_NE(Cu.find("mu[0]"), std::string::npos);
  // data ports are element-indexed.
  EXPECT_NE(Cu.find("e * 4"), std::string::npos);
}

TEST(CudaEmitter, AllBlasOpsEmit) {
  for (auto Op : {kernels::BlasOp::VAdd, kernels::BlasOp::VSub,
                  kernels::BlasOp::VMul, kernels::BlasOp::Axpy}) {
    for (unsigned Bits : {128u, 256u, 512u}) {
      std::string Cu = kernels::emitBlasCuda(Op, ScalarKernelSpec{Bits, 0});
      EXPECT_NE(Cu.find("__global__"), std::string::npos)
          << kernels::blasOpName(Op) << Bits;
    }
  }
}

TEST(CudaEmitter, NttStageHasButterflyMapping) {
  std::string Cu = kernels::emitNttCuda(ScalarKernelSpec{256, 0});
  EXPECT_NE(Cu.find("__global__ void moma_ntt_butterfly_256_stage("),
            std::string::npos);
  // One thread per butterfly: t in [0, n/2).
  EXPECT_NE(Cu.find("if (t >= n / 2) return;"), std::string::npos);
  // The classic index math i0 = g*2*len + j, i1 = i0 + len.
  EXPECT_NE(Cu.find("g * 2 * len + j"), std::string::npos);
  EXPECT_NE(Cu.find("i0 + len"), std::string::npos);
  // Batch via grid.y.
  EXPECT_NE(Cu.find("blockIdx.y"), std::string::npos);
}

TEST(CudaEmitter, NttStageWordCountTracksPruning) {
  // 380-bit modulus in a 512 container: 6 stored words per element.
  std::string Cu = kernels::emitNttCuda(ScalarKernelSpec{512, 380});
  EXPECT_NE(Cu.find("* 6"), std::string::npos) << Cu.substr(0, 600);
}

TEST(CudaEmitter, KaratsubaAndSchoolbookDiffer) {
  std::string School = kernels::emitNttCuda(
      ScalarKernelSpec{256, 0}, mw::MulAlgorithm::Schoolbook);
  std::string Kara = kernels::emitNttCuda(ScalarKernelSpec{256, 0},
                                          mw::MulAlgorithm::Karatsuba);
  EXPECT_NE(School, Kara);
  EXPECT_NE(School.find("schoolbook multiply"), std::string::npos);
  EXPECT_NE(Kara.find("Karatsuba multiply"), std::string::npos);
}

TEST(CudaEmitter, EmitsLaunchInstructions) {
  std::string Cu = kernels::emitNttCuda(ScalarKernelSpec{128, 0});
  EXPECT_NE(Cu.find("// Launch per stage"), std::string::npos);
  EXPECT_NE(Cu.find("<<<grid"), std::string::npos);
}

TEST(CudaEmitter, RejectsNonButterflyKernel) {
  rewrite::LoweredKernel L = kernels::generateBlasKernel(
      kernels::BlasOp::VAdd, ScalarKernelSpec{128, 0});
  EXPECT_DEATH((void)emitCudaNttStage(L), "expected butterfly ports");
}
