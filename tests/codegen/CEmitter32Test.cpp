//===- tests/codegen/CEmitter32Test.cpp - 32-bit machine words -----------------===//
//
// The paper's §7 direction: MoMA on hardware with small machine words.
// Lower to ω₀ = 32, emit C over uint32_t (double word uint64_t), compile,
// and compare against the interpreter — proving the rewrite system and
// emitter are genuinely word-width-generic.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "codegen/CEmitter.h"
#include "field/PrimeGen.h"
#include "jit/HostJit.h"
#include "kernels/ScalarKernels.h"
#include "rewrite/Simplify.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::codegen;
using namespace moma::rewrite;
using namespace moma::testutil;
using mw::Bignum;

TEST(CEmitter32, MulMod128OnThirtyTwoBitWords) {
  kernels::ScalarKernelSpec Spec{128, 0};
  ir::Kernel K = kernels::buildMulModKernel(Spec);
  LowerOptions Opts;
  Opts.TargetWordBits = 32;
  LoweredKernel L = lowerToWords(K, Opts);
  simplifyLowered(L);
  EXPECT_EQ(L.Rounds, 2u);
  ASSERT_EQ(L.Inputs[0].Words.size(), 4u) << "four 32-bit words per input";

  CEmitOptions EOpts;
  EOpts.WordBits = 32;
  EmittedKernel EK = emitC(L, EOpts);
  EXPECT_NE(EK.Source.find("uint32_t"), std::string::npos);
  EXPECT_NE(EK.Source.find("uint64_t"), std::string::npos)
      << "uint64_t is the 32-bit world's double word";
  EXPECT_EQ(EK.Source.find("__int128"), std::string::npos)
      << "no 128-bit type needed at omega0 = 32";

  jit::HostJit Jit;
  std::shared_ptr<jit::JitModule> M = Jit.load(EK.Source);
  ASSERT_NE(M, nullptr) << Jit.error();
  using Fn = void (*)(std::uint32_t *, const std::uint32_t *,
                      const std::uint32_t *, const std::uint32_t *,
                      const std::uint32_t *);
  auto MulMod = M->symbolAs<Fn>(EK.Symbol);
  ASSERT_NE(MulMod, nullptr) << "symbol '" << EK.Symbol << "' not found in "
                             << M->soPath();

  Bignum Q = field::nttPrime(124, 8, 99);
  Bignum Mu = Bignum::powerOfTwo(2 * 124 + 3) / Q;
  auto To32 = [](const Bignum &V, unsigned Count) {
    std::vector<std::uint32_t> Out(Count);
    for (unsigned I = 0; I < Count; ++I)
      Out[I] = static_cast<std::uint32_t>(
          (V >> ((Count - 1 - I) * 32)).low64());
    return Out;
  };

  Rng R(0x32);
  for (int I = 0; I < 50; ++I) {
    Bignum A = Bignum::random(R, Q), B = Bignum::random(R, Q);
    auto AW = To32(A, 4), BW = To32(B, 4), QW = To32(Q, 4), MuW = To32(Mu, 4);
    std::uint32_t CW[4];
    MulMod(CW, AW.data(), BW.data(), QW.data(), MuW.data());
    Bignum Got;
    for (unsigned W = 0; W < 4; ++W)
      Got = (Got << 32) + Bignum(CW[W]);
    ASSERT_EQ(Got, (A * B) % Q) << "iteration " << I;
  }
}

TEST(CEmitter32, RejectsMismatchedWordWidth) {
  kernels::ScalarKernelSpec Spec{128, 0};
  LoweredKernel L = lowerToWords(kernels::buildAddModKernel(Spec), {});
  CEmitOptions EOpts;
  EOpts.WordBits = 32; // kernel was lowered to 64
  EXPECT_DEATH((void)emitC(L, EOpts), "not lowered");
}

TEST(CEmitter32, SixteenBitWordsEmit) {
  // Deep recursion (128 -> 16 is three rounds) still emits valid-looking
  // code; uint32_t is the double word.
  kernels::ScalarKernelSpec Spec{128, 0};
  LowerOptions Opts;
  Opts.TargetWordBits = 16;
  LoweredKernel L = lowerToWords(kernels::buildAddModKernel(Spec), Opts);
  simplifyLowered(L);
  CEmitOptions EOpts;
  EOpts.WordBits = 16;
  EmittedKernel EK = emitC(L, EOpts);
  EXPECT_NE(EK.Source.find("uint16_t"), std::string::npos);
  EXPECT_NE(EK.Source.find("const uint16_t a[8]"), std::string::npos)
      << "eight 16-bit words per 124-bit-known input";
}
