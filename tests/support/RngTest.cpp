//===- tests/support/RngTest.cpp - deterministic RNG -------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace moma;

TEST(Rng, DeterministicForSeed) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next64(), B.next64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next64() == B.next64();
  EXPECT_LT(Same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng R(7);
  for (std::uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(R.below(Bound), Bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng R(9);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(R.below(1), 0u);
}

TEST(Rng, BitsSetsTopBit) {
  Rng R(11);
  for (unsigned Bits = 1; Bits <= 64; ++Bits) {
    std::uint64_t V = R.bits(Bits);
    EXPECT_NE(V >> (Bits - 1) & 1, 0u) << "top bit clear for " << Bits;
    if (Bits < 64) {
      EXPECT_EQ(V >> Bits, 0u) << "extra bits set for " << Bits;
    }
  }
}

TEST(Rng, ReasonableSpread) {
  Rng R(13);
  std::set<std::uint64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(R.next64());
  EXPECT_EQ(Seen.size(), 1000u);
}

TEST(Rng, ReseedResets) {
  Rng R(5);
  std::uint64_t First = R.next64();
  R.next64();
  R.reseed(5);
  EXPECT_EQ(R.next64(), First);
}
