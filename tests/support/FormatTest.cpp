//===- tests/support/FormatTest.cpp - formatting helpers --------------------===//

#include "support/Format.h"

#include <gtest/gtest.h>

using namespace moma;

TEST(Format, FormatvBasic) {
  EXPECT_EQ(formatv("x=%d", 42), "x=42");
  EXPECT_EQ(formatv("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(formatv("%05u", 7u), "00007");
}

TEST(Format, FormatvEmptyAndLong) {
  EXPECT_EQ(formatv("%s", ""), "");
  std::string Long(500, 'x');
  EXPECT_EQ(formatv("%s", Long.c_str()), Long);
}

TEST(Format, TextTableAlignsColumns) {
  TextTable T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer-name", "22"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer-name"), std::string::npos);
  // Header row and separator plus two data rows.
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 4);
}

TEST(Format, TextTablePadsShortRows) {
  TextTable T({"a", "b", "c"});
  T.addRow({"only"});
  EXPECT_EQ(T.numRows(), 1u);
  EXPECT_NE(T.render().find("only"), std::string::npos);
}

TEST(Format, FormatNanosUnits) {
  EXPECT_EQ(formatNanos(12.3), "12.3 ns");
  EXPECT_EQ(formatNanos(1234.0), "1.23 us");
  EXPECT_EQ(formatNanos(12345678.0), "12.35 ms");
  EXPECT_EQ(formatNanos(2.5e9), "2.50 s");
}
