//===- tests/mw/MWUIntTest.cpp - fixed-width multi-word integers -------------===//
//
// Property tests of the MoMA runtime representation (paper Eq. 13/14)
// against the Bignum oracle, parameterized over word counts.
//
//===----------------------------------------------------------------------===//

#include "mw/MWUInt.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::mw;
using mw::Bignum;

namespace {

template <unsigned W> void addSubRoundTrip(std::uint64_t Seed) {
  Rng R(Seed);
  for (int I = 0; I < 300; ++I) {
    Bignum A = Bignum::randomBits(R, 1 + R.below(64 * W));
    Bignum B = Bignum::randomBits(R, 1 + R.below(64 * W));
    auto MA = MWUInt<W>::fromBignum(A), MB = MWUInt<W>::fromBignum(B);
    Word Carry, Borrow;
    MWUInt<W> Sum = MA.addWithCarry(MB, Carry);
    // Sum + carry*2^(64W) == A + B.
    Bignum Expect = A + B;
    EXPECT_EQ(Sum.toBignum() + (Bignum(Carry) << (64 * W)), Expect);
    MWUInt<W> Back = Sum.subWithBorrow(MB, Borrow);
    EXPECT_EQ(Back.toBignum(), (Expect - B).truncate(64 * W));
  }
}

template <unsigned W> void mulBothAlgorithms(std::uint64_t Seed) {
  Rng R(Seed);
  for (int I = 0; I < 200; ++I) {
    Bignum A = Bignum::randomBits(R, 1 + R.below(64 * W));
    Bignum B = Bignum::randomBits(R, 1 + R.below(64 * W));
    auto MA = MWUInt<W>::fromBignum(A), MB = MWUInt<W>::fromBignum(B);
    auto School = MA.mulFull(MB, MulAlgorithm::Schoolbook);
    auto Kara = MA.mulFull(MB, MulAlgorithm::Karatsuba);
    EXPECT_EQ(School.toBignum(), A * B);
    EXPECT_EQ(Kara.toBignum(), A * B) << "Karatsuba diverges at W=" << W;
  }
}

template <unsigned W> void shiftsMatchOracle(std::uint64_t Seed) {
  Rng R(Seed);
  for (int I = 0; I < 200; ++I) {
    Bignum A = Bignum::randomBits(R, 1 + R.below(64 * W));
    auto MA = MWUInt<W>::fromBignum(A);
    unsigned S = R.below(64 * W);
    EXPECT_EQ(MA.shr(S).toBignum(), A >> S);
    EXPECT_EQ(MA.shl(S).toBignum(), (A << S).truncate(64 * W));
  }
}

} // namespace

TEST(MWUInt, AddSubW2) { addSubRoundTrip<2>(101); }
TEST(MWUInt, AddSubW3) { addSubRoundTrip<3>(102); }
TEST(MWUInt, AddSubW4) { addSubRoundTrip<4>(103); }
TEST(MWUInt, AddSubW6) { addSubRoundTrip<6>(104); }
TEST(MWUInt, AddSubW8) { addSubRoundTrip<8>(105); }
TEST(MWUInt, AddSubW12) { addSubRoundTrip<12>(106); }
TEST(MWUInt, AddSubW16) { addSubRoundTrip<16>(107); }

TEST(MWUInt, MulW1) { mulBothAlgorithms<1>(110); }
TEST(MWUInt, MulW2) { mulBothAlgorithms<2>(111); }
TEST(MWUInt, MulW3) { mulBothAlgorithms<3>(112); }
TEST(MWUInt, MulW4) { mulBothAlgorithms<4>(113); }
TEST(MWUInt, MulW6) { mulBothAlgorithms<6>(114); }
TEST(MWUInt, MulW8) { mulBothAlgorithms<8>(115); }
TEST(MWUInt, MulW12) { mulBothAlgorithms<12>(116); }
TEST(MWUInt, MulW16) { mulBothAlgorithms<16>(117); }
// Odd word counts drive the Karatsuba odd-size fallback and unbalanced
// recursion (10 -> 5 -> schoolbook, 14 -> 7 -> schoolbook).
TEST(MWUInt, MulW5) { mulBothAlgorithms<5>(118); }
TEST(MWUInt, MulW7) { mulBothAlgorithms<7>(119); }
TEST(MWUInt, MulW9) { mulBothAlgorithms<9>(125); }
TEST(MWUInt, MulW10) { mulBothAlgorithms<10>(126); }
TEST(MWUInt, MulW11) { mulBothAlgorithms<11>(127); }
TEST(MWUInt, MulW13) { mulBothAlgorithms<13>(128); }
TEST(MWUInt, MulW14) { mulBothAlgorithms<14>(129); }
TEST(MWUInt, MulW15) { mulBothAlgorithms<15>(135); }

TEST(MWUInt, ShiftsW2) { shiftsMatchOracle<2>(120); }
TEST(MWUInt, ShiftsW4) { shiftsMatchOracle<4>(121); }
TEST(MWUInt, ShiftsW6) { shiftsMatchOracle<6>(122); }
TEST(MWUInt, ShiftsW16) { shiftsMatchOracle<16>(123); }

TEST(MWUInt, CompareMatchesOracle) {
  Rng R(130);
  for (int I = 0; I < 500; ++I) {
    Bignum A = Bignum::randomBits(R, 1 + R.below(256));
    Bignum B = Bignum::randomBits(R, 1 + R.below(256));
    auto MA = MWUInt<4>::fromBignum(A), MB = MWUInt<4>::fromBignum(B);
    EXPECT_EQ(MA < MB, A < B);
    EXPECT_EQ(MA == MB, A == B);
    EXPECT_EQ(MA >= MB, A >= B);
  }
}

TEST(MWUInt, MulLowMatchesTruncatedProduct) {
  Rng R(131);
  for (int I = 0; I < 300; ++I) {
    Bignum A = Bignum::randomBits(R, 1 + R.below(256));
    Bignum B = Bignum::randomBits(R, 1 + R.below(256));
    auto MA = MWUInt<4>::fromBignum(A), MB = MWUInt<4>::fromBignum(B);
    EXPECT_EQ(MA.mulLow(MB).toBignum(), (A * B).truncate(256));
  }
}

TEST(MWUInt, ResizeTruncatesAndExtends) {
  Rng R(132);
  Bignum A = Bignum::randomBits(R, 250);
  auto M4 = MWUInt<4>::fromBignum(A);
  EXPECT_EQ(M4.resize<8>().toBignum(), A);
  EXPECT_EQ(M4.resize<2>().toBignum(), A.truncate(128));
}

TEST(MWUInt, ZeroAndFromWord) {
  MWUInt<3> Z;
  EXPECT_TRUE(Z.isZero());
  auto One = MWUInt<3>::fromWord(1);
  EXPECT_FALSE(One.isZero());
  EXPECT_TRUE(One.toBignum().isOne());
}

TEST(MWUInt, KaratsubaCarryStress) {
  // All-ones halves force both half-sum carries in the Karatsuba rule.
  for (unsigned Rep = 0; Rep < 4; ++Rep) {
    Bignum A = Bignum::powerOfTwo(256) - Bignum(1 + Rep);
    Bignum B = Bignum::powerOfTwo(256) - Bignum(17 + Rep);
    auto MA = MWUInt<4>::fromBignum(A), MB = MWUInt<4>::fromBignum(B);
    EXPECT_EQ(MA.mulFull(MB, MulAlgorithm::Karatsuba).toBignum(), A * B);
  }
}
