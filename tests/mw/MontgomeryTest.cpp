//===- tests/mw/MontgomeryTest.cpp - Montgomery reduction --------------------===//
//
// The full-bit-width modulus path mentioned in paper §5.2 (Barrett needs
// m <= w-4; Montgomery does not).
//
//===----------------------------------------------------------------------===//

#include "mw/Montgomery.h"

#include "field/PrimeGen.h"
#include "mw/Barrett.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::mw;
using mw::Bignum;

TEST(Montgomery, NegInvModWord) {
  Rng R(301);
  for (int I = 0; I < 500; ++I) {
    Word Q = R.next64() | 1;
    Word Inv = negInvModWord(Q);
    EXPECT_EQ(static_cast<Word>(Q * Inv), static_cast<Word>(-1))
        << "q * (-q^-1) must be -1 mod 2^64";
  }
}

namespace {

template <unsigned W>
void montgomeryProperty(unsigned MBits, std::uint64_t Seed, int Iters = 300) {
  Rng R(Seed);
  Bignum Q = field::nttPrime(MBits, 10, Seed);
  Montgomery<W> M = Montgomery<W>::create(Q);
  for (int I = 0; I < Iters; ++I) {
    Bignum A = Bignum::random(R, Q), B = Bignum::random(R, Q);
    auto MA = MWUInt<W>::fromBignum(A), MB = MWUInt<W>::fromBignum(B);
    EXPECT_EQ(M.mulMod(MA, MB).toBignum(), (A * B) % Q);
    // Round trip through the Montgomery domain.
    EXPECT_EQ(M.fromMont(M.toMont(MA)).toBignum(), A);
  }
}

} // namespace

TEST(Montgomery, MulMod124In2Words) { montgomeryProperty<2>(124, 310); }
TEST(Montgomery, MulMod252In4Words) { montgomeryProperty<4>(252, 311); }

// Full-width moduli: exactly 64*W bits, which Barrett cannot host.
TEST(Montgomery, FullWidth128) { montgomeryProperty<2>(128, 312); }
TEST(Montgomery, FullWidth256) { montgomeryProperty<4>(256, 313, 150); }
TEST(Montgomery, FullWidth512) { montgomeryProperty<8>(512, 314, 80); }

TEST(Montgomery, MontDomainMulIsIsomorphic) {
  Rng R(320);
  Bignum Q = field::nttPrime(128, 10);
  Montgomery<2> M = Montgomery<2>::create(Q);
  for (int I = 0; I < 100; ++I) {
    Bignum A = Bignum::random(R, Q), B = Bignum::random(R, Q);
    auto MontA = M.toMont(MWUInt<2>::fromBignum(A));
    auto MontB = M.toMont(MWUInt<2>::fromBignum(B));
    auto MontC = M.mulMont(MontA, MontB);
    EXPECT_EQ(M.fromMont(MontC).toBignum(), (A * B) % Q);
  }
}

TEST(Montgomery, OneIsRModQ) {
  Bignum Q = field::nttPrime(124, 10);
  Montgomery<2> M = Montgomery<2>::create(Q);
  EXPECT_EQ(M.one().toBignum(), Bignum::powerOfTwo(128) % Q);
  // toMont(1) == R mod q.
  EXPECT_EQ(M.toMont(MWUInt<2>::fromWord(1)).toBignum(),
            Bignum::powerOfTwo(128) % Q);
}

TEST(Montgomery, AddSubModMatchOracle) {
  Rng R(321);
  Bignum Q = field::nttPrime(128, 10);
  Montgomery<2> M = Montgomery<2>::create(Q);
  for (int I = 0; I < 200; ++I) {
    Bignum A = Bignum::random(R, Q), B = Bignum::random(R, Q);
    auto MA = MWUInt<2>::fromBignum(A), MB = MWUInt<2>::fromBignum(B);
    EXPECT_EQ(M.addMod(MA, MB).toBignum(), (A + B) % Q);
    EXPECT_EQ(M.subMod(MA, MB).toBignum(), A.subMod(B, Q));
  }
}

TEST(Montgomery, RejectsEvenModulus) {
  EXPECT_DEATH((void)Montgomery<2>::create(Bignum(100)), "odd");
}

TEST(Montgomery, AgreesWithBarrettWherBothApply) {
  Rng R(322);
  Bignum Q = field::nttPrime(124, 10);
  Montgomery<2> M = Montgomery<2>::create(Q);
  mw::Barrett<2> Bar = mw::Barrett<2>::create(Q);
  for (int I = 0; I < 200; ++I) {
    Bignum A = Bignum::random(R, Q), B = Bignum::random(R, Q);
    auto MA = MWUInt<2>::fromBignum(A), MB = MWUInt<2>::fromBignum(B);
    EXPECT_EQ(M.mulMod(MA, MB).toBignum(), Bar.mulMod(MA, MB).toBignum());
  }
}
