//===- tests/mw/BarrettTest.cpp - multi-word Barrett reduction ---------------===//
//
// Property tests of the generalized Listing 4 (paper §3.2): the Barrett
// error bound must hold with a single conditional subtraction across all
// word counts, moduli, and both multiplication rules.
//
//===----------------------------------------------------------------------===//

#include "mw/Barrett.h"

#include "field/PrimeGen.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::mw;
using mw::Bignum;

namespace {

template <unsigned W>
void mulModProperty(unsigned MBits, MulAlgorithm Alg, std::uint64_t Seed,
                    int Iters = 400) {
  Rng R(Seed);
  Bignum Q = field::nttPrime(MBits, 12, /*Seed=*/Seed);
  Barrett<W> Ctx = Barrett<W>::create(Q, Alg);
  EXPECT_EQ(Ctx.modulusBits(), MBits);
  for (int I = 0; I < Iters; ++I) {
    Bignum A = Bignum::random(R, Q), B = Bignum::random(R, Q);
    auto MA = MWUInt<W>::fromBignum(A), MB = MWUInt<W>::fromBignum(B);
    EXPECT_EQ(Ctx.mulMod(MA, MB).toBignum(), (A * B) % Q)
        << "W=" << W << " m=" << MBits;
  }
}

template <unsigned W> void addSubModProperty(unsigned MBits, std::uint64_t Seed) {
  Rng R(Seed);
  Bignum Q = field::nttPrime(MBits, 12, Seed);
  Barrett<W> Ctx = Barrett<W>::create(Q);
  for (int I = 0; I < 400; ++I) {
    Bignum A = Bignum::random(R, Q), B = Bignum::random(R, Q);
    auto MA = MWUInt<W>::fromBignum(A), MB = MWUInt<W>::fromBignum(B);
    EXPECT_EQ(Ctx.addMod(MA, MB).toBignum(), (A + B) % Q);
    EXPECT_EQ(Ctx.subMod(MA, MB).toBignum(), A.subMod(B, Q));
  }
}

} // namespace

TEST(Barrett, MulMod128Schoolbook) {
  mulModProperty<2>(124, MulAlgorithm::Schoolbook, 201);
}
TEST(Barrett, MulMod128Karatsuba) {
  mulModProperty<2>(124, MulAlgorithm::Karatsuba, 202);
}
TEST(Barrett, MulMod256Schoolbook) {
  mulModProperty<4>(252, MulAlgorithm::Schoolbook, 203);
}
TEST(Barrett, MulMod256Karatsuba) {
  mulModProperty<4>(252, MulAlgorithm::Karatsuba, 204);
}
TEST(Barrett, MulMod384Schoolbook) {
  mulModProperty<6>(380, MulAlgorithm::Schoolbook, 205, 200);
}
TEST(Barrett, MulMod512Karatsuba) {
  mulModProperty<8>(508, MulAlgorithm::Karatsuba, 206, 200);
}
TEST(Barrett, MulMod768Schoolbook) {
  mulModProperty<12>(764, MulAlgorithm::Schoolbook, 207, 100);
}
TEST(Barrett, MulMod1024Schoolbook) {
  mulModProperty<16>(1020, MulAlgorithm::Schoolbook, 208, 60);
}

// ZKP-style non-power-of-two widths (381-bit BLS12-381-like, 753-bit
// MNT4753-like) in exact word containers.
TEST(Barrett, MulMod381In6Words) {
  mulModProperty<6>(377, MulAlgorithm::Schoolbook, 209, 200);
}
TEST(Barrett, MulMod753In12Words) {
  mulModProperty<12>(749, MulAlgorithm::Schoolbook, 210, 80);
}
// Small moduli inside large containers (the padding case the rewrite
// system prunes).
TEST(Barrett, SmallModulusInWideContainer) {
  mulModProperty<8>(124, MulAlgorithm::Schoolbook, 211, 200);
}

// Odd/irregular word counts: every FHE/ZKP width class between the
// power-of-two containers.
TEST(Barrett, MulMod320In5Words) {
  mulModProperty<5>(316, MulAlgorithm::Karatsuba, 212, 150);
}
TEST(Barrett, MulMod448In7Words) {
  mulModProperty<7>(444, MulAlgorithm::Schoolbook, 213, 150);
}
TEST(Barrett, MulMod576In9Words) {
  mulModProperty<9>(572, MulAlgorithm::Schoolbook, 214, 100);
}
TEST(Barrett, MulMod640In10Words) {
  mulModProperty<10>(636, MulAlgorithm::Karatsuba, 215, 100);
}
TEST(Barrett, MulMod896In14Words) {
  mulModProperty<14>(892, MulAlgorithm::Karatsuba, 216, 60);
}

TEST(Barrett, AddSubMod128) { addSubModProperty<2>(124, 220); }
TEST(Barrett, AddSubMod256) { addSubModProperty<4>(252, 221); }
TEST(Barrett, AddSubMod768) { addSubModProperty<12>(764, 222); }

TEST(Barrett, AddModWrapsExactlyToZero) {
  Bignum Q = field::nttPrime(124, 12);
  Barrett<2> Ctx = Barrett<2>::create(Q);
  auto QM1 = MWUInt<2>::fromBignum(Q - Bignum(1));
  auto One = MWUInt<2>::fromWord(1);
  EXPECT_TRUE(Ctx.addMod(QM1, One).isZero());
}

TEST(Barrett, SubModZeroMinusX) {
  Bignum Q = field::nttPrime(124, 12);
  Barrett<2> Ctx = Barrett<2>::create(Q);
  auto X = MWUInt<2>::fromWord(5);
  EXPECT_EQ(Ctx.subMod(MWUInt<2>(), X).toBignum(), Q - Bignum(5));
}

TEST(Barrett, MulModCornerOperands) {
  Bignum Q = field::nttPrime(252, 12);
  Barrett<4> Ctx = Barrett<4>::create(Q);
  auto Zero = MWUInt<4>();
  auto One = MWUInt<4>::fromWord(1);
  auto QM1 = MWUInt<4>::fromBignum(Q - Bignum(1));
  EXPECT_TRUE(Ctx.mulMod(Zero, QM1).isZero());
  EXPECT_EQ(Ctx.mulMod(One, QM1).toBignum(), Q - Bignum(1));
  // (q-1)^2 mod q == 1.
  EXPECT_TRUE(Ctx.mulMod(QM1, QM1).toBignum().isOne());
}

TEST(Barrett, PowModMatchesOracle) {
  Rng R(230);
  Bignum Q = field::nttPrime(124, 12);
  Barrett<2> Ctx = Barrett<2>::create(Q);
  for (int I = 0; I < 30; ++I) {
    Bignum A = Bignum::random(R, Q);
    Bignum E = Bignum::randomBits(R, 1 + R.below(80));
    EXPECT_EQ(Ctx.powMod(MWUInt<2>::fromBignum(A), E).toBignum(),
              A.powMod(E, Q));
  }
}

TEST(Barrett, MuMatchesDefinition) {
  // mu = floor(2^(2m+3) / q), Eq. 16 with k = 2m+3.
  Bignum Q = field::nttPrime(252, 12);
  Barrett<4> Ctx = Barrett<4>::create(Q);
  EXPECT_EQ(Ctx.mu().toBignum(), Bignum::powerOfTwo(2 * 252 + 3) / Q);
}

// Regression for the truncated-subtraction crash: c = t - e*q is computed
// on the low W words, and the W-word subtraction legitimately borrows
// whenever the product t = a*b spills into the high words (any t >=
// 2^(64W)). The old assert on that borrow aborted every such mulMod and
// crashed PrimeField.Axioms128 and the NTT sweeps. These operands force
// the spill deterministically.
TEST(Barrett, MulModProductWithHighWordsW2) {
  Bignum Q = field::nttPrime(124, 12, 301);
  Barrett<2> Ctx = Barrett<2>::create(Q);
  Bignum A = Q - Bignum(1), B = Q - Bignum(2);
  ASSERT_GT((A * B).bitWidth(), 128u) << "product must have nonzero high words";
  EXPECT_EQ(
      Ctx.mulMod(MWUInt<2>::fromBignum(A), MWUInt<2>::fromBignum(B)).toBignum(),
      (A * B) % Q);
}

TEST(Barrett, MulModProductWithHighWordsW4) {
  Bignum Q = field::nttPrime(252, 12, 302);
  Barrett<4> Ctx = Barrett<4>::create(Q, MulAlgorithm::Karatsuba);
  Bignum A = Q - Bignum(1), B = Q - Bignum(1);
  ASSERT_GT((A * B).bitWidth(), 256u) << "product must have nonzero high words";
  EXPECT_EQ(
      Ctx.mulMod(MWUInt<4>::fromBignum(A), MWUInt<4>::fromBignum(B)).toBignum(),
      (A * B) % Q);
}

using BarrettDeath = Barrett<2>;

// Regression for the power-of-two edge: with Q = 2^(m-1) at the width cap
// m = 64W-4, mu = 2^(m+4) needs 64W+1 bits and used to trip the fromBignum
// fit assert deep inside create(); it must be a clean rejection instead.
TEST(Barrett, RejectsPowerOfTwoModulus) {
  EXPECT_DEATH((void)Barrett<2>::create(Bignum::powerOfTwo(123)),
               "power-of-two");
  EXPECT_DEATH((void)Barrett<4>::create(Bignum::powerOfTwo(251)),
               "power-of-two");
  // Power-of-two moduli below the cap would fit but are rejected uniformly.
  EXPECT_DEATH((void)Barrett<2>::create(Bignum::powerOfTwo(64)),
               "power-of-two");
}

TEST(Barrett, RejectsOversizedModulus) {
  // 126 bits > 128-4: Barrett headroom violated.
  EXPECT_DEATH((void)Barrett<2>::create(Bignum::powerOfTwo(125) + Bignum(1)),
               "outside");
}

TEST(Barrett, RejectsTinyModulus) {
  EXPECT_DEATH((void)Barrett<2>::create(Bignum(1)), "outside");
}
