//===- tests/mw/LimbTest.cpp - single-word primitives -----------------------===//
//
// Covers paper §3.1 / Listing 1: the machine-word base case of MoMA.
//
//===----------------------------------------------------------------------===//

#include "mw/Limb.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace moma;
using namespace moma::mw;

TEST(Limb, AddCarryBasic) {
  Word C;
  EXPECT_EQ(addCarry(1, 2, 0, C), 3u);
  EXPECT_EQ(C, 0u);
  EXPECT_EQ(addCarry(~0ull, 1, 0, C), 0u);
  EXPECT_EQ(C, 1u);
  EXPECT_EQ(addCarry(~0ull, ~0ull, 1, C), ~0ull);
  EXPECT_EQ(C, 1u);
}

TEST(Limb, SubBorrowBasic) {
  Word B;
  EXPECT_EQ(subBorrow(5, 3, 0, B), 2u);
  EXPECT_EQ(B, 0u);
  EXPECT_EQ(subBorrow(3, 5, 0, B), static_cast<Word>(-2));
  EXPECT_EQ(B, 1u);
  EXPECT_EQ(subBorrow(0, 0, 1, B), ~0ull);
  EXPECT_EQ(B, 1u);
}

TEST(Limb, AddSubRoundTrip) {
  Rng R(1);
  for (int I = 0; I < 1000; ++I) {
    Word A = R.next64(), B = R.next64();
    Word C, Bw;
    Word Sum = addCarry(A, B, 0, C);
    Word Back = subBorrow(Sum, B, 0, Bw);
    EXPECT_EQ(Back, A);
    EXPECT_EQ(C, Bw) << "carry out must equal borrow back";
  }
}

TEST(Limb, MulWideAgainstInt128) {
  Rng R(2);
  for (int I = 0; I < 1000; ++I) {
    Word A = R.next64(), B = R.next64();
    Word Hi;
    Word Lo = mulWide(A, B, Hi);
    DWord P = static_cast<DWord>(A) * B;
    EXPECT_EQ(Lo, static_cast<Word>(P));
    EXPECT_EQ(Hi, static_cast<Word>(P >> 64));
  }
}

TEST(Limb, AddModMatchesDefinition) {
  Rng R(3);
  for (int I = 0; I < 2000; ++I) {
    Word Q = R.bits(60);
    if (Q < 3)
      continue;
    Word A = R.below(Q), B = R.below(Q);
    EXPECT_EQ(addMod(A, B, Q),
              static_cast<Word>((static_cast<DWord>(A) + B) % Q));
  }
}

TEST(Limb, AddModExactlyQGivesZero) {
  // The t == q edge the paper's listing mishandles with '>' (DESIGN.md).
  Word Q = (1ull << 59) + 9;
  EXPECT_EQ(addMod(Q - 1, 1, Q), 0u);
}

TEST(Limb, SubModMatchesDefinition) {
  Rng R(4);
  for (int I = 0; I < 2000; ++I) {
    Word Q = R.bits(60);
    if (Q < 3)
      continue;
    Word A = R.below(Q), B = R.below(Q);
    Word Expect = A >= B ? A - B : A + Q - B;
    EXPECT_EQ(subMod(A, B, Q), Expect);
  }
}

TEST(Limb, BarrettMuFitsWord) {
  Rng R(5);
  for (unsigned MBits : {16u, 31u, 48u, 60u}) {
    for (int I = 0; I < 50; ++I) {
      Word Q = R.bits(MBits) | 1;
      WordBarrett P = makeWordBarrett(Q, MBits);
      EXPECT_EQ(P.Q, Q);
      // Mu < 2^(MBits+4), hence it fits a word for MBits <= 60.
      EXPECT_LE(bitWidth(P.Mu), MBits + 4);
    }
  }
}

TEST(Limb, BarrettMatchesNaive) {
  Rng R(6);
  for (unsigned MBits : {8u, 20u, 40u, 59u, 60u}) {
    for (int I = 0; I < 2000; ++I) {
      Word Q = R.bits(MBits) | 1;
      if (Q < 3)
        continue;
      WordBarrett P = makeWordBarrett(Q, MBits);
      Word A = R.below(Q), B = R.below(Q);
      EXPECT_EQ(mulModBarrett(A, B, P), mulModNaive(A, B, Q))
          << "a=" << A << " b=" << B << " q=" << Q;
    }
  }
}

TEST(Limb, BarrettEdgeOperands) {
  Rng R(7);
  for (int I = 0; I < 200; ++I) {
    Word Q = R.bits(60) | 1;
    if (Q < 3)
      continue;
    WordBarrett P = makeWordBarrett(Q, 60);
    for (Word A : {Word(0), Word(1), Q - 1}) {
      for (Word B : {Word(0), Word(1), Q - 1}) {
        EXPECT_EQ(mulModBarrett(A, B, P), mulModNaive(A, B, Q));
      }
    }
  }
}

TEST(Limb, BitWidth) {
  EXPECT_EQ(bitWidth(0), 0u);
  EXPECT_EQ(bitWidth(1), 1u);
  EXPECT_EQ(bitWidth(2), 2u);
  EXPECT_EQ(bitWidth(255), 8u);
  EXPECT_EQ(bitWidth(~0ull), 64u);
}
