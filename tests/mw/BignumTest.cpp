//===- tests/mw/BignumTest.cpp - arbitrary-precision oracle ------------------===//

#include "mw/Bignum.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace moma;
using mw::Bignum;

TEST(Bignum, ConstructionAndObservers) {
  Bignum Z;
  EXPECT_TRUE(Z.isZero());
  EXPECT_EQ(Z.bitWidth(), 0u);
  Bignum One(1);
  EXPECT_TRUE(One.isOne());
  EXPECT_TRUE(One.isOdd());
  Bignum X(0xF0);
  EXPECT_EQ(X.bitWidth(), 8u);
  EXPECT_FALSE(X.isOdd());
  EXPECT_EQ(X.low64(), 0xF0u);
}

TEST(Bignum, HexRoundTrip) {
  for (const char *S :
       {"0x0", "0x1", "0xdeadbeef", "0x123456789abcdef0123456789abcdef",
        "0xffffffffffffffffffffffffffffffffffffffffffffffff"}) {
    EXPECT_EQ(Bignum::fromHex(S).toHex(), S);
  }
}

TEST(Bignum, DecimalRoundTrip) {
  for (const char *S : {"0", "1", "9", "18446744073709551616",
                        "340282366920938463463374607431768211457"}) {
    EXPECT_EQ(Bignum::fromDecimal(S).toDecimal(), S);
  }
}

TEST(Bignum, KnownDecimalHex) {
  EXPECT_EQ(Bignum::fromDecimal("255").toHex(), "0xff");
  EXPECT_EQ(Bignum::fromHex("0x100").toDecimal(), "256");
  // 2^128.
  EXPECT_EQ(Bignum::powerOfTwo(128).toDecimal(),
            "340282366920938463463374607431768211456");
}

TEST(Bignum, CompareOrdering) {
  Bignum A = Bignum::fromHex("0xffffffffffffffff");      // 2^64-1
  Bignum B = Bignum::fromHex("0x10000000000000000");     // 2^64
  EXPECT_LT(A.compare(B), 0);
  EXPECT_GT(B.compare(A), 0);
  EXPECT_EQ(A.compare(A), 0);
  EXPECT_TRUE(A < B && B > A && A <= A && A >= A && A != B);
}

TEST(Bignum, AddSubRoundTripRandom) {
  Rng R(21);
  for (int I = 0; I < 500; ++I) {
    Bignum A = Bignum::randomBits(R, 1 + R.below(512));
    Bignum B = Bignum::randomBits(R, 1 + R.below(512));
    Bignum S = A + B;
    EXPECT_EQ(S - B, A);
    EXPECT_EQ(S - A, B);
    EXPECT_TRUE(S >= A && S >= B);
  }
}

TEST(Bignum, MulDistributes) {
  Rng R(22);
  for (int I = 0; I < 200; ++I) {
    Bignum A = Bignum::randomBits(R, 1 + R.below(300));
    Bignum B = Bignum::randomBits(R, 1 + R.below(300));
    Bignum C = Bignum::randomBits(R, 1 + R.below(300));
    EXPECT_EQ(A * (B + C), A * B + A * C);
    EXPECT_EQ(A * B, B * A);
  }
}

TEST(Bignum, MulByZeroAndOne) {
  Bignum A = Bignum::fromHex("0x123456789abcdef00fedcba987654321");
  EXPECT_TRUE((A * Bignum(0)).isZero());
  EXPECT_EQ(A * Bignum(1), A);
}

TEST(Bignum, ShiftsInverse) {
  Rng R(23);
  for (int I = 0; I < 300; ++I) {
    Bignum A = Bignum::randomBits(R, 1 + R.below(700));
    unsigned S = R.below(200);
    EXPECT_EQ((A << S) >> S, A);
    EXPECT_EQ(A << S, A * Bignum::powerOfTwo(S));
  }
}

TEST(Bignum, TruncateMatchesMod) {
  Rng R(24);
  for (int I = 0; I < 300; ++I) {
    Bignum A = Bignum::randomBits(R, 1 + R.below(500));
    unsigned Bits = 1 + R.below(500);
    EXPECT_EQ(A.truncate(Bits), A % Bignum::powerOfTwo(Bits));
  }
}

TEST(Bignum, BitAccess) {
  Bignum A = Bignum::fromHex("0x5"); // 101
  EXPECT_TRUE(A.bit(0));
  EXPECT_FALSE(A.bit(1));
  EXPECT_TRUE(A.bit(2));
  EXPECT_FALSE(A.bit(64));
}

TEST(Bignum, DivRemReconstructs) {
  Rng R(25);
  for (int I = 0; I < 500; ++I) {
    Bignum A = Bignum::randomBits(R, 1 + R.below(768));
    Bignum B = Bignum::randomBits(R, 1 + R.below(512));
    auto [Q, Rem] = A.divRem(B);
    EXPECT_EQ(Q * B + Rem, A);
    EXPECT_LT(Rem.compare(B), 0);
  }
}

TEST(Bignum, DivRemSmallDivisor) {
  Rng R(26);
  for (int I = 0; I < 300; ++I) {
    Bignum A = Bignum::randomBits(R, 1 + R.below(768));
    Bignum B(R.next64() | 1);
    auto [Q, Rem] = A.divRem(B);
    EXPECT_EQ(Q * B + Rem, A);
    EXPECT_LT(Rem.compare(B), 0);
  }
}

TEST(Bignum, DivRemKnuthAddBackCase) {
  // Divisor with top limb 2^63 (normalized) and crafted dividend stress
  // the "add back" branch of Algorithm D.
  Bignum B = Bignum::powerOfTwo(127) + Bignum(1);
  Bignum A = (B * Bignum::fromHex("0xfffffffffffffffe")) + (B - Bignum(1));
  auto [Q, Rem] = A.divRem(B);
  EXPECT_EQ(Q * B + Rem, A);
  EXPECT_LT(Rem.compare(B), 0);
}

TEST(Bignum, DivideByLargerGivesZero) {
  Bignum A(5), B = Bignum::powerOfTwo(100);
  auto [Q, Rem] = A.divRem(B);
  EXPECT_TRUE(Q.isZero());
  EXPECT_EQ(Rem, A);
}

TEST(Bignum, DivideEqualGivesOne) {
  Bignum A = Bignum::fromHex("0xabcdef0123456789abcdef0123456789");
  auto [Q, Rem] = A.divRem(A);
  EXPECT_TRUE(Q.isOne());
  EXPECT_TRUE(Rem.isZero());
}

TEST(Bignum, ModularOpsDefinitions) {
  Rng R(27);
  for (int I = 0; I < 200; ++I) {
    Bignum Q = Bignum::randomBits(R, 1 + R.below(300)) + Bignum(2);
    Bignum A = Bignum::random(R, Q);
    Bignum B = Bignum::random(R, Q);
    EXPECT_EQ(A.addMod(B, Q), (A + B) % Q);
    EXPECT_EQ(A.mulMod(B, Q), (A * B) % Q);
    EXPECT_EQ(A.subMod(B, Q).addMod(B, Q), A % Q);
  }
}

TEST(Bignum, PowModSmallCases) {
  Bignum Q(97);
  EXPECT_EQ(Bignum(3).powMod(Bignum(0), Q), Bignum(1));
  EXPECT_EQ(Bignum(3).powMod(Bignum(1), Q), Bignum(3));
  EXPECT_EQ(Bignum(3).powMod(Bignum(96), Q), Bignum(1)); // Fermat
  EXPECT_EQ(Bignum(5).powMod(Bignum(2), Q), Bignum(25));
}

TEST(Bignum, PowModLawOfExponents) {
  Rng R(28);
  Bignum Q = Bignum::fromDecimal("100000000000000000039"); // prime
  for (int I = 0; I < 30; ++I) {
    Bignum A = Bignum::random(R, Q - Bignum(1)) + Bignum(1);
    Bignum E1(R.below(1000)), E2(R.below(1000));
    EXPECT_EQ(A.powMod(E1, Q).mulMod(A.powMod(E2, Q), Q),
              A.powMod(E1 + E2, Q));
  }
}

TEST(Bignum, InvModProperty) {
  Rng R(29);
  Bignum Q = Bignum::fromDecimal("100000000000000000039");
  for (int I = 0; I < 50; ++I) {
    Bignum A = Bignum::random(R, Q - Bignum(1)) + Bignum(1);
    Bignum Inv = A.invMod(Q);
    EXPECT_EQ(A.mulMod(Inv, Q), Bignum(1));
    EXPECT_LT(Inv.compare(Q), 0);
  }
}

TEST(Bignum, InvModPowerOfTwoModulus) {
  // Extended Euclid also handles non-prime moduli for odd values.
  Bignum Q = Bignum::powerOfTwo(64);
  Rng R(30);
  for (int I = 0; I < 50; ++I) {
    Bignum A(R.next64() | 1);
    EXPECT_EQ(A.mulMod(A.invMod(Q), Q), Bignum(1));
  }
}

TEST(Bignum, WordsRoundTrip) {
  Rng R(31);
  for (int I = 0; I < 100; ++I) {
    Bignum A = Bignum::randomBits(R, 1 + R.below(256));
    std::uint64_t W[4];
    A.toWords(W, 4);
    EXPECT_EQ(Bignum::fromWords(W, 4), A);
  }
}

TEST(Bignum, RandomBelowBound) {
  Rng R(32);
  Bignum Bound = Bignum::fromHex("0x10000000000000000000001");
  for (int I = 0; I < 100; ++I)
    EXPECT_LT(Bignum::random(R, Bound).compare(Bound), 0);
}

TEST(Bignum, RandomBitsExactWidth) {
  Rng R(33);
  for (unsigned Bits : {1u, 2u, 63u, 64u, 65u, 127u, 128u, 381u, 753u}) {
    EXPECT_EQ(Bignum::randomBits(R, Bits).bitWidth(), Bits);
  }
}
