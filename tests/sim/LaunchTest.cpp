//===- tests/sim/LaunchTest.cpp - simulated GPU launches ----------------------===//

#include "sim/Launch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

using namespace moma;
using namespace moma::sim;

TEST(Device, ProfilesMatchPaperTable2) {
  EXPECT_EQ(deviceH100().Cores, 16896u);
  EXPECT_EQ(deviceH100().MaxFreqMHz, 1980u);
  EXPECT_EQ(deviceRTX4090().Cores, 16384u);
  EXPECT_EQ(deviceRTX4090().MaxFreqMHz, 2595u);
  EXPECT_EQ(deviceV100().Cores, 5120u);
  EXPECT_EQ(deviceV100().MaxFreqMHz, 1530u);
  EXPECT_EQ(allDeviceProfiles().size(), 3u);
  std::string Table = deviceTable();
  EXPECT_NE(Table.find("H100"), std::string::npos);
  EXPECT_NE(Table.find("RTX4090"), std::string::npos);
  EXPECT_NE(Table.find("V100"), std::string::npos);
}

TEST(Launch, CoversEveryCoordinateExactlyOnce) {
  Device Dev;
  LaunchConfig Cfg;
  Cfg.GridX = 5;
  Cfg.GridY = 3;
  Cfg.BlockDim = 7;
  std::mutex M;
  std::set<std::tuple<unsigned, unsigned, unsigned>> Seen;
  Dev.launch(Cfg, [&](const LaunchCoord &C, SharedMem &) {
    std::lock_guard<std::mutex> Lock(M);
    auto [It, Inserted] = Seen.insert({C.BlockX, C.BlockY, C.ThreadX});
    EXPECT_TRUE(Inserted) << "duplicate coordinate";
  });
  EXPECT_EQ(Seen.size(), 5u * 3 * 7);
}

TEST(Launch, ValidateRejectsBadConfigs) {
  Device Dev;
  LaunchConfig Cfg;
  Cfg.BlockDim = 0;
  EXPECT_NE(Dev.validate(Cfg), "");
  Cfg.BlockDim = 2048; // > 1024, the paper's per-block thread limit
  EXPECT_NE(Dev.validate(Cfg), "");
  Cfg.BlockDim = 1024;
  Cfg.GridX = 0;
  EXPECT_NE(Dev.validate(Cfg), "");
  Cfg.GridX = 1;
  EXPECT_EQ(Dev.validate(Cfg), "");
}

TEST(Launch, InvalidLaunchAborts) {
  Device Dev;
  LaunchConfig Cfg;
  Cfg.BlockDim = 4096;
  EXPECT_DEATH(Dev.launch(Cfg, [](const LaunchCoord &, SharedMem &) {}),
               "exceeds the device limit");
}

TEST(SharedMem, AllocatesAlignedUntilExhausted) {
  SharedMem Shm(64);
  void *A = Shm.alloc(10);
  ASSERT_NE(A, nullptr);
  void *B = Shm.alloc(10);
  ASSERT_NE(B, nullptr);
  // 8-byte alignment between allocations.
  EXPECT_EQ((reinterpret_cast<uintptr_t>(B) -
             reinterpret_cast<uintptr_t>(A)) % 8, 0u);
  // 16 (rounded) + 16 used; 40 more than capacity fails.
  EXPECT_EQ(Shm.alloc(64), nullptr) << "over-capacity alloc must fail";
  Shm.reset();
  EXPECT_NE(Shm.alloc(64), nullptr) << "reset reclaims the arena";
}

TEST(SharedMem, PerBlockIsolation) {
  // Each block starts with a clean arena: writes from one block must not
  // be visible as leftover offsets in another.
  Device Dev;
  LaunchConfig Cfg;
  Cfg.GridX = 16;
  Cfg.BlockDim = 1;
  std::atomic<int> Failures{0};
  Dev.launch(Cfg, [&](const LaunchCoord &, SharedMem &Shm) {
    if (Shm.used() != 0)
      ++Failures; // arena must be reset per block
    void *P = Shm.alloc(1024);
    if (!P)
      ++Failures;
  });
  EXPECT_EQ(Failures.load(), 0);
}

TEST(Launch, ParallelForVisitsAll) {
  Device Dev;
  std::vector<std::atomic<int>> Hits(1000);
  Dev.parallelFor(1000, [&](std::uint64_t I) { ++Hits[I]; });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(Launch, ParallelForZeroAndOne) {
  Device Dev;
  int Count = 0;
  Dev.parallelFor(0, [&](std::uint64_t) { ++Count; });
  EXPECT_EQ(Count, 0);
  Dev.parallelFor(1, [&](std::uint64_t) { ++Count; });
  EXPECT_EQ(Count, 1);
}

TEST(Launch, SingleWorkerProfileIsSerial) {
  DeviceProfile P = deviceV100(); // HostThreads = 1
  Device Dev(P);
  EXPECT_EQ(Dev.workerCount(), 1u);
  // Serial execution preserves order within a block.
  std::vector<unsigned> Order;
  LaunchConfig Cfg;
  Cfg.BlockDim = 8;
  Dev.launch(Cfg, [&](const LaunchCoord &C, SharedMem &) {
    Order.push_back(C.ThreadX);
  });
  for (unsigned I = 0; I < 8; ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(Launch, NestedRunFailsFastInsteadOfDeadlocking) {
  // The documented contract: ThreadPool::run is not reentrant. A nested
  // run() used to corrupt the job state and deadlock silently; it must
  // now abort with a clear message — from the caller-as-worker thread...
  // (threadsafe style: the fork must not inherit a mutex a live aux
  // worker holds, which the default "fast" style risks.)
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ThreadPool Pool(2);
  EXPECT_DEATH(Pool.run(4, 1,
                        [&](std::uint64_t, std::uint64_t) {
                          Pool.run(1, 1,
                                   [](std::uint64_t, std::uint64_t) {});
                        }),
               "not reentrant");
}

TEST(Launch, NestedRunFailsFastOnTheSerialFallbackToo) {
  // ...and identically on a pool with no auxiliary workers (where the
  // nested call would happen to "work"), so the contract violation is
  // caught on every machine, not only multi-core ones.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ThreadPool Pool(1);
  EXPECT_DEATH(Pool.run(4, 1,
                        [&](std::uint64_t, std::uint64_t) {
                          Pool.run(1, 1,
                                   [](std::uint64_t, std::uint64_t) {});
                        }),
               "not reentrant");
}

TEST(Launch, SelfNestingIsStillCaughtAfterAnInnerPoolRan) {
  // The reentrancy marker restores the *previous* pool when an inner
  // pool's run() returns: Outer -> Inner -> Outer self-nesting must
  // still die, not slip past a cleared marker.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ThreadPool Outer(1), Inner(1);
  EXPECT_DEATH(
      Outer.run(2, 1,
                [&](std::uint64_t, std::uint64_t) {
                  Inner.run(1, 1, [](std::uint64_t, std::uint64_t) {});
                  Outer.run(1, 1, [](std::uint64_t, std::uint64_t) {});
                }),
      "not reentrant");
}

TEST(Launch, TwoPoolsMayNest) {
  // Only self-nesting is a bug; driving a second pool from inside a job
  // is legal (the sim-GPU backend's pool under a caller's pool).
  ThreadPool Outer(2), Inner(2);
  std::atomic<int> Count{0};
  Outer.run(2, 1, [&](std::uint64_t, std::uint64_t) {
    Inner.run(8, 1, [&](std::uint64_t B, std::uint64_t E) {
      Count += static_cast<int>(E - B);
    });
  });
  EXPECT_EQ(Count.load(), 16);
}

TEST(Launch, SequentialRunsAfterAFinishedRunStillWork) {
  // The reentrancy marker must clear when run() returns.
  ThreadPool Pool(2);
  for (int I = 0; I < 3; ++I) {
    std::atomic<int> Count{0};
    Pool.run(10, 2, [&](std::uint64_t B, std::uint64_t E) {
      Count += static_cast<int>(E - B);
    });
    EXPECT_EQ(Count.load(), 10);
  }
}

TEST(Launch, LaunchBlocksCoversEveryBlockExactlyOnce) {
  Device Dev;
  LaunchConfig Cfg;
  Cfg.GridX = 7;
  Cfg.GridY = 4;
  Cfg.BlockDim = 256; // the block fn owns its threads; not iterated here
  std::mutex M;
  std::set<std::pair<unsigned, unsigned>> Seen;
  Dev.launchBlocks(Cfg, [&](std::uint32_t BX, std::uint32_t BY) {
    std::lock_guard<std::mutex> Lock(M);
    auto [It, Inserted] = Seen.insert({BX, BY});
    EXPECT_TRUE(Inserted) << "duplicate block coordinate";
  });
  EXPECT_EQ(Seen.size(), 7u * 4);
}

TEST(Launch, LaunchBlocksValidatesGeometry) {
  Device Dev;
  LaunchConfig Cfg;
  Cfg.BlockDim = 4096;
  EXPECT_DEATH(Dev.launchBlocks(Cfg, [](std::uint32_t, std::uint32_t) {}),
               "exceeds the device limit");
}

TEST(Launch, DeterministicResultsAcrossRuns) {
  Device Dev;
  auto Run = [&] {
    std::vector<std::uint64_t> Out(512);
    Dev.parallelFor(512, [&](std::uint64_t I) { Out[I] = I * I + 7; });
    return Out;
  };
  EXPECT_EQ(Run(), Run());
}
