//===- tests/TestUtil.h - shared test helpers ------------------*- C++ -*-===//
//
// Helpers shared by the rewrite/codegen test suites: random input
// generation respecting KnownBits, port-word decomposition/reconstruction,
// and the lowered-vs-original interpreter equivalence check that is the
// semantic backbone of the rewrite-system tests.
//
//===----------------------------------------------------------------------===//

#ifndef MOMA_TESTS_TESTUTIL_H
#define MOMA_TESTS_TESTUTIL_H

#include "ir/Interp.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "rewrite/Lower.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <vector>

namespace moma {
namespace testutil {

/// The single seed source for every randomized test: the per-test default
/// unless the MOMA_TEST_SEED environment variable overrides it (decimal or
/// 0x-hex). Reproducing a CI failure is therefore always
/// `MOMA_TEST_SEED=<printed seed> ctest -R <test>`.
inline std::uint64_t testSeed(std::uint64_t Default) {
  const char *Env = std::getenv("MOMA_TEST_SEED");
  if (Env && *Env)
    return std::strtoull(Env, nullptr, 0);
  return Default;
}

/// Trial budget for the differential fuzz suites: the MOMA_FUZZ_ITERS
/// environment knob overrides \p Default (the nightly CI job raises it
/// far beyond the PR-loop default; heavyweight configurations divide the
/// budget down locally).
inline int fuzzIters(int Default = 500) {
  const char *Env = std::getenv("MOMA_FUZZ_ITERS");
  if (Env && *Env)
    return std::max(1, std::atoi(Env));
  return Default;
}

/// Rng for randomized tests: resolves its seed through testSeed() and
/// pushes it onto the gtest trace stack, so every assertion failure in
/// scope reports the seed that reproduces it.
class SeededRng : public Rng {
public:
  explicit SeededRng(std::uint64_t Default,
                     const char *File = __builtin_FILE(),
                     int Line = __builtin_LINE())
      : Rng(testSeed(Default)), Seed(testSeed(Default)),
        Trace(File, Line,
              ::testing::Message()
                  << "reproduce with MOMA_TEST_SEED=" << Seed) {}

  std::uint64_t seed() const { return Seed; }

private:
  std::uint64_t Seed;
  ::testing::ScopedTrace Trace;
};

/// Generates one random input vector for \p K: uniformly below
/// 2^KnownBits per input. Kernels with modulus ports need makeFieldInputs.
inline std::vector<mw::Bignum> randomInputs(const ir::Kernel &K, Rng &R) {
  std::vector<mw::Bignum> In;
  for (const ir::Param &P : K.inputs()) {
    unsigned Bits = K.value(P.Id).KnownBits;
    In.push_back(mw::Bignum::random(R, mw::Bignum::powerOfTwo(Bits)));
  }
  return In;
}

/// Flattens a port value into its stored words (most significant first,
/// skipping statically pruned words).
inline std::vector<mw::Bignum> decomposePort(const rewrite::LoweredPort &P,
                                             const mw::Bignum &V) {
  std::vector<mw::Bignum> Words;
  unsigned N = static_cast<unsigned>(P.Words.size());
  for (unsigned I = 0; I < N; ++I) {
    if (P.IsConstZero[I])
      continue;
    Words.push_back((V >> ((N - 1 - I) * P.WordBits)).truncate(P.WordBits));
  }
  return Words;
}

/// Reassembles port words produced by interpreting a lowered kernel.
inline mw::Bignum recomposePort(const rewrite::LoweredPort &P,
                                const std::vector<mw::Bignum> &Outs,
                                size_t &Cursor) {
  mw::Bignum Acc;
  for (size_t I = 0; I < P.Words.size(); ++I)
    Acc = (Acc << P.WordBits) + Outs[Cursor++];
  return Acc;
}

/// Interprets \p L on the decomposition of \p Inputs; returns one Bignum
/// per original output.
inline std::vector<mw::Bignum>
interpretLowered(const rewrite::LoweredKernel &L,
                 const std::vector<mw::Bignum> &Inputs) {
  std::vector<mw::Bignum> WordInputs;
  EXPECT_EQ(Inputs.size(), L.Inputs.size());
  for (size_t P = 0; P < L.Inputs.size(); ++P) {
    std::vector<mw::Bignum> Words = decomposePort(L.Inputs[P], Inputs[P]);
    WordInputs.insert(WordInputs.end(), Words.begin(), Words.end());
  }
  std::vector<mw::Bignum> Raw = ir::interpret(L.K, WordInputs);
  std::vector<mw::Bignum> Out;
  size_t Cursor = 0;
  for (const rewrite::LoweredPort &P : L.Outputs)
    Out.push_back(recomposePort(P, Raw, Cursor));
  return Out;
}

/// The central property: lowering must preserve semantics on every input.
/// \p MakeInputs supplies kernel inputs (defaults to randomInputs).
inline void expectLoweringEquivalence(
    const ir::Kernel &K, const rewrite::LoweredKernel &L, Rng &R, int Iters,
    const std::function<std::vector<mw::Bignum>(Rng &)> &MakeInputs) {
  ASSERT_TRUE(ir::verify(K).empty()) << ir::printKernel(K);
  auto Errs = ir::verify(L.K);
  ASSERT_TRUE(Errs.empty()) << Errs.front();
  for (int I = 0; I < Iters; ++I) {
    std::vector<mw::Bignum> In = MakeInputs(R);
    std::vector<mw::Bignum> Ref = ir::interpret(K, In);
    std::vector<mw::Bignum> Got = interpretLowered(L, In);
    ASSERT_EQ(Ref.size(), Got.size());
    for (size_t O = 0; O < Ref.size(); ++O)
      ASSERT_EQ(Got[O], Ref[O])
          << "output " << O << " diverges at iteration " << I << " of kernel "
          << K.Name;
  }
}

} // namespace testutil
} // namespace moma

#endif // MOMA_TESTS_TESTUTIL_H
