//===- bench/bench_fig1_ntt256.cpp - Paper Figure 1 ----------------------------===//
//
// Figure 1: 256-bit NTT runtime per butterfly across sizes, the paper's
// headline: MoMA on a commodity GPU outperforms ICICLE on H100 by ~14x
// and approaches the FPMM ASIC.
//
// Substitution (DESIGN.md §4): no GPU/ASIC here. We measure MoMA and the
// generic-multiprecision baseline on the same simulated device and replay
// the paper-reported cross-platform factors as labelled constants.
//
//===----------------------------------------------------------------------===//

#include "NttBenchCommon.h"

#include "sim/Device.h"

using namespace moma;
using namespace moma::bench;

int main(int argc, char **argv) {
  deviceSection("Figure 1: 256-bit NTT, runtime per butterfly vs size");

  unsigned MaxLog = maxLog2N(14);
  size_t Batch = fastMode() ? 2 : 4;
  std::vector<unsigned> Sizes;
  for (unsigned L = 8; L <= MaxLog; L += 2)
    Sizes.push_back(L);

  // The fused-runtime series: batched transforms through the dispatch
  // runtime at stage-fusion depths 1 and 3 (log2(n) vs ceil(log2(n)/3)
  // dispatches per transform).
  std::vector<unsigned> RtSizes;
  for (unsigned L = 8; L <= std::min(MaxLog, 12u); L += 2)
    RtSizes.push_back(L);
  size_t RtBatch = fastMode() ? 2 : 8;

  for (unsigned L : Sizes) {
    registerMomaNtt<4>(L, Batch, sim::deviceH100());
    if (L <= 12)
      registerGmpLikeNtt(256, L);
  }
  for (unsigned L : RtSizes)
    for (unsigned Depth : {1u, 3u})
      registerRuntimeNtt(256, L, RtBatch, Depth);

  Collector C = runAll(argc, argv);

  banner("Figure 1 series (ns per butterfly, 256-bit elements)");
  TextTable T({"log2(n)", "MoMA (sim H100)", "GMP-like NTT", "speedup"});
  double WorstSpeedup = 1e30;
  for (unsigned L : Sizes) {
    double M = nsPerButterfly(C, formatv("moma/ntt/256/n%u", L), L, Batch);
    double G = L <= 12
                   ? nsPerButterfly(C, formatv("gmplike/ntt/256/n%u", L), L, 1)
                   : -1;
    if (G > 0 && M > 0)
      WorstSpeedup = std::min(WorstSpeedup, G / M);
    T.addRow({formatv("%u", L), formatNanos(M),
              G > 0 ? formatNanos(G) : "-",
              G > 0 ? formatv("%.1fx", G / M) : "-"});
  }
  bench::report(T.render());

  banner("Fused runtime pipeline (256-bit batched transforms, ns per "
         "butterfly)");
  TextTable RT({"log2(n)", "dispatches f1 -> f3", "depth 1", "depth 3",
                "fusion speedup"});
  double BestFuse = 0;
  for (unsigned L : RtSizes) {
    double F1 = nsPerButterfly(
        C, formatv("runtime/ntt/256/n%u/f1", L), L, RtBatch);
    double F3 = nsPerButterfly(
        C, formatv("runtime/ntt/256/n%u/f3", L), L, RtBatch);
    if (F1 > 0 && F3 > 0)
      BestFuse = std::max(BestFuse, F1 / F3);
    RT.addRow({formatv("%u", L), formatv("%u -> %u", L, (L + 2) / 3),
               F1 > 0 ? formatNanos(F1) : "-",
               F3 > 0 ? formatNanos(F3) : "-",
               F1 > 0 && F3 > 0 ? formatv("%.2fx", F1 / F3) : "-"});
  }
  bench::report(RT.render());

  banner("Paper-reported context (not measurable here; Figure 1 caption)");
  bench::reportf(
      "  MoMA on RTX 4090 vs ICICLE on H100:        14x faster (average)\n"
      "  MoMA on RTX 4090 vs FPMM ASIC [63]:        near-ASIC performance\n");

  banner("Shape verdicts vs paper Figure 1");
  verdict("256-bit NTT: MoMA beats the generic multiprecision library",
          WorstSpeedup, 14.0);
  verdict("fused stages: depth 3 beats depth 1 on a 256-bit batch",
          BestFuse, 1.0);
  benchmark::Shutdown();
  return 0;
}
