//===- bench/bench_ablation_pruning.cpp - non-pow2 pruning ablation ------------===//
//
// Ablation called out in DESIGN.md: how much does the paper's §4
// non-power-of-two optimization (statically-zero word pruning) buy?
//
// Two measurements:
//  1. Static: word-op counts of the lowered+simplified mulmod kernel with
//     the real width vs naive zero-padding to the container width.
//  2. Dynamic: Barrett mulmod throughput with exact-word containers vs
//     padded containers in the runtime library.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "field/PrimeGen.h"
#include "kernels/ScalarKernels.h"
#include "mw/Barrett.h"
#include "rewrite/Lower.h"
#include "rewrite/Simplify.h"
#include "rewrite/Stats.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace moma;
using namespace moma::bench;
using namespace moma::rewrite;
using mw::Bignum;

namespace {

OpStats loweredStats(unsigned Container, unsigned ModBits) {
  kernels::ScalarKernelSpec Spec{Container, ModBits};
  LoweredKernel L = lowerToWords(kernels::buildMulModKernel(Spec), {});
  simplifyLowered(L);
  return countOps(L.K);
}

template <unsigned W> void registerMulModThroughput(const char *Tag,
                                                    unsigned MBits) {
  Bignum Q = field::nttPrime(MBits, 8);
  auto Ctx = std::make_shared<mw::Barrett<W>>(mw::Barrett<W>::create(Q));
  Rng R(0xAB1A + W);
  auto A = std::make_shared<mw::MWUInt<W>>(
      mw::MWUInt<W>::fromBignum(Bignum::random(R, Q)));
  auto B = std::make_shared<mw::MWUInt<W>>(
      mw::MWUInt<W>::fromBignum(Bignum::random(R, Q)));
  registerBench(Tag, [Ctx, A, B](benchmark::State &S) {
    mw::MWUInt<W> Acc = *A;
    for (auto _ : S) {
      Acc = Ctx->mulMod(Acc, *B);
      benchmark::DoNotOptimize(Acc);
    }
  })->Unit(benchmark::kNanosecond);
}

} // namespace

int main(int argc, char **argv) {
  banner("Ablation: non-power-of-two pruning (paper 4, Eq. 35/36)");

  struct Case {
    unsigned Lambda;    // real modulus bits (ZKP/FHE shapes from 5.2)
    unsigned Container; // power-of-two container
    const char *What;
  };
  const Case Cases[] = {
      {116, 128, "FHE modulus [52]"},
      {377, 512, "BLS12-381-class"},
      {380, 512, "generic 384-bit class"},
      {753, 1024, "MNT4753-class"},
  };

  banner("Static op counts: pruned vs zero-padded mulmod kernels");
  TextTable T({"modulus", "container", "ops padded", "ops pruned",
               "muls padded", "muls pruned", "total saved"});
  for (const Case &Cs : Cases) {
    OpStats Padded = loweredStats(Cs.Container, Cs.Container - 4);
    OpStats Pruned = loweredStats(Cs.Container, Cs.Lambda);
    T.addRow({formatv("%u-bit (%s)", Cs.Lambda, Cs.What),
              formatv("%u", Cs.Container), formatv("%u", Padded.Total),
              formatv("%u", Pruned.Total), formatv("%u", Padded.multiplies()),
              formatv("%u", Pruned.multiplies()),
              formatv("%.0f%%",
                      100.0 * (1.0 - double(Pruned.Total) /
                                         double(Padded.Total)))});
  }
  bench::report(T.render());

  // Dynamic: exact-word vs padded runtime containers.
  registerMulModThroughput<6>("runtime/mulmod380/exact6words", 380);
  registerMulModThroughput<8>("runtime/mulmod380/padded8words", 380);
  registerMulModThroughput<12>("runtime/mulmod753/exact12words", 749);
  registerMulModThroughput<16>("runtime/mulmod753/padded16words", 749);

  Collector C = runAll(argc, argv);

  banner("Dynamic throughput: exact-word vs padded containers");
  double E6 = lookupNs(C, "runtime/mulmod380/exact6words");
  double P8 = lookupNs(C, "runtime/mulmod380/padded8words");
  double E12 = lookupNs(C, "runtime/mulmod753/exact12words");
  double P16 = lookupNs(C, "runtime/mulmod753/padded16words");
  verdict("380-bit mulmod: 6-word container faster than 8-word", P8 / E6,
          1.3);
  verdict("753-bit mulmod: 12-word container faster than 16-word",
          P16 / E12, 1.3);
  benchmark::Shutdown();
  return 0;
}
