//===- bench/bench_server.cpp - serving-layer throughput and latency ---------===//
//
// The serving-layer claims of service/Server.h, measured two ways:
//
//   1. BURST — a same-key burst submitted through the coalescer executes
//      in strictly fewer batched dispatches than requests, bit-identical
//      to serial dispatch, and beats the one-request-per-dispatch
//      configuration (MaxBatch=1, zero window) in wall-clock: the
//      per-dispatch fixed costs (plan binding, key canonicalization,
//      backend launch) amortize over the coalesced batch. On this
//      single-core CI substrate the win is amortization, not
//      parallelism — the honest analogue of the GPU's batched-launch
//      economics.
//
//   2. OPEN LOOP — client threads submitting polynomial products at a
//      fixed inter-arrival rate; the bench reports sustained req/s and
//      p50/p99 request latency (submit -> Reply.Done) under the
//      coalescing configuration.
//
// `--smoke` shrinks the load to a seconds-scale wiring check (the CI
// gate); `--json <path>` writes the flat metric document the
// perf-trajectory artifact trends. Determinism discipline for
// tools/bench_compare.py: only genuinely reproducible values use the
// exact-match `_count`/`_ok` suffixes; timings use `_ns` (ratio-gated)
// and rates/ratios use presence-only names.
//
// Standalone on purpose: links only the moma library (no
// google-benchmark), so the serving-layer gate runs on every builder,
// including those without libbenchmark where the figure benches are
// skipped.
//
//===----------------------------------------------------------------------===//

#include "field/PrimeGen.h"
#include "runtime/Dispatcher.h"
#include "service/Server.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace moma;
using namespace moma::runtime;
using moma::service::Reply;
using moma::service::Server;
using moma::service::ServerOptions;
using mw::Bignum;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

/// Recorded metrics, written as the same flat JSON document the
/// Harness.h-based benches emit (bench_compare.py consumes both).
std::vector<std::pair<std::string, double>> Metrics;

void recordMetric(const std::string &Name, double Value) {
  Metrics.emplace_back(Name, Value);
}

bool writeJsonReport(const std::string &Path, const std::string &BenchName) {
  if (Path.empty())
    return true;
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << "{\n  \"bench\": \"" << BenchName << "\",\n  \"unix_time\": "
      << static_cast<long long>(std::time(nullptr))
      << ",\n  \"metrics\": {";
  bool First = true;
  for (const auto &M : Metrics) {
    Out << (First ? "" : ",") << "\n    \"" << M.first
        << "\": " << formatv("%.3f", M.second);
    First = false;
  }
  Out << "\n  }\n}\n";
  return static_cast<bool>(Out);
}

/// Nearest-rank percentile over an unsorted sample (sorts in place).
double percentileNs(std::vector<double> &Ns, double Q) {
  if (Ns.empty())
    return -1;
  std::sort(Ns.begin(), Ns.end());
  size_t Idx = static_cast<size_t>(Q * (Ns.size() - 1) + 0.5);
  return Ns[std::min(Idx, Ns.size() - 1)];
}

std::vector<std::uint64_t> randomWords(Rng &R, const Bignum &Q, size_t N) {
  std::vector<Bignum> E;
  for (size_t I = 0; I < N; ++I)
    E.push_back(Bignum::random(R, Q));
  return packBatch(E, Dispatcher::elemWords(Q));
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  std::string JsonPath;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc)
      JsonPath = argv[++I];
  }

  const Bignum Q = field::nttPrime(60, 16);
  const size_t NPoints = 16;
  const unsigned K = Dispatcher::elemWords(Q);
  const size_t Row = NPoints * K;
  bool AllOk = true;

  std::printf("serving layer: coalesced polyMul dispatch, n = %zu, q = %u "
              "bits%s\n",
              NPoints, Q.bitWidth(), Smoke ? " (smoke)" : "");

  // One shared registry for the whole bench: the serial reference warms
  // every plan, so server measurements never straddle a JIT compile.
  KernelRegistry Reg;
  Rng R(0x5e2f);

  //===--------------------------------------------------------------------===//
  // Phase 1: same-key burst, coalesced vs one-request-per-dispatch.
  //===--------------------------------------------------------------------===//

  const size_t BurstReqs = Smoke ? 48 : 256;
  std::vector<std::vector<std::uint64_t>> BA, BB, BC(BurstReqs),
      BWant(BurstReqs);
  {
    Dispatcher Serial(Reg);
    for (size_t I = 0; I < BurstReqs; ++I) {
      BA.push_back(randomWords(R, Q, NPoints));
      BB.push_back(randomWords(R, Q, NPoints));
      BC[I].resize(Row);
      BWant[I].resize(Row);
      if (!Serial.polyMul(Q, BA[I].data(), BB[I].data(), BWant[I].data(),
                          NPoints, 1)) {
        std::fprintf(stderr, "serial reference failed: %s\n",
                     Serial.error().c_str());
        return 1;
      }
    }
  }

  // Runs the burst through one server configuration; returns wall seconds
  // (negative on any failed or bit-diverging reply).
  auto RunBurst = [&](const ServerOptions &O, Server::Stats &StOut) {
    for (auto &C : BC)
      std::fill(C.begin(), C.end(), 0);
    Server Srv(Reg, O);
    std::vector<std::future<Reply>> F;
    auto T0 = Clock::now();
    for (size_t I = 0; I < BurstReqs; ++I)
      F.push_back(
          Srv.polyMul(Q, BA[I].data(), BB[I].data(), BC[I].data(), NPoints));
    Srv.drain();
    double Wall = secondsSince(T0);
    StOut = Srv.stats();
    for (size_t I = 0; I < BurstReqs; ++I) {
      Reply Rep = F[I].get();
      if (!Rep.Ok || BC[I] != BWant[I]) {
        std::fprintf(stderr, "burst request %zu: %s\n", I,
                     Rep.Ok ? "result diverges from serial dispatch"
                            : Rep.Error.c_str());
        return -1.0;
      }
    }
    return Wall;
  };

  ServerOptions Coal;
  Coal.Workers = 1;
  Coal.MaxBatch = BurstReqs;
  Coal.CoalesceWindowUs = 200000;
  ServerOptions PerReq;
  PerReq.Workers = 1;
  PerReq.MaxBatch = 1; // one request per dispatch: the no-coalescing model
  PerReq.CoalesceWindowUs = 0;

  Server::Stats CoalSt, BaseSt;
  double CoalWall = RunBurst(Coal, CoalSt);
  double BaseWall = RunBurst(PerReq, BaseSt);
  bool BurstOk = CoalWall > 0 && BaseWall > 0;
  bool CoalescedOk = BurstOk && CoalSt.Dispatches < BurstReqs;
  AllOk = AllOk && BurstOk && CoalescedOk;

  recordMetric("server/burst/requests_count", static_cast<double>(BurstReqs));
  recordMetric("server/burst/results_ok", BurstOk ? 1 : 0);
  recordMetric("server/burst/coalesced_ok", CoalescedOk ? 1 : 0);
  // MaxBatch=1 serves exactly one request per dispatch — deterministic.
  recordMetric("server/burst/perreq_dispatches_count",
               static_cast<double>(BaseSt.Dispatches));
  recordMetric("server/burst/coal_wall_ns", CoalWall * 1e9);
  recordMetric("server/burst/perreq_wall_ns", BaseWall * 1e9);
  double Speedup = BurstOk ? BaseWall / CoalWall : 0;
  recordMetric("server/burst/coalesce_speedup", Speedup);
  std::printf("burst: %zu requests  coalesced %llu dispatches (max batch "
              "%llu)  %.2f ms   per-request %llu dispatches  %.2f ms   "
              "speedup %.2fx\n",
              BurstReqs,
              static_cast<unsigned long long>(CoalSt.Dispatches),
              static_cast<unsigned long long>(CoalSt.MaxBatchSize),
              CoalWall * 1e3,
              static_cast<unsigned long long>(BaseSt.Dispatches),
              BaseWall * 1e3, Speedup);

  //===--------------------------------------------------------------------===//
  // Phase 2: open-loop load — fixed inter-arrival clients, latency
  // percentiles and sustained completion rate under coalescing.
  //===--------------------------------------------------------------------===//

  const int Clients = Smoke ? 2 : 4;
  const int PerClient = Smoke ? 25 : 200;
  const auto InterArrival = std::chrono::microseconds(Smoke ? 200 : 100);
  const size_t OpenReqs = static_cast<size_t>(Clients) * PerClient;

  // Per-client fixed inputs with a serial reference; per-request output
  // buffers so every reply is bit-checked.
  std::vector<std::vector<std::uint64_t>> OA(Clients), OB(Clients),
      OWant(Clients);
  std::vector<std::vector<std::vector<std::uint64_t>>> OC(Clients);
  {
    Dispatcher Serial(Reg);
    for (int T = 0; T < Clients; ++T) {
      OA[T] = randomWords(R, Q, NPoints);
      OB[T] = randomWords(R, Q, NPoints);
      OWant[T].resize(Row);
      if (!Serial.polyMul(Q, OA[T].data(), OB[T].data(), OWant[T].data(),
                          NPoints, 1)) {
        std::fprintf(stderr, "serial reference failed: %s\n",
                     Serial.error().c_str());
        return 1;
      }
      OC[T].assign(PerClient, std::vector<std::uint64_t>(Row));
    }
  }

  ServerOptions Open;
  Open.Workers = 2;
  Open.MaxBatch = 128;
  Open.CoalesceWindowUs = 500;
  std::vector<double> LatencyNs(OpenReqs);
  std::vector<char> OpenOk(OpenReqs, 0);
  Clock::time_point LastDone;
  double OpenWall = 0;
  // Hard wall-clock budget for the whole open-loop phase. An open-loop
  // bench with a wedged worker (stalled compile, deadlocked dispatch)
  // otherwise hangs the CI gate forever on future::get(); clients wait
  // with a deadline instead, and on expiry the process exits without
  // running the Server destructor (which would block on the same wedge).
  const auto HardBudget = std::chrono::seconds(Smoke ? 30 : 120);
  std::atomic<bool> TimedOut{false};
  {
    Server Srv(Reg, Open);
    std::vector<std::thread> Threads;
    auto Start = Clock::now();
    const auto HardDeadline = Start + HardBudget;
    for (int T = 0; T < Clients; ++T)
      Threads.emplace_back([&, T] {
        std::vector<std::future<Reply>> F;
        std::vector<Clock::time_point> Submitted;
        for (int I = 0; I < PerClient; ++I) {
          Submitted.push_back(Clock::now());
          F.push_back(Srv.polyMul(Q, OA[T].data(), OB[T].data(),
                                  OC[T][I].data(), NPoints));
          std::this_thread::sleep_until(Start + (I + 1) * InterArrival);
        }
        for (int I = 0; I < PerClient; ++I) {
          if (F[I].wait_until(HardDeadline) != std::future_status::ready) {
            TimedOut.store(true);
            return; // abandon the remaining futures: the server is wedged
          }
          Reply Rep = F[I].get();
          size_t Slot = static_cast<size_t>(T) * PerClient + I;
          LatencyNs[Slot] =
              std::chrono::duration<double, std::nano>(Rep.Done -
                                                       Submitted[I])
                  .count();
          OpenOk[Slot] = Rep.Ok && OC[T][I] == OWant[T];
        }
      });
    for (auto &Th : Threads)
      Th.join();
    if (TimedOut.load()) {
      std::fprintf(stderr,
                   "bench_server: open loop exceeded the %llds hard "
                   "wall-clock budget; exiting without server teardown\n",
                   static_cast<long long>(HardBudget.count()));
      std::_Exit(1); // the destructor would block on the same wedge
    }
    Srv.drain();
    OpenWall = secondsSince(Start);
    Server::Stats St = Srv.stats();
    bool Served = St.Requests == OpenReqs && St.Rejected == 0;
    size_t OkCount = 0;
    for (char Ok : OpenOk)
      OkCount += Ok ? 1 : 0;
    bool ResultsOk = Served && OkCount == OpenReqs;
    AllOk = AllOk && ResultsOk;

    double P50 = percentileNs(LatencyNs, 0.50);
    double P99 = percentileNs(LatencyNs, 0.99);
    double ReqsPerSec = OpenWall > 0 ? OpenReqs / OpenWall : 0;
    recordMetric("server/open/requests_count",
                 static_cast<double>(OpenReqs));
    recordMetric("server/open/results_ok", ResultsOk ? 1 : 0);
    recordMetric("server/open/p50_ns", P50);
    recordMetric("server/open/p99_ns", P99);
    recordMetric("server/open/reqs_per_sec", ReqsPerSec);
    recordMetric("server/open/dispatches_per_req",
                 St.Dispatches > 0
                     ? static_cast<double>(St.Requests) / St.Dispatches
                     : 0);
    std::printf("open loop: %zu requests over %d clients  %.0f req/s  "
                "p50 %.0f us  p99 %.0f us  %.2f requests/dispatch\n",
                OpenReqs, Clients, ReqsPerSec, P50 / 1e3, P99 / 1e3,
                St.Dispatches > 0
                    ? static_cast<double>(St.Requests) / St.Dispatches
                    : 0.0);
  }
  (void)LastDone;

  if (!writeJsonReport(JsonPath, "bench_server")) {
    std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  std::printf("serving layer: %s\n", AllOk ? "OK" : "FAILED");
  return AllOk ? 0 : 1;
}
