//===- bench/NttBenchCommon.h - shared NTT benchmark pieces ----*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the NTT figures (1, 3, 4, 5a, 5b): plan
/// construction, batched steady-state measurement (paper §5.1:
/// t_single = t_all / batch, minimized over batch sizes), and the
/// runtime-per-butterfly metric 2*t_single / (n log2 n).
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_BENCH_NTTBENCHCOMMON_H
#define MOMA_BENCH_NTTBENCHCOMMON_H

#include "Harness.h"

#include "baselines/GmpLike.h"
#include "ntt/Ntt.h"
#include "runtime/Dispatcher.h"
#include "support/Rng.h"

#include <memory>

namespace moma {
namespace bench {

/// One ready-to-run NTT workload at W words.
template <unsigned W> struct NttWorkload {
  field::PrimeField<W> F;
  ntt::NttPlan<W> Plan;
  sim::Device Dev;
  size_t Batch;
  std::vector<typename field::PrimeField<W>::Element> Data;

  NttWorkload(const mw::Bignum &Q, size_t N, size_t Batch,
              const sim::DeviceProfile &Profile,
              mw::MulAlgorithm Alg = mw::MulAlgorithm::Schoolbook)
      : F(Q, Alg), Plan(F, N), Dev(Profile), Batch(Batch) {
    Rng R(0xA11CE + W + N);
    Data.resize(N * Batch);
    for (auto &E : Data)
      E = F.fromBignum(mw::Bignum::random(R, Q));
  }

  /// One timed step: a full batch of forward transforms. Re-transforming
  /// already-transformed data is fine — inputs are arbitrary field vectors.
  void step() { Plan.forwardBatch(Dev, Data.data(), Batch); }

  double nsPerButterfly(double StepNs) const {
    return StepNs / double(Batch) / double(Plan.butterflies());
  }
};

/// Registers "moma/ntt/<bits>/n<logn>" over the simulated device.
/// Returns the name for later lookup.
template <unsigned W>
std::string registerMomaNtt(unsigned LogN, size_t Batch,
                            const sim::DeviceProfile &Profile,
                            mw::MulAlgorithm Alg = mw::MulAlgorithm::Schoolbook,
                            const char *Tag = "moma") {
  unsigned Bits = 64 * W;
  unsigned Adicity = std::max(24u, LogN + 1);
  mw::Bignum Q = field::evalModulus(Bits, Adicity);
  std::string Name = formatv("%s/ntt/%u/n%u", Tag, Bits, LogN);
  auto Work = std::make_shared<NttWorkload<W>>(Q, size_t(1) << LogN, Batch,
                                               Profile, Alg);
  benchmark::RegisterBenchmark(Name.c_str(), [Work](benchmark::State &S) {
    for (auto _ : S)
      Work->step();
  })->Unit(benchmark::kMillisecond)->UseRealTime();
  return Name;
}

/// Registers the generic-multiprecision NTT baseline (Figure 4's "GMP"
/// series) at sizes small enough to finish.
inline std::string registerGmpLikeNtt(unsigned Bits, unsigned LogN) {
  mw::Bignum Q = field::evalModulus(Bits, std::max(24u, LogN + 1));
  std::string Name = formatv("gmplike/ntt/%u/n%u", Bits, LogN);
  auto Plan = std::make_shared<baselines::GmpLikeNtt>(Q, size_t(1) << LogN);
  auto Data = std::make_shared<std::vector<mw::Bignum>>();
  Rng R(0xBA5E + Bits + LogN);
  for (size_t I = 0; I < (size_t(1) << LogN); ++I)
    Data->push_back(mw::Bignum::random(R, Q));
  benchmark::RegisterBenchmark(Name.c_str(), [Plan, Data](benchmark::State &S) {
    for (auto _ : S)
      Plan->forward(*Data);
  })->Unit(benchmark::kMillisecond)->UseRealTime();
  return Name;
}

/// Registers "runtime/ntt/<bits>/n<logn>/f<depth>": batched forward NTTs
/// through the runtime's fused stage pipeline (sim-GPU backend pinned to
/// \p FuseDepth), i.e. ceil(logn/depth) stage-group dispatches per
/// transform with the bit-reversal gather folded into the first group's
/// loads. Plans, twiddle tables and scratch are warmed before the timed
/// loop (one registry shared by every series in the binary). Returns the
/// series name for later lookup.
inline std::string registerRuntimeNtt(unsigned Bits, unsigned LogN,
                                      size_t Batch, unsigned FuseDepth) {
  static runtime::KernelRegistry Reg;
  mw::Bignum Q = field::evalModulus(Bits, std::max(24u, LogN + 1));
  std::string Name = formatv("runtime/ntt/%u/n%u/f%u", Bits, LogN,
                             FuseDepth);
  rewrite::PlanOptions PO;
  PO.Backend = rewrite::ExecBackend::SimGpu;
  PO.FuseDepth = FuseDepth;
  auto D = std::make_shared<runtime::Dispatcher>(Reg, nullptr, PO);
  unsigned K = runtime::Dispatcher::elemWords(Q);
  size_t N = size_t(1) << LogN;
  auto Data =
      std::make_shared<std::vector<std::uint64_t>>(N * Batch * K);
  Rng R(0xF05E + Bits + LogN);
  for (size_t I = 0; I < N * Batch; ++I) {
    auto W = runtime::packWordsMsbFirst(mw::Bignum::random(R, Q), K);
    std::copy(W.begin(), W.end(), Data->begin() + I * K);
  }
  if (!D->nttForward(Q, Data->data(), N, Batch)) { // warm, untimed
    std::fprintf(stderr, "runtime NTT warmup failed: %s\n",
                 D->error().c_str());
    std::abort();
  }
  benchmark::RegisterBenchmark(Name.c_str(), [D, Data, Q, N,
                                              Batch](benchmark::State &S) {
    for (auto _ : S)
      if (!D->nttForward(Q, Data->data(), N, Batch)) {
        S.SkipWithError(D->error().c_str());
        return;
      }
  })->Unit(benchmark::kMillisecond)->UseRealTime();
  return Name;
}

/// ns/butterfly for a collected series (Batch = 1 for the baseline).
inline double nsPerButterfly(const Collector &C, const std::string &Name,
                             unsigned LogN, size_t Batch) {
  double StepNs = lookupNs(C, Name);
  if (StepNs < 0)
    return -1;
  double Flies = double(size_t(1) << LogN) / 2.0 * LogN;
  return StepNs / double(Batch) / Flies;
}

} // namespace bench
} // namespace moma

#endif // MOMA_BENCH_NTTBENCHCOMMON_H
