//===- bench/bench_ablation_schedule.cpp - register pressure ablation ----------===//
//
// Ablation: register pressure of the generated kernels vs width, and what
// pressure-aware scheduling recovers. This quantifies the mechanism
// behind the paper's large-width compile failures (5.3: stack-space
// segfaults at 384-bit n=2^21; degradation past 2^20 at 768-bit) — the
// lowered kernels simply hold far more live words than any register file.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "kernels/ScalarKernels.h"
#include "rewrite/Lower.h"
#include "rewrite/Schedule.h"
#include "rewrite/Simplify.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace moma;
using namespace moma::bench;
using namespace moma::rewrite;

int main(int, char **) {
  banner("Ablation: register pressure of generated butterflies "
         "(live 64-bit words)");

  TextTable T({"bits", "stmts", "peak live (as lowered)",
               "peak live (scheduled)", "reduction", "CUDA reg budget"});
  for (unsigned Bits : {128u, 256u, 384u, 512u, 768u, 1024u}) {
    unsigned Words = Bits / 64;
    kernels::ScalarKernelSpec Spec{Words * 64, Bits - 4};
    LoweredKernel L = lowerToWords(kernels::buildButterflyKernel(Spec), {});
    simplifyLowered(L);
    PressureStats Before = measurePressure(L.K);
    ir::Kernel Scheduled = L.K;
    PressureStats After = scheduleForPressure(Scheduled);
    T.addRow({formatv("%u", Bits), formatv("%zu", L.K.size()),
              formatv("%u", Before.MaxLiveWords),
              formatv("%u", After.MaxLiveWords),
              formatv("%.0f%%", 100.0 * (1.0 - double(After.MaxLiveWords) /
                                                   double(Before.MaxLiveWords))),
              After.MaxLiveWords > 128 ? "tight (>half)" : "fits"});
  }
  bench::report(T.render());

  banner("Scheduling cost (one butterfly kernel)");
  TextTable T2({"bits", "schedule time"});
  for (unsigned Bits : {128u, 256u, 512u, 1024u}) {
    kernels::ScalarKernelSpec Spec{Bits, 0};
    LoweredKernel L = lowerToWords(kernels::buildButterflyKernel(Spec), {});
    simplifyLowered(L);
    auto T0 = std::chrono::steady_clock::now();
    scheduleForPressure(L.K);
    double Ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
    T2.addRow({formatv("%u", Bits), formatNanos(Ns)});
  }
  bench::report(T2.render());
  bench::reportf("\n  Findings: the lowering emits operation chains depth-first,\n"
              "  so its order is already near-optimal (the scheduler keeps it\n"
              "  when greedy reordering would not help). Pressure grows ~2.1x\n"
              "  per width doubling; a 768-bit butterfly alone holds ~143\n"
              "  live words — over half the 255-register CUDA budget before\n"
              "  the compiler's own temporaries, consistent with the paper's\n"
              "  degradation at 768-bit sizes past 2^20 (5.3).\n");
  return 0;
}
