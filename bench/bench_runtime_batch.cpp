//===- bench/bench_runtime_batch.cpp - backends + plan cache on batches --------===//
//
// The headline claims of the batched-dispatch runtime (src/runtime/):
//
//   1. BACKENDS — on large batches the sim-GPU backend (grid-shaped §5.1
//      kernels over the thread-pool substrate) beats the serial host-JIT
//      backend, the SIMD vector backend (lane-per-batch-element loops
//      compiled at -O3 [-march=native]) beats serial by >= 1.5x on a
//      wide BLAS batch, and the autotuner selects an accelerated
//      backend automatically from a cold cache (backend choice, block
//      dim, and lane width are tuning axes — including picking vector
//      for at least one wide-batch BLAS shape);
//   2. PLAN CACHE — a production server amortizes JIT cost across
//      requests: a warm plan cache beats per-call emit+compile by orders
//      of magnitude;
//   3. PERSISTENCE — autotune decisions (including backend fields) reload
//      from JSON without re-timing.
//
//   4. STAGE FUSION — the fused NTT pipeline turns a batched transform's
//      log2(n) stage dispatches into ceil(log2(n)/FuseDepth); on at
//      least one size bucket a fused depth > 1 beats depth 1 in
//      wall-clock, and the autotuner picks it from a cold cache.
//
// The workload is a batch of cyclic polynomial products, run three ways
// (serial-pinned, sim-GPU-pinned, autotuned) plus the cold per-call
// model, followed by a batched-forward-NTT fusion sweep.
//
// `--smoke` runs a tiny wiring check (serial == sim-GPU bit-for-bit,
// tune-cache round-trip) with no performance assertions — the CI step
// that catches backend regressions without timing flakiness.
// `--json <path>` additionally writes the measured metrics as a flat
// JSON document (the CI perf-trajectory artifact).
//
// Not google-benchmark based: the cold path costs ~1 s per iteration, so
// manual chrono timing over explicit sample counts is the honest tool.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "field/PrimeGen.h"
#include "kernels/ScalarKernels.h"
#include "ntt/ReferenceDft.h"
#include "rewrite/PassManager.h"
#include "rewrite/Stats.h"
#include "runtime/Autotuner.h"
#include "runtime/Dispatcher.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <chrono>
#include <cstring>
#include <filesystem>

using namespace moma;
using namespace moma::bench;
using namespace moma::runtime;
using mw::Bignum;
using rewrite::ExecBackend;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

rewrite::PlanOptions pinned(ExecBackend B) {
  rewrite::PlanOptions O;
  O.Backend = B;
  return O;
}

/// One timed full-batch polyMul through \p D (plans pre-compiled by an
/// untimed single-product warmup). Returns seconds, negative on failure.
double timedPolyMul(Dispatcher &D, const Bignum &Q,
                    const std::uint64_t *A, const std::uint64_t *B,
                    std::uint64_t *C, size_t N, size_t Batch) {
  if (!D.polyMul(Q, A, B, C, N, 1)) // warm the binding cache
    return -1;
  auto T0 = std::chrono::steady_clock::now();
  if (!D.polyMul(Q, A, B, C, N, Batch))
    return -1;
  return secondsSince(T0);
}

} // namespace

int main(int argc, char **argv) {
  namespace fs = std::filesystem;
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
  std::string JsonPath = jsonPathFromArgs(argc, argv);

  const Bignum Q = field::nttPrime(124, 16);
  const size_t N = Smoke ? 16 : 64; // coefficients per polynomial
  const size_t Batch = Smoke ? 8
                       : fastMode() ? 100
                                    : envUnsigned("MOMA_BENCH_POLYS", 1000);
  const size_t ColdSamples = fastMode() || Smoke ? 1 : 4;
  const unsigned K = Dispatcher::elemWords(Q);

  deviceSection(Smoke ? "Runtime backend smoke check (tiny sizes, wiring "
                        "only)"
                      : "Runtime: execution backends and the plan cache on "
                        "batched dispatch");
  reportf("workload: %zu cyclic polynomial products, n = %zu, q = %u bits "
          "(%u-word elements)\n",
          Batch, N, Q.bitWidth(), K);
  flushReport();

  // Shared random batch.
  Rng R(0xBA7C4);
  std::vector<Bignum> A, B;
  for (size_t I = 0; I < Batch * N; ++I) {
    A.push_back(Bignum::random(R, Q));
    B.push_back(Bignum::random(R, Q));
  }
  std::vector<std::uint64_t> AW = packBatch(A, K), BW = packBatch(B, K),
                             CW(Batch * N * K);

  KernelRegistry Reg;

  // -- 1) Backend comparison on the full batch ---------------------------
  Dispatcher DSerial(Reg, nullptr, pinned(ExecBackend::Serial));
  Dispatcher DSimGpu(Reg, nullptr, pinned(ExecBackend::SimGpu));

  std::vector<std::uint64_t> CSerial(CW.size());
  double SerialSec = timedPolyMul(DSerial, Q, AW.data(), BW.data(),
                                  CSerial.data(), N, Batch);
  if (SerialSec < 0) {
    reportf("serial dispatch failed: %s\n", DSerial.error().c_str());
    return 1;
  }
  double SimGpuSec = timedPolyMul(DSimGpu, Q, AW.data(), BW.data(),
                                  CW.data(), N, Batch);
  if (SimGpuSec < 0) {
    reportf("sim-GPU dispatch failed: %s\n", DSimGpu.error().c_str());
    return 1;
  }
  bool BackendsAgree = CW == CSerial;

  // Correctness spot check against the O(n^2) reference on one entry:
  // the cyclic product folds full[i + n] back onto coefficient i.
  {
    std::vector<Bignum> PA(A.begin(), A.begin() + N),
        PB(B.begin(), B.begin() + N);
    auto Full = ntt::referencePolyMul(PA, PB, Q);
    auto C = unpackBatch(CW, K);
    for (size_t I = 0; I < N; ++I) {
      Bignum Want = Full[I];
      if (I + N < Full.size())
        Want = Want.addMod(Full[I + N], Q);
      if (C[I] != Want) {
        reportf("MISMATCH against reference at coefficient %zu\n", I);
        flushReport();
        return 1;
      }
    }
  }

  // -- 1b) SIMD vector backend on a wide BLAS batch ----------------------
  // Element-wise modmul over a flat batch: the shape the lane-loop
  // backend exists for. Serial pays a function-pointer call per element
  // at -O1; vector runs fixed-trip SoA chunks at -O3 [-march=native].
  const size_t VecElems = Smoke ? 4096 : 262144;
  double VmulSerialSec = 0, VmulVectorSec = 0;
  bool VectorAgrees = false;
  {
    Rng RV(0x5EC7);
    std::vector<Bignum> VA, VB;
    for (size_t I = 0; I < VecElems; ++I) {
      VA.push_back(Bignum::random(RV, Q));
      VB.push_back(Bignum::random(RV, Q));
    }
    auto VAW = packBatch(VA, K), VBW = packBatch(VB, K);
    std::vector<std::uint64_t> VS(VecElems * K), VV(VecElems * K);
    Dispatcher DVec(Reg, nullptr, pinned(ExecBackend::Vector));
    // Warm both plans (compile + binding) outside the timed region.
    if (!DSerial.vmul(Q, VAW.data(), VBW.data(), VS.data(), 1) ||
        !DVec.vmul(Q, VAW.data(), VBW.data(), VV.data(), 1)) {
      reportf("vector warmup failed: %s%s\n", DSerial.error().c_str(),
              DVec.error().c_str());
      return 1;
    }
    const unsigned VecRepeats = Smoke ? 2 : 3;
    double SerBest = 1e30, VecBest = 1e30;
    for (unsigned Rep = 0; Rep < VecRepeats; ++Rep) {
      auto T0 = std::chrono::steady_clock::now();
      if (!DSerial.vmul(Q, VAW.data(), VBW.data(), VS.data(), VecElems)) {
        reportf("serial vmul failed: %s\n", DSerial.error().c_str());
        return 1;
      }
      SerBest = std::min(SerBest, secondsSince(T0));
      auto T1 = std::chrono::steady_clock::now();
      if (!DVec.vmul(Q, VAW.data(), VBW.data(), VV.data(), VecElems)) {
        reportf("vector vmul failed: %s\n", DVec.error().c_str());
        return 1;
      }
      VecBest = std::min(VecBest, secondsSince(T1));
    }
    VmulSerialSec = SerBest;
    VmulVectorSec = VecBest;
    VectorAgrees = VS == VV;
  }
  double VectorSpeedup =
      VmulVectorSec > 0 ? VmulSerialSec / VmulVectorSec : 0;

  // Does a cold autotuner pick the vector backend for at least one
  // wide-batch BLAS shape? Swept over shapes because the sim-GPU pool
  // is a legitimate winner on the largest buckets of multiply-heavy
  // ops — the lane loop's home turf is the small-to-mid buckets and
  // the memory-bound ops.
  bool PickedVector = false;
  std::string VectorPickShape = "none";
  {
    AutotunerOptions VTO;
    VTO.CalibrationElems = 256;
    VTO.MaxCalibrationElems = Smoke ? 1024 : 4096;
    VTO.Repeats = Smoke ? 2 : 3;
    if (Smoke)
      VTO.BlockDims = {128};
    Autotuner VecTuner(Reg, VTO);
    struct BlasShape {
      KernelOp Op;
      const char *Name;
      size_t Elems;
    };
    const BlasShape Shapes[] = {{KernelOp::MulMod, "vmul", 1024},
                                {KernelOp::MulMod, "vmul", 16384},
                                {KernelOp::AddMod, "vadd", 16384},
                                {KernelOp::Axpy, "axpy", 4096}};
    for (const BlasShape &S : Shapes) {
      const TuneDecision *VD = VecTuner.choose(S.Op, Q, {}, S.Elems);
      if (VD && VD->Opts.Backend == ExecBackend::Vector) {
        PickedVector = true;
        VectorPickShape = formatv("%s x %zu: %s", S.Name, S.Elems,
                                  VD->Opts.str().c_str());
        break;
      }
    }
  }

  // -- 2) Autotuned path from a cold cache + warm plan cache -------------
  std::string TunePath =
      (fs::temp_directory_path() / "moma-bench-tune.json").string();
  std::remove(TunePath.c_str());

  AutotunerOptions TO;
  TO.CachePath = TunePath;
  if (Smoke) { // keep the sweep tiny: wiring, not measurement
    TO.CalibrationElems = 32;
    TO.MaxCalibrationElems = 64;
    TO.Repeats = 1;
    TO.BlockDims = {128};
  }
  Autotuner Tuner(Reg, TO);
  Dispatcher D(Reg, &Tuner);

  // First request pays tuning + compilation; that is the amortized cost.
  auto TWarmup = std::chrono::steady_clock::now();
  if (!D.polyMul(Q, AW.data(), BW.data(), CW.data(), N, Batch)) {
    reportf("autotuned dispatch failed: %s\n", D.error().c_str());
    return 1;
  }
  double WarmupSec = secondsSince(TWarmup);
  bool TunedAgrees = CW == CSerial;

  auto TWarm = std::chrono::steady_clock::now();
  if (!D.polyMul(Q, AW.data(), BW.data(), CW.data(), N, Batch)) {
    reportf("autotuned dispatch failed: %s\n", D.error().c_str());
    return 1;
  }
  double WarmSec = secondsSince(TWarm);

  // What did the tuner pick for the batch-sized problems?
  const TuneDecision *MulDec =
      Tuner.choose(KernelOp::MulMod, Q, {}, N * Batch);
  const TuneDecision *BflyDec = Tuner.chooseNtt(Q, {}, N, Batch);
  // With the vector backend in the sweep, either accelerated backend is
  // a legitimate winner — serial losing is the claim under test.
  bool PickedAccel = MulDec && BflyDec &&
                     MulDec->Opts.Backend != ExecBackend::Serial &&
                     BflyDec->Opts.Backend != ExecBackend::Serial;

  // -- 3) Cold path: fresh registry per polynomial, compiler every time --
  std::string ColdDir =
      (fs::temp_directory_path() / "moma-bench-coldjit").string();
  double ColdSec = 0;
  for (size_t S = 0; S < ColdSamples; ++S) {
    std::error_code EC;
    fs::remove_all(ColdDir, EC);
    jit::HostJitOptions JO;
    JO.CacheDir = ColdDir;
    JO.UseDiskCache = false; // every load invokes the host compiler
    KernelRegistry ColdReg(JO);
    Dispatcher ColdD(ColdReg); // no tuner: one variant, fewest compiles
    auto T0 = std::chrono::steady_clock::now();
    if (!ColdD.polyMul(Q, AW.data(), BW.data(), CW.data(), N, 1)) {
      reportf("cold dispatch failed: %s\n", ColdD.error().c_str());
      return 1;
    }
    ColdSec += secondsSince(T0);
  }
  {
    std::error_code EC;
    fs::remove_all(ColdDir, EC);
  }
  double ColdPerPoly = ColdSec / double(ColdSamples);
  double ColdProjected = ColdPerPoly * double(Batch);

  // -- 4) Stage fusion: batched forward NTTs, depth sweep vs the tuner --
  struct FuseRow {
    size_t NttN;
    size_t NttBatch;
    double Sec[3]; // pinned sim-GPU depth 1..3
    unsigned TunedDepth;
  };
  std::vector<FuseRow> FuseRows;
  bool FusionWins = false, TunerPicksFusion = false;
  {
    const std::vector<size_t> NttSizes =
        Smoke ? std::vector<size_t>{16}
              : std::vector<size_t>{64, 256, 1024};
    // Fixed element budget per timing so every size sees the same work.
    const size_t ElemBudget = Smoke ? 1024 : fastMode() ? 32768 : 262144;
    Rng RN(0xF05E);
    AutotunerOptions FTO; // cold every run: fusion choice is re-measured
    if (Smoke) {
      FTO.CalibrationElems = 32;
      FTO.MaxCalibrationElems = 64;
      FTO.Repeats = 1;
      FTO.BlockDims = {128};
    }
    Autotuner FuseTuner(Reg, FTO);
    for (size_t NttN : NttSizes) {
      FuseRow Row;
      Row.NttN = NttN;
      Row.NttBatch = std::max<size_t>(1, ElemBudget / NttN);
      std::vector<Bignum> Polys;
      for (size_t I = 0; I < NttN * Row.NttBatch; ++I)
        Polys.push_back(Bignum::random(RN, Q));
      auto Packed = packBatch(Polys, K);
      for (unsigned Depth = 1; Depth <= 3; ++Depth) {
        rewrite::PlanOptions PO = pinned(ExecBackend::SimGpu);
        PO.FuseDepth = Depth;
        Dispatcher DF(Reg, nullptr, PO);
        auto Warm = Packed; // first call pays plan/table binding
        if (!DF.nttForward(Q, Warm.data(), NttN, 1)) {
          reportf("fused dispatch failed: %s\n", DF.error().c_str());
          return 1;
        }
        // Min over repeats: these timings feed the fusion verdicts (and
        // the exit code), so one scheduler hiccup must not decide them.
        const unsigned FuseRepeats = Smoke ? 1 : 3;
        double BestSec = 1e30;
        for (unsigned Rep = 0; Rep < FuseRepeats; ++Rep) {
          auto Data = Packed;
          auto T0 = std::chrono::steady_clock::now();
          if (!DF.nttForward(Q, Data.data(), NttN, Row.NttBatch)) {
            reportf("fused dispatch failed: %s\n", DF.error().c_str());
            return 1;
          }
          BestSec = std::min(BestSec, secondsSince(T0));
        }
        Row.Sec[Depth - 1] = BestSec;
        recordMetric(formatv("ntt/n%zu/simgpu/f%u_ns", NttN, Depth),
                     Row.Sec[Depth - 1] * 1e9);
      }
      const TuneDecision *FD =
          FuseTuner.chooseNtt(Q, {}, NttN, Row.NttBatch);
      Row.TunedDepth = FD ? FD->Opts.FuseDepth : 0;
      recordMetric(formatv("ntt/n%zu/tuned_depth", NttN),
                   double(Row.TunedDepth));
      double Best23 = std::min(Row.Sec[1], Row.Sec[2]);
      if (Best23 < Row.Sec[0]) {
        FusionWins = true;
        if (Row.TunedDepth > 1)
          TunerPicksFusion = true;
      }
      FuseRows.push_back(Row);
    }
  }

  banner("Results");
  TextTable T({"path", "backend", "per poly", "full batch",
               "what it includes"});
  T.addRow({"pinned serial", "serial",
            formatNanos(SerialSec * 1e9 / double(Batch)),
            formatNanos(SerialSec * 1e9), "dispatch only (plans cached)"});
  T.addRow({"pinned sim-GPU", "simgpu",
            formatNanos(SimGpuSec * 1e9 / double(Batch)),
            formatNanos(SimGpuSec * 1e9), "dispatch only (plans cached)"});
  T.addRow({"pinned vector (vmul)", "vector",
            formatNanos(VmulVectorSec * 1e9 / double(VecElems)),
            formatNanos(VmulVectorSec * 1e9),
            formatv("per elem over %zu-elem BLAS batch", VecElems)});
  T.addRow({"autotuned warm",
            MulDec ? rewrite::execBackendName(MulDec->Opts.Backend) : "?",
            formatNanos(WarmSec * 1e9 / double(Batch)),
            formatNanos(WarmSec * 1e9), "dispatch only (tuned variants)"});
  T.addRow({"autotuned warm-up", "-", "-", formatNanos(WarmupSec * 1e9),
            formatv("autotune %u candidates + JIT + first batch",
                    Tuner.stats().Candidates)});
  T.addRow({"per-call emit+compile", "serial", formatNanos(ColdPerPoly * 1e9),
            formatNanos(ColdProjected * 1e9),
            formatv("measured on %zu samples, projected", ColdSamples)});
  report(T.render());
  reportf("plan cache: %u plans built, %u cache hits; host compiler "
          "invoked %u times for the warm paths\n",
          Reg.stats().Builds, Reg.stats().Hits, Reg.jit().stats().Compiles);
  if (MulDec && BflyDec)
    reportf("tuned variants: mulmod %s, ntt butterfly %s\n",
            MulDec->Opts.str().c_str(), BflyDec->Opts.str().c_str());
  recordMetric("polymul/serial_batch_ns", SerialSec * 1e9);
  recordMetric("polymul/simgpu_batch_ns", SimGpuSec * 1e9);
  recordMetric("polymul/tuned_warm_ns", WarmSec * 1e9);
  recordMetric("polymul/tuned_warmup_ns", WarmupSec * 1e9);
  recordMetric("polymul/cold_per_poly_ns", ColdPerPoly * 1e9);
  reportf("vector BLAS: vmul x %zu serial %s, vector %s (%.1fx); "
          "cold tuner vector pick: %s\n",
          VecElems, formatNanos(VmulSerialSec * 1e9).c_str(),
          formatNanos(VmulVectorSec * 1e9).c_str(), VectorSpeedup,
          VectorPickShape.c_str());
  recordMetric("blas/vmul_serial_ns", VmulSerialSec * 1e9);
  recordMetric("blas/vmul_vector_ns", VmulVectorSec * 1e9);

  banner("Fused NTT stage pipeline (batched forward transforms)");
  TextTable FT({"n", "batch", "dispatches f1/f2/f3", "depth 1", "depth 2",
                "depth 3", "tuned depth"});
  for (const FuseRow &Row : FuseRows) {
    unsigned LogN = 0;
    while ((size_t(1) << LogN) < Row.NttN)
      ++LogN;
    FT.addRow({formatv("%zu", Row.NttN), formatv("%zu", Row.NttBatch),
               formatv("%u/%u/%u", LogN, (LogN + 1) / 2, (LogN + 2) / 3),
               formatNanos(Row.Sec[0] * 1e9),
               formatNanos(Row.Sec[1] * 1e9),
               formatNanos(Row.Sec[2] * 1e9),
               Row.TunedDepth ? formatv("%u", Row.TunedDepth)
                              : std::string("?")});
  }
  report(FT.render());

  // -- Autotune persistence: a second process-equivalent reloads ---------
  Autotuner Tuner2(Reg, TO); // constructor loads TunePath
  const TuneDecision *Dec =
      Tuner2.choose(KernelOp::MulMod, Q, {}, N * Batch);
  bool Reloaded = Dec && Dec->FromCache && Tuner2.stats().Tuned == 0 &&
                  MulDec && Dec->Opts == MulDec->Opts;
  std::remove(TunePath.c_str());

  // -- Pass-pipeline effectiveness (deterministic op-count facts) --------
  // What the extended simplify pipeline (CSE + interval range analysis +
  // dead-port elimination) buys over the default on the two kernel
  // classes ISSUE 6 targets. The counts are exact properties of the
  // rewrite system, so the CI perf-trajectory gate pins them bit-for-bit
  // (*_count metrics) — a pass regression shows up as a count shift, not
  // as timing noise.
  {
    banner("Simplify pass pipelines: default vs extended (exact op counts)");
    auto passFacts = [&](const ir::Kernel &K, const char *Tag) {
      rewrite::LoweredKernel Def = rewrite::lowerToWords(K);
      rewrite::LoweredKernel Ext = rewrite::lowerToWords(K);
      rewrite::PassPipeline PD = rewrite::defaultPipeline();
      rewrite::PassPipeline PE = rewrite::extendedPipeline();
      PD.runLowered(Def);
      rewrite::PipelineStats SE = PE.runLowered(Ext);
      rewrite::OpStats D = rewrite::countOps(Def.K);
      rewrite::OpStats E = rewrite::countOps(Ext.K);
      auto Count = [&](const char *Metric, double V) {
        recordMetric(formatv("passes/%s_%s_count", Tag, Metric), V);
      };
      Count("default_stmts", D.Total);
      Count("extended_stmts", E.Total);
      Count("default_mul", D.multiplies());
      Count("extended_mul", E.multiplies());
      Count("default_addsub", D.addSubs());
      Count("extended_addsub", E.addSubs());
      const rewrite::PassStats *Cse = SE.pass("cse");
      const rewrite::PassStats *Range = SE.pass("range");
      const rewrite::PassStats *Dce = SE.pass("dce");
      Count("cse_changes", Cse ? Cse->Changes : 0);
      Count("range_changes", Range ? Range->Changes : 0);
      Count("dce_removed", Dce ? Dce->Removed : 0);
      reportf("%-10s default: %3u stmts %3u mul %3u addsub | extended: "
              "%3u stmts %3u mul %3u addsub (cse=%u range=%u dce=%u)\n",
              Tag, D.Total, D.multiplies(), D.addSubs(), E.Total,
              E.multiplies(), E.addSubs(), Cse ? Cse->Changes : 0,
              Range ? Range->Changes : 0, Dce ? Dce->Removed : 0);
    };
    kernels::ScalarKernelSpec BSpec;
    BSpec.ContainerBits = 128;
    BSpec.ModBits = 124;
    passFacts(kernels::buildButterflyKernel(BSpec), "butterfly");
    kernels::ScalarKernelSpec RSpec;
    RSpec.ContainerBits = 256;
    RSpec.ModBits = 60;
    passFacts(kernels::buildRnsDecomposeKernel(RSpec, /*WideWords=*/4),
              "rnsdec");
    flushReport();
  }

  // Exact wiring facts for the CI perf-trajectory gate (*_ok metrics
  // must match the committed baseline bit-for-bit).
  recordMetric("smoke/backends_agree_ok", BackendsAgree ? 1.0 : 0.0);
  recordMetric("smoke/tuned_agrees_ok", TunedAgrees ? 1.0 : 0.0);
  recordMetric("smoke/tune_cache_reloads_ok", Reloaded ? 1.0 : 0.0);
  recordMetric("smoke/vector_identical_ok", VectorAgrees ? 1.0 : 0.0);
  recordMetric("smoke/vector_speedup_ok",
               VectorSpeedup >= 1.5 ? 1.0 : 0.0);
  recordMetric("smoke/tuner_picks_vector_ok", PickedVector ? 1.0 : 0.0);

  if (Smoke) {
    banner("Smoke verdicts (wiring plus the vector-backend floor)");
    verdict("sim-GPU backend bit-identical to serial",
            BackendsAgree ? 1.0 : 0.0, 1.0);
    verdict("vector backend bit-identical to serial (wide vmul)",
            VectorAgrees ? 1.0 : 0.0, 1.0);
    verdict("autotuned dispatch bit-identical to serial",
            TunedAgrees ? 1.0 : 0.0, 1.0);
    verdict("tune cache round-trips with backend fields",
            Reloaded ? 1.0 : 0.0, 1.0);
    verdict("wide-batch vmul: vector beats serial by >= 1.5x",
            VectorSpeedup, 1.5);
    verdict("cold autotuner picks vector for >= 1 wide BLAS shape",
            PickedVector ? 1.0 : 0.0, 1.0);
    flushReport();
    if (!writeJsonReport(JsonPath, "bench_runtime_batch")) {
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    if (!JsonPath.empty())
      std::printf("wrote %s\n", JsonPath.c_str());
    return BackendsAgree && TunedAgrees && Reloaded && VectorAgrees &&
                   VectorSpeedup >= 1.5 && PickedVector
               ? 0
               : 1;
  }

  banner("Verdicts");
  verdict("sim-GPU backend bit-identical to serial",
          BackendsAgree ? 1.0 : 0.0, 1.0);
  verdict("vector backend bit-identical to serial (wide vmul)",
          VectorAgrees ? 1.0 : 0.0, 1.0);
  verdict(formatv("%zu-poly batch: sim-GPU backend beats serial", Batch),
          SerialSec / SimGpuSec, 1.0);
  verdict(formatv("%zu-elem vmul: vector beats serial by >= 1.5x",
                  VecElems),
          VectorSpeedup, 1.5);
  verdict("autotuner picks an accelerated backend from a cold cache",
          PickedAccel ? 1.0 : 0.0, 1.0);
  verdict("cold autotuner picks vector for >= 1 wide BLAS shape",
          PickedVector ? 1.0 : 0.0, 1.0);
  verdict(formatv("%zu-poly batch: warm cache beats per-call emit+compile",
                  Batch),
          ColdProjected / WarmSec, 10.0);
  verdict("persisted autotune decisions reload without re-timing",
          Reloaded ? 1.0 : 0.0, 1.0);
  verdict("stage fusion: depth > 1 beats depth 1 on >= 1 size bucket",
          FusionWins ? 1.0 : 0.0, 1.0);
  verdict("autotuner picks a fused depth where fusion wins (cold cache)",
          TunerPicksFusion ? 1.0 : 0.0, 1.0);
  flushReport();
  if (!writeJsonReport(JsonPath, "bench_runtime_batch")) {
    std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  if (!JsonPath.empty())
    std::printf("wrote %s\n", JsonPath.c_str());
  return BackendsAgree && TunedAgrees && Reloaded && VectorAgrees &&
                 SerialSec / SimGpuSec > 1.0 && PickedAccel &&
                 VectorSpeedup >= 1.5 && PickedVector &&
                 ColdProjected / WarmSec >= 10.0 && FusionWins &&
                 TunerPicksFusion
             ? 0
             : 1;
}
