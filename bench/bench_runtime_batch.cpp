//===- bench/bench_runtime_batch.cpp - plan cache vs per-call compile ----------===//
//
// The headline claim of the batched-dispatch runtime (src/runtime/): a
// production server amortizes JIT cost across requests. This bench runs a
// 1000-polynomial product batch two ways:
//
//   a) WARM  — one Dispatcher over a warmed KernelRegistry: plans compile
//      once (autotuned on first request), then the whole batch dispatches
//      through cached function pointers;
//   b) COLD  — the pre-runtime model: every polynomial product re-emits
//      and re-compiles its kernels (fresh registry, disk cache off),
//      measured on a sample and projected to the full batch.
//
// It also demonstrates autotune persistence: the decision JSON written by
// the first tuner is reloaded by a second one, which must reuse it
// without re-timing.
//
// Not google-benchmark based: the cold path costs ~1 s per iteration, so
// manual chrono timing over explicit sample counts is the honest tool.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "field/PrimeGen.h"
#include "ntt/ReferenceDft.h"
#include "runtime/Autotuner.h"
#include "runtime/Dispatcher.h"
#include "support/Rng.h"

#include <chrono>
#include <filesystem>

using namespace moma;
using namespace moma::bench;
using namespace moma::runtime;
using mw::Bignum;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

int main(int, char **) {
  namespace fs = std::filesystem;
  banner("Runtime: batched dispatch through the plan cache vs per-call "
         "emit+compile");

  const Bignum Q = field::nttPrime(124, 16);
  const size_t N = 64; // coefficients per polynomial
  const size_t Batch = fastMode() ? 100 : envUnsigned("MOMA_BENCH_POLYS", 1000);
  const size_t ColdSamples = fastMode() ? 2 : 4;
  const unsigned K = Dispatcher::elemWords(Q);

  reportf("workload: %zu cyclic polynomial products, n = %zu, q = %u bits "
          "(%u-word elements)\n",
          Batch, N, Q.bitWidth(), K);
  flushReport();

  // Shared random batch.
  Rng R(0xBA7C4);
  std::vector<Bignum> A, B;
  for (size_t I = 0; I < Batch * N; ++I) {
    A.push_back(Bignum::random(R, Q));
    B.push_back(Bignum::random(R, Q));
  }
  std::vector<std::uint64_t> AW = packBatch(A, K), BW = packBatch(B, K),
                             CW(Batch * N * K);

  // -- a) Warm path: registry + autotuner + dispatcher -------------------
  std::string TunePath =
      (fs::temp_directory_path() / "moma-bench-tune.json").string();
  std::remove(TunePath.c_str());

  KernelRegistry Reg;
  AutotunerOptions TO;
  TO.CachePath = TunePath;
  Autotuner Tuner(Reg, TO);
  Dispatcher D(Reg, &Tuner);

  // First request pays tuning + compilation; that is the amortized cost.
  auto TWarmup = std::chrono::steady_clock::now();
  if (!D.polyMul(Q, AW.data(), BW.data(), CW.data(), N, 1)) {
    reportf("dispatch failed: %s\n", D.error().c_str());
    return 1;
  }
  double WarmupSec = secondsSince(TWarmup);

  auto TWarm = std::chrono::steady_clock::now();
  if (!D.polyMul(Q, AW.data(), BW.data(), CW.data(), N, Batch)) {
    reportf("dispatch failed: %s\n", D.error().c_str());
    return 1;
  }
  double WarmSec = secondsSince(TWarm);

  // Correctness spot check against the O(n^2) reference on one entry:
  // the cyclic product folds full[i + n] back onto coefficient i.
  {
    std::vector<Bignum> PA(A.begin(), A.begin() + N),
        PB(B.begin(), B.begin() + N);
    auto Full = ntt::referencePolyMul(PA, PB, Q);
    auto C = unpackBatch(CW, K);
    for (size_t I = 0; I < N; ++I) {
      Bignum Want = Full[I];
      if (I + N < Full.size())
        Want = Want.addMod(Full[I + N], Q);
      if (C[I] != Want) {
        reportf("MISMATCH against reference at coefficient %zu\n", I);
        flushReport();
        return 1;
      }
    }
  }

  // -- b) Cold path: fresh registry per polynomial, compiler every time --
  std::string ColdDir =
      (fs::temp_directory_path() / "moma-bench-coldjit").string();
  double ColdSec = 0;
  for (size_t S = 0; S < ColdSamples; ++S) {
    std::error_code EC;
    fs::remove_all(ColdDir, EC);
    jit::HostJitOptions JO;
    JO.CacheDir = ColdDir;
    JO.UseDiskCache = false; // every load invokes the host compiler
    KernelRegistry ColdReg(JO);
    Dispatcher ColdD(ColdReg); // no tuner: one variant, fewest compiles
    auto T0 = std::chrono::steady_clock::now();
    if (!ColdD.polyMul(Q, AW.data(), BW.data(), CW.data(), N, 1)) {
      reportf("cold dispatch failed: %s\n", ColdD.error().c_str());
      return 1;
    }
    ColdSec += secondsSince(T0);
  }
  {
    std::error_code EC;
    fs::remove_all(ColdDir, EC);
  }
  double ColdPerPoly = ColdSec / double(ColdSamples);
  double ColdProjected = ColdPerPoly * double(Batch);

  banner("Results");
  TextTable T({"path", "per poly", "full batch", "what it includes"});
  T.addRow({"warm plan cache", formatNanos(WarmSec * 1e9 / double(Batch)),
            formatNanos(WarmSec * 1e9),
            "dispatch only (plans cached)"});
  T.addRow({"warm-up (first req)", formatNanos(WarmupSec * 1e9), "-",
            formatv("autotune %u candidates + JIT",
                    Tuner.stats().Candidates)});
  T.addRow({"per-call emit+compile", formatNanos(ColdPerPoly * 1e9),
            formatNanos(ColdProjected * 1e9),
            formatv("measured on %zu samples, projected", ColdSamples)});
  report(T.render());
  reportf("plan cache: %u plans built, %u cache hits; host compiler "
          "invoked %u times for the warm path\n",
          Reg.stats().Builds, Reg.stats().Hits, Reg.jit().stats().Compiles);

  banner("Verdicts");
  verdict(formatv("%zu-poly batch: warm cache beats per-call emit+compile",
                  Batch),
          ColdProjected / WarmSec, 10.0);

  // -- Autotune persistence: a second process-equivalent reloads --------
  Autotuner Tuner2(Reg, TO); // constructor loads TunePath
  const TuneDecision *Dec = Tuner2.choose(KernelOp::MulMod, Q);
  const TuneDecision *DecB = Tuner2.choose(KernelOp::Butterfly, Q);
  bool Reloaded = Dec && DecB && Dec->FromCache && DecB->FromCache &&
                  Tuner2.stats().Tuned == 0;
  verdict("persisted autotune decisions reload without re-timing",
          Reloaded ? 1.0 : 0.0, 1.0);
  if (Dec)
    reportf("  pinned mulmod variant: %s (%.1f ns/elem when tuned)\n",
            Dec->Opts.str().c_str(), Dec->NsPerElem);
  std::remove(TunePath.c_str());
  flushReport();
  return Reloaded && ColdProjected / WarmSec >= 10.0 ? 0 : 1;
}
