//===- bench/bench_fhe.cpp - lazy residue-form chains vs the flat API --------===//
//
// The FHE layer's headline economic claim, measured: a chain of k
// polynomial products through residue-form handles (runtime/RnsTensor.h)
// dispatches (k+2)·L NTTs where the one-shot flat rnsPolyMul path
// dispatches 3k·L — the intermediates never leave the transformed
// domain, so laziness saves (2k-2)·L transforms AND the matching
// wall-clock, bit-identically. Two phases:
//
//   1. TENSOR CHAIN — k chained products, flat vs lazy. The dispatch
//      deltas are deterministic (exact-match `_count` metrics, the same
//      arithmetic tests/fhe/FheTest.cpp pins); wall-clock per chain is
//      `_ns` (ratio-gated); outputs are compared word-for-word.
//
//   2. CIPHERTEXT CHAIN — fhe::ciphertextMul with NTT-resident operands:
//      the first product pays 4L forward transforms, a second product
//      reusing an operand pays only 2L (the reused polys are already
//      transformed) — the retention that makes multiply-heavy circuits
//      cheap.
//
// `--smoke` shrinks sizes to a seconds-scale wiring check (the CI gate);
// `--json <path>` writes the flat metric document bench_compare.py
// trends. Standalone on purpose (no google-benchmark), like
// bench_server: the gate runs on every builder.
//
//===----------------------------------------------------------------------===//

#include "fhe/Fhe.h"
#include "runtime/Dispatcher.h"
#include "runtime/RnsTensor.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <string>
#include <vector>

using namespace moma;
using namespace moma::runtime;
using mw::Bignum;
using rewrite::NttRing;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

std::vector<std::pair<std::string, double>> Metrics;

void recordMetric(const std::string &Name, double Value) {
  Metrics.emplace_back(Name, Value);
}

bool writeJsonReport(const std::string &Path, const std::string &BenchName) {
  if (Path.empty())
    return true;
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << "{\n  \"bench\": \"" << BenchName << "\",\n  \"unix_time\": "
      << static_cast<long long>(std::time(nullptr))
      << ",\n  \"metrics\": {";
  bool First = true;
  for (const auto &M : Metrics) {
    Out << (First ? "" : ",") << "\n    \"" << M.first
        << "\": " << formatv("%.3f", M.second);
    First = false;
  }
  Out << "\n  }\n}\n";
  return static_cast<bool>(Out);
}

std::vector<std::uint64_t> randomWide(Rng &R, const RnsContext &Ctx,
                                      size_t N) {
  std::vector<Bignum> E;
  for (size_t I = 0; I < N; ++I)
    E.push_back(Bignum::random(R, Ctx.modulus()));
  return packBatch(E, Ctx.wideWords());
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  std::string JsonPath;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc)
      JsonPath = argv[++I];
  }

  const size_t NPoints = Smoke ? 64 : 1024;
  const unsigned Limbs = 4;
  const std::uint64_t K = 3;            // chained products
  const int Reps = Smoke ? 20 : 100;    // timed chain repetitions
  bool AllOk = true;

  RnsContext Ctx;
  std::string Err;
  if (!RnsContext::create(Limbs, Ctx, &Err)) {
    std::fprintf(stderr, "RnsContext: %s\n", Err.c_str());
    return 1;
  }
  const std::uint64_t L = Ctx.numLimbs();
  const unsigned WW = Ctx.wideWords();

  std::printf("fhe layer: chain of %llu products, n = %zu, L = %llu x %u-bit "
              "limbs%s\n",
              static_cast<unsigned long long>(K), NPoints,
              static_cast<unsigned long long>(L), Ctx.limbBits(),
              Smoke ? " (smoke)" : "");

  KernelRegistry Reg;
  Rng R(0xfe3);

  std::vector<std::vector<std::uint64_t>> Ops;
  for (std::uint64_t I = 0; I < K + 1; ++I)
    Ops.push_back(randomWide(R, Ctx, NPoints));

  //===--------------------------------------------------------------------===//
  // Phase 1: k chained products, flat one-shot calls vs lazy tensors.
  //===--------------------------------------------------------------------===//

  Dispatcher DFlat(Reg), DLazy(Reg);
  std::vector<std::uint64_t> FlatOut(size_t(WW) * NPoints),
      FlatTmp(size_t(WW) * NPoints), LazyOut(size_t(WW) * NPoints);

  auto FlatChain = [&]() {
    bool Ok = DFlat.rnsPolyMul(Ctx, Ops[0].data(), Ops[1].data(),
                               FlatTmp.data(), NPoints, 1);
    for (std::uint64_t I = 2; I <= K && Ok; ++I)
      Ok = DFlat.rnsPolyMul(Ctx, FlatTmp.data(), Ops[I].data(),
                            FlatTmp.data(), NPoints, 1);
    return Ok;
  };
  auto LazyChain = [&]() {
    std::vector<RnsTensor> T;
    for (std::uint64_t I = 0; I <= K; ++I)
      T.emplace_back(Ctx, NPoints, 1);
    RnsTensor Acc(Ctx, NPoints, 1);
    bool Ok = true;
    for (std::uint64_t I = 0; I <= K && Ok; ++I)
      Ok = DLazy.fromWide(Ops[I].data(), T[I]);
    Ok = Ok && DLazy.rnsPolyMul(T[0], T[1], Acc);
    for (std::uint64_t I = 2; I <= K && Ok; ++I)
      Ok = Ok && DLazy.rnsPolyMul(Acc, T[I], Acc);
    return Ok && DLazy.toWide(Acc, LazyOut.data());
  };

  // Warm both plan caches (JIT compiles happen here, not in the timing),
  // and capture the per-chain dispatch deltas from the warm run.
  auto FB = DFlat.dispatchStats();
  auto LB = DLazy.dispatchStats();
  if (!FlatChain() || !LazyChain()) {
    std::fprintf(stderr, "warmup failed: %s%s\n", DFlat.error().c_str(),
                 DLazy.error().c_str());
    return 1;
  }
  auto FA = DFlat.dispatchStats();
  auto LA = DLazy.dispatchStats();
  std::uint64_t FlatTransforms = FA.Transforms - FB.Transforms;
  std::uint64_t LazyTransforms = LA.Transforms - LB.Transforms;
  std::uint64_t FlatBatches = FA.Batches - FB.Batches;
  std::uint64_t LazyBatches = LA.Batches - LB.Batches;

  bool BitExact = FlatTmp == LazyOut;
  bool CountsOk = FlatTransforms == 3 * K * L &&
                  LazyTransforms == (K + 2) * L;
  AllOk = AllOk && BitExact && CountsOk;

  auto TimeChain = [&](auto &&Chain) {
    auto T0 = Clock::now();
    for (int I = 0; I < Reps; ++I)
      if (!Chain())
        return -1.0;
    return secondsSince(T0) / Reps;
  };
  double FlatWall = TimeChain(FlatChain);
  double LazyWall = TimeChain(LazyChain);
  bool LazyFaster = FlatWall > 0 && LazyWall > 0 && LazyWall < FlatWall;
  AllOk = AllOk && LazyFaster;

  recordMetric("fhe/chain/flat_transforms_count",
               static_cast<double>(FlatTransforms));
  recordMetric("fhe/chain/lazy_transforms_count",
               static_cast<double>(LazyTransforms));
  recordMetric("fhe/chain/saved_transforms_count",
               static_cast<double>(FlatTransforms - LazyTransforms));
  recordMetric("fhe/chain/flat_batches_count",
               static_cast<double>(FlatBatches));
  recordMetric("fhe/chain/lazy_batches_count",
               static_cast<double>(LazyBatches));
  recordMetric("fhe/chain/bitexact_ok", BitExact ? 1 : 0);
  recordMetric("fhe/chain/lazy_faster_ok", LazyFaster ? 1 : 0);
  recordMetric("fhe/chain/flat_wall_ns", FlatWall * 1e9);
  recordMetric("fhe/chain/lazy_wall_ns", LazyWall * 1e9);
  recordMetric("fhe/chain/lazy_speedup",
               LazyWall > 0 ? FlatWall / LazyWall : 0);
  std::printf("tensor chain: flat %llu transforms  %.1f us/chain   lazy "
              "%llu transforms  %.1f us/chain   saved %llu (= (2k-2)L)  "
              "speedup %.2fx  %s\n",
              static_cast<unsigned long long>(FlatTransforms),
              FlatWall * 1e6,
              static_cast<unsigned long long>(LazyTransforms),
              LazyWall * 1e6,
              static_cast<unsigned long long>(FlatTransforms -
                                              LazyTransforms),
              LazyWall > 0 ? FlatWall / LazyWall : 0.0,
              BitExact ? "bit-exact" : "DIVERGED");

  //===--------------------------------------------------------------------===//
  // Phase 2: ciphertext multiply with NTT-resident operands.
  //===--------------------------------------------------------------------===//

  fhe::FheOptions FO;
  FO.NPoints = NPoints;
  FO.NumLimbs = Limbs;
  fhe::FheContext FC;
  if (!fhe::FheContext::create(FO, FC, &Err)) {
    std::fprintf(stderr, "FheContext: %s\n", Err.c_str());
    return 1;
  }
  Dispatcher D(Reg);
  fhe::SecretKey SK = fhe::keyGen(FC, R);
  fhe::Ciphertext X, Y, Z;
  std::vector<std::uint64_t> Msg(NPoints, 1);
  bool EncOk = fhe::encrypt(FC, D, SK, Msg, R, X) &&
               fhe::encrypt(FC, D, SK, Msg, R, Y) &&
               fhe::encrypt(FC, D, SK, Msg, R, Z);
  if (!EncOk) {
    std::fprintf(stderr, "encrypt: %s\n", D.error().c_str());
    return 1;
  }

  fhe::Ciphertext P1, P2;
  auto B1 = D.dispatchStats();
  bool M1 = fhe::ciphertextMul(D, X, Y, P1);
  auto A1 = D.dispatchStats();
  bool M2 = fhe::ciphertextMul(D, X, Z, P2); // X already NTT-resident
  auto A2 = D.dispatchStats();
  std::uint64_t FreshT = A1.Transforms - B1.Transforms;
  std::uint64_t ResidentT = A2.Transforms - A1.Transforms;
  bool CtOk = M1 && M2 && FreshT == 4 * L && ResidentT == 2 * L;
  AllOk = AllOk && CtOk;

  recordMetric("fhe/ctmul/fresh_transforms_count",
               static_cast<double>(FreshT));
  recordMetric("fhe/ctmul/resident_transforms_count",
               static_cast<double>(ResidentT));
  recordMetric("fhe/ctmul/results_ok", CtOk ? 1 : 0);
  std::printf("ciphertext mul: fresh operands %llu transforms   resident "
              "operand reuse %llu transforms\n",
              static_cast<unsigned long long>(FreshT),
              static_cast<unsigned long long>(ResidentT));

  if (!writeJsonReport(JsonPath, "bench_fhe")) {
    std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  std::printf("fhe layer: %s\n", AllOk ? "OK" : "FAILED");
  return AllOk ? 0 : 1;
}
