//===- bench/bench_fig3_ntt_sweep.cpp - Paper Figure 3 -------------------------===//
//
// Figure 3 (a-d): NTT runtime per butterfly vs size at 128/256/384/768-bit
// inputs. The paper compares against eight platform-specific baselines
// (OpenFHE, AVX-NTT, RPU, FPMM, GZKP, ICICLE, PipeZK, Libsnark); on this
// substrate we measure MoMA (exact-word containers, i.e. the
// non-power-of-two path for 384/768) and the generic-multiprecision
// baseline, and replay the paper's cross-platform factors as context.
//
//===----------------------------------------------------------------------===//

#include "NttBenchCommon.h"

using namespace moma;
using namespace moma::bench;

namespace {

struct Subplot {
  unsigned Bits;     // element width (exact words; 384/768 exercise pruning)
  unsigned Words;    // 64-bit words per element
  const char *PaperContext;
};

const Subplot Subplots[] = {
    {128, 2,
     "paper 3a: MoMA(H100) 1.4x faster than RPU ASIC, 1.8x than FPMM;\n"
     "    shared-memory cliff at n=2^11 on V100"},
    {256, 4,
     "paper 3b: MoMA(H100) 13x faster than ICICLE(H100); beats PipeZK on\n"
     "    all GPUs; GZKP wins only large sizes on V100"},
    {384, 6,
     "paper 3c: MoMA(H100) 4.8x faster than ICICLE; FPMM ASIC 1.7x faster\n"
     "    than MoMA at this width"},
    {768, 12,
     "paper 3d: H100 2x faster than PipeZK (2^14..2^20); GZKP overtakes\n"
     "    from 2^16; RTX 4090 beats H100 (higher clock)"},
};

} // namespace

int main(int argc, char **argv) {
  banner("Figure 3: NTT runtime per butterfly vs size, four input widths");
  unsigned MaxLog = maxLog2N(13);
  size_t Batch = fastMode() ? 2 : 4;

  std::vector<unsigned> Sizes;
  for (unsigned L = 8; L <= MaxLog; L += fastMode() ? 2 : 1)
    Sizes.push_back(L);

  for (const Subplot &SP : Subplots) {
    for (unsigned L : Sizes) {
      // 768-bit butterflies are heavy; skip the largest size in fast mode.
      if (SP.Bits >= 768 && fastMode() && L > 10)
        continue;
      withWordCount(SP.Words, [&](auto WC) {
        registerMomaNtt<decltype(WC)::value>(L, Batch,
                                             sim::deviceH100());
      });
      if (L <= 10)
        registerGmpLikeNtt(SP.Bits, L);
    }
  }

  // Fused-runtime series: one representative size per width, stage
  // fusion depth 1 vs 3 through the batched dispatch runtime (modulus
  // width ContainerBits-4, the paper's evaluation shape). The runtime
  // canonicalizes 384/768-bit containers up to the next power-of-two
  // word count, so 768 (a c1024/m764 kernel) is skipped for bench time —
  // the library path above still measures it exactly.
  unsigned RtLog = std::min(10u, MaxLog);
  size_t RtBatch = fastMode() ? 2 : 8;
  for (const Subplot &SP : Subplots)
    if (SP.Bits < 768)
      for (unsigned Depth : {1u, 3u})
        registerRuntimeNtt(SP.Bits, RtLog, RtBatch, Depth);

  Collector C = runAll(argc, argv);

  for (const Subplot &SP : Subplots) {
    banner(formatv("Figure 3: %u-bit NTT (ns per butterfly)", SP.Bits));
    TextTable T({"log2(n)", "MoMA (sim H100)", "GMP-like NTT", "speedup"});
    double Worst = 1e30;
    for (unsigned L : Sizes) {
      double M = nsPerButterfly(
          C, formatv("moma/ntt/%u/n%u", SP.Bits, L), L, Batch);
      double G =
          nsPerButterfly(C, formatv("gmplike/ntt/%u/n%u", SP.Bits, L), L, 1);
      if (M < 0)
        continue;
      if (G > 0)
        Worst = std::min(Worst, G / M);
      T.addRow({formatv("%u", L), formatNanos(M),
                G > 0 ? formatNanos(G) : "-",
                G > 0 ? formatv("%.1fx", G / M) : "-"});
    }
    bench::report(T.render());
    bench::reportf("  %s\n", SP.PaperContext);
    verdict(formatv("%u-bit: MoMA beats the generic library", SP.Bits),
            Worst, SP.Bits == 384 ? 4.8 : 13.0);
  }

  banner(formatv("Fused runtime pipeline (n = 2^%u batched transforms, ns "
                 "per butterfly)",
                 RtLog));
  {
    TextTable RT({"bits", "dispatches f1 -> f3", "depth 1", "depth 3",
                  "fusion speedup"});
    double BestFuse = 0;
    for (const Subplot &SP : Subplots) {
      if (SP.Bits >= 768)
        continue;
      double F1 = nsPerButterfly(
          C, formatv("runtime/ntt/%u/n%u/f1", SP.Bits, RtLog), RtLog,
          RtBatch);
      double F3 = nsPerButterfly(
          C, formatv("runtime/ntt/%u/n%u/f3", SP.Bits, RtLog), RtLog,
          RtBatch);
      if (F1 > 0 && F3 > 0)
        BestFuse = std::max(BestFuse, F1 / F3);
      RT.addRow({formatv("%u", SP.Bits),
                 formatv("%u -> %u", RtLog, (RtLog + 2) / 3),
                 F1 > 0 ? formatNanos(F1) : "-",
                 F3 > 0 ? formatNanos(F3) : "-",
                 F1 > 0 && F3 > 0 ? formatv("%.2fx", F1 / F3) : "-"});
    }
    bench::report(RT.render());
    verdict("fused stages: depth 3 beats depth 1 on a batched transform",
            BestFuse, 1.0);
  }

  banner("Cross-width scaling check (paper: wider elements cost more per "
         "butterfly)");
  {
    unsigned L = std::min(10u, MaxLog);
    double Prev = 0;
    bool Monotone = true;
    for (const Subplot &SP : Subplots) {
      double M = nsPerButterfly(
          C, formatv("moma/ntt/%u/n%u", SP.Bits, L), L, Batch);
      if (M > 0 && Prev > 0 && M < Prev)
        Monotone = false;
      if (M > 0)
        Prev = M;
    }
    bench::reportf("  per-butterfly cost increases with width: %s\n",
                Monotone ? "yes (matches paper)" : "NO (diverges)");
  }
  benchmark::Shutdown();
  return 0;
}
