//===- bench/bench_rns.cpp - RNS multi-modulus polynomial runtime --------------===//
//
// The serving claims of the RNS layer (runtime/RnsContext.h + the
// Dispatcher's rns* entry points), the workload real FHE/ZKP stacks ship
// (RNS-batched negacyclic polynomial products):
//
//   1. PLAN SHARING — PlanKey excludes the modulus value, so every limb
//      of a base runs through one compiled module per kernel: the
//      compiled-plan count is a small constant independent of the limb
//      count (measured on fresh registries at 2 and 4 limbs);
//   2. EDGE-FOLD CRT — decompose and recombine are generated kernels
//      dispatched per limb, not host loops; their cost is measured
//      against the per-limb NTT work they bracket;
//   3. NEGACYCLIC FOR FREE — the x^n + 1 product issues exactly the
//      dispatch sequence of the cyclic one (ψ twist and untwist ride the
//      existing edge stage groups).
//
// `--smoke` runs a tiny wiring check (bit-exactness vs the Bignum
// schoolbook, exact dispatch/plan counts) with no timing assertions —
// the CI perf-trajectory gate compares its `--json` output against the
// committed baseline (see tools/bench_compare.py): *_count/*_ok metrics
// must match exactly, *_ns metrics within a generous ratio.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "field/PrimeField.h"
#include "ntt/Negacyclic.h"
#include "ntt/Ntt.h"
#include "ntt/ReferenceDft.h"
#include "runtime/Dispatcher.h"
#include "support/Rng.h"

#include <chrono>
#include <cstring>

using namespace moma;
using namespace moma::bench;
using namespace moma::runtime;
using mw::Bignum;
using rewrite::ExecBackend;
using rewrite::NttRing;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

rewrite::PlanOptions pinnedSerial(unsigned Depth) {
  rewrite::PlanOptions O;
  O.Backend = ExecBackend::Serial;
  O.FuseDepth = Depth;
  return O;
}

/// Builds a base or dies with a message (benches have no gtest).
RnsContext mustBase(unsigned Limbs) {
  RnsContext Ctx;
  std::string Err;
  if (!RnsContext::create(Limbs, Ctx, &Err)) {
    std::fprintf(stderr, "%s\n", Err.c_str());
    std::exit(1);
  }
  return Ctx;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
  std::string JsonPath = jsonPathFromArgs(argc, argv);

  const unsigned Limbs = 4;
  const size_t N = Smoke ? 16 : 256; // ring degree
  const size_t Batch = Smoke ? 4 : fastMode() ? 16 : 64;
  RnsContext Ctx = mustBase(Limbs);
  const Bignum &M = Ctx.modulus();
  const unsigned WW = Ctx.wideWords();

  deviceSection(Smoke ? "RNS runtime smoke check (tiny sizes, wiring only)"
                      : "RNS multi-modulus negacyclic polynomial runtime");
  reportf("base: %u limbs x %u bits (M = %u bits, %u-word wide elements)\n"
          "workload: %zu negacyclic products in Z_M[x]/(x^%zu + 1)\n",
          Limbs, Ctx.limbBits(), M.bitWidth(), WW, Batch, N);
  flushReport();

  Rng R(0x2A5B);
  std::vector<Bignum> A, B;
  for (size_t I = 0; I < N * Batch; ++I) {
    A.push_back(Bignum::random(R, M));
    B.push_back(Bignum::random(R, M));
  }
  auto AW = packBatch(A, WW), BW = packBatch(B, WW);
  std::vector<std::uint64_t> CW(N * Batch * WW);

  // -- 1) Exact dispatch/plan accounting on a fresh pinned registry ------
  // Deterministic by construction (no tuner, fixed depth 2), so the CI
  // trajectory gate checks these counts exactly.
  KernelRegistry CountReg;
  Dispatcher CountD(CountReg, nullptr, pinnedSerial(2));
  if (!CountD.rnsPolyMul(Ctx, AW.data(), BW.data(), CW.data(), N, Batch,
                         NttRing::Cyclic)) {
    reportf("rnsPolyMul failed: %s\n", CountD.error().c_str());
    return 1;
  }
  auto Cyc = CountD.dispatchStats();
  // Snapshot before the negacyclic pass: the ring is its own (module-
  // sharing) plan-cache entry, so the cross-limb-count comparison below
  // is cyclic-vs-cyclic.
  unsigned BuildsL4 = CountReg.stats().Builds;
  if (!CountD.rnsPolyMul(Ctx, AW.data(), BW.data(), CW.data(), N, Batch,
                         NttRing::Negacyclic)) {
    reportf("rnsPolyMul failed: %s\n", CountD.error().c_str());
    return 1;
  }
  auto Neg = CountD.dispatchStats();
  std::uint64_t CycDispatches = Cyc.StageGroups + Cyc.Batches;
  std::uint64_t NegDispatches =
      (Neg.StageGroups - Cyc.StageGroups) + (Neg.Batches - Cyc.Batches);
  std::uint64_t NegExtra = NegDispatches - CycDispatches;

  // The sharing claim at a second limb count: 2 limbs on another fresh
  // registry must build exactly as many plans as 4.
  unsigned BuildsL2 = 0;
  {
    RnsContext Ctx2 = mustBase(2);
    std::vector<Bignum> A2;
    for (size_t I = 0; I < N; ++I)
      A2.push_back(Bignum::random(R, Ctx2.modulus()));
    auto A2W = packBatch(A2, Ctx2.wideWords());
    std::vector<std::uint64_t> C2W(N * Ctx2.wideWords());
    KernelRegistry Reg2;
    Dispatcher D2(Reg2, nullptr, pinnedSerial(2));
    if (!D2.rnsPolyMul(Ctx2, A2W.data(), A2W.data(), C2W.data(), N, 1,
                       NttRing::Cyclic)) {
      reportf("rnsPolyMul (2 limbs) failed: %s\n", D2.error().c_str());
      return 1;
    }
    BuildsL2 = Reg2.stats().Builds;
  }

  // -- 2) Correctness against an independent oracle ----------------------
  bool BitExact = true;
  {
    auto Got = unpackBatch(CW, WW);
    if (Smoke) {
      // Tiny n: full Bignum schoolbook on every batch row.
      for (size_t Bt = 0; Bt < Batch && BitExact; ++Bt) {
        std::vector<Bignum> RA(A.begin() + Bt * N,
                               A.begin() + (Bt + 1) * N),
            RB(B.begin() + Bt * N, B.begin() + (Bt + 1) * N);
        auto Want =
            ntt::referencePolyMulRing(RA, RB, M, /*Negacyclic=*/true);
        for (size_t I = 0; I < N; ++I)
          if (Got[Bt * N + I] != Want[I])
            BitExact = false;
      }
    } else {
      // Full mode: the independent library path (ntt::NegacyclicPlan per
      // limb + host CRT) on the first batch row.
      std::vector<Bignum> RA(A.begin(), A.begin() + N),
          RB(B.begin(), B.begin() + N);
      std::vector<std::vector<std::uint64_t>> LimbC(Ctx.numLimbs());
      for (size_t L = 0; L < Ctx.numLimbs(); ++L) {
        field::PrimeField<1> F(Ctx.limb(L));
        ntt::NegacyclicPlan<1> Plan(F, N);
        std::vector<field::PrimeField<1>::Element> EA, EB;
        for (size_t I = 0; I < N; ++I) {
          EA.push_back(F.fromBignum(RA[I] % Ctx.limb(L)));
          EB.push_back(F.fromBignum(RB[I] % Ctx.limb(L)));
        }
        auto EC = ntt::polyMulNegacyclic(Plan, EA, EB);
        for (const auto &E : EC)
          LimbC[L].push_back(E.toBignum().low64());
      }
      for (size_t I = 0; I < N && BitExact; ++I) {
        std::vector<std::uint64_t> Res;
        for (size_t L = 0; L < Ctx.numLimbs(); ++L)
          Res.push_back(LimbC[L][I]);
        if (Got[I] != Ctx.decode(Res.data(), 1))
          BitExact = false;
      }
    }
  }

  // Decompose/recombine roundtrip (wiring of the generated CRT kernels).
  bool Roundtrip = true;
  {
    std::vector<std::uint64_t> Res(Ctx.numLimbs() * N * Batch),
        Back(N * Batch * WW);
    Dispatcher D(CountReg, nullptr, pinnedSerial(2));
    if (!D.rnsDecompose(Ctx, AW.data(), Res.data(), N * Batch) ||
        !D.rnsRecombine(Ctx, Res.data(), Back.data(), N * Batch))
      Roundtrip = false;
    else
      Roundtrip = Back == AW;
  }

  // -- 3) Timings (ratio-gated in CI with generous tolerance) ------------
  KernelRegistry TimeReg;
  Autotuner Tuner(TimeReg);
  Dispatcher D(TimeReg, &Tuner);
  // Warm plans, tables and tuner decisions with one full pass.
  if (!D.rnsPolyMul(Ctx, AW.data(), BW.data(), CW.data(), N, Batch,
                    NttRing::Negacyclic)) {
    reportf("rnsPolyMul (tuned) failed: %s\n", D.error().c_str());
    return 1;
  }
  auto T0 = std::chrono::steady_clock::now();
  if (!D.rnsPolyMul(Ctx, AW.data(), BW.data(), CW.data(), N, Batch,
                    NttRing::Negacyclic))
    return 1;
  double PolySec = secondsSince(T0);

  std::vector<std::uint64_t> Res(Ctx.numLimbs() * N * Batch);
  T0 = std::chrono::steady_clock::now();
  if (!D.rnsDecompose(Ctx, AW.data(), Res.data(), N * Batch))
    return 1;
  double DecSec = secondsSince(T0);
  T0 = std::chrono::steady_clock::now();
  if (!D.rnsRecombine(Ctx, Res.data(), CW.data(), N * Batch))
    return 1;
  double RecSec = secondsSince(T0);

  banner("Results");
  TextTable T({"phase", "time", "per wide element"});
  size_t Elems = N * Batch;
  T.addRow({"decompose (4 limbs)", formatNanos(DecSec * 1e9),
            formatNanos(DecSec * 1e9 / double(Elems))});
  T.addRow({"recombine (4 limbs)", formatNanos(RecSec * 1e9),
            formatNanos(RecSec * 1e9 / double(Elems))});
  T.addRow({"full negacyclic rnsPolyMul", formatNanos(PolySec * 1e9),
            formatNanos(PolySec * 1e9 / double(Elems))});
  report(T.render());
  reportf("plans: %u built for 4 limbs, %u for 2 limbs (pinned serial "
          "registries); cyclic dispatches %llu, negacyclic extra %llu\n",
          BuildsL4, BuildsL2,
          static_cast<unsigned long long>(CycDispatches),
          static_cast<unsigned long long>(NegExtra));

  recordMetric("rns/limb_plan_builds_l4_count", double(BuildsL4));
  recordMetric("rns/limb_plan_builds_l2_count", double(BuildsL2));
  recordMetric("rns/polymul_dispatches_count", double(CycDispatches));
  recordMetric("rns/neg_extra_dispatches_count", double(NegExtra));
  recordMetric("rns/polymul_bitexact_ok", BitExact ? 1.0 : 0.0);
  recordMetric("rns/crt_roundtrip_ok", Roundtrip ? 1.0 : 0.0);
  recordMetric("rns/decompose_ns", DecSec * 1e9);
  recordMetric("rns/recombine_ns", RecSec * 1e9);
  recordMetric("rns/polymul_ns", PolySec * 1e9);

  banner(Smoke ? "Smoke verdicts (wiring only, no performance assertions)"
               : "Verdicts");
  verdict("rnsPolyMul bit-exact vs independent oracle",
          BitExact ? 1.0 : 0.0, 1.0);
  verdict("generated CRT kernels roundtrip the wide batch",
          Roundtrip ? 1.0 : 0.0, 1.0);
  verdict("compiled-plan count independent of limb count",
          BuildsL2 == BuildsL4 ? 1.0 : 0.0, 1.0);
  verdict("negacyclic adds zero dispatches over cyclic",
          NegExtra == 0 ? 1.0 : 0.0, 1.0);
  flushReport();
  if (!writeJsonReport(JsonPath, "bench_rns")) {
    std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  if (!JsonPath.empty())
    std::printf("wrote %s\n", JsonPath.c_str());
  return BitExact && Roundtrip && BuildsL2 == BuildsL4 && NegExtra == 0
             ? 0
             : 1;
}
