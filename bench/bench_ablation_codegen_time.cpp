//===- bench/bench_ablation_codegen_time.cpp - generation cost ablation --------===//
//
// Ablation called out in DESIGN.md: the paper's artifact appendix notes
// that "code generation time increases exponentially with the input
// bit-width" (A.2). This bench times our pipeline stages — lowering,
// simplification, C emission — for the mulmod kernel across widths, and
// reports the per-doubling growth factor together with the generated
// statement counts.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "codegen/CEmitter.h"
#include "kernels/ScalarKernels.h"
#include "rewrite/Lower.h"
#include "rewrite/Simplify.h"
#include "rewrite/Stats.h"

#include <benchmark/benchmark.h>

using namespace moma;
using namespace moma::bench;
using namespace moma::rewrite;

namespace {

const unsigned Widths[] = {128, 256, 512, 1024, 2048};

void registerWidth(unsigned Bits) {
  kernels::ScalarKernelSpec Spec{Bits, 0};
  registerBench(
      formatv("lower/%u", Bits), [Spec](benchmark::State &S) {
        for (auto _ : S) {
          LoweredKernel L =
              lowerToWords(kernels::buildMulModKernel(Spec), {});
          benchmark::DoNotOptimize(L.K.size());
        }
      })->Unit(benchmark::kMillisecond);
  registerBench(
      formatv("lower+simplify+emit/%u", Bits), [Spec](benchmark::State &S) {
        for (auto _ : S) {
          LoweredKernel L =
              lowerToWords(kernels::buildMulModKernel(Spec), {});
          simplifyLowered(L);
          codegen::EmittedKernel EK = codegen::emitC(L);
          benchmark::DoNotOptimize(EK.Source.size());
        }
      })->Unit(benchmark::kMillisecond);
}

} // namespace

int main(int argc, char **argv) {
  banner("Ablation: code generation cost vs input bit-width (paper A.2)");

  unsigned Max = fastMode() ? 1024 : 2048;
  for (unsigned Bits : Widths)
    if (Bits <= Max)
      registerWidth(Bits);

  Collector C = runAll(argc, argv);

  banner("Summary");
  TextTable T({"bits", "lower", "full pipeline", "stmts", "growth vs half"});
  double Prev = -1;
  for (unsigned Bits : Widths) {
    if (Bits > Max)
      continue;
    double Lower = lookupNs(C, formatv("lower/%u", Bits));
    double Full = lookupNs(C, formatv("lower+simplify+emit/%u", Bits));
    kernels::ScalarKernelSpec Spec{Bits, 0};
    LoweredKernel L = lowerToWords(kernels::buildMulModKernel(Spec), {});
    simplifyLowered(L);
    T.addRow({formatv("%u", Bits), formatNanos(Lower), formatNanos(Full),
              formatv("%zu", L.K.size()),
              Prev > 0 ? formatv("%.1fx", Full / Prev) : "-"});
    Prev = Full;
  }
  bench::report(T.render());
  bench::reportf("\n  Paper A.2: \"code generation time increases exponentially"
              " with the\n  input bit-width\" — the growth factor per width"
              " doubling should be\n  well above 2x (statement count grows"
              " ~4x per doubling).\n");
  benchmark::Shutdown();
  return 0;
}
