//===- bench/Harness.h - shared benchmark harness -------------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the figure-reproduction benchmarks: a collecting
/// google-benchmark reporter, env-var scaling knobs, the word-count
/// template dispatcher, and the paper-vs-measured verdict printer every
/// binary ends with (EXPERIMENTS.md quotes those verdicts).
///
/// Env knobs:
///   MOMA_BENCH_FAST=1        quick mode (small sizes, short timings)
///   MOMA_BENCH_MAX_LOG2N=k   cap NTT sizes at 2^k
///   MOMA_BENCH_ELEMS=n       vector length for the BLAS figure
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_BENCH_HARNESS_H
#define MOMA_BENCH_HARNESS_H

#include "sim/Device.h"
#include "support/Format.h"

#include <benchmark/benchmark.h>

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <map>
#include <string>
#include <unistd.h>
#include <utility>
#include <vector>

namespace moma {
namespace bench {

/// Report buffering: verdict/banner/table lines accumulate here and flush
/// in one write. Under `ctest -j` (or any parallel driver) several bench
/// processes share one pipe; per-line printf interleaved their verdict
/// sections, garbling the EXPERIMENTS.md quotes. Flushing a whole section
/// as a single write(2) keeps it contiguous: POSIX guarantees pipe
/// atomicity only up to PIPE_BUF (4 KiB on Linux), so sections are kept
/// below that by flushing at every banner, and anything larger degrades
/// to best-effort rather than per-line shuffling.
inline std::string &reportBuffer() {
  static std::string Buf;
  return Buf;
}

/// Writes the buffered report and clears the buffer. Bypasses stdio
/// buffering (which would split the payload at its own buffer boundary):
/// stdout is flushed first to preserve ordering with printf-style output,
/// then the report goes out in as few write(2) calls as the kernel
/// accepts.
inline void flushReport() {
  std::string &Buf = reportBuffer();
  if (Buf.empty())
    return;
  std::fflush(stdout);
  size_t Off = 0;
  while (Off < Buf.size()) {
    ssize_t N = ::write(STDOUT_FILENO, Buf.data() + Off, Buf.size() - Off);
    if (N <= 0)
      break;
    Off += static_cast<size_t>(N);
  }
  Buf.clear();
}

/// Appends to the buffered report (registered to flush at exit, so benches
/// that never call flushReport() still print).
inline void report(const std::string &Text) {
  // Construct the buffer BEFORE registering the exit handler: exit-time
  // teardown runs in reverse registration order, so this guarantees
  // flushReport runs while the buffer is still alive.
  std::string &Buf = reportBuffer();
  static bool Registered = (std::atexit(flushReport), true);
  (void)Registered;
  Buf += Text;
}

/// printf-style report().
inline void reportf(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));
inline void reportf(const char *Fmt, ...) {
  va_list Ap;
  va_start(Ap, Fmt);
  report(vformatv(Fmt, Ap));
  va_end(Ap);
}

//===----------------------------------------------------------------------===//
// Machine-readable results: `--json <path>` support. Benches record named
// scalar metrics as they measure and write one flat JSON document at the
// end, giving CI an artifact to trend (the perf trajectory) without
// scraping console tables.
//===----------------------------------------------------------------------===//

/// The metric sink, in recording order.
inline std::vector<std::pair<std::string, double>> &jsonMetrics() {
  static std::vector<std::pair<std::string, double>> M;
  return M;
}

/// Records one scalar metric (typically nanoseconds or a ratio) for the
/// JSON report. No-op semantics otherwise: console reporting is
/// unaffected.
inline void recordMetric(const std::string &Name, double Value) {
  jsonMetrics().emplace_back(Name, Value);
}

/// Extracts the `--json <path>` argument if present ("" otherwise).
inline std::string jsonPathFromArgs(int argc, char **argv) {
  for (int I = 1; I + 1 < argc; ++I)
    if (std::string(argv[I]) == "--json")
      return argv[I + 1];
  return "";
}

/// Writes the recorded metrics as `{"bench": ..., "unix_time": ...,
/// "metrics": {...}}`. Returns false on I/O failure. Metric names are
/// emitted verbatim (benches use [a-z0-9_/.] names; keep them
/// quote-free).
inline bool writeJsonReport(const std::string &Path,
                            const std::string &BenchName) {
  if (Path.empty())
    return true;
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << "{\n  \"bench\": \"" << BenchName << "\",\n  \"unix_time\": "
      << static_cast<long long>(std::time(nullptr))
      << ",\n  \"metrics\": {";
  bool First = true;
  for (const auto &M : jsonMetrics()) {
    Out << (First ? "" : ",") << "\n    \"" << M.first
        << "\": " << formatv("%.3f", M.second);
    First = false;
  }
  Out << "\n  }\n}\n";
  return static_cast<bool>(Out);
}

/// True when the quick-mode env knob is set.
inline bool fastMode() {
  const char *V = std::getenv("MOMA_BENCH_FAST");
  return V && V[0] && V[0] != '0';
}

/// Integer env knob with default.
inline unsigned envUnsigned(const char *Name, unsigned Def) {
  const char *V = std::getenv(Name);
  if (!V || !V[0])
    return Def;
  return static_cast<unsigned>(std::strtoul(V, nullptr, 10));
}

/// Largest log2(NTT size) the sweep benches use.
inline unsigned maxLog2N(unsigned Def) {
  unsigned Cap = envUnsigned("MOMA_BENCH_MAX_LOG2N", Def);
  return fastMode() ? std::min(Cap, 10u) : Cap;
}

/// google-benchmark reporter that records adjusted per-iteration real time
/// (nanoseconds) per benchmark while still printing the console table.
class Collector : public benchmark::ConsoleReporter {
public:
  std::map<std::string, double> RealNs;

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs)
      if (R.run_type == Run::RT_Iteration) {
        // GetAdjustedRealTime is in the run's display unit; normalize to ns.
        double UnitPerSec = benchmark::GetTimeUnitMultiplier(R.time_unit);
        RealNs[R.benchmark_name()] =
            R.GetAdjustedRealTime() * (1e9 / UnitPerSec);
      }
    ConsoleReporter::ReportRuns(Runs);
  }
};

/// Looks up a collected time; returns -1 when the series was skipped.
/// UseRealTime() benchmarks report under "<name>/real_time".
inline double lookupNs(const Collector &C, const std::string &Name) {
  auto It = C.RealNs.find(Name);
  if (It == C.RealNs.end())
    It = C.RealNs.find(Name + "/real_time");
  return It == C.RealNs.end() ? -1.0 : It->second;
}

/// Reports one shape-verdict line (buffered; see report()): the paper
/// claims Who wins by PaperFactor; we measured MeasuredFactor. "SHAPE OK"
/// when the winner matches (factor sizes may differ across substrates —
/// see DESIGN.md).
inline void verdict(const std::string &Label, double MeasuredFactor,
                    double PaperFactor) {
  bool SameWinner = (MeasuredFactor >= 1.0) == (PaperFactor >= 1.0);
  reportf("  %-58s measured %7.2fx   paper %7.2fx   %s\n", Label.c_str(),
          MeasuredFactor, PaperFactor,
          SameWinner ? "SHAPE OK" : "SHAPE DIVERGES");
}

/// Reports a section banner. Flushes the previous section first: sections
/// stay contiguous (and under the pipe-atomicity bound), and a bench that
/// aborts mid-run — assertion, sanitizer — has lost at most the section
/// in progress, not the whole report.
inline void banner(const std::string &Title) {
  flushReport();
  reportf("\n================================================================\n"
          "%s\n"
          "================================================================\n",
          Title.c_str());
}

/// Reports a section banner immediately followed by the sim device table
/// (paper Table 2), both appended to the same buffered section. Benches
/// must use this instead of a banner()/printf pair: the table then flushes
/// atomically with its banner, so a parallel driver (`ctest -j`, make -j
/// wrappers) can never interleave another process's lines between the two.
inline void deviceSection(const std::string &Title) {
  banner(Title);
  report(sim::deviceTable());
}

/// Runs all registered benchmarks through a Collector and returns it.
/// Flushes the buffered report first so the google-benchmark console
/// table, which writes stdout directly, lands after any opening banner.
inline Collector runAll(int &Argc, char **Argv) {
  flushReport();
  benchmark::Initialize(&Argc, Argv);
  Collector C;
  benchmark::RunSpecifiedBenchmarks(&C);
  return C;
}

/// RegisterBenchmark accepting std::string names (the installed
/// google-benchmark only has the const char* overload).
template <typename Lambda>
benchmark::internal::Benchmark *registerBench(const std::string &Name,
                                              Lambda &&Fn) {
  return benchmark::RegisterBenchmark(Name.c_str(),
                                      std::forward<Lambda>(Fn));
}

/// Calls Fn with std::integral_constant<unsigned, W> for the runtime word
/// count W in [1, 16]; the dispatcher behind the width sweeps.
template <typename Fn> void withWordCount(unsigned W, Fn &&F) {
  switch (W) {
#define MOMA_CASE(N)                                                           \
  case N:                                                                      \
    F(std::integral_constant<unsigned, N>{});                                  \
    return;
    MOMA_CASE(1)
    MOMA_CASE(2)
    MOMA_CASE(3)
    MOMA_CASE(4)
    MOMA_CASE(5)
    MOMA_CASE(6)
    MOMA_CASE(7)
    MOMA_CASE(8)
    MOMA_CASE(9)
    MOMA_CASE(10)
    MOMA_CASE(11)
    MOMA_CASE(12)
    MOMA_CASE(13)
    MOMA_CASE(14)
    MOMA_CASE(15)
    MOMA_CASE(16)
#undef MOMA_CASE
  default:
    std::fprintf(stderr, "unsupported word count %u\n", W);
    std::abort();
  }
}

} // namespace bench
} // namespace moma

#endif // MOMA_BENCH_HARNESS_H
