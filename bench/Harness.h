//===- bench/Harness.h - shared benchmark harness -------------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the figure-reproduction benchmarks: a collecting
/// google-benchmark reporter, env-var scaling knobs, the word-count
/// template dispatcher, and the paper-vs-measured verdict printer every
/// binary ends with (EXPERIMENTS.md quotes those verdicts).
///
/// Env knobs:
///   MOMA_BENCH_FAST=1        quick mode (small sizes, short timings)
///   MOMA_BENCH_MAX_LOG2N=k   cap NTT sizes at 2^k
///   MOMA_BENCH_ELEMS=n       vector length for the BLAS figure
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_BENCH_HARNESS_H
#define MOMA_BENCH_HARNESS_H

#include "support/Format.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

namespace moma {
namespace bench {

/// True when the quick-mode env knob is set.
inline bool fastMode() {
  const char *V = std::getenv("MOMA_BENCH_FAST");
  return V && V[0] && V[0] != '0';
}

/// Integer env knob with default.
inline unsigned envUnsigned(const char *Name, unsigned Def) {
  const char *V = std::getenv(Name);
  if (!V || !V[0])
    return Def;
  return static_cast<unsigned>(std::strtoul(V, nullptr, 10));
}

/// Largest log2(NTT size) the sweep benches use.
inline unsigned maxLog2N(unsigned Def) {
  unsigned Cap = envUnsigned("MOMA_BENCH_MAX_LOG2N", Def);
  return fastMode() ? std::min(Cap, 10u) : Cap;
}

/// google-benchmark reporter that records adjusted per-iteration real time
/// (nanoseconds) per benchmark while still printing the console table.
class Collector : public benchmark::ConsoleReporter {
public:
  std::map<std::string, double> RealNs;

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs)
      if (R.run_type == Run::RT_Iteration) {
        // GetAdjustedRealTime is in the run's display unit; normalize to ns.
        double UnitPerSec = benchmark::GetTimeUnitMultiplier(R.time_unit);
        RealNs[R.benchmark_name()] =
            R.GetAdjustedRealTime() * (1e9 / UnitPerSec);
      }
    ConsoleReporter::ReportRuns(Runs);
  }
};

/// Looks up a collected time; returns -1 when the series was skipped.
/// UseRealTime() benchmarks report under "<name>/real_time".
inline double lookupNs(const Collector &C, const std::string &Name) {
  auto It = C.RealNs.find(Name);
  if (It == C.RealNs.end())
    It = C.RealNs.find(Name + "/real_time");
  return It == C.RealNs.end() ? -1.0 : It->second;
}

/// Prints one shape-verdict line: the paper claims Who wins by
/// PaperFactor; we measured MeasuredFactor. "SHAPE OK" when the winner
/// matches (factor sizes may differ across substrates — see DESIGN.md).
inline void verdict(const std::string &Label, double MeasuredFactor,
                    double PaperFactor) {
  bool SameWinner = (MeasuredFactor >= 1.0) == (PaperFactor >= 1.0);
  std::printf("  %-58s measured %7.2fx   paper %7.2fx   %s\n", Label.c_str(),
              MeasuredFactor, PaperFactor,
              SameWinner ? "SHAPE OK" : "SHAPE DIVERGES");
}

/// Prints a section banner.
inline void banner(const std::string &Title) {
  std::printf("\n================================================================\n"
              "%s\n"
              "================================================================\n",
              Title.c_str());
}

/// Runs all registered benchmarks through a Collector and returns it.
inline Collector runAll(int &Argc, char **Argv) {
  benchmark::Initialize(&Argc, Argv);
  Collector C;
  benchmark::RunSpecifiedBenchmarks(&C);
  return C;
}

/// RegisterBenchmark accepting std::string names (the installed
/// google-benchmark only has the const char* overload).
template <typename Lambda>
benchmark::internal::Benchmark *registerBench(const std::string &Name,
                                              Lambda &&Fn) {
  return benchmark::RegisterBenchmark(Name.c_str(),
                                      std::forward<Lambda>(Fn));
}

/// Calls Fn with std::integral_constant<unsigned, W> for the runtime word
/// count W in [1, 16]; the dispatcher behind the width sweeps.
template <typename Fn> void withWordCount(unsigned W, Fn &&F) {
  switch (W) {
#define MOMA_CASE(N)                                                           \
  case N:                                                                      \
    F(std::integral_constant<unsigned, N>{});                                  \
    return;
    MOMA_CASE(1)
    MOMA_CASE(2)
    MOMA_CASE(3)
    MOMA_CASE(4)
    MOMA_CASE(5)
    MOMA_CASE(6)
    MOMA_CASE(7)
    MOMA_CASE(8)
    MOMA_CASE(9)
    MOMA_CASE(10)
    MOMA_CASE(11)
    MOMA_CASE(12)
    MOMA_CASE(13)
    MOMA_CASE(14)
    MOMA_CASE(15)
    MOMA_CASE(16)
#undef MOMA_CASE
  default:
    std::fprintf(stderr, "unsupported word count %u\n", W);
    std::abort();
  }
}

} // namespace bench
} // namespace moma

#endif // MOMA_BENCH_HARNESS_H
