//===- bench/bench_fig4_crosscut.cpp - Paper Figure 4 --------------------------===//
//
// Figure 4: one NTT size (paper: 2^16), input widths 128..1024 — the
// cross-cut showing MoMA's flexibility across fine-grained bit-widths vs
// the generic multiprecision library. The size is env-scalable because a
// 2^16-point 1024-bit software NTT is minutes of work on two cores.
//
//===----------------------------------------------------------------------===//

#include "NttBenchCommon.h"

using namespace moma;
using namespace moma::bench;

int main(int argc, char **argv) {
  unsigned LogN = std::min(maxLog2N(12), 16u);
  size_t Batch = fastMode() ? 1 : 2;
  banner(formatv("Figure 4: 2^%u-point NTT across input bit-widths", LogN));

  // Word-multiple widths like the paper's sweep; 384 and 768 exercise the
  // non-power-of-two path.
  const unsigned WordCounts[] = {2, 3, 4, 6, 8, 12, 16};

  for (unsigned W : WordCounts) {
    withWordCount(W, [&](auto WC) {
      registerMomaNtt<decltype(WC)::value>(LogN, Batch, sim::deviceH100());
    });
    if (64 * W <= 256)
      registerGmpLikeNtt(64 * W, std::min(LogN, 10u));
  }

  Collector C = runAll(argc, argv);

  banner("Figure 4 series (ns per butterfly)");
  TextTable T({"bits", "MoMA (sim H100)", "GMP-like NTT", "speedup"});
  double Worst = 1e30;
  double First = -1, Last = -1;
  for (unsigned W : WordCounts) {
    unsigned Bits = 64 * W;
    double M = nsPerButterfly(C, formatv("moma/ntt/%u/n%u", Bits, LogN),
                              LogN, Batch);
    unsigned GLog = std::min(LogN, 10u);
    double G =
        Bits <= 256
            ? nsPerButterfly(C, formatv("gmplike/ntt/%u/n%u", Bits, GLog),
                             GLog, 1)
            : -1;
    if (First < 0)
      First = M;
    Last = M;
    if (G > 0 && M > 0)
      Worst = std::min(Worst, G / M);
    T.addRow({formatv("%u", Bits), formatNanos(M),
              G > 0 ? formatNanos(G) : "-",
              G > 0 ? formatv("%.1fx", G / M) : "-"});
  }
  bench::report(T.render());

  banner("Paper-reported context for 2^16, 256-bit (Figure 4)");
  bench::reportf("  ICICLE(H100) ~13x slower than MoMA; PipeZK/FPMM between\n"
              "  MoMA-GPU results; GMP NTT orders of magnitude slower\n");

  banner("Shape verdicts vs paper Figure 4");
  verdict("MoMA beats the generic library at every width it can run",
          Worst, 13.0);
  verdict("per-butterfly cost grows 128 -> 1024 bits", Last / First, 50.0);
  benchmark::Shutdown();
  return 0;
}
