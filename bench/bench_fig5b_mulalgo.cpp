//===- bench/bench_fig5b_mulalgo.cpp - Paper Figure 5b -------------------------===//
//
// Figure 5b: Karatsuba vs schoolbook double-word multiplication inside the
// 4096-point NTT at 128/256/384/768 bits. The paper (RTX 4090) reports
// Karatsuba 2.1x / 1.7x faster at 128/256 bits, parity at 384, and
// schoolbook 1.6x faster at 768.
//
// Note on substrate: a GPU pays much more for a wide multiplier than a
// modern x86 core does for one mulq, so the crossover point is expected
// to shift here; the reproduced shape claim is the *trend* — Karatsuba's
// advantage shrinks and eventually inverts as width grows.
//
//===----------------------------------------------------------------------===//

#include "NttBenchCommon.h"

using namespace moma;
using namespace moma::bench;

int main(int argc, char **argv) {
  unsigned LogN = fastMode() ? 9 : 12; // paper: 4096 = 2^12
  size_t Batch = 2;
  banner(formatv("Figure 5b: Karatsuba vs schoolbook, 2^%u-point NTT", LogN));

  const unsigned WordCounts[] = {2, 4, 6, 12}; // 128/256/384/768 bits

  for (unsigned W : WordCounts) {
    withWordCount(W, [&](auto WC) {
      constexpr unsigned WV = decltype(WC)::value;
      registerMomaNtt<WV>(LogN, Batch, sim::deviceH100(),
                          mw::MulAlgorithm::Schoolbook, "school");
      registerMomaNtt<WV>(LogN, Batch, sim::deviceH100(),
                          mw::MulAlgorithm::Karatsuba, "karatsuba");
    });
  }

  Collector C = runAll(argc, argv);

  banner("Figure 5b series (runtime per single NTT)");
  TextTable T({"bits", "schoolbook", "Karatsuba", "school/kara"});
  std::map<unsigned, double> Ratio;
  for (unsigned W : WordCounts) {
    unsigned Bits = 64 * W;
    double S = lookupNs(C, formatv("school/ntt/%u/n%u", Bits, LogN)) / Batch;
    double K =
        lookupNs(C, formatv("karatsuba/ntt/%u/n%u", Bits, LogN)) / Batch;
    Ratio[Bits] = S / K;
    T.addRow({formatv("%u", Bits), formatNanos(S), formatNanos(K),
              formatv("%.2fx", S / K)});
  }
  bench::report(T.render());

  banner("Shape verdicts vs paper Figure 5b");
  // Paper ratios (school/kara): 2.1 @128, 1.7 @256, ~1.0 @384, 0.63 @768.
  verdict("128-bit school/kara ratio", Ratio[128], 2.1);
  verdict("256-bit school/kara ratio", Ratio[256], 1.7);
  verdict("768-bit school/kara ratio", Ratio[768], 0.63);
  bench::reportf(
      "  trend (advantage shrinks with width): %s\n",
      Ratio[128] >= Ratio[768] ? "matches paper" : "DIVERGES (see note)");
  benchmark::Shutdown();
  return 0;
}
