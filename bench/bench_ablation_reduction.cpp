//===- bench/bench_ablation_reduction.cpp - reduction strategy ablation --------===//
//
// Ablation called out in DESIGN.md: the paper uses Barrett reduction for
// general moduli (3.1) and mentions Montgomery support for full-width
// moduli (5.2). This bench compares the modular-multiplication strategies
// on the runtime library: Barrett, Montgomery (in-domain), and the
// division-based reduction a generic library performs.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "field/PrimeGen.h"
#include "mw/Barrett.h"
#include "mw/Montgomery.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace moma;
using namespace moma::bench;
using mw::Bignum;

namespace {

template <unsigned W> void registerWidth() {
  unsigned MBits = 64 * W - 4;
  Bignum Q = field::nttPrime(MBits, 8);
  Rng R(0xAB2 + W);
  Bignum ABig = Bignum::random(R, Q), BBig = Bignum::random(R, Q);

  auto Bar = std::make_shared<mw::Barrett<W>>(mw::Barrett<W>::create(Q));
  auto Mont =
      std::make_shared<mw::Montgomery<W>>(mw::Montgomery<W>::create(Q));
  auto A = std::make_shared<mw::MWUInt<W>>(mw::MWUInt<W>::fromBignum(ABig));
  auto B = std::make_shared<mw::MWUInt<W>>(mw::MWUInt<W>::fromBignum(BBig));
  auto AM = std::make_shared<mw::MWUInt<W>>(Mont->toMont(*A));
  auto BM = std::make_shared<mw::MWUInt<W>>(Mont->toMont(*B));
  auto QBig = std::make_shared<Bignum>(Q);
  auto ABigP = std::make_shared<Bignum>(ABig);
  auto BBigP = std::make_shared<Bignum>(BBig);

  registerBench(
      formatv("barrett/%u", 64 * W), [Bar, A, B](benchmark::State &S) {
        mw::MWUInt<W> Acc = *A;
        for (auto _ : S) {
          Acc = Bar->mulMod(Acc, *B);
          benchmark::DoNotOptimize(Acc);
        }
      })->Unit(benchmark::kNanosecond);

  registerBench(
      formatv("montgomery/%u", 64 * W), [Mont, AM, BM](benchmark::State &S) {
        mw::MWUInt<W> Acc = *AM;
        for (auto _ : S) {
          Acc = Mont->mulMont(Acc, *BM);
          benchmark::DoNotOptimize(Acc);
        }
      })->Unit(benchmark::kNanosecond);

  registerBench(
      formatv("division/%u", 64 * W),
      [QBig, ABigP, BBigP](benchmark::State &S) {
        Bignum Acc = *ABigP;
        for (auto _ : S) {
          Acc = Acc.mulMod(*BBigP, *QBig);
          benchmark::DoNotOptimize(Acc);
        }
      })->Unit(benchmark::kNanosecond);
}

} // namespace

int main(int argc, char **argv) {
  banner("Ablation: modular reduction strategy (Barrett vs Montgomery vs "
         "division)");
  registerWidth<2>();
  registerWidth<4>();
  registerWidth<8>();
  registerWidth<16>();

  Collector C = runAll(argc, argv);

  banner("Summary (ns per modular multiplication)");
  TextTable T({"bits", "Barrett", "Montgomery", "division",
               "div/Barrett", "Mont/Barrett"});
  for (unsigned Bits : {128u, 256u, 512u, 1024u}) {
    double Bar = lookupNs(C, formatv("barrett/%u", Bits));
    double Mont = lookupNs(C, formatv("montgomery/%u", Bits));
    double Div = lookupNs(C, formatv("division/%u", Bits));
    T.addRow({formatv("%u", Bits), formatNanos(Bar), formatNanos(Mont),
              formatNanos(Div), formatv("%.1fx", Div / Bar),
              formatv("%.2fx", Mont / Bar)});
  }
  bench::report(T.render());

  banner("Shape verdicts");
  for (unsigned Bits : {128u, 256u, 512u, 1024u}) {
    verdict(formatv("%u-bit: Barrett beats division-based reduction", Bits),
            lookupNs(C, formatv("division/%u", Bits)) /
                lookupNs(C, formatv("barrett/%u", Bits)),
            3.0);
  }
  bench::reportf("  (Montgomery trades a cheaper inner loop for domain\n"
              "   conversions; in-domain throughput should be comparable\n"
              "   to Barrett, which is why the paper can pick either.)\n");
  benchmark::Shutdown();
  return 0;
}
