//===- bench/bench_fig2_blas.cpp - Paper Figure 2 ------------------------------===//
//
// Figure 2: BLAS operations (vmul, vadd, vsub, axpy) at 128/256/512/1024
// bits — MoMA vs the generic-multiprecision baseline (GMP stand-in) vs the
// RNS baseline (GRNS stand-in), ns per element.
//
// Paper claims reproduced as shape:
//   * MoMA beats both baselines on every op and width (>= 13x in the
//     paper's GPU-vs-GPU/CPU setting).
//   * For add/sub, RNS beats the generic library (pointwise residues);
//     for mul-based kernels the generic library narrows or wins because
//     RNS must leave the residue domain to reduce mod q.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "baselines/GmpLike.h"
#include "baselines/Rns.h"
#include "field/PrimeField.h"
#include "kernels/BlasRuntime.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace moma;
using namespace moma::bench;
using mw::Bignum;

namespace {

const unsigned Widths[] = {128, 256, 512, 1024};
const char *OpNames[] = {"vmul", "vadd", "vsub", "axpy"};

struct SeriesElems {
  std::map<std::string, size_t> N;
} GElems;

/// Per-width fixture shared by all series at that width.
template <unsigned W> struct Fixture {
  field::PrimeField<W> F;
  kernels::BlasRuntime<W> Blas;
  baselines::GmpLikeVec Gmp;
  baselines::RnsContext Rns;
  sim::Device Dev;
  std::vector<typename field::PrimeField<W>::Element> A, B, C;
  std::vector<Bignum> ABig, BBig, CBig;
  std::vector<std::uint64_t> ARns, BRns, CRns, SRns;
  std::vector<std::uint64_t> ARnsFull, BRnsFull, CRnsFull;
  Bignum SBig;

  explicit Fixture(size_t N)
      : F(field::PrimeField<W>::evaluationField(8)), Blas(F),
        Gmp(F.modulusBig()),
        Rns(baselines::RnsContext::forModulusBits(64 * W - 4)) {
    Rng R(0xF162 + W);
    const Bignum &Q = F.modulusBig();
    SBig = Bignum::random(R, Q);
    for (size_t I = 0; I < N; ++I) {
      ABig.push_back(Bignum::random(R, Q));
      BBig.push_back(Bignum::random(R, Q));
      A.push_back(F.fromBignum(ABig.back()));
      B.push_back(F.fromBignum(BBig.back()));
    }
    // The RNS series uses fewer elements: its general-q reduction is orders
    // of magnitude slower and ns/element is size-independent.
    size_t RnsN = std::max<size_t>(N / 64, 8);
    SRns = Rns.encode(SBig);
    for (size_t I = 0; I < N; ++I) {
      auto RA = Rns.encode(ABig[I]), RB = Rns.encode(BBig[I]);
      ARnsFull.insert(ARnsFull.end(), RA.begin(), RA.end());
      BRnsFull.insert(BRnsFull.end(), RB.begin(), RB.end());
      if (I < RnsN) {
        ARns.insert(ARns.end(), RA.begin(), RA.end());
        BRns.insert(BRns.end(), RB.begin(), RB.end());
      }
    }
  }

  size_t rnsElems() const { return ARns.size() / Rns.numChannels(); }
};

template <unsigned W> Fixture<W> &fixture(size_t N) {
  static Fixture<W> F(N);
  return F;
}

template <unsigned W> void registerWidth(size_t N) {
  Fixture<W> &Fx = fixture<W>(N);
  unsigned Bits = 64 * W;
  auto Name = [&](const char *Impl, const char *Op) {
    return formatv("%s/%s/%u", Impl, Op, Bits);
  };

  // MoMA (fixed-width multi-word, the generated-code-equivalent runtime).
  GElems.N[Name("moma", "vmul")] = N;
  registerBench(Name("moma", "vmul"), [&Fx](benchmark::State &S) {
    for (auto _ : S)
      Fx.Blas.vmul(Fx.Dev, Fx.A, Fx.B, Fx.C);
  })->Unit(benchmark::kMicrosecond)->UseRealTime();
  GElems.N[Name("moma", "vadd")] = N;
  registerBench(Name("moma", "vadd"), [&Fx](benchmark::State &S) {
    for (auto _ : S)
      Fx.Blas.vadd(Fx.Dev, Fx.A, Fx.B, Fx.C);
  })->Unit(benchmark::kMicrosecond)->UseRealTime();
  GElems.N[Name("moma", "vsub")] = N;
  registerBench(Name("moma", "vsub"), [&Fx](benchmark::State &S) {
    for (auto _ : S)
      Fx.Blas.vsub(Fx.Dev, Fx.A, Fx.B, Fx.C);
  })->Unit(benchmark::kMicrosecond)->UseRealTime();
  GElems.N[Name("moma", "axpy")] = N;
  registerBench(Name("moma", "axpy"), [&Fx](benchmark::State &S) {
    auto SElem = Fx.F.fromBignum(Fx.SBig);
    for (auto _ : S) {
      Fx.C = Fx.B;
      Fx.Blas.axpy(Fx.Dev, SElem, Fx.A, Fx.C);
    }
  })->Unit(benchmark::kMicrosecond)->UseRealTime();

  // Generic multiprecision (GMP stand-in).
  GElems.N[Name("gmplike", "vmul")] = N;
  registerBench(Name("gmplike", "vmul"),
                               [&Fx](benchmark::State &S) {
    for (auto _ : S)
      Fx.Gmp.vmul(Fx.Dev, Fx.ABig, Fx.BBig, Fx.CBig);
  })->Unit(benchmark::kMicrosecond)->UseRealTime();
  GElems.N[Name("gmplike", "vadd")] = N;
  registerBench(Name("gmplike", "vadd"),
                               [&Fx](benchmark::State &S) {
    for (auto _ : S)
      Fx.Gmp.vadd(Fx.Dev, Fx.ABig, Fx.BBig, Fx.CBig);
  })->Unit(benchmark::kMicrosecond)->UseRealTime();
  GElems.N[Name("gmplike", "vsub")] = N;
  registerBench(Name("gmplike", "vsub"),
                               [&Fx](benchmark::State &S) {
    for (auto _ : S)
      Fx.Gmp.vsub(Fx.Dev, Fx.ABig, Fx.BBig, Fx.CBig);
  })->Unit(benchmark::kMicrosecond)->UseRealTime();
  GElems.N[Name("gmplike", "axpy")] = N;
  registerBench(Name("gmplike", "axpy"),
                               [&Fx](benchmark::State &S) {
    for (auto _ : S) {
      Fx.CBig = Fx.BBig;
      Fx.Gmp.axpy(Fx.Dev, Fx.SBig, Fx.ABig, Fx.CBig);
    }
  })->Unit(benchmark::kMicrosecond)->UseRealTime();

  // RNS (GRNS stand-in).
  GElems.N[Name("rns", "vadd")] = Fx.ARnsFull.size() / Fx.Rns.numChannels();
  registerBench(Name("rns", "vadd"), [&Fx](benchmark::State &S) {
    for (auto _ : S)
      Fx.Rns.vaddFlat(Fx.Dev, Fx.ARnsFull, Fx.BRnsFull, Fx.CRnsFull);
  })->Unit(benchmark::kMicrosecond)->UseRealTime();
  GElems.N[Name("rns", "vsub")] = Fx.ARnsFull.size() / Fx.Rns.numChannels();
  registerBench(Name("rns", "vsub"), [&Fx](benchmark::State &S) {
    for (auto _ : S)
      Fx.Rns.vsubFlat(Fx.Dev, Fx.ARnsFull, Fx.BRnsFull, Fx.CRnsFull);
  })->Unit(benchmark::kMicrosecond)->UseRealTime();
  GElems.N[Name("rns", "vmul")] = Fx.rnsElems();
  registerBench(Name("rns", "vmul"), [&Fx](benchmark::State &S) {
    for (auto _ : S)
      Fx.Rns.vmulModQFlat(Fx.Dev, Fx.ARns, Fx.BRns, Fx.CRns,
                          Fx.F.modulusBig());
  })->Unit(benchmark::kMicrosecond)->UseRealTime();
  GElems.N[Name("rns", "axpy")] = Fx.rnsElems();
  registerBench(Name("rns", "axpy"), [&Fx](benchmark::State &S) {
    for (auto _ : S) {
      Fx.CRns = Fx.BRns;
      Fx.Rns.vaxpyModQFlat(Fx.Dev, Fx.SRns, Fx.ARns, Fx.CRns,
                           Fx.F.modulusBig());
    }
  })->Unit(benchmark::kMicrosecond)->UseRealTime();
}

} // namespace

int main(int argc, char **argv) {
  size_t N = envUnsigned("MOMA_BENCH_ELEMS", fastMode() ? 2048 : 32768);
  banner("Figure 2: BLAS operations over Z_q (ns per element)\n"
         "MoMA vs generic multiprecision (GMP stand-in) vs RNS (GRNS "
         "stand-in)");
  bench::reportf("vector elements: %zu (RNS series uses a 1/64 slice)\n",
              N);

  registerWidth<2>(N);
  registerWidth<4>(N);
  registerWidth<8>(N / 2);
  registerWidth<16>(N / 4);

  Collector C = runAll(argc, argv);

  banner("Figure 2 summary (ns/element)");
  TextTable T({"op", "bits", "MoMA", "GMP-like", "RNS", "MoMA/GMP speedup",
               "MoMA/RNS speedup"});
  for (const char *Op : OpNames) {
    for (unsigned Bits : Widths) {
      auto PerElem = [&](const char *Impl) {
        std::string Key = formatv("%s/%s/%u", Impl, Op, Bits);
        double Ns = lookupNs(C, Key);
        return Ns < 0 ? -1.0 : Ns / double(GElems.N[Key]);
      };
      double M = PerElem("moma"), G = PerElem("gmplike"), R = PerElem("rns");
      T.addRow({Op, formatv("%u", Bits), formatNanos(M), formatNanos(G),
                formatNanos(R), formatv("%.1fx", G / M),
                formatv("%.1fx", R / M)});
    }
  }
  bench::report(T.render());

  banner("Shape verdicts vs paper Figure 2");
  for (const char *Op : OpNames) {
    for (unsigned Bits : Widths) {
      auto PerElem = [&](const char *Impl) {
        std::string Key = formatv("%s/%s/%u", Impl, Op, Bits);
        return lookupNs(C, Key) / double(GElems.N[Key]);
      };
      // The paper reports >= 13x over both baselines everywhere; the
      // binary claim that survives the substrate change is "MoMA wins".
      verdict(formatv("%s %u-bit: MoMA faster than GMP-like", Op, Bits),
              PerElem("gmplike") / PerElem("moma"), 13.0);
      verdict(formatv("%s %u-bit: MoMA faster than RNS", Op, Bits),
              PerElem("rns") / PerElem("moma"), 13.0);
    }
  }
  // The add/sub vs mul asymmetry of RNS (GRNS beats GMP on add/sub, loses
  // ground on mul-based kernels).
  for (unsigned Bits : Widths) {
    auto PerElem = [&](const char *Impl, const char *Op) {
      std::string Key = formatv("%s/%s/%u", Impl, Op, Bits);
      return lookupNs(C, Key) / double(GElems.N[Key]);
    };
    verdict(formatv("%u-bit vadd: RNS faster than GMP-like", Bits),
            PerElem("gmplike", "vadd") / PerElem("rns", "vadd"), 31.0);
    verdict(formatv("%u-bit: RNS vmul much slower than RNS vadd", Bits),
            PerElem("rns", "vmul") / PerElem("rns", "vadd"), 10.0);
  }
  benchmark::Shutdown();
  return 0;
}
