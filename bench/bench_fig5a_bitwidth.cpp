//===- bench/bench_fig5a_bitwidth.cpp - Paper Figure 5a ------------------------===//
//
// Figure 5a: 4096-point NTT runtime against input bit-width (64..1024 in
// 64-bit steps) on two device profiles. The paper reports near-linear
// growth regions and successive doubling slowdowns of 2.9/5.6/4.8/4.7x
// (H100) and 2.7/4/4.6/3.5x (RTX 4090).
//
//===----------------------------------------------------------------------===//

#include "NttBenchCommon.h"

using namespace moma;
using namespace moma::bench;

int main(int argc, char **argv) {
  unsigned LogN = fastMode() ? 10 : 12; // paper: 4096 = 2^12
  size_t Batch = 2;
  deviceSection(formatv("Figure 5a: 2^%u-point NTT runtime vs input "
                        "bit-width, two device profiles",
                        LogN));

  std::vector<unsigned> WordCounts;
  for (unsigned W = 1; W <= 16; W += fastMode() ? 3 : 1)
    WordCounts.push_back(W);

  for (unsigned W : WordCounts) {
    withWordCount(W, [&](auto WC) {
      constexpr unsigned WV = decltype(WC)::value;
      registerMomaNtt<WV>(LogN, Batch, sim::deviceH100(),
                          mw::MulAlgorithm::Schoolbook, "h100");
      registerMomaNtt<WV>(LogN, Batch, sim::deviceV100(),
                          mw::MulAlgorithm::Schoolbook, "v100");
    });
  }

  Collector C = runAll(argc, argv);

  banner("Figure 5a series (runtime per single NTT)");
  TextTable T({"bits", "sim H100 profile", "sim V100 profile", "ratio"});
  std::map<unsigned, double> H100Ns;
  for (unsigned W : WordCounts) {
    unsigned Bits = 64 * W;
    double H = lookupNs(C, formatv("h100/ntt/%u/n%u", Bits, LogN)) / Batch;
    double V = lookupNs(C, formatv("v100/ntt/%u/n%u", Bits, LogN)) / Batch;
    H100Ns[Bits] = H;
    T.addRow({formatv("%u", Bits), formatNanos(H), formatNanos(V),
              formatv("%.2fx", V / H)});
  }
  bench::report(T.render());

  banner("Doubling slowdowns vs paper (H100 column)");
  struct Step {
    unsigned From, To;
    double PaperH100;
  };
  const Step Steps[] = {
      {64, 128, 2.9}, {128, 256, 5.6}, {256, 512, 4.8}, {512, 1024, 4.7}};
  for (const Step &S : Steps) {
    if (H100Ns.count(S.From) && H100Ns.count(S.To))
      verdict(formatv("%u -> %u bits slowdown", S.From, S.To),
              H100Ns[S.To] / H100Ns[S.From], S.PaperH100);
  }
  bench::reportf("\n  (paper RTX 4090 slowdowns for reference: 2.7, 4.0, 4.6, "
              "3.5)\n");
  benchmark::Shutdown();
  return 0;
}
