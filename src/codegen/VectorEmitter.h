//===- codegen/VectorEmitter.h - SIMD lane-loop C emission ----*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits the scalar kernel body as auto-vectorizable C for the host CPU's
/// SIMD units: a structure-of-arrays *lane loop* over the batch axis. Each
/// batch element occupies one SIMD lane — lane j of word w lives at
/// data[w*lanes + j] in the local staging arrays — so every multi-word
/// carry chain stays strictly in-lane (the layout trick from "GPU
/// Implementations for Midsize Integer Addition and Multiplication" and
/// Zhang's CPU follow-up, see PAPERS.md). The emitted source is
/// pragma-free: the lane loops are fixed-trip-count (per-width chunk
/// helpers for 2/4/8/16 lanes plus a scalar tail) or bounded-trip loops
/// over restrict-equivalent local arrays, exactly the shape host
/// compilers vectorize at -O3. The runtime compiles it through HostJit
/// with per-plan extra flags (-O3 -march=native where available).
///
/// Three entry points per translation unit (the lane count vw is a launch
/// parameter like the grid backend's blockDim, so every VectorWidth key
/// of one kernel shares one compiled module):
///
///  * the *vector* function — batched element-wise execution over the
///    flat batch (BLAS mapping), lane = batch element;
///  * for butterfly kernels additionally the *vstage* function — one
///    radix-2 NTT stage, lane = batch row (every row runs the identical
///    twiddle schedule, the natural SIMD axis for batched transforms);
///  * and the *vfused* function — the fused radix-2^k stage-group walk
///    of the grid emitter's fused ABI, lane = batch row, with the same
///    rev/twist/scale edge-stage folds as launch parameters.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_CODEGEN_VECTOREMITTER_H
#define MOMA_CODEGEN_VECTOREMITTER_H

#include "codegen/CEmitter.h"
#include "rewrite/Lower.h"

#include <string>
#include <vector>

namespace moma {
namespace codegen {

/// Vector emission options.
struct VectorEmitOptions {
  /// Machine word width; must equal the lowering target (the runtime's
  /// flat-batch ABI is 64-bit words).
  unsigned WordBits = 64;
  /// Optional file-level banner comment.
  std::string Banner;
};

/// Largest lane count the emitted staging arrays hold; wider launch
/// requests are clamped by the entry points themselves.
constexpr unsigned VectorMaxLanes = 16;

/// A complete emitted translation unit for one vectorized kernel.
struct EmittedVectorKernel {
  std::string Source;      ///< self-contained C/C++ source text
  std::string VecSymbol;   ///< batched element-wise lane-loop entry
  std::string StageSymbol; ///< radix-2 NTT-stage entry; empty unless the
                           ///< kernel has the butterfly port shape
  std::string FusedSymbol; ///< fused radix-2^k stage-group entry (same
                           ///< butterfly-shape condition as StageSymbol)
  std::vector<PortSig> Ports; ///< outputs first, then inputs (as emitC)
};

/// Emits \p L as a vectorized C translation unit. \p L must be fully
/// lowered to Opts.WordBits (aborts otherwise). Ports from "q" onward are
/// broadcast; earlier inputs and all outputs are per-element arrays.
///
/// Entry ABIs (C linkage; vw is the lane count, clamped to
/// [1, VectorMaxLanes]):
///
///   void vec(u64 vw, u64 n, u64 *const *outs, const u64 *const *ins,
///            const u64 *instride, const u64 *const *aux);
///
/// processes the n-element flat batch in vw-lane chunks (fixed-trip
/// chunk helpers exist for 2, 4, 8 and 16 lanes; other widths and the
/// final n mod vw elements run through the scalar tail): output k at
/// outs[k] + e*storedWords, data input j at ins[j] + e*instride[j]
/// (stride 0 broadcasts one element, the axpy scalar). Outputs may alias
/// inputs — each chunk gathers every input lane into locals before its
/// first store.
///
///   void vstage(u64 vw, u64 batch, u64 n, u64 len, u64 *X,
///               const u64 *Wst, const u64 *const *aux);
///
/// one in-place radix-2 butterfly stage of half-distance len over every
/// batch row of X (n elements per row), vw rows per lane chunk; Wst
/// points at the stage's twiddle table. Twiddles must not alias X.
///
///   void vfused(u64 vw, u64 batch, u64 n, u64 len0, u64 depth,
///               u64 *Dst, const u64 *Src, const u64 *Tw, const u32 *rev,
///               const u64 *twist, const u64 *scale, u64 sstride,
///               const u64 *const *aux);
///
/// the fused stage-group contract of codegen/GridEmitter.h (same
/// geometry, same butterfly order per row — bit-identical by
/// construction), batch rows in lanes instead of grid y. Tw is the full
/// stage-major twiddle table; rev/twist/scale are the edge-stage folds;
/// none of the tables may alias Src/Dst.
EmittedVectorKernel emitVectorC(const rewrite::LoweredKernel &L,
                                const VectorEmitOptions &Opts = {});

} // namespace codegen
} // namespace moma

#endif // MOMA_CODEGEN_VECTOREMITTER_H
