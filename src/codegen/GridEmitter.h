//===- codegen/GridEmitter.h - Grid-shaped C emission ---------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits the paper's §5.1 CUDA thread mapping as host-JIT-compilable C:
/// the same scalar arithmetic body the C and CUDA emitters share, wrapped
/// in functions taking (blockIdx, threadIdx) coordinates so the sim::
/// substrate can launch them grid/block-shaped on a CPU thread pool. This
/// is what the runtime's sim-GPU ExecutionBackend compiles and runs —
/// structurally the CudaEmitter's __global__ kernels, minus the GPU.
///
/// Two entry points per translation unit:
///
///  * the *grid* function — one virtual thread per vector element
///    (BLAS mapping), grid dimension y indexing the batch row;
///  * for butterfly kernels additionally the *stage* function — one
///    virtual thread per butterfly of one NTT stage (n/2 butterflies),
///    grid dimension y indexing the batch.
///
/// Unlike CUDA, one call processes one whole block (the sim substrate
/// serializes a block's threads on one worker anyway), so the per-call
/// JIT-pointer overhead amortizes over blockDim elements and the
/// broadcast ports (q, mu / qinv, r2) are loaded once per block instead
/// of once per element.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_CODEGEN_GRIDEMITTER_H
#define MOMA_CODEGEN_GRIDEMITTER_H

#include "codegen/CEmitter.h"
#include "rewrite/Lower.h"

#include <string>
#include <vector>

namespace moma {
namespace codegen {

/// Grid emission options.
struct GridEmitOptions {
  /// Machine word width; must equal the lowering target (the runtime's
  /// flat-batch ABI is 64-bit words).
  unsigned WordBits = 64;
  /// Optional file-level banner comment.
  std::string Banner;
};

/// A complete emitted translation unit for one grid-shaped kernel.
struct EmittedGridKernel {
  std::string Source;      ///< self-contained C/C++ source text
  std::string GridSymbol;  ///< element-wise block entry (C linkage)
  std::string StageSymbol; ///< radix-2 NTT-stage block entry; empty unless
                           ///< the kernel has the butterfly port shape
  std::string FusedSymbol; ///< fused radix-2^k stage-group entry (same
                           ///< butterfly-shape condition as StageSymbol)
  std::vector<PortSig> Ports; ///< outputs first, then inputs (as emitC)
};

/// Emits \p L as a grid-shaped C translation unit. \p L must be fully
/// lowered to Opts.WordBits (aborts otherwise). Ports from "q" onward are
/// broadcast; earlier inputs and all outputs are per-element arrays.
///
/// Grid-function ABI (all entry points, C linkage):
///
///   void grid(u64 blockIdxX, u64 blockIdxY, u64 blockDim, u64 n,
///             u64 *const *outs, const u64 *const *ins,
///             const u64 *instride, const u64 *const *aux);
///
/// processes elements i in [blockIdxX*blockDim, min(n, +blockDim)) of
/// batch row blockIdxY: element index e = blockIdxY*n + i, output k at
/// outs[k] + e*storedWords, data input j at ins[j] + e*instride[j]
/// (stride 0 broadcasts one element, the axpy scalar).
///
///   void stage(u64 blockIdxX, u64 blockIdxY, u64 blockDim, u64 n,
///              u64 len, u64 *X, const u64 *Wst, const u64 *const *aux);
///
/// processes butterflies t in [blockIdxX*blockDim, min(n/2, +blockDim))
/// of stage half-distance len over batch row blockIdxY of the in-place
/// array X (n elements per row); Wst points at the stage's twiddle table.
///
///   void fused(u64 blockIdxX, u64 blockIdxY, u64 blockDim,
///              u64 n, u64 len0, u64 depth, u64 *Dst, const u64 *Src,
///              const u64 *Tw, const u32 *rev, const u64 *twist,
///              const u64 *scale, u64 sstride, const u64 *const *aux);
///
/// runs `depth` consecutive butterfly stages (half-distances len0,
/// 2*len0, ..., 2^(depth-1)*len0) as one dispatch: each of the n/2^depth
/// virtual threads per batch row owns the 2^depth-point sub-transform
/// over elements {g*(len0<<depth) + r + j*len0 : j}, held in registers
/// between sub-stages. Tw is the *full* stage-major twiddle table (the
/// stage of half-distance L starts at word offset (L-1)*elemWords).
/// `depth` is a launch parameter bounded by
/// rewrite::PlanOptions::MaxFuseDepth — like blockDim, it does not shape
/// the source, so every fusion depth of one kernel shares one compiled
/// module. The edge-stage folds are runtime arguments too:
///
///  * rev non-null (first stage group only, len0 == 1): loads gather
///    Src[rev[e]] — the bit-reversal permutation rides the first loads
///    instead of a host-side swap pass;
///  * twist non-null (first forward group of a negacyclic transform):
///    each loaded element is multiplied by twist[s], s its gathered
///    source index (so twist[i] = ψ^i pairs with coefficient a_i),
///    through the shared scalar butterfly body with x = 0;
///  * scale non-null (last inverse stage group): every output is
///    multiplied by scale[(e) * sstride] before the store through the
///    same zero-x butterfly. sstride 0 broadcasts one factor (the cyclic
///    n^-1); sstride = elemWords indexes a per-output-element table (the
///    negacyclic untwist ψ^{-e} · n^-1). Factors are expected in the
///    kernel's twiddle domain, i.e. Montgomery-form for Montgomery
///    plans;
///  * Src != Dst runs the group out-of-place (the dispatcher ping-pongs
///    edge groups through a scratch buffer so no cross-thread in-place
///    hazard exists when rev permutes the read set).
///
/// Threads load every input element into registers before their first
/// store, so Src == Dst is safe whenever each thread's read and write
/// sets coincide (any group without rev, or a single-group transform
/// where one thread owns the whole row).
EmittedGridKernel emitGridC(const rewrite::LoweredKernel &L,
                            const GridEmitOptions &Opts = {});

} // namespace codegen
} // namespace moma

#endif // MOMA_CODEGEN_GRIDEMITTER_H
