//===- codegen/CudaEmitter.h - CUDA source emission -----------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits complete CUDA translation units from lowered kernels, with the
/// paper's parallelization scheme (§5.1):
///
///  * BLAS element kernels: one CUDA thread per vector element, grid
///    dimension y indexing the batch;
///  * NTT: one thread per butterfly per stage (n/2 butterflies), grid
///    dimension y indexing the batch.
///
/// The scalar arithmetic body is shared with the C emitter, so everything
/// the dlopen-based integration tests validate about the C output also
/// covers the CUDA device code. This host has no GPU (see DESIGN.md §4);
/// the CUDA text is emitted for inspection and structural tests, and the
/// sim:: substrate executes the same kernels on a thread pool.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_CODEGEN_CUDAEMITTER_H
#define MOMA_CODEGEN_CUDAEMITTER_H

#include "rewrite/Lower.h"

#include <string>

namespace moma {
namespace codegen {

/// CUDA emission options.
struct CudaEmitOptions {
  unsigned WordBits = 64;
  /// Threads per block for the generated launch helper (paper: up to 1024).
  unsigned BlockDim = 256;
  std::string Banner;
};

/// Emits a .cu file for an element-wise kernel (vadd/vsub/vmul/axpy
/// element bodies). Ports named "q" and "mu" become broadcast scalars;
/// every other input and all outputs become per-element word arrays.
std::string emitCudaElementwise(const rewrite::LoweredKernel &L,
                                const CudaEmitOptions &Opts = {});

/// Emits a .cu file implementing one NTT stage from a lowered butterfly
/// kernel (ports x, y, w, q, mu -> xo, yo). The in-place data layout is
/// one contiguous array of n elements, each storedWords() words.
std::string emitCudaNttStage(const rewrite::LoweredKernel &L,
                             const CudaEmitOptions &Opts = {});

} // namespace codegen
} // namespace moma

#endif // MOMA_CODEGEN_CUDAEMITTER_H
