//===- codegen/CEmitter.h - C source emission -----------------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits compilable C from fully lowered kernels. The output matches the
/// structure of the paper's Listings 1-4: machine-word locals, the
/// compiler-supported double word (unsigned __int128 for a 64-bit word)
/// used only to capture carries and wide products, explicit carry/borrow
/// propagation, and Barrett's single conditional subtraction.
///
/// The emitted function takes one pointer per kernel port; each port array
/// holds the value's stored words, most significant first (the paper's
/// bracket order): for a λ-bit value, ceil(λ/ω₀) words — statically-zero
/// top words of non-power-of-two widths are not stored (§4).
///
/// The integration tests compile this output with the host compiler, load
/// it with dlopen, and compare against the IR interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_CODEGEN_CEMITTER_H
#define MOMA_CODEGEN_CEMITTER_H

#include "rewrite/Lower.h"

#include <string>
#include <vector>

namespace moma {
namespace codegen {

/// Emission options.
struct CEmitOptions {
  /// Machine word width; must equal the lowering target. 16, 32 and 64 are
  /// supported (the double word is then uint32_t/uint64_t/__int128).
  unsigned WordBits = 64;
  /// Emit `extern "C"`-compatible linkage (for the dlopen tests).
  bool ExternC = true;
  /// Optional file-level banner comment.
  std::string Banner;
};

/// Signature description of one emitted port.
struct PortSig {
  std::string Name;
  unsigned StoredWords = 0;
  bool IsOutput = false;
};

/// A complete emitted translation unit for one kernel.
struct EmittedKernel {
  std::string Source;         ///< self-contained C/C++ source text
  std::string Symbol;         ///< function name (C linkage)
  std::vector<PortSig> Ports; ///< outputs first, then inputs
};

/// Emits \p L as a C function. \p L must be fully lowered to
/// Opts.WordBits (verified; aborts otherwise).
EmittedKernel emitC(const rewrite::LoweredKernel &L,
                    const CEmitOptions &Opts = {});

/// Emits only the function body statements (shared with the CUDA emitter).
std::string emitScalarBody(const ir::Kernel &K, unsigned WordBits,
                           const std::string &Indent);

/// Emits a self-contained scalar helper function for \p L: outputs as
/// word pointers named "<port><index>", non-pruned input words as
/// by-value parameters named after their value ids, body from
/// emitScalarBody. Shared by the CUDA emitter (qualifiers "__device__
/// static __forceinline__") and the grid-shaped C emitter ("static
/// inline"); \p WordType spells the word type ("u64" under the emitters'
/// typedef).
std::string emitScalarFunction(const rewrite::LoweredKernel &L,
                               unsigned WordBits, const std::string &FnName,
                               const std::string &Qualifiers,
                               const std::string &WordType);

/// Comma-separated scalar-call arguments loading \p P's non-pruned words
/// from \p BaseExpr (an expression for the pointer to the port's first
/// stored word). Shared by the CUDA and grid emitters.
std::string portLoadArgs(const rewrite::LoweredPort &P,
                         const std::string &BaseExpr);

} // namespace codegen
} // namespace moma

#endif // MOMA_CODEGEN_CEMITTER_H
