//===- codegen/CEmitter.cpp - C source emission -----------------------------===//

#include "codegen/CEmitter.h"

#include "support/Error.h"
#include "support/Format.h"

#include <cassert>

using namespace moma;
using namespace moma::ir;
using namespace moma::codegen;
using rewrite::LoweredKernel;
using rewrite::LoweredPort;

namespace {

const char *wordType(unsigned WordBits) {
  switch (WordBits) {
  case 16:
    return "uint16_t";
  case 32:
    return "uint32_t";
  case 64:
    return "uint64_t";
  }
  fatalError("emitC: unsupported word width " + std::to_string(WordBits));
}

const char *dwordType(unsigned WordBits) {
  switch (WordBits) {
  case 16:
    return "uint32_t";
  case 32:
    return "uint64_t";
  case 64:
    return "unsigned __int128";
  }
  fatalError("emitC: unsupported word width " + std::to_string(WordBits));
}

/// Per-statement C emission shared by the C and CUDA emitters.
class BodyEmitter {
public:
  BodyEmitter(const Kernel &K, unsigned WordBits, std::string Indent)
      : K(K), WB(WordBits), Indent(std::move(Indent)), WT(wordType(WordBits)),
        DT(dwordType(WordBits)) {}

  std::string run();

private:
  std::string ref(ValueId Id) const { return formatv("v%d", Id); }

  /// Masks \p Expr to \p Bits when narrower than the word type.
  std::string masked(const std::string &Expr, unsigned Bits) const {
    if (Bits >= WB || Bits == 1)
      return Expr;
    return formatv("((%s) & ((%s)1 << %u) - 1)", Expr.c_str(), WT, Bits);
  }

  void line(const std::string &S) { Out += Indent + S + "\n"; }

  /// Declares result \p Id initialized to \p Expr.
  void def(ValueId Id, const std::string &Expr) {
    line(formatv("%s %s = %s;", WT, ref(Id).c_str(), Expr.c_str()));
  }

  std::string freshTemp() { return formatv("t%u", TempCount++); }

  void emitStmt(const Stmt &S);

  const Kernel &K;
  unsigned WB;
  std::string Indent;
  const char *WT;
  const char *DT;
  std::string Out;
  unsigned TempCount = 0;
};

} // namespace

void BodyEmitter::emitStmt(const Stmt &S) {
  auto Op = [&](unsigned I) { return ref(S.Operands[I]); };
  auto Res = [&](unsigned I) { return ref(S.Results[I]); };
  auto Width = [&](ValueId Id) { return K.value(Id).Bits; };

  switch (S.Kind) {
  case OpKind::Const: {
    // Literals are at most one word after lowering.
    assert(S.Literal.bitWidth() <= WB && "unsplit wide literal");
    line(formatv("const %s %s = (%s)0x%llxULL;", WT, Res(0).c_str(), WT,
                 static_cast<unsigned long long>(S.Literal.low64())));
    return;
  }
  case OpKind::Copy:
  case OpKind::Zext:
    def(S.Results[0], Op(0));
    return;
  case OpKind::Add: {
    unsigned W = Width(S.Results[1]);
    std::string T = freshTemp();
    std::string Sum = formatv("(%s)%s + %s", DT, Op(0).c_str(), Op(1).c_str());
    if (S.Operands.size() == 3)
      Sum += " + " + Op(2);
    line(formatv("%s %s = %s;", DT, T.c_str(), Sum.c_str()));
    def(S.Results[1], masked(formatv("(%s)%s", WT, T.c_str()), W));
    def(S.Results[0], formatv("(%s)(%s >> %u)", WT, T.c_str(), W));
    return;
  }
  case OpKind::Sub: {
    unsigned W = Width(S.Results[1]);
    std::string Diff = Op(0) + " - " + Op(1);
    if (S.Operands.size() == 3)
      Diff += " - " + Op(2);
    def(S.Results[1], masked(Diff, W));
    // Borrow: a < b + bin (the double word absorbs b + 1).
    std::string Rhs = formatv("(%s)%s", DT, Op(1).c_str());
    if (S.Operands.size() == 3)
      Rhs += " + " + Op(2);
    def(S.Results[0], formatv("(%s)%s < %s", DT, Op(0).c_str(), Rhs.c_str()));
    return;
  }
  case OpKind::Mul: {
    unsigned W = Width(S.Results[1]);
    std::string T = freshTemp();
    line(formatv("%s %s = (%s)%s * %s;", DT, T.c_str(), DT, Op(0).c_str(),
                 Op(1).c_str()));
    def(S.Results[1], masked(formatv("(%s)%s", WT, T.c_str()), W));
    def(S.Results[0], formatv("(%s)(%s >> %u)", WT, T.c_str(), W));
    return;
  }
  case OpKind::MulLow:
    def(S.Results[0],
        masked(Op(0) + " * " + Op(1), Width(S.Results[0])));
    return;
  case OpKind::AddMod: {
    // Listing 1 _saddmod (with the >= fix, DESIGN.md).
    std::string T = freshTemp();
    line(formatv("%s %s = (%s)%s + %s;", DT, T.c_str(), DT, Op(0).c_str(),
                 Op(1).c_str()));
    def(S.Results[0],
        formatv("%s >= %s ? (%s)(%s - %s) : (%s)%s", T.c_str(),
                Op(2).c_str(), WT, T.c_str(), Op(2).c_str(), WT, T.c_str()));
    return;
  }
  case OpKind::SubMod: {
    // Listing 1 _ssubmod.
    std::string T = freshTemp();
    line(formatv("%s %s = %s;", WT, T.c_str(),
                 masked(Op(0) + " - " + Op(1), Width(S.Results[0])).c_str()));
    def(S.Results[0],
        formatv("%s < %s ? %s : %s",
                Op(0).c_str(), Op(1).c_str(),
                masked(T + " + " + Op(2), Width(S.Results[0])).c_str(),
                T.c_str()));
    return;
  }
  case OpKind::MulMod: {
    // Listing 1 _smulmod: Barrett with shifts by m-2 and m+5.
    std::string T = freshTemp(), R = freshTemp();
    line(formatv("%s %s = (%s)%s * %s;", DT, T.c_str(), DT, Op(0).c_str(),
                 Op(1).c_str()));
    line(formatv("%s %s = %s >> %u;", DT, R.c_str(), T.c_str(),
                 S.ModBits - 2));
    line(formatv("%s *= (%s)%s;", R.c_str(), DT, Op(3).c_str()));
    line(formatv("%s >>= %u;", R.c_str(), S.ModBits + 5));
    line(formatv("%s -= %s * (%s)%s;", T.c_str(), R.c_str(), DT,
                 Op(2).c_str()));
    def(S.Results[0],
        formatv("%s >= %s ? (%s)(%s - %s) : (%s)%s", T.c_str(),
                Op(2).c_str(), WT, T.c_str(), Op(2).c_str(), WT, T.c_str()));
    return;
  }
  case OpKind::Lt:
    def(S.Results[0], Op(0) + " < " + Op(1));
    return;
  case OpKind::Eq:
    def(S.Results[0], Op(0) + " == " + Op(1));
    return;
  case OpKind::Not:
    def(S.Results[0], "!" + Op(0));
    return;
  case OpKind::And:
    def(S.Results[0], Op(0) + " & " + Op(1));
    return;
  case OpKind::Or:
    def(S.Results[0], Op(0) + " | " + Op(1));
    return;
  case OpKind::Xor:
    def(S.Results[0], Op(0) + " ^ " + Op(1));
    return;
  case OpKind::Shl:
    def(S.Results[0],
        masked(formatv("%s << %u", Op(0).c_str(), S.Amount),
               Width(S.Results[0])));
    return;
  case OpKind::Shr:
    def(S.Results[0], formatv("%s >> %u", Op(0).c_str(), S.Amount));
    return;
  case OpKind::Select:
    def(S.Results[0],
        formatv("%s ? %s : %s", Op(0).c_str(), Op(1).c_str(),
                Op(2).c_str()));
    return;
  case OpKind::Split: {
    unsigned H = Width(S.Results[0]);
    def(S.Results[0], formatv("%s >> %u", Op(0).c_str(), H));
    def(S.Results[1], masked(Op(0), H));
    return;
  }
  case OpKind::Concat: {
    unsigned H = Width(S.Operands[1]);
    def(S.Results[0],
        formatv("((%s)%s << %u) | %s", WT, Op(0).c_str(), H, Op(1).c_str()));
    return;
  }
  }
  moma_unreachable("unhandled opcode in C emission");
}

std::string BodyEmitter::run() {
  for (const Stmt &S : K.Body)
    emitStmt(S);
  return std::move(Out);
}

std::string moma::codegen::emitScalarBody(const Kernel &K, unsigned WordBits,
                                          const std::string &Indent) {
  return BodyEmitter(K, WordBits, Indent).run();
}

std::string moma::codegen::emitScalarFunction(const LoweredKernel &L,
                                              unsigned WordBits,
                                              const std::string &FnName,
                                              const std::string &Qualifiers,
                                              const std::string &WordType) {
  std::string Params;
  for (const LoweredPort &P : L.Outputs) {
    unsigned Stored = P.storedWords();
    unsigned Skip = static_cast<unsigned>(P.Words.size()) - Stored;
    for (size_t I = Skip; I < P.Words.size(); ++I) {
      if (!Params.empty())
        Params += ", ";
      Params += formatv("%s *%s%zu", WordType.c_str(), P.Name.c_str(),
                        I - Skip);
    }
  }
  for (const LoweredPort &P : L.Inputs) {
    for (size_t I = 0; I < P.Words.size(); ++I) {
      if (P.IsConstZero[I] || P.isDeadWord(I))
        continue;
      if (!Params.empty())
        Params += ", ";
      Params += formatv("%s v%d", WordType.c_str(), P.Words[I]);
    }
  }

  std::string Src = formatv("%s void %s(%s) {\n", Qualifiers.c_str(),
                            FnName.c_str(), Params.c_str());
  Src += emitScalarBody(L.K, WordBits, "  ");
  for (const LoweredPort &P : L.Outputs) {
    unsigned Stored = P.storedWords();
    unsigned Skip = static_cast<unsigned>(P.Words.size()) - Stored;
    for (size_t I = Skip; I < P.Words.size(); ++I)
      Src += formatv("  *%s%zu = v%d;\n", P.Name.c_str(), I - Skip,
                     P.Words[I]);
  }
  Src += "}\n\n";
  return Src;
}

std::string moma::codegen::portLoadArgs(const LoweredPort &P,
                                        const std::string &BaseExpr) {
  std::string Args;
  unsigned Stored = P.storedWords();
  unsigned Skip = static_cast<unsigned>(P.Words.size()) - Stored;
  for (size_t I = 0; I < P.Words.size(); ++I) {
    // Dead words keep their array slot (the I - Skip index is live-slot
    // arithmetic over const-zero pruning only) but are never passed.
    if (P.IsConstZero[I] || P.isDeadWord(I))
      continue;
    if (!Args.empty())
      Args += ", ";
    Args += formatv("%s[%zu]", BaseExpr.c_str(), I - Skip);
  }
  return Args;
}

EmittedKernel moma::codegen::emitC(const LoweredKernel &L,
                                   const CEmitOptions &Opts) {
  const Kernel &K = L.K;
  if (K.maxBits() > Opts.WordBits)
    fatalError("emitC: kernel not lowered to the requested word width");

  const char *WT = wordType(Opts.WordBits);
  EmittedKernel Out;
  Out.Symbol = "moma_" + K.Name;

  std::string Src;
  if (!Opts.Banner.empty())
    Src += "// " + Opts.Banner + "\n";
  Src += "// Generated by MoMA (multi-word modular arithmetic rewrite\n"
         "// system); word width " +
         std::to_string(Opts.WordBits) +
         " bits. Word order within each\n"
         "// array: most significant first (paper Eq. 14).\n";
  Src += "#include <stdint.h>\n\n";

  // Signature: outputs first, then inputs (paper listing order).
  std::string Sig;
  auto AddPort = [&](const LoweredPort &P, bool IsOutput) {
    if (!Sig.empty())
      Sig += ", ";
    Sig += formatv("%s%s %s[%u]", IsOutput ? "" : "const ", WT,
                   P.Name.c_str(), P.storedWords());
    Out.Ports.push_back(PortSig{P.Name, P.storedWords(), IsOutput});
  };
  for (const LoweredPort &P : L.Outputs)
    AddPort(P, /*IsOutput=*/true);
  for (const LoweredPort &P : L.Inputs)
    AddPort(P, /*IsOutput=*/false);

  if (Opts.ExternC)
    Src += "#ifdef __cplusplus\nextern \"C\"\n#endif\n";
  Src += formatv("void %s(%s) {\n", Out.Symbol.c_str(), Sig.c_str());

  // Loads: each non-pruned input word is a kernel parameter value.
  for (const LoweredPort &P : L.Inputs) {
    unsigned Stored = P.storedWords();
    unsigned Skip = static_cast<unsigned>(P.Words.size()) - Stored;
    unsigned NonConst = 0;
    for (size_t I = 0; I < P.Words.size(); ++I)
      NonConst += !P.IsConstZero[I];
    if (NonConst != Stored)
      fatalError("emitC: port '" + P.Name +
                 "' pruning does not match its stored-word count");
    for (size_t I = 0; I < P.Words.size(); ++I) {
      if (P.IsConstZero[I] || P.isDeadWord(I))
        continue;
      Src += formatv("  %s v%d = %s[%zu];\n", WT, P.Words[I],
                     P.Name.c_str(), I - Skip);
    }
  }
  Src += "\n";

  Src += emitScalarBody(K, Opts.WordBits, "  ");

  // Stores: only the stored words (top pruned words are provably zero).
  Src += "\n";
  for (const LoweredPort &P : L.Outputs) {
    unsigned Stored = P.storedWords();
    unsigned Skip = static_cast<unsigned>(P.Words.size()) - Stored;
    for (size_t I = Skip; I < P.Words.size(); ++I)
      Src += formatv("  %s[%zu] = v%d;\n", P.Name.c_str(), I - Skip,
                     P.Words[I]);
  }
  Src += "}\n";
  Out.Source = std::move(Src);
  return Out;
}
