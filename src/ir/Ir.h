//===- ir/Ir.h - Typed straight-line IR for MoMA kernels ------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "abstract code" level the paper's rewrite system operates on (§4):
/// straight-line SSA over unsigned integers of arbitrary bit width.
///
/// Values carry a storage bit width plus KnownBits, an upper bound on the
/// significant bits; KnownBits < Bits is how non-power-of-two input widths
/// (381/753-bit ZKP fields embedded in power-of-two containers) are
/// represented, and is what the Simplify pass exploits to prune no-ops at
/// code generation time (paper §4, Eq. 35/36).
///
/// Multi-result statements model the paper's explicit carry discipline:
///   Add: (carry:1, sum:w)   = a + b [+ cin]        — rules (22)(23)(29)
///   Sub: (borrow:1, diff:w) = a - b [- bin]         — rule (25)
///   Mul: (hi:w, lo:w)       = a * b                 — rule (28)
/// and the modular macro-ops AddMod/SubMod/MulMod that the rewrite system
/// expands (rules (24) and the Barrett sequence of Listing 4).
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_IR_IR_H
#define MOMA_IR_IR_H

#include "mw/Bignum.h"

#include <cstdint>
#include <string>
#include <vector>

namespace moma {
namespace ir {

/// Index of a value inside its Kernel. Negative means "no value".
using ValueId = std::int32_t;
inline constexpr ValueId NoValue = -1;

/// Statement opcode.
enum class OpKind : std::uint8_t {
  Const,  ///< results[0]:w = literal
  Copy,   ///< results[0]:w = operands[0]
  Zext,   ///< results[0]:w = zero-extend(operands[0]), narrower operand
  Add,    ///< (carry:1, sum:w) = a + b [+ cin:1]
  Sub,    ///< (borrow:1, diff:w) = a - b [- bin:1]
  Mul,    ///< (hi:w, lo:w) = a * b
  MulLow, ///< lo:w = (a * b) mod 2^w
  AddMod, ///< c:w = (a + b) mod q; operands a, b, q; a, b < q
  SubMod, ///< c:w = (a - b) mod q; operands a, b, q; a, b < q
  MulMod, ///< c:w = (a * b) mod q; operands a, b, q, mu; attr ModBits
  Lt,     ///< f:1 = a < b
  Eq,     ///< f:1 = a == b
  Not,    ///< f:1 = !a, a 1-bit
  And,    ///< c:w = a & b
  Or,     ///< c:w = a | b
  Xor,    ///< c:w = a ^ b
  Shl,    ///< c:w = a << Amount (truncating), 0 <= Amount < w
  Shr,    ///< c:w = a >> Amount, 0 <= Amount < w
  Select, ///< c:w = cond ? a : b, cond 1-bit
  Split,  ///< (hi:w/2, lo:w/2) = a:w — rules (19)(20)(21)
  Concat, ///< c:2w = hi * 2^w + lo
};

/// Human-readable opcode mnemonic.
const char *opKindName(OpKind K);

/// One straight-line statement. Pure (no side effects); multi-result.
struct Stmt {
  OpKind Kind;
  std::vector<ValueId> Results;
  std::vector<ValueId> Operands;
  /// Shift amount for Shl/Shr.
  unsigned Amount = 0;
  /// Modulus bit-width m for MulMod (Barrett shifts use m-2 and m+5).
  unsigned ModBits = 0;
  /// Literal payload for Const.
  mw::Bignum Literal;
};

/// Metadata for one SSA value.
struct ValueInfo {
  unsigned Bits = 0;      ///< storage width
  unsigned KnownBits = 0; ///< significant-bit upper bound, <= Bits
  std::string Name;       ///< optional; printer invents %N otherwise

  bool isFlag() const { return Bits == 1; }
};

/// Kernel formal parameter (input) or result (output).
struct Param {
  ValueId Id = NoValue;
  std::string Name;
};

/// A straight-line kernel: inputs, body, outputs.
///
/// Invariants (checked by the Verifier): every value is defined exactly
/// once (inputs are defined by the signature), operands are defined before
/// use, and widths obey the per-opcode rules.
class Kernel {
public:
  std::string Name;

  /// Creates a value of \p Bits storage bits. KnownBits defaults to Bits.
  ValueId newValue(unsigned Bits, const std::string &Name = "",
                   unsigned KnownBits = 0);

  /// Declares \p Id as a kernel input.
  void addInput(ValueId Id, const std::string &Name);

  /// Declares \p Id (defined in the body) as a kernel output.
  void addOutput(ValueId Id, const std::string &Name);

  const ValueInfo &value(ValueId Id) const { return Values[Id]; }
  ValueInfo &value(ValueId Id) { return Values[Id]; }
  size_t numValues() const { return Values.size(); }

  const std::vector<Param> &inputs() const { return Inputs; }
  const std::vector<Param> &outputs() const { return Outputs; }
  std::vector<Param> &outputsMutable() { return Outputs; }

  std::vector<Stmt> Body;

  /// Largest storage width of any value in the kernel.
  unsigned maxBits() const;

  /// Total number of statements.
  size_t size() const { return Body.size(); }

private:
  std::vector<ValueInfo> Values;
  std::vector<Param> Inputs;
  std::vector<Param> Outputs;
};

} // namespace ir
} // namespace moma

#endif // MOMA_IR_IR_H
