//===- ir/Printer.cpp - Textual IR dump ------------------------------------===//

#include "ir/Printer.h"

#include "support/Format.h"

using namespace moma;
using namespace moma::ir;

static std::string valueRef(const Kernel &K, ValueId Id) {
  const ValueInfo &V = K.value(Id);
  if (!V.Name.empty())
    return formatv("%%%s:u%u", V.Name.c_str(), V.Bits);
  return formatv("%%%d:u%u", Id, V.Bits);
}

std::string moma::ir::printStmt(const Kernel &K, const Stmt &S) {
  std::string Line;
  for (size_t I = 0; I < S.Results.size(); ++I) {
    if (I)
      Line += ", ";
    Line += valueRef(K, S.Results[I]);
  }
  Line += " = ";
  Line += opKindName(S.Kind);
  if (S.Kind == OpKind::Const) {
    Line += " " + S.Literal.toHex();
    return Line;
  }
  for (size_t I = 0; I < S.Operands.size(); ++I)
    Line += (I ? ", " : " ") + valueRef(K, S.Operands[I]);
  if (S.Kind == OpKind::Shl || S.Kind == OpKind::Shr)
    Line += formatv(", %u", S.Amount);
  if (S.Kind == OpKind::MulMod)
    Line += formatv(" (m=%u)", S.ModBits);
  return Line;
}

std::string moma::ir::printKernel(const Kernel &K) {
  std::string Out = "kernel " + K.Name + "(";
  for (size_t I = 0; I < K.inputs().size(); ++I) {
    const Param &P = K.inputs()[I];
    const ValueInfo &V = K.value(P.Id);
    if (I)
      Out += ", ";
    Out += formatv("%s: u%u", P.Name.c_str(), V.Bits);
    if (V.KnownBits < V.Bits)
      Out += formatv(" (known %u)", V.KnownBits);
  }
  Out += ") -> (";
  for (size_t I = 0; I < K.outputs().size(); ++I) {
    const Param &P = K.outputs()[I];
    if (I)
      Out += ", ";
    Out += formatv("%s: u%u", P.Name.c_str(), K.value(P.Id).Bits);
  }
  Out += ") {\n";
  for (const Stmt &S : K.Body)
    Out += "  " + printStmt(K, S) + "\n";
  Out += "  return";
  for (size_t I = 0; I < K.outputs().size(); ++I)
    Out += (I ? ", " : " ") + valueRef(K, K.outputs()[I].Id);
  Out += "\n}\n";
  return Out;
}
