//===- ir/Printer.h - Textual IR dump -------------------------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable rendering of kernels, used for debugging, golden tests,
/// and the examples' "show me what the rewrite system did" output.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_IR_PRINTER_H
#define MOMA_IR_PRINTER_H

#include "ir/Ir.h"

#include <string>

namespace moma {
namespace ir {

/// Renders one statement, e.g. "%5:u1, %6:u128 = add %1, %2".
std::string printStmt(const Kernel &K, const Stmt &S);

/// Renders the whole kernel: signature, body, outputs.
std::string printKernel(const Kernel &K);

} // namespace ir
} // namespace moma

#endif // MOMA_IR_PRINTER_H
