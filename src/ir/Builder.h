//===- ir/Builder.h - Statement construction helpers ----------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed construction helpers for Kernel bodies. Each method appends one
/// statement and returns the freshly created result value(s). Width
/// agreement is asserted here and re-checked by the Verifier.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_IR_BUILDER_H
#define MOMA_IR_BUILDER_H

#include "ir/Ir.h"

namespace moma {
namespace ir {

/// (carry, value) result pair of an Add.
struct CarryResult {
  ValueId Carry;
  ValueId Value;
};

/// (hi, lo) result pair of a Mul or Split.
struct HiLoResult {
  ValueId Hi;
  ValueId Lo;
};

/// Appends statements to a Kernel.
class Builder {
public:
  explicit Builder(Kernel &K) : K(K) {}

  Kernel &kernel() { return K; }

  unsigned bitsOf(ValueId V) const { return K.value(V).Bits; }

  ValueId constant(unsigned Bits, const mw::Bignum &Literal,
                   const std::string &Name = "");
  ValueId constantZero(unsigned Bits) { return constant(Bits, 0); }
  ValueId copy(ValueId A, const std::string &Name = "");
  ValueId zext(unsigned Bits, ValueId A);

  /// (carry:1, sum:w) = A + B [+ Cin]. Cin, when present, is 1-bit.
  CarryResult add(ValueId A, ValueId B, ValueId Cin = NoValue);
  /// (borrow:1, diff:w) = A - B [- Bin].
  CarryResult sub(ValueId A, ValueId B, ValueId Bin = NoValue);
  /// (hi:w, lo:w) = A * B.
  HiLoResult mul(ValueId A, ValueId B);
  ValueId mulLow(ValueId A, ValueId B);

  ValueId addMod(ValueId A, ValueId B, ValueId Q);
  ValueId subMod(ValueId A, ValueId B, ValueId Q);
  /// ModBits is the modulus bit-width m (Barrett shifts by m-2 / m+5).
  ValueId mulMod(ValueId A, ValueId B, ValueId Q, ValueId Mu,
                 unsigned ModBits);

  ValueId lt(ValueId A, ValueId B);
  ValueId eq(ValueId A, ValueId B);
  ValueId logicalNot(ValueId A);
  ValueId bitAnd(ValueId A, ValueId B);
  ValueId bitOr(ValueId A, ValueId B);
  ValueId bitXor(ValueId A, ValueId B);
  ValueId shl(ValueId A, unsigned Amount);
  ValueId shr(ValueId A, unsigned Amount);
  ValueId select(ValueId Cond, ValueId A, ValueId B);

  /// (hi:w/2, lo:w/2) = A:w. Rule (19): KnownBits of A propagates so that a
  /// hi half with no significant bits can later fold to a constant zero.
  HiLoResult split(ValueId A);
  ValueId concat(ValueId Hi, ValueId Lo);

private:
  Stmt &emit(OpKind Kind, std::vector<ValueId> Results,
             std::vector<ValueId> Operands);

  Kernel &K;
};

} // namespace ir
} // namespace moma

#endif // MOMA_IR_BUILDER_H
