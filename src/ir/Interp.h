//===- ir/Interp.h - Reference interpreter --------------------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bignum-backed evaluator for kernels at any bit width. This is the
/// semantic ground truth for the rewrite system: a kernel lowered by
/// rules (19)-(29) must produce the same outputs as the original on every
/// input, and the tests check exactly that through this interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_IR_INTERP_H
#define MOMA_IR_INTERP_H

#include "ir/Ir.h"

#include <vector>

namespace moma {
namespace ir {

/// Evaluates \p K on \p InputValues (one Bignum per kernel input, in
/// signature order; each must fit the input's storage width). Returns one
/// Bignum per kernel output. Aborts on malformed kernels; run the Verifier
/// first for diagnosable errors.
std::vector<mw::Bignum> interpret(const Kernel &K,
                                  const std::vector<mw::Bignum> &InputValues);

} // namespace ir
} // namespace moma

#endif // MOMA_IR_INTERP_H
