//===- ir/Builder.cpp - Statement construction helpers --------------------===//

#include "ir/Builder.h"

#include <algorithm>
#include <cassert>

using namespace moma;
using namespace moma::ir;

Stmt &Builder::emit(OpKind Kind, std::vector<ValueId> Results,
                    std::vector<ValueId> Operands) {
  Stmt S;
  S.Kind = Kind;
  S.Results = std::move(Results);
  S.Operands = std::move(Operands);
  K.Body.push_back(std::move(S));
  return K.Body.back();
}

ValueId Builder::constant(unsigned Bits, const mw::Bignum &Literal,
                          const std::string &Name) {
  assert(Literal.bitWidth() <= Bits && "literal does not fit its type");
  ValueId R = K.newValue(Bits, Name, std::max(1u, Literal.bitWidth()));
  Stmt &S = emit(OpKind::Const, {R}, {});
  S.Literal = Literal;
  return R;
}

ValueId Builder::copy(ValueId A, const std::string &Name) {
  ValueId R = K.newValue(bitsOf(A), Name, K.value(A).KnownBits);
  emit(OpKind::Copy, {R}, {A});
  return R;
}

ValueId Builder::zext(unsigned Bits, ValueId A) {
  assert(Bits >= bitsOf(A) && "zext must not narrow");
  ValueId R = K.newValue(Bits, "", K.value(A).KnownBits);
  emit(OpKind::Zext, {R}, {A});
  return R;
}

CarryResult Builder::add(ValueId A, ValueId B, ValueId Cin) {
  unsigned W = bitsOf(A);
  assert(bitsOf(B) == W && "add operands must have equal width");
  assert((Cin == NoValue || bitsOf(Cin) == 1) && "carry-in must be 1-bit");
  ValueId Carry = K.newValue(1);
  ValueId Sum = K.newValue(W);
  std::vector<ValueId> Ops = {A, B};
  if (Cin != NoValue)
    Ops.push_back(Cin);
  emit(OpKind::Add, {Carry, Sum}, std::move(Ops));
  return {Carry, Sum};
}

CarryResult Builder::sub(ValueId A, ValueId B, ValueId Bin) {
  unsigned W = bitsOf(A);
  assert(bitsOf(B) == W && "sub operands must have equal width");
  assert((Bin == NoValue || bitsOf(Bin) == 1) && "borrow-in must be 1-bit");
  ValueId Borrow = K.newValue(1);
  ValueId Diff = K.newValue(W);
  std::vector<ValueId> Ops = {A, B};
  if (Bin != NoValue)
    Ops.push_back(Bin);
  emit(OpKind::Sub, {Borrow, Diff}, std::move(Ops));
  return {Borrow, Diff};
}

HiLoResult Builder::mul(ValueId A, ValueId B) {
  unsigned W = bitsOf(A);
  assert(bitsOf(B) == W && "mul operands must have equal width");
  ValueId Hi = K.newValue(W);
  ValueId Lo = K.newValue(W);
  emit(OpKind::Mul, {Hi, Lo}, {A, B});
  return {Hi, Lo};
}

ValueId Builder::mulLow(ValueId A, ValueId B) {
  unsigned W = bitsOf(A);
  assert(bitsOf(B) == W && "mullow operands must have equal width");
  ValueId R = K.newValue(W);
  emit(OpKind::MulLow, {R}, {A, B});
  return R;
}

ValueId Builder::addMod(ValueId A, ValueId B, ValueId Q) {
  unsigned W = bitsOf(A);
  assert(bitsOf(B) == W && bitsOf(Q) == W && "addmod width mismatch");
  ValueId R = K.newValue(W, "", K.value(Q).KnownBits);
  emit(OpKind::AddMod, {R}, {A, B, Q});
  return R;
}

ValueId Builder::subMod(ValueId A, ValueId B, ValueId Q) {
  unsigned W = bitsOf(A);
  assert(bitsOf(B) == W && bitsOf(Q) == W && "submod width mismatch");
  ValueId R = K.newValue(W, "", K.value(Q).KnownBits);
  emit(OpKind::SubMod, {R}, {A, B, Q});
  return R;
}

ValueId Builder::mulMod(ValueId A, ValueId B, ValueId Q, ValueId Mu,
                        unsigned ModBits) {
  unsigned W = bitsOf(A);
  assert(bitsOf(B) == W && bitsOf(Q) == W && bitsOf(Mu) == W &&
         "mulmod width mismatch");
  assert(ModBits + 4 <= W && "Barrett needs four free top bits (m <= w-4)");
  ValueId R = K.newValue(W, "", ModBits);
  Stmt &S = emit(OpKind::MulMod, {R}, {A, B, Q, Mu});
  S.ModBits = ModBits;
  return R;
}

ValueId Builder::lt(ValueId A, ValueId B) {
  assert(bitsOf(A) == bitsOf(B) && "lt width mismatch");
  ValueId R = K.newValue(1);
  emit(OpKind::Lt, {R}, {A, B});
  return R;
}

ValueId Builder::eq(ValueId A, ValueId B) {
  assert(bitsOf(A) == bitsOf(B) && "eq width mismatch");
  ValueId R = K.newValue(1);
  emit(OpKind::Eq, {R}, {A, B});
  return R;
}

ValueId Builder::logicalNot(ValueId A) {
  assert(bitsOf(A) == 1 && "not expects a flag");
  ValueId R = K.newValue(1);
  emit(OpKind::Not, {R}, {A});
  return R;
}

ValueId Builder::bitAnd(ValueId A, ValueId B) {
  assert(bitsOf(A) == bitsOf(B) && "and width mismatch");
  ValueId R = K.newValue(bitsOf(A));
  emit(OpKind::And, {R}, {A, B});
  return R;
}

ValueId Builder::bitOr(ValueId A, ValueId B) {
  assert(bitsOf(A) == bitsOf(B) && "or width mismatch");
  ValueId R = K.newValue(bitsOf(A));
  emit(OpKind::Or, {R}, {A, B});
  return R;
}

ValueId Builder::bitXor(ValueId A, ValueId B) {
  assert(bitsOf(A) == bitsOf(B) && "xor width mismatch");
  ValueId R = K.newValue(bitsOf(A));
  emit(OpKind::Xor, {R}, {A, B});
  return R;
}

ValueId Builder::shl(ValueId A, unsigned Amount) {
  assert(Amount < bitsOf(A) && "shift amount out of range");
  ValueId R = K.newValue(bitsOf(A));
  Stmt &S = emit(OpKind::Shl, {R}, {A});
  S.Amount = Amount;
  return R;
}

ValueId Builder::shr(ValueId A, unsigned Amount) {
  assert(Amount < bitsOf(A) && "shift amount out of range");
  ValueId R = K.newValue(bitsOf(A));
  Stmt &S = emit(OpKind::Shr, {R}, {A});
  S.Amount = Amount;
  return R;
}

ValueId Builder::select(ValueId Cond, ValueId A, ValueId B) {
  assert(bitsOf(Cond) == 1 && "select condition must be a flag");
  assert(bitsOf(A) == bitsOf(B) && "select arm width mismatch");
  ValueId R = K.newValue(bitsOf(A));
  emit(OpKind::Select, {R}, {Cond, A, B});
  return R;
}

HiLoResult Builder::split(ValueId A) {
  unsigned W = bitsOf(A);
  assert(W % 2 == 0 && "can only split even widths");
  unsigned H = W / 2;
  unsigned Known = K.value(A).KnownBits;
  // Rule (19): KnownBits distributes across the halves; a hi half with
  // KnownBits clamped to zero gets the 1-bit floor (it still stores zero).
  unsigned HiKnown = Known > H ? Known - H : 1;
  unsigned LoKnown = std::min(Known, H);
  ValueId Hi = K.newValue(H, "", HiKnown);
  ValueId Lo = K.newValue(H, "", std::max(1u, LoKnown));
  emit(OpKind::Split, {Hi, Lo}, {A});
  return {Hi, Lo};
}

ValueId Builder::concat(ValueId Hi, ValueId Lo) {
  unsigned H = bitsOf(Hi);
  assert(bitsOf(Lo) == H && "concat halves must have equal width");
  ValueId R = K.newValue(2 * H);
  emit(OpKind::Concat, {R}, {Hi, Lo});
  return R;
}
