//===- ir/Verifier.cpp - IR well-formedness checks -------------------------===//

#include "ir/Verifier.h"

#include "ir/Printer.h"
#include "support/Format.h"

using namespace moma;
using namespace moma::ir;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(const Kernel &K)
      : K(K), Defined(K.numValues(), false) {}

  std::vector<std::string> run();

private:
  void error(const Stmt &S, const std::string &Msg) {
    Errors.push_back(Msg + " in: " + printStmt(K, S));
  }
  void error(const std::string &Msg) { Errors.push_back(Msg); }

  unsigned width(ValueId Id) const { return K.value(Id).Bits; }

  bool checkId(ValueId Id) const {
    return Id >= 0 && static_cast<size_t>(Id) < K.numValues();
  }

  void checkStmt(const Stmt &S);

  const Kernel &K;
  std::vector<bool> Defined;
  std::vector<std::string> Errors;
};

} // namespace

std::vector<std::string> VerifierImpl::run() {
  for (const Param &P : K.inputs()) {
    if (!checkId(P.Id)) {
      error("input '" + P.Name + "' has an invalid value id");
      continue;
    }
    if (Defined[P.Id])
      error("input '" + P.Name + "' declared twice");
    Defined[P.Id] = true;
  }

  for (const Stmt &S : K.Body)
    checkStmt(S);

  if (K.outputs().empty())
    error("kernel has no outputs");
  for (const Param &P : K.outputs()) {
    if (!checkId(P.Id)) {
      error("output '" + P.Name + "' has an invalid value id");
      continue;
    }
    if (!Defined[P.Id])
      error("output '" + P.Name + "' is never defined");
  }
  return std::move(Errors);
}

void VerifierImpl::checkStmt(const Stmt &S) {
  for (ValueId Id : S.Operands) {
    if (!checkId(Id)) {
      error(S, "invalid operand id");
      return;
    }
    if (!Defined[Id])
      error(S, formatv("operand %%%d used before definition", Id));
  }
  for (ValueId Id : S.Results) {
    if (!checkId(Id)) {
      error(S, "invalid result id");
      return;
    }
    if (Defined[Id])
      error(S, formatv("value %%%d defined twice", Id));
    Defined[Id] = true;
  }

  auto RequireCounts = [&](size_t NumResults, size_t MinOps, size_t MaxOps) {
    if (S.Results.size() != NumResults) {
      error(S, "wrong result count");
      return false;
    }
    if (S.Operands.size() < MinOps || S.Operands.size() > MaxOps) {
      error(S, "wrong operand count");
      return false;
    }
    return true;
  };

  switch (S.Kind) {
  case OpKind::Const:
    if (!RequireCounts(1, 0, 0))
      return;
    if (S.Literal.bitWidth() > width(S.Results[0]))
      error(S, "literal does not fit the result type");
    return;
  case OpKind::Copy:
    if (!RequireCounts(1, 1, 1))
      return;
    if (width(S.Results[0]) != width(S.Operands[0]))
      error(S, "copy width mismatch");
    return;
  case OpKind::Zext:
    if (!RequireCounts(1, 1, 1))
      return;
    if (width(S.Results[0]) < width(S.Operands[0]))
      error(S, "zext narrows its operand");
    return;
  case OpKind::Add:
  case OpKind::Sub: {
    if (!RequireCounts(2, 2, 3))
      return;
    unsigned W = width(S.Results[1]);
    if (width(S.Results[0]) != 1)
      error(S, "carry/borrow result must be 1-bit");
    if (width(S.Operands[0]) != W || width(S.Operands[1]) != W)
      error(S, "operand width must match the sum/diff result");
    if (S.Operands.size() == 3 && width(S.Operands[2]) != 1)
      error(S, "carry/borrow-in must be 1-bit");
    return;
  }
  case OpKind::Mul: {
    if (!RequireCounts(2, 2, 2))
      return;
    unsigned W = width(S.Results[1]);
    if (width(S.Results[0]) != W || width(S.Operands[0]) != W ||
        width(S.Operands[1]) != W)
      error(S, "mul requires equal widths for operands and hi/lo results");
    return;
  }
  case OpKind::MulLow: {
    if (!RequireCounts(1, 2, 2))
      return;
    unsigned W = width(S.Results[0]);
    if (width(S.Operands[0]) != W || width(S.Operands[1]) != W)
      error(S, "mullow width mismatch");
    return;
  }
  case OpKind::AddMod:
  case OpKind::SubMod: {
    if (!RequireCounts(1, 3, 3))
      return;
    unsigned W = width(S.Results[0]);
    for (ValueId Op : S.Operands)
      if (width(Op) != W)
        error(S, "modular op width mismatch");
    return;
  }
  case OpKind::MulMod: {
    if (!RequireCounts(1, 4, 4))
      return;
    unsigned W = width(S.Results[0]);
    for (ValueId Op : S.Operands)
      if (width(Op) != W)
        error(S, "mulmod width mismatch");
    if (S.ModBits + 4 > W)
      error(S, formatv("mulmod needs ModBits <= w-4 (got m=%u, w=%u)",
                       S.ModBits, W));
    if (S.ModBits < 2)
      error(S, "mulmod ModBits too small");
    return;
  }
  case OpKind::Lt:
  case OpKind::Eq:
    if (!RequireCounts(1, 2, 2))
      return;
    if (width(S.Results[0]) != 1)
      error(S, "comparison result must be 1-bit");
    if (width(S.Operands[0]) != width(S.Operands[1]))
      error(S, "comparison operand width mismatch");
    return;
  case OpKind::Not:
    if (!RequireCounts(1, 1, 1))
      return;
    if (width(S.Results[0]) != 1 || width(S.Operands[0]) != 1)
      error(S, "not requires 1-bit operand and result");
    return;
  case OpKind::And:
  case OpKind::Or:
  case OpKind::Xor: {
    if (!RequireCounts(1, 2, 2))
      return;
    unsigned W = width(S.Results[0]);
    if (width(S.Operands[0]) != W || width(S.Operands[1]) != W)
      error(S, "bitwise op width mismatch");
    return;
  }
  case OpKind::Shl:
  case OpKind::Shr:
    if (!RequireCounts(1, 1, 1))
      return;
    if (width(S.Results[0]) != width(S.Operands[0]))
      error(S, "shift width mismatch");
    if (S.Amount >= width(S.Results[0]))
      error(S, "shift amount out of range");
    return;
  case OpKind::Select:
    if (!RequireCounts(1, 3, 3))
      return;
    if (width(S.Operands[0]) != 1)
      error(S, "select condition must be 1-bit");
    if (width(S.Results[0]) != width(S.Operands[1]) ||
        width(S.Results[0]) != width(S.Operands[2]))
      error(S, "select arm width mismatch");
    return;
  case OpKind::Split: {
    if (!RequireCounts(2, 1, 1))
      return;
    unsigned W = width(S.Operands[0]);
    if (W % 2 != 0)
      error(S, "split operand width must be even");
    if (width(S.Results[0]) != W / 2 || width(S.Results[1]) != W / 2)
      error(S, "split halves must each be half the operand width");
    return;
  }
  case OpKind::Concat: {
    if (!RequireCounts(1, 2, 2))
      return;
    unsigned H = width(S.Operands[0]);
    if (width(S.Operands[1]) != H || width(S.Results[0]) != 2 * H)
      error(S, "concat width mismatch");
    return;
  }
  }
  error(S, "unknown opcode");
}

std::vector<std::string> moma::ir::verify(const Kernel &K) {
  return VerifierImpl(K).run();
}
