//===- ir/Kernel.cpp - Kernel container ------------------------------------===//

#include "ir/Ir.h"

#include "support/Error.h"

#include <cassert>

using namespace moma;
using namespace moma::ir;

const char *moma::ir::opKindName(OpKind K) {
  switch (K) {
  case OpKind::Const:
    return "const";
  case OpKind::Copy:
    return "copy";
  case OpKind::Zext:
    return "zext";
  case OpKind::Add:
    return "add";
  case OpKind::Sub:
    return "sub";
  case OpKind::Mul:
    return "mul";
  case OpKind::MulLow:
    return "mullow";
  case OpKind::AddMod:
    return "addmod";
  case OpKind::SubMod:
    return "submod";
  case OpKind::MulMod:
    return "mulmod";
  case OpKind::Lt:
    return "lt";
  case OpKind::Eq:
    return "eq";
  case OpKind::Not:
    return "not";
  case OpKind::And:
    return "and";
  case OpKind::Or:
    return "or";
  case OpKind::Xor:
    return "xor";
  case OpKind::Shl:
    return "shl";
  case OpKind::Shr:
    return "shr";
  case OpKind::Select:
    return "select";
  case OpKind::Split:
    return "split";
  case OpKind::Concat:
    return "concat";
  }
  moma_unreachable("unknown opcode");
}

ValueId Kernel::newValue(unsigned Bits, const std::string &Name,
                         unsigned KnownBits) {
  assert(Bits >= 1 && "values need at least one bit");
  ValueInfo Info;
  Info.Bits = Bits;
  Info.KnownBits = KnownBits == 0 ? Bits : KnownBits;
  assert(Info.KnownBits <= Bits && "KnownBits exceeds storage width");
  Info.Name = Name;
  Values.push_back(Info);
  return static_cast<ValueId>(Values.size() - 1);
}

void Kernel::addInput(ValueId Id, const std::string &Name) {
  Inputs.push_back(Param{Id, Name});
}

void Kernel::addOutput(ValueId Id, const std::string &Name) {
  Outputs.push_back(Param{Id, Name});
}

unsigned Kernel::maxBits() const {
  unsigned Max = 0;
  for (const auto &V : Values)
    if (V.Bits > Max)
      Max = V.Bits;
  return Max;
}
