//===- ir/Verifier.h - IR well-formedness checks --------------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and type checks over kernels: single assignment, defined-
/// before-use, per-opcode width rules, flag widths, shift ranges, Barrett
/// headroom (ModBits <= w-4), literal fit. Returns diagnostics instead of
/// aborting so tests can assert on failure modes (failure injection).
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_IR_VERIFIER_H
#define MOMA_IR_VERIFIER_H

#include "ir/Ir.h"

#include <string>
#include <vector>

namespace moma {
namespace ir {

/// Checks \p K; returns one message per violation (empty == well-formed).
std::vector<std::string> verify(const Kernel &K);

/// Convenience: true when verify(K) found no problems.
inline bool isWellFormed(const Kernel &K) { return verify(K).empty(); }

} // namespace ir
} // namespace moma

#endif // MOMA_IR_VERIFIER_H
