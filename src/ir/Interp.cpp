//===- ir/Interp.cpp - Reference interpreter -------------------------------===//

#include "ir/Interp.h"

#include "support/Error.h"

#include <cassert>

using namespace moma;
using namespace moma::ir;
using mw::Bignum;

namespace {

/// Evaluation state: one Bignum slot per value plus a defined bit.
class Evaluator {
public:
  explicit Evaluator(const Kernel &K)
      : K(K), Slots(K.numValues()), Defined(K.numValues(), false) {}

  void define(ValueId Id, Bignum V) {
    const ValueInfo &Info = K.value(Id);
    assert(V.bitWidth() <= Info.Bits && "value exceeds its storage width");
    (void)Info;
    Slots[Id] = std::move(V);
    Defined[Id] = true;
  }

  const Bignum &get(ValueId Id) const {
    assert(Id >= 0 && static_cast<size_t>(Id) < Slots.size() &&
           "operand id out of range");
    assert(Defined[Id] && "use before definition");
    return Slots[Id];
  }

  void run(const Stmt &S);

private:
  const Kernel &K;
  std::vector<Bignum> Slots;
  std::vector<bool> Defined;
};

} // namespace

void Evaluator::run(const Stmt &S) {
  auto Width = [&](ValueId Id) { return K.value(Id).Bits; };

  switch (S.Kind) {
  case OpKind::Const:
    define(S.Results[0], S.Literal);
    return;
  case OpKind::Copy:
  case OpKind::Zext:
    define(S.Results[0], get(S.Operands[0]));
    return;
  case OpKind::Add: {
    unsigned W = Width(S.Results[1]);
    Bignum Sum = get(S.Operands[0]) + get(S.Operands[1]);
    if (S.Operands.size() == 3)
      Sum += get(S.Operands[2]);
    define(S.Results[0], Sum >> W);
    define(S.Results[1], Sum.truncate(W));
    return;
  }
  case OpKind::Sub: {
    unsigned W = Width(S.Results[1]);
    Bignum A = get(S.Operands[0]);
    Bignum B = get(S.Operands[1]);
    if (S.Operands.size() == 3)
      B += get(S.Operands[2]);
    if (A >= B) {
      define(S.Results[0], Bignum(0));
      define(S.Results[1], A - B);
    } else {
      define(S.Results[0], Bignum(1));
      define(S.Results[1], (Bignum::powerOfTwo(W) + A) - B);
    }
    return;
  }
  case OpKind::Mul: {
    unsigned W = Width(S.Results[1]);
    Bignum P = get(S.Operands[0]) * get(S.Operands[1]);
    define(S.Results[0], P >> W);
    define(S.Results[1], P.truncate(W));
    return;
  }
  case OpKind::MulLow: {
    unsigned W = Width(S.Results[0]);
    Bignum P = get(S.Operands[0]) * get(S.Operands[1]);
    define(S.Results[0], P.truncate(W));
    return;
  }
  case OpKind::AddMod: {
    const Bignum &Q = get(S.Operands[2]);
    assert(get(S.Operands[0]) < Q && get(S.Operands[1]) < Q &&
           "addmod inputs must be reduced");
    define(S.Results[0], get(S.Operands[0]).addMod(get(S.Operands[1]), Q));
    return;
  }
  case OpKind::SubMod: {
    const Bignum &Q = get(S.Operands[2]);
    assert(get(S.Operands[0]) < Q && get(S.Operands[1]) < Q &&
           "submod inputs must be reduced");
    define(S.Results[0], get(S.Operands[0]).subMod(get(S.Operands[1]), Q));
    return;
  }
  case OpKind::MulMod: {
    const Bignum &Q = get(S.Operands[2]);
    assert(get(S.Operands[0]) < Q && get(S.Operands[1]) < Q &&
           "mulmod inputs must be reduced");
    assert(Q.bitWidth() == S.ModBits && "ModBits does not match modulus");
    define(S.Results[0], get(S.Operands[0]).mulMod(get(S.Operands[1]), Q));
    return;
  }
  case OpKind::Lt:
    define(S.Results[0], Bignum(get(S.Operands[0]) < get(S.Operands[1])));
    return;
  case OpKind::Eq:
    define(S.Results[0], Bignum(get(S.Operands[0]) == get(S.Operands[1])));
    return;
  case OpKind::Not:
    define(S.Results[0], Bignum(get(S.Operands[0]).isZero() ? 1 : 0));
    return;
  case OpKind::And:
  case OpKind::Or:
  case OpKind::Xor: {
    // Bignum has no bitwise ops; widths here are small in practice but the
    // word loop keeps it fully general.
    const Bignum &A = get(S.Operands[0]);
    const Bignum &B = get(S.Operands[1]);
    size_t N = std::max(A.numLimbs(), B.numLimbs());
    std::vector<std::uint64_t> Out(N ? N : 1, 0);
    for (size_t I = 0; I < N; ++I) {
      std::uint64_t X = A.limb(I), Y = B.limb(I);
      Out[I] = S.Kind == OpKind::And ? (X & Y)
               : S.Kind == OpKind::Or ? (X | Y)
                                      : (X ^ Y);
    }
    define(S.Results[0], Bignum::fromWords(Out));
    return;
  }
  case OpKind::Shl: {
    unsigned W = Width(S.Results[0]);
    define(S.Results[0], (get(S.Operands[0]) << S.Amount).truncate(W));
    return;
  }
  case OpKind::Shr:
    define(S.Results[0], get(S.Operands[0]) >> S.Amount);
    return;
  case OpKind::Select:
    define(S.Results[0], get(S.Operands[0]).isZero() ? get(S.Operands[2])
                                                     : get(S.Operands[1]));
    return;
  case OpKind::Split: {
    unsigned H = Width(S.Results[0]);
    const Bignum &A = get(S.Operands[0]);
    define(S.Results[0], A >> H);
    define(S.Results[1], A.truncate(H));
    return;
  }
  case OpKind::Concat: {
    unsigned H = Width(S.Operands[1]);
    define(S.Results[0], (get(S.Operands[0]) << H) + get(S.Operands[1]));
    return;
  }
  }
  moma_unreachable("unknown opcode in interpreter");
}

std::vector<Bignum>
moma::ir::interpret(const Kernel &K, const std::vector<Bignum> &InputValues) {
  if (InputValues.size() != K.inputs().size())
    fatalError("interpret: expected " + std::to_string(K.inputs().size()) +
               " inputs, got " + std::to_string(InputValues.size()));
  Evaluator E(K);
  for (size_t I = 0; I < InputValues.size(); ++I) {
    const Param &P = K.inputs()[I];
    // KnownBits is a contract: the Simplify pass prunes code based on it,
    // so feeding a wider value would silently diverge. Reject it here.
    if (InputValues[I].bitWidth() > K.value(P.Id).KnownBits)
      fatalError("interpret: input '" + P.Name + "' exceeds its KnownBits");
    E.define(P.Id, InputValues[I]);
  }
  for (const Stmt &S : K.Body)
    E.run(S);
  std::vector<Bignum> Out;
  Out.reserve(K.outputs().size());
  for (const Param &P : K.outputs())
    Out.push_back(E.get(P.Id));
  return Out;
}
