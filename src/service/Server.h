//===- service/Server.h - Concurrent multi-tenant serving layer -*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front door of the runtime for many independent clients: a
/// thread-safe submission queue accepting polyMul/NTT/RNS/BLAS requests
/// with futures back to the callers, a coalescer that packs same-(op,
/// modulus, shape, ring) requests into one batched dispatch within a
/// configurable latency budget, and worker threads draining the queue.
///
/// Why it exists: the Dispatcher only hits the paper's batched-dispatch
/// sweet spot when callers arrive with large batches, but the north-star
/// workload is many small independent requests from many tenants. The
/// server turns that open-loop trickle into the dispatch shape the
/// generated kernels want — N requests for the same compiled plan become
/// one dispatch over the concatenated batch, amortizing per-dispatch
/// fixed costs (plan binding, key canonicalization, backend launch) that
/// would otherwise dominate small requests.
///
/// Sharing model: all workers share one thread-safe KernelRegistry (and
/// optionally one Autotuner), so a cold kernel is compiled exactly once
/// no matter how many clients race on it; each worker owns a private
/// Dispatcher (whose binding caches and counters are unsynchronized by
/// contract).
///
/// Buffer ownership: request buffers (A/B/C/Data) belong to the caller
/// and must stay valid and untouched until the returned future resolves.
/// The coalescer stages them into worker-local contiguous arrays for the
/// batched dispatch and scatters results back, so callers never see a
/// partially-written output before their future is ready.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_SERVICE_SERVER_H
#define MOMA_SERVICE_SERVER_H

#include "runtime/Autotuner.h"
#include "runtime/Dispatcher.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace moma {
namespace fhe {
struct Ciphertext;
} // namespace fhe
namespace service {

/// Serving configuration.
struct ServerOptions {
  /// Worker threads draining the queue. Each owns a private Dispatcher.
  unsigned Workers = 2;
  /// Most requests packed into one coalesced dispatch.
  size_t MaxBatch = 256;
  /// How long a worker holds the oldest request open for same-key
  /// arrivals before dispatching — the latency budget traded for batch
  /// size. 0 dispatches immediately (no coalescing beyond what is
  /// already queued).
  unsigned CoalesceWindowUs = 200;
  /// Requests admitted before submissions are rejected ("queue full"
  /// replies) — the overload backstop.
  size_t QueueCap = 1 << 16;
  /// Base plan knobs handed to every worker Dispatcher (backend,
  /// reduction, fuse depth, ... — the same defaults the Dispatcher API
  /// documents).
  rewrite::PlanOptions BasePlan;
  /// When true the server creates one shared Autotuner over the registry
  /// and every worker dispatches through it (first request per problem
  /// pays one timing sweep; concurrent workers single-flight on it).
  bool UseAutotuner = false;
  runtime::AutotunerOptions TunerOpts;
  /// Deadline applied to every submission that does not pass its own
  /// (microseconds from submit; 0 = no deadline). An expired request
  /// still queued when a worker next scans is rejected with
  /// ErrorCode::DeadlineExceeded; a request already staged into an
  /// in-flight batch is always served — batches are never torn.
  std::uint64_t DefaultDeadlineUs = 0;
};

/// Typed failure taxonomy for Reply — stable across error-message
/// wording, so callers branch on the code and log the string.
enum class ErrorCode {
  Ok = 0,           ///< request served
  QueueFull,        ///< admission refused: queue at QueueCap
  ShuttingDown,     ///< admission refused: server stopping
  DeadlineExceeded, ///< expired while queued (never torn from a batch)
  DispatchFailed,   ///< the batched dispatch itself failed (Error set)
  InvalidRequest,   ///< the dispatcher rejected the request's arguments
};

/// Stable lower-case name for \p C ("ok", "queue-full", ...).
const char *errorCodeName(ErrorCode C);

/// What a request's future resolves to. Latency accounting: Done is
/// stamped just before the promise is fulfilled, so (Done - submit time)
/// is the request's queue + coalesce + execute latency.
struct Reply {
  bool Ok = false;
  ErrorCode Code = ErrorCode::Ok; ///< typed failure class
  std::string Error; ///< dispatcher diagnostics on failure
  std::chrono::steady_clock::time_point Done;
};

/// The serving layer. Thread-safe: any number of client threads may
/// submit concurrently; the destructor stops accepting, flushes every
/// queued request, and joins the workers.
class Server {
public:
  explicit Server(runtime::KernelRegistry &Reg,
                  ServerOptions Opts = ServerOptions());
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  // -- Element-wise modular BLAS (flat arrays of N elements, elemWords(Q)
  // words each; same data convention as the Dispatcher) ------------------
  // Every submission takes an optional per-request deadline in
  // microseconds from submit time (0 = ServerOptions::DefaultDeadlineUs).

  std::future<Reply> vadd(const mw::Bignum &Q, const std::uint64_t *A,
                          const std::uint64_t *B, std::uint64_t *C,
                          size_t N, std::uint64_t DeadlineUs = 0);
  std::future<Reply> vsub(const mw::Bignum &Q, const std::uint64_t *A,
                          const std::uint64_t *B, std::uint64_t *C,
                          size_t N, std::uint64_t DeadlineUs = 0);
  std::future<Reply> vmul(const mw::Bignum &Q, const std::uint64_t *A,
                          const std::uint64_t *B, std::uint64_t *C,
                          size_t N, std::uint64_t DeadlineUs = 0);

  // -- NTT engine --------------------------------------------------------

  /// One polynomial product C = A * B over Z_q[x]/(x^n -+ 1); A/B/C hold
  /// NPoints coefficients. Same-(q, n, ring) requests coalesce into one
  /// batched dispatch.
  std::future<Reply> polyMul(const mw::Bignum &Q, const std::uint64_t *A,
                             const std::uint64_t *B, std::uint64_t *C,
                             size_t NPoints,
                             rewrite::NttRing Ring = rewrite::NttRing::Cyclic,
                             std::uint64_t DeadlineUs = 0);
  /// In-place forward/inverse transform of one NPoints-point polynomial.
  std::future<Reply> nttForward(const mw::Bignum &Q, std::uint64_t *Data,
                                size_t NPoints,
                                rewrite::NttRing Ring =
                                    rewrite::NttRing::Cyclic,
                                std::uint64_t DeadlineUs = 0);
  std::future<Reply> nttInverse(const mw::Bignum &Q, std::uint64_t *Data,
                                size_t NPoints,
                                rewrite::NttRing Ring =
                                    rewrite::NttRing::Cyclic,
                                std::uint64_t DeadlineUs = 0);

  // -- RNS multi-modulus -------------------------------------------------

  /// One wide polynomial product over Z_M[x]/(x^n -+ 1) through \p Ctx
  /// (which must outlive the future). Coalesces per (context, n, ring).
  std::future<Reply> rnsPolyMul(const runtime::RnsContext &Ctx,
                                const std::uint64_t *A,
                                const std::uint64_t *B, std::uint64_t *C,
                                size_t NPoints,
                                rewrite::NttRing Ring =
                                    rewrite::NttRing::Cyclic,
                                std::uint64_t DeadlineUs = 0);

  // -- FHE ciphertext ops ------------------------------------------------

  /// One ciphertext tensor product Out = A * B (degree-1 operands,
  /// degree-2 result; see fhe::ciphertextMul). All three ciphertexts —
  /// and the FheContext chain they reference — must outlive the future;
  /// Out may alias an operand. Same-(context, shape, ring) requests
  /// coalesce onto one worker wakeup, though each product still runs as
  /// its own dispatcher-call sequence: ciphertexts carry per-request
  /// lazy-domain state, so cross-request staging would destroy the very
  /// NTT elision the tensor API provides.
  std::future<Reply> submitCtMul(fhe::Ciphertext &A, fhe::Ciphertext &B,
                                 fhe::Ciphertext &Out,
                                 std::uint64_t DeadlineUs = 0);

  /// Blocks until every admitted request has been served (the queue is
  /// empty and no worker is executing).
  void drain();

  /// Serving counters.
  struct Stats {
    std::uint64_t Requests = 0;   ///< submissions admitted to the queue
    std::uint64_t Rejected = 0;   ///< submissions refused (full/stopping)
    std::uint64_t Dispatches = 0; ///< batched dispatches executed
    std::uint64_t Coalesced = 0;  ///< requests served in a batch of >= 2
    std::uint64_t MaxBatchSize = 0; ///< largest batch dispatched
    std::uint64_t DeadlineExpired = 0; ///< queued requests past deadline
  };
  Stats stats() const;

  /// One consistent snapshot of the degradation ladder for monitoring:
  /// registry retry/failure counters, the per-worker dispatcher fallback
  /// counters summed, and the server's own rejection/deadline/queue
  /// numbers. Cheap enough to poll (atomics plus two mutexes).
  struct Health {
    bool Degraded = false; ///< any plan currently failed-and-not-rebuilt
    std::uint64_t FallbackBinds = 0;      ///< interp bindings created
    std::uint64_t FallbackDispatches = 0; ///< dispatches served degraded
    std::uint64_t Promotions = 0;         ///< degraded -> JIT rebinds
    std::uint64_t TunerFallbacks = 0;     ///< tuner failure -> base plan
    std::uint64_t Retries = 0;            ///< registry transient retries
    std::uint64_t FailedBuilds = 0;       ///< builds past the retry budget
    std::uint64_t Rejected = 0;           ///< admission rejections
    std::uint64_t DeadlineExpired = 0;    ///< queued-past-deadline replies
    size_t QueueDepth = 0;                ///< requests waiting right now
  };
  Health health() const;

  const ServerOptions &options() const { return Opts; }
  runtime::KernelRegistry &registry() { return Reg; }
  /// The shared tuner (null unless UseAutotuner).
  runtime::Autotuner *tuner() { return Tuner.get(); }

private:
  enum class ReqKind {
    VAdd,
    VSub,
    VMul,
    PolyMul,
    NttForward,
    NttInverse,
    RnsPolyMul,
    CtMul
  };

  /// One queued request. Coalescing key: requests with equal Key strings
  /// are safe to serve in one batched dispatch.
  struct Request {
    ReqKind Kind;
    mw::Bignum Q;
    const runtime::RnsContext *Ctx = nullptr;
    rewrite::NttRing Ring = rewrite::NttRing::Cyclic;
    const std::uint64_t *A = nullptr;
    const std::uint64_t *B = nullptr;
    std::uint64_t *C = nullptr; ///< output (or in-place data)
    fhe::Ciphertext *CtA = nullptr, *CtB = nullptr; ///< CtMul operands
    fhe::Ciphertext *CtOut = nullptr;               ///< CtMul result
    size_t N = 0;               ///< elements (BLAS) or points (NTT/poly)
    std::string Key;
    std::uint64_t DeadlineUs = 0; ///< caller's budget (0 = server default)
    bool HasDeadline = false;
    std::chrono::steady_clock::time_point Arrival;
    std::chrono::steady_clock::time_point Deadline; ///< if HasDeadline
    std::promise<Reply> Promise;
  };

  /// One worker: thread + private Dispatcher + staging buffers for
  /// coalesced batches (grow-only, reused across dispatches).
  struct Worker {
    std::unique_ptr<runtime::Dispatcher> D;
    std::vector<std::uint64_t> SA, SB, SC;
    std::thread T;
  };

  std::future<Reply> submit(Request R);
  void workerLoop(Worker &W);
  /// Moves every queued request whose deadline has passed (any key) into
  /// \p Expired and bumps Stats::DeadlineExpired for the new entries.
  /// Called under QMu; Pending stays put until replyExpired fulfills the
  /// promises.
  void sweepExpiredLocked(std::vector<Request> &Expired);
  /// Replies ErrorCode::DeadlineExceeded to every request in \p Expired,
  /// then decrements Pending and notifies DrainCv. Called WITHOUT QMu
  /// held.
  void replyExpired(std::vector<Request> &Expired);
  /// Serves one coalesced batch (all sharing Batch[0].Key) on \p W.
  void execute(Worker &W, std::vector<Request> &Batch);
  /// Runs the actual dispatcher call(s) for \p Batch staged as one
  /// batched dispatch; returns false with \p Error and \p Code set —
  /// \p Code classified from the dispatcher's typed lastErrorCode()
  /// rather than by matching message strings.
  bool dispatchBatch(Worker &W, std::vector<Request> &Batch,
                     std::string &Error, ErrorCode &Code);

  runtime::KernelRegistry &Reg;
  ServerOptions Opts;
  std::unique_ptr<runtime::Autotuner> Tuner;

  mutable std::mutex QMu; ///< guards Queue, Pending, Stop, S
  std::condition_variable QCv;    ///< work available / shutdown
  std::condition_variable DrainCv; ///< Pending reached zero
  std::deque<Request> Queue;
  size_t Pending = 0; ///< admitted but not yet replied
  bool Stop = false;
  Stats S;
  std::vector<std::unique_ptr<Worker>> Workers;
};

} // namespace service
} // namespace moma

#endif // MOMA_SERVICE_SERVER_H
