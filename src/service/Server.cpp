//===- service/Server.cpp - Concurrent multi-tenant serving layer ----------===//

#include "service/Server.h"

#include "fhe/Fhe.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <utility>

using namespace moma;
using namespace moma::service;

namespace {

char ringTag(rewrite::NttRing Ring) {
  return Ring == rewrite::NttRing::Negacyclic ? 'n' : 'c';
}

} // namespace

const char *moma::service::errorCodeName(ErrorCode C) {
  switch (C) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::QueueFull:
    return "queue-full";
  case ErrorCode::ShuttingDown:
    return "shutting-down";
  case ErrorCode::DeadlineExceeded:
    return "deadline-exceeded";
  case ErrorCode::DispatchFailed:
    return "dispatch-failed";
  case ErrorCode::InvalidRequest:
    return "invalid-request";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

Server::Server(runtime::KernelRegistry &Reg, ServerOptions O)
    : Reg(Reg), Opts(std::move(O)) {
  if (Opts.Workers == 0)
    Opts.Workers = 1;
  if (Opts.MaxBatch == 0)
    Opts.MaxBatch = 1;
  if (Opts.UseAutotuner)
    Tuner = std::make_unique<runtime::Autotuner>(Reg, Opts.TunerOpts);
  for (unsigned I = 0; I < Opts.Workers; ++I) {
    auto W = std::make_unique<Worker>();
    W->D = std::make_unique<runtime::Dispatcher>(Reg, Tuner.get(),
                                                 Opts.BasePlan);
    Workers.push_back(std::move(W));
  }
  // Start the threads only once every Worker exists: a worker observes
  // nothing but its own slot and the shared queue state.
  for (auto &W : Workers)
    W->T = std::thread([this, WP = W.get()] { workerLoop(*WP); });
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> G(QMu);
    Stop = true;
  }
  QCv.notify_all();
  for (auto &W : Workers)
    if (W->T.joinable())
      W->T.join();
}

//===----------------------------------------------------------------------===//
// Submission
//===----------------------------------------------------------------------===//

std::future<Reply> Server::submit(Request R) {
  R.Arrival = std::chrono::steady_clock::now();
  std::uint64_t Budget =
      R.DeadlineUs ? R.DeadlineUs : Opts.DefaultDeadlineUs;
  if (Budget) {
    R.HasDeadline = true;
    R.Deadline = R.Arrival + std::chrono::microseconds(Budget);
  }
  std::future<Reply> F = R.Promise.get_future();
  ErrorCode Code;
  {
    std::lock_guard<std::mutex> G(QMu);
    if (!Stop && Queue.size() < Opts.QueueCap) {
      ++S.Requests;
      ++Pending;
      Queue.push_back(std::move(R));
      QCv.notify_one();
      return F;
    }
    Code = Stop ? ErrorCode::ShuttingDown : ErrorCode::QueueFull;
    ++S.Rejected;
  }
  Reply Rej;
  Rej.Code = Code;
  Rej.Error = Code == ErrorCode::ShuttingDown
                  ? "server: submission rejected (shutting down)"
                  : "server: submission rejected (queue full)";
  Rej.Done = std::chrono::steady_clock::now();
  R.Promise.set_value(std::move(Rej));
  return F;
}

std::future<Reply> Server::vadd(const mw::Bignum &Q, const std::uint64_t *A,
                                const std::uint64_t *B, std::uint64_t *C,
                                size_t N, std::uint64_t DeadlineUs) {
  Request R;
  R.Kind = ReqKind::VAdd;
  R.Q = Q;
  R.A = A;
  R.B = B;
  R.C = C;
  R.N = N;
  R.Key = "va/" + Q.toHex();
  R.DeadlineUs = DeadlineUs;
  return submit(std::move(R));
}

std::future<Reply> Server::vsub(const mw::Bignum &Q, const std::uint64_t *A,
                                const std::uint64_t *B, std::uint64_t *C,
                                size_t N, std::uint64_t DeadlineUs) {
  Request R;
  R.Kind = ReqKind::VSub;
  R.Q = Q;
  R.A = A;
  R.B = B;
  R.C = C;
  R.N = N;
  R.Key = "vs/" + Q.toHex();
  R.DeadlineUs = DeadlineUs;
  return submit(std::move(R));
}

std::future<Reply> Server::vmul(const mw::Bignum &Q, const std::uint64_t *A,
                                const std::uint64_t *B, std::uint64_t *C,
                                size_t N, std::uint64_t DeadlineUs) {
  Request R;
  R.Kind = ReqKind::VMul;
  R.Q = Q;
  R.A = A;
  R.B = B;
  R.C = C;
  R.N = N;
  R.Key = "vm/" + Q.toHex();
  R.DeadlineUs = DeadlineUs;
  return submit(std::move(R));
}

std::future<Reply> Server::polyMul(const mw::Bignum &Q,
                                   const std::uint64_t *A,
                                   const std::uint64_t *B, std::uint64_t *C,
                                   size_t NPoints, rewrite::NttRing Ring,
                                   std::uint64_t DeadlineUs) {
  Request R;
  R.Kind = ReqKind::PolyMul;
  R.Q = Q;
  R.Ring = Ring;
  R.A = A;
  R.B = B;
  R.C = C;
  R.N = NPoints;
  R.Key = "pm/" + Q.toHex() + "/" + std::to_string(NPoints) + "/" +
          ringTag(Ring);
  R.DeadlineUs = DeadlineUs;
  return submit(std::move(R));
}

std::future<Reply> Server::nttForward(const mw::Bignum &Q,
                                      std::uint64_t *Data, size_t NPoints,
                                      rewrite::NttRing Ring,
                                      std::uint64_t DeadlineUs) {
  Request R;
  R.Kind = ReqKind::NttForward;
  R.Q = Q;
  R.Ring = Ring;
  R.C = Data;
  R.N = NPoints;
  R.Key = "nf/" + Q.toHex() + "/" + std::to_string(NPoints) + "/" +
          ringTag(Ring);
  R.DeadlineUs = DeadlineUs;
  return submit(std::move(R));
}

std::future<Reply> Server::nttInverse(const mw::Bignum &Q,
                                      std::uint64_t *Data, size_t NPoints,
                                      rewrite::NttRing Ring,
                                      std::uint64_t DeadlineUs) {
  Request R;
  R.Kind = ReqKind::NttInverse;
  R.Q = Q;
  R.Ring = Ring;
  R.C = Data;
  R.N = NPoints;
  R.Key = "ni/" + Q.toHex() + "/" + std::to_string(NPoints) + "/" +
          ringTag(Ring);
  R.DeadlineUs = DeadlineUs;
  return submit(std::move(R));
}

std::future<Reply> Server::rnsPolyMul(const runtime::RnsContext &Ctx,
                                      const std::uint64_t *A,
                                      const std::uint64_t *B,
                                      std::uint64_t *C, size_t NPoints,
                                      rewrite::NttRing Ring,
                                      std::uint64_t DeadlineUs) {
  Request R;
  R.Kind = ReqKind::RnsPolyMul;
  R.Ctx = &Ctx;
  R.Ring = Ring;
  R.A = A;
  R.B = B;
  R.C = C;
  R.N = NPoints;
  // Context identity (not value) keys the batch: requests through the
  // same RnsContext share limb bases and tables by construction.
  R.Key = "rp/" +
          std::to_string(reinterpret_cast<std::uintptr_t>(&Ctx)) + "/" +
          std::to_string(NPoints) + "/" + ringTag(Ring);
  R.DeadlineUs = DeadlineUs;
  return submit(std::move(R));
}

std::future<Reply> Server::submitCtMul(fhe::Ciphertext &A,
                                       fhe::Ciphertext &B,
                                       fhe::Ciphertext &Out,
                                       std::uint64_t DeadlineUs) {
  Request R;
  // Malformed products are rejected at the door with the typed code —
  // no queue slot, no worker wakeup.
  if (!A.valid() || !B.valid() || A.size() != 2 || B.size() != 2 ||
      &A.context() != &B.context()) {
    std::future<Reply> F = R.Promise.get_future();
    {
      std::lock_guard<std::mutex> G(QMu);
      ++S.Rejected;
    }
    Reply Rej;
    Rej.Code = ErrorCode::InvalidRequest;
    Rej.Error = "server: ctMul needs two degree-1 ciphertexts over one "
                "chain";
    Rej.Done = std::chrono::steady_clock::now();
    R.Promise.set_value(std::move(Rej));
    return F;
  }
  R.Kind = ReqKind::CtMul;
  R.Ctx = &A.context();
  R.Ring = A.Polys[0].ring();
  R.CtA = &A;
  R.CtB = &B;
  R.CtOut = &Out;
  R.N = A.Polys[0].nPoints();
  R.Key = "cm/" +
          std::to_string(reinterpret_cast<std::uintptr_t>(R.Ctx)) + "/" +
          std::to_string(R.N) + "/" + ringTag(R.Ring);
  R.DeadlineUs = DeadlineUs;
  return submit(std::move(R));
}

void Server::drain() {
  std::unique_lock<std::mutex> L(QMu);
  DrainCv.wait(L, [&] { return Pending == 0; });
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> G(QMu);
  return S;
}

Server::Health Server::health() const {
  Health H;
  // Dispatcher fallback counters are atomics (readable while workers
  // dispatch); the registry takes its own lock for stats().
  for (const auto &W : Workers) {
    runtime::Dispatcher::DegradeCounters DC = W->D->degradeCounters();
    H.FallbackBinds += DC.FallbackBinds;
    H.FallbackDispatches += DC.FallbackDispatches;
    H.Promotions += DC.Promotions;
    H.TunerFallbacks += DC.TunerFallbacks;
  }
  runtime::KernelRegistry::Stats RS = Reg.stats();
  H.Retries = RS.Retries;
  H.FailedBuilds = RS.FailedBuilds;
  H.Degraded = Reg.degraded();
  std::lock_guard<std::mutex> G(QMu);
  H.Rejected = S.Rejected;
  H.DeadlineExpired = S.DeadlineExpired;
  H.QueueDepth = Queue.size();
  return H;
}

void Server::sweepExpiredLocked(std::vector<Request> &Expired) {
  const size_t Before = Expired.size();
  const auto Now = std::chrono::steady_clock::now();
  for (auto It = Queue.begin(); It != Queue.end();) {
    if (It->HasDeadline && Now >= It->Deadline) {
      Expired.push_back(std::move(*It));
      It = Queue.erase(It);
    } else {
      ++It;
    }
  }
  S.DeadlineExpired += Expired.size() - Before;
}

void Server::replyExpired(std::vector<Request> &Expired) {
  if (Expired.empty())
    return;
  for (Request &R : Expired) {
    Reply Rep;
    Rep.Code = ErrorCode::DeadlineExceeded;
    Rep.Error = "server: deadline exceeded while queued";
    Rep.Done = std::chrono::steady_clock::now();
    R.Promise.set_value(std::move(Rep));
  }
  {
    // Pending drops only after the promises are fulfilled, preserving
    // the drain() invariant: Pending == 0 => every future is ready.
    std::lock_guard<std::mutex> G(QMu);
    Pending -= Expired.size();
  }
  DrainCv.notify_all();
  Expired.clear();
}

//===----------------------------------------------------------------------===//
// Worker: coalesce and dispatch
//===----------------------------------------------------------------------===//

void Server::workerLoop(Worker &W) {
  std::unique_lock<std::mutex> L(QMu);
  // Moves every queued request matching Key (up to MaxBatch total) into
  // Batch, preserving arrival order — except requests whose deadline has
  // already passed, which divert to Expired: a request is either rejected
  // while still queued or served as part of a batch, never torn from one
  // mid-flight. Called under QMu.
  auto TakeMatching = [&](const std::string &Key,
                          std::vector<Request> &Batch,
                          std::vector<Request> &Expired) {
    const auto Now = std::chrono::steady_clock::now();
    for (auto It = Queue.begin();
         It != Queue.end() && Batch.size() < Opts.MaxBatch;) {
      if (It->Key == Key) {
        if (It->HasDeadline && Now >= It->Deadline) {
          ++S.DeadlineExpired;
          Expired.push_back(std::move(*It));
        } else {
          Batch.push_back(std::move(*It));
        }
        It = Queue.erase(It);
      } else {
        ++It;
      }
    }
  };

  for (;;) {
    QCv.wait(L, [&] { return Stop || !Queue.empty(); });
    if (Queue.empty()) {
      if (Stop)
        return;
      continue; // spurious wake or another worker won the race
    }

    // Reject everything already past its deadline — any key, so a
    // stalled dispatch elsewhere (slow compile, injected delay) never
    // leaves expired requests waiting behind an unrelated batch.
    std::vector<Request> Expired;
    sweepExpiredLocked(Expired);
    if (Queue.empty()) {
      L.unlock();
      replyExpired(Expired);
      L.lock();
      continue;
    }

    // Adopt the oldest request's key and hold its batch open until the
    // latency budget measured from ITS arrival expires — the head of the
    // queue never waits longer than one coalesce window.
    const std::string Key = Queue.front().Key;
    const auto Deadline =
        Queue.front().Arrival +
        std::chrono::microseconds(Opts.CoalesceWindowUs);
    std::vector<Request> Batch;
    TakeMatching(Key, Batch, Expired);
    while (!Stop && Batch.size() < Opts.MaxBatch) {
      if (QCv.wait_until(L, Deadline) == std::cv_status::timeout) {
        TakeMatching(Key, Batch, Expired); // final sweep at the deadline
        break;
      }
      TakeMatching(Key, Batch, Expired); // same-key arrival in the window
    }

    L.unlock();
    replyExpired(Expired);
    if (!Batch.empty())
      execute(W, Batch);
    L.lock();
  }
}

void Server::execute(Worker &W, std::vector<Request> &Batch) {
  std::string Error;
  ErrorCode Code = ErrorCode::Ok;
  const bool Ok = dispatchBatch(W, Batch, Error, Code);

  Reply R;
  R.Ok = Ok;
  if (!Ok) {
    R.Code = Code == ErrorCode::Ok ? ErrorCode::DispatchFailed : Code;
    R.Error = Error.empty() ? "server: dispatch failed" : Error;
  }
  R.Done = std::chrono::steady_clock::now();
  for (auto &Req : Batch)
    Req.Promise.set_value(R);

  {
    std::lock_guard<std::mutex> G(QMu);
    ++S.Dispatches;
    if (Batch.size() > 1)
      S.Coalesced += Batch.size();
    S.MaxBatchSize = std::max<std::uint64_t>(S.MaxBatchSize, Batch.size());
    Pending -= Batch.size(); // after the promises: drain() => futures ready
  }
  DrainCv.notify_all();
}

bool Server::dispatchBatch(Worker &W, std::vector<Request> &Batch,
                           std::string &Error, ErrorCode &Code) {
  // Chaos hook: a whole coalesced batch failing at dispatch (the
  // stand-in for a worker losing its backend mid-flight). Every request
  // in the batch gets the same typed DispatchFailed reply.
  if (support::faultShouldFail("server.dispatch")) {
    Error = "server: fault injected at server.dispatch";
    Code = ErrorCode::DispatchFailed;
    return false;
  }
  runtime::Dispatcher &D = *W.D;
  Request &R0 = Batch.front();
  bool Ok = false;

  switch (R0.Kind) {
  case ReqKind::VAdd:
  case ReqKind::VSub:
  case ReqKind::VMul: {
    auto Call = [&](const std::uint64_t *A, const std::uint64_t *B,
                    std::uint64_t *C, size_t N) {
      switch (R0.Kind) {
      case ReqKind::VAdd:
        return D.vadd(R0.Q, A, B, C, N);
      case ReqKind::VSub:
        return D.vsub(R0.Q, A, B, C, N);
      default:
        return D.vmul(R0.Q, A, B, C, N);
      }
    };
    if (Batch.size() == 1) {
      Ok = Call(R0.A, R0.B, R0.C, R0.N); // zero-copy fast path
      break;
    }
    // Element-wise ops are pointwise, so requests of any lengths under
    // one modulus concatenate into a single flat dispatch.
    const unsigned K = runtime::Dispatcher::elemWords(R0.Q);
    size_t Total = 0;
    for (const Request &R : Batch)
      Total += R.N;
    W.SA.resize(Total * K);
    W.SB.resize(Total * K);
    W.SC.resize(Total * K);
    size_t Off = 0;
    for (const Request &R : Batch) {
      std::copy(R.A, R.A + R.N * K, W.SA.data() + Off);
      std::copy(R.B, R.B + R.N * K, W.SB.data() + Off);
      Off += R.N * K;
    }
    Ok = Call(W.SA.data(), W.SB.data(), W.SC.data(), Total);
    if (Ok) {
      Off = 0;
      for (Request &R : Batch) {
        std::copy(W.SC.data() + Off, W.SC.data() + Off + R.N * K, R.C);
        Off += R.N * K;
      }
    }
    break;
  }

  case ReqKind::PolyMul: {
    if (Batch.size() == 1) {
      Ok = D.polyMul(R0.Q, R0.A, R0.B, R0.C, R0.N, 1, R0.Ring);
      break;
    }
    const unsigned K = runtime::Dispatcher::elemWords(R0.Q);
    const size_t Row = R0.N * K; // words per polynomial
    W.SA.resize(Batch.size() * Row);
    W.SB.resize(Batch.size() * Row);
    W.SC.resize(Batch.size() * Row);
    for (size_t I = 0; I < Batch.size(); ++I) {
      std::copy(Batch[I].A, Batch[I].A + Row, W.SA.data() + I * Row);
      std::copy(Batch[I].B, Batch[I].B + Row, W.SB.data() + I * Row);
    }
    Ok = D.polyMul(R0.Q, W.SA.data(), W.SB.data(), W.SC.data(), R0.N,
                   Batch.size(), R0.Ring);
    if (Ok)
      for (size_t I = 0; I < Batch.size(); ++I)
        std::copy(W.SC.data() + I * Row, W.SC.data() + (I + 1) * Row,
                  Batch[I].C);
    break;
  }

  case ReqKind::NttForward:
  case ReqKind::NttInverse: {
    const bool Fwd = R0.Kind == ReqKind::NttForward;
    if (Batch.size() == 1) {
      Ok = Fwd ? D.nttForward(R0.Q, R0.C, R0.N, 1, R0.Ring)
               : D.nttInverse(R0.Q, R0.C, R0.N, 1, R0.Ring);
      break;
    }
    const unsigned K = runtime::Dispatcher::elemWords(R0.Q);
    const size_t Row = R0.N * K;
    W.SA.resize(Batch.size() * Row);
    for (size_t I = 0; I < Batch.size(); ++I)
      std::copy(Batch[I].C, Batch[I].C + Row, W.SA.data() + I * Row);
    Ok = Fwd ? D.nttForward(R0.Q, W.SA.data(), R0.N, Batch.size(), R0.Ring)
             : D.nttInverse(R0.Q, W.SA.data(), R0.N, Batch.size(), R0.Ring);
    if (Ok)
      for (size_t I = 0; I < Batch.size(); ++I)
        std::copy(W.SA.data() + I * Row, W.SA.data() + (I + 1) * Row,
                  Batch[I].C);
    break;
  }

  case ReqKind::RnsPolyMul: {
    if (Batch.size() == 1) {
      Ok = D.rnsPolyMul(*R0.Ctx, R0.A, R0.B, R0.C, R0.N, 1, R0.Ring);
      break;
    }
    const size_t Row = R0.N * R0.Ctx->wideWords();
    W.SA.resize(Batch.size() * Row);
    W.SB.resize(Batch.size() * Row);
    W.SC.resize(Batch.size() * Row);
    for (size_t I = 0; I < Batch.size(); ++I) {
      std::copy(Batch[I].A, Batch[I].A + Row, W.SA.data() + I * Row);
      std::copy(Batch[I].B, Batch[I].B + Row, W.SB.data() + I * Row);
    }
    Ok = D.rnsPolyMul(*R0.Ctx, W.SA.data(), W.SB.data(), W.SC.data(), R0.N,
                      Batch.size(), R0.Ring);
    if (Ok)
      for (size_t I = 0; I < Batch.size(); ++I)
        std::copy(W.SC.data() + I * Row, W.SC.data() + (I + 1) * Row,
                  Batch[I].C);
    break;
  }

  case ReqKind::CtMul: {
    // Ciphertext products carry per-request lazy-domain state in their
    // tensors, so the coalesced batch shares a worker wakeup but each
    // product runs as its own dispatcher-call sequence — cross-request
    // staging would force every operand back to one domain and destroy
    // the NTT elision the tensor API provides. The first failure fails
    // the whole batch (uniform replies, same contract as other kinds).
    Ok = true;
    for (Request &R : Batch)
      if (!fhe::ciphertextMul(D, *R.CtA, *R.CtB, *R.CtOut)) {
        Ok = false;
        break;
      }
    break;
  }
  }

  if (!Ok) {
    Error = D.error();
    // Typed classification straight from the dispatcher — replacing the
    // old blanket DispatchFailed (and any temptation to string-match).
    Code = D.lastErrorCode() == runtime::DispatchErrorCode::InvalidArgument
               ? ErrorCode::InvalidRequest
               : ErrorCode::DispatchFailed;
  }
  return Ok;
}
