//===- support/Format.h - String and table formatting --------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style string formatting and a small fixed-column table printer
/// used by the benchmark harnesses to print the paper's figures as rows.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_SUPPORT_FORMAT_H
#define MOMA_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>
#include <vector>

namespace moma {

/// Returns a std::string produced by vsnprintf over \p Fmt.
std::string formatv(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list form of formatv, for wrappers that take `...` themselves
/// (e.g. bench/Harness.h's reportf). Leaves \p Args consumed, as vsnprintf
/// does; callers own va_start/va_end.
std::string vformatv(const char *Fmt, va_list Args);

/// A minimal column-aligned text table. Benchmarks use it to print one
/// paper figure/table per binary in a stable, diffable layout.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header);

  /// Appends one row; pads or truncates to the header width.
  void addRow(std::vector<std::string> Row);

  /// Renders the table with aligned columns.
  std::string render() const;

  unsigned numRows() const { return static_cast<unsigned>(Rows.size()); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats a nanosecond quantity with an adaptive unit (ns/us/ms/s).
std::string formatNanos(double Nanos);

} // namespace moma

#endif // MOMA_SUPPORT_FORMAT_H
