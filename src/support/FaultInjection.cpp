//===- support/FaultInjection.cpp - Deterministic fault injection ---------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "support/Format.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

namespace moma {
namespace support {

namespace {

/// splitmix64: tiny, well-mixed, and stateful per site so probabilistic
/// draws replay identically for a given (seed, hit index).
std::uint64_t nextRand(std::uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  std::uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// Splits \p S on \p Sep into non-empty trimmed pieces.
std::vector<std::string> splitOn(const std::string &S, char Sep) {
  std::vector<std::string> Out;
  std::size_t Pos = 0;
  while (Pos <= S.size()) {
    std::size_t End = S.find(Sep, Pos);
    if (End == std::string::npos)
      End = S.size();
    std::string Piece = S.substr(Pos, End - Pos);
    // Trim ASCII whitespace so env specs can be written readably.
    while (!Piece.empty() && (Piece.front() == ' ' || Piece.front() == '\t'))
      Piece.erase(Piece.begin());
    while (!Piece.empty() && (Piece.back() == ' ' || Piece.back() == '\t'))
      Piece.pop_back();
    if (!Piece.empty())
      Out.push_back(Piece);
    Pos = End + 1;
  }
  return Out;
}

bool parseU64(const std::string &S, std::uint64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (errno != 0 || End != S.c_str() + S.size())
    return false;
  Out = static_cast<std::uint64_t>(V);
  return true;
}

bool parseProb(const std::string &S, double &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  double V = std::strtod(S.c_str(), &End);
  if (errno != 0 || End != S.c_str() + S.size() || V < 0.0 || V > 1.0)
    return false;
  Out = V;
  return true;
}

/// Parses one policy string (the part after `site=`) into \p P.
/// Grammar: item('+' item)*, item one of
///   fail | fail:N | prob:P | prob:P:seed:S | delay:USEC
bool parsePolicy(const std::string &Text, FaultPolicy &P, std::string *Err) {
  for (const std::string &Item : splitOn(Text, '+')) {
    std::vector<std::string> Tok = splitOn(Item, ':');
    if (Tok.empty())
      continue;
    if (Tok[0] == "fail") {
      if (Tok.size() == 1) {
        P.FailCount = UINT64_MAX;
      } else if (Tok.size() == 2 && parseU64(Tok[1], P.FailCount)) {
        // fail:N
      } else {
        if (Err)
          *Err = formatv("bad fail policy '%s' (want fail or fail:N)",
                         Item.c_str());
        return false;
      }
    } else if (Tok[0] == "prob") {
      bool Ok = Tok.size() >= 2 && parseProb(Tok[1], P.Probability);
      if (Ok && Tok.size() == 2) {
        // prob:P with default seed
      } else if (Ok && Tok.size() == 4 && Tok[2] == "seed" &&
                 parseU64(Tok[3], P.Seed)) {
        // prob:P:seed:S
      } else {
        if (Err)
          *Err = formatv("bad prob policy '%s' (want prob:P or prob:P:seed:S)",
                         Item.c_str());
        return false;
      }
    } else if (Tok[0] == "delay") {
      if (Tok.size() != 2 || !parseU64(Tok[1], P.DelayUs)) {
        if (Err)
          *Err = formatv("bad delay policy '%s' (want delay:USEC)",
                         Item.c_str());
        return false;
      }
    } else {
      if (Err)
        *Err = formatv("unknown fault policy '%s'", Item.c_str());
      return false;
    }
  }
  return true;
}

} // namespace

FaultInjection &FaultInjection::instance() {
  static FaultInjection FI;
  return FI;
}

FaultInjection::FaultInjection() {
  if (const char *Env = std::getenv("MOMA_FAULTS")) {
    EnvSpec = Env;
    std::lock_guard<std::mutex> L(Mu);
    // A malformed env spec installs what it can; sites are best-effort at
    // process startup (there is no one to report the error to yet).
    parseSpecLocked(EnvSpec, nullptr);
    rearmLocked();
  }
}

void FaultInjection::installLocked(const std::string &Site,
                                   const FaultPolicy &P) {
  SiteState &St = Sites[Site];
  St.Policy = P;
  St.HasPolicy = true;
  St.RngState = P.Seed;
}

bool FaultInjection::parseSpecLocked(const std::string &Spec,
                                     std::string *Err) {
  for (const std::string &Entry : splitOn(Spec, ';')) {
    std::size_t Eq = Entry.find('=');
    if (Eq == std::string::npos || Eq == 0 || Eq + 1 >= Entry.size()) {
      if (Err)
        *Err = formatv("bad fault entry '%s' (want site=policy)",
                       Entry.c_str());
      return false;
    }
    FaultPolicy P;
    if (!parsePolicy(Entry.substr(Eq + 1), P, Err))
      return false;
    installLocked(Entry.substr(0, Eq), P);
  }
  return true;
}

void FaultInjection::rearmLocked() {
  bool Any = false;
  for (const auto &KV : Sites)
    Any = Any || KV.second.HasPolicy;
  Armed.store(Any, std::memory_order_relaxed);
}

void FaultInjection::configure(const std::string &Site, const FaultPolicy &P) {
  std::lock_guard<std::mutex> L(Mu);
  installLocked(Site, P);
  rearmLocked();
}

bool FaultInjection::configureFromSpec(const std::string &Spec,
                                       std::string *Err) {
  std::lock_guard<std::mutex> L(Mu);
  bool Ok = parseSpecLocked(Spec, Err);
  rearmLocked();
  return Ok;
}

void FaultInjection::clear() {
  std::lock_guard<std::mutex> L(Mu);
  Sites.clear();
  if (!EnvSpec.empty())
    parseSpecLocked(EnvSpec, nullptr);
  rearmLocked();
}

void FaultInjection::clear(const std::string &Site) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Sites.find(Site);
  if (It != Sites.end()) {
    It->second.Policy = FaultPolicy();
    It->second.HasPolicy = false;
  }
  rearmLocked();
}

bool FaultInjection::shouldFail(const char *Site) {
  if (!Armed.load(std::memory_order_relaxed))
    return false;
  std::uint64_t SleepUs = 0;
  bool Fail = false;
  {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Sites.find(Site);
    if (It == Sites.end() || !It->second.HasPolicy)
      return false;
    SiteState &St = It->second;
    ++St.Counters.Hits;
    SleepUs = St.Policy.DelayUs;
    if (St.Policy.FailCount > 0) {
      Fail = true;
      if (St.Policy.FailCount != UINT64_MAX)
        --St.Policy.FailCount;
    } else if (St.Policy.Probability > 0.0) {
      double Draw = static_cast<double>(nextRand(St.RngState) >> 11) *
                    0x1.0p-53; // uniform in [0, 1)
      Fail = Draw < St.Policy.Probability;
    }
    if (Fail)
      ++St.Counters.Triggers;
  }
  // Sleep outside the lock so a delay site cannot serialize unrelated
  // sites behind it.
  if (SleepUs > 0)
    std::this_thread::sleep_for(std::chrono::microseconds(SleepUs));
  return Fail;
}

FaultInjection::SiteCounters
FaultInjection::counters(const std::string &Site) const {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Sites.find(Site);
  return It == Sites.end() ? SiteCounters() : It->second.Counters;
}

} // namespace support
} // namespace moma
