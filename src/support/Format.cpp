//===- support/Format.cpp - String and table formatting -------------------===//

#include "support/Format.h"

#include <cstdio>

using namespace moma;

std::string moma::vformatv(const char *Fmt, va_list Args) {
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  std::string Result;
  if (Needed > 0) {
    Result.resize(static_cast<size_t>(Needed) + 1);
    std::vsnprintf(Result.data(), Result.size(), Fmt, ArgsCopy);
    Result.resize(static_cast<size_t>(Needed));
  }
  va_end(ArgsCopy);
  return Result;
}

std::string moma::formatv(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Result = vformatv(Fmt, Args);
  va_end(Args);
  return Result;
}

TextTable::TextTable(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void TextTable::addRow(std::vector<std::string> Row) {
  Row.resize(Header.size());
  Rows.push_back(std::move(Row));
}

std::string TextTable::render() const {
  std::vector<size_t> Width(Header.size());
  for (size_t I = 0; I < Header.size(); ++I)
    Width[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Width[I])
        Width[I] = Row[I].size();

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t I = 0; I < Row.size(); ++I) {
      Line += Row[I];
      Line.append(Width[I] - Row[I].size() + 2, ' ');
    }
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    return Line + "\n";
  };

  std::string Out = RenderRow(Header);
  size_t Total = 0;
  for (size_t W : Width)
    Total += W + 2;
  Out.append(Total > 2 ? Total - 2 : Total, '-');
  Out += "\n";
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}

std::string moma::formatNanos(double Nanos) {
  if (Nanos < 1e3)
    return formatv("%.1f ns", Nanos);
  if (Nanos < 1e6)
    return formatv("%.2f us", Nanos / 1e3);
  if (Nanos < 1e9)
    return formatv("%.2f ms", Nanos / 1e6);
  return formatv("%.2f s", Nanos / 1e9);
}
