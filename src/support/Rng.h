//===- support/Rng.h - Deterministic pseudo-random numbers ----*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic RNG (SplitMix64 seeded xoshiro256**) used by tests,
/// benchmarks, and prime generation. Deterministic seeding keeps every
/// experiment in EXPERIMENTS.md reproducible bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_SUPPORT_RNG_H
#define MOMA_SUPPORT_RNG_H

#include <cstdint>

namespace moma {

/// Deterministic 64-bit pseudo-random generator (xoshiro256**).
class Rng {
public:
  explicit Rng(std::uint64_t Seed = 0x9E3779B97F4A7C15ull) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via SplitMix64.
  void reseed(std::uint64_t Seed);

  /// Returns the next 64 pseudo-random bits.
  std::uint64_t next64();

  /// Returns a value uniformly distributed in [0, Bound). Bound must be > 0.
  std::uint64_t below(std::uint64_t Bound);

  /// Returns a value with exactly \p Bits significant bits (top bit set).
  /// Bits must be in [1, 64].
  std::uint64_t bits(unsigned Bits);

private:
  std::uint64_t State[4];
};

} // namespace moma

#endif // MOMA_SUPPORT_RNG_H
