//===- support/ThreadError.h - Per-thread diagnostic slots -----*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The error-reporting building block of the concurrent runtime. The
/// single-threaded subsystems kept one `std::string LastError` member and
/// exposed `const std::string &error()`; once N threads share a
/// KernelRegistry or HostJit, a single slot is a data race and, worse,
/// thread A's failure overwrites the diagnostic thread B is about to
/// read. ThreadError keeps one slot per (object, thread): a failing call
/// writes its own thread's slot, and error() returns the calling thread's
/// most recent diagnostic — the same contract the old API had, per
/// thread.
///
/// References handed out stay valid for the object's lifetime
/// (unordered_map never invalidates references on insert), so the
/// `const std::string &error() const` signatures of the owning classes
/// are unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_SUPPORT_THREADERROR_H
#define MOMA_SUPPORT_THREADERROR_H

#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

namespace moma {
namespace support {

/// One diagnostic string per calling thread. All methods are thread-safe;
/// each thread only ever observes its own slot's contents.
class ThreadError {
public:
  /// The calling thread's slot (created empty on first access).
  const std::string &get() const { return slot(); }

  /// True when the calling thread's slot is empty (no failure since the
  /// last clear()).
  bool empty() const { return slot().empty(); }

  void set(std::string Msg) { slot() = std::move(Msg); }
  void clear() { slot().clear(); }

private:
  std::string &slot() const {
    std::lock_guard<std::mutex> L(Mu);
    return Slots[std::this_thread::get_id()];
  }

  mutable std::mutex Mu;
  /// Slots live as long as the owning object; a handful of strings per
  /// worker thread, never erased (thread ids may be reused — the slot is
  /// then simply inherited, which is harmless for diagnostics).
  mutable std::unordered_map<std::thread::id, std::string> Slots;
};

} // namespace support
} // namespace moma

#endif // MOMA_SUPPORT_THREADERROR_H
