//===- support/Rng.cpp - Deterministic pseudo-random numbers --------------===//

#include "support/Rng.h"

#include <cassert>

using namespace moma;

static std::uint64_t splitMix64(std::uint64_t &X) {
  X += 0x9E3779B97F4A7C15ull;
  std::uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

static std::uint64_t rotl(std::uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

void Rng::reseed(std::uint64_t Seed) {
  for (auto &S : State)
    S = splitMix64(Seed);
  // Avoid the all-zero state, which xoshiro cannot escape.
  if (!(State[0] | State[1] | State[2] | State[3]))
    State[0] = 1;
}

std::uint64_t Rng::next64() {
  std::uint64_t Result = rotl(State[1] * 5, 7) * 9;
  std::uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

std::uint64_t Rng::below(std::uint64_t Bound) {
  assert(Bound > 0 && "below() requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  std::uint64_t Threshold = -Bound % Bound;
  for (;;) {
    std::uint64_t R = next64();
    if (R >= Threshold)
      return R % Bound;
  }
}

std::uint64_t Rng::bits(unsigned Bits) {
  assert(Bits >= 1 && Bits <= 64 && "bit count out of range");
  std::uint64_t R = next64();
  if (Bits < 64)
    R &= (1ull << Bits) - 1;
  R |= 1ull << (Bits - 1);
  return R;
}
