//===- support/Error.h - Fatal error handling -----------------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal error reporting for unrecoverable conditions. The library does not
/// use exceptions (LLVM style); misuse of an API that cannot be expressed as
/// an assert (e.g. user-provided moduli failing validation) funnels through
/// fatalError, which prints a message and aborts.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_SUPPORT_ERROR_H
#define MOMA_SUPPORT_ERROR_H

#include <string>

namespace moma {

/// Prints \p Msg to stderr and aborts. Never returns.
[[noreturn]] void fatalError(const std::string &Msg);

/// Marks a point in the code that is unconditionally a bug to reach.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

#define moma_unreachable(MSG)                                                  \
  ::moma::unreachableInternal(MSG, __FILE__, __LINE__)

} // namespace moma

#endif // MOMA_SUPPORT_ERROR_H
