//===- support/FaultInjection.h - Deterministic fault injection --*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named fault sites for chaos testing the
/// runtime's degradation ladder. Failure-prone operations (JIT compiles,
/// dlopen, plan builds, autotuner candidate timing, sim-GPU launches, server
/// dispatch) call \c faultShouldFail("site.name") at the point where a real
/// failure would surface; when a policy is armed for that site the call
/// reports the failure (and/or sleeps an injected delay), letting tests and
/// CI drive every recovery path deterministically.
///
/// Sites are plain dotted strings; the catalog lives in DESIGN.md ("Failure
/// model & the degradation ladder"). Policies:
///
///   - fail-N-times: the next N evaluations fail, then the site heals.
///     N = UINT64_MAX means persistent failure.
///   - probabilistic: each evaluation fails with probability P, drawn from
///     a per-site seeded RNG so a given (seed, hit index) sequence is
///     reproducible.
///   - delay: every evaluation sleeps D microseconds before returning.
///     Composable with either failure mode (stalled-compile scenarios).
///
/// Configuration comes from the API (tests) or the \c MOMA_FAULTS
/// environment variable (CI), parsed once on first use:
///
///   MOMA_FAULTS='jit.compile=fail:2;server.dispatch=prob:0.5:seed:7'
///   MOMA_FAULTS='jit.compile=fail'             # persistent
///   MOMA_FAULTS='jit.compile=delay:1000+fail'  # 1ms stall, then fail
///
/// \c clear() restores the environment baseline rather than an empty table,
/// so a test suite run under a global MOMA_FAULTS degradation still sees the
/// intended ambient faults after per-test cleanup.
///
/// When nothing is armed the per-site bookkeeping is skipped entirely: the
/// fast path is one relaxed atomic load, so instrumented sites cost nothing
/// in production.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_SUPPORT_FAULTINJECTION_H
#define MOMA_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace moma {
namespace support {

/// What an armed site does when evaluated. Default-constructed = no-op.
struct FaultPolicy {
  /// Remaining evaluations that fail. UINT64_MAX = fail forever; 0 with
  /// Probability == 0 means the site never fails (delay-only policies).
  std::uint64_t FailCount = 0;

  /// Per-evaluation failure probability in [0, 1], drawn from a seeded
  /// per-site RNG. Checked only when FailCount is exhausted/zero.
  double Probability = 0.0;

  /// Seed for the probabilistic draw stream.
  std::uint64_t Seed = 0;

  /// Injected latency in microseconds, slept on every evaluation whether
  /// or not the site fails.
  std::uint64_t DelayUs = 0;

  /// Persistent-failure convenience (fail-N with N = forever).
  static FaultPolicy failAlways() {
    FaultPolicy P;
    P.FailCount = UINT64_MAX;
    return P;
  }
  static FaultPolicy failTimes(std::uint64_t N) {
    FaultPolicy P;
    P.FailCount = N;
    return P;
  }
  static FaultPolicy failProb(double Prob, std::uint64_t Seed) {
    FaultPolicy P;
    P.Probability = Prob;
    P.Seed = Seed;
    return P;
  }
  static FaultPolicy delayUs(std::uint64_t Us) {
    FaultPolicy P;
    P.DelayUs = Us;
    return P;
  }
};

/// Process-wide singleton holding per-site policies and counters. All
/// methods are thread-safe; \c shouldFail is called from worker, JIT, and
/// probe threads concurrently.
class FaultInjection {
public:
  /// Lazily constructed; the first call parses MOMA_FAULTS.
  static FaultInjection &instance();

  /// Installs (or replaces) the policy for \p Site and arms the registry.
  void configure(const std::string &Site, const FaultPolicy &P);

  /// Parses a `site=policy[;site=policy...]` spec (the MOMA_FAULTS
  /// grammar) and installs every entry. Returns false and sets \p Err on a
  /// malformed spec; entries before the bad one stay installed.
  bool configureFromSpec(const std::string &Spec, std::string *Err = nullptr);

  /// Removes every API-configured policy and zeroes all counters, then
  /// re-applies the MOMA_FAULTS environment baseline (if any). Tests call
  /// this in SetUp/TearDown.
  void clear();

  /// Removes the policy for one site (counters for it are kept).
  void clear(const std::string &Site);

  /// The instrumented check. Records a hit for \p Site, sleeps any
  /// configured delay, and returns true when the site must fail this time
  /// (recording a trigger). When nothing is armed anywhere this returns
  /// false without touching the table.
  bool shouldFail(const char *Site);

  /// Per-site observation counters, for chaos-test arithmetic.
  struct SiteCounters {
    std::uint64_t Hits = 0;     ///< evaluations while armed
    std::uint64_t Triggers = 0; ///< evaluations that failed
  };
  SiteCounters counters(const std::string &Site) const;

  /// True when any site currently has a policy installed.
  bool anyConfigured() const { return Armed.load(std::memory_order_relaxed); }

private:
  FaultInjection();

  struct SiteState {
    FaultPolicy Policy;
    bool HasPolicy = false;
    std::uint64_t RngState = 0; ///< splitmix64 stream for prob draws
    SiteCounters Counters;
  };

  void installLocked(const std::string &Site, const FaultPolicy &P);
  bool parseSpecLocked(const std::string &Spec, std::string *Err);
  void rearmLocked();

  mutable std::mutex Mu;
  std::map<std::string, SiteState> Sites;
  std::string EnvSpec; ///< MOMA_FAULTS snapshot, re-applied by clear()
  std::atomic<bool> Armed{false};
};

/// Site-check shorthand with the zero-cost disarmed fast path inlined at
/// the call site.
inline bool faultShouldFail(const char *Site) {
  FaultInjection &FI = FaultInjection::instance();
  if (!FI.anyConfigured())
    return false;
  return FI.shouldFail(Site);
}

} // namespace support
} // namespace moma

#endif // MOMA_SUPPORT_FAULTINJECTION_H
