//===- support/Error.cpp - Fatal error handling ---------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace moma;

void moma::fatalError(const std::string &Msg) {
  std::fprintf(stderr, "moma fatal error: %s\n", Msg.c_str());
  std::abort();
}

void moma::unreachableInternal(const char *Msg, const char *File,
                               unsigned Line) {
  std::fprintf(stderr, "moma unreachable at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
