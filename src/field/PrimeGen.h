//===- field/PrimeGen.h - NTT-friendly prime generation -------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prime generation for the paper's evaluation setup (§5.2): moduli of
/// bit-width k-4 for a k-bit container (so Barrett's μ fits k bits), with
/// q ≡ 1 (mod 2^S) so that 2^S-point NTTs exist (a primitive 2^S-th root of
/// unity exists in Z_q iff 2^S | q-1). No specialized primes (Goldilocks,
/// Montgomery-friendly) are used, matching §5.3's "general-purpose" claim.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_FIELD_PRIMEGEN_H
#define MOMA_FIELD_PRIMEGEN_H

#include "mw/Bignum.h"

namespace moma {

class Rng;

namespace field {

/// Miller-Rabin probabilistic primality test with \p Rounds random bases.
/// Deterministic for the RNG seed; error probability <= 4^-Rounds.
bool isProbablePrime(const mw::Bignum &N, Rng &R, unsigned Rounds = 24);

/// Returns a prime of exactly \p Bits bits with q ≡ 1 (mod 2^TwoAdicity).
/// Deterministic for a given (Bits, TwoAdicity, Seed). Results are cached
/// per process. Aborts if Bits is too small to satisfy the constraints.
mw::Bignum nttPrime(unsigned Bits, unsigned TwoAdicity,
                    std::uint64_t Seed = 2025);

/// Convenience: the evaluation modulus for a \p ContainerBits-bit MoMA
/// container — bit-width ContainerBits-4, 2-adicity \p TwoAdicity
/// (default 24 supports NTTs up to 2^24 points, larger than any size in
/// the paper's figures).
mw::Bignum evalModulus(unsigned ContainerBits, unsigned TwoAdicity = 24);

} // namespace field
} // namespace moma

#endif // MOMA_FIELD_PRIMEGEN_H
