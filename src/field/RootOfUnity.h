//===- field/RootOfUnity.h - Primitive roots of unity ---------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Primitive root-of-unity search in Z_q for NTT twiddle factors
/// (paper Eq. 12: ω_n is the n-th primitive root of unity mod p).
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_FIELD_ROOTOFUNITY_H
#define MOMA_FIELD_ROOTOFUNITY_H

#include "mw/Bignum.h"

namespace moma {
namespace field {

/// Returns a primitive 2^S-th root of unity mod prime \p Q. Requires
/// 2^S | Q - 1. Deterministic. Aborts if the two-adicity is insufficient.
mw::Bignum rootOfUnityPow2(const mw::Bignum &Q, unsigned S);

/// Returns a primitive N-th root of unity mod prime \p Q for N = 2^S.
/// Convenience wrapper taking the NTT size directly (N must be a power of
/// two dividing Q-1).
mw::Bignum rootOfUnity(const mw::Bignum &Q, std::uint64_t N);

/// Returns the multiplicative order's 2-adic part ceiling: the largest S
/// with 2^S | Q - 1.
unsigned twoAdicity(const mw::Bignum &Q);

} // namespace field
} // namespace moma

#endif // MOMA_FIELD_ROOTOFUNITY_H
