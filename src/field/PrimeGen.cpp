//===- field/PrimeGen.cpp - NTT-friendly prime generation -----------------===//

#include "field/PrimeGen.h"

#include "support/Error.h"
#include "support/Rng.h"

#include <map>
#include <mutex>

using namespace moma;
using namespace moma::field;
using mw::Bignum;

/// Small primes for cheap trial division before Miller-Rabin.
static const unsigned SmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103,
    107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173,
    179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241,
    251, 257, 263, 269, 271, 277, 281, 283, 293};

static bool passesTrialDivision(const Bignum &N) {
  for (unsigned P : SmallPrimes) {
    if ((N % Bignum(P)).isZero())
      return N == Bignum(P);
  }
  return true;
}

bool moma::field::isProbablePrime(const Bignum &N, Rng &R, unsigned Rounds) {
  if (N < Bignum(2))
    return false;
  if (N == Bignum(2) || N == Bignum(3))
    return true;
  if (!N.isOdd())
    return false;
  if (!passesTrialDivision(N))
    return false;

  // Write N-1 = D * 2^S with D odd.
  Bignum NMinus1 = N - Bignum(1);
  Bignum D = NMinus1;
  unsigned S = 0;
  while (!D.isOdd()) {
    D = D >> 1;
    ++S;
  }

  Bignum NMinus3 = N - Bignum(3);
  for (unsigned Round = 0; Round < Rounds; ++Round) {
    // Base in [2, N-2].
    Bignum A = Bignum::random(R, NMinus3) + Bignum(2);
    Bignum X = A.powMod(D, N);
    if (X.isOne() || X == NMinus1)
      continue;
    bool Witness = true;
    for (unsigned I = 1; I < S; ++I) {
      X = X.mulMod(X, N);
      if (X == NMinus1) {
        Witness = false;
        break;
      }
    }
    if (Witness)
      return false;
  }
  return true;
}

Bignum moma::field::nttPrime(unsigned Bits, unsigned TwoAdicity,
                             std::uint64_t Seed) {
  if (Bits < TwoAdicity + 2)
    fatalError("nttPrime: " + std::to_string(Bits) +
               " bits cannot host 2-adicity " + std::to_string(TwoAdicity));

  static std::mutex CacheMutex;
  static std::map<std::tuple<unsigned, unsigned, std::uint64_t>, Bignum>
      Cache;
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    auto It = Cache.find({Bits, TwoAdicity, Seed});
    if (It != Cache.end())
      return It->second;
  }

  // Candidates q = C * 2^TwoAdicity + 1 where C is odd with exactly
  // Bits - TwoAdicity bits, so q has exactly Bits bits.
  Rng R(Seed ^ (static_cast<std::uint64_t>(Bits) << 32) ^ TwoAdicity);
  unsigned CBits = Bits - TwoAdicity;
  for (unsigned Attempt = 0; Attempt < 200000; ++Attempt) {
    Bignum C = Bignum::randomBits(R, CBits);
    if (!C.isOdd())
      C += Bignum(1);
    if (C.bitWidth() != CBits)
      continue; // the +1 overflowed into an extra bit
    Bignum Q = (C << TwoAdicity) + Bignum(1);
    if (Q.bitWidth() != Bits)
      continue;
    if (!isProbablePrime(Q, R))
      continue;
    std::lock_guard<std::mutex> Lock(CacheMutex);
    Cache.emplace(std::make_tuple(Bits, TwoAdicity, Seed), Q);
    return Q;
  }
  fatalError("nttPrime: no prime found (should be unreachable)");
}

Bignum moma::field::evalModulus(unsigned ContainerBits, unsigned TwoAdicity) {
  if (ContainerBits < 16)
    fatalError("evalModulus: container too small");
  return nttPrime(ContainerBits - 4, TwoAdicity);
}
