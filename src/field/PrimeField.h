//===- field/PrimeField.h - Prime field over MWUInt -----------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A prime field Z_q over W-word MoMA integers: Barrett-reduced arithmetic
/// (the paper's default) plus root-of-unity and inverse utilities needed by
/// the NTT engine. This is the type the example applications work with.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_FIELD_PRIMEFIELD_H
#define MOMA_FIELD_PRIMEFIELD_H

#include "field/PrimeGen.h"
#include "field/RootOfUnity.h"
#include "mw/Barrett.h"

namespace moma {
namespace field {

/// Z_q with W-word elements and Barrett reduction.
template <unsigned W> class PrimeField {
public:
  using Element = mw::MWUInt<W>;

  PrimeField() = default;

  /// Builds the field for prime modulus \p Q (bit-width <= 64*W - 4).
  explicit PrimeField(const mw::Bignum &Q,
                      mw::MulAlgorithm Alg = mw::MulAlgorithm::Schoolbook)
      : QBig(Q), Ctx(mw::Barrett<W>::create(Q, Alg)) {}

  /// The evaluation field of the paper for a 64*W-bit container: modulus of
  /// bit-width 64*W - 4 with 2-adicity \p TwoAdicity.
  static PrimeField evaluationField(
      unsigned TwoAdicity = 24,
      mw::MulAlgorithm Alg = mw::MulAlgorithm::Schoolbook) {
    return PrimeField(evalModulus(64 * W, TwoAdicity), Alg);
  }

  const mw::Bignum &modulusBig() const { return QBig; }
  const Element &modulus() const { return Ctx.modulus(); }
  const mw::Barrett<W> &barrett() const { return Ctx; }

  Element zero() const { return Element(); }
  Element one() const { return Element::fromWord(1); }

  /// Reduces an arbitrary Bignum into the field.
  Element fromBignum(const mw::Bignum &N) const {
    return Element::fromBignum(N % QBig);
  }

  Element add(const Element &A, const Element &B) const {
    return Ctx.addMod(A, B);
  }
  Element sub(const Element &A, const Element &B) const {
    return Ctx.subMod(A, B);
  }
  Element mul(const Element &A, const Element &B) const {
    return Ctx.mulMod(A, B);
  }
  Element neg(const Element &A) const { return Ctx.subMod(zero(), A); }

  Element pow(const Element &Base, const mw::Bignum &Exp) const {
    return Ctx.powMod(Base, Exp);
  }

  /// Multiplicative inverse by Fermat: A^(q-2) mod q. A must be nonzero.
  Element inv(const Element &A) const {
    assert(!A.isZero() && "zero has no inverse");
    return pow(A, QBig - mw::Bignum(2));
  }

  /// Primitive N-th root of unity (N a power of two dividing q-1).
  Element nthRoot(std::uint64_t N) const {
    return Element::fromBignum(rootOfUnity(QBig, N));
  }

private:
  mw::Bignum QBig;
  mw::Barrett<W> Ctx;
};

} // namespace field
} // namespace moma

#endif // MOMA_FIELD_PRIMEFIELD_H
