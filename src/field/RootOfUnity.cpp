//===- field/RootOfUnity.cpp - Primitive roots of unity -------------------===//

#include "field/RootOfUnity.h"

#include "support/Error.h"
#include "support/Rng.h"

using namespace moma;
using namespace moma::field;
using mw::Bignum;

unsigned moma::field::twoAdicity(const Bignum &Q) {
  Bignum M = Q - Bignum(1);
  unsigned S = 0;
  while (!M.isZero() && !M.isOdd()) {
    M = M >> 1;
    ++S;
  }
  return S;
}

Bignum moma::field::rootOfUnityPow2(const Bignum &Q, unsigned S) {
  unsigned MaxS = twoAdicity(Q);
  if (S > MaxS)
    fatalError("rootOfUnityPow2: 2^" + std::to_string(S) +
               " does not divide Q-1 (2-adicity " + std::to_string(MaxS) +
               ")");
  if (S == 0)
    return Bignum(1);

  // Find an element G of order exactly 2^MaxS: take X^((Q-1)/2^MaxS) for
  // random X; it has order 2^MaxS iff its 2^(MaxS-1) power is Q-1 (i.e. -1),
  // which happens for half of all X. Then ω = G^(2^(MaxS-S)) has order 2^S.
  Bignum Odd = (Q - Bignum(1)) >> MaxS;
  Bignum QMinus1 = Q - Bignum(1);
  Rng R(0xD1CEull ^ Q.low64());
  for (unsigned Attempt = 0; Attempt < 4096; ++Attempt) {
    Bignum X = Bignum::random(R, Q - Bignum(2)) + Bignum(2);
    Bignum G = X.powMod(Odd, Q);
    if (G.isOne())
      continue;
    Bignum Check = G.powMod(Bignum::powerOfTwo(MaxS - 1), Q);
    if (Check != QMinus1)
      continue;
    return G.powMod(Bignum::powerOfTwo(MaxS - S), Q);
  }
  fatalError("rootOfUnityPow2: no generator found; is Q prime?");
}

Bignum moma::field::rootOfUnity(const Bignum &Q, std::uint64_t N) {
  if (N == 0 || (N & (N - 1)) != 0)
    fatalError("rootOfUnity: N must be a power of two");
  unsigned S = 0;
  while ((1ull << S) < N)
    ++S;
  return rootOfUnityPow2(Q, S);
}
