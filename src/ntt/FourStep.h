//===- ntt/FourStep.h - Four-step NTT decomposition -----------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Four-step NTT: an n = n1*n2 transform decomposed into n2 column
/// transforms of size n1, a twiddle scaling, n1 row transforms of size n2,
/// and a transpose. This is how the NTTX lineage the paper builds on
/// ([58, 59]) and GPU NTT libraries structure sizes that exceed one
/// thread block / shared memory tile — the regime behind the paper's
/// Figure 3a shared-memory cliff discussion.
///
/// With x viewed as an n1 x n2 matrix (row-major, X[r*n2 + c]):
///   1. NTT of length n1 down every column,
///   2. scale element (r, c) by w_n^(r*c),
///   3. NTT of length n2 along every row,
///   4. transpose: output index k = c*n1 + r.
///
/// The result equals the length-n transform with the same root. Each
/// small transform fits a shared-memory tile of the simulated device.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_NTT_FOURSTEP_H
#define MOMA_NTT_FOURSTEP_H

#include "ntt/Ntt.h"

namespace moma {
namespace ntt {

/// n = N1 * N2 four-step plan over Z_q.
template <unsigned W> class FourStepPlan {
public:
  using Field = field::PrimeField<W>;
  using Element = typename Field::Element;

  FourStepPlan(const Field &F, size_t N1, size_t N2)
      : ColPlan(F, N1), RowPlan(F, N2), N1(N1), N2(N2) {
    const Field &Fld = ColPlan.field();
    size_t N = N1 * N2;
    // The inter-step twiddles w_n^(r*c), precomputed row by row like the
    // stage tables of the radix-2 plan.
    Element Root = Fld.nthRoot(N);
    TwiddleGrid.resize(N);
    Element RowBase = Fld.one();
    for (size_t R = 0; R < N1; ++R) {
      Element Cur = Fld.one();
      for (size_t C = 0; C < N2; ++C) {
        TwiddleGrid[R * N2 + C] = Cur;
        Cur = Fld.mul(Cur, RowBase);
      }
      RowBase = Fld.mul(RowBase, Root);
    }
  }

  const Field &field() const { return ColPlan.field(); }
  size_t size() const { return N1 * N2; }

  /// Out-of-place forward transform: Out[k] = sum_j X[j] w^(jk), matching
  /// NttPlan::forward on the same field and total size.
  void forward(const Element *X, Element *Out) const {
    const Field &F = ColPlan.field();
    std::vector<Element> Col(N1), Work(N1 * N2);

    // Step 1: column transforms (stride-N2 gathers).
    for (size_t C = 0; C < N2; ++C) {
      for (size_t R = 0; R < N1; ++R)
        Col[R] = X[R * N2 + C];
      ColPlan.forward(Col.data());
      for (size_t R = 0; R < N1; ++R)
        Work[R * N2 + C] = Col[R];
    }
    // Step 2: twiddle scaling.
    for (size_t I = 0; I < N1 * N2; ++I)
      Work[I] = F.mul(Work[I], TwiddleGrid[I]);
    // Step 3: row transforms (contiguous).
    for (size_t R = 0; R < N1; ++R)
      RowPlan.forward(Work.data() + R * N2);
    // Step 4: transpose into the output order k = c*N1 + r.
    for (size_t R = 0; R < N1; ++R)
      for (size_t C = 0; C < N2; ++C)
        Out[C * N1 + R] = Work[R * N2 + C];
  }

  /// Batched forward over the simulated device: each batch element is an
  /// independent transform, mirroring §5.1 batch processing.
  void forwardBatch(const sim::Device &Dev, const Element *X, Element *Out,
                    size_t Batch) const {
    Dev.parallelFor(Batch, [&](std::uint64_t B) {
      forward(X + B * size(), Out + B * size());
    });
  }

private:
  NttPlan<W> ColPlan;
  NttPlan<W> RowPlan;
  size_t N1, N2;
  std::vector<Element> TwiddleGrid;
};

} // namespace ntt
} // namespace moma

#endif // MOMA_NTT_FOURSTEP_H
