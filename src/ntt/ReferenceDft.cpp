//===- ntt/ReferenceDft.cpp - O(n^2) modular DFT oracle ---------------------===//

#include "ntt/ReferenceDft.h"

#include "support/Error.h"

using namespace moma;
using namespace moma::ntt;
using mw::Bignum;

std::vector<Bignum> moma::ntt::referenceDft(const std::vector<Bignum> &X,
                                            const Bignum &Omega,
                                            const Bignum &Q) {
  size_t N = X.size();
  std::vector<Bignum> Y(N);
  // Precompute Omega^j once; the k-loop then walks it with one modular
  // multiplication per term.
  for (size_t K = 0; K < N; ++K) {
    Bignum Acc;
    Bignum WK = Omega.powMod(Bignum(K), Q);
    Bignum Cur(1);
    for (size_t J = 0; J < N; ++J) {
      Acc = (Acc + X[J].mulMod(Cur, Q)) % Q;
      Cur = Cur.mulMod(WK, Q);
    }
    Y[K] = Acc;
  }
  return Y;
}

std::vector<Bignum> moma::ntt::referencePolyMul(const std::vector<Bignum> &A,
                                                const std::vector<Bignum> &B,
                                                const Bignum &Q) {
  if (A.empty() || B.empty())
    return {};
  std::vector<Bignum> C(A.size() + B.size() - 1);
  for (size_t I = 0; I < A.size(); ++I)
    for (size_t J = 0; J < B.size(); ++J)
      C[I + J] = (C[I + J] + A[I].mulMod(B[J], Q)) % Q;
  return C;
}

std::vector<Bignum>
moma::ntt::referencePolyMulRing(const std::vector<Bignum> &A,
                                const std::vector<Bignum> &B,
                                const Bignum &Q, bool Negacyclic) {
  size_t N = A.size();
  if (B.size() != N)
    fatalError("referencePolyMulRing: ring inputs must both have length n");
  std::vector<Bignum> C(N, Bignum(0));
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J) {
      Bignum T = A[I].mulMod(B[J], Q);
      size_t K = (I + J) % N;
      if (I + J >= N && Negacyclic)
        C[K] = C[K].subMod(T, Q);
      else
        C[K] = C[K].addMod(T, Q);
    }
  return C;
}
