//===- ntt/ReferenceDft.h - O(n^2) modular DFT oracle ---------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct evaluation of paper Eq. 12 — y(k) = Σ x(j)·ω^(jk) mod p — on
/// Bignum, independent of the fast transform, Barrett reduction, and the
/// fixed-width types. The NTT tests compare against this oracle.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_NTT_REFERENCEDFT_H
#define MOMA_NTT_REFERENCEDFT_H

#include "mw/Bignum.h"

#include <vector>

namespace moma {
namespace ntt {

/// y(k) = sum_j x(j) * Omega^(j*k) mod Q, for k in [0, n).
std::vector<mw::Bignum> referenceDft(const std::vector<mw::Bignum> &X,
                                     const mw::Bignum &Omega,
                                     const mw::Bignum &Q);

/// Schoolbook polynomial product mod Q (paper Eq. 11), length
/// |A| + |B| - 1; the oracle for polyMulNtt.
std::vector<mw::Bignum> referencePolyMul(const std::vector<mw::Bignum> &A,
                                         const std::vector<mw::Bignum> &B,
                                         const mw::Bignum &Q);

/// Schoolbook ring product C = A * B over Z_Q[x]/(x^n -+ 1) with
/// n = |A| = |B|: degrees >= n wrap onto k - n, negated when
/// \p Negacyclic (x^n = -1). The shared oracle for the cyclic and
/// negacyclic runtime polyMul paths (Q need not be prime — the RNS
/// suites pass Q = M).
std::vector<mw::Bignum>
referencePolyMulRing(const std::vector<mw::Bignum> &A,
                     const std::vector<mw::Bignum> &B, const mw::Bignum &Q,
                     bool Negacyclic);

} // namespace ntt
} // namespace moma

#endif // MOMA_NTT_REFERENCEDFT_H
