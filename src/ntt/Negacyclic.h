//===- ntt/Negacyclic.h - Negacyclic (x^n + 1) transforms -----*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Negacyclic NTT: polynomial products in Z_q[x]/(x^n + 1), the ring FHE
/// schemes (BGV/BFV/CKKS) actually use (paper §1/§2.3 motivation; listed
/// as an extension in DESIGN.md). Implemented by twisting with powers of
/// ψ, a primitive 2n-th root of unity: multiply input i by ψ^i, run the
/// cyclic NTT, and untwist with ψ^{-i} n^{-1} after the inverse.
///
/// Requires 2n | q-1 (one more factor of two than the cyclic transform).
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_NTT_NEGACYCLIC_H
#define MOMA_NTT_NEGACYCLIC_H

#include "ntt/Ntt.h"

namespace moma {
namespace ntt {

/// Plan for n-point negacyclic transforms over Z_q.
template <unsigned W> class NegacyclicPlan {
public:
  using Field = field::PrimeField<W>;
  using Element = typename Field::Element;

  NegacyclicPlan(const Field &F, size_t N) : Cyclic(F, N), N(N) {
    const Field &Fld = Cyclic.field();
    // psi: primitive 2n-th root with psi^2 = the cyclic plan's omega
    // ordering requirement is only psi^n = -1.
    Element Psi = Fld.nthRoot(2 * N);
    Element PsiInv = Fld.inv(Psi);
    Twist.resize(N);
    Untwist.resize(N);
    Element Cur = Fld.one(), CurInv = Fld.one();
    for (size_t I = 0; I < N; ++I) {
      Twist[I] = Cur;
      Untwist[I] = CurInv;
      Cur = Fld.mul(Cur, Psi);
      CurInv = Fld.mul(CurInv, PsiInv);
    }
  }

  const Field &field() const { return Cyclic.field(); }
  size_t size() const { return N; }
  const NttPlan<W> &cyclicPlan() const { return Cyclic; }

  /// In-place forward negacyclic transform.
  void forward(Element *X) const {
    const Field &F = Cyclic.field();
    for (size_t I = 0; I < N; ++I)
      X[I] = F.mul(X[I], Twist[I]);
    Cyclic.forward(X);
  }

  /// In-place inverse negacyclic transform.
  void inverse(Element *X) const {
    const Field &F = Cyclic.field();
    Cyclic.inverse(X);
    for (size_t I = 0; I < N; ++I)
      X[I] = F.mul(X[I], Untwist[I]);
  }

private:
  NttPlan<W> Cyclic;
  size_t N;
  std::vector<Element> Twist;
  std::vector<Element> Untwist;
};

/// C = A * B in Z_q[x]/(x^n + 1): coefficients wrap with a sign flip.
/// Inputs are length-n coefficient vectors (shorter inputs are padded).
template <unsigned W>
std::vector<typename field::PrimeField<W>::Element>
polyMulNegacyclic(const NegacyclicPlan<W> &Plan,
                  std::vector<typename field::PrimeField<W>::Element> A,
                  std::vector<typename field::PrimeField<W>::Element> B) {
  const auto &F = Plan.field();
  size_t N = Plan.size();
  if (A.size() > N || B.size() > N)
    fatalError("polyMulNegacyclic: inputs longer than the ring degree");
  A.resize(N, F.zero());
  B.resize(N, F.zero());
  Plan.forward(A.data());
  Plan.forward(B.data());
  for (size_t I = 0; I < N; ++I)
    A[I] = F.mul(A[I], B[I]);
  Plan.inverse(A.data());
  return A;
}

} // namespace ntt
} // namespace moma

#endif // MOMA_NTT_NEGACYCLIC_H
