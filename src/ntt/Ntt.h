//===- ntt/Ntt.h - Number theoretic transform engine ----------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative radix-2 NTT over MoMA prime fields (paper Eq. 12 and §5.3).
///
/// NttPlan precomputes bit-reversal tables and per-stage twiddle tables for
/// one (field, size) pair; forward/inverse run the classic Cooley-Tukey
/// decimation-in-time schedule whose butterfly is exactly the paper's
/// generated kernel: one modular multiplication, one modular addition, one
/// modular subtraction per butterfly ((n log2 n)/2 butterflies total, the
/// denominator of the paper's runtime-per-butterfly metric).
///
/// Batching follows §5.1: independent transforms spread over the simulated
/// device; a stage-parallel mode maps one virtual thread per butterfly for
/// single transforms.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_NTT_NTT_H
#define MOMA_NTT_NTT_H

#include "field/PrimeField.h"
#include "sim/Launch.h"
#include "support/Error.h"

#include <vector>

namespace moma {
namespace ntt {

/// Precomputed plan for n-point NTTs over Z_q with W-word elements.
template <unsigned W> class NttPlan {
public:
  using Field = field::PrimeField<W>;
  using Element = typename Field::Element;

  /// Builds the plan. \p N must be a power of two with 2^s | q-1.
  NttPlan(const Field &F, size_t N) : F(F), N(N) {
    if (N < 2 || (N & (N - 1)) != 0)
      fatalError("NttPlan: size must be a power of two >= 2");
    LogN = 0;
    while ((size_t(1) << LogN) < N)
      ++LogN;

    Element Root = F.nthRoot(N); // aborts if 2-adicity is insufficient
    Element RootInv = F.inv(Root);
    NInv = F.inv(F.fromBignum(mw::Bignum(N)));

    BitRev.resize(N);
    for (size_t I = 0; I < N; ++I) {
      size_t R = 0;
      for (unsigned B = 0; B < LogN; ++B)
        R |= ((I >> B) & 1) << (LogN - 1 - B);
      BitRev[I] = static_cast<std::uint32_t>(R);
    }

    // Stage s (len = 2^s) uses w_{2len}^j for j in [0, len); tables are
    // concatenated with stage offsets at len-1 (total n-1 entries).
    Twiddles.resize(N - 1);
    InvTwiddles.resize(N - 1);
    for (size_t Len = 1; Len < N; Len <<= 1) {
      // w_{2len} = Root^(N / (2len)).
      Element WLen = F.pow(Root, mw::Bignum(N / (2 * Len)));
      Element WLenInv = F.pow(RootInv, mw::Bignum(N / (2 * Len)));
      Element Cur = F.one(), CurInv = F.one();
      for (size_t J = 0; J < Len; ++J) {
        Twiddles[Len - 1 + J] = Cur;
        InvTwiddles[Len - 1 + J] = CurInv;
        Cur = F.mul(Cur, WLen);
        CurInv = F.mul(CurInv, WLenInv);
      }
    }
  }

  const Field &field() const { return F; }
  size_t size() const { return N; }
  unsigned log2Size() const { return LogN; }

  /// Number of butterflies per transform: (n log2 n) / 2.
  std::uint64_t butterflies() const {
    return static_cast<std::uint64_t>(N) / 2 * LogN;
  }

  /// In-place forward NTT (coefficients -> evaluations).
  void forward(Element *X) const { transform(X, Twiddles.data()); }

  /// In-place inverse NTT, including the 1/n scaling.
  void inverse(Element *X) const {
    transform(X, InvTwiddles.data());
    for (size_t I = 0; I < N; ++I)
      X[I] = F.mul(X[I], NInv);
  }

  /// Forward NTT over \p Batch contiguous transforms, batch-parallel on
  /// \p Dev (paper §5.1: batch processing for steady-state throughput).
  void forwardBatch(const sim::Device &Dev, Element *X, size_t Batch) const {
    Dev.parallelFor(Batch, [&](std::uint64_t B) { forward(X + B * N); });
  }

  /// Inverse NTT over a batch.
  void inverseBatch(const sim::Device &Dev, Element *X, size_t Batch) const {
    Dev.parallelFor(Batch, [&](std::uint64_t B) { inverse(X + B * N); });
  }

  /// Forward NTT with the paper's stage-level mapping: each stage is a
  /// launch with one virtual thread per butterfly. Used by tests to pin
  /// the sim:: substrate to the CUDA mapping the emitter generates.
  void forwardStageParallel(const sim::Device &Dev, Element *X) const {
    applyBitReverse(X);
    for (size_t Len = 1; Len < N; Len <<= 1) {
      const Element *Stage = Twiddles.data() + (Len - 1);
      sim::LaunchConfig Cfg;
      Cfg.BlockDim = static_cast<std::uint32_t>(
          std::min<size_t>(N / 2, Dev.profile().MaxThreadsPerBlock));
      Cfg.GridX = static_cast<std::uint32_t>(
          (N / 2 + Cfg.BlockDim - 1) / Cfg.BlockDim);
      Dev.launch(Cfg, [&](const sim::LaunchCoord &C, sim::SharedMem &) {
        std::uint64_t T =
            static_cast<std::uint64_t>(C.BlockX) * Cfg.BlockDim + C.ThreadX;
        if (T >= N / 2)
          return;
        size_t G = T / Len, J = T % Len;
        size_t I0 = G * 2 * Len + J, I1 = I0 + Len;
        butterfly(X[I0], X[I1], Stage[J]);
      });
    }
  }

  /// The generated butterfly: t = w*y; (x, y) <- (x+t, x-t) mod q.
  void butterfly(Element &X, Element &Y, const Element &Wt) const {
    Element T = F.mul(Y, Wt);
    Element U = X;
    X = F.add(U, T);
    Y = F.sub(U, T);
  }

private:
  void applyBitReverse(Element *X) const {
    for (size_t I = 0; I < N; ++I) {
      size_t R = BitRev[I];
      if (I < R)
        std::swap(X[I], X[R]);
    }
  }

  void transform(Element *X, const Element *Tw) const {
    applyBitReverse(X);
    for (size_t Len = 1; Len < N; Len <<= 1) {
      const Element *Stage = Tw + (Len - 1);
      for (size_t I0 = 0; I0 < N; I0 += 2 * Len) {
        for (size_t J = 0; J < Len; ++J) {
          Element T = F.mul(X[I0 + J + Len], Stage[J]);
          Element U = X[I0 + J];
          X[I0 + J] = F.add(U, T);
          X[I0 + J + Len] = F.sub(U, T);
        }
      }
    }
  }

  Field F;
  size_t N;
  unsigned LogN = 0;
  Element NInv;
  std::vector<std::uint32_t> BitRev;
  std::vector<Element> Twiddles;
  std::vector<Element> InvTwiddles;
};

/// Polynomial product over Z_q via NTT: C = A * B with
/// deg(A) + deg(B) < n for an n-point plan (paper §2.3, Eq. 11 made
/// O(n log n)). Inputs are coefficient vectors (low degree first) of
/// length <= n; the result has length n.
template <unsigned W>
std::vector<typename field::PrimeField<W>::Element>
polyMulNtt(const NttPlan<W> &Plan,
           std::vector<typename field::PrimeField<W>::Element> A,
           std::vector<typename field::PrimeField<W>::Element> B) {
  const auto &F = Plan.field();
  size_t N = Plan.size();
  if (A.size() > N || B.size() > N)
    fatalError("polyMulNtt: inputs longer than the plan size");
  A.resize(N, F.zero());
  B.resize(N, F.zero());
  Plan.forward(A.data());
  Plan.forward(B.data());
  for (size_t I = 0; I < N; ++I)
    A[I] = F.mul(A[I], B[I]); // point-wise product (vmul)
  Plan.inverse(A.data());
  return A;
}

} // namespace ntt
} // namespace moma

#endif // MOMA_NTT_NTT_H
