//===- baselines/Rns.h - Residue number system baseline -------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GRNS stand-in baseline (DESIGN.md §4): large integers represented
/// by residues modulo pairwise-coprime 31-bit primes. Channel-wise
/// add/sub/mul are cheap and embarrassingly parallel (the RNS strength the
/// paper's Figure 2 shows for GRNS addition); arithmetic modulo an
/// arbitrary q requires leaving the residue domain through CRT
/// reconstruction (the RNS weakness: modulus raising/reduction overhead,
/// paper §1).
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_BASELINES_RNS_H
#define MOMA_BASELINES_RNS_H

#include "mw/Bignum.h"
#include "sim/Launch.h"

#include <cstdint>
#include <vector>

namespace moma {
namespace baselines {

/// Deterministic primality test for 32-bit integers (bases 2, 7, 61).
bool isPrimeU32(std::uint32_t N);

/// An RNS base with enough channels to represent \p Bits-bit products.
class RnsContext {
public:
  /// Builds a base whose dynamic range M exceeds 2^Bits.
  static RnsContext withRangeBits(unsigned Bits);

  /// Convenience for modular work: range 2*QBits + 8 so that a full
  /// product of two reduced values never wraps M.
  static RnsContext forModulusBits(unsigned QBits) {
    return withRangeBits(2 * QBits + 8);
  }

  size_t numChannels() const { return Moduli.size(); }
  const std::vector<std::uint32_t> &moduli() const { return Moduli; }
  const mw::Bignum &range() const { return M; }

  /// Residue vector of \p X (one entry per channel). Requires X < M.
  std::vector<std::uint64_t> encode(const mw::Bignum &X) const;

  /// CRT reconstruction (the expensive direction).
  mw::Bignum decode(const std::vector<std::uint64_t> &Residues) const;

  // Channel-wise arithmetic in the residue domain (exact as long as the
  // true integer result stays below M).
  std::vector<std::uint64_t> add(const std::vector<std::uint64_t> &A,
                                 const std::vector<std::uint64_t> &B) const;
  std::vector<std::uint64_t> sub(const std::vector<std::uint64_t> &A,
                                 const std::vector<std::uint64_t> &B) const;
  std::vector<std::uint64_t> mul(const std::vector<std::uint64_t> &A,
                                 const std::vector<std::uint64_t> &B) const;

  /// (a * b) mod q for arbitrary q: channel-wise multiply, then CRT
  /// reconstruction and division-based reduction, then re-encode — the
  /// general-modulus path a GRNS-class library must take.
  std::vector<std::uint64_t> mulModQ(const std::vector<std::uint64_t> &A,
                                     const std::vector<std::uint64_t> &B,
                                     const mw::Bignum &Q) const;

  /// Element-wise vector versions over the simulated device (Figure 2).
  /// Residues are stored contiguously: element i occupies
  /// [i*numChannels(), (i+1)*numChannels()).
  void vaddFlat(const sim::Device &Dev, const std::vector<std::uint64_t> &A,
                const std::vector<std::uint64_t> &B,
                std::vector<std::uint64_t> &C) const;
  void vsubFlat(const sim::Device &Dev, const std::vector<std::uint64_t> &A,
                const std::vector<std::uint64_t> &B,
                std::vector<std::uint64_t> &C) const;
  void vmulModQFlat(const sim::Device &Dev,
                    const std::vector<std::uint64_t> &A,
                    const std::vector<std::uint64_t> &B,
                    std::vector<std::uint64_t> &C,
                    const mw::Bignum &Q) const;
  /// y = (s*x + y) mod q element-wise (axpy through the general-q path).
  void vaxpyModQFlat(const sim::Device &Dev,
                     const std::vector<std::uint64_t> &S,
                     const std::vector<std::uint64_t> &X,
                     std::vector<std::uint64_t> &Y,
                     const mw::Bignum &Q) const;

private:
  std::vector<std::uint32_t> Moduli;
  mw::Bignum M;
  /// CRT weights: W_i = (M / m_i) * ((M / m_i)^-1 mod m_i), so that
  /// decode(r) = sum r_i * W_i mod M.
  std::vector<mw::Bignum> CrtWeights;
};

} // namespace baselines
} // namespace moma

#endif // MOMA_BASELINES_RNS_H
