//===- baselines/Rns.cpp - Residue number system baseline -------------------===//

#include "baselines/Rns.h"

#include "support/Error.h"

#include <cassert>

using namespace moma;
using namespace moma::baselines;
using mw::Bignum;

bool moma::baselines::isPrimeU32(std::uint32_t N) {
  if (N < 2)
    return false;
  for (std::uint32_t P : {2u, 3u, 5u, 7u, 11u, 13u}) {
    if (N % P == 0)
      return N == P;
  }
  // Miller-Rabin with bases 2, 7, 61 is deterministic below 2^32.
  std::uint32_t D = N - 1;
  unsigned S = 0;
  while ((D & 1) == 0) {
    D >>= 1;
    ++S;
  }
  for (std::uint64_t A : {2ull, 7ull, 61ull}) {
    std::uint64_t X = 1, Base = A % N, E = D;
    if (Base == 0)
      continue;
    while (E) {
      if (E & 1)
        X = X * Base % N;
      Base = Base * Base % N;
      E >>= 1;
    }
    if (X == 1 || X == N - 1)
      continue;
    bool Witness = true;
    for (unsigned I = 1; I < S; ++I) {
      X = X * X % N;
      if (X == N - 1) {
        Witness = false;
        break;
      }
    }
    if (Witness)
      return false;
  }
  return true;
}

RnsContext RnsContext::withRangeBits(unsigned Bits) {
  RnsContext Ctx;
  Ctx.M = Bignum(1);
  // Descend from 2^31 so every channel is a ~31-bit prime (as in GRNS,
  // residues fit comfortably in 64-bit lanes with no overflow in mul).
  std::uint32_t Candidate = 0x7FFFFFFFu;
  while (Ctx.M.bitWidth() <= Bits) {
    while (!isPrimeU32(Candidate))
      Candidate -= 2;
    Ctx.Moduli.push_back(Candidate);
    Ctx.M *= Bignum(Candidate);
    Candidate -= 2;
  }
  // CRT weights.
  Ctx.CrtWeights.reserve(Ctx.Moduli.size());
  for (std::uint32_t Mi : Ctx.Moduli) {
    Bignum MOverMi = Ctx.M / Bignum(Mi);
    Bignum Inv = (MOverMi % Bignum(Mi)).invMod(Bignum(Mi));
    Ctx.CrtWeights.push_back(MOverMi * Inv % Ctx.M);
  }
  return Ctx;
}

std::vector<std::uint64_t> RnsContext::encode(const Bignum &X) const {
  assert(X < M && "value outside the RNS dynamic range");
  std::vector<std::uint64_t> R(Moduli.size());
  for (size_t I = 0; I < Moduli.size(); ++I)
    R[I] = (X % Bignum(Moduli[I])).low64();
  return R;
}

Bignum RnsContext::decode(const std::vector<std::uint64_t> &Residues) const {
  assert(Residues.size() == Moduli.size() && "channel count mismatch");
  Bignum Acc;
  for (size_t I = 0; I < Moduli.size(); ++I)
    Acc += CrtWeights[I] * Bignum(Residues[I]);
  return Acc % M;
}

std::vector<std::uint64_t>
RnsContext::add(const std::vector<std::uint64_t> &A,
                const std::vector<std::uint64_t> &B) const {
  std::vector<std::uint64_t> C(Moduli.size());
  for (size_t I = 0; I < Moduli.size(); ++I) {
    std::uint64_t S = A[I] + B[I];
    C[I] = S >= Moduli[I] ? S - Moduli[I] : S;
  }
  return C;
}

std::vector<std::uint64_t>
RnsContext::sub(const std::vector<std::uint64_t> &A,
                const std::vector<std::uint64_t> &B) const {
  std::vector<std::uint64_t> C(Moduli.size());
  for (size_t I = 0; I < Moduli.size(); ++I)
    C[I] = A[I] >= B[I] ? A[I] - B[I] : A[I] + Moduli[I] - B[I];
  return C;
}

std::vector<std::uint64_t>
RnsContext::mul(const std::vector<std::uint64_t> &A,
                const std::vector<std::uint64_t> &B) const {
  std::vector<std::uint64_t> C(Moduli.size());
  for (size_t I = 0; I < Moduli.size(); ++I)
    C[I] = A[I] * B[I] % Moduli[I];
  return C;
}

std::vector<std::uint64_t>
RnsContext::mulModQ(const std::vector<std::uint64_t> &A,
                    const std::vector<std::uint64_t> &B,
                    const Bignum &Q) const {
  // Channel-wise product is exact below M (range chosen as 2*QBits+8),
  // but reducing modulo an arbitrary q cannot stay in the residue
  // domain: reconstruct, reduce, re-encode.
  std::vector<std::uint64_t> P = mul(A, B);
  return encode(decode(P) % Q);
}

void RnsContext::vaddFlat(const sim::Device &Dev,
                          const std::vector<std::uint64_t> &A,
                          const std::vector<std::uint64_t> &B,
                          std::vector<std::uint64_t> &C) const {
  assert(A.size() == B.size() && A.size() % Moduli.size() == 0);
  C.resize(A.size());
  size_t K = Moduli.size();
  Dev.parallelFor(A.size() / K, [&](std::uint64_t E) {
    for (size_t I = 0; I < K; ++I) {
      std::uint64_t S = A[E * K + I] + B[E * K + I];
      C[E * K + I] = S >= Moduli[I] ? S - Moduli[I] : S;
    }
  });
}

void RnsContext::vsubFlat(const sim::Device &Dev,
                          const std::vector<std::uint64_t> &A,
                          const std::vector<std::uint64_t> &B,
                          std::vector<std::uint64_t> &C) const {
  assert(A.size() == B.size() && A.size() % Moduli.size() == 0);
  C.resize(A.size());
  size_t K = Moduli.size();
  Dev.parallelFor(A.size() / K, [&](std::uint64_t E) {
    for (size_t I = 0; I < K; ++I) {
      std::uint64_t X = A[E * K + I], Y = B[E * K + I];
      C[E * K + I] = X >= Y ? X - Y : X + Moduli[I] - Y;
    }
  });
}

void RnsContext::vaxpyModQFlat(const sim::Device &Dev,
                               const std::vector<std::uint64_t> &S,
                               const std::vector<std::uint64_t> &X,
                               std::vector<std::uint64_t> &Y,
                               const mw::Bignum &Q) const {
  assert(X.size() == Y.size() && X.size() % Moduli.size() == 0);
  size_t K = Moduli.size();
  Dev.parallelFor(X.size() / K, [&](std::uint64_t E) {
    std::vector<std::uint64_t> Xi(X.begin() + E * K, X.begin() + (E + 1) * K);
    std::vector<std::uint64_t> Yi(Y.begin() + E * K, Y.begin() + (E + 1) * K);
    std::vector<std::uint64_t> P = mulModQ(S, Xi, Q);
    // The sum of two reduced values stays within the dynamic range.
    std::vector<std::uint64_t> R = add(P, Yi);
    std::vector<std::uint64_t> Out = encode(decode(R) % Q);
    std::copy(Out.begin(), Out.end(), Y.begin() + E * K);
  });
}

void RnsContext::vmulModQFlat(const sim::Device &Dev,
                              const std::vector<std::uint64_t> &A,
                              const std::vector<std::uint64_t> &B,
                              std::vector<std::uint64_t> &C,
                              const Bignum &Q) const {
  assert(A.size() == B.size() && A.size() % Moduli.size() == 0);
  C.resize(A.size());
  size_t K = Moduli.size();
  Dev.parallelFor(A.size() / K, [&](std::uint64_t E) {
    std::vector<std::uint64_t> Ai(A.begin() + E * K, A.begin() + (E + 1) * K);
    std::vector<std::uint64_t> Bi(B.begin() + E * K, B.begin() + (E + 1) * K);
    std::vector<std::uint64_t> Ci = mulModQ(Ai, Bi, Q);
    std::copy(Ci.begin(), Ci.end(), C.begin() + E * K);
  });
}
