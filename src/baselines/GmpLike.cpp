//===- baselines/GmpLike.cpp - Generic multiprecision baseline --------------===//

#include "baselines/GmpLike.h"

#include "field/RootOfUnity.h"
#include "support/Error.h"

#include <cassert>

using namespace moma;
using namespace moma::baselines;
using mw::Bignum;

GmpLikeVec::GmpLikeVec(Bignum QIn) : Q(std::move(QIn)) {
  if (Q < Bignum(2))
    fatalError("GmpLikeVec: modulus must exceed 1");
}

void GmpLikeVec::vadd(const sim::Device &Dev, const std::vector<Bignum> &A,
                      const std::vector<Bignum> &B,
                      std::vector<Bignum> &C) const {
  assert(A.size() == B.size());
  C.resize(A.size());
  Dev.parallelFor(A.size(),
                  [&](std::uint64_t I) { C[I] = A[I].addMod(B[I], Q); });
}

void GmpLikeVec::vsub(const sim::Device &Dev, const std::vector<Bignum> &A,
                      const std::vector<Bignum> &B,
                      std::vector<Bignum> &C) const {
  assert(A.size() == B.size());
  C.resize(A.size());
  Dev.parallelFor(A.size(),
                  [&](std::uint64_t I) { C[I] = A[I].subMod(B[I], Q); });
}

void GmpLikeVec::vmul(const sim::Device &Dev, const std::vector<Bignum> &A,
                      const std::vector<Bignum> &B,
                      std::vector<Bignum> &C) const {
  assert(A.size() == B.size());
  C.resize(A.size());
  Dev.parallelFor(A.size(),
                  [&](std::uint64_t I) { C[I] = A[I].mulMod(B[I], Q); });
}

void GmpLikeVec::axpy(const sim::Device &Dev, const Bignum &S,
                      const std::vector<Bignum> &X,
                      std::vector<Bignum> &Y) const {
  assert(X.size() == Y.size());
  Dev.parallelFor(X.size(), [&](std::uint64_t I) {
    Y[I] = S.mulMod(X[I], Q).addMod(Y[I], Q);
  });
}

GmpLikeNtt::GmpLikeNtt(Bignum QIn, size_t NIn) : Q(std::move(QIn)), N(NIn) {
  if (N < 2 || (N & (N - 1)) != 0)
    fatalError("GmpLikeNtt: size must be a power of two >= 2");
  while ((size_t(1) << LogN) < N)
    ++LogN;

  Bignum Root = field::rootOfUnity(Q, N);
  Bignum RootInv = Root.invMod(Q);
  NInv = Bignum(N).invMod(Q);

  BitRev.resize(N);
  for (size_t I = 0; I < N; ++I) {
    size_t R = 0;
    for (unsigned B = 0; B < LogN; ++B)
      R |= ((I >> B) & 1) << (LogN - 1 - B);
    BitRev[I] = static_cast<std::uint32_t>(R);
  }

  Twiddles.resize(N - 1);
  InvTwiddles.resize(N - 1);
  for (size_t Len = 1; Len < N; Len <<= 1) {
    Bignum WLen = Root.powMod(Bignum(N / (2 * Len)), Q);
    Bignum WLenInv = RootInv.powMod(Bignum(N / (2 * Len)), Q);
    Bignum Cur(1), CurInv(1);
    for (size_t J = 0; J < Len; ++J) {
      Twiddles[Len - 1 + J] = Cur;
      InvTwiddles[Len - 1 + J] = CurInv;
      Cur = Cur.mulMod(WLen, Q);
      CurInv = CurInv.mulMod(WLenInv, Q);
    }
  }
}

void GmpLikeNtt::transform(std::vector<Bignum> &X,
                           const std::vector<Bignum> &Tw) const {
  assert(X.size() == N && "input length must equal the plan size");
  for (size_t I = 0; I < N; ++I)
    if (I < BitRev[I])
      std::swap(X[I], X[BitRev[I]]);
  for (size_t Len = 1; Len < N; Len <<= 1) {
    const Bignum *Stage = Tw.data() + (Len - 1);
    for (size_t I0 = 0; I0 < N; I0 += 2 * Len) {
      for (size_t J = 0; J < Len; ++J) {
        Bignum T = X[I0 + J + Len].mulMod(Stage[J], Q);
        Bignum U = X[I0 + J];
        X[I0 + J] = U.addMod(T, Q);
        X[I0 + J + Len] = U.subMod(T, Q);
      }
    }
  }
}

void GmpLikeNtt::forward(std::vector<Bignum> &X) const {
  transform(X, Twiddles);
}

void GmpLikeNtt::inverse(std::vector<Bignum> &X) const {
  transform(X, InvTwiddles);
  for (auto &V : X)
    V = V.mulMod(NInv, Q);
}
