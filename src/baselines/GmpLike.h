//===- baselines/GmpLike.h - Generic multiprecision baseline --*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GMP stand-in baseline (DESIGN.md §4): generic arbitrary-precision
/// modular arithmetic on dynamically sized Bignum limbs with
/// division-based reduction — the algorithmic class of GMP's generic mpz
/// path that Figure 2 and Figure 4 compare MoMA against. Vector operations
/// parallelize over the simulated device like the paper's OpenMP loop
/// (§5.2).
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_BASELINES_GMPLIKE_H
#define MOMA_BASELINES_GMPLIKE_H

#include "mw/Bignum.h"
#include "sim/Launch.h"

#include <vector>

namespace moma {
namespace baselines {

/// Element-wise modular BLAS on arbitrary-precision integers.
class GmpLikeVec {
public:
  explicit GmpLikeVec(mw::Bignum Q);

  const mw::Bignum &modulus() const { return Q; }

  /// C[i] = (A[i] + B[i]) mod q.
  void vadd(const sim::Device &Dev, const std::vector<mw::Bignum> &A,
            const std::vector<mw::Bignum> &B,
            std::vector<mw::Bignum> &C) const;
  /// C[i] = (A[i] - B[i]) mod q.
  void vsub(const sim::Device &Dev, const std::vector<mw::Bignum> &A,
            const std::vector<mw::Bignum> &B,
            std::vector<mw::Bignum> &C) const;
  /// C[i] = (A[i] * B[i]) mod q.
  void vmul(const sim::Device &Dev, const std::vector<mw::Bignum> &A,
            const std::vector<mw::Bignum> &B,
            std::vector<mw::Bignum> &C) const;
  /// Y[i] = (S * X[i] + Y[i]) mod q (BLAS axpy, Eq. 10).
  void axpy(const sim::Device &Dev, const mw::Bignum &S,
            const std::vector<mw::Bignum> &X,
            std::vector<mw::Bignum> &Y) const;

private:
  mw::Bignum Q;
};

/// Generic-multiprecision NTT (the "GMP-based NTT" series of Figure 4):
/// same Cooley-Tukey schedule as ntt::NttPlan but with Bignum elements and
/// division-based modular reduction.
class GmpLikeNtt {
public:
  /// \p N must be a power of two with a primitive N-th root mod prime Q.
  GmpLikeNtt(mw::Bignum Q, size_t N);

  size_t size() const { return N; }

  void forward(std::vector<mw::Bignum> &X) const;
  void inverse(std::vector<mw::Bignum> &X) const;

private:
  void transform(std::vector<mw::Bignum> &X,
                 const std::vector<mw::Bignum> &Tw) const;

  mw::Bignum Q;
  size_t N;
  unsigned LogN = 0;
  mw::Bignum NInv;
  std::vector<std::uint32_t> BitRev;
  std::vector<mw::Bignum> Twiddles;
  std::vector<mw::Bignum> InvTwiddles;
};

} // namespace baselines
} // namespace moma

#endif // MOMA_BASELINES_GMPLIKE_H
