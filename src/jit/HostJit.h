//===- jit/HostJit.h - Compile-and-dlopen runtime for emitted C -*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The host-JIT runtime: turns a string of emitted C (the CEmitter's
/// output, or any translation unit with `extern "C"` entry points) into a
/// callable function by shelling out to a host compiler, dlopen-ing the
/// resulting shared object, and resolving symbols.
///
/// This used to live as copy-pasted helpers inside the codegen tests; it is
/// a subsystem in its own right so that tests, examples, and the dispatch
/// layers (batched kernels, autotuning, the service/ front door) share one
/// implementation with temp-file management, compiler-error capture, and a
/// content-hash .so cache: loading byte-identical source with identical
/// compiler and flags reuses the previously built shared object instead of
/// re-invoking the compiler.
///
/// Thread safety: load(), stats(), error(), and setCacheCap() may be
/// called from any number of threads on one instance. Concurrent loads of
/// the same cold source are single-flighted — one thread runs the host
/// compiler, the rest block and share the resulting module. error() is a
/// per-calling-thread slot, so one thread's failure diagnostic is never
/// clobbered by another's.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_JIT_HOSTJIT_H
#define MOMA_JIT_HOSTJIT_H

#include "support/ThreadError.h"

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace moma {
namespace jit {

/// Options controlling how HostJit builds shared objects.
struct HostJitOptions {
  /// Host compiler driver. Empty selects, in order: the $MOMA_HOST_CXX
  /// environment variable, then the compiler the build was configured with
  /// (the MOMA_HOST_CXX macro CMake defines), then "cc".
  std::string Compiler;

  /// Extra driver flags (part of the cache key). "-shared -fPIC" and the
  /// output/input paths are appended automatically.
  std::string Flags = "-O1";

  /// Directory holding the cached sources, shared objects, and compiler
  /// logs. Empty selects $MOMA_JIT_CACHE_DIR, then
  /// <system-tmp>/moma-jit-cache. Created on demand.
  std::string CacheDir;

  /// When true, a .so already present in CacheDir under the matching
  /// content hash is dlopen-ed directly without invoking the compiler.
  bool UseDiskCache = true;
};

/// A compiled and loaded translation unit. Closes the dlopen handle on
/// destruction, so keep the shared_ptr alive for as long as code obtained
/// from symbol() may be called.
class JitModule {
public:
  ~JitModule();
  JitModule(const JitModule &) = delete;
  JitModule &operator=(const JitModule &) = delete;

  /// Resolves \p Name in this module; null when absent. \p DlError (when
  /// non-null) receives the dlerror() diagnostic for a failed lookup and
  /// is cleared on success — so a missing symbol (null return, non-empty
  /// *DlError) is distinguishable from a symbol whose value is genuinely
  /// null (null return, empty *DlError).
  void *symbol(const std::string &Name, std::string *DlError = nullptr) const;

  /// Typed convenience wrapper over symbol().
  template <typename Fn>
  Fn symbolAs(const std::string &Name, std::string *DlError = nullptr) const {
    return reinterpret_cast<Fn>(symbol(Name, DlError));
  }

  /// Paths of the shared object and the source it was built from (both
  /// live in the owning HostJit's cache directory).
  const std::string &soPath() const { return SoPath; }
  const std::string &sourcePath() const { return SrcPath; }

  /// True when this module reused a shared object found on disk instead of
  /// running the host compiler.
  bool fromDiskCache() const { return FromDiskCache; }

private:
  friend class HostJit;
  JitModule(void *Handle, std::string SoPath, std::string SrcPath,
            bool FromDiskCache)
      : Handle(Handle), SoPath(std::move(SoPath)), SrcPath(std::move(SrcPath)),
        FromDiskCache(FromDiskCache) {}

  void *Handle = nullptr;
  std::string SoPath;
  std::string SrcPath;
  bool FromDiskCache = false;
};

/// Compiles source strings into loaded modules, deduplicating within this
/// instance (modules stay loaded and are returned again for identical
/// source), across threads (concurrent cold loads single-flight onto one
/// compiler invocation), and across processes (content-addressed .so files
/// in CacheDir). Thread-safe: share one instance freely.
class HostJit {
public:
  explicit HostJit(HostJitOptions Opts = HostJitOptions());

  /// Compiles \p Source into a shared object and loads it. Returns null on
  /// failure, in which case error() carries the captured host-compiler
  /// diagnostics (or the dlopen message). Concurrent calls with the same
  /// cold source block on one shared compile.
  ///
  /// \p ExtraFlags are per-compile driver flags appended after the
  /// instance-wide Flags (e.g. "-O3 -march=native" for a vector plan).
  /// They are part of both the on-disk content hash and the in-memory
  /// module key, so an artifact built with one flag set is never served
  /// to a load() asking for another.
  std::shared_ptr<JitModule> load(const std::string &Source,
                                  const std::string &ExtraFlags = "");

  /// Diagnostics from the calling thread's most recent failed load();
  /// empty after success.
  const std::string &error() const { return Err.get(); }

  /// Cache behavior counters, exposed for tests and tooling.
  struct Stats {
    unsigned Compiles = 0;   ///< host compiler actually invoked
    unsigned DiskHits = 0;   ///< .so reused from the cache directory
    unsigned MemoryHits = 0; ///< module already loaded (or in flight) here
    std::uint64_t Evictions = 0; ///< loaded modules dropped by the LRU cap
  };
  Stats stats() const;

  /// Caps the loaded-module map: beyond \p Max entries the
  /// least-recently-used module is dropped from the map (callers holding
  /// the shared_ptr keep their module alive and callable; the cache just
  /// forgets it). At least one entry is always kept. Matches the
  /// Dispatcher's setCacheCaps pattern so a server handling an unbounded
  /// stream of distinct kernels stays at steady memory.
  void setCacheCap(size_t Max);
  size_t cacheCap() const;
  /// Number of modules currently retained by the in-memory cache.
  size_t cacheSize() const;

  const std::string &compiler() const { return Opts.Compiler; }
  const std::string &cacheDir() const { return Opts.CacheDir; }

private:
  /// One in-memory cache slot with its LRU stamp.
  struct Entry {
    std::shared_ptr<JitModule> Module;
    std::uint64_t LastUse = 0;
  };
  /// One in-progress cold load: the leader compiles, followers wait on CV
  /// and share Module/Error.
  struct Flight {
    std::mutex M;
    std::condition_variable CV;
    bool Done = false;
    std::shared_ptr<JitModule> Module;
    std::string Error;
  };

  bool compile(const std::string &Source, const std::string &ExtraFlags,
               const std::string &SrcPath, const std::string &SoPath,
               const std::string &LogPath, std::string &Error);
  /// LRU-evicts Loaded down to CacheCap; requires Mu held.
  void evictLocked();
  /// The compile + dlopen slow path; no locks held, counters bumped
  /// internally under Mu.
  std::shared_ptr<JitModule> loadUncached(const std::string &Source,
                                          const std::string &ExtraFlags,
                                          std::string &Error);

  HostJitOptions Opts;
  mutable std::mutex Mu; ///< guards S, Loaded, InFlight, CacheCap, UseTick
  Stats S;
  support::ThreadError Err;
  /// Keyed by extra flags + '\0' + full source text: collisions in the
  /// on-disk content hash can never alias two kernels within an instance,
  /// and two flag variants of one source are distinct modules.
  std::unordered_map<std::string, Entry> Loaded;
  std::unordered_map<std::string, std::shared_ptr<Flight>> InFlight;
  size_t CacheCap = 256;
  std::uint64_t UseTick = 0; ///< LRU clock
};

} // namespace jit
} // namespace moma

#endif // MOMA_JIT_HOSTJIT_H
