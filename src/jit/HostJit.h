//===- jit/HostJit.h - Compile-and-dlopen runtime for emitted C -*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The host-JIT runtime: turns a string of emitted C (the CEmitter's
/// output, or any translation unit with `extern "C"` entry points) into a
/// callable function by shelling out to a host compiler, dlopen-ing the
/// resulting shared object, and resolving symbols.
///
/// This used to live as copy-pasted helpers inside the codegen tests; it is
/// a subsystem in its own right so that tests, examples, and future
/// dispatch layers (batched kernels, autotuning) share one implementation
/// with temp-file management, compiler-error capture, and a content-hash
/// .so cache: loading byte-identical source with identical compiler and
/// flags reuses the previously built shared object instead of re-invoking
/// the compiler.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_JIT_HOSTJIT_H
#define MOMA_JIT_HOSTJIT_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

namespace moma {
namespace jit {

/// Options controlling how HostJit builds shared objects.
struct HostJitOptions {
  /// Host compiler driver. Empty selects, in order: the $MOMA_HOST_CXX
  /// environment variable, then the compiler the build was configured with
  /// (the MOMA_HOST_CXX macro CMake defines), then "cc".
  std::string Compiler;

  /// Extra driver flags (part of the cache key). "-shared -fPIC" and the
  /// output/input paths are appended automatically.
  std::string Flags = "-O1";

  /// Directory holding the cached sources, shared objects, and compiler
  /// logs. Empty selects $MOMA_JIT_CACHE_DIR, then
  /// <system-tmp>/moma-jit-cache. Created on demand.
  std::string CacheDir;

  /// When true, a .so already present in CacheDir under the matching
  /// content hash is dlopen-ed directly without invoking the compiler.
  bool UseDiskCache = true;
};

/// A compiled and loaded translation unit. Closes the dlopen handle on
/// destruction, so keep the shared_ptr alive for as long as code obtained
/// from symbol() may be called.
class JitModule {
public:
  ~JitModule();
  JitModule(const JitModule &) = delete;
  JitModule &operator=(const JitModule &) = delete;

  /// Resolves \p Name in this module; null when absent.
  void *symbol(const std::string &Name) const;

  /// Typed convenience wrapper over symbol().
  template <typename Fn> Fn symbolAs(const std::string &Name) const {
    return reinterpret_cast<Fn>(symbol(Name));
  }

  /// Paths of the shared object and the source it was built from (both
  /// live in the owning HostJit's cache directory).
  const std::string &soPath() const { return SoPath; }
  const std::string &sourcePath() const { return SrcPath; }

  /// True when this module reused a shared object found on disk instead of
  /// running the host compiler.
  bool fromDiskCache() const { return FromDiskCache; }

private:
  friend class HostJit;
  JitModule(void *Handle, std::string SoPath, std::string SrcPath,
            bool FromDiskCache)
      : Handle(Handle), SoPath(std::move(SoPath)), SrcPath(std::move(SrcPath)),
        FromDiskCache(FromDiskCache) {}

  void *Handle = nullptr;
  std::string SoPath;
  std::string SrcPath;
  bool FromDiskCache = false;
};

/// Compiles source strings into loaded modules, deduplicating both within
/// this instance (modules stay loaded and are returned again for identical
/// source) and across processes (content-addressed .so files in CacheDir).
/// Not thread-safe; use one instance per thread.
class HostJit {
public:
  explicit HostJit(HostJitOptions Opts = HostJitOptions());

  /// Compiles \p Source into a shared object and loads it. Returns null on
  /// failure, in which case error() carries the captured host-compiler
  /// diagnostics (or the dlopen message).
  std::shared_ptr<JitModule> load(const std::string &Source);

  /// Diagnostics from the most recent failed load(); empty after success.
  const std::string &error() const { return LastError; }

  /// Cache behavior counters, exposed for tests and tooling.
  struct Stats {
    unsigned Compiles = 0;   ///< host compiler actually invoked
    unsigned DiskHits = 0;   ///< .so reused from the cache directory
    unsigned MemoryHits = 0; ///< module already loaded by this instance
  };
  const Stats &stats() const { return S; }

  const std::string &compiler() const { return Opts.Compiler; }
  const std::string &cacheDir() const { return Opts.CacheDir; }

private:
  bool compile(const std::string &Source, const std::string &SrcPath,
               const std::string &SoPath, const std::string &LogPath);

  HostJitOptions Opts;
  Stats S;
  std::string LastError;
  /// Keyed by full source text: collisions in the on-disk content hash
  /// can never alias two kernels within an instance.
  std::unordered_map<std::string, std::shared_ptr<JitModule>> Loaded;
};

} // namespace jit
} // namespace moma

#endif // MOMA_JIT_HOSTJIT_H
