//===- jit/HostJit.cpp - Compile-and-dlopen runtime for emitted C --------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "jit/HostJit.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <dlfcn.h>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <sys/wait.h>
#include <system_error>
#include <unistd.h>

// The build system defines MOMA_HOST_CXX as the compiler it was configured
// with; a bare toolchain falls back to the system driver.
#ifndef MOMA_HOST_CXX
#define MOMA_HOST_CXX "cc"
#endif

namespace fs = std::filesystem;

namespace moma {
namespace jit {

namespace {

/// FNV-1a over the cache key material (compiler, flags, source).
std::uint64_t fnv1a(std::initializer_list<const std::string *> Parts) {
  std::uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](const char *Data, size_t N) {
    for (size_t I = 0; I < N; ++I) {
      H ^= static_cast<unsigned char>(Data[I]);
      H *= 0x100000001b3ull;
    }
  };
  for (const std::string *P : Parts) {
    Mix(P->data(), P->size());
    Mix("\0", 1); // unambiguous part separator
  }
  return H;
}

std::string hex64(std::uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

JitModule::~JitModule() {
  if (Handle)
    dlclose(Handle);
}

void *JitModule::symbol(const std::string &Name) const {
  return dlsym(Handle, Name.c_str());
}

HostJit::HostJit(HostJitOptions O) : Opts(std::move(O)) {
  if (Opts.Compiler.empty()) {
    const char *Env = std::getenv("MOMA_HOST_CXX");
    Opts.Compiler = Env && *Env ? Env : MOMA_HOST_CXX;
  }
  if (Opts.CacheDir.empty()) {
    const char *Env = std::getenv("MOMA_JIT_CACHE_DIR");
    if (Env && *Env) {
      Opts.CacheDir = Env;
    } else {
      std::error_code EC;
      fs::path Tmp = fs::temp_directory_path(EC);
      if (EC)
        Tmp = "/tmp";
      Opts.CacheDir = (Tmp / "moma-jit-cache").string();
    }
  }
  std::error_code EC;
  fs::create_directories(Opts.CacheDir, EC);
  // A failure here surfaces on the first load(): the source write fails
  // and the compiler error is captured like any other.
}

bool HostJit::compile(const std::string &Source, const std::string &SrcPath,
                      const std::string &SoPath, const std::string &LogPath) {
  // Work on private temp names and rename into place, so that concurrent
  // processes racing on the same cache entry never read a half-written
  // source or dlopen a half-written .so. The suffix is unique per process
  // AND per compile so sibling HostJit instances on other threads never
  // clobber each other's temp files; the temp source keeps its .cpp
  // extension so the driver recognizes it.
  static std::atomic<unsigned> Seq{0};
  std::string Uniq =
      std::to_string(::getpid()) + "-" + std::to_string(++Seq);
  std::string TmpSrc = SrcPath + ".tmp" + Uniq + ".cpp";
  std::string TmpSo = SoPath + ".tmp." + Uniq;
  std::string TmpLog = LogPath + ".tmp." + Uniq;
  {
    std::ofstream Out(TmpSrc);
    Out << Source;
    if (!Out) {
      LastError = "HostJit: cannot write source file " + TmpSrc;
      return false;
    }
  }
  // Paths are quoted (cache dirs may contain spaces); Compiler and Flags
  // are left bare on purpose — both may carry several shell words
  // ("ccache g++", "-O2 -march=native").
  std::string Cmd = Opts.Compiler + " " + Opts.Flags + " -shared -fPIC -o \"" +
                    TmpSo + "\" \"" + TmpSrc + "\" 2>\"" + TmpLog + "\"";
  int Rc = std::system(Cmd.c_str());
  if (Rc != 0) {
    // Decode the wait status so the message matches what a user sees
    // rerunning the printed command by hand.
    std::string Reason;
    if (Rc == -1)
      Reason = "could not launch shell";
    else if (WIFEXITED(Rc))
      Reason = "exit status " + std::to_string(WEXITSTATUS(Rc));
    else if (WIFSIGNALED(Rc))
      Reason = "killed by signal " + std::to_string(WTERMSIG(Rc));
    else
      Reason = "wait status " + std::to_string(Rc);
    LastError = "HostJit: host compiler failed (" + Reason +
                ")\ncommand: " + Cmd + "\n" + readFile(TmpLog);
    // Keep the temp source for post-mortem (the command above names it);
    // drop the partial object.
    std::error_code EC;
    fs::remove(TmpSo, EC);
    return false;
  }
  // Publish fail-safe: a disk hit requires source and .so to agree, so
  // first invalidate the entry by removing the stored source, then land
  // the .so, then the source last. A crash anywhere in between leaves a
  // mismatched or missing source and the next load() recompiles instead
  // of ever pairing a source with an object it was not built from.
  auto Publish = [this](const std::string &From, const std::string &To) {
    std::error_code EC;
    fs::rename(From, To, EC);
    if (EC) {
      LastError = "HostJit: cannot move " + From + " to " + To + ": " +
                  EC.message();
      fs::remove(From, EC);
      return false;
    }
    return true;
  };
  std::error_code EC;
  fs::remove(SrcPath, EC);
  if (!Publish(TmpSo, SoPath) || !Publish(TmpLog, LogPath) ||
      !Publish(TmpSrc, SrcPath))
    return false;
  ++S.Compiles;
  return true;
}

std::shared_ptr<JitModule> HostJit::load(const std::string &Source) {
  LastError.clear();

  // The in-memory map is keyed by the full source (flags and compiler are
  // fixed per instance), so a hash collision can never alias two kernels.
  auto It = Loaded.find(Source);
  if (It != Loaded.end()) {
    ++S.MemoryHits;
    return It->second;
  }

  std::uint64_t Key = fnv1a({&Opts.Compiler, &Opts.Flags, &Source});
  std::string Base = Opts.CacheDir + "/moma-" + hex64(Key);
  std::string SrcPath = Base + ".cpp";
  std::string SoPath = Base + ".so";
  std::string LogPath = Base + ".log";

  // A disk entry counts as a hit only if the source it was built from is
  // byte-identical — this guards against both hash collisions and a
  // mangled cache directory.
  std::error_code EC;
  bool FromDisk = Opts.UseDiskCache && fs::exists(SoPath, EC) &&
                  readFile(SrcPath) == Source;
  if (!FromDisk && !compile(Source, SrcPath, SoPath, LogPath))
    return nullptr;

  void *Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle && FromDisk) {
    // A stale or truncated cache entry: rebuild once from source.
    FromDisk = false;
    fs::remove(SoPath, EC);
    if (!compile(Source, SrcPath, SoPath, LogPath))
      return nullptr;
    Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  }
  if (!Handle) {
    const char *Err = dlerror();
    LastError = std::string("HostJit: dlopen failed: ") +
                (Err ? Err : "(no message)");
    return nullptr;
  }
  if (FromDisk)
    ++S.DiskHits;

  auto Module = std::shared_ptr<JitModule>(
      new JitModule(Handle, SoPath, SrcPath, FromDisk));
  Loaded.emplace(Source, Module);
  return Module;
}

} // namespace jit
} // namespace moma
