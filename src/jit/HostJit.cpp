//===- jit/HostJit.cpp - Compile-and-dlopen runtime for emitted C --------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "jit/HostJit.h"

#include "support/FaultInjection.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <dlfcn.h>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <sys/wait.h>
#include <system_error>
#include <unistd.h>

// The build system defines MOMA_HOST_CXX as the compiler it was configured
// with; a bare toolchain falls back to the system driver.
#ifndef MOMA_HOST_CXX
#define MOMA_HOST_CXX "cc"
#endif

namespace fs = std::filesystem;

namespace moma {
namespace jit {

namespace {

/// FNV-1a over the cache key material (compiler, flags, source).
std::uint64_t fnv1a(std::initializer_list<const std::string *> Parts) {
  std::uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](const char *Data, size_t N) {
    for (size_t I = 0; I < N; ++I) {
      H ^= static_cast<unsigned char>(Data[I]);
      H *= 0x100000001b3ull;
    }
  };
  for (const std::string *P : Parts) {
    Mix(P->data(), P->size());
    Mix("\0", 1); // unambiguous part separator
  }
  return H;
}

std::string hex64(std::uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

JitModule::~JitModule() {
  if (Handle)
    dlclose(Handle);
}

void *JitModule::symbol(const std::string &Name, std::string *DlError) const {
  // dlerror() is thread-local per POSIX; clear any stale diagnostic first
  // so the post-lookup read is unambiguously about this dlsym.
  dlerror();
  void *Sym = dlsym(Handle, Name.c_str());
  const char *Msg = dlerror();
  if (DlError)
    *DlError = Msg ? Msg : "";
  return Sym;
}

HostJit::HostJit(HostJitOptions O) : Opts(std::move(O)) {
  if (Opts.Compiler.empty()) {
    const char *Env = std::getenv("MOMA_HOST_CXX");
    Opts.Compiler = Env && *Env ? Env : MOMA_HOST_CXX;
  }
  if (Opts.CacheDir.empty()) {
    const char *Env = std::getenv("MOMA_JIT_CACHE_DIR");
    if (Env && *Env) {
      Opts.CacheDir = Env;
    } else {
      std::error_code EC;
      fs::path Tmp = fs::temp_directory_path(EC);
      if (EC)
        Tmp = "/tmp";
      Opts.CacheDir = (Tmp / "moma-jit-cache").string();
    }
  }
  std::error_code EC;
  fs::create_directories(Opts.CacheDir, EC);
  // A failure here surfaces on the first load(): the source write fails
  // and the compiler error is captured like any other.
}

HostJit::Stats HostJit::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return S;
}

void HostJit::setCacheCap(size_t Max) {
  std::lock_guard<std::mutex> L(Mu);
  CacheCap = std::max<size_t>(1, Max);
  evictLocked();
}

void HostJit::evictLocked() {
  // O(n) min-scan on the LastUse tick, the same idiom as the Dispatcher's
  // bounded caches: eviction is rare and n is the cap, so a heap would be
  // complexity without a win. Holders of the evicted shared_ptr keep
  // their module loaded; the cache merely forgets it.
  while (Loaded.size() > CacheCap) {
    auto Victim = Loaded.begin();
    for (auto It = Loaded.begin(); It != Loaded.end(); ++It)
      if (It->second.LastUse < Victim->second.LastUse)
        Victim = It;
    Loaded.erase(Victim);
    ++S.Evictions;
  }
}

size_t HostJit::cacheCap() const {
  std::lock_guard<std::mutex> L(Mu);
  return CacheCap;
}

size_t HostJit::cacheSize() const {
  std::lock_guard<std::mutex> L(Mu);
  return Loaded.size();
}

bool HostJit::compile(const std::string &Source, const std::string &ExtraFlags,
                      const std::string &SrcPath, const std::string &SoPath,
                      const std::string &LogPath, std::string &Error) {
  // Work on private temp names and rename into place, so that concurrent
  // processes racing on the same cache entry never read a half-written
  // source or dlopen a half-written .so. The suffix is unique per process
  // AND per compile so sibling HostJit instances on other threads never
  // clobber each other's temp files; the temp source keeps its .cpp
  // extension so the driver recognizes it.
  // Chaos hook standing in for every way a real compiler invocation dies
  // (missing driver, full /tmp, OOM-killed cc1plus); a delay policy here
  // models a wedged compiler for the deadline tests.
  if (support::faultShouldFail("jit.compile")) {
    Error = "HostJit: fault injected at jit.compile";
    return false;
  }
  static std::atomic<unsigned> Seq{0};
  std::string Uniq =
      std::to_string(::getpid()) + "-" + std::to_string(++Seq);
  std::string TmpSrc = SrcPath + ".tmp" + Uniq + ".cpp";
  std::string TmpSo = SoPath + ".tmp." + Uniq;
  std::string TmpLog = LogPath + ".tmp." + Uniq;
  // Every failure path removes all three temps (whichever exist): the
  // compiler log is captured into the error message before cleanup, so
  // nothing post-mortem-worthy is lost and a crashing client can retry
  // forever without the cache directory accreting orphaned temp files.
  auto CleanupTemps = [&] {
    std::error_code EC;
    fs::remove(TmpSrc, EC);
    fs::remove(TmpSo, EC);
    fs::remove(TmpLog, EC);
  };
  {
    std::ofstream Out(TmpSrc);
    Out << Source;
    if (!Out) {
      Error = "HostJit: cannot write source file " + TmpSrc;
      CleanupTemps();
      return false;
    }
  }
  // Paths are quoted (cache dirs may contain spaces); Compiler and the
  // flag strings are left bare on purpose — each may carry several shell
  // words ("ccache g++", "-O2 -march=native"). ExtraFlags come after the
  // instance-wide Flags so a per-plan -O3 overrides the -O1 default.
  std::string Cmd = Opts.Compiler + " " + Opts.Flags +
                    (ExtraFlags.empty() ? "" : " " + ExtraFlags) +
                    " -shared -fPIC -o \"" + TmpSo + "\" \"" + TmpSrc +
                    "\" 2>\"" + TmpLog + "\"";
  int Rc = std::system(Cmd.c_str());
  if (Rc != 0) {
    // Decode the wait status so the message matches what a user sees
    // rerunning the printed command by hand.
    std::string Reason;
    if (Rc == -1)
      Reason = "could not launch shell";
    else if (WIFEXITED(Rc))
      Reason = "exit status " + std::to_string(WEXITSTATUS(Rc));
    else if (WIFSIGNALED(Rc))
      Reason = "killed by signal " + std::to_string(WTERMSIG(Rc));
    else
      Reason = "wait status " + std::to_string(Rc);
    Error = "HostJit: host compiler failed (" + Reason +
            ")\ncommand: " + Cmd + "\n" + readFile(TmpLog);
    CleanupTemps();
    return false;
  }
  // Publish fail-safe: a disk hit requires source and .so to agree, so
  // first invalidate the entry by removing the stored source, then land
  // the .so, then the source last. A crash anywhere in between leaves a
  // mismatched or missing source and the next load() recompiles instead
  // of ever pairing a source with an object it was not built from.
  auto Publish = [&Error](const std::string &From, const std::string &To) {
    std::error_code EC;
    fs::rename(From, To, EC);
    if (EC) {
      Error = "HostJit: cannot move " + From + " to " + To + ": " +
              EC.message();
      return false;
    }
    return true;
  };
  if (!Publish(TmpSo, SoPath) || !Publish(TmpLog, LogPath) ||
      !Publish(TmpSrc, SrcPath)) {
    // Whichever temps were not renamed into place yet are swept here
    // (remove() on the already-published names' temp paths is a no-op).
    CleanupTemps();
    return false;
  }
  std::lock_guard<std::mutex> L(Mu);
  ++S.Compiles;
  return true;
}

std::shared_ptr<JitModule> HostJit::loadUncached(const std::string &Source,
                                                 const std::string &ExtraFlags,
                                                 std::string &Error) {
  std::uint64_t Key = fnv1a({&Opts.Compiler, &Opts.Flags, &ExtraFlags,
                             &Source});
  std::string Base = Opts.CacheDir + "/moma-" + hex64(Key);
  std::string SrcPath = Base + ".cpp";
  std::string SoPath = Base + ".so";
  std::string LogPath = Base + ".log";

  // The stored-source removal that used to precede publishing lives here,
  // before compile() spends compiler time: a disk entry counts as a hit
  // only if the source it was built from is byte-identical — this guards
  // against both hash collisions and a mangled cache directory.
  std::error_code EC;
  bool FromDisk = Opts.UseDiskCache && fs::exists(SoPath, EC) &&
                  readFile(SrcPath) == Source;
  if (!FromDisk) {
    fs::remove(SrcPath, EC); // invalidate any stale pairing first
    if (!compile(Source, ExtraFlags, SrcPath, SoPath, LogPath, Error))
      return nullptr;
  }

  // Chaos hook for loader failures (corrupt .so, exhausted mmap space);
  // distinct from jit.compile so tests can fail the load of an object
  // that compiled fine.
  if (support::faultShouldFail("jit.dlopen")) {
    Error = "HostJit: fault injected at jit.dlopen";
    return nullptr;
  }
  void *Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle && FromDisk) {
    // A stale or truncated cache entry: rebuild once from source.
    FromDisk = false;
    fs::remove(SoPath, EC);
    fs::remove(SrcPath, EC);
    if (!compile(Source, ExtraFlags, SrcPath, SoPath, LogPath, Error))
      return nullptr;
    Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  }
  if (!Handle) {
    const char *DlMsg = dlerror();
    Error = std::string("HostJit: dlopen failed: ") +
            (DlMsg ? DlMsg : "(no message)");
    return nullptr;
  }
  if (FromDisk) {
    std::lock_guard<std::mutex> L(Mu);
    ++S.DiskHits;
  }
  return std::shared_ptr<JitModule>(
      new JitModule(Handle, SoPath, SrcPath, FromDisk));
}

std::shared_ptr<JitModule> HostJit::load(const std::string &Source,
                                         const std::string &ExtraFlags) {
  Err.clear();

  // Fast path and single-flight admission under one lock. The in-memory
  // map is keyed by per-compile extra flags plus the full source (the
  // instance-wide flags and compiler are fixed per instance), so a hash
  // collision can never alias two kernels and a flag variant can never
  // alias another. '\0' separates the parts unambiguously.
  std::string MapKey = ExtraFlags + '\0' + Source;
  std::shared_ptr<Flight> F;
  bool Leader = false;
  {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Loaded.find(MapKey);
    if (It != Loaded.end()) {
      ++S.MemoryHits;
      It->second.LastUse = ++UseTick;
      return It->second.Module;
    }
    auto FIt = InFlight.find(MapKey);
    if (FIt != InFlight.end()) {
      F = FIt->second;
    } else {
      F = std::make_shared<Flight>();
      InFlight.emplace(MapKey, F);
      Leader = true;
    }
  }

  if (!Leader) {
    // Another thread is already compiling this source: wait for its
    // result and share the module (or its failure).
    std::unique_lock<std::mutex> FL(F->M);
    F->CV.wait(FL, [&] { return F->Done; });
    if (!F->Module) {
      Err.set(F->Error);
      return nullptr;
    }
    std::lock_guard<std::mutex> L(Mu);
    ++S.MemoryHits;
    return F->Module;
  }

  // Leader: run the compile + dlopen slow path with no locks held, then
  // publish to the cache and wake the followers.
  std::string Error;
  std::shared_ptr<JitModule> Module = loadUncached(Source, ExtraFlags, Error);
  {
    std::lock_guard<std::mutex> L(Mu);
    if (Module) {
      Loaded[MapKey] = Entry{Module, ++UseTick};
      evictLocked();
    }
    InFlight.erase(MapKey);
  }
  {
    std::lock_guard<std::mutex> FL(F->M);
    F->Done = true;
    F->Module = Module;
    F->Error = Error;
  }
  F->CV.notify_all();
  if (!Module)
    Err.set(Error);
  return Module;
}

} // namespace jit
} // namespace moma
