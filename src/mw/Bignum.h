//===- mw/Bignum.h - Arbitrary-precision unsigned integers ----*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arbitrary-precision unsigned integer arithmetic on dynamic limb vectors.
///
/// This class plays two roles in the reproduction:
///  1. It is the substrate the paper's GMP baseline stands on (see
///     baselines/GmpLike.h): a generic multiprecision library with dynamic
///     allocation and division-based modular reduction, algorithmically the
///     same class of implementation as GMP's generic mpz path.
///  2. It is the oracle for everything else: fixed-width MWUInt arithmetic,
///     Barrett/Montgomery reduction, the IR interpreter and the rewrite
///     system are all validated against Bignum results.
///
/// Representation: little-endian vector of 64-bit limbs, normalized so the
/// most significant limb is nonzero (empty vector == 0). All values are
/// non-negative; subtraction requires A >= B.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_MW_BIGNUM_H
#define MOMA_MW_BIGNUM_H

#include "mw/Limb.h"

#include <cstdint>
#include <string>
#include <vector>

namespace moma {

class Rng;

namespace mw {

/// Arbitrary-precision unsigned integer.
class Bignum {
public:
  Bignum() = default;
  /*implicit*/ Bignum(std::uint64_t Value);

  /// Builds a value from little-endian limbs (normalizes).
  static Bignum fromWords(const std::uint64_t *Words, size_t Count);
  static Bignum fromWords(const std::vector<std::uint64_t> &Words) {
    return fromWords(Words.data(), Words.size());
  }

  /// Parses a hexadecimal string (optional 0x prefix). Aborts on bad input.
  static Bignum fromHex(const std::string &Hex);

  /// Parses a decimal string. Aborts on bad input.
  static Bignum fromDecimal(const std::string &Dec);

  /// 2^Exp.
  static Bignum powerOfTwo(unsigned Exp);

  /// Uniformly random value in [0, Bound). Bound must be nonzero.
  static Bignum random(Rng &R, const Bignum &Bound);

  /// Random value of exactly \p Bits significant bits (top bit set).
  static Bignum randomBits(Rng &R, unsigned Bits);

  // -- Observers ---------------------------------------------------------

  bool isZero() const { return Limbs.empty(); }
  bool isOne() const { return Limbs.size() == 1 && Limbs[0] == 1; }
  bool isOdd() const { return !Limbs.empty() && (Limbs[0] & 1); }

  /// Number of significant bits (0 for zero).
  unsigned bitWidth() const;

  /// Value of bit \p I (counted from the least significant bit).
  bool bit(unsigned I) const;

  /// Number of limbs in the normalized representation.
  size_t numLimbs() const { return Limbs.size(); }

  /// Limb \p I (little-endian); 0 beyond the representation.
  std::uint64_t limb(size_t I) const { return I < Limbs.size() ? Limbs[I] : 0; }

  /// Low 64 bits of the value.
  std::uint64_t low64() const { return limb(0); }

  /// Copies the low \p Count little-endian words into \p Out, zero-padding.
  void toWords(std::uint64_t *Out, size_t Count) const;

  std::string toHex() const;
  std::string toDecimal() const;

  // -- Comparison --------------------------------------------------------

  /// Returns -1, 0, or +1.
  int compare(const Bignum &RHS) const;

  bool operator==(const Bignum &RHS) const { return compare(RHS) == 0; }
  bool operator!=(const Bignum &RHS) const { return compare(RHS) != 0; }
  bool operator<(const Bignum &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const Bignum &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const Bignum &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const Bignum &RHS) const { return compare(RHS) >= 0; }

  // -- Arithmetic --------------------------------------------------------

  Bignum operator+(const Bignum &RHS) const;
  /// Requires *this >= RHS (unsigned subtraction).
  Bignum operator-(const Bignum &RHS) const;
  Bignum operator*(const Bignum &RHS) const;
  Bignum operator<<(unsigned Shift) const;
  Bignum operator>>(unsigned Shift) const;

  Bignum &operator+=(const Bignum &RHS) { return *this = *this + RHS; }
  Bignum &operator-=(const Bignum &RHS) { return *this = *this - RHS; }
  Bignum &operator*=(const Bignum &RHS) { return *this = *this * RHS; }

  /// Keeps the low \p Bits bits (x mod 2^Bits).
  Bignum truncate(unsigned Bits) const;

  /// Quotient and remainder via Knuth Algorithm D. Divisor must be nonzero.
  struct DivRem;
  DivRem divRem(const Bignum &Divisor) const;

  Bignum operator/(const Bignum &RHS) const;
  Bignum operator%(const Bignum &RHS) const;

  // -- Modular arithmetic (oracle versions, division-based) ---------------

  /// (*this + RHS) mod Q; inputs need not be reduced.
  Bignum addMod(const Bignum &RHS, const Bignum &Q) const;
  /// (*this - RHS) mod Q for reduced inputs (wraps around Q).
  Bignum subMod(const Bignum &RHS, const Bignum &Q) const;
  /// (*this * RHS) mod Q.
  Bignum mulMod(const Bignum &RHS, const Bignum &Q) const;
  /// (*this ^ Exp) mod Q by square-and-multiply.
  Bignum powMod(const Bignum &Exp, const Bignum &Q) const;

  /// Modular inverse via extended binary GCD. Requires gcd(*this, Q) == 1
  /// and Q > 1. Aborts if not invertible.
  Bignum invMod(const Bignum &Q) const;

private:
  void normalize();

  std::vector<std::uint64_t> Limbs;
};

/// Result pair of Bignum::divRem.
struct Bignum::DivRem {
  Bignum Quotient;
  Bignum Remainder;
};

inline Bignum Bignum::operator/(const Bignum &RHS) const {
  return divRem(RHS).Quotient;
}

inline Bignum Bignum::operator%(const Bignum &RHS) const {
  return divRem(RHS).Remainder;
}

} // namespace mw
} // namespace moma

#endif // MOMA_MW_BIGNUM_H
