//===- mw/Bignum.cpp - Arbitrary-precision unsigned integers --------------===//

#include "mw/Bignum.h"

#include "support/Error.h"
#include "support/Rng.h"

#include <algorithm>
#include <cassert>

using namespace moma;
using namespace moma::mw;

Bignum::Bignum(std::uint64_t Value) {
  if (Value)
    Limbs.push_back(Value);
}

void Bignum::normalize() {
  while (!Limbs.empty() && Limbs.back() == 0)
    Limbs.pop_back();
}

Bignum Bignum::fromWords(const std::uint64_t *Words, size_t Count) {
  Bignum N;
  N.Limbs.assign(Words, Words + Count);
  N.normalize();
  return N;
}

Bignum Bignum::powerOfTwo(unsigned Exp) {
  Bignum N;
  N.Limbs.assign(Exp / 64 + 1, 0);
  N.Limbs.back() = 1ull << (Exp % 64);
  return N;
}

Bignum Bignum::fromHex(const std::string &Hex) {
  size_t Start = 0;
  if (Hex.size() >= 2 && Hex[0] == '0' && (Hex[1] == 'x' || Hex[1] == 'X'))
    Start = 2;
  if (Start == Hex.size())
    fatalError("empty hex literal '" + Hex + "'");
  Bignum N;
  for (size_t I = Start; I < Hex.size(); ++I) {
    char C = Hex[I];
    unsigned Digit;
    if (C >= '0' && C <= '9')
      Digit = static_cast<unsigned>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Digit = static_cast<unsigned>(C - 'a') + 10;
    else if (C >= 'A' && C <= 'F')
      Digit = static_cast<unsigned>(C - 'A') + 10;
    else
      fatalError("bad hex digit in '" + Hex + "'");
    N = (N << 4) + Bignum(Digit);
  }
  return N;
}

Bignum Bignum::fromDecimal(const std::string &Dec) {
  if (Dec.empty())
    fatalError("empty decimal literal");
  Bignum N;
  for (char C : Dec) {
    if (C < '0' || C > '9')
      fatalError("bad decimal digit in '" + Dec + "'");
    N = N * Bignum(10) + Bignum(static_cast<std::uint64_t>(C - '0'));
  }
  return N;
}

Bignum Bignum::randomBits(Rng &R, unsigned Bits) {
  assert(Bits >= 1 && "cannot draw a zero-bit value");
  Bignum N;
  unsigned FullLimbs = Bits / 64, TopBits = Bits % 64;
  N.Limbs.resize(FullLimbs + (TopBits ? 1 : 0));
  for (auto &L : N.Limbs)
    L = R.next64();
  if (TopBits)
    N.Limbs.back() = R.bits(TopBits);
  else
    N.Limbs.back() |= 1ull << 63;
  N.normalize();
  return N;
}

Bignum Bignum::random(Rng &R, const Bignum &Bound) {
  assert(!Bound.isZero() && "bound must be positive");
  unsigned Bits = Bound.bitWidth();
  // Rejection sampling over [0, 2^Bits).
  for (;;) {
    Bignum N;
    N.Limbs.resize((Bits + 63) / 64);
    for (auto &L : N.Limbs)
      L = R.next64();
    if (Bits % 64)
      N.Limbs.back() &= (1ull << (Bits % 64)) - 1;
    N.normalize();
    if (N < Bound)
      return N;
  }
}

unsigned Bignum::bitWidth() const {
  if (Limbs.empty())
    return 0;
  return static_cast<unsigned>((Limbs.size() - 1) * 64) +
         mw::bitWidth(Limbs.back());
}

bool Bignum::bit(unsigned I) const {
  size_t LimbIdx = I / 64;
  if (LimbIdx >= Limbs.size())
    return false;
  return (Limbs[LimbIdx] >> (I % 64)) & 1;
}

void Bignum::toWords(std::uint64_t *Out, size_t Count) const {
  for (size_t I = 0; I < Count; ++I)
    Out[I] = limb(I);
}

int Bignum::compare(const Bignum &RHS) const {
  if (Limbs.size() != RHS.Limbs.size())
    return Limbs.size() < RHS.Limbs.size() ? -1 : 1;
  for (size_t I = Limbs.size(); I-- > 0;)
    if (Limbs[I] != RHS.Limbs[I])
      return Limbs[I] < RHS.Limbs[I] ? -1 : 1;
  return 0;
}

Bignum Bignum::operator+(const Bignum &RHS) const {
  Bignum Result;
  size_t N = std::max(Limbs.size(), RHS.Limbs.size());
  Result.Limbs.resize(N + 1);
  Word Carry = 0;
  for (size_t I = 0; I < N; ++I)
    Result.Limbs[I] = addCarry(limb(I), RHS.limb(I), Carry, Carry);
  Result.Limbs[N] = Carry;
  Result.normalize();
  return Result;
}

Bignum Bignum::operator-(const Bignum &RHS) const {
  assert(*this >= RHS && "unsigned subtraction underflow");
  Bignum Result;
  Result.Limbs.resize(Limbs.size());
  Word Borrow = 0;
  for (size_t I = 0; I < Limbs.size(); ++I)
    Result.Limbs[I] = subBorrow(limb(I), RHS.limb(I), Borrow, Borrow);
  assert(Borrow == 0 && "subtraction underflow escaped the assert above");
  Result.normalize();
  return Result;
}

Bignum Bignum::operator*(const Bignum &RHS) const {
  if (isZero() || RHS.isZero())
    return Bignum();
  Bignum Result;
  Result.Limbs.assign(Limbs.size() + RHS.Limbs.size(), 0);
  for (size_t I = 0; I < Limbs.size(); ++I) {
    Word Carry = 0;
    for (size_t J = 0; J < RHS.Limbs.size(); ++J) {
      DWord Acc = static_cast<DWord>(Limbs[I]) * RHS.Limbs[J] +
                  Result.Limbs[I + J] + Carry;
      Result.Limbs[I + J] = static_cast<Word>(Acc);
      Carry = static_cast<Word>(Acc >> 64);
    }
    Result.Limbs[I + RHS.Limbs.size()] = Carry;
  }
  Result.normalize();
  return Result;
}

Bignum Bignum::operator<<(unsigned Shift) const {
  if (isZero())
    return Bignum();
  unsigned LimbShift = Shift / 64, BitShift = Shift % 64;
  Bignum Result;
  Result.Limbs.assign(Limbs.size() + LimbShift + 1, 0);
  for (size_t I = 0; I < Limbs.size(); ++I) {
    Result.Limbs[I + LimbShift] |= BitShift ? (Limbs[I] << BitShift)
                                            : Limbs[I];
    if (BitShift)
      Result.Limbs[I + LimbShift + 1] |= Limbs[I] >> (64 - BitShift);
  }
  Result.normalize();
  return Result;
}

Bignum Bignum::operator>>(unsigned Shift) const {
  unsigned LimbShift = Shift / 64, BitShift = Shift % 64;
  if (LimbShift >= Limbs.size())
    return Bignum();
  Bignum Result;
  Result.Limbs.assign(Limbs.size() - LimbShift, 0);
  for (size_t I = 0; I < Result.Limbs.size(); ++I) {
    Result.Limbs[I] = Limbs[I + LimbShift] >> BitShift;
    if (BitShift && I + LimbShift + 1 < Limbs.size())
      Result.Limbs[I] |= Limbs[I + LimbShift + 1] << (64 - BitShift);
  }
  Result.normalize();
  return Result;
}

Bignum Bignum::truncate(unsigned Bits) const {
  Bignum Result = *this;
  size_t KeepLimbs = (Bits + 63) / 64;
  if (Result.Limbs.size() > KeepLimbs)
    Result.Limbs.resize(KeepLimbs);
  if (Bits % 64 && Result.Limbs.size() == KeepLimbs && KeepLimbs > 0)
    Result.Limbs.back() &= (1ull << (Bits % 64)) - 1;
  Result.normalize();
  return Result;
}

/// Divides by a single-limb divisor; returns the remainder limb.
static Word divRemSingle(const std::vector<Word> &U, Word V,
                         std::vector<Word> &Quot) {
  Quot.assign(U.size(), 0);
  DWord Rem = 0;
  for (size_t I = U.size(); I-- > 0;) {
    DWord Cur = (Rem << 64) | U[I];
    Quot[I] = static_cast<Word>(Cur / V);
    Rem = Cur % V;
  }
  return static_cast<Word>(Rem);
}

Bignum::DivRem Bignum::divRem(const Bignum &Divisor) const {
  if (Divisor.isZero())
    fatalError("Bignum division by zero");
  DivRem Out;
  if (*this < Divisor) {
    Out.Remainder = *this;
    return Out;
  }
  if (Divisor.Limbs.size() == 1) {
    Word Rem = divRemSingle(Limbs, Divisor.Limbs[0], Out.Quotient.Limbs);
    Out.Quotient.normalize();
    Out.Remainder = Bignum(Rem);
    return Out;
  }

  // Knuth Algorithm D (TAOCP vol. 2, 4.3.1) in base 2^64.
  const size_t N = Divisor.Limbs.size();
  const size_t M = Limbs.size() - N;
  unsigned Shift = 64 - mw::bitWidth(Divisor.Limbs.back());

  // Normalized copies: VN has N limbs with the top bit set; UN has M+N+1.
  Bignum VNBig = Divisor << Shift;
  Bignum UNBig = *this << Shift;
  std::vector<Word> VN(N), UN(M + N + 1, 0);
  for (size_t I = 0; I < N; ++I)
    VN[I] = VNBig.limb(I);
  for (size_t I = 0; I < M + N + 1; ++I)
    UN[I] = UNBig.limb(I);

  Out.Quotient.Limbs.assign(M + 1, 0);
  for (size_t J = M + 1; J-- > 0;) {
    DWord Num = (static_cast<DWord>(UN[J + N]) << 64) | UN[J + N - 1];
    DWord QHat = Num / VN[N - 1];
    DWord RHat = Num % VN[N - 1];
    while (QHat >> 64 ||
           static_cast<DWord>(static_cast<Word>(QHat)) * VN[N - 2] >
               ((RHat << 64) | UN[J + N - 2])) {
      --QHat;
      RHat += VN[N - 1];
      if (RHat >> 64)
        break;
    }

    // Multiply and subtract QHat * VN from UN[J..J+N].
    Word Q64 = static_cast<Word>(QHat);
    __int128 T;
    __int128 Borrow = 0;
    for (size_t I = 0; I < N; ++I) {
      DWord P = static_cast<DWord>(Q64) * VN[I];
      T = static_cast<__int128>(UN[I + J]) - Borrow -
          static_cast<Word>(P);
      UN[I + J] = static_cast<Word>(T);
      Borrow = static_cast<__int128>(static_cast<Word>(P >> 64)) -
               (T >> 64);
    }
    T = static_cast<__int128>(UN[J + N]) - Borrow;
    UN[J + N] = static_cast<Word>(T);

    if (T < 0) {
      // QHat was one too large; add the divisor back.
      --Q64;
      Word Carry = 0;
      for (size_t I = 0; I < N; ++I)
        UN[I + J] = addCarry(UN[I + J], VN[I], Carry, Carry);
      UN[J + N] += Carry;
    }
    Out.Quotient.Limbs[J] = Q64;
  }
  Out.Quotient.normalize();

  Bignum Rem = Bignum::fromWords(UN.data(), N);
  Out.Remainder = Rem >> Shift;
  return Out;
}

Bignum Bignum::addMod(const Bignum &RHS, const Bignum &Q) const {
  return (*this + RHS) % Q;
}

Bignum Bignum::subMod(const Bignum &RHS, const Bignum &Q) const {
  Bignum A = *this % Q, B = RHS % Q;
  if (A >= B)
    return A - B;
  return A + Q - B;
}

Bignum Bignum::mulMod(const Bignum &RHS, const Bignum &Q) const {
  return (*this * RHS) % Q;
}

Bignum Bignum::powMod(const Bignum &Exp, const Bignum &Q) const {
  if (Q.isOne())
    return Bignum();
  Bignum Base = *this % Q;
  Bignum Result(1);
  for (unsigned I = Exp.bitWidth(); I-- > 0;) {
    Result = Result.mulMod(Result, Q);
    if (Exp.bit(I))
      Result = Result.mulMod(Base, Q);
  }
  return Result;
}

Bignum Bignum::invMod(const Bignum &Q) const {
  assert(Q > Bignum(1) && "modulus must exceed 1");
  // Extended Euclid with signed Bezout coefficients tracked as
  // (negative?, magnitude) pairs.
  Bignum R0 = Q, R1 = *this % Q;
  if (R1.isZero())
    fatalError("invMod: value is 0 mod Q, not invertible");
  Bignum T0Mag, T1Mag(1);
  bool T0Neg = false, T1Neg = false;

  while (!R1.isZero()) {
    DivRem QR = R0.divRem(R1);
    // T2 = T0 - Quot * T1 (signed).
    Bignum Prod = QR.Quotient * T1Mag;
    bool ProdNeg = T1Neg;
    Bignum T2Mag;
    bool T2Neg;
    if (T0Neg == ProdNeg) {
      if (T0Mag >= Prod) {
        T2Mag = T0Mag - Prod;
        T2Neg = T0Neg;
      } else {
        T2Mag = Prod - T0Mag;
        T2Neg = !T0Neg;
      }
    } else {
      T2Mag = T0Mag + Prod;
      T2Neg = T0Neg;
    }
    T0Mag = T1Mag;
    T0Neg = T1Neg;
    T1Mag = T2Mag;
    T1Neg = T2Neg;
    R0 = R1;
    R1 = QR.Remainder;
  }
  if (!R0.isOne())
    fatalError("invMod: value not coprime with modulus");
  if (T0Neg)
    return Q - (T0Mag % Q);
  return T0Mag % Q;
}

std::string Bignum::toHex() const {
  if (isZero())
    return "0x0";
  std::string Out;
  for (size_t I = Limbs.size(); I-- > 0;) {
    char Buf[17];
    std::snprintf(Buf, sizeof(Buf),
                  I + 1 == Limbs.size() ? "%llx" : "%016llx",
                  static_cast<unsigned long long>(Limbs[I]));
    Out += Buf;
  }
  return "0x" + Out;
}

std::string Bignum::toDecimal() const {
  if (isZero())
    return "0";
  std::string Out;
  std::vector<Word> Cur = Limbs;
  std::vector<Word> Quot;
  while (!Cur.empty()) {
    Word Rem = divRemSingle(Cur, 10000000000000000000ull, Quot);
    while (!Quot.empty() && Quot.back() == 0)
      Quot.pop_back();
    char Buf[24];
    std::snprintf(Buf, sizeof(Buf), Quot.empty() ? "%llu" : "%019llu",
                  static_cast<unsigned long long>(Rem));
    Out = std::string(Buf) + Out;
    Cur = Quot;
  }
  return Out;
}
