//===- mw/Limb.h - Single-word (machine word) arithmetic ------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-word arithmetic primitives, the ω₀ = 64-bit base case of MoMA
/// (paper §3.1, Listing 1). Every multi-word operation in mw/MWUInt.h
/// bottoms out in these. As in the paper, the double-word representation
/// (unsigned __int128) is used only to capture carries and wide products;
/// full quad-word arithmetic is never required at this level.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_MW_LIMB_H
#define MOMA_MW_LIMB_H

#include <cstdint>

namespace moma {
namespace mw {

using Word = std::uint64_t;
using DWord = unsigned __int128;

/// Number of bits in a machine word (the paper's ω₀ on NVIDIA GPUs and
/// x86-64 alike).
inline constexpr unsigned WordBits = 64;

/// c = a + b + CarryIn; returns the sum word and sets \p CarryOut to the
/// carry bit (paper Eq. 6 with explicit carry, Listing 2 `_dadd` inner step).
inline Word addCarry(Word A, Word B, Word CarryIn, Word &CarryOut) {
  DWord S = static_cast<DWord>(A) + B + CarryIn;
  CarryOut = static_cast<Word>(S >> WordBits);
  return static_cast<Word>(S);
}

/// c = a - b - BorrowIn; returns the difference word and sets \p BorrowOut
/// to the borrow bit (paper Eq. 7, Listing 2 `_dsub` inner step).
inline Word subBorrow(Word A, Word B, Word BorrowIn, Word &BorrowOut) {
  DWord D = static_cast<DWord>(A) - B - BorrowIn;
  BorrowOut = static_cast<Word>(D >> WordBits) & 1;
  return static_cast<Word>(D);
}

/// Full 64x64 -> 128 multiplication; returns the low word and sets \p Hi
/// (paper Listing 1 `_smul`).
inline Word mulWide(Word A, Word B, Word &Hi) {
  DWord P = static_cast<DWord>(A) * B;
  Hi = static_cast<Word>(P >> WordBits);
  return static_cast<Word>(P);
}

/// Single-word modular addition (paper Listing 1 `_saddmod`, Eq. 2).
/// Requires A, B in [0, Q). Uses >= rather than the listing's > so that
/// A + B == Q maps to 0 (see DESIGN.md fidelity notes).
inline Word addMod(Word A, Word B, Word Q) {
  DWord T = static_cast<DWord>(A) + B;
  return T >= Q ? static_cast<Word>(T - Q) : static_cast<Word>(T);
}

/// Single-word modular subtraction (paper Listing 1 `_ssubmod`, Eq. 3).
inline Word subMod(Word A, Word B, Word Q) {
  Word T = A - B;
  return A < B ? T + Q : T;
}

/// Barrett parameters for a single-word modulus of bit-width \p MBits
/// (paper Listing 1, Eq. 15-18): Mu = floor(2^(2*MBits+3) / Q).
struct WordBarrett {
  Word Q = 0;
  Word Mu = 0;
  unsigned MBits = 0;
};

/// Precomputes Mu for \p Q whose bit-width MBits satisfies MBits <= 60
/// so that Mu = floor(2^(2*MBits+3)/Q) fits in a word (Mu < 2^(MBits+4)).
inline WordBarrett makeWordBarrett(Word Q, unsigned MBits) {
  WordBarrett P;
  P.Q = Q;
  P.MBits = MBits;
  // 2*MBits + 3 <= 123 < 128, so the numerator fits a DWord.
  P.Mu = static_cast<Word>((static_cast<DWord>(1) << (2 * MBits + 3)) / Q);
  return P;
}

/// Single-word Barrett modular multiplication (paper Listing 1 `_smulmod`):
///   t  = a * b
///   r  = ((t >> (m-2)) * Mu) >> (m+5)
///   c  = t - r * q, then one conditional subtraction.
inline Word mulModBarrett(Word A, Word B, const WordBarrett &P) {
  DWord T = static_cast<DWord>(A) * B;
  DWord R = T >> (P.MBits - 2);
  R *= P.Mu;
  R >>= (P.MBits + 5);
  T -= R * P.Q;
  return T >= P.Q ? static_cast<Word>(T - P.Q) : static_cast<Word>(T);
}

/// Reference modular multiplication via 128-bit remainder, the oracle for
/// mulModBarrett in tests.
inline Word mulModNaive(Word A, Word B, Word Q) {
  return static_cast<Word>((static_cast<DWord>(A) * B) % Q);
}

/// Count of significant bits in \p X (0 for X == 0).
inline unsigned bitWidth(Word X) {
  return X == 0 ? 0 : 64 - static_cast<unsigned>(__builtin_clzll(X));
}

} // namespace mw
} // namespace moma

#endif // MOMA_MW_LIMB_H
