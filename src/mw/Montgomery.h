//===- mw/Montgomery.h - Multi-word Montgomery reduction ------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Montgomery multiplication for W-word odd moduli. The paper (§5.2) notes
/// that the MoMA infrastructure "also supports a modulus of full bit-width,
/// employing Montgomery multiplication" — Barrett's μ requires four free
/// top bits, Montgomery does not. This is that support, plus the baseline
/// for the reduction-strategy ablation bench.
///
/// Uses word-by-word REDC (SOS): R = 2^(64W), QInv = -q^{-1} mod 2^64.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_MW_MONTGOMERY_H
#define MOMA_MW_MONTGOMERY_H

#include "mw/MWUInt.h"

#include "support/Error.h"

namespace moma {
namespace mw {

/// Computes -Q^{-1} mod 2^64 for odd Q by Newton iteration.
inline Word negInvModWord(Word Q) {
  assert((Q & 1) && "modulus must be odd");
  Word X = Q; // 3 correct bits
  for (int I = 0; I < 5; ++I)
    X *= 2 - Q * X; // doubles correct bits each step: 6, 12, 24, 48, 96
  return ~X + 1; // -Q^{-1}
}

/// Precomputed Montgomery context for a W-word odd modulus.
template <unsigned W> class Montgomery {
public:
  Montgomery() = default;

  /// Builds the context for odd modulus \p Q with bitWidth(Q) <= 64*W.
  /// Unlike Barrett, full-width moduli are accepted.
  static Montgomery create(const Bignum &Q,
                           MulAlgorithm Alg = MulAlgorithm::Schoolbook) {
    if (!Q.isOdd())
      fatalError("Montgomery: modulus must be odd");
    if (Q.bitWidth() > 64 * W || Q.bitWidth() < 2)
      fatalError("Montgomery<" + std::to_string(W) +
                 ">: modulus bit-width out of range");
    Montgomery M;
    M.Alg = Alg;
    M.Q = MWUInt<W>::fromBignum(Q);
    M.QInv = negInvModWord(Q.low64());
    Bignum R = Bignum::powerOfTwo(64 * W) % Q;
    M.RModQ = MWUInt<W>::fromBignum(R);
    M.RRModQ = MWUInt<W>::fromBignum(R.mulMod(R, Q));
    return M;
  }

  const MWUInt<W> &modulus() const { return Q; }

  /// Montgomery form of 1 (i.e. R mod Q).
  const MWUInt<W> &one() const { return RModQ; }

  /// Converts A (< Q) into Montgomery form: A * R mod Q.
  MWUInt<W> toMont(const MWUInt<W> &A) const {
    return redc(A.mulFull(RRModQ, Alg));
  }

  /// Converts from Montgomery form back to the standard representative.
  MWUInt<W> fromMont(const MWUInt<W> &A) const {
    return redc(A.template resize<2 * W>());
  }

  /// Montgomery product: redc(A * B) for A, B in Montgomery form.
  MWUInt<W> mulMont(const MWUInt<W> &A, const MWUInt<W> &B) const {
    return redc(A.mulFull(B, Alg));
  }

  /// (A + B) mod Q (works in either representation).
  MWUInt<W> addMod(const MWUInt<W> &A, const MWUInt<W> &B) const {
    Word Carry;
    MWUInt<W> Sum = A.addWithCarry(B, Carry);
    if (Carry || Sum >= Q) {
      Word Borrow;
      Sum = Sum.subWithBorrow(Q, Borrow);
    }
    return Sum;
  }

  /// (A - B) mod Q (works in either representation).
  MWUInt<W> subMod(const MWUInt<W> &A, const MWUInt<W> &B) const {
    Word Borrow;
    MWUInt<W> Diff = A.subWithBorrow(B, Borrow);
    if (Borrow) {
      Word Carry;
      Diff = Diff.addWithCarry(Q, Carry);
    }
    return Diff;
  }

  /// Plain modular multiply of standard representatives (converts in/out).
  MWUInt<W> mulMod(const MWUInt<W> &A, const MWUInt<W> &B) const {
    return fromMont(mulMont(toMont(A), toMont(B)));
  }

  /// REDC: given T < Q * 2^(64W), returns T * 2^(-64W) mod Q.
  MWUInt<W> redc(MWUInt<2 * W> T) const {
    // Word-serial reduction: after step i, the low i+1 words of T are zero.
    Word ExtraCarry = 0; // accumulates overflow beyond 2W words
    for (unsigned I = 0; I < W; ++I) {
      Word M = T.Limbs[I] * QInv;
      // T += M * Q << (64*I).
      Word Carry = 0;
      for (unsigned J = 0; J < W; ++J) {
        DWord Acc = static_cast<DWord>(M) * Q.Limbs[J] + T.Limbs[I + J] +
                    Carry;
        T.Limbs[I + J] = static_cast<Word>(Acc);
        Carry = static_cast<Word>(Acc >> 64);
      }
      for (unsigned J = I + W; Carry && J < 2 * W; ++J)
        T.Limbs[J] = addCarry(T.Limbs[J], 0, Carry, Carry);
      ExtraCarry += Carry;
      assert(T.Limbs[I] == 0 && "REDC failed to clear a low word");
    }
    MWUInt<W> Out;
    for (unsigned I = 0; I < W; ++I)
      Out.Limbs[I] = T.Limbs[W + I];
    if (ExtraCarry || Out >= Q) {
      Word Borrow;
      Out = Out.subWithBorrow(Q, Borrow);
    }
    assert(Out < Q && "REDC result out of range");
    return Out;
  }

private:
  MWUInt<W> Q;
  MWUInt<W> RModQ;
  MWUInt<W> RRModQ;
  Word QInv = 0;
  MulAlgorithm Alg = MulAlgorithm::Schoolbook;
};

} // namespace mw
} // namespace moma

#endif // MOMA_MW_MONTGOMERY_H
