//===- mw/Barrett.h - Multi-word Barrett modular reduction ----*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Barrett reduction for W-word moduli, generalizing the paper's Listing 1
/// (single word) and Listing 4 (double word) to any word count.
///
/// With the modulus bit-width m at most 64*W - 4 (the paper's "k-4 bits"
/// convention, §5.2) and μ = ⌊2^(2m+3)/q⌋ (Eq. 16 with k = 2m+3):
///
///   t  = a·b                          (2W words)
///   r₁ = t >> (m-2)                   (fits W words: r₁ < 2^(m+2))
///   r₂ = r₁·μ                         (2W words)
///   e  = r₂ >> (m+5)                  (fits W words: e ≤ ⌊t/q⌋)
///   c  = t - e·q                      (< 2q, low W words suffice)
///   if (c >= q) c -= q                (the single conditional subtraction)
///
/// The approximation error is at most one (Eq. 17 plus the two guard bits
/// before and five after the μ multiply), so exactly one conditional
/// subtraction is required; a debug assert checks c < q afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_MW_BARRETT_H
#define MOMA_MW_BARRETT_H

#include "mw/MWUInt.h"

#include "support/Error.h"

namespace moma {
namespace mw {

/// Precomputed Barrett parameters for a W-word modulus.
template <unsigned W> class Barrett {
public:
  Barrett() = default;

  /// Builds the context for modulus \p Q. Aborts unless
  /// 2 <= bitWidth(Q) <= 64*W - 4 (so that μ fits W words and the shift
  /// amounts are in range) and Q is not a power of two: for Q = 2^(m-1),
  /// μ = 2^(m+4) exactly, which needs m+5 bits and overflows the W-word
  /// container when m = 64W-4. (Powers of two are degenerate moduli here
  /// anyway — every deployment modulus is an odd prime.)
  static Barrett create(const Bignum &Q,
                        MulAlgorithm Alg = MulAlgorithm::Schoolbook) {
    unsigned MBits = Q.bitWidth();
    if (MBits < 2 || MBits > 64 * W - 4)
      fatalError("Barrett<" + std::to_string(W) + ">: modulus bit-width " +
                 std::to_string(MBits) + " outside [2, " +
                 std::to_string(64 * W - 4) + "]");
    if (Q == Bignum::powerOfTwo(MBits - 1))
      fatalError("Barrett<" + std::to_string(W) +
                 ">: power-of-two modulus 2^" + std::to_string(MBits - 1) +
                 " unsupported (mu = 2^(m+4) can overflow the container)");
    Barrett B;
    B.ModBits = MBits;
    B.Alg = Alg;
    B.Q = MWUInt<W>::fromBignum(Q);
    B.Mu = MWUInt<W>::fromBignum(Bignum::powerOfTwo(2 * MBits + 3) / Q);
    return B;
  }

  const MWUInt<W> &modulus() const { return Q; }
  const MWUInt<W> &mu() const { return Mu; }
  unsigned modulusBits() const { return ModBits; }
  MulAlgorithm mulAlgorithm() const { return Alg; }

  /// (A + B) mod Q for reduced inputs (paper Eq. 2, rule 24).
  MWUInt<W> addMod(const MWUInt<W> &A, const MWUInt<W> &B) const {
    Word Carry;
    MWUInt<W> Sum = A.addWithCarry(B, Carry);
    // Q uses at most 64W-4 bits, so A + B < 2^(64W) and Carry is always 0;
    // keep the check for robustness with near-full-width inputs.
    if (Carry || Sum >= Q) {
      Word Borrow;
      Sum = Sum.subWithBorrow(Q, Borrow);
    }
    return Sum;
  }

  /// (A - B) mod Q for reduced inputs (paper Eq. 3, rule 25).
  MWUInt<W> subMod(const MWUInt<W> &A, const MWUInt<W> &B) const {
    Word Borrow;
    MWUInt<W> Diff = A.subWithBorrow(B, Borrow);
    if (Borrow) {
      Word Carry;
      Diff = Diff.addWithCarry(Q, Carry);
    }
    return Diff;
  }

  /// (A * B) mod Q via Barrett reduction (paper Listing 4 generalized).
  MWUInt<W> mulMod(const MWUInt<W> &A, const MWUInt<W> &B) const {
    MWUInt<2 * W> T = A.mulFull(B, Alg);

    MWUInt<W> R1;
    detail::shrArr(T.Limbs.data(), 2 * W, ModBits - 2, R1.Limbs.data(), W);

    MWUInt<2 * W> R2 = R1.mulFull(Mu, Alg);

    MWUInt<W> E;
    detail::shrArr(R2.Limbs.data(), 2 * W, ModBits + 5, E.Limbs.data(), W);

    // c = t - e*q fits in W words because t - e*q < 2q < 2^(64W), so the
    // low W words of t and e*q suffice. The truncated subtraction
    // legitimately borrows whenever t has nonzero high words (any product
    // >= 2^(64W)): the borrow cancels against the discarded high words of
    // e*q, and the low-word difference is already the exact remainder.
    MWUInt<W> TLow = T.template resize<W>();
    MWUInt<W> P = E.mulLow(Q);
    Word Borrow;
    MWUInt<W> C = TLow.subWithBorrow(P, Borrow);
    (void)Borrow;

#ifndef NDEBUG
    // Debug-only full-width validation of the two Barrett invariants: the
    // quotient estimate never exceeds the true quotient (the 2W-word
    // difference t - e*q cannot go negative), and the remainder stays
    // below 2^(64W) (its high W words are zero), matching the truncated C.
    {
      MWUInt<2 * W> EQ = E.mulFull(Q, Alg);
      Word FullBorrow;
      MWUInt<2 * W> CFull = T.subWithBorrow(EQ, FullBorrow);
      assert(FullBorrow == 0 &&
             "Barrett estimate exceeded the true quotient");
      for (unsigned I = W; I < 2 * W; ++I)
        assert(CFull.Limbs[I] == 0 && "Barrett remainder exceeded W words");
      assert(CFull.template resize<W>() == C &&
             "truncated subtraction diverged from the full-width remainder");
    }
#endif

    if (C >= Q) {
      C = C.subWithBorrow(Q, Borrow);
    }
    assert(C < Q && "Barrett error bound violated: needs a 2nd subtraction");
    return C;
  }

  /// (Base ^ Exp) mod Q by left-to-right square and multiply.
  MWUInt<W> powMod(const MWUInt<W> &Base, const Bignum &Exp) const {
    MWUInt<W> Result = MWUInt<W>::fromWord(1);
    for (unsigned I = Exp.bitWidth(); I-- > 0;) {
      Result = mulMod(Result, Result);
      if (Exp.bit(I))
        Result = mulMod(Result, Base);
    }
    return Result;
  }

private:
  MWUInt<W> Q;
  MWUInt<W> Mu;
  unsigned ModBits = 0;
  MulAlgorithm Alg = MulAlgorithm::Schoolbook;
};

} // namespace mw
} // namespace moma

#endif // MOMA_MW_BARRETT_H
