//===- mw/MWUInt.h - Fixed-width multi-word unsigned integers -*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width multi-word unsigned integers: the runtime realization of the
/// paper's MoMA representation x = [x_0, ..., x_{k-1}] (Eq. 13/14) with one
/// 64-bit machine word per digit.
///
/// MWUInt<W> stores W little-endian limbs (limb 0 is least significant;
/// note the paper's bracket notation is most-significant-first, see the
/// "Word order" section of README.md). The operations here mirror the
/// structure of the code the
/// rewrite system generates — carry chains for addition (Eq. 6 / rule 29),
/// borrow chains for subtraction (Eq. 7 / rule 25), schoolbook (Eq. 8 /
/// rule 28) and Karatsuba (Eq. 9) multiplication — and are validated
/// against both Bignum and the IR interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_MW_MWUINT_H
#define MOMA_MW_MWUINT_H

#include "mw/Bignum.h"
#include "mw/Limb.h"

#include <array>
#include <cassert>
#include <cstring>

namespace moma {
namespace mw {

/// Selects the double-word multiplication rule, paper §2.2 / Fig. 5b.
enum class MulAlgorithm { Schoolbook, Karatsuba };

/// Selects the modular-reduction strategy a generated kernel bakes in:
/// Barrett (the paper's default, Listing 4) or Montgomery (REDC with a
/// plain-domain wrapper, the §5.2 alternative). Library-level contexts
/// (`mw/Barrett.h`, `mw/Montgomery.h`) and the code generator both key off
/// this enum so the ablation benches and the runtime autotuner can swap
/// strategies on otherwise identical kernels.
enum class Reduction { Barrett, Montgomery };

/// Human-readable reduction name ("barrett" / "montgomery").
inline const char *reductionName(Reduction R) {
  return R == Reduction::Barrett ? "barrett" : "montgomery";
}

namespace detail {

/// Out[0..N) = A[0..N) + B[0..N); returns the carry-out bit.
inline Word addArr(const Word *A, const Word *B, size_t N, Word *Out) {
  Word Carry = 0;
  for (size_t I = 0; I < N; ++I)
    Out[I] = addCarry(A[I], B[I], Carry, Carry);
  return Carry;
}

/// Out[0..N) = A[0..N) - B[0..N); returns the borrow-out bit.
inline Word subArr(const Word *A, const Word *B, size_t N, Word *Out) {
  Word Borrow = 0;
  for (size_t I = 0; I < N; ++I)
    Out[I] = subBorrow(A[I], B[I], Borrow, Borrow);
  return Borrow;
}

/// Adds B[0..NB) into Acc[0..NAcc) at word offset Off, propagating the carry
/// through the rest of Acc. Returns the final carry (0 unless Acc overflows).
inline Word addAtArr(Word *Acc, size_t NAcc, const Word *B, size_t NB,
                     size_t Off) {
  assert(Off + NB <= NAcc && "addend must fit in the accumulator");
  Word Carry = 0;
  size_t I = Off;
  for (size_t J = 0; J < NB; ++J, ++I)
    Acc[I] = addCarry(Acc[I], B[J], Carry, Carry);
  for (; Carry && I < NAcc; ++I)
    Acc[I] = addCarry(Acc[I], 0, Carry, Carry);
  return Carry;
}

/// -1 / 0 / +1 comparison of two N-word values.
inline int cmpArr(const Word *A, const Word *B, size_t N) {
  for (size_t I = N; I-- > 0;)
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  return 0;
}

/// Out[0..2N) = A[0..N) * B[0..N), schoolbook (paper Eq. 8 generalized).
inline void mulSchoolArr(const Word *A, const Word *B, size_t N, Word *Out) {
  std::memset(Out, 0, 2 * N * sizeof(Word));
  for (size_t I = 0; I < N; ++I) {
    Word Carry = 0;
    for (size_t J = 0; J < N; ++J) {
      DWord Acc = static_cast<DWord>(A[I]) * B[J] + Out[I + J] + Carry;
      Out[I + J] = static_cast<Word>(Acc);
      Carry = static_cast<Word>(Acc >> 64);
    }
    Out[I + N] = Carry;
  }
}

/// Scratch words required by mulKaratsubaArr for an N-word multiply.
constexpr size_t karatsubaScratch(size_t N) {
  return N <= 1 ? 0 : (2 * N + 2) + karatsubaScratch((N + 1) / 2);
}

/// Out[0..2N) = A[0..N) * B[0..N) via Karatsuba (paper Eq. 9):
///   c = p1 * z^2 + ((a0+a1)(b0+b1) - p0 - p1) * z + p0,
/// with the two half-sums' carry bits folded back in explicitly, exactly the
/// bookkeeping the rewrite system must perform when it applies the Karatsuba
/// rule at a level where the half-sum overflows the half width.
/// Odd sizes fall back to schoolbook.
inline void mulKaratsubaArr(const Word *A, const Word *B, size_t N, Word *Out,
                            Word *Scratch) {
  if (N <= 1 || (N & 1)) {
    mulSchoolArr(A, B, N, Out);
    return;
  }
  const size_t H = N / 2;
  const Word *ALo = A, *AHi = A + H, *BLo = B, *BHi = B + H;

  // Frame layout in Scratch: SA[H] SB[H] T[N+2]; recursion uses the rest.
  Word *SA = Scratch, *SB = Scratch + H, *T = Scratch + 2 * H;
  Word *Rest = Scratch + 2 * N + 2;

  mulKaratsubaArr(ALo, BLo, H, Out, Rest);        // p0 -> Out[0..N)
  mulKaratsubaArr(AHi, BHi, H, Out + N, Rest);    // p1 -> Out[N..2N)

  Word CA = addArr(ALo, AHi, H, SA);
  Word CB = addArr(BLo, BHi, H, SB);

  // T = (SA + CA*z^H) * (SB + CB*z^H), an (N+2)-word value.
  mulKaratsubaArr(SA, SB, H, T, Rest);
  T[N] = 0;
  T[N + 1] = 0;
  if (CA)
    addAtArr(T, N + 2, SB, H, H);
  if (CB)
    addAtArr(T, N + 2, SA, H, H);
  if (CA && CB) {
    Word One = 1;
    addAtArr(T, N + 2, &One, 1, N);
  }

  // T -= p0; T -= p1. Both borrows must cancel within T (the cross term is
  // non-negative).
  Word Borrow = subArr(T, Out, N, T);
  for (size_t I = N; Borrow && I < N + 2; ++I)
    T[I] = subBorrow(T[I], 0, Borrow, Borrow);
  assert(Borrow == 0 && "Karatsuba cross term went negative");
  Borrow = subArr(T, Out + N, N, T);
  for (size_t I = N; Borrow && I < N + 2; ++I)
    T[I] = subBorrow(T[I], 0, Borrow, Borrow);
  assert(Borrow == 0 && "Karatsuba cross term went negative");

  // Out += T << (64*H).
  [[maybe_unused]] Word Carry = addAtArr(Out, 2 * N, T, N + 2 - 1, H);
  // The (N+1)-th word of T participates only when H + N + 1 < 2N; for
  // H >= 1 it always fits except the very last word, which must be zero.
  assert(T[N + 1] == 0 && "cross term exceeded its width bound");
  assert(Carry == 0 && "Karatsuba result overflowed 2N words");
}

/// Out[0..OutN) = (A[0..N) >> ShiftBits), zero-filled on the left.
inline void shrArr(const Word *A, size_t N, unsigned ShiftBits, Word *Out,
                   size_t OutN) {
  const size_t WordShift = ShiftBits / 64;
  const unsigned BitShift = ShiftBits % 64;
  for (size_t I = 0; I < OutN; ++I) {
    size_t Src = I + WordShift;
    Word Lo = Src < N ? A[Src] : 0;
    Word Hi = Src + 1 < N ? A[Src + 1] : 0;
    Out[I] = BitShift ? (Lo >> BitShift) | (Hi << (64 - BitShift)) : Lo;
  }
}

/// Out[0..OutN) = (A[0..N) << ShiftBits) mod 2^(64*OutN).
inline void shlArr(const Word *A, size_t N, unsigned ShiftBits, Word *Out,
                   size_t OutN) {
  const size_t WordShift = ShiftBits / 64;
  const unsigned BitShift = ShiftBits % 64;
  for (size_t I = OutN; I-- > 0;) {
    Word Lo = 0, Hi = 0;
    if (I >= WordShift) {
      size_t Src = I - WordShift;
      Hi = Src < N ? A[Src] : 0;
      Lo = (BitShift && Src >= 1 && Src - 1 < N) ? A[Src - 1] : 0;
    }
    Out[I] = BitShift ? (Hi << BitShift) | (Lo >> (64 - BitShift)) : Hi;
  }
}

} // namespace detail

/// Fixed-width unsigned integer of W 64-bit machine words.
template <unsigned W> struct MWUInt {
  static_assert(W >= 1, "at least one machine word");
  static constexpr unsigned NumWords = W;
  static constexpr unsigned NumBits = 64 * W;

  /// Little-endian limbs; Limbs[0] is least significant.
  std::array<Word, W> Limbs{};

  MWUInt() = default;

  /// Builds from a small value.
  static MWUInt fromWord(Word V) {
    MWUInt X;
    X.Limbs[0] = V;
    return X;
  }

  /// Builds from a Bignum; the value must fit in W words.
  static MWUInt fromBignum(const Bignum &N) {
    assert(N.bitWidth() <= NumBits && "value does not fit");
    MWUInt X;
    N.toWords(X.Limbs.data(), W);
    return X;
  }

  Bignum toBignum() const { return Bignum::fromWords(Limbs.data(), W); }

  bool isZero() const {
    for (Word L : Limbs)
      if (L)
        return false;
    return true;
  }

  bool operator==(const MWUInt &RHS) const { return Limbs == RHS.Limbs; }
  bool operator!=(const MWUInt &RHS) const { return !(*this == RHS); }
  bool operator<(const MWUInt &RHS) const {
    return detail::cmpArr(Limbs.data(), RHS.Limbs.data(), W) < 0;
  }
  bool operator>=(const MWUInt &RHS) const { return !(*this < RHS); }

  /// Sum modulo 2^(64W); \p CarryOut receives the carry bit.
  MWUInt addWithCarry(const MWUInt &RHS, Word &CarryOut) const {
    MWUInt Out;
    CarryOut = detail::addArr(Limbs.data(), RHS.Limbs.data(), W,
                              Out.Limbs.data());
    return Out;
  }

  /// Difference modulo 2^(64W); \p BorrowOut receives the borrow bit.
  MWUInt subWithBorrow(const MWUInt &RHS, Word &BorrowOut) const {
    MWUInt Out;
    BorrowOut = detail::subArr(Limbs.data(), RHS.Limbs.data(), W,
                               Out.Limbs.data());
    return Out;
  }

  /// Full 2W-word product.
  MWUInt<2 * W> mulFull(const MWUInt &RHS,
                        MulAlgorithm Alg = MulAlgorithm::Schoolbook) const {
    MWUInt<2 * W> Out;
    if (Alg == MulAlgorithm::Schoolbook) {
      detail::mulSchoolArr(Limbs.data(), RHS.Limbs.data(), W,
                           Out.Limbs.data());
    } else {
      Word Scratch[detail::karatsubaScratch(W) + 1];
      detail::mulKaratsubaArr(Limbs.data(), RHS.Limbs.data(), W,
                              Out.Limbs.data(), Scratch);
    }
    return Out;
  }

  /// Low W words of the product (enough for Barrett's final e*q term).
  MWUInt mulLow(const MWUInt &RHS) const {
    MWUInt Out;
    for (unsigned I = 0; I < W; ++I) {
      Word Carry = 0;
      for (unsigned J = 0; J + I < W; ++J) {
        DWord Acc = static_cast<DWord>(Limbs[I]) * RHS.Limbs[J] +
                    Out.Limbs[I + J] + Carry;
        Out.Limbs[I + J] = static_cast<Word>(Acc);
        Carry = static_cast<Word>(Acc >> 64);
      }
    }
    return Out;
  }

  /// Logical right shift by any amount < 64W.
  MWUInt shr(unsigned Bits) const {
    MWUInt Out;
    detail::shrArr(Limbs.data(), W, Bits, Out.Limbs.data(), W);
    return Out;
  }

  /// Logical left shift by any amount < 64W (truncating).
  MWUInt shl(unsigned Bits) const {
    MWUInt Out;
    detail::shlArr(Limbs.data(), W, Bits, Out.Limbs.data(), W);
    return Out;
  }

  /// Truncation/zero-extension to a different word count.
  template <unsigned W2> MWUInt<W2> resize() const {
    MWUInt<W2> Out;
    for (unsigned I = 0; I < W2 && I < W; ++I)
      Out.Limbs[I] = Limbs[I];
    return Out;
  }
};

} // namespace mw
} // namespace moma

#endif // MOMA_MW_MWUINT_H
