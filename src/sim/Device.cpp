//===- sim/Device.cpp - Simulated GPU device profiles ----------------------===//

#include "sim/Device.h"

#include "support/Format.h"

#include <thread>

using namespace moma;
using namespace moma::sim;

// Paper Table 2. HostThreads scales the emulated parallelism so that the
// relative core counts survive on a small host (V100 has ~1/3 the cores of
// the other two).
const DeviceProfile &moma::sim::deviceH100() {
  static const DeviceProfile P{"H100", 16896, 1980, 228, 1024,
                               /*HostThreads=*/0};
  return P;
}

const DeviceProfile &moma::sim::deviceRTX4090() {
  static const DeviceProfile P{"RTX4090", 16384, 2595, 100, 1024,
                               /*HostThreads=*/0};
  return P;
}

const DeviceProfile &moma::sim::deviceV100() {
  static const DeviceProfile P{"V100", 5120, 1530, 96, 1024,
                               /*HostThreads=*/1};
  return P;
}

const DeviceProfile &moma::sim::deviceHostDefault() {
  static const DeviceProfile P{"host", 0, 0, 48, 1024, /*HostThreads=*/0};
  return P;
}

std::vector<const DeviceProfile *> moma::sim::allDeviceProfiles() {
  return {&deviceH100(), &deviceRTX4090(), &deviceV100()};
}

std::string moma::sim::deviceTable() {
  TextTable T({"Model", "#Cores", "MaxFreq", "SharedMem/SM", "HostThreads"});
  unsigned HW = std::max(1u, std::thread::hardware_concurrency());
  for (const DeviceProfile *P : allDeviceProfiles())
    T.addRow({P->Name, formatv("%u", P->Cores), formatv("%u MHz", P->MaxFreqMHz),
              formatv("%u KiB", P->SharedMemKiB),
              formatv("%u", P->HostThreads ? P->HostThreads : HW)});
  return T.render();
}
