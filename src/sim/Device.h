//===- sim/Device.h - Simulated GPU device profiles -----------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Device profiles standing in for the paper's Table 2 GPUs. This host has
/// no CUDA hardware, so benches execute generated-equivalent kernels on a
/// CPU thread pool (sim/Launch.h); the profile records the modeled
/// device's published properties (cores, clock, shared memory) and the
/// worker-thread budget used to emulate its parallelism on this machine.
///
/// Relative comparisons remain meaningful because every contender runs on
/// the same substrate (DESIGN.md §4).
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_SIM_DEVICE_H
#define MOMA_SIM_DEVICE_H

#include <string>
#include <vector>

namespace moma {
namespace sim {

/// Static description of a modeled device (paper Table 2).
struct DeviceProfile {
  std::string Name;
  unsigned Cores = 0;          ///< CUDA cores on the modeled GPU
  unsigned MaxFreqMHz = 0;     ///< boost clock of the modeled GPU
  unsigned SharedMemKiB = 0;   ///< per-SM shared memory
  unsigned MaxThreadsPerBlock = 1024;
  /// Worker threads used on this host to emulate the device. 0 = all
  /// hardware threads.
  unsigned HostThreads = 0;
};

/// The three GPUs of paper Table 2 plus a host-default profile.
const DeviceProfile &deviceH100();
const DeviceProfile &deviceRTX4090();
const DeviceProfile &deviceV100();
const DeviceProfile &deviceHostDefault();

/// All built-in profiles (for bench tables).
std::vector<const DeviceProfile *> allDeviceProfiles();

/// Renders Table 2 for bench headers.
std::string deviceTable();

} // namespace sim
} // namespace moma

#endif // MOMA_SIM_DEVICE_H
