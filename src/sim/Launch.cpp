//===- sim/Launch.cpp - Grid/block kernel execution on CPU -----------------===//

#include "sim/Launch.h"

#include "support/Error.h"
#include "support/FaultInjection.h"
#include "support/Format.h"

using namespace moma;
using namespace moma::sim;

void *SharedMem::alloc(size_t Bytes) {
  size_t Aligned = (Offset + 7) & ~size_t(7);
  if (Aligned + Bytes > Storage.size())
    return nullptr;
  void *P = Storage.data() + Aligned;
  Offset = Aligned + Bytes;
  return P;
}

ThreadPool::ThreadPool(unsigned NumWorkers) {
  unsigned AuxCount = NumWorkers > 1 ? NumWorkers - 1 : 0;
  Aux.reserve(AuxCount);
  for (unsigned I = 0; I < AuxCount; ++I)
    Aux.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  WakeCV.notify_all();
  for (auto &T : Aux)
    T.join();
}

namespace {

/// The pool whose job the current thread is executing, set for the
/// duration of every RangeFn scope (caller and workers alike). run() uses
/// it to turn the documented "not reentrant" contract from a silent
/// deadlock into an immediate, explained failure. The scope restores the
/// previous marker (not nullptr): driving a second pool from inside a
/// job is legal, and the outer pool's marker must survive the inner
/// run() so later self-nesting on the outer pool is still caught.
thread_local const ThreadPool *ActivePool = nullptr;

struct ActivePoolScope {
  explicit ActivePoolScope(const ThreadPool *P) : Prev(ActivePool) {
    ActivePool = P;
  }
  ~ActivePoolScope() { ActivePool = Prev; }
  const ThreadPool *Prev;
};

/// The device whose launch the current thread is inside, mirroring
/// ActivePool one level up: a nested launch on the same device must NOT
/// try to take the launch mutex again (self-deadlock) — it skips the lock
/// and falls through to ThreadPool::run's reentrancy check, which reports
/// the contract violation with its clear fatalError instead.
thread_local const Device *ActiveLaunchDevice = nullptr;

struct LaunchScope {
  explicit LaunchScope(const Device *D) : Prev(ActiveLaunchDevice) {
    ActiveLaunchDevice = D;
  }
  ~LaunchScope() { ActiveLaunchDevice = Prev; }
  const Device *Prev;
};

} // namespace

void ThreadPool::drain() {
  for (;;) {
    std::uint64_t Begin = Next.fetch_add(JobChunk, std::memory_order_relaxed);
    if (Begin >= JobN)
      return;
    std::uint64_t End = std::min(JobN, Begin + JobChunk);
    (*Fn)(Begin, End);
  }
}

void ThreadPool::workerLoop() {
  std::uint64_t SeenGeneration = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(M);
      WakeCV.wait(Lock, [&] {
        return Stopping || Generation != SeenGeneration;
      });
      if (Stopping)
        return;
      SeenGeneration = Generation;
    }
    {
      ActivePoolScope Scope(this);
      drain();
    }
    if (Active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> Lock(M);
      DoneCV.notify_all();
    }
  }
}

void ThreadPool::run(
    std::uint64_t N, std::uint64_t Chunk,
    const std::function<void(std::uint64_t, std::uint64_t)> &RangeFn) {
  // Nested entry — run() called from inside a RangeFn of this same pool —
  // would overwrite the active job state and leave the outer run() (and
  // on a worker thread, the whole pool) deadlocked. Detect it here, on
  // the serial fallback too, so the contract violation fails identically
  // on every machine instead of only where auxiliary workers exist.
  if (ActivePool == this)
    fatalError("sim thread pool: nested run() from inside a running job "
               "(ThreadPool::run is not reentrant; use a second pool or "
               "restructure the kernel)");
  if (N == 0)
    return;
  if (Aux.empty()) {
    ActivePoolScope Scope(this);
    for (std::uint64_t Begin = 0; Begin < N; Begin += Chunk)
      RangeFn(Begin, std::min(N, Begin + Chunk));
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(M);
    Fn = &RangeFn;
    JobN = N;
    JobChunk = Chunk ? Chunk : 1;
    Next.store(0, std::memory_order_relaxed);
    Active.store(static_cast<unsigned>(Aux.size()),
                 std::memory_order_relaxed);
    ++Generation;
  }
  WakeCV.notify_all();
  {
    ActivePoolScope Scope(this);
    drain(); // the caller is a worker too
  }
  std::unique_lock<std::mutex> Lock(M);
  DoneCV.wait(Lock, [&] { return Active.load() == 0; });
  Fn = nullptr;
}

Device::Device(const DeviceProfile &Profile) : Profile(Profile) {
  unsigned HW = std::max(1u, std::thread::hardware_concurrency());
  Workers = Profile.HostThreads ? Profile.HostThreads : HW;
}

ThreadPool &Device::pool() const {
  if (!Pool)
    Pool = std::make_unique<ThreadPool>(Workers);
  return *Pool;
}

std::string Device::validate(const LaunchConfig &Cfg) const {
  // Chaos hook: the stand-in for a real device refusing a launch
  // (exhausted contexts, a lost device). SimGpuBackend validates before
  // every launch, so an injected refusal surfaces as a graceful dispatch
  // error instead of the launch-path abort.
  if (support::faultShouldFail("sim.launch"))
    return "fault injected at sim.launch";
  if (Cfg.BlockDim == 0)
    return "block dimension must be positive";
  if (Cfg.BlockDim > Profile.MaxThreadsPerBlock)
    return formatv("block dimension %u exceeds the device limit %u",
                   Cfg.BlockDim, Profile.MaxThreadsPerBlock);
  if (Cfg.GridX == 0 || Cfg.GridY == 0)
    return "grid dimensions must be positive";
  return "";
}

void Device::launch(
    const LaunchConfig &Cfg,
    const std::function<void(const LaunchCoord &, SharedMem &)> &Kernel)
    const {
  std::string Err = validate(Cfg);
  if (!Err.empty())
    fatalError("sim launch: " + Err);

  // One launch at a time (the single-stream model); a nested launch from
  // inside a kernel skips the lock so ThreadPool::run can report the
  // reentrancy violation instead of deadlocking here.
  std::unique_lock<std::mutex> Stream(LaunchMu, std::defer_lock);
  if (ActiveLaunchDevice != this)
    Stream.lock();
  LaunchScope Scope(this);

  const std::uint64_t NumBlocks =
      static_cast<std::uint64_t>(Cfg.GridX) * Cfg.GridY;
  const size_t ShmBytes = static_cast<size_t>(Profile.SharedMemKiB) * 1024;

  auto RunBlocks = [&](std::uint64_t Begin, std::uint64_t End) {
    // One arena per chunk: blocks within a chunk run on one worker, and
    // the arena resets between blocks (per-block isolation).
    SharedMem Shm(ShmBytes);
    for (std::uint64_t B = Begin; B < End; ++B) {
      LaunchCoord C;
      C.BlockX = static_cast<std::uint32_t>(B % Cfg.GridX);
      C.BlockY = static_cast<std::uint32_t>(B / Cfg.GridX);
      Shm.reset();
      for (std::uint32_t T = 0; T < Cfg.BlockDim; ++T) {
        C.ThreadX = T;
        Kernel(C, Shm);
      }
    }
  };

  if (Workers <= 1 || NumBlocks <= 1) {
    RunBlocks(0, NumBlocks);
    return;
  }
  std::uint64_t Chunk =
      std::max<std::uint64_t>(1, NumBlocks / (Workers * 4));
  pool().run(NumBlocks, Chunk, RunBlocks);
}

void Device::launchBlocks(
    const LaunchConfig &Cfg,
    const std::function<void(std::uint32_t, std::uint32_t)> &BlockFn) const {
  std::string Err = validate(Cfg);
  if (!Err.empty())
    fatalError("sim launch: " + Err);

  std::unique_lock<std::mutex> Stream(LaunchMu, std::defer_lock);
  if (ActiveLaunchDevice != this)
    Stream.lock();
  LaunchScope Scope(this);

  const std::uint64_t NumBlocks =
      static_cast<std::uint64_t>(Cfg.GridX) * Cfg.GridY;
  auto RunBlocks = [&](std::uint64_t Begin, std::uint64_t End) {
    for (std::uint64_t B = Begin; B < End; ++B)
      BlockFn(static_cast<std::uint32_t>(B % Cfg.GridX),
              static_cast<std::uint32_t>(B / Cfg.GridX));
  };
  if (Workers <= 1 || NumBlocks <= 1) {
    RunBlocks(0, NumBlocks);
    return;
  }
  std::uint64_t Chunk =
      std::max<std::uint64_t>(1, NumBlocks / (Workers * 4));
  pool().run(NumBlocks, Chunk, RunBlocks);
}

void Device::parallelFor(std::uint64_t N,
                         const std::function<void(std::uint64_t)> &Fn) const {
  if (N == 0)
    return;
  std::unique_lock<std::mutex> Stream(LaunchMu, std::defer_lock);
  if (ActiveLaunchDevice != this)
    Stream.lock();
  LaunchScope Scope(this);
  if (Workers <= 1 || N < 2) {
    for (std::uint64_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  const std::uint64_t Chunk = std::max<std::uint64_t>(1, N / (Workers * 8));
  pool().run(N, Chunk, [&](std::uint64_t Begin, std::uint64_t End) {
    for (std::uint64_t I = Begin; I < End; ++I)
      Fn(I);
  });
}
