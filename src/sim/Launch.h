//===- sim/Launch.h - Grid/block kernel execution on CPU ------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CUDA-launch-shaped execution on a host thread pool: a kernel is a
/// callable invoked once per (block, thread) coordinate, blocks are
/// distributed across workers, and each block gets a private shared-memory
/// arena sized by the device profile. This is the execution substrate for
/// the benchmark harnesses (DESIGN.md §4 substitution).
///
/// Launch validation mirrors the CUDA rules the paper relies on (at most
/// MaxThreadsPerBlock = 1024 threads, §5.1) and is exercised by the
/// failure-injection tests.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_SIM_LAUNCH_H
#define MOMA_SIM_LAUNCH_H

#include "sim/Device.h"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace moma {
namespace sim {

/// Persistent worker pool shared by all launches of one Device: thread
/// creation per launch would swamp the fine-grained kernels the paper
/// times (a BLAS element op is tens of nanoseconds).
class ThreadPool {
public:
  /// Spawns \p NumWorkers - 1 auxiliary threads; the caller of run()
  /// participates as the remaining worker.
  explicit ThreadPool(unsigned NumWorkers);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Executes RangeFn over [0, N) split into chunks of \p Chunk indices,
  /// work-stealing via an atomic cursor. Blocks until every index ran.
  /// Not reentrant: a nested run() from inside RangeFn (which would
  /// corrupt the job state and deadlock the pool) is detected via a
  /// thread-local active-pool marker and reported through
  /// support::fatalError with a clear message instead of hanging.
  void run(std::uint64_t N, std::uint64_t Chunk,
           const std::function<void(std::uint64_t, std::uint64_t)> &RangeFn);

private:
  void workerLoop();
  void drain();

  std::mutex M;
  std::condition_variable WakeCV;
  std::condition_variable DoneCV;
  std::uint64_t Generation = 0;
  bool Stopping = false;
  const std::function<void(std::uint64_t, std::uint64_t)> *Fn = nullptr;
  std::uint64_t JobN = 0;
  std::uint64_t JobChunk = 1;
  std::atomic<std::uint64_t> Next{0};
  std::atomic<unsigned> Active{0};
  std::vector<std::thread> Aux;
};

/// Grid/block coordinates handed to a kernel invocation.
struct LaunchCoord {
  std::uint32_t BlockX = 0;
  std::uint32_t BlockY = 0;
  std::uint32_t ThreadX = 0;
};

/// Per-block scratch arena standing in for CUDA shared memory.
class SharedMem {
public:
  explicit SharedMem(size_t Bytes) : Storage(Bytes) {}

  /// Bump-allocates \p Bytes (8-byte aligned); returns nullptr when the
  /// block's shared memory is exhausted — exactly the failure a CUDA
  /// kernel would hit, surfaced for the fallback-to-global path.
  void *alloc(size_t Bytes);

  /// Resets the arena between blocks.
  void reset() { Offset = 0; }

  size_t capacity() const { return Storage.size(); }
  size_t used() const { return Offset; }

private:
  std::vector<std::uint8_t> Storage;
  size_t Offset = 0;
};

/// Launch geometry.
struct LaunchConfig {
  std::uint32_t GridX = 1;
  std::uint32_t GridY = 1; ///< the paper's batch dimension
  std::uint32_t BlockDim = 256;
};

/// A simulated device: worker pool + profile. Launch entry points are
/// thread-safe: concurrent callers are serialized on an internal launch
/// mutex — the single-stream model of the GPU being simulated — because
/// the underlying ThreadPool holds one job at a time. Kernels of one
/// launch still spread across the whole worker pool.
class Device {
public:
  explicit Device(const DeviceProfile &Profile = deviceHostDefault());

  const DeviceProfile &profile() const { return Profile; }
  unsigned workerCount() const { return Workers; }

  /// Returns an error string for invalid configs, empty if launchable.
  std::string validate(const LaunchConfig &Cfg) const;

  /// Runs \p Kernel for every (block, thread) coordinate; one block is
  /// processed entirely by one worker (serialized threads, like a
  /// time-sliced SM), blocks are spread over the pool. Aborts on invalid
  /// configs — call validate() first to handle errors gracefully.
  void launch(const LaunchConfig &Cfg,
              const std::function<void(const LaunchCoord &, SharedMem &)>
                  &Kernel) const;

  /// Runs \p BlockFn once per (blockX, blockY) coordinate, blocks spread
  /// over the pool. The block function iterates its own threads — the
  /// ABI of the JIT-compiled grid kernels (codegen/GridEmitter.h), which
  /// amortizes the per-call dispatch cost over a whole block. Validates
  /// \p Cfg like launch() (call validate() first to handle errors
  /// gracefully).
  void launchBlocks(
      const LaunchConfig &Cfg,
      const std::function<void(std::uint32_t, std::uint32_t)> &BlockFn) const;

  /// Convenience: parallel loop over [0, N) with one virtual thread per
  /// index (the BLAS "one thread per element" mapping).
  void parallelFor(std::uint64_t N,
                   const std::function<void(std::uint64_t)> &Fn) const;

private:
  ThreadPool &pool() const;

  DeviceProfile Profile;
  unsigned Workers;
  /// Serializes launches (and guards lazy Pool creation): the pool's job
  /// state is single-occupancy, so concurrent launches queue here like
  /// kernels on one CUDA stream.
  mutable std::mutex LaunchMu;
  mutable std::unique_ptr<ThreadPool> Pool;
};

} // namespace sim
} // namespace moma

#endif // MOMA_SIM_LAUNCH_H
