//===- fhe/Fhe.h - Ciphertext layer over the RNS tensor API ----*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A BGV/BFV-shaped ciphertext layer built purely as compositions of the
/// Dispatcher's residue-form tensor API — the workload the paper's
/// multi-word kernels exist to serve. Nothing here runs its own modular
/// arithmetic on the hot path: ciphertext add is rnsVAdd per poly,
/// multiply is the tensor product via lazy rnsPolyMul, rescale is the
/// generated rnsresc kernel ladder, relinearize is CRT-digit products
/// against a pre-transformed key. The only host arithmetic is key/
/// encryption sampling (inherently host-side) and decryption's final
/// centered reduction — both Bignum, both shared with the Reference
/// oracle so the two sides are bit-exact by construction where they
/// overlap.
///
/// Laziness is the point of the design: ciphertext polys carry their
/// RnsDomain tag across operations, so a multiply chain transforms each
/// fresh operand exactly once and every intermediate stays in NTT form
/// until decryption (or a rescale) demands coefficients. A chain of k
/// multiplies costs (k + 2)L transforms per operand pair instead of the
/// 3kL a flat one-shot-polyMul formulation pays; tests pin the exact
/// dispatch deltas via Dispatcher::dispatchStats().
///
/// Toy-scheme disclaimer: parameters are sized for validating the
/// runtime (tiny error, no security claims), and rescale is exact-
/// quotient modulus switching without BGV's correction term — see
/// Reference.h for what correctness is claimed where.
///
/// Lifetime: ciphertexts reference the FheContext's RnsContext (or one
/// of its subChain views after rescaling); the context must outlive
/// every ciphertext and key minted from it, and must not be moved while
/// they are alive.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_FHE_FHE_H
#define MOMA_FHE_FHE_H

#include "fhe/Reference.h"
#include "runtime/Dispatcher.h"

#include <string>
#include <vector>

namespace moma {
namespace fhe {

struct FheOptions {
  /// Ring degree n (points per poly); a power of two within the chain's
  /// two-adicity budget.
  size_t NPoints = 64;
  /// Limbs in the modulus chain; each rescale consumes one.
  unsigned NumLimbs = 4;
  /// Plaintext modulus t.
  std::uint64_t PlainModulus = 65537;
  /// Negacyclic (x^n + 1) is the FHE-standard ring.
  rewrite::NttRing Ring = rewrite::NttRing::Negacyclic;
  /// Prime-chain shape, forwarded to RnsContext::create.
  runtime::RnsContext::Options Rns;
};

/// Owns the modulus chain and scheme parameters. Create once, keep
/// still (see the lifetime note above), share across ciphertexts.
class FheContext {
public:
  /// Builds the chain; false with \p Err set on invalid shapes.
  static bool create(const FheOptions &O, FheContext &Out, std::string *Err);

  const runtime::RnsContext &rns() const { return Chain; }
  size_t nPoints() const { return Opts.NPoints; }
  const mw::Bignum &plainModulus() const { return T; }
  rewrite::NttRing ring() const { return Opts.Ring; }
  const FheOptions &options() const { return Opts; }

private:
  FheOptions Opts;
  runtime::RnsContext Chain;
  mw::Bignum T;
};

/// A ciphertext: degree+1 residue-form polys (2 normally, 3 after a
/// multiply), all congruent, all tagged with their current domain. The
/// polys travel together through the level ladder: after rescale() they
/// are rebound to the chain's subChain view.
struct Ciphertext {
  std::vector<runtime::RnsTensor> Polys;
  size_t size() const { return Polys.size(); }
  bool valid() const { return !Polys.empty() && Polys[0].valid(); }
  const runtime::RnsContext &context() const { return Polys[0].context(); }
};

/// Secret key — host-side only (it never participates in dispatched
/// arithmetic; encryption and decryption are host operations).
struct SecretKey {
  RefSecretKey Ref;
};

/// Relinearization key: the host polys (for the Reference oracle) plus
/// their device tensors, uploaded once at keygen and stored forward-
/// transformed so every digit product starts from NTT form for free.
struct RelinKey {
  RefRelinKey Ref;
  std::vector<runtime::RnsTensor> B, A;
};

/// Samples a ternary secret key.
SecretKey keyGen(const FheContext &FC, Rng &R);

/// Samples and uploads the relinearization key for the full chain
/// (relinearize before rescaling; a rescaled ciphertext lives in a
/// sub-chain this key does not cover).
bool relinKeyGen(const FheContext &FC, runtime::Dispatcher &D,
                 const SecretKey &SK, Rng &R, RelinKey &Out);

/// Encrypts \p Msg (nPoints coefficients, reduced mod t) into a fresh
/// degree-1 ciphertext in coefficient form.
bool encrypt(const FheContext &FC, runtime::Dispatcher &D,
             const SecretKey &SK, const std::vector<std::uint64_t> &Msg,
             Rng &R, Ciphertext &Out);

/// Decrypts a degree-1 or degree-2 ciphertext at any level. Pays any
/// deferred inverse transforms (mutates \p C's representation, not its
/// value).
bool decrypt(const FheContext &FC, runtime::Dispatcher &D,
             const SecretKey &SK, Ciphertext &C,
             std::vector<std::uint64_t> &Out);

/// Out = A + B, poly-wise (ragged degrees allowed: extra polys copy
/// through). Operands may be re-tagged (mixed-domain pairs harmonize
/// toward NTT form) but their values never change.
bool ciphertextAdd(runtime::Dispatcher &D, Ciphertext &A, Ciphertext &B,
                   Ciphertext &Out);

/// Tensor product of two degree-1 ciphertexts: Out = (a0 b0,
/// a0 b1 + a1 b0, a1 b1), left in NTT form. Operands are forced to NTT
/// form (free when they came out of an earlier multiply — the lazy
/// saving this layer is built around). \p Out may alias an operand:
/// results are built aside and swapped in.
bool ciphertextMul(runtime::Dispatcher &D, Ciphertext &A, Ciphertext &B,
                   Ciphertext &Out);

/// Drops the chain's last limb from every poly (exact-quotient modulus
/// switch, the generated rnsresc kernel per surviving limb). The
/// ciphertext is rebound to the sub-chain view one limb shorter.
bool rescale(runtime::Dispatcher &D, Ciphertext &C);

/// Degree-2 -> degree-1 via the CRT-digit key: c0 += sum_l d_l b_l,
/// c1 += sum_l d_l a_l, where d_l is c2's limb-l digit. Each digit is
/// transformed once and reused for both products (the second forward
/// NTT is elided by the domain tag). Requires \p C at the key's level.
bool relinearize(runtime::Dispatcher &D, Ciphertext &C, RelinKey &K);

/// Downloads a ciphertext into Bignum coefficient polys for the
/// Reference oracle (pays deferred inverse transforms; value
/// unchanged). The bridge every bit-exactness test crosses.
bool ciphertextToRef(runtime::Dispatcher &D, Ciphertext &C,
                     RefCiphertext &Out);

/// Uploads Reference polys into residue form over \p Ctx.
bool refToCiphertext(const runtime::RnsContext &Ctx, rewrite::NttRing Ring,
                     runtime::Dispatcher &D, const RefCiphertext &Ref,
                     Ciphertext &Out);

} // namespace fhe
} // namespace moma

#endif // MOMA_FHE_FHE_H
