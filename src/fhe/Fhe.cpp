//===- fhe/Fhe.cpp - Ciphertext layer over the RNS tensor API -------------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "fhe/Fhe.h"

using namespace moma;
using namespace moma::fhe;
using mw::Bignum;
using runtime::Dispatcher;
using runtime::RnsContext;
using runtime::RnsDomain;
using runtime::RnsTensor;

bool FheContext::create(const FheOptions &O, FheContext &Out,
                        std::string *Err) {
  if (O.NPoints < 2 || (O.NPoints & (O.NPoints - 1)) != 0) {
    if (Err)
      *Err = "fhe: NPoints must be a power of two >= 2";
    return false;
  }
  if (O.PlainModulus < 2) {
    if (Err)
      *Err = "fhe: plaintext modulus must be >= 2";
    return false;
  }
  Out.Opts = O;
  Out.T = Bignum(O.PlainModulus);
  return RnsContext::create(O.NumLimbs, Out.Chain, Err, O.Rns);
}

SecretKey moma::fhe::keyGen(const FheContext &FC, Rng &R) {
  SecretKey SK;
  SK.Ref = refKeyGen(FC.nPoints(), FC.rns().modulus(), R);
  return SK;
}

bool moma::fhe::refToCiphertext(const RnsContext &Ctx,
                                rewrite::NttRing Ring, Dispatcher &D,
                                const RefCiphertext &Ref, Ciphertext &Out) {
  std::vector<RnsTensor> Polys;
  Polys.reserve(Ref.size());
  for (const RefPoly &P : Ref) {
    auto Words = runtime::packBatch(P, Ctx.wideWords());
    RnsTensor T(Ctx, P.size(), 1, Ring);
    if (!D.fromWide(Words.data(), T))
      return false;
    Polys.push_back(std::move(T));
  }
  Out.Polys = std::move(Polys);
  return true;
}

bool moma::fhe::ciphertextToRef(Dispatcher &D, Ciphertext &C,
                                RefCiphertext &Out) {
  RefCiphertext Ref;
  Ref.reserve(C.size());
  for (RnsTensor &P : C.Polys) {
    std::vector<std::uint64_t> Wide(size_t(P.context().wideWords()) *
                                    P.count());
    if (!D.toWide(P, Wide.data()))
      return false;
    Ref.push_back(runtime::unpackBatch(Wide, P.context().wideWords()));
  }
  Out = std::move(Ref);
  return true;
}

bool moma::fhe::relinKeyGen(const FheContext &FC, Dispatcher &D,
                            const SecretKey &SK, Rng &R, RelinKey &Out) {
  const RnsContext &Ctx = FC.rns();
  bool Neg = FC.ring() == rewrite::NttRing::Negacyclic;
  Out.Ref = refRelinKeyGen(SK.Ref, Ctx, FC.plainModulus(), Neg, R);
  Out.B.clear();
  Out.A.clear();
  // Upload each key poly once and store it forward-transformed: every
  // relinearize digit product then starts from NTT form for free.
  for (size_t L = 0; L < Ctx.numLimbs(); ++L) {
    for (int Half = 0; Half < 2; ++Half) {
      const RefPoly &P = Half == 0 ? Out.Ref.B[L] : Out.Ref.A[L];
      auto Words = runtime::packBatch(P, Ctx.wideWords());
      RnsTensor T(Ctx, P.size(), 1, FC.ring());
      if (!D.fromWide(Words.data(), T) || !D.rnsNttForward(T))
        return false;
      (Half == 0 ? Out.B : Out.A).push_back(std::move(T));
    }
  }
  return true;
}

bool moma::fhe::encrypt(const FheContext &FC, Dispatcher &D,
                        const SecretKey &SK,
                        const std::vector<std::uint64_t> &Msg, Rng &R,
                        Ciphertext &Out) {
  if (Msg.size() != FC.nPoints())
    return false;
  bool Neg = FC.ring() == rewrite::NttRing::Negacyclic;
  RefCiphertext Ref = refEncrypt(Msg, SK.Ref, FC.rns().modulus(),
                                 FC.plainModulus(), Neg, R);
  return refToCiphertext(FC.rns(), FC.ring(), D, Ref, Out);
}

bool moma::fhe::decrypt(const FheContext &FC, Dispatcher &D,
                        const SecretKey &SK, Ciphertext &C,
                        std::vector<std::uint64_t> &Out) {
  if (!C.valid() || (C.size() != 2 && C.size() != 3))
    return false;
  RefCiphertext Ref;
  if (!ciphertextToRef(D, C, Ref))
    return false;
  // Decryption happens against the ciphertext's CURRENT modulus — after
  // rescaling that is the sub-chain's product, not the original M.
  bool Neg = C.Polys[0].ring() == rewrite::NttRing::Negacyclic;
  Out = refDecrypt(Ref, SK.Ref, C.context().modulus(), FC.plainModulus(),
                   Neg);
  return true;
}

bool moma::fhe::ciphertextAdd(Dispatcher &D, Ciphertext &A, Ciphertext &B,
                              Ciphertext &Out) {
  if (!A.valid() || !B.valid())
    return false;
  Ciphertext &Long = A.size() >= B.size() ? A : B;
  Ciphertext &Short = A.size() >= B.size() ? B : A;
  std::vector<RnsTensor> Polys;
  Polys.reserve(Long.size());
  for (size_t P = 0; P < Long.size(); ++P) {
    if (P >= Short.size()) {
      Polys.push_back(Long.Polys[P]); // copy-through (value unchanged)
      continue;
    }
    RnsTensor &PA = Long.Polys[P], &PB = Short.Polys[P];
    RnsTensor C(PA.context(), PA.nPoints(), PA.batch(), PA.ring());
    if (!D.rnsVAdd(PA, PB, C))
      return false;
    Polys.push_back(std::move(C));
  }
  // Built aside and swapped in, so Out may alias A or B.
  Out.Polys = std::move(Polys);
  return true;
}

bool moma::fhe::ciphertextMul(Dispatcher &D, Ciphertext &A, Ciphertext &B,
                              Ciphertext &Out) {
  if (!A.valid() || !B.valid() || A.size() != 2 || B.size() != 2)
    return false;
  RnsTensor &A0 = A.Polys[0], &A1 = A.Polys[1];
  RnsTensor &B0 = B.Polys[0], &B1 = B.Polys[1];
  const RnsContext &Ctx = A0.context();
  size_t N = A0.nPoints(), Bat = A0.batch();
  rewrite::NttRing Ring = A0.ring();
  // Fresh output tensors (moved into Out at the end, so Out may alias an
  // operand — the products below only read operand values, re-tagging
  // their representation at most).
  RnsTensor O0(Ctx, N, Bat, Ring), O1(Ctx, N, Bat, Ring),
      O2(Ctx, N, Bat, Ring), Tmp(Ctx, N, Bat, Ring);
  // The first product forces its operands into NTT form; a ciphertext
  // that came out of an earlier multiply is already there, so chained
  // multiplies dispatch zero forward transforms.
  if (!D.rnsPolyMul(A0, B0, O0) || !D.rnsPolyMul(A0, B1, O1) ||
      !D.rnsPolyMul(A1, B0, Tmp) || !D.rnsVAdd(O1, Tmp, O1) ||
      !D.rnsPolyMul(A1, B1, O2))
    return false;
  Out.Polys.clear();
  Out.Polys.push_back(std::move(O0));
  Out.Polys.push_back(std::move(O1));
  Out.Polys.push_back(std::move(O2));
  return true;
}

bool moma::fhe::rescale(Dispatcher &D, Ciphertext &C) {
  if (!C.valid())
    return false;
  for (RnsTensor &P : C.Polys)
    if (!D.rnsRescale(P))
      return false;
  return true;
}

bool moma::fhe::relinearize(Dispatcher &D, Ciphertext &C, RelinKey &K) {
  if (!C.valid() || C.size() != 3 || K.B.empty())
    return false;
  const RnsContext &Ctx = C.context();
  // The key was generated for the full chain; a rescaled ciphertext
  // lives in a sub-chain view the key digits do not cover.
  if (&Ctx != &K.B[0].context())
    return false;
  // Digits read c2's residues as coefficients, so c2 must be coherent
  // coefficient form first.
  if (!D.rnsNttInverse(C.Polys[2]))
    return false;
  const RnsTensor &C2 = C.Polys[2];
  size_t N = C2.nPoints(), Bat = C2.batch(), Count = C2.count();
  rewrite::NttRing Ring = C2.ring();
  RnsTensor Tmp(Ctx, N, Bat, Ring);
  for (size_t L = 0; L < Ctx.numLimbs(); ++L) {
    // d_l: the polynomial whose coefficients are c2's limb-l residues.
    // Its limb-j residue row is r mod q_j = r or r - q_j (one
    // conditional subtract: r < 2^LimbBits < 2 q_j, same bit width).
    RnsTensor Dl(Ctx, N, Bat, Ring);
    const std::uint64_t *Row = C2.limbData(L);
    for (size_t J = 0; J < Ctx.numLimbs(); ++J) {
      std::uint64_t Qj = Ctx.limb(J).low64();
      std::uint64_t *Dst = Dl.limbData(J);
      for (size_t I = 0; I < Count; ++I)
        Dst[I] = Row[I] >= Qj ? Row[I] - Qj : Row[I];
    }
    // The digit is transformed once by the first product and reused in
    // NTT form by the second — the domain tag's other saving.
    if (!D.rnsPolyMul(Dl, K.B[L], Tmp) ||
        !D.rnsVAdd(C.Polys[0], Tmp, C.Polys[0]) ||
        !D.rnsPolyMul(Dl, K.A[L], Tmp) ||
        !D.rnsVAdd(C.Polys[1], Tmp, C.Polys[1]))
      return false;
  }
  C.Polys.pop_back();
  return true;
}
