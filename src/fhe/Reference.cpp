//===- fhe/Reference.cpp - Slow Bignum oracle for the FHE layer -----------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "fhe/Reference.h"

#include "ntt/ReferenceDft.h"

#include <cassert>

using namespace moma;
using namespace moma::fhe;
using mw::Bignum;

RefPoly moma::fhe::refPolyAdd(const RefPoly &A, const RefPoly &B,
                              const Bignum &M) {
  assert(A.size() == B.size() && "ragged poly add");
  RefPoly C(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    C[I] = A[I].addMod(B[I], M);
  return C;
}

RefPoly moma::fhe::refPolySub(const RefPoly &A, const RefPoly &B,
                              const Bignum &M) {
  assert(A.size() == B.size() && "ragged poly sub");
  RefPoly C(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    C[I] = A[I].subMod(B[I], M);
  return C;
}

RefPoly moma::fhe::refPolyMul(const RefPoly &A, const RefPoly &B,
                              const Bignum &M, bool Negacyclic) {
  return ntt::referencePolyMulRing(A, B, M, Negacyclic);
}

RefCiphertext moma::fhe::refAdd(const RefCiphertext &A,
                                const RefCiphertext &B, const Bignum &M) {
  const RefCiphertext &Long = A.size() >= B.size() ? A : B;
  const RefCiphertext &Short = A.size() >= B.size() ? B : A;
  RefCiphertext C = Long;
  for (size_t P = 0; P < Short.size(); ++P)
    C[P] = refPolyAdd(Long[P], Short[P], M);
  return C;
}

RefCiphertext moma::fhe::refMul(const RefCiphertext &A,
                                const RefCiphertext &B, const Bignum &M,
                                bool Negacyclic) {
  assert(A.size() == 2 && B.size() == 2 && "tensor product needs degree-1");
  RefCiphertext C(3);
  C[0] = refPolyMul(A[0], B[0], M, Negacyclic);
  C[1] = refPolyAdd(refPolyMul(A[0], B[1], M, Negacyclic),
                    refPolyMul(A[1], B[0], M, Negacyclic), M);
  C[2] = refPolyMul(A[1], B[1], M, Negacyclic);
  return C;
}

RefCiphertext moma::fhe::refRescale(const RefCiphertext &C,
                                    const runtime::RnsContext &Ctx) {
  size_t L = Ctx.numLimbs();
  assert(L >= 2 && "rescale needs a chain of >= 2 limbs");
  const Bignum &QLast = Ctx.limb(L - 1);
  const Bignum &MPrime = Ctx.subChain(L - 1).modulus();
  RefCiphertext Out(C.size());
  for (size_t P = 0; P < C.size(); ++P) {
    Out[P].resize(C[P].size());
    for (size_t I = 0; I < C[P].size(); ++I) {
      // Exact integer quotient: (X - (X mod q_last)) / q_last.
      const Bignum &X = C[P][I];
      Out[P][I] = ((X - X % QLast) / QLast) % MPrime;
    }
  }
  return Out;
}

/// The polynomial of limb-\p L residues of \p P — c2's CRT digit.
static RefPoly crtDigit(const RefPoly &P, const Bignum &Q) {
  RefPoly D(P.size());
  for (size_t I = 0; I < P.size(); ++I)
    D[I] = P[I] % Q;
  return D;
}

RefCiphertext moma::fhe::refRelinearize(const RefCiphertext &C,
                                        const RefRelinKey &K,
                                        const runtime::RnsContext &Ctx,
                                        bool Negacyclic) {
  assert(C.size() == 3 && "relinearize needs a degree-2 ciphertext");
  assert(K.B.size() == Ctx.numLimbs() && "key generated for another chain");
  const Bignum &M = Ctx.modulus();
  RefCiphertext Out(2);
  Out[0] = C[0];
  Out[1] = C[1];
  for (size_t L = 0; L < Ctx.numLimbs(); ++L) {
    RefPoly D = crtDigit(C[2], Ctx.limb(L));
    Out[0] = refPolyAdd(Out[0], refPolyMul(D, K.B[L], M, Negacyclic), M);
    Out[1] = refPolyAdd(Out[1], refPolyMul(D, K.A[L], M, Negacyclic), M);
  }
  return Out;
}

/// A small centered error coefficient in [-4, 4], represented mod M.
static Bignum smallError(const Bignum &M, Rng &R) {
  std::uint64_t V = R.below(9);
  return V <= 4 ? Bignum(V) : M - Bignum(9 - V);
}

RefSecretKey moma::fhe::refKeyGen(size_t N, const Bignum &M, Rng &R) {
  RefSecretKey SK;
  SK.S.resize(N);
  for (size_t I = 0; I < N; ++I) {
    std::uint64_t V = R.below(3); // ternary: 0, 1, -1
    SK.S[I] = V == 2 ? M - Bignum(1) : Bignum(V);
  }
  return SK;
}

RefRelinKey moma::fhe::refRelinKeyGen(const RefSecretKey &SK,
                                      const runtime::RnsContext &Ctx,
                                      const Bignum &T, bool Negacyclic,
                                      Rng &R) {
  const Bignum &M = Ctx.modulus();
  size_t N = SK.S.size();
  RefPoly S2 = refPolyMul(SK.S, SK.S, M, Negacyclic);
  RefRelinKey K;
  K.B.resize(Ctx.numLimbs());
  K.A.resize(Ctx.numLimbs());
  for (size_t L = 0; L < Ctx.numLimbs(); ++L) {
    // The CRT weight W_l = (M/q_l) * ((M/q_l)^{-1} mod q_l), recomputed
    // from scratch so the oracle is independent of RnsContext's tables.
    Bignum MOver = M / Ctx.limb(L);
    Bignum W = (MOver * (MOver % Ctx.limb(L)).invMod(Ctx.limb(L))) % M;
    RefPoly &A = K.A[L], &B = K.B[L];
    A.resize(N);
    for (size_t I = 0; I < N; ++I)
      A[I] = Bignum::random(R, M);
    RefPoly AS = refPolyMul(A, SK.S, M, Negacyclic);
    B.resize(N);
    for (size_t I = 0; I < N; ++I)
      B[I] = W.mulMod(S2[I], M)
                 .subMod(AS[I], M)
                 .addMod(T.mulMod(smallError(M, R), M), M);
  }
  return K;
}

RefCiphertext moma::fhe::refEncrypt(const std::vector<std::uint64_t> &Msg,
                                    const RefSecretKey &SK, const Bignum &M,
                                    const Bignum &T, bool Negacyclic,
                                    Rng &R) {
  size_t N = SK.S.size();
  assert(Msg.size() == N && "message length must match the ring");
  RefCiphertext C(2);
  RefPoly &C1 = C[1];
  C1.resize(N);
  for (size_t I = 0; I < N; ++I)
    C1[I] = Bignum::random(R, M);
  RefPoly AS = refPolyMul(C1, SK.S, M, Negacyclic);
  RefPoly &C0 = C[0];
  C0.resize(N);
  for (size_t I = 0; I < N; ++I)
    C0[I] = Bignum(0)
                .subMod(AS[I], M)
                .addMod(T.mulMod(smallError(M, R), M), M)
                .addMod(Bignum(Msg[I]) % T, M);
  return C;
}

std::vector<std::uint64_t> moma::fhe::refDecrypt(const RefCiphertext &C,
                                                 const RefSecretKey &SK,
                                                 const Bignum &M,
                                                 const Bignum &T,
                                                 bool Negacyclic) {
  assert((C.size() == 2 || C.size() == 3) && "decrypt degree-1 or -2");
  size_t N = SK.S.size();
  RefPoly V = C[0];
  RefPoly C1S = refPolyMul(C[1], SK.S, M, Negacyclic);
  V = refPolyAdd(V, C1S, M);
  if (C.size() == 3) {
    RefPoly S2 = refPolyMul(SK.S, SK.S, M, Negacyclic);
    V = refPolyAdd(V, refPolyMul(C[2], S2, M, Negacyclic), M);
  }
  std::vector<std::uint64_t> Out(N);
  for (size_t I = 0; I < N; ++I) {
    // Centered reduction: v in (-M/2, M/2], then mod T. A residue above
    // M/2 represents v - M, whose value mod T is r - (M mod T).
    Bignum Rm = V[I] % T;
    if (V[I] + V[I] > M)
      Rm = Rm.subMod(M % T, T);
    Out[I] = Rm.low64();
  }
  return Out;
}
