//===- fhe/Reference.h - Slow Bignum oracle for the FHE layer --*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The arbitrary-precision oracle the FHE layer is validated against:
/// every ciphertext operation in Fhe.h has a mirror here that computes
/// the same Z_M[x]/(x^n ± 1) arithmetic with schoolbook Bignum math —
/// no RNS, no NTT, no dispatch. The tests run both sides on identical
/// inputs and require bit-exact wide values, which pins the whole stack
/// (CRT edges, per-limb transforms, the generated rescale kernel, lazy
/// domain bookkeeping) against ~150 lines of obviously-correct code.
///
/// The encryption scheme is a toy BGV shape — plaintext in the low
/// multiple of t, error scaled by t — sized for validating the runtime,
/// not for security: there is no security parameter, the error is tiny,
/// and rescale is plain exact-quotient modulus switching without the
/// BGV correction term (so decryption-correctness claims are limited to
/// add / multiply / relinearize circuits; rescaled ciphertexts are
/// validated bit-exact as ring arithmetic, which is the property the
/// runtime owns).
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_FHE_REFERENCE_H
#define MOMA_FHE_REFERENCE_H

#include "mw/Bignum.h"
#include "runtime/RnsContext.h"
#include "support/Rng.h"

#include <vector>

namespace moma {
namespace fhe {

/// One polynomial over Z_M: n coefficients, each reduced mod M.
using RefPoly = std::vector<mw::Bignum>;
/// A reference ciphertext: 2 polys normally, 3 after a multiply.
using RefCiphertext = std::vector<RefPoly>;

/// The host-side halves of the keys. The secret key is ternary
/// ({-1, 0, 1} represented mod M); the relinearization key is one
/// (b_l, a_l) pair per limb of the chain it was generated for:
///   b_l = W_l * s^2 - a_l * s + t * e_l   (mod M)
/// with W_l the CRT weight of limb l, so sum_l d_l * (b_l + a_l * s)
/// telescopes to c2 * s^2 + t * noise when d_l is the limb-l CRT digit
/// of c2.
struct RefSecretKey {
  RefPoly S;
};
struct RefRelinKey {
  std::vector<RefPoly> B, A;
};

/// Coefficient-wise (A + B) mod M.
RefPoly refPolyAdd(const RefPoly &A, const RefPoly &B, const mw::Bignum &M);
/// Coefficient-wise (A - B) mod M.
RefPoly refPolySub(const RefPoly &A, const RefPoly &B, const mw::Bignum &M);
/// Ring product over Z_M[x]/(x^n -+ 1) (schoolbook, via ReferenceDft).
RefPoly refPolyMul(const RefPoly &A, const RefPoly &B, const mw::Bignum &M,
                   bool Negacyclic);

/// c[i] = a[i] + b[i] poly-wise; ragged sizes extend with the longer.
RefCiphertext refAdd(const RefCiphertext &A, const RefCiphertext &B,
                     const mw::Bignum &M);

/// Tensor product of two degree-1 ciphertexts: (a0*b0,
/// a0*b1 + a1*b0, a1*b1) — three polys.
RefCiphertext refMul(const RefCiphertext &A, const RefCiphertext &B,
                     const mw::Bignum &M, bool Negacyclic);

/// Exact-quotient modulus switch: every coefficient X becomes
/// (X - (X mod q_last)) / q_last, an integer < M' = M / q_last, returned
/// reduced mod M'. Mirrors Dispatcher::rnsRescale exactly (same
/// integer-arithmetic identity, per-limb on the device side).
RefCiphertext refRescale(const RefCiphertext &C,
                         const runtime::RnsContext &Ctx);

/// Degree-2 -> degree-1: c0 += sum_l d_l * b_l, c1 += sum_l d_l * a_l
/// where d_l is the polynomial of limb-l residues of c2 (CRT digits).
RefCiphertext refRelinearize(const RefCiphertext &C, const RefRelinKey &K,
                             const runtime::RnsContext &Ctx,
                             bool Negacyclic);

/// Samples a ternary secret key of \p N coefficients.
RefSecretKey refKeyGen(size_t N, const mw::Bignum &M, Rng &R);

/// Samples the relinearization key for \p Ctx (one pair per limb).
RefRelinKey refRelinKeyGen(const RefSecretKey &SK,
                           const runtime::RnsContext &Ctx,
                           const mw::Bignum &T, bool Negacyclic, Rng &R);

/// Encrypts \p Msg (coefficients reduced mod \p T): c1 = a uniform,
/// c0 = -a*s + t*e + m mod M with small e.
RefCiphertext refEncrypt(const std::vector<std::uint64_t> &Msg,
                         const RefSecretKey &SK, const mw::Bignum &M,
                         const mw::Bignum &T, bool Negacyclic, Rng &R);

/// Decrypts a degree-1 or degree-2 ciphertext: centered reduction of
/// c0 + c1*s (+ c2*s^2) mod M, then mod T.
std::vector<std::uint64_t> refDecrypt(const RefCiphertext &C,
                                      const RefSecretKey &SK,
                                      const mw::Bignum &M,
                                      const mw::Bignum &T, bool Negacyclic);

} // namespace fhe
} // namespace moma

#endif // MOMA_FHE_REFERENCE_H
