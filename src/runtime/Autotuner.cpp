//===- runtime/Autotuner.cpp - Per-problem variant selection --------------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "runtime/Autotuner.h"

#include "runtime/Backend.h"
#include "runtime/NttPipeline.h"
#include "support/FaultInjection.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

using namespace moma;
using namespace moma::runtime;
using mw::Bignum;

//===----------------------------------------------------------------------===//
// Minimal JSON reader for the tune-cache format. Only what save() emits is
// required, but the reader accepts general objects/arrays and skips
// unknown keys so hand-edited caches keep loading.
//===----------------------------------------------------------------------===//

namespace {

struct JValue {
  enum Kind { Null, Bool, Num, Str, Arr, Obj } K = Null;
  bool B = false;
  double N = 0;
  std::string S;
  std::vector<JValue> A;
  std::vector<std::pair<std::string, JValue>> O;

  const JValue *field(const std::string &Name) const {
    if (K != Obj)
      return nullptr;
    for (const auto &P : O)
      if (P.first == Name)
        return &P.second;
    return nullptr;
  }
};

class JParser {
public:
  explicit JParser(const std::string &Text)
      : C(Text.data()), E(Text.data() + Text.size()) {}

  bool parse(JValue &Out) {
    Out = value();
    skipWs();
    return Ok && C == E;
  }

private:
  void skipWs() {
    while (C != E && (*C == ' ' || *C == '\t' || *C == '\n' || *C == '\r'))
      ++C;
  }
  bool eat(char Want) {
    skipWs();
    if (C == E || *C != Want) {
      Ok = false;
      return false;
    }
    ++C;
    return true;
  }
  bool lit(const char *Word) {
    for (const char *P = Word; *P; ++P, ++C)
      if (C == E || *C != *P) {
        Ok = false;
        return false;
      }
    return true;
  }

  JValue value() {
    skipWs();
    JValue V;
    if (!Ok || C == E) {
      Ok = false;
      return V;
    }
    switch (*C) {
    case '{': {
      ++C;
      V.K = JValue::Obj;
      skipWs();
      if (C != E && *C == '}') {
        ++C;
        return V;
      }
      do {
        JValue Key = value();
        if (!Ok || Key.K != JValue::Str || !eat(':'))
          return V;
        V.O.emplace_back(Key.S, value());
        skipWs();
      } while (Ok && C != E && *C == ',' && (++C, true));
      eat('}');
      return V;
    }
    case '[': {
      ++C;
      V.K = JValue::Arr;
      skipWs();
      if (C != E && *C == ']') {
        ++C;
        return V;
      }
      do {
        V.A.push_back(value());
        skipWs();
      } while (Ok && C != E && *C == ',' && (++C, true));
      eat(']');
      return V;
    }
    case '"': {
      ++C;
      V.K = JValue::Str;
      while (C != E && *C != '"') {
        if (*C == '\\' && C + 1 != E) {
          ++C;
          switch (*C) {
          case 'n':
            V.S += '\n';
            break;
          case 't':
            V.S += '\t';
            break;
          default:
            V.S += *C; // covers \" \\ \/ — all save() can need
          }
        } else {
          V.S += *C;
        }
        ++C;
      }
      if (!eat('"'))
        Ok = false;
      return V;
    }
    case 't':
      V.K = JValue::Bool;
      V.B = true;
      lit("true");
      return V;
    case 'f':
      V.K = JValue::Bool;
      lit("false");
      return V;
    case 'n':
      lit("null");
      return V;
    default: {
      char *End = nullptr;
      V.K = JValue::Num;
      V.N = std::strtod(C, &End);
      if (End == C || End > E) {
        Ok = false;
        return V;
      }
      C = End;
      return V;
    }
    }
  }

  const char *C, *E;
  bool Ok = true;
};

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-element data-input count for each op (a,b / x,y,w / a,x,y).
unsigned numDataInputs(KernelOp Op) {
  switch (Op) {
  case KernelOp::Butterfly:
  case KernelOp::Axpy:
    return 3;
  default:
    return 2;
  }
}

unsigned numOutputs(KernelOp Op) {
  return Op == KernelOp::Butterfly ? 2 : 1;
}

} // namespace

Autotuner::Autotuner(KernelRegistry &Reg, AutotunerOptions Opts)
    : Reg(Reg), O(std::move(Opts)) {
  if (!O.CachePath.empty())
    (void)load(O.CachePath); // a missing cache file is a cold start
}

unsigned Autotuner::sizeBucket(size_t SizeHint) {
  unsigned B = 64;
  while (B < SizeHint && B < 16384)
    B *= 2;
  return B;
}

std::string Autotuner::decisionKey(KernelOp Op, const Bignum &Q,
                                   const rewrite::PlanOptions &Base,
                                   unsigned Bucket) const {
  PlanKey K = PlanKey::forModulus(Op, Q, Base);
  // Beyond the problem itself, pin every knob the sweep will NOT explore
  // (canonicalized, so folded knobs never split entries): two dispatchers
  // with conflicting base plans must never share a decision. The size
  // bucket is always part of the key — the serial/sim-GPU crossover is a
  // function of the batch size.
  std::string Key = K.problemStr() + formatv("/n%u", Bucket);
  Key += K.Opts.MulAlg == mw::MulAlgorithm::Karatsuba ? "/karatsuba"
                                                      : "/schoolbook";
  if (!O.TuneReduction)
    Key += std::string("/") + mw::reductionName(K.Opts.Red);
  if (!O.TunePrune)
    Key += K.Opts.Prune ? "/prune" : "/noprune";
  if (!O.TuneSchedule)
    Key += K.Opts.Schedule ? "/schedule" : "/noschedule";
  if (!O.TuneBackend) {
    Key += std::string("/") + rewrite::execBackendName(K.Opts.Backend);
    if (K.Opts.Backend == rewrite::ExecBackend::Vector)
      Key += formatv("/v%u", K.Opts.VectorWidth);
    else if (K.Opts.Backend != rewrite::ExecBackend::Serial)
      Key += formatv("/b%u", K.Opts.BlockDim);
  }
  return Key;
}

Autotuner::Stats Autotuner::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return S;
}

size_t Autotuner::numDecisions() const {
  std::lock_guard<std::mutex> L(Mu);
  return Decisions.size();
}

const TuneDecision *Autotuner::serveOrTune(
    const std::string &Problem,
    const std::function<bool(TuneDecision &, unsigned &, std::string &)>
        &Sweep) {
  // Admission: serve a pinned decision, wait out another thread's sweep
  // on this problem (then re-check — its decision is usually ours to
  // serve), or become the leader. A leader whose sweep fails leaves no
  // decision behind; a waiting follower then retries as a fresh leader,
  // which matches what independent sequential calls would do.
  {
    std::unique_lock<std::mutex> L(Mu);
    for (;;) {
      auto It = Decisions.find(Problem);
      if (It != Decisions.end()) {
        ++S.Reused;
        return &It->second;
      }
      if (!Tuning.count(Problem))
        break;
      TuneCV.wait(L);
    }
    Tuning.insert(Problem);
  }

  // Leader: run the timing sweep with no tuner locks held — candidates
  // compile through the (thread-safe) registry, so other problems keep
  // tuning and serving concurrently.
  TuneDecision D;
  unsigned CandsTimed = 0;
  std::string Error;
  bool Ok = Sweep(D, CandsTimed, Error);

  const TuneDecision *Ret = nullptr;
  {
    std::lock_guard<std::mutex> L(Mu);
    Tuning.erase(Problem);
    S.Candidates += CandsTimed;
    if (Ok) {
      ++S.Tuned;
      auto Ins = Decisions.emplace(Problem, D);
      Ret = &Ins.first->second;
      if (!O.CachePath.empty())
        (void)saveLocked(O.CachePath);
    }
  }
  TuneCV.notify_all();
  if (!Ok)
    Err.set(Error);
  return Ret;
}

const TuneDecision *Autotuner::choose(KernelOp Op, const Bignum &Q,
                                      const rewrite::PlanOptions &Base,
                                      size_t SizeHint) {
  Err.clear();
  unsigned Bucket = sizeBucket(SizeHint ? SizeHint : O.CalibrationElems);
  std::string Problem = decisionKey(Op, Q, Base, Bucket);
  return serveOrTune(Problem, [&](TuneDecision &D, unsigned &Timed,
                                  std::string &Error) {
    return tuneProblem(Op, Q, Base, Bucket, D, Timed, Error);
  });
}

std::vector<rewrite::PlanOptions>
Autotuner::candidates(KernelOp Op, const Bignum &Q,
                      const rewrite::PlanOptions &Base, bool SweepFuse,
                      std::string *Err) const {
  // Candidate knob grid. Dimensions the options disable stay at the base
  // plan's value; the reduction dimension only exists for multiplying
  // kernels (PlanKey canonicalization folds it away otherwise).
  std::vector<mw::Reduction> Reds = {Base.Red};
  if (O.TuneReduction && kernelOpMultiplies(Op))
    Reds = {mw::Reduction::Barrett, mw::Reduction::Montgomery};
  if (!Q.isOdd()) {
    // Montgomery needs -q^-1 mod 2^lambda; for an even modulus only the
    // Barrett candidates are meaningful.
    Reds = {mw::Reduction::Barrett};
    if (Base.Red == mw::Reduction::Montgomery) {
      if (Err)
        *Err = "Autotuner: Montgomery base plan needs an odd modulus";
      return {};
    }
  }
  std::vector<bool> Prunes = {Base.Prune};
  if (O.TunePrune)
    Prunes = {true, false};
  std::vector<bool> Scheds = {Base.Schedule};
  if (O.TuneSchedule)
    Scheds = {false, true};
  // Backend × geometry candidates. Sweeping is a timing-only cost beyond
  // one extra compile per knob combination: block dim and lane width are
  // launch parameters of their ABIs, so every sim-GPU geometry shares one
  // module and every vector lane width shares another.
  struct BackendCand {
    rewrite::ExecBackend Backend;
    unsigned BlockDim;
    unsigned VectorWidth;
  };
  std::vector<BackendCand> Backends = {
      {Base.Backend, Base.BlockDim, Base.VectorWidth}};
  if (O.TuneBackend) {
    Backends = {{rewrite::ExecBackend::Serial, 0, 0}};
    for (unsigned BD : O.BlockDims)
      Backends.push_back({rewrite::ExecBackend::SimGpu, BD, 0});
    for (unsigned VW : O.VectorWidths)
      Backends.push_back({rewrite::ExecBackend::Vector, 0, VW});
  }
  // The stage-fusion axis only exists for transform-shaped problems;
  // like block dim it is a launch parameter, so the sweep adds timing
  // runs but no compiles.
  std::vector<unsigned> Fuses = {Base.FuseDepth};
  if (SweepFuse && O.TuneFuseDepth && !O.FuseDepths.empty())
    Fuses = O.FuseDepths;

  std::vector<rewrite::PlanOptions> Out;
  for (mw::Reduction Red : Reds)
    for (bool Prune : Prunes)
      for (bool Sched : Scheds)
        for (const BackendCand &BC : Backends)
          for (unsigned FD : Fuses) {
            rewrite::PlanOptions C = Base;
            C.Red = Red;
            C.Prune = Prune;
            C.Schedule = Sched;
            C.Backend = BC.Backend;
            C.BlockDim = BC.BlockDim;
            C.VectorWidth = BC.VectorWidth;
            C.FuseDepth = FD;
            Out.push_back(C);
          }
  return Out;
}

bool Autotuner::tuneProblem(KernelOp Op, const Bignum &Q,
                            const rewrite::PlanOptions &Base,
                            unsigned Bucket, TuneDecision &Out,
                            unsigned &CandsTimed,
                            std::string &Error) const {
  std::vector<rewrite::PlanOptions> Cands =
      candidates(Op, Q, Base, /*SweepFuse=*/false, &Error);
  if (Cands.empty())
    return false;

  // One calibration batch shared by every candidate: random reduced
  // elements, deterministic per problem, sized to the problem's batch
  // class so the serial/sim-GPU ranking reflects real dispatch sizes.
  unsigned ElemWords = (Q.bitWidth() + 63) / 64;
  size_t N = std::min<size_t>(Bucket, std::max(1u, O.MaxCalibrationElems));
  Rng R(0x7C5EDull ^ (Q.bitWidth() * 1315423911ull) ^
        static_cast<std::uint64_t>(Op));
  unsigned NumIns = numDataInputs(Op), NumOuts = numOutputs(Op);
  std::vector<std::vector<std::uint64_t>> Ins(NumIns), Outs(NumOuts);
  for (auto &Buf : Ins) {
    Buf.reserve(N * ElemWords);
    for (size_t I = 0; I < N; ++I) {
      auto W = packWordsMsbFirst(Bignum::random(R, Q), ElemWords);
      Buf.insert(Buf.end(), W.begin(), W.end());
    }
  }
  for (auto &Buf : Outs)
    Buf.assign(N * ElemWords, 0);

  TuneDecision Best;
  Best.NsPerElem = std::numeric_limits<double>::infinity();
  bool Any = false;
  std::string FirstError;

  for (const rewrite::PlanOptions &C : Cands) {
    PlanKey Key = PlanKey::forModulus(Op, Q, C);
    std::shared_ptr<const CompiledPlan> Plan = Reg.get(Key);
    if (!Plan) {
      if (FirstError.empty())
        FirstError = Reg.error();
      continue;
    }
    PlanAux Aux = makePlanAux(*Plan, Q);
    BatchArgs Args;
    for (auto &Buf : Outs)
      Args.Outs.push_back(Buf.data());
    for (auto &Buf : Ins)
      Args.Ins.push_back(Buf.data());
    Args.Aux = Aux.ptrs();

    ExecutionBackend &EB = Reg.backendFor(Key);
    ++CandsTimed;
    // Chaos hook: a candidate whose timing run dies (a kernel crash would
    // take the process, but a backend refusal is survivable) just drops
    // out of the sweep like any other failed candidate.
    if (support::faultShouldFail("autotuner.time")) {
      if (FirstError.empty())
        FirstError = "Autotuner: fault injected at autotuner.time";
      continue;
    }
    double BestSec = std::numeric_limits<double>::infinity();
    bool RunOk = true;
    for (unsigned Rep = 0; Rep < O.Repeats && RunOk; ++Rep) {
      double T0 = nowSeconds();
      RunOk = EB.runBatch(*Plan, Args, N, /*Rows=*/1, &FirstError);
      BestSec = std::min(BestSec, nowSeconds() - T0);
    }
    if (!RunOk)
      continue;
    double Ns = BestSec * 1e9 / static_cast<double>(N);
    if (Ns < Best.NsPerElem) {
      // Keep the canonicalized form so the decision round-trips
      // through PlanKey and the JSON cache unchanged.
      Best.Opts = Key.Opts;
      Best.NsPerElem = Ns;
    }
    Any = true;
  }

  if (!Any) {
    Error = "Autotuner: every candidate failed: " + FirstError;
    return false;
  }
  Out = Best;
  return true;
}

const TuneDecision *Autotuner::chooseNtt(const Bignum &Q,
                                         const rewrite::PlanOptions &Base,
                                         size_t NPoints, size_t Batch) {
  Err.clear();
  if (NPoints < 2 || (NPoints & (NPoints - 1)) != 0) {
    Err.set("Autotuner: NTT size must be a power of two >= 2");
    return nullptr;
  }
  unsigned LogN = 0;
  while ((size_t(1) << LogN) < NPoints)
    ++LogN;
  // The size class is butterflies per stage dispatch — what one backend
  // launch actually executes — and the transform size is its own key
  // dimension: the winning fusion depth is a function of log2(n).
  size_t Hint = (NPoints / 2) * std::max<size_t>(1, Batch);
  unsigned Bucket = sizeBucket(Hint);
  std::string Problem =
      decisionKey(KernelOp::Butterfly, Q, Base, Bucket) +
      formatv("/ntt%u", LogN);
  // The ring is a semantic axis, never swept: negacyclic problems get
  // their own decisions (the ψ edge folds shift the stage-group cost
  // profile, so the winning depth may differ).
  if (Base.Ring == rewrite::NttRing::Negacyclic)
    Problem += "/neg";
  if (!O.TuneFuseDepth)
    Problem += formatv(
        "/f%u", PlanKey::forModulus(KernelOp::Butterfly, Q, Base)
                    .Opts.FuseDepth);
  return serveOrTune(Problem, [&](TuneDecision &D, unsigned &Timed,
                                  std::string &Error) {
    return tuneNttProblem(Q, Base, NPoints, Bucket, D, Timed, Error);
  });
}

bool Autotuner::tuneNttProblem(const Bignum &Q,
                               const rewrite::PlanOptions &Base,
                               size_t NPoints, unsigned Bucket,
                               TuneDecision &Out, unsigned &CandsTimed,
                               std::string &Error) const {
  std::vector<rewrite::PlanOptions> Cands =
      candidates(KernelOp::Butterfly, Q, Base, /*SweepFuse=*/true, &Error);
  if (Cands.empty())
    return false;

  // Twiddle tables per reduction domain the candidate set needs, built
  // once and shared across every timing run (matching how the dispatcher
  // serves transforms). Built for the base plan's ring, so negacyclic
  // candidates are timed with the ψ edge folds they will actually run.
  NttTables Tables[2]; // [0] Barrett/plain, [1] Montgomery
  bool Built[2] = {false, false};
  for (const rewrite::PlanOptions &C : Cands) {
    int D = C.Red == mw::Reduction::Montgomery ? 1 : 0;
    if (Built[D])
      continue;
    std::string TablesErr;
    if (!buildNttTables(Q, NPoints, C.Red, Tables[D], &TablesErr,
                        Base.Ring)) {
      Error = "Autotuner: " + TablesErr;
      return false;
    }
    Built[D] = true;
  }

  // Calibration shape: the real transform size, batched up to the
  // element budget so stage dispatches see representative grid sizes.
  unsigned ElemWords = (Q.bitWidth() + 63) / 64;
  size_t CalBatch = std::max<size_t>(
      1, std::max(1u, O.MaxCalibrationElems) / NPoints);
  size_t ImpliedBatch = std::max<size_t>(1, (2 * size_t(Bucket)) / NPoints);
  CalBatch = std::min(CalBatch, ImpliedBatch);
  size_t Elems = NPoints * CalBatch;

  Rng R(0x7C5EDull ^ (Q.bitWidth() * 1315423911ull) ^ (NPoints * 31ull));
  std::vector<std::uint64_t> Data;
  Data.reserve(Elems * ElemWords);
  for (size_t I = 0; I < Elems; ++I) {
    auto W = packWordsMsbFirst(Bignum::random(R, Q), ElemWords);
    Data.insert(Data.end(), W.begin(), W.end());
  }
  std::vector<std::uint64_t> Scratch(Elems * ElemWords);

  TuneDecision Best;
  Best.NsPerElem = std::numeric_limits<double>::infinity();
  bool Any = false;
  std::string FirstError;

  for (const rewrite::PlanOptions &C : Cands) {
    PlanKey Key = PlanKey::forModulus(KernelOp::Butterfly, Q, C);
    std::shared_ptr<const CompiledPlan> Plan = Reg.get(Key);
    if (!Plan) {
      if (FirstError.empty())
        FirstError = Reg.error();
      continue;
    }
    PlanAux Aux = makePlanAux(*Plan, Q);
    std::vector<const std::uint64_t *> AuxPtrs = Aux.ptrs();
    const NttTables &T =
        Tables[Key.Opts.Red == mw::Reduction::Montgomery ? 1 : 0];
    ExecutionBackend &EB = Reg.backendFor(Key);
    ++CandsTimed;
    // Chaos hook, as in tuneProblem: a failed timing run drops the
    // candidate, and an all-candidates failure surfaces as a tuner error.
    if (support::faultShouldFail("autotuner.time")) {
      if (FirstError.empty())
        FirstError = "Autotuner: fault injected at autotuner.time";
      continue;
    }
    double BestSec = std::numeric_limits<double>::infinity();
    bool RunOk = true;
    for (unsigned Rep = 0; Rep < O.Repeats && RunOk; ++Rep) {
      // Re-transforming transformed data is fine — inputs are arbitrary
      // reduced vectors, and every candidate sees the same evolution.
      double T0 = nowSeconds();
      RunOk = runTransform(EB, *Plan, T, AuxPtrs, Data.data(),
                           Scratch.data(), NPoints, CalBatch,
                           /*Inverse=*/false, &FirstError);
      BestSec = std::min(BestSec, nowSeconds() - T0);
    }
    if (!RunOk)
      continue;
    double Ns = BestSec * 1e9 / static_cast<double>(Elems);
    if (Ns < Best.NsPerElem) {
      Best.Opts = Key.Opts;
      Best.NsPerElem = Ns;
    }
    Any = true;
  }

  if (!Any) {
    Error = "Autotuner: every candidate failed: " + FirstError;
    return false;
  }
  Out = Best;
  return true;
}

bool Autotuner::save(const std::string &Path) const {
  std::lock_guard<std::mutex> L(Mu);
  return saveLocked(Path);
}

bool Autotuner::saveLocked(const std::string &Path) const {
  // Version 2 added the backend and block_dim fields (and size-bucketed
  // problem keys); version 3 added fuse_depth (and /ntt<logn>-keyed
  // transform problems); version 4 added ring (and /neg-keyed negacyclic
  // problems); version 5 adds vector_width (and the "vector" backend
  // name). The reader skips unknown fields and defaults absent ones, so
  // older files keep loading — version-1 entries simply never match a
  // bucketed problem key and are ignored, version-2 entries default to
  // the unfused depth, version-3 entries to the cyclic ring, version-4
  // entries never name the vector backend so the lane width stays 0.
  std::ostringstream SS;
  SS << "{\n  \"version\": 5,\n  \"entries\": [";
  bool First = true;
  for (const auto &E : Decisions) {
    const TuneDecision &D = E.second;
    SS << (First ? "" : ",") << "\n    {"
       << "\"problem\": \"" << E.first << "\", "
       << "\"word_bits\": " << D.Opts.TargetWordBits << ", "
       << "\"reduction\": \"" << mw::reductionName(D.Opts.Red) << "\", "
       << "\"mulalg\": \""
       << (D.Opts.MulAlg == mw::MulAlgorithm::Karatsuba ? "karatsuba"
                                                        : "schoolbook")
       << "\", "
       << "\"prune\": " << (D.Opts.Prune ? "true" : "false") << ", "
       << "\"schedule\": " << (D.Opts.Schedule ? "true" : "false") << ", "
       << "\"backend\": \"" << rewrite::execBackendName(D.Opts.Backend)
       << "\", "
       << "\"block_dim\": " << D.Opts.BlockDim << ", "
       << "\"vector_width\": " << D.Opts.VectorWidth << ", "
       << "\"fuse_depth\": " << D.Opts.FuseDepth << ", "
       << "\"ring\": \"" << rewrite::nttRingName(D.Opts.Ring) << "\", "
       << "\"ns_per_elem\": " << formatv("%.3f", D.NsPerElem) << "}";
    First = false;
  }
  SS << "\n  ]\n}\n";
  std::ofstream Out(Path);
  Out << SS.str();
  return static_cast<bool>(Out);
}

bool Autotuner::load(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    Err.set("Autotuner: cannot open " + Path);
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  JValue Root;
  if (!JParser(SS.str()).parse(Root) || Root.K != JValue::Obj) {
    Err.set("Autotuner: " + Path + " is not valid tune-cache JSON");
    return false;
  }
  const JValue *Entries = Root.field("entries");
  if (!Entries || Entries->K != JValue::Arr) {
    Err.set("Autotuner: " + Path + " has no entries array");
    return false;
  }
  std::lock_guard<std::mutex> L(Mu);
  for (const JValue &E : Entries->A) {
    const JValue *Problem = E.field("problem");
    const JValue *Red = E.field("reduction");
    if (!Problem || Problem->K != JValue::Str || !Red ||
        Red->K != JValue::Str)
      continue; // tolerate foreign entries
    TuneDecision D;
    D.FromCache = true;
    D.Opts.Red = Red->S == "montgomery" ? mw::Reduction::Montgomery
                                        : mw::Reduction::Barrett;
    if (const JValue *V = E.field("word_bits"))
      D.Opts.TargetWordBits = static_cast<unsigned>(V->N);
    if (const JValue *V = E.field("mulalg"))
      D.Opts.MulAlg = V->S == "karatsuba" ? mw::MulAlgorithm::Karatsuba
                                          : mw::MulAlgorithm::Schoolbook;
    if (const JValue *V = E.field("prune"))
      D.Opts.Prune = V->B;
    if (const JValue *V = E.field("schedule"))
      D.Opts.Schedule = V->B;
    if (const JValue *V = E.field("backend"))
      D.Opts.Backend = V->S == "simgpu"   ? rewrite::ExecBackend::SimGpu
                       : V->S == "vector" ? rewrite::ExecBackend::Vector
                       : V->S == "interp" ? rewrite::ExecBackend::Interp
                                          : rewrite::ExecBackend::Serial;
    if (const JValue *V = E.field("block_dim"))
      D.Opts.BlockDim = static_cast<unsigned>(V->N);
    if (const JValue *V = E.field("vector_width"))
      D.Opts.VectorWidth = static_cast<unsigned>(V->N);
    if (const JValue *V = E.field("fuse_depth"))
      D.Opts.FuseDepth = std::max(1u, static_cast<unsigned>(V->N));
    if (const JValue *V = E.field("ring"))
      D.Opts.Ring = V->S == "negacyclic" ? rewrite::NttRing::Negacyclic
                                         : rewrite::NttRing::Cyclic;
    if (const JValue *V = E.field("ns_per_elem"))
      D.NsPerElem = V->N;
    // Freshly tuned decisions win over persisted ones.
    Decisions.emplace(Problem->S, D);
  }
  return true;
}
