//===- runtime/Backend.cpp - Execution backends ---------------------------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "runtime/Backend.h"

#include "ir/Interp.h"
#include "support/Format.h"

#include <cstdint>
#include <limits>

using namespace moma;
using namespace moma::runtime;

namespace {

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

/// The JIT-compiled grid ABI (codegen/GridEmitter.h).
using GridFnTy = void (*)(std::uint64_t, std::uint64_t, std::uint64_t,
                          std::uint64_t, std::uint64_t *const *,
                          const std::uint64_t *const *,
                          const std::uint64_t *,
                          const std::uint64_t *const *);
using StageFnTy = void (*)(std::uint64_t, std::uint64_t, std::uint64_t,
                           std::uint64_t, std::uint64_t, std::uint64_t *,
                           const std::uint64_t *,
                           const std::uint64_t *const *);
using FusedFnTy = void (*)(std::uint64_t, std::uint64_t, std::uint64_t,
                           std::uint64_t, std::uint64_t, std::uint64_t,
                           std::uint64_t *, const std::uint64_t *,
                           const std::uint64_t *, const std::uint32_t *,
                           const std::uint64_t *, const std::uint64_t *,
                           std::uint64_t, const std::uint64_t *const *);

/// The JIT-compiled lane-loop ABI (codegen/VectorEmitter.h).
using VecFnTy = void (*)(std::uint64_t, std::uint64_t,
                         std::uint64_t *const *, const std::uint64_t *const *,
                         const std::uint64_t *, const std::uint64_t *const *);
using VecStageFnTy = void (*)(std::uint64_t, std::uint64_t, std::uint64_t,
                              std::uint64_t, std::uint64_t *,
                              const std::uint64_t *,
                              const std::uint64_t *const *);
using VecFusedFnTy = void (*)(std::uint64_t, std::uint64_t, std::uint64_t,
                              std::uint64_t, std::uint64_t, std::uint64_t *,
                              const std::uint64_t *, const std::uint64_t *,
                              const std::uint32_t *, const std::uint64_t *,
                              const std::uint64_t *, std::uint64_t,
                              const std::uint64_t *const *);

bool checkButterflyShape(const CompiledPlan &P, std::string *Err) {
  if (P.NumOutputs != 2 || P.NumDataInputs != 3)
    return fail(Err, "runStage: plan is not a butterfly kernel");
  return true;
}

/// Shared validation of one fused stage-group request against the
/// transform size: the group must cover whole stages inside the
/// transform, with the bit-reversal gather only on the first stage.
bool checkStageGroup(const StageGroup &G, size_t NPoints, std::string *Err) {
  if (G.Depth < 1 || G.Depth > rewrite::PlanOptions::MaxFuseDepth)
    return fail(Err, formatv("runStageGroup: depth %u outside [1, %u]",
                             G.Depth, rewrite::PlanOptions::MaxFuseDepth));
  if (!G.Src || !G.Dst)
    return fail(Err, "runStageGroup: null data pointer");
  if (G.Len0 == 0 || (G.Len0 << G.Depth) > NPoints)
    return fail(Err, formatv("runStageGroup: group [len0 %zu, depth %u] "
                             "does not fit n = %zu",
                             G.Len0, G.Depth, NPoints));
  if (G.Gather && G.Len0 != 1)
    return fail(Err, "runStageGroup: the bit-reversal gather only folds "
                     "into the first stage group");
  if (G.Twist && G.Len0 != 1)
    return fail(Err, "runStageGroup: the negacyclic twist only folds "
                     "into the first stage group");
  return true;
}

/// How a host-side walker invokes the plan for one element/butterfly.
/// The serial backend passes callPlan (the JIT'd scalar entry point); the
/// interp backend passes interpInvoke. Sharing the walkers this way keeps
/// the two backends' butterfly order identical by construction, which is
/// what makes interp fallback results bit-identical to JIT results.
using InvokeFn = bool (*)(const CompiledPlan &, void *const *);

/// The interpreter invoker: unpacks every port into a Bignum (inputs
/// first, so in-place butterflies see a consistent snapshot), runs the
/// plan's scalar kernel through ir::interpret, packs the outputs back.
bool interpInvoke(const CompiledPlan &P, void *const *Ports) {
  if (!P.InterpKernel)
    return false;
  size_t NumIn = P.Lowered.Inputs.size();
  std::vector<mw::Bignum> In(NumIn);
  for (size_t J = 0; J < NumIn; ++J)
    In[J] = unpackWordsMsbFirst(
        static_cast<const std::uint64_t *>(Ports[P.NumOutputs + J]),
        P.Lowered.Inputs[J].storedWords());
  std::vector<mw::Bignum> Out = ir::interpret(*P.InterpKernel, In);
  for (size_t J = 0; J < P.NumOutputs; ++J) {
    std::vector<std::uint64_t> W =
        packWordsMsbFirst(Out[J], P.Lowered.Outputs[J].storedWords());
    std::copy(W.begin(), W.end(), static_cast<std::uint64_t *>(Ports[J]));
  }
  return true;
}

/// Element-loop walker shared by the host backends (serial and interp):
/// one invoker call per element with the same port addressing as the
/// grid's e = by*n + i indexing. \p N is the flat element count.
bool hostRunElements(const CompiledPlan &P, const BatchArgs &Args, size_t N,
                     std::string *Err, InvokeFn Invoke) {
  if (Args.Outs.size() != P.NumOutputs ||
      Args.Ins.size() != P.NumDataInputs ||
      Args.Aux.size() != P.AuxWords.size() ||
      (!Args.InStrides.empty() && Args.InStrides.size() != Args.Ins.size()))
    return fail(Err, "runBatch: argument shape mismatch");
  size_t NumPorts = P.numPorts();
  void *Ports[8];
  if (NumPorts > 8)
    return fail(Err, "runBatch: unsupported plan shape");
  for (size_t I = 0; I < N; ++I) {
    size_t Slot = 0;
    for (std::uint64_t *Out : Args.Outs)
      Ports[Slot++] = Out + I * P.ElemWords;
    for (size_t J = 0; J < Args.Ins.size(); ++J) {
      size_t Stride =
          Args.InStrides.empty() ? P.ElemWords : Args.InStrides[J];
      Ports[Slot++] = const_cast<std::uint64_t *>(Args.Ins[J] + I * Stride);
    }
    for (const std::uint64_t *A : Args.Aux)
      Ports[Slot++] = const_cast<std::uint64_t *>(A);
    if (!Invoke(P, Ports))
      return fail(Err,
                  formatv("runBatch: unsupported arity %zu", NumPorts));
  }
  return true;
}

/// Radix-2 NTT stage walker shared by the host backends.
bool hostRunStage(const CompiledPlan &P, std::uint64_t *Data,
                  const std::uint64_t *StageTw,
                  const std::vector<const std::uint64_t *> &Aux,
                  size_t NPoints, size_t Len, size_t Batch, std::string *Err,
                  InvokeFn Invoke) {
  if (!checkButterflyShape(P, Err))
    return false;
  unsigned K = P.ElemWords;
  size_t NumPorts = P.numPorts();
  if (Aux.size() != P.AuxWords.size() || NumPorts > 8)
    return fail(Err, "runStage: aux/port shape mismatch");

  // Port frame reused across every butterfly: xo yo | x y w | q aux...
  void *Ports[8];
  for (size_t I = 0; I < Aux.size(); ++I)
    Ports[5 + I] = const_cast<std::uint64_t *>(Aux[I]);
  for (size_t B = 0; B < Batch; ++B) {
    std::uint64_t *Poly = Data + B * NPoints * K;
    for (size_t I0 = 0; I0 < NPoints; I0 += 2 * Len) {
      for (size_t J = 0; J < Len; ++J) {
        std::uint64_t *X = Poly + (I0 + J) * K;
        std::uint64_t *Y = X + Len * K;
        Ports[0] = X;
        Ports[1] = Y;
        Ports[2] = X;
        Ports[3] = Y;
        Ports[4] = const_cast<std::uint64_t *>(StageTw + J * K);
        if (!Invoke(P, Ports))
          return fail(Err, formatv("runStage: unsupported butterfly arity "
                                   "%zu",
                                   NumPorts));
      }
    }
  }
  return true;
}

/// Fused stage-group walker shared by the host backends: the host-side
/// mirror of the emitted fused kernel (same geometry, same butterfly
/// order — bit-identical by construction across invokers too).
bool hostRunStageGroup(const CompiledPlan &P, const StageGroup &G,
                       const std::uint64_t *Tw,
                       const std::vector<const std::uint64_t *> &Aux,
                       size_t NPoints, size_t Batch, std::string *Err,
                       InvokeFn Invoke) {
  if (!checkButterflyShape(P, Err) || !checkStageGroup(G, NPoints, Err))
    return false;
  unsigned K = P.ElemWords;
  size_t NumPorts = P.numPorts();
  if (Aux.size() != P.AuxWords.size() || NumPorts > 8)
    return fail(Err, "runStageGroup: aux/port shape mismatch");
  if (Batch == 0 || NPoints < 2)
    return true;

  // In-place groups without edge folds need no staging at all on the
  // serial substrate: walk the sub-stages as plain radix-2 passes over
  // the buffer (identical butterfly sequence, so bit-identical results,
  // at the historical per-stage cost with zero copies).
  if (!G.Gather && !G.Twist && !G.Scale && G.Src == G.Dst) {
    unsigned KW = P.ElemWords;
    void *Ports[8];
    for (size_t I = 0; I < Aux.size(); ++I)
      Ports[5 + I] = const_cast<std::uint64_t *>(Aux[I]);
    for (size_t B = 0; B < Batch; ++B) {
      std::uint64_t *Poly = G.Dst + B * NPoints * KW;
      for (unsigned D = 0; D < G.Depth; ++D) {
        size_t L = G.Len0 << D;
        const std::uint64_t *Stage = Tw + (L - 1) * KW;
        for (size_t I0 = 0; I0 < NPoints; I0 += 2 * L)
          for (size_t J = 0; J < L; ++J) {
            std::uint64_t *X = Poly + (I0 + J) * KW;
            Ports[0] = Ports[2] = X;
            Ports[1] = Ports[3] = X + L * KW;
            Ports[4] = const_cast<std::uint64_t *>(Stage + J * KW);
            if (!Invoke(P, Ports))
              return fail(Err, "runStageGroup: unsupported butterfly "
                               "arity");
          }
      }
    }
    return true;
  }

  // The host-side mirror of the emitted fused kernel (same geometry, same
  // butterfly order — bit-identical by construction): 2^depth elements
  // per virtual thread staged through a register block, gather on the
  // loads, n^-1 on the stores via the zero-x butterfly. One allocation
  // per dispatch, amortized over the whole batch.
  size_t M = size_t(1) << G.Depth;
  size_t NT = NPoints >> G.Depth;
  std::vector<std::uint64_t> Regs(M * K), Dump(K), Zero(K, 0);
  void *Ports[8];
  for (size_t I = 0; I < Aux.size(); ++I)
    Ports[5 + I] = const_cast<std::uint64_t *>(Aux[I]);

  for (size_t B = 0; B < Batch; ++B) {
    const std::uint64_t *SrcRow = G.Src + B * NPoints * K;
    std::uint64_t *DstRow = G.Dst + B * NPoints * K;
    size_t Grp = 0, R = 0; // thread t = Grp * Len0 + R
    for (size_t T = 0; T < NT; ++T) {
      size_t Base = Grp * (G.Len0 << G.Depth) + R;
      for (size_t J = 0; J < M; ++J) {
        size_t E = Base + J * G.Len0;
        size_t S = G.Gather ? size_t(G.Gather[E]) : E;
        const std::uint64_t *Src = SrcRow + S * K;
        std::copy(Src, Src + K, Regs.begin() + J * K);
        if (G.Twist) {
          // Forward negacyclic fold: the value just loaded is
          // coefficient a_S, multiplied by ψ^S through the zero-x
          // butterfly (mirrors the emitted fused kernel).
          Ports[0] = Regs.data() + J * K;
          Ports[1] = Dump.data();
          Ports[2] = Zero.data();
          Ports[3] = Regs.data() + J * K;
          Ports[4] = const_cast<std::uint64_t *>(G.Twist + S * K);
          if (!Invoke(P, Ports))
            return fail(Err, "runStageGroup: unsupported butterfly arity");
        }
      }
      for (unsigned D = 0; D < G.Depth; ++D) {
        size_t H = size_t(1) << D;
        size_t L = G.Len0 << D;
        for (size_t J0 = 0; J0 < M; J0 += 2 * H)
          for (size_t J = J0; J < J0 + H; ++J) {
            std::uint64_t *X = Regs.data() + J * K;
            std::uint64_t *Y = Regs.data() + (J + H) * K;
            Ports[0] = X;
            Ports[1] = Y;
            Ports[2] = X;
            Ports[3] = Y;
            Ports[4] = const_cast<std::uint64_t *>(
                Tw + (L - 1 + R + (J - J0) * G.Len0) * K);
            if (!Invoke(P, Ports))
              return fail(Err,
                          formatv("runStageGroup: unsupported butterfly "
                                  "arity %zu",
                                  NumPorts));
          }
      }
      if (G.Scale)
        for (size_t J = 0; J < M; ++J) {
          Ports[0] = Regs.data() + J * K;
          Ports[1] = Dump.data();
          Ports[2] = Zero.data();
          Ports[3] = Regs.data() + J * K;
          // ScaleStride 0 broadcasts (cyclic n^-1); ElemWords indexes the
          // per-output untwist table at the natural-order element index.
          Ports[4] = const_cast<std::uint64_t *>(
              G.Scale + (Base + J * G.Len0) * G.ScaleStride);
          if (!Invoke(P, Ports))
            return fail(Err, "runStageGroup: unsupported butterfly arity");
        }
      for (size_t J = 0; J < M; ++J)
        std::copy(Regs.begin() + J * K, Regs.begin() + (J + 1) * K,
                  DstRow + (Base + J * G.Len0) * K);
      if (++R == G.Len0) {
        R = 0;
        ++Grp;
      }
    }
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// SerialBackend
//===----------------------------------------------------------------------===//

bool SerialBackend::runBatch(const CompiledPlan &P, const BatchArgs &Args,
                             size_t N, size_t Rows, std::string *Err) const {
  if (P.Key.Opts.Backend != rewrite::ExecBackend::Serial)
    return fail(Err, formatv("serial backend cannot run a %s plan",
                             rewrite::execBackendName(P.Key.Opts.Backend)));
  // Row-major batch rows are contiguous, so the serial element loop is the
  // flat product; broadcast (stride 0) inputs broadcast across every row
  // exactly as the grid's e = by*n + i indexing does.
  return moma::runtime::runBatch(P, Args, N * Rows, Err);
}

bool SerialBackend::runStage(const CompiledPlan &P, std::uint64_t *Data,
                             const std::uint64_t *StageTw,
                             const std::vector<const std::uint64_t *> &Aux,
                             size_t NPoints, size_t Len, size_t Batch,
                             std::string *Err) const {
  if (P.Key.Opts.Backend != rewrite::ExecBackend::Serial)
    return fail(Err, formatv("serial backend cannot run a %s plan",
                             rewrite::execBackendName(P.Key.Opts.Backend)));
  return hostRunStage(P, Data, StageTw, Aux, NPoints, Len, Batch, Err,
                      callPlan);
}

bool SerialBackend::runStageGroup(const CompiledPlan &P, const StageGroup &G,
                                  const std::uint64_t *Tw,
                                  const std::vector<const std::uint64_t *>
                                      &Aux,
                                  size_t NPoints, size_t Batch,
                                  std::string *Err) const {
  if (P.Key.Opts.Backend != rewrite::ExecBackend::Serial)
    return fail(Err, formatv("serial backend cannot run a %s plan",
                             rewrite::execBackendName(P.Key.Opts.Backend)));
  return hostRunStageGroup(P, G, Tw, Aux, NPoints, Batch, Err, callPlan);
}

//===----------------------------------------------------------------------===//
// InterpBackend
//===----------------------------------------------------------------------===//

bool InterpBackend::runBatch(const CompiledPlan &P, const BatchArgs &Args,
                             size_t N, size_t Rows, std::string *Err) const {
  if (P.Key.Opts.Backend != rewrite::ExecBackend::Interp || !P.InterpKernel)
    return fail(Err, "interp backend needs an interpreter plan");
  // Same flat element product as the serial backend; every call runs the
  // scalar kernel through ir::interpret.
  return hostRunElements(P, Args, N * Rows, Err, interpInvoke);
}

bool InterpBackend::runStage(const CompiledPlan &P, std::uint64_t *Data,
                             const std::uint64_t *StageTw,
                             const std::vector<const std::uint64_t *> &Aux,
                             size_t NPoints, size_t Len, size_t Batch,
                             std::string *Err) const {
  if (P.Key.Opts.Backend != rewrite::ExecBackend::Interp || !P.InterpKernel)
    return fail(Err, "interp backend needs an interpreter plan");
  return hostRunStage(P, Data, StageTw, Aux, NPoints, Len, Batch, Err,
                      interpInvoke);
}

bool InterpBackend::runStageGroup(const CompiledPlan &P, const StageGroup &G,
                                  const std::uint64_t *Tw,
                                  const std::vector<const std::uint64_t *>
                                      &Aux,
                                  size_t NPoints, size_t Batch,
                                  std::string *Err) const {
  if (P.Key.Opts.Backend != rewrite::ExecBackend::Interp || !P.InterpKernel)
    return fail(Err, "interp backend needs an interpreter plan");
  return hostRunStageGroup(P, G, Tw, Aux, NPoints, Batch, Err, interpInvoke);
}

//===----------------------------------------------------------------------===//
// SimGpuBackend
//===----------------------------------------------------------------------===//

SimGpuBackend::SimGpuBackend(const sim::DeviceProfile &Profile)
    : Dev(Profile) {}

bool SimGpuBackend::validGeometry(const CompiledPlan &P,
                                  std::string *Err) const {
  unsigned BD = P.Key.Opts.BlockDim;
  if (BD == 0 || BD > Dev.profile().MaxThreadsPerBlock)
    return fail(Err,
                formatv("sim-GPU launch: block dimension %u outside "
                        "[1, %u] on %s",
                        BD, Dev.profile().MaxThreadsPerBlock,
                        Dev.profile().Name.c_str()));
  return true;
}

bool SimGpuBackend::runBatch(const CompiledPlan &P, const BatchArgs &Args,
                             size_t N, size_t Rows, std::string *Err) const {
  if (P.Key.Opts.Backend != rewrite::ExecBackend::SimGpu || !P.GridFn)
    return fail(Err, "sim-GPU backend needs a plan compiled with a grid "
                     "entry point");
  if (!validGeometry(P, Err))
    return false;
  if (Args.Outs.size() != P.NumOutputs ||
      Args.Ins.size() != P.NumDataInputs ||
      Args.Aux.size() != P.AuxWords.size() ||
      (!Args.InStrides.empty() && Args.InStrides.size() != Args.Ins.size()))
    return fail(Err, "sim-GPU runBatch: argument shape mismatch");
  if (N == 0 || Rows == 0)
    return true;

  std::vector<std::uint64_t> Strides(Args.Ins.size(), P.ElemWords);
  for (size_t I = 0; I < Args.InStrides.size(); ++I)
    Strides[I] = Args.InStrides[I];

  unsigned BD = P.Key.Opts.BlockDim;
  std::uint64_t GridX = (N + BD - 1) / BD;
  if (GridX > std::numeric_limits<std::uint32_t>::max() ||
      Rows > std::numeric_limits<std::uint32_t>::max())
    return fail(Err, "sim-GPU runBatch: grid too large");

  sim::LaunchConfig Cfg;
  Cfg.GridX = static_cast<std::uint32_t>(GridX);
  Cfg.GridY = static_cast<std::uint32_t>(Rows);
  Cfg.BlockDim = BD;
  // Pre-validate so a refused launch (including an injected sim.launch
  // fault) is a graceful dispatch error, not the launch-path abort.
  if (std::string VErr = Dev.validate(Cfg); !VErr.empty())
    return fail(Err, "sim-GPU launch: " + VErr);
  auto Fn = reinterpret_cast<GridFnTy>(P.GridFn);
  Dev.launchBlocks(Cfg, [&](std::uint32_t BX, std::uint32_t BY) {
    Fn(BX, BY, BD, N, Args.Outs.data(), Args.Ins.data(), Strides.data(),
       Args.Aux.data());
  });
  return true;
}

bool SimGpuBackend::runStage(const CompiledPlan &P, std::uint64_t *Data,
                             const std::uint64_t *StageTw,
                             const std::vector<const std::uint64_t *> &Aux,
                             size_t NPoints, size_t Len, size_t Batch,
                             std::string *Err) const {
  if (P.Key.Opts.Backend != rewrite::ExecBackend::SimGpu || !P.StageFn)
    return fail(Err, "sim-GPU backend needs a plan compiled with a stage "
                     "entry point");
  if (!checkButterflyShape(P, Err) || !validGeometry(P, Err))
    return false;
  if (Aux.size() != P.AuxWords.size())
    return fail(Err, "runStage: aux shape mismatch");
  if (Batch == 0 || NPoints < 2)
    return true;

  unsigned BD = P.Key.Opts.BlockDim;
  std::uint64_t Butterflies = NPoints / 2;
  std::uint64_t GridX = (Butterflies + BD - 1) / BD;
  if (GridX > std::numeric_limits<std::uint32_t>::max() ||
      Batch > std::numeric_limits<std::uint32_t>::max())
    return fail(Err, "sim-GPU runStage: grid too large");

  sim::LaunchConfig Cfg;
  Cfg.GridX = static_cast<std::uint32_t>(GridX);
  Cfg.GridY = static_cast<std::uint32_t>(Batch); // paper 5.1 batch dim
  Cfg.BlockDim = BD;
  if (std::string VErr = Dev.validate(Cfg); !VErr.empty())
    return fail(Err, "sim-GPU launch: " + VErr);
  auto Fn = reinterpret_cast<StageFnTy>(P.StageFn);
  Dev.launchBlocks(Cfg, [&](std::uint32_t BX, std::uint32_t BY) {
    Fn(BX, BY, BD, NPoints, Len, Data, StageTw, Aux.data());
  });
  return true;
}

bool SimGpuBackend::runStageGroup(const CompiledPlan &P, const StageGroup &G,
                                  const std::uint64_t *Tw,
                                  const std::vector<const std::uint64_t *>
                                      &Aux,
                                  size_t NPoints, size_t Batch,
                                  std::string *Err) const {
  if (P.Key.Opts.Backend != rewrite::ExecBackend::SimGpu || !P.FusedFn)
    return fail(Err, "sim-GPU backend needs a plan compiled with a fused "
                     "stage-group entry point");
  if (!checkButterflyShape(P, Err) || !validGeometry(P, Err) ||
      !checkStageGroup(G, NPoints, Err))
    return false;
  if (Aux.size() != P.AuxWords.size())
    return fail(Err, "runStageGroup: aux shape mismatch");
  if (Batch == 0 || NPoints < 2)
    return true;

  unsigned BD = P.Key.Opts.BlockDim;
  std::uint64_t Threads = NPoints >> G.Depth; // one per 2^depth points
  std::uint64_t GridX = (Threads + BD - 1) / BD;
  if (GridX > std::numeric_limits<std::uint32_t>::max() ||
      Batch > std::numeric_limits<std::uint32_t>::max())
    return fail(Err, "sim-GPU runStageGroup: grid too large");

  sim::LaunchConfig Cfg;
  Cfg.GridX = static_cast<std::uint32_t>(GridX);
  Cfg.GridY = static_cast<std::uint32_t>(Batch); // paper 5.1 batch dim
  Cfg.BlockDim = BD;
  if (std::string VErr = Dev.validate(Cfg); !VErr.empty())
    return fail(Err, "sim-GPU launch: " + VErr);
  auto Fn = reinterpret_cast<FusedFnTy>(P.FusedFn);
  Dev.launchBlocks(Cfg, [&](std::uint32_t BX, std::uint32_t BY) {
    Fn(BX, BY, BD, NPoints, G.Len0, G.Depth, G.Dst, G.Src, Tw, G.Gather,
       G.Twist, G.Scale, G.ScaleStride, Aux.data());
  });
  return true;
}

//===----------------------------------------------------------------------===//
// VectorBackend
//===----------------------------------------------------------------------===//

bool VectorBackend::runBatch(const CompiledPlan &P, const BatchArgs &Args,
                             size_t N, size_t Rows, std::string *Err) const {
  if (P.Key.Opts.Backend != rewrite::ExecBackend::Vector || !P.VecFn)
    return fail(Err, "vector backend needs a plan compiled with a lane-loop "
                     "entry point");
  if (Args.Outs.size() != P.NumOutputs ||
      Args.Ins.size() != P.NumDataInputs ||
      Args.Aux.size() != P.AuxWords.size() ||
      (!Args.InStrides.empty() && Args.InStrides.size() != Args.Ins.size()))
    return fail(Err, "vector runBatch: argument shape mismatch");
  if (N == 0 || Rows == 0)
    return true;

  std::vector<std::uint64_t> Strides(Args.Ins.size(), P.ElemWords);
  for (size_t I = 0; I < Args.InStrides.size(); ++I)
    Strides[I] = Args.InStrides[I];

  // Row-major batch rows are contiguous and broadcast (stride 0) inputs
  // broadcast across every row, so the lane loop runs over the flat
  // N * Rows element product in one call.
  auto Fn = reinterpret_cast<VecFnTy>(P.VecFn);
  Fn(P.Key.Opts.VectorWidth, N * Rows, Args.Outs.data(), Args.Ins.data(),
     Strides.data(), Args.Aux.data());
  return true;
}

bool VectorBackend::runStage(const CompiledPlan &P, std::uint64_t *Data,
                             const std::uint64_t *StageTw,
                             const std::vector<const std::uint64_t *> &Aux,
                             size_t NPoints, size_t Len, size_t Batch,
                             std::string *Err) const {
  if (P.Key.Opts.Backend != rewrite::ExecBackend::Vector || !P.VecStageFn)
    return fail(Err, "vector backend needs a plan compiled with a stage "
                     "entry point");
  if (!checkButterflyShape(P, Err))
    return false;
  if (Aux.size() != P.AuxWords.size())
    return fail(Err, "runStage: aux shape mismatch");
  if (Batch == 0 || NPoints < 2)
    return true;
  auto Fn = reinterpret_cast<VecStageFnTy>(P.VecStageFn);
  Fn(P.Key.Opts.VectorWidth, Batch, NPoints, Len, Data, StageTw, Aux.data());
  return true;
}

bool VectorBackend::runStageGroup(const CompiledPlan &P, const StageGroup &G,
                                  const std::uint64_t *Tw,
                                  const std::vector<const std::uint64_t *>
                                      &Aux,
                                  size_t NPoints, size_t Batch,
                                  std::string *Err) const {
  if (P.Key.Opts.Backend != rewrite::ExecBackend::Vector || !P.VecFusedFn)
    return fail(Err, "vector backend needs a plan compiled with a fused "
                     "stage-group entry point");
  if (!checkButterflyShape(P, Err) || !checkStageGroup(G, NPoints, Err))
    return false;
  if (Aux.size() != P.AuxWords.size())
    return fail(Err, "runStageGroup: aux shape mismatch");
  if (Batch == 0 || NPoints < 2)
    return true;
  auto Fn = reinterpret_cast<VecFusedFnTy>(P.VecFusedFn);
  Fn(P.Key.Opts.VectorWidth, Batch, NPoints, G.Len0, G.Depth, G.Dst, G.Src,
     Tw, G.Gather, G.Twist, G.Scale, G.ScaleStride, Aux.data());
  return true;
}
