//===- runtime/Backend.cpp - Execution backends ---------------------------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "runtime/Backend.h"

#include "support/Format.h"

#include <cstdint>
#include <limits>

using namespace moma;
using namespace moma::runtime;

namespace {

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

/// The JIT-compiled grid ABI (codegen/GridEmitter.h).
using GridFnTy = void (*)(std::uint64_t, std::uint64_t, std::uint64_t,
                          std::uint64_t, std::uint64_t *const *,
                          const std::uint64_t *const *,
                          const std::uint64_t *,
                          const std::uint64_t *const *);
using StageFnTy = void (*)(std::uint64_t, std::uint64_t, std::uint64_t,
                           std::uint64_t, std::uint64_t, std::uint64_t *,
                           const std::uint64_t *,
                           const std::uint64_t *const *);

bool checkButterflyShape(const CompiledPlan &P, std::string *Err) {
  if (P.NumOutputs != 2 || P.NumDataInputs != 3)
    return fail(Err, "runStage: plan is not a butterfly kernel");
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// SerialBackend
//===----------------------------------------------------------------------===//

bool SerialBackend::runBatch(const CompiledPlan &P, const BatchArgs &Args,
                             size_t N, size_t Rows, std::string *Err) const {
  if (P.Key.Opts.Backend != rewrite::ExecBackend::Serial)
    return fail(Err, formatv("serial backend cannot run a %s plan",
                             rewrite::execBackendName(P.Key.Opts.Backend)));
  // Row-major batch rows are contiguous, so the serial element loop is the
  // flat product; broadcast (stride 0) inputs broadcast across every row
  // exactly as the grid's e = by*n + i indexing does.
  return moma::runtime::runBatch(P, Args, N * Rows, Err);
}

bool SerialBackend::runStage(const CompiledPlan &P, std::uint64_t *Data,
                             const std::uint64_t *StageTw,
                             const std::vector<const std::uint64_t *> &Aux,
                             size_t NPoints, size_t Len, size_t Batch,
                             std::string *Err) const {
  if (P.Key.Opts.Backend != rewrite::ExecBackend::Serial)
    return fail(Err, formatv("serial backend cannot run a %s plan",
                             rewrite::execBackendName(P.Key.Opts.Backend)));
  if (!checkButterflyShape(P, Err))
    return false;
  unsigned K = P.ElemWords;
  size_t NumPorts = P.numPorts();
  if (Aux.size() != P.AuxWords.size() || NumPorts > 8)
    return fail(Err, "runStage: aux/port shape mismatch");

  // Port frame reused across every butterfly: xo yo | x y w | q aux...
  void *Ports[8];
  for (size_t I = 0; I < Aux.size(); ++I)
    Ports[5 + I] = const_cast<std::uint64_t *>(Aux[I]);
  for (size_t B = 0; B < Batch; ++B) {
    std::uint64_t *Poly = Data + B * NPoints * K;
    for (size_t I0 = 0; I0 < NPoints; I0 += 2 * Len) {
      for (size_t J = 0; J < Len; ++J) {
        std::uint64_t *X = Poly + (I0 + J) * K;
        std::uint64_t *Y = X + Len * K;
        Ports[0] = X;
        Ports[1] = Y;
        Ports[2] = X;
        Ports[3] = Y;
        Ports[4] = const_cast<std::uint64_t *>(StageTw + J * K);
        if (!callPlan(P, Ports))
          return fail(Err, formatv("runStage: unsupported butterfly arity "
                                   "%zu",
                                   NumPorts));
      }
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// SimGpuBackend
//===----------------------------------------------------------------------===//

SimGpuBackend::SimGpuBackend(const sim::DeviceProfile &Profile)
    : Dev(Profile) {}

bool SimGpuBackend::validGeometry(const CompiledPlan &P,
                                  std::string *Err) const {
  unsigned BD = P.Key.Opts.BlockDim;
  if (BD == 0 || BD > Dev.profile().MaxThreadsPerBlock)
    return fail(Err,
                formatv("sim-GPU launch: block dimension %u outside "
                        "[1, %u] on %s",
                        BD, Dev.profile().MaxThreadsPerBlock,
                        Dev.profile().Name.c_str()));
  return true;
}

bool SimGpuBackend::runBatch(const CompiledPlan &P, const BatchArgs &Args,
                             size_t N, size_t Rows, std::string *Err) const {
  if (P.Key.Opts.Backend != rewrite::ExecBackend::SimGpu || !P.GridFn)
    return fail(Err, "sim-GPU backend needs a plan compiled with a grid "
                     "entry point");
  if (!validGeometry(P, Err))
    return false;
  if (Args.Outs.size() != P.NumOutputs ||
      Args.Ins.size() != P.NumDataInputs ||
      Args.Aux.size() != P.AuxWords.size() ||
      (!Args.InStrides.empty() && Args.InStrides.size() != Args.Ins.size()))
    return fail(Err, "sim-GPU runBatch: argument shape mismatch");
  if (N == 0 || Rows == 0)
    return true;

  std::vector<std::uint64_t> Strides(Args.Ins.size(), P.ElemWords);
  for (size_t I = 0; I < Args.InStrides.size(); ++I)
    Strides[I] = Args.InStrides[I];

  unsigned BD = P.Key.Opts.BlockDim;
  std::uint64_t GridX = (N + BD - 1) / BD;
  if (GridX > std::numeric_limits<std::uint32_t>::max() ||
      Rows > std::numeric_limits<std::uint32_t>::max())
    return fail(Err, "sim-GPU runBatch: grid too large");

  sim::LaunchConfig Cfg;
  Cfg.GridX = static_cast<std::uint32_t>(GridX);
  Cfg.GridY = static_cast<std::uint32_t>(Rows);
  Cfg.BlockDim = BD;
  auto Fn = reinterpret_cast<GridFnTy>(P.GridFn);
  Dev.launchBlocks(Cfg, [&](std::uint32_t BX, std::uint32_t BY) {
    Fn(BX, BY, BD, N, Args.Outs.data(), Args.Ins.data(), Strides.data(),
       Args.Aux.data());
  });
  return true;
}

bool SimGpuBackend::runStage(const CompiledPlan &P, std::uint64_t *Data,
                             const std::uint64_t *StageTw,
                             const std::vector<const std::uint64_t *> &Aux,
                             size_t NPoints, size_t Len, size_t Batch,
                             std::string *Err) const {
  if (P.Key.Opts.Backend != rewrite::ExecBackend::SimGpu || !P.StageFn)
    return fail(Err, "sim-GPU backend needs a plan compiled with a stage "
                     "entry point");
  if (!checkButterflyShape(P, Err) || !validGeometry(P, Err))
    return false;
  if (Aux.size() != P.AuxWords.size())
    return fail(Err, "runStage: aux shape mismatch");
  if (Batch == 0 || NPoints < 2)
    return true;

  unsigned BD = P.Key.Opts.BlockDim;
  std::uint64_t Butterflies = NPoints / 2;
  std::uint64_t GridX = (Butterflies + BD - 1) / BD;
  if (GridX > std::numeric_limits<std::uint32_t>::max() ||
      Batch > std::numeric_limits<std::uint32_t>::max())
    return fail(Err, "sim-GPU runStage: grid too large");

  sim::LaunchConfig Cfg;
  Cfg.GridX = static_cast<std::uint32_t>(GridX);
  Cfg.GridY = static_cast<std::uint32_t>(Batch); // paper 5.1 batch dim
  Cfg.BlockDim = BD;
  auto Fn = reinterpret_cast<StageFnTy>(P.StageFn);
  Dev.launchBlocks(Cfg, [&](std::uint32_t BX, std::uint32_t BY) {
    Fn(BX, BY, BD, NPoints, Len, Data, StageTw, Aux.data());
  });
  return true;
}
