//===- runtime/Dispatcher.cpp - Batched kernel dispatch -------------------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "runtime/Dispatcher.h"

#include "field/RootOfUnity.h"
#include "runtime/Backend.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace moma;
using namespace moma::runtime;
using mw::Bignum;

std::vector<std::uint64_t>
moma::runtime::packBatch(const std::vector<Bignum> &Elems,
                         unsigned ElemWords) {
  std::vector<std::uint64_t> Out;
  Out.reserve(Elems.size() * ElemWords);
  for (const Bignum &E : Elems) {
    auto W = packWordsMsbFirst(E, ElemWords);
    Out.insert(Out.end(), W.begin(), W.end());
  }
  return Out;
}

std::vector<Bignum>
moma::runtime::unpackBatch(const std::vector<std::uint64_t> &Words,
                           unsigned ElemWords) {
  assert(Words.size() % ElemWords == 0 && "ragged batch");
  std::vector<Bignum> Out;
  Out.reserve(Words.size() / ElemWords);
  for (size_t I = 0; I < Words.size(); I += ElemWords)
    Out.push_back(unpackWordsMsbFirst(Words.data() + I, ElemWords));
  return Out;
}

namespace {

/// Evicts least-recently-used entries until \p M holds at most \p Cap,
/// bumping \p Evictions per erased entry. Entries carry a LastUse stamp
/// (directly or via .LastUse of a wrapper member).
template <typename Map, typename StampOf>
void evictOver(Map &M, size_t Cap, std::uint64_t &Evictions,
               StampOf Stamp) {
  while (M.size() > Cap) {
    auto Victim = M.begin();
    for (auto It = M.begin(); It != M.end(); ++It)
      if (Stamp(It->second) < Stamp(Victim->second))
        Victim = It;
    M.erase(Victim);
    ++Evictions;
  }
}

} // namespace

const char *moma::runtime::dispatchErrorCodeName(DispatchErrorCode C) {
  switch (C) {
  case DispatchErrorCode::Ok:
    return "ok";
  case DispatchErrorCode::InvalidArgument:
    return "invalid-argument";
  case DispatchErrorCode::PlanUnavailable:
    return "plan-unavailable";
  case DispatchErrorCode::BackendFailed:
    return "backend-failed";
  }
  return "unknown";
}

Dispatcher::Dispatcher(KernelRegistry &Reg, Autotuner *Tuner,
                       rewrite::PlanOptions Base)
    : Reg(Reg), Tuner(Tuner), Base(Base) {}

Dispatcher::Scratch &Dispatcher::acquireScratch() {
  std::lock_guard<std::mutex> L(ScratchMu);
  for (auto &S : ScratchPool)
    if (!S->InUse) {
      S->InUse = true;
      return *S;
    }
  ScratchPool.push_back(std::make_unique<Scratch>());
  ScratchPool.back()->InUse = true;
  return *ScratchPool.back();
}

void Dispatcher::releaseScratch(Scratch &S) {
  std::lock_guard<std::mutex> L(ScratchMu);
  S.InUse = false;
}

Dispatcher::CacheCounters Dispatcher::cacheCounters() const {
  CacheCounters C = Evictions;
  C.BoundEntries = Bound.size();
  C.TableEntries = NttCtx.size();
  return C;
}

void Dispatcher::setCacheCaps(size_t MaxBoundPlans, size_t MaxNttTables) {
  MaxBound = std::max<size_t>(1, MaxBoundPlans);
  MaxTables = std::max<size_t>(1, MaxNttTables);
  evictOver(Bound, MaxBound, Evictions.BoundEvictions,
            [](const BoundPlan &B) { return B.LastUse; });
  evictOver(NttCtx, MaxTables, Evictions.TableEvictions,
            [](const TablesEntry &T) { return T.LastUse; });
}

Dispatcher::BoundPlan *Dispatcher::bind(KernelOp Op, const Bignum &Q,
                                        size_t SizeHint) {
  rewrite::PlanOptions Opts = Base;
  if (Tuner) {
    if (!Q.isOdd())
      return fail("Dispatcher: modulus must be odd",
                  DispatchErrorCode::InvalidArgument),
             nullptr;
    const TuneDecision *D = Tuner->choose(Op, Q, Base, SizeHint);
    if (!D) {
      // First ladder rung: a tuner that cannot time candidates (injected
      // fault, compiler trouble) degrades the request to the base plan
      // instead of failing it — bindPlan below still has the interpreter
      // rung if even the base variant cannot compile.
      DC.TunerFallbacks.fetch_add(1, std::memory_order_relaxed);
      Opts = Base;
    } else {
      Opts = D->Opts;
    }
  }
  return bindPlan(Op, Q, Opts);
}

Dispatcher::BoundPlan *Dispatcher::bindPlan(KernelOp Op, const Bignum &Q,
                                            const rewrite::PlanOptions
                                                &Opts,
                                            unsigned WideWords) {
  // The documented contract: odd moduli only (Montgomery candidates need
  // -q^-1 mod 2^lambda; every NTT-friendly prime is odd anyway). Checked
  // here so all entry points fail with error() instead of aborting inside
  // the constant computation.
  if (!Q.isOdd())
    return fail("Dispatcher: modulus must be odd",
                DispatchErrorCode::InvalidArgument),
           nullptr;
  PlanKey Key = PlanKey::forRns(Op, Q, WideWords, Opts);
  // The binding cache is keyed by the full canonical variant string, so
  // differently-tuned variants of one problem (e.g. serial for small
  // batches, sim-GPU for large) coexist without rebinding churn; folded
  // knobs never split entries because str() is canonical.
  std::string CacheKey = Key.str() + "#" + Q.toHex();
  auto It = Bound.find(CacheKey);
  if (It != Bound.end()) {
    It->second.LastUse = ++UseTick;
    if (It->second.Degraded) {
      // Every dispatch through a degraded binding polls the registry for
      // a promotion: tryPromote is non-blocking (a compiled plan if one
      // landed, else it enqueues a background probe), so the steady-state
      // cost of staying degraded is one cache lookup per dispatch and the
      // binding snaps back to JIT code the moment a probe succeeds.
      if (std::shared_ptr<const CompiledPlan> P =
              Reg.tryPromote(It->second.JitKey)) {
        BoundPlan &BP = It->second;
        BP.Plan = std::move(P);
        BP.Aux = makePlanAux(*BP.Plan, Q);
        BP.AuxPtrs = BP.Aux.ptrs();
        BP.Degraded = false;
        DC.Promotions.fetch_add(1, std::memory_order_relaxed);
      } else {
        DC.FallbackDispatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
    LastOpts = It->second.Plan->Key.Opts;
    return &It->second;
  }
  std::shared_ptr<const CompiledPlan> Plan = Reg.get(Key);
  bool Degraded = false;
  if (!Plan && Opts.Backend != rewrite::ExecBackend::Interp) {
    // Terminal ladder rung: the requested variant cannot be built (the
    // registry already spent its retry budget), so serve the same kernel
    // through the interpreter backend — zero compilation, bit-identical
    // results — and remember the key we really wanted for promotion.
    std::string JitError = Reg.error();
    rewrite::PlanOptions FOpts = Opts;
    FOpts.Backend = rewrite::ExecBackend::Interp;
    FOpts.BlockDim = 0;
    FOpts.VectorWidth = 0;
    PlanKey FKey = PlanKey::forRns(Op, Q, WideWords, FOpts);
    Plan = Reg.get(FKey);
    if (!Plan)
      return fail("Dispatcher: " + JitError +
                      "; interp fallback also failed: " + Reg.error(),
                  DispatchErrorCode::PlanUnavailable),
             nullptr;
    Degraded = true;
    DC.FallbackBinds.fetch_add(1, std::memory_order_relaxed);
    DC.FallbackDispatches.fetch_add(1, std::memory_order_relaxed);
  }
  if (!Plan)
    return fail("Dispatcher: " + Reg.error(),
                DispatchErrorCode::PlanUnavailable),
           nullptr;
  BoundPlan BP;
  BP.Plan = std::move(Plan);
  BP.Aux = makePlanAux(*BP.Plan, Q);
  BP.AuxPtrs = BP.Aux.ptrs();
  BP.LastUse = ++UseTick;
  BP.Degraded = Degraded;
  BP.JitKey = Key;
  LastOpts = BP.Plan->Key.Opts;
  auto Ins = Bound.insert_or_assign(CacheKey, std::move(BP));
  // The freshest stamp is the entry just inserted, so LRU eviction never
  // invalidates the pointer handed back here.
  evictOver(Bound, MaxBound, Evictions.BoundEvictions,
            [](const BoundPlan &B) { return B.LastUse; });
  return &Ins.first->second;
}

bool Dispatcher::runElementwise(KernelOp Op, const Bignum &Q,
                                const std::uint64_t *A,
                                const std::uint64_t *B, std::uint64_t *C,
                                size_t N) {
  clearError();
  BoundPlan *BP = bind(Op, Q, N);
  if (!BP)
    return false;
  BatchArgs Args;
  Args.Outs = {C};
  Args.Ins = {A, B};
  Args.Aux = BP->AuxPtrs;
  ++DStats.Batches;
  return Reg.backendFor(BP->Plan->Key)
      .runBatch(*BP->Plan, Args, N, /*Rows=*/1, &LastError);
}

bool Dispatcher::vadd(const Bignum &Q, const std::uint64_t *A,
                      const std::uint64_t *B, std::uint64_t *C, size_t N) {
  return runElementwise(KernelOp::AddMod, Q, A, B, C, N);
}

bool Dispatcher::vsub(const Bignum &Q, const std::uint64_t *A,
                      const std::uint64_t *B, std::uint64_t *C, size_t N) {
  return runElementwise(KernelOp::SubMod, Q, A, B, C, N);
}

bool Dispatcher::vmul(const Bignum &Q, const std::uint64_t *A,
                      const std::uint64_t *B, std::uint64_t *C, size_t N) {
  return runElementwise(KernelOp::MulMod, Q, A, B, C, N);
}

bool Dispatcher::axpy(const Bignum &Q, const std::uint64_t *AScalar,
                      const std::uint64_t *X, std::uint64_t *Y, size_t N) {
  clearError();
  BoundPlan *BP = bind(KernelOp::Axpy, Q, N);
  if (!BP)
    return false;
  BatchArgs Args;
  Args.Outs = {Y}; // yo aliases y: inputs load before the store
  Args.Ins = {AScalar, X, Y};
  Args.InStrides = {0, BP->Plan->ElemWords, BP->Plan->ElemWords};
  Args.Aux = BP->AuxPtrs;
  ++DStats.Batches;
  return Reg.backendFor(BP->Plan->Key)
      .runBatch(*BP->Plan, Args, N, /*Rows=*/1, &LastError);
}

bool Dispatcher::butterfly(const Bignum &Q, std::uint64_t *X,
                           std::uint64_t *Y, const std::uint64_t *W,
                           size_t N) {
  clearError();
  BoundPlan *BP = bind(KernelOp::Butterfly, Q, N);
  if (!BP)
    return false;
  // The butterfly kernel reads its twiddle in the plan's reduction
  // domain; this entry point takes plain values, so Montgomery plans get
  // a converted scratch copy (the batched NTT path never pays this — its
  // tables are precomputed in-domain).
  const std::uint64_t *WPtr = W;
  ScratchLease SL(*this);
  if (BP->Plan->Key.Opts.Red == mw::Reduction::Montgomery) {
    unsigned K = BP->Plan->ElemWords;
    unsigned Lambda = BP->Plan->Key.ContainerBits;
    if (SL->Tw.size() < N * K)
      SL->Tw.resize(N * K);
    for (size_t I = 0; I < N; ++I) {
      Bignum Wi = unpackWordsMsbFirst(W + I * K, K);
      auto WM = packWordsMsbFirst((Wi << Lambda) % Q, K);
      std::copy(WM.begin(), WM.end(), SL->Tw.begin() + I * K);
    }
    WPtr = SL->Tw.data();
  }
  BatchArgs Args;
  Args.Outs = {X, Y}; // in place: kernels load inputs before storing
  Args.Ins = {X, Y, WPtr};
  Args.Aux = BP->AuxPtrs;
  ++DStats.Batches;
  return Reg.backendFor(BP->Plan->Key)
      .runBatch(*BP->Plan, Args, N, /*Rows=*/1, &LastError);
}

const NttTables *Dispatcher::tables(const Bignum &Q, size_t NPoints,
                                    mw::Reduction Domain,
                                    rewrite::NttRing Ring) {
  std::string Key = Q.toHex() + ":" + std::to_string(NPoints) + ":" +
                    mw::reductionName(Domain) + ":" +
                    rewrite::nttRingName(Ring);
  auto It = NttCtx.find(Key);
  if (It != NttCtx.end()) {
    It->second.LastUse = ++UseTick;
    return &It->second.T;
  }
  TablesEntry E;
  std::string Err;
  if (!buildNttTables(Q, NPoints, Domain, E.T, &Err, Ring))
    return fail("Dispatcher: " + Err, DispatchErrorCode::InvalidArgument),
           nullptr;
  E.LastUse = ++UseTick;
  auto Ins = NttCtx.emplace(std::move(Key), std::move(E));
  evictOver(NttCtx, MaxTables, Evictions.TableEvictions,
            [](const TablesEntry &T) { return T.LastUse; });
  return &Ins.first->second.T;
}

bool Dispatcher::transform(const Bignum &Q, std::uint64_t *Data,
                           size_t NPoints, size_t Batch, bool Inverse,
                           rewrite::NttRing Ring) {
  // Shape checks up front so the autotuner never times a malformed
  // transform and every entry point fails with error() set.
  if (NPoints < 2 || (NPoints & (NPoints - 1)) != 0)
    return fail("Dispatcher: NTT size must be a power of two >= 2",
                DispatchErrorCode::InvalidArgument);
  unsigned LogN = 0;
  while ((size_t(1) << LogN) < NPoints)
    ++LogN;
  unsigned NeedAdicity =
      LogN + (Ring == rewrite::NttRing::Negacyclic ? 1 : 0);
  if (field::twoAdicity(Q) < NeedAdicity)
    return fail(formatv("Dispatcher: modulus 2-adicity %u < %u required "
                        "for a %s %zu-point transform",
                        field::twoAdicity(Q), NeedAdicity,
                        rewrite::nttRingName(Ring), NPoints),
                DispatchErrorCode::InvalidArgument);

  // The transform-shaped tuning decision (backend x geometry x reduction
  // x FuseDepth, per size bucket and ring): the tuner times real fused
  // stage-group walks — with the ψ edge folds in place for negacyclic
  // requests — so the winning depth is measured, not guessed. The
  // entry-point ring overrides whatever the base plan carries.
  rewrite::PlanOptions BaseR = Base;
  BaseR.Ring = Ring;
  rewrite::PlanOptions Opts = BaseR;
  if (Tuner) {
    if (!Q.isOdd())
      return fail("Dispatcher: modulus must be odd",
                  DispatchErrorCode::InvalidArgument);
    const TuneDecision *D = Tuner->chooseNtt(Q, BaseR, NPoints, Batch);
    if (!D) {
      // Same first-rung degradation as bind(): an unusable tuner costs
      // the tuned variant, never the transform.
      DC.TunerFallbacks.fetch_add(1, std::memory_order_relaxed);
      Opts = BaseR;
    } else {
      Opts = D->Opts;
      Opts.Ring = Ring; // the ring is semantic, never a tuning outcome
    }
  }
  BoundPlan *BP = bindPlan(KernelOp::Butterfly, Q, Opts);
  if (!BP)
    return false;
  const CompiledPlan &P = *BP->Plan;
  // Twiddles live in the plan's reduction domain (Montgomery-form tables
  // for Montgomery plans: the butterfly is a single REDC, with no
  // per-stage domain conversions); one table set serves forward and
  // inverse.
  const NttTables *T = tables(Q, NPoints, P.Key.Opts.Red, Ring);
  if (!T)
    return false;

  ScratchLease SL(*this);
  std::uint64_t *PingPong = nullptr;
  if (planStageGroups(T->LogN, P.Key.Opts.FuseDepth).size() > 1) {
    size_t Need = NPoints * Batch * P.ElemWords;
    if (SL->Ntt.size() < Need)
      SL->Ntt.resize(Need); // grow-only: steady state allocates nothing
    PingPong = SL->Ntt.data();
  }
  ExecutionBackend &EB = Reg.backendFor(P.Key);
  if (!runTransform(EB, P, *T, BP->AuxPtrs, Data, PingPong, NPoints, Batch,
                    Inverse, &LastError, &DStats.StageGroups))
    return false;
  ++DStats.Transforms;
  return true;
}

bool Dispatcher::nttForward(const Bignum &Q, std::uint64_t *Data,
                            size_t NPoints, size_t Batch,
                            rewrite::NttRing Ring) {
  clearError();
  return transform(Q, Data, NPoints, Batch, /*Inverse=*/false, Ring);
}

bool Dispatcher::nttInverse(const Bignum &Q, std::uint64_t *Data,
                            size_t NPoints, size_t Batch,
                            rewrite::NttRing Ring) {
  clearError();
  return transform(Q, Data, NPoints, Batch, /*Inverse=*/true, Ring);
}

bool Dispatcher::polyMul(const Bignum &Q, const std::uint64_t *A,
                         const std::uint64_t *B, std::uint64_t *C,
                         size_t NPoints, size_t Batch,
                         rewrite::NttRing Ring) {
  clearError();
  unsigned K = elemWords(Q);
  size_t Total = NPoints * Batch * K;
  // A's transform runs directly in the output buffer (dead until the
  // point-wise product); only B needs a scratch copy — into a leased
  // pool buffer, so steady-state batched polyMul does zero heap
  // allocation and the nested NTT/vmul calls (which lease their own
  // entries) can never alias it. The ring rides the transforms' edge
  // folds, so a negacyclic product issues exactly the cyclic dispatch
  // sequence.
  if (C != A)
    std::copy(A, A + Total, C);
  ScratchLease SL(*this);
  if (SL->Poly.size() < Total)
    SL->Poly.resize(Total);
  std::copy(B, B + Total, SL->Poly.begin());
  if (!nttForward(Q, C, NPoints, Batch, Ring) ||
      !nttForward(Q, SL->Poly.data(), NPoints, Batch, Ring))
    return false;
  if (!vmul(Q, C, SL->Poly.data(), C, NPoints * Batch))
    return false;
  return nttInverse(Q, C, NPoints, Batch, Ring);
}

//===----------------------------------------------------------------------===//
// RNS multi-modulus serving
//===----------------------------------------------------------------------===//

bool Dispatcher::rnsDecompose(const RnsContext &Ctx, const std::uint64_t *A,
                              std::uint64_t *Residues, size_t N) {
  clearError();
  unsigned WW = Ctx.wideWords();
  // One generalized-Barrett dispatch per limb: the wide batch is read
  // with stride wideWords, the limb's residue column written densely.
  // Every limb shares the compiled rnsdec module (same widths, modulus
  // value excluded from the key) — only the (q, gmu) broadcast tail
  // differs per binding.
  for (size_t L = 0; L < Ctx.numLimbs(); ++L) {
    BoundPlan *BP = bindPlan(KernelOp::RnsDecompose, Ctx.limb(L), Base, WW);
    if (!BP)
      return false;
    BatchArgs Args;
    Args.Outs = {Residues + L * N};
    Args.Ins = {A};
    Args.InStrides = {WW};
    Args.Aux = BP->AuxPtrs;
    ++DStats.Batches;
    if (!Reg.backendFor(BP->Plan->Key)
             .runBatch(*BP->Plan, Args, N, /*Rows=*/1, &LastError))
      return false;
  }
  return true;
}

bool Dispatcher::rnsRecombine(const RnsContext &Ctx,
                              const std::uint64_t *Residues,
                              std::uint64_t *C, size_t N) {
  clearError();
  unsigned WW = Ctx.wideWords();
  // CRT reconstruction as L axpy-shaped dispatches over a zeroed
  // accumulator: yo = (W_l * r_l + y) mod M, the weight broadcast with
  // stride 0 and the accumulator aliasing the output (inputs load before
  // the store). One compiled rnsrec plan serves every limb — and every
  // base of the same wide shape.
  std::fill(C, C + size_t(WW) * N, 0);
  BoundPlan *BP = bindPlan(KernelOp::RnsRecombineStep, Ctx.modulus(), Base);
  if (!BP)
    return false;
  for (size_t L = 0; L < Ctx.numLimbs(); ++L) {
    BatchArgs Args;
    Args.Outs = {C};
    Args.Ins = {Ctx.weightWords(L).data(), Residues + L * N, C};
    Args.InStrides = {0, 1, WW};
    Args.Aux = BP->AuxPtrs;
    ++DStats.Batches;
    if (!Reg.backendFor(BP->Plan->Key)
             .runBatch(*BP->Plan, Args, N, /*Rows=*/1, &LastError))
      return false;
  }
  return true;
}

bool Dispatcher::rnsElementwise(KernelOp Op, const RnsContext &Ctx,
                                const std::uint64_t *A,
                                const std::uint64_t *B, std::uint64_t *C,
                                size_t N) {
  // The flat one-shot surface is a thin wrapper over the residue-form
  // handle API: borrow pooled scratch as two tensors (zero steady-state
  // allocation, exactly the old member-scratch discipline), decompose,
  // run the tensor op in place over the A residues, recombine. Same
  // kernels, same per-limb dispatch sequence, bit-identical results —
  // the compatibility contract the 500+ pre-tensor tests pin.
  size_t Total = Ctx.numLimbs() * N;
  ScratchLease SL(*this);
  if (SL->RnsA.size() < Total)
    SL->RnsA.resize(Total); // grow-only: steady-state RNS traffic
  if (SL->RnsB.size() < Total)
    SL->RnsB.resize(Total); // allocates nothing
  RnsTensor TA = RnsTensor::borrow(Ctx, SL->RnsA.data(), N, 1);
  RnsTensor TB = RnsTensor::borrow(Ctx, SL->RnsB.data(), N, 1);
  if (!fromWide(A, TA) || !fromWide(B, TB))
    return false;
  bool Ok = Op == KernelOp::AddMod   ? rnsVAdd(TA, TB, TA)
            : Op == KernelOp::SubMod ? rnsVSub(TA, TB, TA)
                                     : rnsVMul(TA, TB, TA);
  if (!Ok)
    return false;
  return toWide(TA, C);
}

bool Dispatcher::rnsVAdd(const RnsContext &Ctx, const std::uint64_t *A,
                         const std::uint64_t *B, std::uint64_t *C,
                         size_t N) {
  clearError();
  return rnsElementwise(KernelOp::AddMod, Ctx, A, B, C, N);
}

bool Dispatcher::rnsVMul(const RnsContext &Ctx, const std::uint64_t *A,
                         const std::uint64_t *B, std::uint64_t *C,
                         size_t N) {
  clearError();
  return rnsElementwise(KernelOp::MulMod, Ctx, A, B, C, N);
}

bool Dispatcher::rnsPolyMul(const RnsContext &Ctx, const std::uint64_t *A,
                            const std::uint64_t *B, std::uint64_t *C,
                            size_t NPoints, size_t Batch,
                            rewrite::NttRing Ring) {
  clearError();
  // Thin wrapper over the tensor API (see rnsElementwise): decompose
  // both sides into borrowed scratch tensors, run the lazy product, and
  // immediately demand coefficient form back — toWide pays the deferred
  // inverse transforms. The dispatch sequence is exactly the historical
  // one (per limb: two forward NTTs, one pointwise multiply, one inverse
  // NTT, plus the decompose/recombine edges), just reordered across
  // limbs; the exact-count probes in the RNS tests stay pinned.
  size_t N = NPoints * Batch;
  size_t Total = Ctx.numLimbs() * N;
  ScratchLease SL(*this);
  if (SL->RnsA.size() < Total)
    SL->RnsA.resize(Total);
  if (SL->RnsB.size() < Total)
    SL->RnsB.resize(Total);
  RnsTensor TA =
      RnsTensor::borrow(Ctx, SL->RnsA.data(), NPoints, Batch, Ring);
  RnsTensor TB =
      RnsTensor::borrow(Ctx, SL->RnsB.data(), NPoints, Batch, Ring);
  if (!fromWide(A, TA) || !fromWide(B, TB))
    return false;
  if (!rnsPolyMul(TA, TB, TA))
    return false;
  return toWide(TA, C);
}

//===----------------------------------------------------------------------===//
// Residue-form handles: the lazy RNS surface
//===----------------------------------------------------------------------===//

bool Dispatcher::checkTensors(const char *Op, const RnsTensor &A,
                              const RnsTensor &B, const RnsTensor &C) {
  if (!A.valid() || !B.valid() || !C.valid())
    return fail(std::string("Dispatcher: ") + Op + " on an empty tensor",
                DispatchErrorCode::InvalidArgument);
  if (!A.congruent(B) || !A.congruent(C))
    return fail(std::string("Dispatcher: ") + Op +
                    " operands not congruent (same context identity, "
                    "shape, and ring required)",
                DispatchErrorCode::InvalidArgument);
  return true;
}

bool Dispatcher::fromWide(const std::uint64_t *A, RnsTensor &Out) {
  clearError();
  if (!Out.valid())
    return fail("Dispatcher: fromWide needs a shaped output tensor",
                DispatchErrorCode::InvalidArgument);
  if (!rnsDecompose(Out.context(), A, Out.data(), Out.count()))
    return false;
  Out.setDomain(RnsDomain::Coeff);
  return true;
}

bool Dispatcher::toWide(RnsTensor &T, std::uint64_t *C) {
  clearError();
  if (!T.valid())
    return fail("Dispatcher: toWide on an empty tensor",
                DispatchErrorCode::InvalidArgument);
  // Pay the deferred inverse transforms here — the single exit toll of a
  // lazy product chain.
  if (!rnsNttInverse(T))
    return false;
  return rnsRecombine(T.context(), T.data(), C, T.count());
}

bool Dispatcher::rnsNttForward(RnsTensor &T) {
  clearError();
  if (!T.valid())
    return fail("Dispatcher: rnsNttForward on an empty tensor",
                DispatchErrorCode::InvalidArgument);
  if (T.domain() == RnsDomain::Ntt)
    return true;
  const RnsContext &Ctx = T.context();
  for (size_t L = 0; L < Ctx.numLimbs(); ++L)
    if (!transform(Ctx.limb(L), T.limbData(L), T.nPoints(), T.batch(),
                   /*Inverse=*/false, T.ring()))
      return false;
  T.setDomain(RnsDomain::Ntt);
  return true;
}

bool Dispatcher::rnsNttInverse(RnsTensor &T) {
  clearError();
  if (!T.valid())
    return fail("Dispatcher: rnsNttInverse on an empty tensor",
                DispatchErrorCode::InvalidArgument);
  if (T.domain() == RnsDomain::Coeff)
    return true;
  const RnsContext &Ctx = T.context();
  for (size_t L = 0; L < Ctx.numLimbs(); ++L)
    if (!transform(Ctx.limb(L), T.limbData(L), T.nPoints(), T.batch(),
                   /*Inverse=*/true, T.ring()))
      return false;
  T.setDomain(RnsDomain::Coeff);
  return true;
}

bool Dispatcher::rnsVAdd(RnsTensor &A, RnsTensor &B, RnsTensor &C) {
  clearError();
  if (!checkTensors("rnsVAdd", A, B, C))
    return false;
  // Addition is linear in both domains; only a mixed pair needs a move,
  // and it moves TOWARD Ntt so an add between lazy products keeps the
  // chain lazy (the Coeff operand is usually fresh input, paying its
  // forward transform now or at the next product either way).
  if (A.domain() != B.domain() &&
      (!rnsNttForward(A) || !rnsNttForward(B)))
    return false;
  const RnsContext &Ctx = A.context();
  for (size_t L = 0; L < Ctx.numLimbs(); ++L)
    if (!runElementwise(KernelOp::AddMod, Ctx.limb(L), A.limbData(L),
                        B.limbData(L), C.limbData(L), A.count()))
      return false;
  C.setDomain(A.domain());
  return true;
}

bool Dispatcher::rnsVSub(RnsTensor &A, RnsTensor &B, RnsTensor &C) {
  clearError();
  if (!checkTensors("rnsVSub", A, B, C))
    return false;
  if (A.domain() != B.domain() &&
      (!rnsNttForward(A) || !rnsNttForward(B)))
    return false;
  const RnsContext &Ctx = A.context();
  for (size_t L = 0; L < Ctx.numLimbs(); ++L)
    if (!runElementwise(KernelOp::SubMod, Ctx.limb(L), A.limbData(L),
                        B.limbData(L), C.limbData(L), A.count()))
      return false;
  C.setDomain(A.domain());
  return true;
}

bool Dispatcher::rnsVMul(RnsTensor &A, RnsTensor &B, RnsTensor &C) {
  clearError();
  if (!checkTensors("rnsVMul", A, B, C))
    return false;
  // Element-wise product of wide VALUES: meaningful on coefficients
  // only (a pointwise product in Ntt form is a polynomial product), so
  // both operands come back to Coeff first.
  if (!rnsNttInverse(A) || !rnsNttInverse(B))
    return false;
  const RnsContext &Ctx = A.context();
  for (size_t L = 0; L < Ctx.numLimbs(); ++L)
    if (!runElementwise(KernelOp::MulMod, Ctx.limb(L), A.limbData(L),
                        B.limbData(L), C.limbData(L), A.count()))
      return false;
  C.setDomain(RnsDomain::Coeff);
  return true;
}

bool Dispatcher::rnsPolyMul(RnsTensor &A, RnsTensor &B, RnsTensor &C) {
  clearError();
  if (!checkTensors("rnsPolyMul", A, B, C))
    return false;
  // The lazy product: force both operands into Ntt form (free for the
  // output of an earlier product — THE saving this API exists for), one
  // pointwise multiply per limb, and leave C transformed. A == B
  // (squaring) transforms once; C may alias either operand because the
  // multiply is pointwise.
  if (!rnsNttForward(A) || !rnsNttForward(B))
    return false;
  const RnsContext &Ctx = A.context();
  for (size_t L = 0; L < Ctx.numLimbs(); ++L)
    if (!runElementwise(KernelOp::MulMod, Ctx.limb(L), A.limbData(L),
                        B.limbData(L), C.limbData(L), A.count()))
      return false;
  C.setDomain(RnsDomain::Ntt);
  return true;
}

bool Dispatcher::rnsRescale(RnsTensor &T) {
  clearError();
  if (!T.valid())
    return fail("Dispatcher: rnsRescale on an empty tensor",
                DispatchErrorCode::InvalidArgument);
  const RnsContext &Ctx = T.context();
  size_t L = Ctx.numLimbs();
  if (L < 2)
    return fail("Dispatcher: rnsRescale needs a chain of >= 2 limbs",
                DispatchErrorCode::InvalidArgument);
  // Residues of different limbs combine below, so they must be coherent
  // coefficients — pay any deferred inverse transforms first.
  if (!rnsNttInverse(T))
    return false;
  // Per surviving limb, one generated rnsresc dispatch computes
  // r'_l = (r_l - y)*q_last^{-1} mod q_l in place (reading the dropped
  // limb's row, writing limb l's row — disjoint rows, so in-place is
  // safe). The per-limb inverse is a host-side Bignum constant, exactly
  // like the CRT weights.
  const mw::Bignum &QLast = Ctx.limb(L - 1);
  const std::uint64_t *LastRow = T.limbData(L - 1);
  for (size_t I = 0; I + 1 < L; ++I) {
    const mw::Bignum &Q = Ctx.limb(I);
    BoundPlan *BP = bindPlan(KernelOp::RnsRescaleStep, Q, Base);
    if (!BP)
      return false;
    std::uint64_t Inv = (QLast % Q).invMod(Q).low64();
    BatchArgs Args;
    Args.Outs = {T.limbData(I)};
    Args.Ins = {&Inv, T.limbData(I), LastRow};
    Args.InStrides = {0, 1, 1};
    Args.Aux = BP->AuxPtrs;
    ++DStats.Batches;
    if (!Reg.backendFor(BP->Plan->Key)
             .runBatch(*BP->Plan, Args, T.count(), /*Rows=*/1, &LastError))
      return false;
  }
  T.rebindContext(Ctx.subChain(L - 1));
  return true;
}

bool Dispatcher::vmul(const Bignum &Q, const std::vector<Bignum> &A,
                      const std::vector<Bignum> &B,
                      std::vector<Bignum> &C) {
  if (A.size() != B.size())
    return fail("Dispatcher: vmul length mismatch",
                DispatchErrorCode::InvalidArgument);
  unsigned K = elemWords(Q);
  std::vector<std::uint64_t> AW = packBatch(A, K), BW = packBatch(B, K),
                             CW(A.size() * K);
  if (!vmul(Q, AW.data(), BW.data(), CW.data(), A.size()))
    return false;
  C = unpackBatch(CW, K);
  return true;
}

bool Dispatcher::polyMul(const Bignum &Q, const std::vector<Bignum> &A,
                         const std::vector<Bignum> &B,
                         std::vector<Bignum> &C, size_t NPoints,
                         rewrite::NttRing Ring) {
  if (A.size() > NPoints || B.size() > NPoints)
    return fail("Dispatcher: inputs longer than the transform size",
                DispatchErrorCode::InvalidArgument);
  unsigned K = elemWords(Q);
  std::vector<Bignum> APad = A, BPad = B;
  APad.resize(NPoints, Bignum(0));
  BPad.resize(NPoints, Bignum(0));
  std::vector<std::uint64_t> AW = packBatch(APad, K),
                             BW = packBatch(BPad, K), CW(NPoints * K);
  if (!polyMul(Q, AW.data(), BW.data(), CW.data(), NPoints, 1, Ring))
    return false;
  C = unpackBatch(CW, K);
  return true;
}
