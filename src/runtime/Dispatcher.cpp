//===- runtime/Dispatcher.cpp - Batched kernel dispatch -------------------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "runtime/Dispatcher.h"

#include "field/RootOfUnity.h"
#include "runtime/Backend.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace moma;
using namespace moma::runtime;
using mw::Bignum;

std::vector<std::uint64_t>
moma::runtime::packBatch(const std::vector<Bignum> &Elems,
                         unsigned ElemWords) {
  std::vector<std::uint64_t> Out;
  Out.reserve(Elems.size() * ElemWords);
  for (const Bignum &E : Elems) {
    auto W = packWordsMsbFirst(E, ElemWords);
    Out.insert(Out.end(), W.begin(), W.end());
  }
  return Out;
}

std::vector<Bignum>
moma::runtime::unpackBatch(const std::vector<std::uint64_t> &Words,
                           unsigned ElemWords) {
  assert(Words.size() % ElemWords == 0 && "ragged batch");
  std::vector<Bignum> Out;
  Out.reserve(Words.size() / ElemWords);
  for (size_t I = 0; I < Words.size(); I += ElemWords)
    Out.push_back(unpackWordsMsbFirst(Words.data() + I, ElemWords));
  return Out;
}

Dispatcher::Dispatcher(KernelRegistry &Reg, Autotuner *Tuner,
                       rewrite::PlanOptions Base)
    : Reg(Reg), Tuner(Tuner), Base(Base) {}

Dispatcher::BoundPlan *Dispatcher::bind(KernelOp Op, const Bignum &Q,
                                        size_t SizeHint) {
  // The documented contract: odd moduli only (Montgomery candidates need
  // -q^-1 mod 2^lambda; every NTT-friendly prime is odd anyway). Checked
  // here so all entry points fail with error() instead of aborting inside
  // the constant computation.
  if (!Q.isOdd())
    return fail("Dispatcher: modulus must be odd"), nullptr;
  rewrite::PlanOptions Opts = Base;
  if (Tuner) {
    const TuneDecision *D = Tuner->choose(Op, Q, Base, SizeHint);
    if (!D)
      return fail("Dispatcher: " + Tuner->error()), nullptr;
    Opts = D->Opts;
  }
  PlanKey Key = PlanKey::forModulus(Op, Q, Opts);
  // The binding cache is keyed by the full canonical variant string, so
  // differently-tuned variants of one problem (e.g. serial for small
  // batches, sim-GPU for large) coexist without rebinding churn; folded
  // knobs never split entries because str() is canonical.
  std::string CacheKey = Key.str() + "#" + Q.toHex();
  auto It = Bound.find(CacheKey);
  if (It != Bound.end()) {
    LastOpts = It->second.Plan->Key.Opts;
    return &It->second;
  }
  std::shared_ptr<const CompiledPlan> Plan = Reg.get(Key);
  if (!Plan)
    return fail("Dispatcher: " + Reg.error()), nullptr;
  BoundPlan BP;
  BP.Plan = std::move(Plan);
  BP.Aux = makePlanAux(*BP.Plan, Q);
  BP.AuxPtrs = BP.Aux.ptrs();
  LastOpts = BP.Plan->Key.Opts;
  auto Ins = Bound.insert_or_assign(CacheKey, std::move(BP));
  return &Ins.first->second;
}

bool Dispatcher::runElementwise(KernelOp Op, const Bignum &Q,
                                const std::uint64_t *A,
                                const std::uint64_t *B, std::uint64_t *C,
                                size_t N) {
  LastError.clear();
  BoundPlan *BP = bind(Op, Q, N);
  if (!BP)
    return false;
  BatchArgs Args;
  Args.Outs = {C};
  Args.Ins = {A, B};
  Args.Aux = BP->AuxPtrs;
  return Reg.backendFor(BP->Plan->Key)
      .runBatch(*BP->Plan, Args, N, /*Rows=*/1, &LastError);
}

bool Dispatcher::vadd(const Bignum &Q, const std::uint64_t *A,
                      const std::uint64_t *B, std::uint64_t *C, size_t N) {
  return runElementwise(KernelOp::AddMod, Q, A, B, C, N);
}

bool Dispatcher::vsub(const Bignum &Q, const std::uint64_t *A,
                      const std::uint64_t *B, std::uint64_t *C, size_t N) {
  return runElementwise(KernelOp::SubMod, Q, A, B, C, N);
}

bool Dispatcher::vmul(const Bignum &Q, const std::uint64_t *A,
                      const std::uint64_t *B, std::uint64_t *C, size_t N) {
  return runElementwise(KernelOp::MulMod, Q, A, B, C, N);
}

bool Dispatcher::axpy(const Bignum &Q, const std::uint64_t *AScalar,
                      const std::uint64_t *X, std::uint64_t *Y, size_t N) {
  LastError.clear();
  BoundPlan *BP = bind(KernelOp::Axpy, Q, N);
  if (!BP)
    return false;
  BatchArgs Args;
  Args.Outs = {Y}; // yo aliases y: inputs load before the store
  Args.Ins = {AScalar, X, Y};
  Args.InStrides = {0, BP->Plan->ElemWords, BP->Plan->ElemWords};
  Args.Aux = BP->AuxPtrs;
  return Reg.backendFor(BP->Plan->Key)
      .runBatch(*BP->Plan, Args, N, /*Rows=*/1, &LastError);
}

bool Dispatcher::butterfly(const Bignum &Q, std::uint64_t *X,
                           std::uint64_t *Y, const std::uint64_t *W,
                           size_t N) {
  LastError.clear();
  BoundPlan *BP = bind(KernelOp::Butterfly, Q, N);
  if (!BP)
    return false;
  BatchArgs Args;
  Args.Outs = {X, Y}; // in place: kernels load inputs before storing
  Args.Ins = {X, Y, W};
  Args.Aux = BP->AuxPtrs;
  return Reg.backendFor(BP->Plan->Key)
      .runBatch(*BP->Plan, Args, N, /*Rows=*/1, &LastError);
}

Dispatcher::NttTables *Dispatcher::tables(const Bignum &Q, size_t NPoints) {
  std::string Key = Q.toHex() + ":" + std::to_string(NPoints);
  auto It = NttCtx.find(Key);
  if (It != NttCtx.end())
    return &It->second;

  unsigned LogN = 0;
  while ((size_t(1) << LogN) < NPoints)
    ++LogN;
  if (NPoints < 2 || (NPoints & (NPoints - 1)) != 0)
    return fail("Dispatcher: NTT size must be a power of two >= 2"), nullptr;
  if (field::twoAdicity(Q) < LogN)
    return fail(formatv("Dispatcher: modulus 2-adicity %u < log2(n) = %u",
                        field::twoAdicity(Q), LogN)),
           nullptr;

  unsigned K = elemWords(Q);
  NttTables T;
  T.BitRev.resize(NPoints);
  for (size_t I = 0; I < NPoints; ++I) {
    size_t R = 0;
    for (unsigned B = 0; B < LogN; ++B)
      R |= ((I >> B) & 1) << (LogN - 1 - B);
    T.BitRev[I] = static_cast<std::uint32_t>(R);
  }

  // Stage-major twiddle tables matching ntt::NttPlan: stage len uses
  // w_{2len}^j at offset (len - 1) + j.
  Bignum Root = field::rootOfUnity(Q, NPoints);
  Bignum RootInv = Root.invMod(Q);
  T.Tw.resize((NPoints - 1) * K);
  T.InvTw.resize((NPoints - 1) * K);
  for (size_t Len = 1; Len < NPoints; Len <<= 1) {
    Bignum WLen = Root.powMod(Bignum(NPoints / (2 * Len)), Q);
    Bignum WLenInv = RootInv.powMod(Bignum(NPoints / (2 * Len)), Q);
    Bignum Cur(1), CurInv(1);
    for (size_t J = 0; J < Len; ++J) {
      auto CW = packWordsMsbFirst(Cur, K);
      auto CIW = packWordsMsbFirst(CurInv, K);
      std::copy(CW.begin(), CW.end(), T.Tw.begin() + (Len - 1 + J) * K);
      std::copy(CIW.begin(), CIW.end(),
                T.InvTw.begin() + (Len - 1 + J) * K);
      Cur = Cur.mulMod(WLen, Q);
      CurInv = CurInv.mulMod(WLenInv, Q);
    }
  }
  T.NInv = packWordsMsbFirst(Bignum(NPoints).invMod(Q), K);
  auto Ins = NttCtx.emplace(std::move(Key), std::move(T));
  return &Ins.first->second;
}

bool Dispatcher::transform(const Bignum &Q, std::uint64_t *Data,
                           size_t NPoints, size_t Batch, bool Inverse) {
  NttTables *T = tables(Q, NPoints);
  if (!T)
    return false;
  // Size hint: butterflies per stage launch across the whole batch (what
  // one backend dispatch actually executes).
  BoundPlan *BP = bind(KernelOp::Butterfly, Q, (NPoints / 2) * Batch);
  if (!BP)
    return false;
  const CompiledPlan &P = *BP->Plan;
  unsigned K = P.ElemWords;
  const std::vector<std::uint64_t> &Tw = Inverse ? T->InvTw : T->Tw;

  for (size_t B = 0; B < Batch; ++B) {
    std::uint64_t *Poly = Data + B * NPoints * K;
    for (size_t I = 0; I < NPoints; ++I) {
      size_t R = T->BitRev[I];
      if (I < R)
        std::swap_ranges(Poly + I * K, Poly + (I + 1) * K, Poly + R * K);
    }
  }

  // One backend dispatch per stage: the serial backend walks the
  // butterflies on the calling thread; the sim-GPU backend launches one
  // virtual thread per butterfly with grid y = batch index (paper 5.1).
  ExecutionBackend &EB = Reg.backendFor(P.Key);
  for (size_t Len = 1; Len < NPoints; Len <<= 1) {
    const std::uint64_t *Stage = Tw.data() + (Len - 1) * K;
    if (!EB.runStage(P, Data, Stage, BP->AuxPtrs, NPoints, Len, Batch,
                     &LastError))
      return false;
  }

  if (Inverse) {
    // Scale by n^-1 through the vmul plan with a broadcast operand.
    BoundPlan *MP = bind(KernelOp::MulMod, Q, NPoints * Batch);
    if (!MP)
      return false;
    BatchArgs Args;
    Args.Outs = {Data};
    Args.Ins = {Data, T->NInv.data()};
    Args.InStrides = {K, 0};
    Args.Aux = MP->AuxPtrs;
    return Reg.backendFor(MP->Plan->Key)
        .runBatch(*MP->Plan, Args, NPoints * Batch, /*Rows=*/1, &LastError);
  }
  return true;
}

bool Dispatcher::nttForward(const Bignum &Q, std::uint64_t *Data,
                            size_t NPoints, size_t Batch) {
  LastError.clear();
  return transform(Q, Data, NPoints, Batch, /*Inverse=*/false);
}

bool Dispatcher::nttInverse(const Bignum &Q, std::uint64_t *Data,
                            size_t NPoints, size_t Batch) {
  LastError.clear();
  return transform(Q, Data, NPoints, Batch, /*Inverse=*/true);
}

bool Dispatcher::polyMul(const Bignum &Q, const std::uint64_t *A,
                         const std::uint64_t *B, std::uint64_t *C,
                         size_t NPoints, size_t Batch) {
  LastError.clear();
  unsigned K = elemWords(Q);
  size_t Total = NPoints * Batch * K;
  // A's transform runs directly in the output buffer (dead until the
  // point-wise product); only B needs a scratch copy.
  if (C != A)
    std::copy(A, A + Total, C);
  std::vector<std::uint64_t> TB(B, B + Total);
  if (!nttForward(Q, C, NPoints, Batch) ||
      !nttForward(Q, TB.data(), NPoints, Batch))
    return false;
  if (!vmul(Q, C, TB.data(), C, NPoints * Batch))
    return false;
  return nttInverse(Q, C, NPoints, Batch);
}

bool Dispatcher::vmul(const Bignum &Q, const std::vector<Bignum> &A,
                      const std::vector<Bignum> &B,
                      std::vector<Bignum> &C) {
  if (A.size() != B.size())
    return fail("Dispatcher: vmul length mismatch");
  unsigned K = elemWords(Q);
  std::vector<std::uint64_t> AW = packBatch(A, K), BW = packBatch(B, K),
                             CW(A.size() * K);
  if (!vmul(Q, AW.data(), BW.data(), CW.data(), A.size()))
    return false;
  C = unpackBatch(CW, K);
  return true;
}

bool Dispatcher::polyMul(const Bignum &Q, const std::vector<Bignum> &A,
                         const std::vector<Bignum> &B,
                         std::vector<Bignum> &C, size_t NPoints) {
  if (A.size() > NPoints || B.size() > NPoints)
    return fail("Dispatcher: inputs longer than the transform size");
  unsigned K = elemWords(Q);
  std::vector<Bignum> APad = A, BPad = B;
  APad.resize(NPoints, Bignum(0));
  BPad.resize(NPoints, Bignum(0));
  std::vector<std::uint64_t> AW = packBatch(APad, K),
                             BW = packBatch(BPad, K), CW(NPoints * K);
  if (!polyMul(Q, AW.data(), BW.data(), CW.data(), NPoints, 1))
    return false;
  C = unpackBatch(CW, K);
  return true;
}
