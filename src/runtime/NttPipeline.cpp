//===- runtime/NttPipeline.cpp - Fused NTT execution pipeline -------------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "runtime/NttPipeline.h"

#include "field/RootOfUnity.h"
#include "runtime/PlanKey.h"
#include "support/Format.h"

#include <algorithm>

using namespace moma;
using namespace moma::runtime;
using mw::Bignum;

namespace {

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

} // namespace

bool moma::runtime::buildNttTables(const Bignum &Q, size_t NPoints,
                                   mw::Reduction Domain, NttTables &Out,
                                   std::string *Err) {
  if (NPoints < 2 || (NPoints & (NPoints - 1)) != 0)
    return fail(Err, "NTT size must be a power of two >= 2");
  unsigned LogN = 0;
  while ((size_t(1) << LogN) < NPoints)
    ++LogN;
  if (field::twoAdicity(Q) < LogN)
    return fail(Err, formatv("modulus 2-adicity %u < log2(n) = %u",
                             field::twoAdicity(Q), LogN));

  unsigned K = (Q.bitWidth() + 63) / 64;
  Out.LogN = LogN;
  Out.ElemWords = K;
  Out.Domain = Domain;

  Out.BitRev.resize(NPoints);
  for (size_t I = 0; I < NPoints; ++I) {
    size_t R = 0;
    for (unsigned B = 0; B < LogN; ++B)
      R |= ((I >> B) & 1) << (LogN - 1 - B);
    Out.BitRev[I] = static_cast<std::uint32_t>(R);
  }

  // Montgomery plans take their twiddles pre-converted (w * 2^lambda mod
  // q, lambda the canonical container width), turning the butterfly's
  // modular product into a single REDC; Barrett plans use plain values.
  unsigned Lambda = PlanKey::canonicalContainerBits(Q.bitWidth(), 64);
  auto ToDomain = [&](const Bignum &V) {
    return Domain == mw::Reduction::Montgomery ? (V << Lambda) % Q : V;
  };

  Bignum Root = field::rootOfUnity(Q, NPoints);
  Bignum RootInv = Root.invMod(Q);
  Out.Tw.resize((NPoints - 1) * K);
  Out.InvTw.resize((NPoints - 1) * K);
  for (size_t Len = 1; Len < NPoints; Len <<= 1) {
    Bignum WLen = Root.powMod(Bignum(NPoints / (2 * Len)), Q);
    Bignum WLenInv = RootInv.powMod(Bignum(NPoints / (2 * Len)), Q);
    Bignum Cur(1), CurInv(1);
    for (size_t J = 0; J < Len; ++J) {
      auto CW = packWordsMsbFirst(ToDomain(Cur), K);
      auto CIW = packWordsMsbFirst(ToDomain(CurInv), K);
      std::copy(CW.begin(), CW.end(), Out.Tw.begin() + (Len - 1 + J) * K);
      std::copy(CIW.begin(), CIW.end(),
                Out.InvTw.begin() + (Len - 1 + J) * K);
      Cur = Cur.mulMod(WLen, Q);
      CurInv = CurInv.mulMod(WLenInv, Q);
    }
  }
  Out.NInv = packWordsMsbFirst(ToDomain(Bignum(NPoints).invMod(Q)), K);
  return true;
}

std::vector<StageGroupPlan>
moma::runtime::planStageGroups(unsigned LogN, unsigned FuseDepth) {
  unsigned Depth = std::max(
      1u, std::min(FuseDepth, rewrite::PlanOptions::MaxFuseDepth));
  std::vector<StageGroupPlan> Out;
  for (unsigned Done = 0; Done < LogN;) {
    unsigned D = std::min(Depth, LogN - Done);
    Out.push_back({size_t(1) << Done, D});
    Done += D;
  }
  return Out;
}

bool moma::runtime::runTransform(
    ExecutionBackend &EB, const CompiledPlan &P, const NttTables &T,
    const std::vector<const std::uint64_t *> &Aux, std::uint64_t *Data,
    std::uint64_t *Scratch, size_t NPoints, size_t Batch, bool Inverse,
    std::string *Err, std::uint64_t *Dispatches) {
  std::vector<StageGroupPlan> Groups =
      planStageGroups(T.LogN, P.Key.Opts.FuseDepth);
  size_t G = Groups.size();
  if (G > 1 && !Scratch)
    return fail(Err, "runTransform: multi-group schedule needs a scratch "
                     "buffer");
  const std::uint64_t *Tw = Inverse ? T.InvTw.data() : T.Tw.data();

  // Edge groups ping-pong through the scratch so (a) the bit-reversal
  // gather never races an in-place write across virtual threads and
  // (b) the result lands back in Data with zero extra data passes:
  // Data -> Scratch (gathered), in-place on Scratch, Scratch -> Data
  // (scaled when inverse). A single-group transform owns whole rows per
  // thread (loads complete before stores) and runs in place.
  for (size_t I = 0; I < G; ++I) {
    bool First = I == 0, Last = I + 1 == G;
    StageGroup SG;
    SG.Len0 = Groups[I].Len0;
    SG.Depth = Groups[I].Depth;
    SG.Gather = First ? T.BitRev.data() : nullptr;
    SG.Scale = Last && Inverse ? T.NInv.data() : nullptr;
    if (G == 1) {
      SG.Src = Data;
      SG.Dst = Data;
    } else if (First) {
      SG.Src = Data;
      SG.Dst = Scratch;
    } else if (Last) {
      SG.Src = Scratch;
      SG.Dst = Data;
    } else {
      SG.Src = Scratch;
      SG.Dst = Scratch;
    }
    if (!EB.runStageGroup(P, SG, Tw, Aux, NPoints, Batch, Err))
      return false;
    if (Dispatches)
      ++*Dispatches;
  }
  return true;
}
