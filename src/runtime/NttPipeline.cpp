//===- runtime/NttPipeline.cpp - Fused NTT execution pipeline -------------===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//

#include "runtime/NttPipeline.h"

#include "field/RootOfUnity.h"
#include "runtime/PlanKey.h"
#include "support/Format.h"

#include <algorithm>

using namespace moma;
using namespace moma::runtime;
using mw::Bignum;

namespace {

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

} // namespace

bool moma::runtime::buildNttTables(const Bignum &Q, size_t NPoints,
                                   mw::Reduction Domain, NttTables &Out,
                                   std::string *Err,
                                   rewrite::NttRing Ring) {
  if (NPoints < 2 || (NPoints & (NPoints - 1)) != 0)
    return fail(Err, "NTT size must be a power of two >= 2");
  unsigned LogN = 0;
  while ((size_t(1) << LogN) < NPoints)
    ++LogN;
  bool Neg = Ring == rewrite::NttRing::Negacyclic;
  // The negacyclic twist needs a primitive 2n-th root: one extra factor
  // of two in q - 1.
  unsigned NeedAdicity = LogN + (Neg ? 1 : 0);
  if (field::twoAdicity(Q) < NeedAdicity)
    return fail(Err,
                formatv("modulus 2-adicity %u < %u required for a %s "
                        "%zu-point transform",
                        field::twoAdicity(Q), NeedAdicity,
                        rewrite::nttRingName(Ring), NPoints));

  unsigned K = (Q.bitWidth() + 63) / 64;
  Out.LogN = LogN;
  Out.ElemWords = K;
  Out.Domain = Domain;
  Out.Ring = Ring;

  Out.BitRev.resize(NPoints);
  for (size_t I = 0; I < NPoints; ++I) {
    size_t R = 0;
    for (unsigned B = 0; B < LogN; ++B)
      R |= ((I >> B) & 1) << (LogN - 1 - B);
    Out.BitRev[I] = static_cast<std::uint32_t>(R);
  }

  // Montgomery plans take their twiddles pre-converted (w * 2^lambda mod
  // q, lambda the canonical container width), turning the butterfly's
  // modular product into a single REDC; Barrett plans use plain values.
  unsigned Lambda = PlanKey::canonicalContainerBits(Q.bitWidth(), 64);
  auto ToDomain = [&](const Bignum &V) {
    return Domain == mw::Reduction::Montgomery ? (V << Lambda) % Q : V;
  };

  Bignum Root = field::rootOfUnity(Q, NPoints);
  Bignum RootInv = Root.invMod(Q);
  Out.Tw.resize((NPoints - 1) * K);
  Out.InvTw.resize((NPoints - 1) * K);
  for (size_t Len = 1; Len < NPoints; Len <<= 1) {
    Bignum WLen = Root.powMod(Bignum(NPoints / (2 * Len)), Q);
    Bignum WLenInv = RootInv.powMod(Bignum(NPoints / (2 * Len)), Q);
    Bignum Cur(1), CurInv(1);
    for (size_t J = 0; J < Len; ++J) {
      auto CW = packWordsMsbFirst(ToDomain(Cur), K);
      auto CIW = packWordsMsbFirst(ToDomain(CurInv), K);
      std::copy(CW.begin(), CW.end(), Out.Tw.begin() + (Len - 1 + J) * K);
      std::copy(CIW.begin(), CIW.end(),
                Out.InvTw.begin() + (Len - 1 + J) * K);
      Cur = Cur.mulMod(WLen, Q);
      CurInv = CurInv.mulMod(WLenInv, Q);
    }
  }
  Bignum NInv = Bignum(NPoints).invMod(Q);
  Out.NInv = packWordsMsbFirst(ToDomain(NInv), K);

  Out.Twist.clear();
  Out.Untwist.clear();
  if (Neg) {
    // ψ = the primitive 2n-th root with ψ² = ω (rootOfUnityPow2 derives
    // every power-of-two root from one fixed generator per modulus, so
    // the relation holds by construction — and the tables are
    // bit-compatible with ntt::NegacyclicPlan, which uses the same
    // derivation). Twist[i] = ψ^i rides the first forward group's loads;
    // Untwist[i] = ψ^{-i} · n^-1 rides the last inverse group's stores
    // with the inverse scaling already folded in.
    Bignum Psi = field::rootOfUnityPow2(Q, LogN + 1);
    Bignum PsiInv = Psi.invMod(Q);
    Out.Twist.resize(NPoints * K);
    Out.Untwist.resize(NPoints * K);
    Bignum Cur(1), CurInv = NInv;
    for (size_t I = 0; I < NPoints; ++I) {
      auto TW = packWordsMsbFirst(ToDomain(Cur), K);
      auto UW = packWordsMsbFirst(ToDomain(CurInv), K);
      std::copy(TW.begin(), TW.end(), Out.Twist.begin() + I * K);
      std::copy(UW.begin(), UW.end(), Out.Untwist.begin() + I * K);
      Cur = Cur.mulMod(Psi, Q);
      CurInv = CurInv.mulMod(PsiInv, Q);
    }
  }
  return true;
}

std::vector<StageGroupPlan>
moma::runtime::planStageGroups(unsigned LogN, unsigned FuseDepth) {
  unsigned Depth = std::max(
      1u, std::min(FuseDepth, rewrite::PlanOptions::MaxFuseDepth));
  std::vector<StageGroupPlan> Out;
  for (unsigned Done = 0; Done < LogN;) {
    unsigned D = std::min(Depth, LogN - Done);
    Out.push_back({size_t(1) << Done, D});
    Done += D;
  }
  return Out;
}

bool moma::runtime::runTransform(
    ExecutionBackend &EB, const CompiledPlan &P, const NttTables &T,
    const std::vector<const std::uint64_t *> &Aux, std::uint64_t *Data,
    std::uint64_t *Scratch, size_t NPoints, size_t Batch, bool Inverse,
    std::string *Err, std::uint64_t *Dispatches) {
  std::vector<StageGroupPlan> Groups =
      planStageGroups(T.LogN, P.Key.Opts.FuseDepth);
  size_t G = Groups.size();
  if (G > 1 && !Scratch)
    return fail(Err, "runTransform: multi-group schedule needs a scratch "
                     "buffer");
  bool Neg = P.Key.Opts.Ring == rewrite::NttRing::Negacyclic;
  if (Neg && T.Ring != rewrite::NttRing::Negacyclic)
    return fail(Err, "runTransform: negacyclic plan needs tables built "
                     "with the negacyclic ψ edge-fold tables");
  const std::uint64_t *Tw = Inverse ? T.InvTw.data() : T.Tw.data();

  // Edge groups ping-pong through the scratch so (a) the bit-reversal
  // gather never races an in-place write across virtual threads and
  // (b) the result lands back in Data with zero extra data passes:
  // Data -> Scratch (gathered), in-place on Scratch, Scratch -> Data
  // (scaled when inverse). A single-group transform owns whole rows per
  // thread (loads complete before stores) and runs in place.
  for (size_t I = 0; I < G; ++I) {
    bool First = I == 0, Last = I + 1 == G;
    StageGroup SG;
    SG.Len0 = Groups[I].Len0;
    SG.Depth = Groups[I].Depth;
    SG.Gather = First ? T.BitRev.data() : nullptr;
    // Negacyclic edge folds: ψ^i on the first forward group's loads,
    // ψ^{-i}·n^-1 (per element, n^-1 already folded) on the last inverse
    // group's stores; the cyclic inverse keeps its broadcast n^-1. Same
    // dispatch count either way.
    SG.Twist = First && Neg && !Inverse ? T.Twist.data() : nullptr;
    if (Last && Inverse) {
      SG.Scale = Neg ? T.Untwist.data() : T.NInv.data();
      SG.ScaleStride = Neg ? T.ElemWords : 0;
    }
    if (G == 1) {
      SG.Src = Data;
      SG.Dst = Data;
    } else if (First) {
      SG.Src = Data;
      SG.Dst = Scratch;
    } else if (Last) {
      SG.Src = Scratch;
      SG.Dst = Data;
    } else {
      SG.Src = Scratch;
      SG.Dst = Scratch;
    }
    if (!EB.runStageGroup(P, SG, Tw, Aux, NPoints, Batch, Err))
      return false;
    if (Dispatches)
      ++*Dispatches;
  }
  return true;
}
