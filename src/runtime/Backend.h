//===- runtime/Backend.h - Execution backends ------------------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution layer of the runtime: a compiled plan is run through an
/// ExecutionBackend, of which there are four —
///
///  * SerialBackend: the original host-JIT model, one scalar call per
///    element (per butterfly for NTT stages) on the calling thread;
///  * SimGpuBackend: the paper's §5.1 grid/block mapping — the plan's
///    grid-shaped entry points (codegen/GridEmitter.h) launched block-wise
///    over a sim::Device thread pool, grid y indexing the batch;
///  * VectorBackend: the host CPU's SIMD units — the plan's lane-loop
///    entry points (codegen/VectorEmitter.h) called on the calling
///    thread, the batch axis mapped onto vector lanes (VectorWidth per
///    chunk) and compiled by the JIT at -O3 -march=native;
///  * InterpBackend: no machine code at all — every element call runs the
///    plan's scalar kernel through ir::Interp. It walks the exact same
///    element/stage/stage-group geometry as the serial backend (the
///    walkers are shared, parameterized on the per-call invoker), so its
///    results are bit-identical to every JIT backend; it exists as the
///    terminal rung of the degradation ladder when the host compiler is
///    unavailable (DESIGN.md "Failure model & the degradation ladder").
///
/// Which backend a plan runs on is part of its PlanKey
/// (PlanOptions::Backend + BlockDim/VectorWidth), so the autotuner can
/// sweep backend choice and launch geometry per problem exactly like the
/// reduction / pruning / scheduling knobs. Backends are stateless with
/// respect to plans: one backend instance serves every plan of its kind
/// (the sim-GPU backend owns the worker pool).
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_RUNTIME_BACKEND_H
#define MOMA_RUNTIME_BACKEND_H

#include "runtime/KernelRegistry.h"
#include "sim/Launch.h"

#include <string>
#include <vector>

namespace moma {
namespace runtime {

/// One fused NTT stage-group launch (the codegen/GridEmitter.h fused-ABI
/// contract): `Depth` consecutive butterfly stages starting at
/// half-distance `Len0`, each virtual thread transforming 2^Depth points
/// in registers. `Gather` (bit-reversal table, first group only) folds
/// the input permutation into the loads; `Twist` (per-element ψ powers,
/// first forward group of a negacyclic transform) folds the ring twist
/// into the same loads; `Scale` (last inverse group) folds the final
/// multiply into the stores — broadcast n^-1 when ScaleStride is 0, the
/// per-element negacyclic untwist ψ^{-e}·n^-1 when ScaleStride is
/// ElemWords. All multiply-fold tables live in the plan's twiddle
/// domain. Src == Dst is only safe when every thread's read set equals
/// its write set: any group without Gather, or a single-group transform
/// (Depth == log2(n), one thread per row).
struct StageGroup {
  size_t Len0 = 1;    ///< half-distance of the group's first stage
  unsigned Depth = 1; ///< fused stages, in [1, PlanOptions::MaxFuseDepth]
  const std::uint64_t *Src = nullptr;
  std::uint64_t *Dst = nullptr;
  const std::uint32_t *Gather = nullptr; ///< NPoints-entry bit-rev table
  const std::uint64_t *Twist = nullptr;  ///< NPoints x ElemWords ψ table
  const std::uint64_t *Scale = nullptr;  ///< scale factor(s), see above
  unsigned ScaleStride = 0; ///< 0 = broadcast, ElemWords = per element
};

/// Abstract execution substrate for compiled plans. Implementations are
/// not thread-safe with respect to one plan's buffers (callers own the
/// batch memory), but hold no per-call state of their own.
class ExecutionBackend {
public:
  virtual ~ExecutionBackend() = default;

  virtual rewrite::ExecBackend kind() const = 0;
  const char *name() const { return rewrite::execBackendName(kind()); }

  /// Batched element-wise execution of \p P over \p Rows batch rows of
  /// \p N elements each (total Rows * N elements; flat callers pass
  /// Rows = 1). Returns false on a shape/geometry mismatch with a message
  /// in \p Err when non-null.
  virtual bool runBatch(const CompiledPlan &P, const BatchArgs &Args,
                        size_t N, size_t Rows,
                        std::string *Err = nullptr) const = 0;

  /// One in-place NTT butterfly stage (half-distance \p Len) over
  /// \p Batch rows of \p NPoints elements in \p Data; \p StageTw points at
  /// the stage's twiddle table (Len entries of ElemWords words), \p Aux at
  /// the plan's broadcast tail. \p P must be a butterfly plan.
  virtual bool runStage(const CompiledPlan &P, std::uint64_t *Data,
                        const std::uint64_t *StageTw,
                        const std::vector<const std::uint64_t *> &Aux,
                        size_t NPoints, size_t Len, size_t Batch,
                        std::string *Err = nullptr) const = 0;

  /// One fused stage-group dispatch over \p Batch rows of \p NPoints
  /// elements (see StageGroup). \p Tw is the *full* stage-major twiddle
  /// table for the transform direction — each fused sub-stage of
  /// half-distance L indexes its slice at word offset (L-1)*ElemWords —
  /// and \p Aux the plan's broadcast tail. \p P must be a butterfly plan.
  virtual bool runStageGroup(const CompiledPlan &P, const StageGroup &G,
                             const std::uint64_t *Tw,
                             const std::vector<const std::uint64_t *> &Aux,
                             size_t NPoints, size_t Batch,
                             std::string *Err = nullptr) const = 0;
};

/// The original serial host-JIT execution: scalar calls on the calling
/// thread. Runs plans compiled for ExecBackend::Serial.
class SerialBackend final : public ExecutionBackend {
public:
  rewrite::ExecBackend kind() const override {
    return rewrite::ExecBackend::Serial;
  }
  bool runBatch(const CompiledPlan &P, const BatchArgs &Args, size_t N,
                size_t Rows, std::string *Err = nullptr) const override;
  bool runStage(const CompiledPlan &P, std::uint64_t *Data,
                const std::uint64_t *StageTw,
                const std::vector<const std::uint64_t *> &Aux,
                size_t NPoints, size_t Len, size_t Batch,
                std::string *Err = nullptr) const override;
  bool runStageGroup(const CompiledPlan &P, const StageGroup &G,
                     const std::uint64_t *Tw,
                     const std::vector<const std::uint64_t *> &Aux,
                     size_t NPoints, size_t Batch,
                     std::string *Err = nullptr) const override;
};

/// Grid-shaped execution on the sim-GPU substrate: launches the plan's
/// grid/stage entry points block-wise over a sim::Device pool, one block
/// per call (threads serialized inside the JIT-compiled block loop, as on
/// a time-sliced SM). Runs plans compiled for ExecBackend::SimGpu.
class SimGpuBackend final : public ExecutionBackend {
public:
  explicit SimGpuBackend(
      const sim::DeviceProfile &Profile = sim::deviceHostDefault());

  rewrite::ExecBackend kind() const override {
    return rewrite::ExecBackend::SimGpu;
  }
  const sim::Device &device() const { return Dev; }

  bool runBatch(const CompiledPlan &P, const BatchArgs &Args, size_t N,
                size_t Rows, std::string *Err = nullptr) const override;
  bool runStage(const CompiledPlan &P, std::uint64_t *Data,
                const std::uint64_t *StageTw,
                const std::vector<const std::uint64_t *> &Aux,
                size_t NPoints, size_t Len, size_t Batch,
                std::string *Err = nullptr) const override;
  bool runStageGroup(const CompiledPlan &P, const StageGroup &G,
                     const std::uint64_t *Tw,
                     const std::vector<const std::uint64_t *> &Aux,
                     size_t NPoints, size_t Batch,
                     std::string *Err = nullptr) const override;

private:
  /// Geometry check shared by both entry points: the plan's block dim
  /// must fit the device (at most MaxThreadsPerBlock = 1024, §5.1).
  bool validGeometry(const CompiledPlan &P, std::string *Err) const;

  sim::Device Dev;
};

/// SIMD lane-loop execution on the calling thread: the batch axis is
/// mapped onto vector lanes in chunks of the plan's VectorWidth through
/// the vectorized entry points (structure-of-arrays staging, carry chains
/// in-lane). Runs plans compiled for ExecBackend::Vector.
class VectorBackend final : public ExecutionBackend {
public:
  rewrite::ExecBackend kind() const override {
    return rewrite::ExecBackend::Vector;
  }
  bool runBatch(const CompiledPlan &P, const BatchArgs &Args, size_t N,
                size_t Rows, std::string *Err = nullptr) const override;
  bool runStage(const CompiledPlan &P, std::uint64_t *Data,
                const std::uint64_t *StageTw,
                const std::vector<const std::uint64_t *> &Aux,
                size_t NPoints, size_t Len, size_t Batch,
                std::string *Err = nullptr) const override;
  bool runStageGroup(const CompiledPlan &P, const StageGroup &G,
                     const std::uint64_t *Tw,
                     const std::vector<const std::uint64_t *> &Aux,
                     size_t NPoints, size_t Batch,
                     std::string *Err = nullptr) const override;
};

/// Interpreter execution on the calling thread: each element call unpacks
/// the port words into Bignums, runs the plan's scalar kernel through
/// ir::interpret, and packs the results back. Orders of magnitude slower
/// than any JIT backend but involves zero compilation, so it cannot fail
/// transiently — the Dispatcher binds it when every JIT rung of the
/// degradation ladder is exhausted. Runs plans compiled (trivially: no
/// code is generated) for ExecBackend::Interp.
class InterpBackend final : public ExecutionBackend {
public:
  rewrite::ExecBackend kind() const override {
    return rewrite::ExecBackend::Interp;
  }
  bool runBatch(const CompiledPlan &P, const BatchArgs &Args, size_t N,
                size_t Rows, std::string *Err = nullptr) const override;
  bool runStage(const CompiledPlan &P, std::uint64_t *Data,
                const std::uint64_t *StageTw,
                const std::vector<const std::uint64_t *> &Aux,
                size_t NPoints, size_t Len, size_t Batch,
                std::string *Err = nullptr) const override;
  bool runStageGroup(const CompiledPlan &P, const StageGroup &G,
                     const std::uint64_t *Tw,
                     const std::vector<const std::uint64_t *> &Aux,
                     size_t NPoints, size_t Batch,
                     std::string *Err = nullptr) const override;
};

} // namespace runtime
} // namespace moma

#endif // MOMA_RUNTIME_BACKEND_H
