//===- runtime/Dispatcher.h - Batched kernel dispatch ----------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer of the runtime: batched modular BLAS, butterfly, NTT
/// and polynomial-product requests executed through cached compiled plans
/// (KernelRegistry) with per-problem variants picked by the Autotuner.
/// Many elements — or many polynomials — per call is the point: the JIT
/// and tuning cost is paid once per (kernel, width) and amortized over
/// every later batch, the steady-state model the paper's
/// generated-kernel-per-configuration approach implies.
///
/// Every request routes through the plan's ExecutionBackend
/// (runtime/Backend.h): serial host-JIT scalar calls, or the grid-shaped
/// sim-GPU substrate (paper §5.1 thread mapping — NTT stages launch with
/// grid y = batch index, so large batches parallelize over the worker
/// pool). The backend and launch geometry are plan knobs: set them on the
/// base PlanOptions to pin a backend, or attach an Autotuner to pick the
/// winner per problem and batch-size class automatically.
///
/// Data convention: a batch is one flat array of N elements, each
/// elemWords(q) = ceil(bits(q)/64) machine words, most significant word
/// first (the emitted-kernel port convention). packBatch/unpackBatch
/// convert Bignum vectors. Polynomial batches concatenate coefficient
/// vectors: Batch x NPoints elements.
///
/// Every entry point returns false on failure with error() set; moduli
/// must be odd (Montgomery candidates) and NTT entry points additionally
/// need 2^log2(n) | q - 1, checked up front.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_RUNTIME_DISPATCHER_H
#define MOMA_RUNTIME_DISPATCHER_H

#include "runtime/Autotuner.h"
#include "runtime/KernelRegistry.h"
#include "runtime/NttPipeline.h"
#include "runtime/RnsContext.h"
#include "runtime/RnsTensor.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace moma {
namespace runtime {

/// Flattens \p Elems into a batch array of \p ElemWords words each.
std::vector<std::uint64_t> packBatch(const std::vector<mw::Bignum> &Elems,
                                     unsigned ElemWords);

/// Splits a batch array back into Bignum elements.
std::vector<mw::Bignum> unpackBatch(const std::vector<std::uint64_t> &Words,
                                    unsigned ElemWords);

/// Typed failure taxonomy set alongside the string error() — the
/// Dispatcher-side mirror of the serving layer's service::ErrorCode, so
/// the Server classifies dispatch failures by code instead of parsing
/// diagnostics.
enum class DispatchErrorCode : std::uint8_t {
  Ok = 0,
  InvalidArgument, ///< malformed request (shape/ring/modulus preconditions)
  PlanUnavailable, ///< no plan could be built or bound (JIT + fallback dead)
  BackendFailed,   ///< a bound plan's backend launch failed
};

/// Stable lower-case name ("ok", "invalid-argument", ...).
const char *dispatchErrorCodeName(DispatchErrorCode C);

/// Batched dispatch through the plan cache.
///
/// Reentrancy contract: the binding/table caches, dispatch counters, and
/// error() slot are unsynchronized — use one Dispatcher per thread (the
/// serving layer gives each worker its own; they share one thread-safe
/// KernelRegistry/Autotuner underneath, so plans and tuning decisions are
/// still paid for once). Scratch memory, by contrast, is leased from an
/// internal pool per entry-point call rather than owned by the instance:
/// nested entry points (rnsPolyMul driving polyMul driving the NTTs) and
/// even erroneous cross-thread use can never silently alias each other's
/// scratch and corrupt results — the historical failure mode of the old
/// member buffers. Steady state still allocates nothing: leases reuse
/// pooled grow-only buffers.
class Dispatcher {
public:
  /// \p Tuner may be null: every request then uses \p Base verbatim
  /// (the paper's default plan unless the caller overrides knobs).
  explicit Dispatcher(KernelRegistry &Reg, Autotuner *Tuner = nullptr,
                      rewrite::PlanOptions Base = rewrite::PlanOptions());

  /// Words per element for modulus \p Q.
  static unsigned elemWords(const mw::Bignum &Q) {
    return (Q.bitWidth() + 63) / 64;
  }

  // -- Batched element-wise BLAS (paper §5.2) ----------------------------
  // A, B, C hold N elements; C may alias A or B.

  bool vadd(const mw::Bignum &Q, const std::uint64_t *A,
            const std::uint64_t *B, std::uint64_t *C, size_t N);
  bool vsub(const mw::Bignum &Q, const std::uint64_t *A,
            const std::uint64_t *B, std::uint64_t *C, size_t N);
  bool vmul(const mw::Bignum &Q, const std::uint64_t *A,
            const std::uint64_t *B, std::uint64_t *C, size_t N);
  /// y[i] = (a * x[i] + y[i]) mod q with one broadcast scalar a.
  bool axpy(const mw::Bignum &Q, const std::uint64_t *AScalar,
            const std::uint64_t *X, std::uint64_t *Y, size_t N);

  // -- Batched NTT engine (paper §5.3) -----------------------------------

  /// One butterfly per element triple, in place: (x, y) <- (x + w*y,
  /// x - w*y) mod q. \p W holds plain-domain twiddles; when the bound
  /// plan uses Montgomery reduction they are converted (w * 2^lambda mod
  /// q, one host mulmod each) into a scratch copy per call — the NTT
  /// entry points avoid that cost entirely through their precomputed
  /// Montgomery-domain tables, so this convenience API stays
  /// domain-agnostic for callers.
  bool butterfly(const mw::Bignum &Q, std::uint64_t *X, std::uint64_t *Y,
                 const std::uint64_t *W, size_t N);

  /// In-place forward/inverse NTT over \p Batch contiguous \p NPoints
  /// transforms (inverse includes the 1/n scaling). Each transform walks
  /// its log2(n) stages in ceil(log2(n)/FuseDepth) fused stage-group
  /// dispatches (runtime/NttPipeline.h): the bit-reversal permutation is
  /// gathered by the first group's loads and the inverse n^-1 multiply
  /// folded into the last group's stores, so there is no host-side data
  /// pass and no separate scaling dispatch. \p Ring selects the cyclic
  /// transform (x^n - 1, the default) or the negacyclic twisted
  /// transform (x^n + 1, needs 2n | q - 1): the ψ twist rides the first
  /// forward group's loads and the ψ^{-1}·n^-1 untwist the last inverse
  /// group's stores, so the ring changes the dispatch count by exactly
  /// zero.
  bool nttForward(const mw::Bignum &Q, std::uint64_t *Data, size_t NPoints,
                  size_t Batch,
                  rewrite::NttRing Ring = rewrite::NttRing::Cyclic);
  bool nttInverse(const mw::Bignum &Q, std::uint64_t *Data, size_t NPoints,
                  size_t Batch,
                  rewrite::NttRing Ring = rewrite::NttRing::Cyclic);

  /// Batched polynomial product (Eq. 11/12): per batch entry, C = A * B
  /// mod (x^n - 1) over Z_q — or mod (x^n + 1) with Ring = Negacyclic,
  /// the FHE ciphertext ring, at the same dispatch count. A and B hold
  /// Batch x NPoints coefficients each (low degree first); C likewise.
  /// C may alias A (its transform runs in the output buffer) but must
  /// not alias B.
  bool polyMul(const mw::Bignum &Q, const std::uint64_t *A,
               const std::uint64_t *B, std::uint64_t *C, size_t NPoints,
               size_t Batch,
               rewrite::NttRing Ring = rewrite::NttRing::Cyclic);

  // -- RNS multi-modulus serving (runtime/RnsContext.h) ------------------
  // One logical batch of N wide elements (reduced modulo Ctx.modulus(),
  // wideWords() words each) fans out across the base's limbs through the
  // same plan cache as everything else. Because PlanKey excludes the
  // modulus value, every limb of the base executes through a single
  // compiled module per kernel — L limbs cost L dispatches, one compile.
  // The CRT edges are generated kernels too: decompose is one
  // generalized-Barrett dispatch per limb, recombine one axpy-shaped
  // accumulation dispatch per limb. The CRT kernels run on the base
  // plan's backend (their knob grid is folded, so they are not
  // autotuned); the per-limb BLAS/NTT work goes through the autotuner
  // exactly like single-modulus traffic.

  /// Wide batch -> limb-major residues (limb l at Residues + l*N, one
  /// word per element).
  bool rnsDecompose(const RnsContext &Ctx, const std::uint64_t *A,
                    std::uint64_t *Residues, size_t N);
  /// Limb-major residues -> wide batch (CRT reconstruction mod M).
  bool rnsRecombine(const RnsContext &Ctx, const std::uint64_t *Residues,
                    std::uint64_t *C, size_t N);
  /// C = (A + B) mod M / C = (A * B) mod M, element-wise over wide
  /// batches. C may alias A or B.
  bool rnsVAdd(const RnsContext &Ctx, const std::uint64_t *A,
               const std::uint64_t *B, std::uint64_t *C, size_t N);
  bool rnsVMul(const RnsContext &Ctx, const std::uint64_t *A,
               const std::uint64_t *B, std::uint64_t *C, size_t N);
  /// Batched polynomial product over Z_M[x]/(x^n -+ 1): decompose, one
  /// NTT polyMul per limb (negacyclic rides the same edge folds as the
  /// single-modulus path), recombine. A/B/C hold Batch x NPoints wide
  /// coefficients; C may alias A but not B. Limbs need 2-adicity
  /// log2(n) (+1 negacyclic) — Ctx.twoAdicity() bounds the sizes.
  bool rnsPolyMul(const RnsContext &Ctx, const std::uint64_t *A,
                  const std::uint64_t *B, std::uint64_t *C, size_t NPoints,
                  size_t Batch,
                  rewrite::NttRing Ring = rewrite::NttRing::Cyclic);

  // -- Residue-form handles (runtime/RnsTensor.h) ------------------------
  // The redesigned RNS surface: data stays resident in limb-major residue
  // form across calls, fromWide/toWide are the ONLY points that run the
  // CRT edge kernels, and the tensors' domain tags make laziness the
  // default — a chain of k rnsPolyMul calls pays (k+1)·L forward and L
  // inverse transforms instead of the flat path's 3k·L (pointwise
  // products compose in the transformed domain, so intermediates never
  // leave it). The flat-pointer methods above are thin wrappers over
  // fromWide -> tensor op -> toWide with bit-identical results and
  // dispatch counts. Binary ops require congruent operands (same context
  // identity, shape, ring); tensors are taken by non-const reference
  // because laziness mutates representation (never value): an operand
  // may come back forward-transformed with its tag updated.

  /// Wide batch (count() elements of Ctx.wideWords() words) -> residues.
  /// \p Out supplies context and shape; its domain resets to Coeff.
  bool fromWide(const std::uint64_t *A, RnsTensor &Out);
  /// Residues -> wide batch. Pays the deferred inverse NTTs first when
  /// \p T is in Ntt form (T comes back Coeff-tagged).
  bool toWide(RnsTensor &T, std::uint64_t *C);

  /// C = A + B element-wise in whatever common domain the operands share
  /// (addition is linear in both); mixed-domain operands are harmonized
  /// toward Ntt to keep product chains lazy. C must be congruent (it may
  /// be A or B).
  bool rnsVAdd(RnsTensor &A, RnsTensor &B, RnsTensor &C);
  /// C = A - B element-wise, same domain rules as rnsVAdd.
  bool rnsVSub(RnsTensor &A, RnsTensor &B, RnsTensor &C);
  /// C = A * B element-wise over wide VALUES: both operands are forced
  /// back to Coeff first (a pointwise product of Ntt-form residues would
  /// be a polynomial product, not an element-wise one).
  bool rnsVMul(RnsTensor &A, RnsTensor &B, RnsTensor &C);
  /// C = A * B in Z_M[x]/(x^n -+ 1), batched: operands are forced to Ntt
  /// (a no-op for already-transformed chains), one pointwise multiply per
  /// limb lands in C, and C STAYS Ntt — the inverse transform is
  /// deferred until toWide/rnsRescale/rnsNttInverse demands coefficient
  /// form. C may alias A or B.
  bool rnsPolyMul(RnsTensor &A, RnsTensor &B, RnsTensor &C);

  /// Explicit domain moves (no-ops when already there): one transform
  /// per limb.
  bool rnsNttForward(RnsTensor &T);
  bool rnsNttInverse(RnsTensor &T);

  /// Modulus switching: drops the chain's last limb in place, replacing
  /// T's value X by (X - (X mod q_last)) / q_last — exact integer
  /// division, one generated rnsresc dispatch per surviving limb, no CRT
  /// edge. T must live in a chain of >= 2 limbs; it is forced to Coeff
  /// (residues of different limbs must be coherent coefficients) and
  /// comes back tagged with context().subChain(numLimbs()-1).
  bool rnsRescale(RnsTensor &T);

  // -- Bignum conveniences (examples/tests) ------------------------------

  bool vmul(const mw::Bignum &Q, const std::vector<mw::Bignum> &A,
            const std::vector<mw::Bignum> &B, std::vector<mw::Bignum> &C);
  bool polyMul(const mw::Bignum &Q, const std::vector<mw::Bignum> &A,
               const std::vector<mw::Bignum> &B,
               std::vector<mw::Bignum> &C, size_t NPoints,
               rewrite::NttRing Ring = rewrite::NttRing::Cyclic);

  /// Diagnostics from the most recent failed call; empty after success.
  const std::string &error() const { return LastError; }

  /// Typed class of the most recent failure (Ok after success) — what
  /// the serving layer branches on. A backend that reported through the
  /// error string alone classifies as BackendFailed.
  DispatchErrorCode lastErrorCode() const {
    if (LastCode == DispatchErrorCode::Ok && !LastError.empty())
      return DispatchErrorCode::BackendFailed;
    return LastCode;
  }

  /// The plan variant the last successful call dispatched through
  /// (autotuned or base). Useful for logging and tests.
  const rewrite::PlanOptions &lastPlanOptions() const { return LastOpts; }

  KernelRegistry &registry() { return Reg; }

  /// Backend launches issued, by shape — the probe behind the fused
  /// pipeline's dispatch-count guarantees (a batched NTT is exactly
  /// ceil(log2(n)/FuseDepth) StageGroups per transform, with no separate
  /// bit-reversal or inverse-scaling dispatch).
  struct DispatchStats {
    std::uint64_t StageGroups = 0; ///< fused NTT stage-group launches
    std::uint64_t Batches = 0;     ///< element-wise batch launches
    std::uint64_t Transforms = 0;  ///< forward/inverse NTTs executed
  };
  const DispatchStats &dispatchStats() const { return DStats; }

  /// The binding and twiddle-table caches are bounded: beyond the caps
  /// the least-recently-used entry is evicted (a dispatcher serving an
  /// unbounded stream of distinct moduli/sizes stays at steady memory).
  /// Counters let tests and monitoring observe occupancy and churn.
  struct CacheCounters {
    size_t BoundEntries = 0;
    std::uint64_t BoundEvictions = 0;
    size_t TableEntries = 0;
    std::uint64_t TableEvictions = 0;
  };
  CacheCounters cacheCounters() const;
  /// Adjusts the cache caps (both default to generous production sizes;
  /// at least one entry each is always kept).
  void setCacheCaps(size_t MaxBoundPlans, size_t MaxNttTables);

  /// The degradation ladder's observable state. When a requested plan
  /// cannot be built (JIT compiler gone, injected fault past the
  /// registry's retry budget), bindPlan falls back to the interpreter
  /// backend — same kernel IR, zero compilation — instead of failing the
  /// request, and every later dispatch through the degraded binding polls
  /// KernelRegistry::tryPromote so the binding snaps back to compiled
  /// code the moment a background probe succeeds. Counters are atomics:
  /// the serving layer reads them across threads for health reporting
  /// while workers dispatch.
  struct DegradeCounters {
    std::uint64_t FallbackBinds = 0;      ///< bindings created degraded
    std::uint64_t FallbackDispatches = 0; ///< dispatches through them
    std::uint64_t Promotions = 0;         ///< degraded -> JIT rebinds
    std::uint64_t TunerFallbacks = 0;     ///< tuner failure -> base plan
  };
  DegradeCounters degradeCounters() const {
    DegradeCounters C;
    C.FallbackBinds = DC.FallbackBinds.load(std::memory_order_relaxed);
    C.FallbackDispatches =
        DC.FallbackDispatches.load(std::memory_order_relaxed);
    C.Promotions = DC.Promotions.load(std::memory_order_relaxed);
    C.TunerFallbacks = DC.TunerFallbacks.load(std::memory_order_relaxed);
    return C;
  }

private:
  /// A compiled plan bound to one modulus value: broadcast tail packed.
  /// A degraded binding runs the interpreter fallback but remembers the
  /// key it really wanted (JitKey) so cache hits can promote back.
  struct BoundPlan {
    std::shared_ptr<const CompiledPlan> Plan;
    PlanAux Aux;
    std::vector<const std::uint64_t *> AuxPtrs;
    std::uint64_t LastUse = 0; ///< LRU stamp
    bool Degraded = false;     ///< serving the interp fallback
    PlanKey JitKey;            ///< the originally requested variant
  };
  /// One cached NttTables with its LRU stamp.
  struct TablesEntry {
    NttTables T;
    std::uint64_t LastUse = 0;
  };

  /// \p SizeHint is the elements-per-dispatch estimate handed to the
  /// autotuner (decisions are per batch-size class).
  BoundPlan *bind(KernelOp Op, const mw::Bignum &Q, size_t SizeHint);
  /// Binds a fully-resolved variant (no autotuner consultation) — the
  /// NTT path resolves its own transform-shaped decision first, and the
  /// RNS CRT kernels pass their wide word count (0 elsewhere).
  BoundPlan *bindPlan(KernelOp Op, const mw::Bignum &Q,
                      const rewrite::PlanOptions &Opts,
                      unsigned WideWords = 0);
  /// Shared decompose + per-limb-op + recombine driver for the
  /// element-wise RNS entry points.
  bool rnsElementwise(KernelOp Op, const RnsContext &Ctx,
                      const std::uint64_t *A, const std::uint64_t *B,
                      std::uint64_t *C, size_t N);
  /// Tables for (Q, NPoints, Ring) in \p Domain — the bound butterfly
  /// plan's reduction, so Montgomery plans get Montgomery-form twiddles
  /// (and ψ tables). Built once and shared by forward and inverse
  /// transforms.
  const NttTables *tables(const mw::Bignum &Q, size_t NPoints,
                          mw::Reduction Domain, rewrite::NttRing Ring);
  bool runElementwise(KernelOp Op, const mw::Bignum &Q,
                      const std::uint64_t *A, const std::uint64_t *B,
                      std::uint64_t *C, size_t N);
  bool transform(const mw::Bignum &Q, std::uint64_t *Data, size_t NPoints,
                 size_t Batch, bool Inverse, rewrite::NttRing Ring);
  /// Shared precondition checks of the binary tensor ops.
  bool checkTensors(const char *Op, const RnsTensor &A, const RnsTensor &B,
                    const RnsTensor &C);
  bool fail(const std::string &Msg,
            DispatchErrorCode C = DispatchErrorCode::BackendFailed) {
    LastError = Msg;
    LastCode = C;
    return false;
  }
  void clearError() {
    LastError.clear();
    LastCode = DispatchErrorCode::Ok;
  }

  /// One pool entry of reusable scratch buffers (grow-only, so
  /// steady-state batched polyMul and NTT dispatch perform zero heap
  /// allocation). Entries are leased per entry-point call and returned on
  /// exit; the pool grows to the deepest nesting ever seen (rnsPolyMul →
  /// polyMul → transform is depth 3) and then stays put.
  struct Scratch {
    std::vector<std::uint64_t> Poly; ///< polyMul's B-transform copy
    std::vector<std::uint64_t> Ntt;  ///< stage-group ping-pong
    std::vector<std::uint64_t> Tw;   ///< butterfly() domain conversion
    std::vector<std::uint64_t> RnsA, RnsB; ///< limb-major residues
    bool InUse = false;
  };
  /// RAII lease over one pool entry.
  class ScratchLease {
  public:
    explicit ScratchLease(Dispatcher &D) : D(D), S(D.acquireScratch()) {}
    ~ScratchLease() { D.releaseScratch(S); }
    ScratchLease(const ScratchLease &) = delete;
    ScratchLease &operator=(const ScratchLease &) = delete;
    Scratch *operator->() { return &S; }
    Scratch &operator*() { return S; }

  private:
    Dispatcher &D;
    Scratch &S;
  };
  Scratch &acquireScratch();
  void releaseScratch(Scratch &S);

  KernelRegistry &Reg;
  Autotuner *Tuner;
  rewrite::PlanOptions Base;
  std::string LastError;
  DispatchErrorCode LastCode = DispatchErrorCode::Ok;
  rewrite::PlanOptions LastOpts;
  std::map<std::string, BoundPlan> Bound; ///< by full plan key + modulus
  std::map<std::string, TablesEntry> NttCtx; ///< by modulus + size + domain
  size_t MaxBound = 128, MaxTables = 64;
  std::uint64_t UseTick = 0; ///< LRU clock shared by both caches
  DispatchStats DStats;
  /// Atomic mirrors of DegradeCounters (snapshot via degradeCounters()).
  struct DegradeCountersAtomic {
    std::atomic<std::uint64_t> FallbackBinds{0};
    std::atomic<std::uint64_t> FallbackDispatches{0};
    std::atomic<std::uint64_t> Promotions{0};
    std::atomic<std::uint64_t> TunerFallbacks{0};
  };
  DegradeCountersAtomic DC;
  CacheCounters Evictions; ///< only the eviction counters are maintained
                           ///< here; entry counts read the maps directly
  /// The scratch pool. unique_ptr entries: leases hold references across
  /// pool growth. The mutex makes leasing safe even under (contract-
  /// violating) cross-thread use — scratch never silently aliases.
  std::mutex ScratchMu;
  std::vector<std::unique_ptr<Scratch>> ScratchPool;
};

} // namespace runtime
} // namespace moma

#endif // MOMA_RUNTIME_DISPATCHER_H
