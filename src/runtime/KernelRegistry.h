//===- runtime/KernelRegistry.h - Compiled-plan cache ----------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The plan cache of the batched-dispatch runtime: maps a canonical
/// PlanKey to a compiled, loaded, ready-to-call kernel. The expensive part
/// of serving a request — build the IR, run the rewrite system, emit C,
/// invoke the host compiler, dlopen — happens once per key; every later
/// batch through the same key is a hash lookup plus N function calls.
/// HostJit's content-hash disk cache additionally carries compiled objects
/// across processes, so a warmed cache directory makes even the first
/// request of a process cheap.
///
/// Thread safety: get(), backendFor(), stats(), and error() may be called
/// from any number of threads on one registry — the serving layer
/// (service/Server.h) shares one registry across all its workers.
/// Concurrent get() calls for one cold key single-flight onto one plan
/// build (one rewrite pipeline, one compiler invocation); the plan map is
/// LRU-capped, and plans in flight stay alive through their shared_ptr
/// regardless of eviction. setDeviceProfile() remains a configuration
/// call: make it before dispatch traffic starts.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_RUNTIME_KERNELREGISTRY_H
#define MOMA_RUNTIME_KERNELREGISTRY_H

#include "codegen/CEmitter.h"
#include "jit/HostJit.h"
#include "runtime/PlanKey.h"
#include "sim/Device.h"
#include "support/ThreadError.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace moma {
namespace runtime {

class ExecutionBackend;

/// One compiled kernel variant: metadata plus the callable entry points.
/// Which set is populated depends on the key's backend — serial plans
/// resolve Fn (pointer-per-port scalar ABI), sim-GPU plans resolve GridFn
/// and, for butterfly kernels, StageFn (the grid ABI of
/// codegen/GridEmitter.h), vector plans resolve VecFn and, for butterfly
/// kernels, VecStageFn/VecFusedFn (the lane-loop ABI of
/// codegen/VectorEmitter.h). Kept alive by shared_ptr so a batch in
/// flight survives registry eviction; the loaded JitModule is released
/// with the last plan user.
struct CompiledPlan {
  PlanKey Key;
  rewrite::LoweredKernel Lowered; ///< port layout source of truth
  codegen::EmittedKernel Emitted; ///< source + symbol + port signature
  std::shared_ptr<jit::JitModule> Module;
  void *Fn = nullptr;      ///< serial entry point (pointer-per-port ABI)
  void *GridFn = nullptr;  ///< sim-GPU element-wise block entry
  void *StageFn = nullptr; ///< sim-GPU radix-2 NTT-stage entry (butterfly)
  void *FusedFn = nullptr; ///< sim-GPU fused stage-group entry (butterfly);
                           ///< fusion depth is a launch parameter, so every
                           ///< FuseDepth key of one kernel shares the module
  void *VecFn = nullptr;      ///< vector element-wise lane-loop entry
  void *VecStageFn = nullptr; ///< vector radix-2 NTT-stage entry (butterfly)
  void *VecFusedFn = nullptr; ///< vector fused stage-group entry
                              ///< (butterfly); the lane count is a launch
                              ///< parameter, so every VectorWidth key of
                              ///< one kernel shares the module
  /// Interp plans carry the scalar kernel itself instead of an entry
  /// point: InterpBackend runs it through ir::interpret per element, with
  /// no compiled code at all (the degradation ladder's terminal rung).
  std::shared_ptr<const ir::Kernel> InterpKernel;

  unsigned NumOutputs = 0;    ///< leading per-element output ports
  unsigned NumDataInputs = 0; ///< per-element input ports (before q)
  unsigned ElemWords = 0;     ///< stored words per data element
  /// Stored word counts of the trailing broadcast ports, in port order:
  /// q, then mu (Barrett) or qinv, r2 (Montgomery) for multiplying ops.
  std::vector<unsigned> AuxWords;

  size_t numPorts() const {
    return NumOutputs + NumDataInputs + AuxWords.size();
  }
};

/// Batched call description for runBatch: flat arrays of N elements with
/// ElemWords words each (most significant word first, the emitted-kernel
/// convention), plus the broadcast auxiliary ports.
struct BatchArgs {
  std::vector<std::uint64_t *> Outs;      ///< NumOutputs arrays
  std::vector<const std::uint64_t *> Ins; ///< NumDataInputs arrays
  /// Per-input word stride between consecutive elements: ElemWords for
  /// vector inputs, 0 to broadcast one element to the whole batch (the
  /// axpy scalar). Empty means all-vector.
  std::vector<size_t> InStrides;
  std::vector<const std::uint64_t *> Aux; ///< AuxWords.size() arrays
};

/// Invokes \p P.Fn once per element over \p N elements — the serial
/// execution path (\p P must be a serial plan; sim-GPU plans route
/// through their ExecutionBackend, runtime/Backend.h). Returns false on a
/// shape mismatch (wrong pointer counts or unsupported arity), with a
/// message in \p Err when non-null. Output may alias input arrays: the
/// emitted kernels load every input word before storing any output word.
bool runBatch(const CompiledPlan &P, const BatchArgs &Args, size_t N,
              std::string *Err = nullptr);

/// Calls \p P.Fn once with pre-assembled port pointers (P.numPorts()
/// entries: outputs, data inputs, broadcast tail). The zero-allocation
/// path for inner loops (the NTT stage driver); batch entry points should
/// prefer runBatch. Returns false on unsupported arity.
bool callPlan(const CompiledPlan &P, void *const *Ports);

/// Packs \p V into \p Words 64-bit words, most significant first (the
/// emitted-kernel port convention). \p V must fit.
std::vector<std::uint64_t> packWordsMsbFirst(const mw::Bignum &V,
                                             unsigned Words);

/// Inverse of packWordsMsbFirst.
mw::Bignum unpackWordsMsbFirst(const std::uint64_t *W, unsigned Words);

/// The broadcast tail for running \p P with modulus \p Q: the packed
/// modulus plus the reduction constants its variant needs — Barrett
/// mu = floor(2^(2m+3)/q), or Montgomery qinv = -q^-1 mod 2^lambda and
/// r2 = 2^(2*lambda) mod q. Montgomery requires an odd modulus.
struct PlanAux {
  std::vector<std::vector<std::uint64_t>> Buffers; ///< one per aux port
  /// Pointer view matching BatchArgs::Aux, in port order.
  std::vector<const std::uint64_t *> ptrs() const {
    std::vector<const std::uint64_t *> P;
    for (const auto &B : Buffers)
      P.push_back(B.data());
    return P;
  }
};
PlanAux makePlanAux(const CompiledPlan &P, const mw::Bignum &Q);

/// Compiles and caches kernel plans. Thread-safe: share one registry
/// across threads; cold keys single-flight onto one build, the plan map
/// is LRU-capped, and error() is a per-calling-thread slot.
class KernelRegistry {
public:
  explicit KernelRegistry(jit::HostJitOptions JitOpts = jit::HostJitOptions());
  ~KernelRegistry();

  /// Returns the compiled plan for \p Key, building it on first request.
  /// Null on failure (error() carries the pipeline or compiler message).
  /// Concurrent calls for one cold key block on a single shared build.
  std::shared_ptr<const CompiledPlan> get(const PlanKey &Key);

  /// The execution backend plans with \p Key run on. Backends live as
  /// long as the registry; the sim-GPU backend (and its worker pool) and
  /// the vector backend are created on first use — the former against the
  /// configured device profile.
  ExecutionBackend &backendFor(const PlanKey &Key);

  /// Selects the device profile the sim-GPU backend emulates (paper
  /// Table 2). Resets an already-created sim-GPU backend, so call it
  /// before dispatching; plans themselves are profile-independent.
  void setDeviceProfile(const sim::DeviceProfile &Profile);
  const sim::DeviceProfile &deviceProfile() const { return Profile; }

  /// Diagnostics from the calling thread's most recent failed get();
  /// empty after success.
  const std::string &error() const { return Err.get(); }

  /// How the registry retries transient build failures (a compiler crash,
  /// a full /tmp, an injected fault): the single-flight leader re-runs the
  /// build up to MaxAttempts times with bounded exponential backoff, so N
  /// followers blocked on the flight observe one retry sequence, not N.
  /// Permanent failures (validation errors: bad geometry, unsupported
  /// shape) are never retried.
  struct RetryPolicy {
    unsigned MaxAttempts = 3;        ///< total build attempts per get()
    unsigned InitialBackoffUs = 200; ///< sleep before the first retry
    unsigned BackoffMultiplier = 4;  ///< backoff growth per retry
    unsigned MaxBackoffUs = 100000;  ///< backoff ceiling (100ms)
  };
  void setRetryPolicy(const RetryPolicy &P);
  RetryPolicy retryPolicy() const;

  /// TTL of the negative cache: after a terminal build failure the key
  /// fast-fails (error() reports the cached message) for this long
  /// instead of letting every worker re-stampede the broken build. 0
  /// disables negative caching. Default 250ms.
  void setNegativeTtlUs(std::uint64_t Us);

  /// True while any key has terminally failed to build and not yet been
  /// rebuilt — the serving layer's health() degraded flag.
  bool degraded() const;
  /// The currently-degraded key strings (diagnostics).
  std::vector<std::string> degradedKeys() const;

  /// Non-blocking recovery probe for a degraded key: returns the plan if
  /// it is already back in the cache; otherwise (unless the key is inside
  /// its negative TTL or a build/probe is already running) enqueues a
  /// background rebuild on the registry's probe thread and returns null.
  /// The Dispatcher calls this on every dispatch through a fallback
  /// binding, so service promotes back to JIT as soon as compiles succeed
  /// again without ever blocking a request on a compile.
  std::shared_ptr<const CompiledPlan> tryPromote(const PlanKey &Key);

  /// Cache behavior counters.
  struct Stats {
    unsigned Builds = 0; ///< plans built (lower + emit + compile + load)
    unsigned Hits = 0;   ///< plans served from the in-memory cache
    std::uint64_t Evictions = 0;    ///< plans dropped by the LRU cap
    unsigned Attempts = 0;          ///< build attempts (incl. retries)
    unsigned Retries = 0;           ///< transient-failure retries
    unsigned FailedBuilds = 0;      ///< get() calls that exhausted retries
    std::uint64_t NegativeHits = 0; ///< fast-fails from the negative cache
    unsigned Probes = 0;            ///< background recovery rebuilds run
  };
  Stats stats() const;

  /// Caps the plan map: beyond \p Max entries the least-recently-used
  /// plan is dropped (in-flight batches keep their plan alive through the
  /// shared_ptr; the registry just forgets it and rebuilds on the next
  /// request — usually a cheap HostJit disk hit). At least one entry is
  /// always kept. Matches the Dispatcher's setCacheCaps pattern.
  void setCacheCap(size_t Max);
  size_t cacheCap() const;

  size_t size() const;
  jit::HostJit &jit() { return Jit; }

private:
  /// One cached plan with its LRU stamp.
  struct Entry {
    std::shared_ptr<CompiledPlan> Plan;
    std::uint64_t LastUse = 0;
  };
  /// One in-progress cold build: the leader runs the pipeline, followers
  /// wait on CV and share Plan/Error.
  struct Flight {
    std::mutex M;
    std::condition_variable CV;
    bool Done = false;
    std::shared_ptr<CompiledPlan> Plan;
    std::string Error;
  };

  /// The lower/emit/compile pipeline; no registry locks held.
  /// \p MaxThreadsPerBlock is the profile value snapshotted by get().
  /// \p Transient reports whether a failure is retryable (compiler/loader
  /// trouble) as opposed to a permanent validation error.
  std::shared_ptr<CompiledPlan> build(const PlanKey &Key,
                                      unsigned MaxThreadsPerBlock,
                                      std::string &Error, bool &Transient);
  /// LRU-evicts Plans down to CacheCap; requires Mu held.
  void evictLocked();
  /// Starts the probe thread if needed and enqueues \p K; requires Mu NOT
  /// held (takes ProbeMu then Mu internally via get()).
  void enqueueProbe(const PlanKey &Key);
  void probeLoop();

  /// One terminally-failed key: fast-fail until the TTL deadline passes.
  struct NegativeEntry {
    std::string Error;
    std::chrono::steady_clock::time_point Until;
  };

  jit::HostJit Jit;
  mutable std::mutex Mu; ///< guards S, Plans, InFlight, CacheCap, UseTick,
                         ///< Retry, NegativeTtlUs, Negative, Degraded
  Stats S;
  support::ThreadError Err;
  std::unordered_map<std::string, Entry> Plans;
  std::unordered_map<std::string, std::shared_ptr<Flight>> InFlight;
  size_t CacheCap = 512;
  std::uint64_t UseTick = 0; ///< LRU clock
  RetryPolicy Retry;
  std::uint64_t NegativeTtlUs = 250000;
  std::unordered_map<std::string, NegativeEntry> Negative;
  std::set<std::string> Degraded; ///< keys whose last build failed

  mutable std::mutex ProbeMu; ///< guards the probe thread + queue
  std::condition_variable ProbeCv;
  std::deque<PlanKey> ProbeQueue;
  std::set<std::string> ProbeQueued; ///< dedup of ProbeQueue by key string
  std::thread ProbeThread;           ///< started lazily by tryPromote
  bool ProbeStop = false;

  mutable std::mutex BackendMu; ///< guards Profile and backend creation
  sim::DeviceProfile Profile;
  std::unique_ptr<ExecutionBackend> Serial; ///< created with the registry
  std::unique_ptr<ExecutionBackend> SimGpu; ///< created on first use
  std::unique_ptr<ExecutionBackend> Vector; ///< created on first use
  std::unique_ptr<ExecutionBackend> Interp; ///< created on first use
};

} // namespace runtime
} // namespace moma

#endif // MOMA_RUNTIME_KERNELREGISTRY_H
