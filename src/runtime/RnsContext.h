//===- runtime/RnsContext.h - Runtime RNS base ----------------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime's residue-number-system base: a chain of distinct
/// word-sized NTT-friendly primes q_0..q_{L-1} of one common bit-width,
/// with the host-side CRT constants the generated decompose/recombine
/// kernels and the Dispatcher's RNS entry points consume. This is the
/// representation real FHE/ZKP stacks serve (RNS-batched negacyclic
/// NTTs); unlike the GRNS *baseline* in `baselines/Rns.h` (31-bit
/// channels, host-side CRT per operation), this context drives every
/// limb through the batched plan cache — and because every limb shares
/// one bit-width and `PlanKey` excludes the modulus value, all limbs of
/// a base execute through a single compiled module per kernel.
///
/// Data layout contract (the Dispatcher's RNS ops):
///  * a *wide* batch stores N elements of wideWords() 64-bit words each,
///    most significant word first (the standard flat-batch convention,
///    elements reduced modulo M = Π q_l);
///  * a *residue* batch is limb-major: limb l owns the N single-word
///    residues at [l*N, (l+1)*N) — dense per limb, so every per-limb
///    batched kernel (vadd/vmul/NTT) runs on its natural layout.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_RUNTIME_RNSCONTEXT_H
#define MOMA_RUNTIME_RNSCONTEXT_H

#include "mw/Bignum.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace moma {
namespace runtime {

/// One RNS base. Immutable after create().
class RnsContext {
public:
  struct Options {
    /// Common bit-width of every limb prime, in [30, 62] (word-sized:
    /// <= 62 keeps the generated kernels at one stored word per residue;
    /// >= 30 keeps the channel count and prime search meaningful —
    /// create() rejects values outside the range).
    unsigned LimbBits = 60;
    /// Every limb satisfies q ≡ 1 (mod 2^TwoAdicity), so per-limb NTTs
    /// up to 2^(TwoAdicity-1) points exist in the *negacyclic* ring
    /// (which needs one extra factor of two) and 2^TwoAdicity points in
    /// the cyclic ring.
    unsigned TwoAdicity = 16;
    /// Prime-search seed; limb l uses Seed + l (after de-duplication).
    std::uint64_t Seed = 2025;
  };

  /// Builds a base of \p NumLimbs distinct primes. Returns false with
  /// \p Err set on invalid shapes (NumLimbs < 2, LimbBits outside
  /// [30, 62]).
  static bool create(unsigned NumLimbs, RnsContext &Out, std::string *Err,
                     const Options &O);
  static bool create(unsigned NumLimbs, RnsContext &Out, std::string *Err) {
    return create(NumLimbs, Out, Err, Options());
  }

  size_t numLimbs() const { return Limbs.size(); }
  unsigned limbBits() const { return Opts.LimbBits; }
  unsigned twoAdicity() const { return Opts.TwoAdicity; }
  const std::vector<mw::Bignum> &limbs() const { return Limbs; }
  const mw::Bignum &limb(size_t L) const { return Limbs[L]; }

  /// The full modulus M = Π q_l; RNS arithmetic is exact arithmetic in
  /// Z_M.
  const mw::Bignum &modulus() const { return M; }
  /// Stored 64-bit words per wide element: elemWords(M).
  unsigned wideWords() const { return WideWords; }

  /// The packed CRT weight W_l = (M/q_l)·((M/q_l)^{-1} mod q_l) mod M of
  /// limb \p L (wideWords() words, most significant first) — the
  /// broadcast `a` input of the generated recombine-step kernel.
  const std::vector<std::uint64_t> &weightWords(size_t L) const {
    return WeightWords[L];
  }

  /// Host-side residue vector of \p X (one word per limb). Requires
  /// X < M. Reference path for tests and tools; the Dispatcher's batched
  /// rnsDecompose is the serving path.
  std::vector<std::uint64_t> encode(const mw::Bignum &X) const;

  /// Host-side CRT reconstruction of one element whose limb residues sit
  /// \p Stride words apart starting at \p Residues (Stride = N for a
  /// limb-major batch of N elements).
  mw::Bignum decode(const std::uint64_t *Residues, size_t Stride) const;

  /// The sub-chain view over the first \p NumLimbs limbs: the same prime
  /// prefix with M, the CRT weights and wideWords() recomputed for the
  /// shorter chain — the primitive modulus switching / rescale stands on
  /// (dropping limb L-1 moves data from this base to subChain(L-1)).
  ///
  /// Views are cached with stable identity: repeated calls return the
  /// SAME object (&subChain(k) never changes for the lifetime of this
  /// context or any copy of it), so callers can key plan bindings,
  /// Server coalescing, and RnsTensor tags by context address. Copies of
  /// a context share one cache, and each view roots its own, so a
  /// rescale ladder (subChain(L-1).subChain(L-2)...) is identity-stable
  /// along the path it was walked; views live exactly as long as the
  /// context they came from. \p NumLimbs must be in [1, numLimbs()]
  /// (asserted); subChain(numLimbs()) is *this. Thread-safe.
  ///
  /// A one-limb view is a legal result of rescaling even though create()
  /// rejects NumLimbs < 2: it is plain single-modulus arithmetic, which
  /// is exactly what the bottom of a modulus-switching ladder is.
  const RnsContext &subChain(size_t NumLimbs) const;

private:
  struct ChainCache; ///< identity-stable subChain views (shared by copies)

  /// Recomputes M, wideWords and the CRT weights from Opts + Limbs and
  /// allocates the view cache — the shared tail of create() and the
  /// subChain view constructor.
  void initDerived();

  Options Opts;
  std::vector<mw::Bignum> Limbs;
  mw::Bignum M;
  std::vector<mw::Bignum> Weights; ///< W_l, reduced mod M
  std::vector<std::vector<std::uint64_t>> WeightWords; ///< packed W_l
  unsigned WideWords = 0;
  std::shared_ptr<ChainCache> Cache;
};

} // namespace runtime
} // namespace moma

#endif // MOMA_RUNTIME_RNSCONTEXT_H
