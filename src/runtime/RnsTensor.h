//===- runtime/RnsTensor.h - Residue-form batch handle ---------*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The residue-form handle of the RNS runtime: a batch of wide elements
/// held as limb-major residues, tagged with the RnsContext it lives in,
/// its polynomial shape, ring, and — the part that buys laziness — the
/// representation domain the residues are currently in (coefficient or
/// NTT).
///
/// Why it exists: the flat-pointer RNS entry points are one-shot — every
/// rnsVMul/rnsPolyMul decomposes its wide inputs and recombines its wide
/// outputs, so chained FHE-style traffic pays the CRT edges (and a full
/// inverse/forward NTT round trip) on every hop. Real FHE pipelines keep
/// data resident in residue form across many operations. RnsTensor is
/// that residency: Dispatcher::fromWide / toWide are the only points
/// where the CRT edges run, the tensor overloads of rnsVAdd/rnsVMul/
/// rnsPolyMul never touch them, and the domain tag lets back-to-back
/// polynomial products skip the inverse+forward NTT pair entirely
/// (pointwise products compose in the transformed domain; additions are
/// linear in either).
///
/// Domain-tag state machine (see DESIGN.md "FHE layer & residue-form
/// handles"):
///   Coeff --rnsPolyMul/rnsNttForward--> Ntt
///   Ntt   --toWide/rnsRescale/rnsNttInverse--> Coeff
///   rnsVAdd: any matching pair, domain preserved (mixed operands are
///   harmonized toward Ntt); rnsVMul: element-wise semantics, so both
///   operands are forced to Coeff first.
/// The tag travels with the data: Dispatcher ops that transform storage
/// update the tag in the same call, so a tensor is always decodable by
/// (data, tag) alone.
///
/// Storage: limb-major, limb l owning the count() = nPoints()*batch()
/// single-word residues at [l*count(), (l+1)*count()) — the same layout
/// the flat API's scratch uses, which is why the flat methods can wrap
/// this API bit-for-bit. A tensor either owns its storage (the normal
/// case) or borrows caller storage (RnsTensor::borrow — the flat-pointer
/// wrappers lease pooled scratch this way, keeping their zero
/// steady-state allocation).
///
/// Lifetime: a tensor references its RnsContext (and, after a rescale,
/// the context's subChain view); the context must outlive every tensor
/// tagged with it — the same contract the flat API documents per call.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_RUNTIME_RNSTENSOR_H
#define MOMA_RUNTIME_RNSTENSOR_H

#include "rewrite/PlanOptions.h"
#include "runtime/RnsContext.h"

#include <cstdint>
#include <vector>

namespace moma {
namespace runtime {

/// Which representation a tensor's residues are currently in.
enum class RnsDomain : std::uint8_t {
  Coeff, ///< per-limb polynomial coefficients (the decodable truth)
  Ntt    ///< per-limb forward-transformed (pointwise-product) form
};

/// Stable lower-case name ("coeff" / "ntt") for logging and tests.
const char *rnsDomainName(RnsDomain D);

/// A batch of wide elements resident in residue form. Cheap to move;
/// copying copies the residues (owned storage) or the borrow (borrowed).
class RnsTensor {
public:
  RnsTensor() = default;

  /// Owning tensor over \p Ctx: allocates numLimbs * NPoints * Batch
  /// residue words (zero-initialized, a valid encoding of zero).
  RnsTensor(const RnsContext &Ctx, size_t NPoints, size_t Batch,
            rewrite::NttRing Ring = rewrite::NttRing::Cyclic,
            RnsDomain Domain = RnsDomain::Coeff);

  /// Non-owning view over caller storage of numLimbs * NPoints * Batch
  /// words in the limb-major layout. The storage must outlive the view;
  /// Dispatcher ops write through it (that is the point — the flat
  /// wrappers borrow pooled scratch).
  static RnsTensor borrow(const RnsContext &Ctx, std::uint64_t *Data,
                          size_t NPoints, size_t Batch,
                          rewrite::NttRing Ring = rewrite::NttRing::Cyclic,
                          RnsDomain Domain = RnsDomain::Coeff);

  /// False for a default-constructed (empty) tensor.
  bool valid() const { return Ctx != nullptr; }

  /// The chain this tensor currently lives in. After rnsRescale this is
  /// the original context's subChain view — one limb shorter.
  const RnsContext &context() const { return *Ctx; }
  size_t numLimbs() const { return Ctx->numLimbs(); }
  size_t nPoints() const { return NPts; }
  size_t batch() const { return Bat; }
  /// Residues per limb (= elements in the logical wide batch).
  size_t count() const { return NPts * Bat; }
  /// Total stored words: numLimbs() * count().
  size_t words() const { return Ctx->numLimbs() * count(); }
  rewrite::NttRing ring() const { return Ring; }

  RnsDomain domain() const { return Domain; }
  /// Dispatcher ops keep the tag truthful; external code should only
  /// need this when it rewrites the storage itself.
  void setDomain(RnsDomain D) { Domain = D; }

  std::uint64_t *data() { return Ext ? Ext : Owned.data(); }
  const std::uint64_t *data() const { return Ext ? Ext : Owned.data(); }
  /// Limb \p L's dense residue row.
  std::uint64_t *limbData(size_t L) { return data() + L * count(); }
  const std::uint64_t *limbData(size_t L) const {
    return data() + L * count();
  }

  /// True when \p O has the same context (by identity), shape, and ring
  /// — the precondition of every binary tensor op.
  bool congruent(const RnsTensor &O) const {
    return Ctx == O.Ctx && NPts == O.NPts && Bat == O.Bat && Ring == O.Ring;
  }

  /// Rebinds the tensor to \p NewCtx (used by rnsRescale after dropping
  /// the last limb; the surviving rows keep their positions because the
  /// layout is limb-major). Internal to the Dispatcher in practice.
  void rebindContext(const RnsContext &NewCtx) { Ctx = &NewCtx; }

private:
  const RnsContext *Ctx = nullptr;
  size_t NPts = 0, Bat = 0;
  rewrite::NttRing Ring = rewrite::NttRing::Cyclic;
  RnsDomain Domain = RnsDomain::Coeff;
  std::uint64_t *Ext = nullptr;      ///< borrowed storage, else null
  std::vector<std::uint64_t> Owned;  ///< owning storage
};

} // namespace runtime
} // namespace moma

#endif // MOMA_RUNTIME_RNSTENSOR_H
