//===- runtime/NttPipeline.h - Fused NTT execution pipeline ----*- C++ -*-===//
//
// Part of the MoMA project, reproducing "Code Generation for Cryptographic
// Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pieces of the fused NTT execution pipeline shared by the
/// Dispatcher (serving) and the Autotuner (candidate timing):
///
///  * precomputed per-(q, n) tables — bit-reversal permutation,
///    stage-major forward/inverse twiddles and n^-1, all in the plan's
///    *twiddle domain* (plain values for Barrett plans, Montgomery-form
///    w * 2^lambda mod q for Montgomery plans, whose butterfly kernel
///    performs a single REDC instead of the plain-domain double pass);
///  * the stage-group schedule: log2(n) radix-2 stages walked in
///    ceil(log2(n)/FuseDepth) fused groups;
///  * the transform driver that runs one forward/inverse NTT through an
///    ExecutionBackend as exactly that many dispatches, folding the
///    bit-reversal gather into the first group's loads and the inverse
///    n^-1 multiply into the last group's stores. No host-side data pass
///    remains: the first group reads the caller's buffer permuted, edge
///    groups ping-pong through the caller's scratch so the result lands
///    back in place.
///
//===----------------------------------------------------------------------===//

#ifndef MOMA_RUNTIME_NTTPIPELINE_H
#define MOMA_RUNTIME_NTTPIPELINE_H

#include "runtime/Backend.h"

#include <cstdint>
#include <string>
#include <vector>

namespace moma {
namespace runtime {

/// Precomputed tables for one (modulus, size, twiddle-domain, ring)
/// tuple. Stage-major twiddle layout (matching ntt::NttPlan): the stage
/// of half-distance len holds w_{2len}^j at entry (len - 1) + j, so the
/// whole forward (or inverse) table is (n - 1) x ElemWords words.
/// Negacyclic tables additionally carry the ψ edge-fold tables (ψ a
/// primitive 2n-th root with ψ² = ω): Twist[i] = ψ^i multiplies
/// coefficient i on the first forward group's loads, Untwist[i] =
/// ψ^{-i} · n^-1 multiplies output i on the last inverse group's stores
/// — the inverse scaling is folded in, so negacyclic transforms issue
/// exactly the cyclic dispatch count.
struct NttTables {
  unsigned LogN = 0;
  unsigned ElemWords = 0;
  mw::Reduction Domain = mw::Reduction::Barrett;
  rewrite::NttRing Ring = rewrite::NttRing::Cyclic;
  std::vector<std::uint32_t> BitRev; ///< n entries
  std::vector<std::uint64_t> Tw;     ///< forward, (n-1) x ElemWords
  std::vector<std::uint64_t> InvTw;  ///< inverse, (n-1) x ElemWords
  std::vector<std::uint64_t> NInv;   ///< n^-1 (twiddle domain), ElemWords
  std::vector<std::uint64_t> Twist;  ///< ψ^i, n x ElemWords (negacyclic)
  std::vector<std::uint64_t> Untwist; ///< ψ^{-i}·n^-1, n x ElemWords
};

/// Builds the tables for modulus \p Q at transform size \p NPoints in the
/// twiddle domain of \p Domain (Montgomery form uses the canonical
/// container width for \p Q, i.e. 2^lambda with lambda =
/// PlanKey::canonicalContainerBits) for ring \p Ring. Returns false with
/// \p Err set when \p NPoints is not a power of two >= 2 or the modulus
/// lacks the 2-adicity for a primitive root (negacyclic needs one more
/// factor of two: 2n | q - 1).
bool buildNttTables(const mw::Bignum &Q, size_t NPoints,
                    mw::Reduction Domain, NttTables &Out, std::string *Err,
                    rewrite::NttRing Ring = rewrite::NttRing::Cyclic);

/// One entry of the stage-group schedule.
struct StageGroupPlan {
  size_t Len0 = 1;    ///< half-distance of the group's first stage
  unsigned Depth = 1; ///< stages fused into this dispatch
};

/// Splits \p LogN radix-2 stages into fused groups of at most
/// \p FuseDepth stages: full-depth groups first, the remainder (if any)
/// last, ceil(LogN / FuseDepth) groups total.
std::vector<StageGroupPlan> planStageGroups(unsigned LogN,
                                            unsigned FuseDepth);

/// Runs one in-place batched transform over \p Batch rows of \p NPoints
/// elements in \p Data through \p EB with butterfly plan \p P, walking
/// the stage-group schedule for the plan's FuseDepth. \p T must be built
/// for the plan's reduction domain and ring; negacyclic plans fold the
/// ψ twist into the first forward group and the ψ^{-1}·n^-1 untwist into
/// the last inverse group, so the dispatch count never depends on the
/// ring. \p Scratch (same extent as the data,
/// NPoints * Batch * ElemWords words) is required whenever the schedule
/// has more than one group — edge groups ping-pong Data -> Scratch ->
/// ... -> Data; a single-group transform (log2(n) <= FuseDepth) runs
/// in place with one thread per row and may pass null. \p Dispatches,
/// when non-null, is incremented once per backend dispatch issued.
bool runTransform(ExecutionBackend &EB, const CompiledPlan &P,
                  const NttTables &T,
                  const std::vector<const std::uint64_t *> &Aux,
                  std::uint64_t *Data, std::uint64_t *Scratch,
                  size_t NPoints, size_t Batch, bool Inverse,
                  std::string *Err, std::uint64_t *Dispatches = nullptr);

} // namespace runtime
} // namespace moma

#endif // MOMA_RUNTIME_NTTPIPELINE_H
